#!/usr/bin/env bash
# Gray-failure differential validation (DESIGN.md §15): drive the
# `xmpsim verify` harness over a plan that exercises every gray fault kind
# (degrade, delay, reorder, duplicate, overmark), require all four legs —
# serial (--shards=1), --shards=2, checkpointed, SIGKILL + --restore — to
# agree byte for byte, and pin the CLI contracts around the fault layer:
# a healthy (fault-free) verify must also pass, a plan mixing gray kinds
# with hard faults (down/loss/corrupt) must verify, and the one-line
# exit-2 rejects (--hybrid with --faults, verify-owned flags) must hold.
#
#   scripts/gray_diff.sh [build-dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
bin="$(pwd)/$build/apps/xmpsim"
[ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

scenario=(--pattern=permutation --scheme=xmp --subflows=2 --k=4
          --rounds=1 --duration=0.05 --seed=11)

# Every gray kind at once, overlapping in time, on distinct links.
gray="degrade,link=2,at=0.01,factor=0.4,until=0.03;"
gray+="delay,link=5,at=0.005,dt=1e-4,jitter=5e-5,until=0.04;"
gray+="reorder,link=7,at=0.01,p=0.05,dt=2e-4;"
gray+="duplicate,link=9,at=0,p=0.02;"
gray+="overmark,link=11,at=0.02,p=0.3"

# Gray kinds crossed with the pre-existing hard faults on yet other links.
mixed="$gray;down,link=14,at=0.015,until=0.035;"
mixed+="loss,link=3,at=0,p=0.01,corrupt=0.2;"
mixed+="gilbert,link=16,at=0.01,pgb=0.01,pbg=0.1,pbad=0.3"

echo "== gray diff: verify, all gray kinds =="
"$bin" verify "${scenario[@]}" "--faults=$gray" --dir="$tmp/gray" \
  | tee "$tmp/gray.log"
grep -q "verify: PASS" "$tmp/gray.log"

echo "== gray diff: verify, gray + hard faults, ecmp =="
"$bin" verify "${scenario[@]}" --routing=ecmp "--faults=$mixed" \
  --dir="$tmp/mixed" | tee "$tmp/mixed.log"
grep -q "verify: PASS" "$tmp/mixed.log"

echo "== gray diff: verify, fault-free =="
"$bin" verify "${scenario[@]}" --dir="$tmp/healthy" | tee "$tmp/healthy.log"
grep -q "verify: PASS" "$tmp/healthy.log"

# The healthy and gray runs must differ only where the fault layer acted:
# a plan that injects impairments must actually report some.
python3 - "$tmp/gray/serial/summary.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    s = json.load(f)
imp = s["impairments"]
assert imp["duplicated"] > 0, "duplicate fault produced no clones"
assert imp["delayed"] > 0, "delay/reorder fault held no packets"
assert imp["overmarked"] > 0, "overmark fault forced no CE"
print("impairments accounted:", imp)
EOF

expect_reject() {
  local want="$1"; shift
  set +e
  "$@" >/dev/null 2> "$tmp/reject-err.txt"
  local rc=$?
  set -e
  [ "$rc" -eq 2 ] || { echo "FAIL: '$*' exited $rc, want 2" >&2; exit 1; }
  grep -q "$want" "$tmp/reject-err.txt" || {
    echo "FAIL: '$*' missing diagnostic '$want'" >&2
    cat "$tmp/reject-err.txt" >&2
    exit 1
  }
}

echo "== gray diff: one-line exit-2 rejects =="
expect_reject "\-\-hybrid is incompatible with --faults" \
  "$bin" run --hybrid "--faults=$gray"
expect_reject "verify drives --shards itself" \
  "$bin" verify "${scenario[@]}" --shards=4
expect_reject "verify drives --json itself" \
  "$bin" verify "${scenario[@]}" --json=out.json
expect_reject "\-\-invariants is serial-only" \
  "$bin" verify "${scenario[@]}" --invariants
expect_reject "\-\-hybrid is serial-engine-only" \
  "$bin" verify --hybrid
echo "rejects pinned"
echo "OK"
