#!/usr/bin/env python3
"""Minimal validator for the Chrome trace-event JSON that xmpsim --trace
emits (the "JSON object format" Perfetto's legacy importer accepts).

    scripts/validate_trace.py trace.json [--require-counter PREFIX ...]

Checks:
  * the file parses as a JSON object with a "traceEvents" list
  * every event has a string "name", a known "ph", an integer "pid",
    and (except metadata events) a numeric "ts"
  * counter ("C") events carry an "args" object of numeric series
  * metadata ("M") events are process_name/thread_name with args.name
  * with --require-counter, at least one counter event's name starts
    with each given prefix (e.g. "cwnd[" and "gain[" prove the
    per-subflow tracks made it into the export)

Exit code 0 when valid; 1 with a diagnostic otherwise.
"""

import argparse
import json
import numbers
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"}


def fail(msg: str) -> None:
    sys.exit(f"invalid trace: {msg}")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument(
        "--require-counter",
        action="append",
        default=[],
        metavar="PREFIX",
        help="require a counter track whose name starts with PREFIX",
    )
    opts = ap.parse_args()

    try:
        with open(opts.trace) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {opts.trace}: {e}")

    if not isinstance(data, dict):
        fail("top level is not a JSON object")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" array')

    counter_names = set()
    phases = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where} is not an object")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where} has no name")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{where} ({name!r}) has unknown phase {ph!r}")
        phases[ph] = phases.get(ph, 0) + 1
        if not isinstance(ev.get("pid"), int):
            fail(f"{where} ({name!r}) has no integer pid")
        if ph == "M":
            if name not in ("process_name", "thread_name", "process_labels",
                            "process_sort_index", "thread_sort_index"):
                fail(f"{where} is metadata with unexpected name {name!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"{where} ({name!r}) metadata has no args")
            continue
        if not isinstance(ev.get("ts"), numbers.Real):
            fail(f"{where} ({name!r}) has no numeric ts")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"{where} counter {name!r} has no args")
            for k, v in args.items():
                if not isinstance(v, numbers.Real) or isinstance(v, bool):
                    fail(f"{where} counter {name!r} series {k!r} is not numeric")
            counter_names.add(name)

    for prefix in opts.require_counter:
        if not any(n.startswith(prefix) for n in counter_names):
            fail(
                f"no counter track starting with {prefix!r} "
                f"(saw: {', '.join(sorted(counter_names)) or 'none'})"
            )

    summary = ", ".join(f"{ph}={n}" for ph, n in sorted(phases.items()))
    print(
        f"OK: {len(events)} events ({summary}), "
        f"{len(counter_names)} counter tracks"
    )


if __name__ == "__main__":
    main()
