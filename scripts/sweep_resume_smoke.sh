#!/usr/bin/env bash
# Resilient-sweep resume smoke: SIGKILL a campaign partway through, resume
# it, and require the final aggregate summary to be byte-identical to an
# uninterrupted campaign of the same grid. This is the end-to-end check of
# the orchestrator's crash-isolation + atomic-manifest + resume contract
# (unit-level coverage lives in tests/core/orchestrator_test.cpp).
#
#   scripts/sweep_resume_smoke.sh [build-dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
bin="$build/apps/xmpsim"
[ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
campaign=""
cleanup() {
  # Reap the campaign's whole process group if the kill below never ran
  # (setsid makes the campaign its own group leader).
  if [ -n "$campaign" ]; then kill -9 -- "-$campaign" 2>/dev/null || true; fi
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# One worker + several jobs so the SIGKILL reliably lands mid-campaign;
# every job is deterministic, so the reference and the resumed campaign
# compute identical per-job results.
total=8
sweep_args=(sweep --param=seed --values=1,2,3,4,5,6,7,8 --pattern=random
            --scheme=xmp --k=4 --duration=0.05 --jobs=1 --retries=1)

succeeded_jobs() {
  grep -c '"state": "succeeded"' "$tmp/int/sweep_manifest.json" 2>/dev/null || true
}

echo "== sweep resume smoke: uninterrupted reference =="
"$bin" "${sweep_args[@]}" "--out=$tmp/ref" > "$tmp/ref.txt"

echo "== sweep resume smoke: interrupted campaign =="
# Run the same campaign in its own process group and SIGKILL the whole
# group partway through: neither the orchestrator nor its children get a
# chance to clean up — exactly the crash the manifest must survive.
setsid "$bin" "${sweep_args[@]}" "--out=$tmp/int" > "$tmp/int.txt" 2>&1 &
campaign=$!
# Wait until some — but not all — jobs have succeeded, then pull the plug.
for _ in $(seq 1 400); do
  n="$(succeeded_jobs)"
  [ "${n:-0}" -ge 2 ] && break
  sleep 0.05
done
kill -9 -- "-$campaign" 2>/dev/null || true
wait "$campaign" 2>/dev/null || true
campaign=""

done_jobs="$(succeeded_jobs)"
done_jobs="${done_jobs:-0}"
echo "   killed campaign with $done_jobs/$total jobs succeeded"
if [ "$done_jobs" -lt 1 ] || [ "$done_jobs" -ge "$total" ]; then
  echo "FAIL: kill did not land mid-campaign ($done_jobs/$total done) — tune the job count" >&2
  exit 1
fi
if [ -f "$tmp/int/sweep_summary.json" ]; then
  echo "FAIL: interrupted campaign must not have published a summary" >&2
  exit 1
fi

echo "== sweep resume smoke: resume =="
"$bin" sweep "--resume=$tmp/int" > "$tmp/resume.txt"

# The acceptance bar: byte-identical aggregate summary.
if ! cmp "$tmp/ref/sweep_summary.json" "$tmp/int/sweep_summary.json"; then
  echo "FAIL: resumed summary differs from uninterrupted summary" >&2
  diff "$tmp/ref/sweep_summary.json" "$tmp/int/sweep_summary.json" >&2 || true
  exit 1
fi
# And the resume must have skipped the already-succeeded jobs.
python3 - "$tmp/int/harness_metrics.json" "$done_jobs" "$total" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["counters"]
done_at_kill, total = int(sys.argv[2]), int(sys.argv[3])
assert m["harness.jobs_resumed"] >= done_at_kill, f"resume re-ran settled jobs: {m}"
assert m["harness.spawns"] <= total - done_at_kill + m["harness.retries"], \
    f"too many spawns for a resume: {m}"
EOF

# A second resume of the now-complete campaign is a pure no-op and the
# summary stays stable.
"$bin" sweep "--resume=$tmp/int" > /dev/null
cmp "$tmp/ref/sweep_summary.json" "$tmp/int/sweep_summary.json"

echo "sweep resume smoke OK"
