#!/usr/bin/env bash
# Benchmark regression gate for CI.
#
#   scripts/bench_gate.sh [build-dir] [new-results.json]
#
# Runs bench/run_benches.sh in quick mode (single repetition) into
# `new-results.json` (default: BENCH_new.json) and compares every benchmark
# against the committed BENCH_micro.json baseline. Fails if any benchmark's
# rate (items_per_second, falling back to 1/real_time) regresses by more
# than BENCH_GATE_TOLERANCE (default 0.15 = 15%).
#
# Benchmarks present on only one side are reported but never fail the gate:
# new benchmarks have no baseline yet, and retired ones have no new number.
# CI wires this as a separate, non-required job — shared runners are noisy,
# so a red gate is a prompt to look, not an automatic block.
#
# Exit codes: 0 = within the band, 1 = at least one benchmark breached it,
# 2 = the comparison itself is invalid (missing baseline, or the baseline's
# recorded context — build type, normalization — differs from the new run,
# in which case the rates are not comparable at all).
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
new_json="${2:-BENCH_new.json}"
baseline="BENCH_micro.json"
tolerance="${BENCH_GATE_TOLERANCE:-0.15}"

if [[ ! -f "$baseline" ]]; then
  echo "error: no committed baseline at $baseline" >&2
  exit 2
fi

BENCH_REPS=1 bench/run_benches.sh "$build_dir" "$new_json"

python3 - "$baseline" "$new_json" "$tolerance" <<'EOF'
import json, sys

baseline_path, new_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])

# A baseline is only meaningful against a run measured the same way. The
# committed baseline records the keys that change what the numbers mean
# (library_build_type, normalized); any mismatch makes every comparison
# below garbage, so bail with exit 2 before printing a single rate.
def context(path):
    with open(path) as f:
        ctx = json.load(f).get("context", {})
    return {k: ctx.get(k) for k in ("library_build_type", "normalized")}

base_ctx, new_ctx = context(baseline_path), context(new_path)
if base_ctx != new_ctx:
    print(f"error: benchmark context mismatch — rates are not comparable", file=sys.stderr)
    for k in sorted(base_ctx):
        if base_ctx[k] != new_ctx[k]:
            print(f"  {k}: baseline={base_ctx[k]!r} new={new_ctx[k]!r}", file=sys.stderr)
    sys.exit(2)

def rates(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "mean":
            continue  # with repetitions, compare means only
        rate = b.get("items_per_second")
        if rate is None:
            # Rate-less benchmarks: lower real_time is better, so compare 1/t.
            t = b.get("real_time")
            rate = 1.0 / t if t else None
        if rate:
            out[b["name"]] = rate
    return out

base, new = rates(baseline_path), rates(new_path)
if not new:
    sys.exit(f"error: no benchmarks in {new_path}")

failures = []
print(f"{'benchmark':<45} {'baseline':>12} {'new':>12} {'delta':>8}")
for name in sorted(base):
    if name not in new:
        print(f"{name:<45} {'(retired: no new result)':>34}")
        continue
    delta = (new[name] - base[name]) / base[name]
    flag = ""
    if delta < -tol:
        flag = "  << REGRESSION"
        failures.append((name, delta))
    print(f"{name:<45} {base[name]:12.3g} {new[name]:12.3g} {delta:+7.1%}{flag}")
for name in sorted(set(new) - set(base)):
    print(f"{name:<45} {'(new: no baseline)':>34}")

if failures:
    print(f"\nFAIL: {len(failures)} benchmark(s) breached the -{tol:.0%} band:")
    for name, delta in failures:
        print(f"  {name}: {delta:+.1%} ({abs(delta) - tol:+.1%} beyond the band) "
              f"[{base[name]:.3g} -> {new[name]:.3g} items/s]")
    sys.exit(1)
print(f"\nOK: no benchmark regressed more than {tol:.0%}")
EOF
