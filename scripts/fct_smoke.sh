#!/usr/bin/env bash
# FCT study smoke: a tiny open-loop Poisson campaign (load x scheme grid on
# the websearch CDF) must (a) emit a schema-valid fct_summary.json, (b) be
# byte-identical across two seeded runs, and (c) survive a SIGKILL partway
# through and --resume to the exact same bytes. This is the end-to-end check
# of the empirical workload engine + FCT harness contract (unit-level
# coverage lives in tests/workload/empirical_test.cpp and
# tests/workload/traffic_matrix_test.cpp).
#
#   scripts/fct_smoke.sh [build-dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
bin="$build/apps/xmpsim"
[ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
campaign=""
cleanup() {
  if [ -n "$campaign" ]; then kill -9 -- "-$campaign" 2>/dev/null || true; fi
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# 2 loads x 4 schemes = 8 deterministic jobs, each ~1s of wall clock;
# --jobs=1 so the SIGKILL below reliably lands mid-campaign.
total=8
sweep_args=(sweep --param=load --values=0.1,0.3 --schemes=xmp,dctcp,lia,olia
            --workload=configs/workloads/websearch.wl
            --k=4 --duration=1.0 --seed=5 --jobs=1 --retries=1)

succeeded_jobs() {
  grep -c '"state": "succeeded"' "$tmp/int/sweep_manifest.json" 2>/dev/null || true
}

echo "== fct smoke: seeded reference campaign =="
"$bin" "${sweep_args[@]}" "--out=$tmp/ref" > "$tmp/ref.txt"
[ -f "$tmp/ref/fct_summary.json" ] || { echo "FAIL: no fct_summary.json" >&2; exit 1; }

echo "== fct smoke: schema =="
python3 - "$tmp/ref/fct_summary.json" "$total" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
total = int(sys.argv[2])
assert doc["param"] == "load", doc.get("param")
table = doc["table"]
assert len(table) == total, f"expected {total} rows, got {len(table)}"
bins = ["0-10K", "10K-100K", "100K-1M", "1M-10M", ">10M"]
quantile_keys = {"count", "mean", "p50", "p95", "p99"}
for row in table:
    for key in ("index", "value", "scheme", "offered_load", "completed", "censored"):
        assert key in row, f"row missing {key}: {row}"
    assert row["scheme"] in ("xmp", "dctcp", "lia", "olia"), row["scheme"]
    assert 0 < row["value"] <= 1.2, row["value"]
    assert set(row["all"]) == quantile_keys, row["all"]
    assert set(row["bins"]) == set(bins), sorted(row["bins"])
    for b in bins:
        assert set(row["bins"][b]) == quantile_keys
    # Open-loop accounting: every arrival is either completed or censored,
    # and the completed count must match the "all" distribution's count.
    assert row["all"]["count"] == row["completed"], row
    if row["completed"] > 0:
        assert row["all"]["p50"] >= 1.0, f"slowdown below ideal: {row}"
        assert row["all"]["p99"] >= row["all"]["p50"], row
completed = sum(r["completed"] for r in table)
assert completed > 0, "campaign completed zero flows"
print(f"   schema OK: {len(table)} rows, {completed} completed flows")
EOF

echo "== fct smoke: second seeded run is byte-identical =="
"$bin" "${sweep_args[@]}" "--out=$tmp/ref2" > "$tmp/ref2.txt"
if ! cmp "$tmp/ref/fct_summary.json" "$tmp/ref2/fct_summary.json"; then
  echo "FAIL: two identical seeded campaigns disagree" >&2
  exit 1
fi

echo "== fct smoke: interrupted campaign =="
setsid "$bin" "${sweep_args[@]}" "--out=$tmp/int" > "$tmp/int.txt" 2>&1 &
campaign=$!
for _ in $(seq 1 400); do
  n="$(succeeded_jobs)"
  [ "${n:-0}" -ge 2 ] && break
  sleep 0.05
done
kill -9 -- "-$campaign" 2>/dev/null || true
wait "$campaign" 2>/dev/null || true
campaign=""

done_jobs="$(succeeded_jobs)"
done_jobs="${done_jobs:-0}"
echo "   killed campaign with $done_jobs/$total jobs succeeded"
if [ "$done_jobs" -lt 1 ] || [ "$done_jobs" -ge "$total" ]; then
  echo "FAIL: kill did not land mid-campaign ($done_jobs/$total done) — tune the grid" >&2
  exit 1
fi
if [ -f "$tmp/int/fct_summary.json" ]; then
  echo "FAIL: interrupted campaign must not have published fct_summary.json" >&2
  exit 1
fi

echo "== fct smoke: resume =="
"$bin" sweep "--resume=$tmp/int" > "$tmp/resume.txt"
if ! cmp "$tmp/ref/fct_summary.json" "$tmp/int/fct_summary.json"; then
  echo "FAIL: resumed fct_summary.json differs from uninterrupted campaign" >&2
  diff "$tmp/ref/fct_summary.json" "$tmp/int/fct_summary.json" >&2 || true
  exit 1
fi
cmp "$tmp/ref/sweep_summary.json" "$tmp/int/sweep_summary.json"

echo "fct smoke OK"
