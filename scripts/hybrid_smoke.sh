#!/usr/bin/env bash
# Hybrid fluid/packet engine smoke (DESIGN.md §14): a CLI-level sweep of the
# properties the hybrid ctest label pins at the library level —
#   1. fixed-seed determinism: two identical hybrid runs byte-identical
#      (summary JSON, metrics dump and stdout);
#   2. physical tolerance band: fluid throughput positive and bounded by the
#      fabric edge capacity, marking probability a probability, the tick
#      count exactly duration/tick, and the aggregate accounting closed
#      (bg = still-fluid + promoted + completed);
#   3. SIGKILL mid-run + --restore reproduces the uninterrupted run byte for
#      byte, fluid state included;
#   4. strict flag validation: every unsupported combination is a one-line
#      exit-2 reject, including restoring a non-hybrid snapshot.
#
#   scripts/hybrid_smoke.sh [build-dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
bin="$(pwd)/$build/apps/xmpsim"
[ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 500 fluid background aggregates + 2 packet foreground flows, 0.2 s of sim
# time: long enough for promotions and a few marking duty cycles, short
# enough for CI. Finite 2 MB background flows with a 256 kB promotion tail
# exercise the fluid -> packet handover.
base=(run --hybrid --scheme=xmp --subflows=2 --k=4
      --hybrid-bg=500:2000000 --hybrid-fg=2 --hybrid-promote-bytes=256000
      --duration=0.2 --seed=11)

echo "== hybrid smoke: fixed-seed determinism =="
for d in a b; do
  mkdir -p "$tmp/$d"
  (cd "$tmp/$d" && "$bin" "${base[@]}" --json=summary.json --metrics=metrics.json > out.txt)
done
for f in summary.json metrics.json out.txt; do
  cmp "$tmp/a/$f" "$tmp/b/$f" || {
    echo "FAIL: $f differs between identical hybrid runs (determinism broken)" >&2
    exit 1
  }
done
echo "two identical hybrid runs byte-identical"

echo "== hybrid smoke: tolerance band =="
python3 - "$tmp/a/summary.json" <<'EOF'
import json, sys
h = json.load(open(sys.argv[1]))["hybrid"]
# k=4 fat tree, 10 Gbps links, 16 hosts: edge capacity 160 Gbps.
assert 0 < h["fluid_throughput_mbps"] <= 160000, h
assert 0.0 <= h["mean_mark_p"] <= 1.0, h
# 0.2 s at the default 200 us tick.
assert h["ticks"] == 1000, h
accounted = h["active_fluid"] + h["promotions"] + h["fluid_completions"]
assert accounted == h["bg_flows"], h
# Finite 2 MB flows with a 256 kB tail threshold must actually promote.
assert h["promotions"] > 0, h
print(f"band ok: fluid {h['fluid_throughput_mbps']:.0f} Mbps, "
      f"mark p {h['mean_mark_p']:.3f}, promotions {h['promotions']}")
EOF

echo "== hybrid smoke: SIGKILL + restore byte-identity =="
newest_ckpt() {
  ls "$1"/ckpt_*.bin 2>/dev/null | sort -t_ -k2 -n | tail -1
}
ref="$tmp/ref"; mkdir -p "$ref"
(cd "$ref" && "$bin" "${base[@]}" --checkpoint-every=0.005 --checkpoint-dir=. \
  --json=summary.json --metrics=metrics.json > out.txt)
kill_dir="$tmp/kill"; mkdir -p "$kill_dir"
(cd "$kill_dir" && exec "$bin" "${base[@]}" --checkpoint-every=0.005 --checkpoint-dir=. \
  --json=summary.json --metrics=metrics.json > out.txt 2>&1) &
pid=$!
for _ in $(seq 1 200); do
  [ -n "$(newest_ckpt "$kill_dir")" ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
kill -KILL "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
ck="$(newest_ckpt "$kill_dir")"
[ -n "$ck" ] || { echo "FAIL: no checkpoint on disk after kill" >&2; exit 1; }
(cd "$kill_dir" && "$bin" "${base[@]}" --checkpoint-every=0.005 --checkpoint-dir=. \
  "--restore=$(basename "$ck")" --json=summary.json --metrics=metrics.json > out.txt)
for f in summary.json metrics.json out.txt; do
  cmp "$ref/$f" "$kill_dir/$f" || {
    echo "FAIL: $f differs after kill+resume of a hybrid run" >&2
    exit 1
  }
done
echo "hybrid kill+resume summary/metrics byte-identical"

echo "== hybrid smoke: unsupported combinations rejected =="
expect_reject() {
  local what="$1"; shift
  set +e
  "$bin" "$@" > /dev/null 2> "$tmp/err.txt"
  local rc=$?
  set -e
  [ "$rc" -eq 2 ] || {
    echo "FAIL: $what exited $rc, want 2" >&2
    cat "$tmp/err.txt" >&2
    exit 1
  }
  [ "$(wc -l < "$tmp/err.txt")" -ge 1 ] || {
    echo "FAIL: $what rejected without a diagnostic" >&2
    exit 1
  }
  echo "rejected: $what"
}
expect_reject "--hybrid-bg without --hybrid" run --hybrid-bg=10 --duration=0.01
expect_reject "--hybrid with --scheme=tcp" run --hybrid --scheme=tcp --duration=0.01
expect_reject "--hybrid with --shards" run --hybrid --scheme=xmp --subflows=2 --shards=2 --duration=0.01
expect_reject "--hybrid with --pattern" run --hybrid --scheme=xmp --subflows=2 --pattern=stride --duration=0.01
expect_reject "--hybrid with bad bg spec" run --hybrid --scheme=xmp --subflows=2 --hybrid-bg=0 --duration=0.01
expect_reject "--fct-csv without --workload" run --pattern=permutation --fct-csv=x.csv --duration=0.01

# A snapshot from a non-hybrid run must never restore into a hybrid run:
# the config fingerprint differs, so the header check rejects it.
plain="$tmp/plain"; mkdir -p "$plain"
(cd "$plain" && "$bin" run --pattern=permutation --scheme=xmp --subflows=2 --k=4 \
  --duration=0.05 --seed=11 --checkpoint-every=0.005 --checkpoint-dir=. > out.txt)
pck="$(newest_ckpt "$plain")"
[ -n "$pck" ] || { echo "FAIL: plain run wrote no checkpoint" >&2; exit 1; }
expect_reject "non-hybrid snapshot into hybrid run" \
  run --hybrid --scheme=xmp --subflows=2 --k=4 --duration=0.2 --seed=11 \
  --checkpoint-dir="$tmp" "--restore=$pck"
echo "OK"
