#!/usr/bin/env bash
# Checkpoint/restore smoke (DESIGN.md §12): SIGKILL an xmpsim run mid-flight,
# resume it from the newest on-disk snapshot, and require the summary JSON,
# timeline CSV, metrics dump AND stdout summary to be byte-for-byte identical
# to an uninterrupted reference run — in the serial engine and at --shards=2.
# Then damage the newest snapshot and require a clean one-line exit-2
# rejection, and exercise the SIGTERM path (final checkpoint + exit 143) and
# `xmpsim replay` on the snapshot it leaves behind.
#
#   scripts/ckpt_smoke.sh [build-dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
bin="$(pwd)/$build/apps/xmpsim"
[ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Long enough wall-clock to be killable, checkpoints every 5 ms of sim time.
base=(run --pattern=permutation --scheme=xmp --subflows=2 --k=4
      --rounds=2 --duration=0.4 --seed=11 --checkpoint-every=0.005)

newest_ckpt() {
  ls "$1"/ckpt_*.bin 2>/dev/null | sort -t_ -k2 -n | tail -1
}

for shards in 0 2; do
  tag="serial"; extra=()
  if [ "$shards" -gt 0 ]; then tag="shards=$shards"; extra=("--shards=$shards"); fi
  # Each run executes from inside its own directory with relative output
  # paths, so the stdout summaries (which print those paths) are comparable
  # byte for byte.
  echo "== ckpt smoke ($tag): reference run =="
  ref="$tmp/ref-$shards"; mkdir -p "$ref"
  (cd "$ref" && "$bin" "${base[@]}" "${extra[@]}" --checkpoint-dir=. \
    --json=summary.json --trace-csv=trace.csv --metrics=metrics.json \
    > out.txt)

  echo "== ckpt smoke ($tag): SIGKILL mid-run =="
  kill_dir="$tmp/kill-$shards"; mkdir -p "$kill_dir"
  (cd "$kill_dir" && exec "$bin" "${base[@]}" "${extra[@]}" --checkpoint-dir=. \
    --json=summary.json --trace-csv=trace.csv --metrics=metrics.json \
    > out.txt 2>&1) &
  pid=$!
  # Kill as soon as the first snapshot is published (atomic rename: any
  # visible ckpt_*.bin is complete). If the run wins the race and finishes,
  # the resume below still re-runs the tail from the last snapshot.
  for _ in $(seq 1 200); do
    [ -n "$(newest_ckpt "$kill_dir")" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
  done
  kill -KILL "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  ck="$(newest_ckpt "$kill_dir")"
  [ -n "$ck" ] || { echo "FAIL($tag): no checkpoint on disk after kill" >&2; exit 1; }

  echo "== ckpt smoke ($tag): resume from $(basename "$ck") =="
  (cd "$kill_dir" && "$bin" "${base[@]}" "${extra[@]}" --checkpoint-dir=. \
    "--restore=$(basename "$ck")" \
    --json=summary.json --trace-csv=trace.csv --metrics=metrics.json \
    > out.txt)

  for f in summary.json trace.csv metrics.json out.txt; do
    cmp "$ref/$f" "$kill_dir/$f" || {
      echo "FAIL($tag): $f differs after kill+resume (determinism broken)" >&2
      exit 1
    }
  done
  echo "$tag: kill+resume summary/trace/metrics byte-identical"
done

echo "== ckpt smoke: corrupted snapshot rejected =="
ref="$tmp/ref-0"
ck="$(newest_ckpt "$ref")"
bad="$tmp/bad.bin"
cp "$ck" "$bad"
# Flip one payload byte; the CRC check must reject it with exit 2 and a
# one-line diagnostic, without touching any simulation state.
printf '\x5a' | dd of="$bad" bs=1 seek=80 conv=notrunc status=none
set +e
"$bin" "${base[@]}" "--checkpoint-dir=$tmp" "--restore=$bad" \
  > /dev/null 2> "$tmp/reject-err.txt"
rc=$?
set -e
[ "$rc" -eq 2 ] || { echo "FAIL: corrupt restore exited $rc, want 2" >&2; exit 1; }
grep -q "restore failed" "$tmp/reject-err.txt" || {
  echo "FAIL: no 'restore failed' diagnostic on stderr" >&2
  cat "$tmp/reject-err.txt" >&2
  exit 1
}
echo "corrupt snapshot rejected with exit 2"

echo "== ckpt smoke: SIGTERM writes a final snapshot and exits 143 =="
term_dir="$tmp/term"; mkdir -p "$term_dir"
"$bin" "${base[@]}" "--checkpoint-dir=$term_dir" > "$term_dir/out.txt" 2> "$term_dir/err.txt" &
pid=$!
for _ in $(seq 1 200); do
  [ -n "$(newest_ckpt "$term_dir")" ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
kill -TERM "$pid" 2>/dev/null || true
set +e
wait "$pid"
rc=$?
set -e
if [ "$rc" -eq 143 ]; then
  grep -q "interrupted at" "$term_dir/err.txt" || {
    echo "FAIL: exit 143 without the 'interrupted at' notice" >&2; exit 1; }
  ck="$(newest_ckpt "$term_dir")"
  [ -n "$ck" ] || { echo "FAIL: exit 143 but no checkpoint on disk" >&2; exit 1; }
  # The replay subcommand must accept the final snapshot and run it to
  # completion with extra observability enabled.
  "$bin" replay "--restore=$ck" --pattern=permutation --scheme=xmp --subflows=2 \
    --k=4 --rounds=2 --duration=0.4 --seed=11 --invariants \
    > "$term_dir/replay.txt"
  grep -q "invariant" "$term_dir/replay.txt" || {
    echo "FAIL: replay --invariants produced no invariant summary" >&2; exit 1; }
  echo "SIGTERM -> exit 143 with resumable snapshot; replay OK"
else
  # The run can legitimately win the race and finish before the signal
  # lands; that is not a failure of the SIGTERM path, just an empty sample.
  [ "$rc" -eq 0 ] || { echo "FAIL: SIGTERM run exited $rc (want 143 or 0)" >&2; exit 1; }
  echo "SIGTERM run finished before the signal landed (rc=0); skipped"
fi
echo "OK"
