#!/usr/bin/env bash
# Routing-policy smoke matrix: every RoutingPolicy through the CLI, with and
# without an injected link failure, asserting the run finishes and the
# summary JSON reports the policy it was asked for. The finer-grained
# leaf-spine x policy matrix lives in tests/route/reroute_test.cpp; this
# script is the end-to-end (CLI -> experiment -> export) lane.
#
#   scripts/route_smoke.sh [build-dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
bin="$build/apps/xmpsim"
[ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# One rack uplink and one core link fail mid-run, then the rack link heals:
# exercises reroute convergence and re-spread in both directions.
fault_plan='down,link=4,at=0.05; down,link=40,at=0.05; up,link=4,at=0.2'

for policy in pinned ecmp wcmp flowlet; do
  for faults in none plan; do
    label="$policy/$faults"
    json="$tmp/summary-$policy-$faults.json"
    args=(run --pattern=permutation --scheme=xmp --subflows=2 --k=4
          --duration=0.3 --seed=7 "--routing=$policy" "--json=$json")
    if [ "$faults" = plan ]; then
      args+=("--faults=$fault_plan" --reroute-delay=0.002)
    fi
    echo "== route smoke: $label =="
    "$bin" "${args[@]}" > "$tmp/out-$policy-$faults.txt"
    grep -q "\"policy\": \"$policy\"" "$json" || {
      echo "FAIL($label): summary JSON does not report policy '$policy'" >&2
      exit 1
    }
    # The routing block must be present and internally consistent: packets
    # were forwarded, and a faulted run on a survivable topology reroutes.
    python3 - "$json" "$policy" "$faults" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
routing = summary["routing"]
assert routing["policy"] == sys.argv[2], routing
assert routing["forwarded"] > 0, "no packets traversed the fabric"
if sys.argv[3] == "plan":
    assert routing["reroutes"] >= 1, "fault plan injected but no reroute happened"
EOF
  done
done
echo "route smoke OK"
