#!/usr/bin/env bash
# Sharded-engine smoke: the same experiment through the CLI at --shards=1,
# 2 and 4, asserting the summary JSON, timeline CSV and metrics dump are
# all byte-for-byte identical across N (worker-count invariance is the
# engine's core guarantee — logical shards are fixed by the topology, so N
# only changes wall-clock, never results).
# Also asserts the up-front one-line rejections for unsupported feature
# combinations exit 2 without running anything.
#
#   scripts/shard_smoke.sh [build-dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
bin="$build/apps/xmpsim"
[ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

base=(run --pattern=permutation --scheme=xmp --subflows=2 --k=4
      --rounds=1 --duration=0.05 --seed=11)

for n in 1 2 4; do
  echo "== shard smoke: --shards=$n =="
  "$bin" "${base[@]}" "--shards=$n" "--json=$tmp/summary-$n.json" \
    "--trace-csv=$tmp/trace-$n.csv" "--metrics=$tmp/metrics-$n.json" \
    > "$tmp/out-$n.txt"
  grep -q '"sharding":' "$tmp/summary-$n.json" || {
    echo "FAIL(--shards=$n): summary JSON has no sharding block" >&2
    exit 1
  }
done

for n in 2 4; do
  for f in summary-X.json trace-X.csv metrics-X.json; do
    cmp "$tmp/${f/X/1}" "$tmp/${f/X/$n}" || {
      echo "FAIL: --shards=$n ${f%%-*} differs from --shards=1 (determinism broken)" >&2
      exit 1
    }
  done
done
echo "shards=1/2/4 summary/trace/metrics byte-identical"

# Unsupported combinations must be rejected up front with exit 2.
expect_exit2() {
  local why="$1"; shift
  set +e
  "$bin" "$@" > /dev/null 2> "$tmp/reject-err.txt"
  local rc=$?
  set -e
  if [ "$rc" -ne 2 ]; then
    echo "FAIL($why): expected exit 2, got $rc" >&2
    cat "$tmp/reject-err.txt" >&2
    exit 1
  fi
  [ -s "$tmp/reject-err.txt" ] || {
    echo "FAIL($why): no diagnostic on stderr" >&2
    exit 1
  }
}
expect_exit2 "random pattern"  run --pattern=random  --scheme=xmp --k=4 --duration=0.01 --shards=2
expect_exit2 "coexist"         run --pattern=permutation --scheme=xmp --coexist=dctcp --k=4 --duration=0.01 --shards=2
expect_exit2 "flowlet routing" run --pattern=permutation --scheme=xmp --routing=flowlet --k=4 --duration=0.01 --shards=2
expect_exit2 "invariants"      run --pattern=permutation --scheme=xmp --invariants --k=4 --duration=0.01 --shards=2
expect_exit2 "rehome"          run --pattern=permutation --scheme=xmp --rehome=1 --k=4 --duration=0.01 --shards=2
echo "unsupported combinations rejected with exit 2"
echo "OK"
