#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/check.sh            # default RelWithDebInfo build + ctest
#   scripts/check.sh asan       # AddressSanitizer + UBSan build + ctest
#   scripts/check.sh tsan       # ThreadSanitizer build + ParallelRunner tests
#
# Every mode finishes with a chaos soak (tests/faults/chaos_soak_test.cpp)
# at a CHAOS_RUNS volume sized to the preset's sanitizer overhead.
#   scripts/check.sh all        # default, then asan, then tsan
#   scripts/check.sh routing    # default build + routing-policy smoke matrix
#   scripts/check.sh sweep      # default build + sweep kill/resume smoke
#   scripts/check.sh shard      # default build + sharded-engine CLI smoke
#   scripts/check.sh ckpt       # default build + checkpoint kill/resume smoke
#   scripts/check.sh fct        # default build + FCT study kill/resume smoke
#   scripts/check.sh hybrid     # default build + hybrid fluid/packet smoke
#   scripts/check.sh gray       # default build + gray-failure verify diff
#
# The tsan mode also runs the "shard" ctest label (the sharded engine's
# worker pool) under ThreadSanitizer; the default mode finishes with the
# shard CLI smoke (scripts/shard_smoke.sh: --shards=1/2/4 byte-compare).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${JOBS:-$(nproc)}"

# An interrupted check must not leave build/test children (ctest workers,
# chaos soak, smoke-script campaigns) running in the background.
on_interrupt() {
  trap - INT TERM
  pkill -P $$ 2>/dev/null || true
  exit 130
}
trap on_interrupt INT TERM

run_preset() {
  local preset="$1"
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  # The chaos soak (hundreds of randomized fault-injection runs, ctest
  # label "chaos") is excluded from the fast suite and run separately with
  # a volume matched to the preset's sanitizer overhead.
  ctest --preset "$preset" -j "$jobs" -LE chaos
}

run_chaos() {
  local build_dir="$1" runs="$2"
  echo "== chaos soak: $build_dir (CHAOS_RUNS=$runs) =="
  CHAOS_RUNS="$runs" "$build_dir/tests/test_chaos"
}

run_routing() {
  echo "== routing smoke =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target xmpsim
  scripts/route_smoke.sh build
}

run_sweep() {
  echo "== sweep resume smoke =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target xmpsim
  scripts/sweep_resume_smoke.sh build
}

run_shard_smoke() {
  echo "== shard smoke =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target xmpsim
  scripts/shard_smoke.sh build
}

# SIGKILL + --restore byte-identity, corrupt-snapshot rejection, SIGTERM
# exit-143 and replay (scripts/ckpt_smoke.sh), serial and sharded.
run_ckpt_smoke() {
  echo "== ckpt smoke =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target xmpsim
  scripts/ckpt_smoke.sh build
}

# Empirical-workload FCT campaign: schema-valid fct_summary.json, byte-
# identical across seeded runs and across SIGKILL + --resume
# (scripts/fct_smoke.sh).
run_fct_smoke() {
  echo "== fct smoke =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target xmpsim
  scripts/fct_smoke.sh build
}

# Hybrid fluid/packet engine: fixed-seed determinism, physical tolerance
# band, SIGKILL + --restore byte-identity and strict flag rejection
# (scripts/hybrid_smoke.sh), on top of the `hybrid` ctest label.
run_hybrid_smoke() {
  echo "== hybrid smoke =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target xmpsim
  scripts/hybrid_smoke.sh build
}

# Gray-failure differential validation: `xmpsim verify` (serial vs
# --shards=2 vs checkpointed vs SIGKILL+--restore, byte-compared) over a
# plan crossing every gray fault kind, plus the fault-layer CLI rejects
# (scripts/gray_diff.sh), on top of the `gray` ctest label.
run_gray_diff() {
  echo "== gray diff =="
  cmake --preset default
  cmake --build --preset default -j "$jobs" --target xmpsim
  scripts/gray_diff.sh build
}

# The sharded engine's worker pool under ThreadSanitizer: exactly the tests
# labeled "shard" (tests/core/sharded_engine_test.cpp), on top of the tsan
# preset's name-filtered suite.
run_shard_tsan() {
  echo "== shard lane (tsan) =="
  ctest --test-dir build-tsan -L shard -j "$jobs" --output-on-failure
}

case "${1:-default}" in
  default) run_preset default; run_chaos build 210; run_shard_smoke; run_ckpt_smoke; run_fct_smoke; run_hybrid_smoke; run_gray_diff ;;
  asan)    run_preset asan-ubsan; run_chaos build-asan 42 ;;
  tsan)    run_preset tsan; run_shard_tsan; run_chaos build-tsan 14 ;;
  routing) run_routing ;;
  sweep)   run_sweep ;;
  shard)   run_shard_smoke ;;
  ckpt)    run_ckpt_smoke ;;
  fct)     run_fct_smoke ;;
  hybrid)  run_hybrid_smoke ;;
  gray)    run_gray_diff ;;
  all)
    run_preset default; run_chaos build 210
    run_preset asan-ubsan; run_chaos build-asan 42
    run_preset tsan; run_shard_tsan; run_chaos build-tsan 14
    run_routing
    run_sweep
    run_shard_smoke
    run_ckpt_smoke
    run_fct_smoke
    run_hybrid_smoke
    run_gray_diff
    ;;
  *) echo "usage: $0 [default|asan|tsan|all|routing|sweep|shard|ckpt|fct|hybrid|gray]" >&2; exit 2 ;;
esac
echo "OK"
