#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/check.sh            # default RelWithDebInfo build + ctest
#   scripts/check.sh asan       # AddressSanitizer + UBSan build + ctest
#   scripts/check.sh tsan       # ThreadSanitizer build + ParallelRunner tests
#   scripts/check.sh all        # default, then asan, then tsan
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${JOBS:-$(nproc)}"

run_preset() {
  local preset="$1"
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
}

case "${1:-default}" in
  default) run_preset default ;;
  asan)    run_preset asan-ubsan ;;
  tsan)    run_preset tsan ;;
  all)     run_preset default; run_preset asan-ubsan; run_preset tsan ;;
  *) echo "usage: $0 [default|asan|tsan|all]" >&2; exit 2 ;;
esac
echo "OK"
