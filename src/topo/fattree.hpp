#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"
#include "topo/host_pool.hpp"

namespace xmp::topo {

/// k-ary Fat-Tree (Al-Fares et al., SIGCOMM 2008), the paper's simulation
/// topology (§5.2.1): k pods of k/2 edge + k/2 aggregation switches,
/// (k/2)^2 core switches, k^3/4 hosts. For k = 8 that is 80 switches and
/// 128 hosts, all links 1 Gbps, with one-way delays of 20/30/40 µs at the
/// rack/aggregation/core layer.
///
/// Forwarding follows the Two-Level Routing Lookup behaviour: the downward
/// path to a host is unique; upward, each switch spreads deterministically
/// over its k/2 uplinks as a function of (dst, path_tag), so distinct
/// path_tags realize the paper's one-path-per-subflow address trick.
class FatTree final : public HostPool {
 public:
  struct Config {
    int k = 8;                       ///< ports per switch (even, >= 2)
    std::int64_t link_rate_bps = 1'000'000'000;
    sim::Time rack_delay = sim::Time::microseconds(20);
    sim::Time agg_delay = sim::Time::microseconds(30);
    sim::Time core_delay = sim::Time::microseconds(40);
    net::QueueConfig queue;          ///< applied to every link egress
  };

  enum class Layer { Rack, Aggregation, Core };
  enum class Category { InnerRack, InterRack, InterPod };

  FatTree(net::Network& netw, const Config& cfg);

  [[nodiscard]] int n_hosts() const override { return static_cast<int>(hosts_.size()); }
  [[nodiscard]] net::Host& host(int i) override { return *hosts_.at(i); }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Pod / edge-switch coordinates of host i.
  [[nodiscard]] int pod_of(int host) const { return host / hosts_per_pod_; }
  [[nodiscard]] int edge_of(int host) const { return host / (cfg_.k / 2); }
  [[nodiscard]] int rack_of(int host) const override { return edge_of(host); }

  /// Locality class of a (src, dst) host pair (paper Fig. 8c/8d, Fig. 10).
  [[nodiscard]] Category category(int src, int dst) const;

  /// All unidirectional links belonging to a layer (paper Fig. 11).
  [[nodiscard]] const std::vector<net::Link*>& links(Layer l) const;

  /// Number of distinct equal-cost paths between inter-pod hosts: (k/2)^2.
  [[nodiscard]] int inter_pod_paths() const { return (cfg_.k / 2) * (cfg_.k / 2); }

  /// The unidirectional links a src→dst data path traverses, in hop order.
  /// `agg_choice`/`core_choice` (each in [0, k/2)) pick one of the equal-cost
  /// upward paths: agg_choice selects the aggregation switch (and with it the
  /// core group), core_choice the core switch within the group. They are
  /// ignored when the category does not reach that layer. The fluid engine
  /// uses this to pin a background flow onto one concrete path the same way
  /// PinnedPaths routes a subflow — without simulating any packet on it.
  [[nodiscard]] std::vector<net::Link*> path_links(int src, int dst, int agg_choice,
                                                   int core_choice) const;

  /// Logical shards the construction annotates (one per pod; cores spread
  /// round-robin). Fixed by the topology, never by the worker count.
  [[nodiscard]] int n_shards() const { return cfg_.k; }

  /// All switches of a layer, in build order (edge/agg: pod-major; core:
  /// group-major). A core switch uniquely identifies one inter-pod path,
  /// which path-diversity tests and routing-table audits exploit.
  [[nodiscard]] const std::vector<net::Switch*>& switches(Layer l) const;

  [[nodiscard]] static const char* category_name(Category c);
  [[nodiscard]] static const char* layer_name(Layer l);

 private:
  Config cfg_;
  int hosts_per_pod_ = 0;
  std::vector<net::Host*> hosts_;
  std::vector<net::Link*> rack_links_;
  std::vector<net::Link*> agg_links_;
  std::vector<net::Link*> core_links_;
  std::vector<net::Switch*> edge_switches_;
  std::vector<net::Switch*> agg_switches_;
  std::vector<net::Switch*> core_switches_;
};

}  // namespace xmp::topo
