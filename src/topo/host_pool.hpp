#pragma once

#include "net/node.hpp"

namespace xmp::topo {

/// Topology-agnostic view of "a set of hosts" that traffic patterns draw
/// from. FatTree and LeafSpine both implement it, so every workload
/// generator runs unchanged on either fabric.
class HostPool {
 public:
  virtual ~HostPool() = default;

  [[nodiscard]] virtual int n_hosts() const = 0;
  [[nodiscard]] virtual net::Host& host(int i) = 0;

  /// Identifier of the host's rack (edge switch / leaf). Used by patterns
  /// that exclude intra-rack pairs (paper footnote 8).
  [[nodiscard]] virtual int rack_of(int host) const = 0;
};

}  // namespace xmp::topo
