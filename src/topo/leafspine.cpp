#include "topo/leafspine.hpp"

#include <cassert>

namespace xmp::topo {

LeafSpine::LeafSpine(net::Network& netw, const Config& cfg) : cfg_{cfg} {
  assert(cfg_.n_leaves > 0 && cfg_.n_spines > 0 && cfg_.hosts_per_leaf > 0);

  // Shard annotation (inert without a fabric): one logical shard per leaf,
  // spines spread round-robin. Creation order is exactly the serial build's.
  for (int l = 0; l < cfg_.n_leaves; ++l) {
    netw.begin_shard(l);
    leaves_.push_back(&netw.add_switch());
  }
  for (int s = 0; s < cfg_.n_spines; ++s) {
    netw.begin_shard(s % cfg_.n_leaves);
    spines_.push_back(&netw.add_switch());
  }

  // Hosts onto leaves.
  for (int l = 0; l < cfg_.n_leaves; ++l) {
    netw.begin_shard(l);
    for (int h = 0; h < cfg_.hosts_per_leaf; ++h) {
      net::Host& host = netw.add_host();
      const std::size_t before = netw.links().size();
      netw.attach_host(host, *leaves_[static_cast<std::size_t>(l)], cfg_.host_rate_bps,
                       cfg_.host_delay, cfg_.queue);
      host_links_.push_back(netw.links()[before].get());
      host_links_.push_back(netw.links()[before + 1].get());
      hosts_.push_back(&host);
    }
  }

  // Full leaf <-> spine mesh; the spine learns the downward route for every
  // host of the leaf it connects to. A spine's links may be derated
  // (spine_rate_factor) to model an asymmetric fabric; WCMP tables pick up
  // the reduced rate as a reduced weight.
  for (int l = 0; l < cfg_.n_leaves; ++l) {
    for (int s = 0; s < cfg_.n_spines; ++s) {
      double factor = 1.0;
      if (s < static_cast<int>(cfg_.spine_rate_factor.size())) {
        factor = cfg_.spine_rate_factor[static_cast<std::size_t>(s)];
        assert(factor > 0.0);
      }
      const auto rate = static_cast<std::int64_t>(
          static_cast<double>(cfg_.fabric_rate_bps) * factor);
      const auto ports = netw.connect_switches(*leaves_[static_cast<std::size_t>(l)],
                                               *spines_[static_cast<std::size_t>(s)], rate,
                                               cfg_.fabric_delay, cfg_.queue);
      fabric_links_.push_back(ports.a_to_b);
      fabric_links_.push_back(ports.b_to_a);
      leaves_[static_cast<std::size_t>(l)]->add_up_port(ports.on_a);
      for (int h = 0; h < cfg_.hosts_per_leaf; ++h) {
        const int host_index = l * cfg_.hosts_per_leaf + h;
        spines_[static_cast<std::size_t>(s)]->set_host_route(
            hosts_[static_cast<std::size_t>(host_index)]->id(), ports.on_b);
      }
    }
  }
}

}  // namespace xmp::topo
