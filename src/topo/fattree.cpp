#include "topo/fattree.hpp"

#include <cassert>

namespace xmp::topo {

FatTree::FatTree(net::Network& netw, const Config& cfg) : cfg_{cfg} {
  const int k = cfg_.k;
  assert(k >= 2 && k % 2 == 0);
  const int half = k / 2;
  hosts_per_pod_ = half * half;

  // --- create switches ---
  // Shard annotation (inert without a fabric): one logical shard per pod.
  // Core switches are spread round-robin over the pod shards, so every
  // shard owns ~(k/4) cores and the per-shard event load stays balanced.
  // Only begin_shard() calls are added — creation order (and with it every
  // NodeId and LinkId) is exactly the serial build's.
  std::vector<std::vector<net::Switch*>> edge(k), agg(k);
  for (int p = 0; p < k; ++p) {
    netw.begin_shard(p);
    for (int i = 0; i < half; ++i) {
      edge[p].push_back(&netw.add_switch());
      agg[p].push_back(&netw.add_switch());
    }
  }
  // core[g][j]: core group g is wired to aggregation switch #g of each pod.
  std::vector<std::vector<net::Switch*>> core(half);
  for (int g = 0; g < half; ++g) {
    for (int j = 0; j < half; ++j) {
      netw.begin_shard((g * half + j) % k);
      core[g].push_back(&netw.add_switch());
    }
  }
  for (int p = 0; p < k; ++p) {
    edge_switches_.insert(edge_switches_.end(), edge[p].begin(), edge[p].end());
    agg_switches_.insert(agg_switches_.end(), agg[p].begin(), agg[p].end());
  }
  for (int g = 0; g < half; ++g) {
    core_switches_.insert(core_switches_.end(), core[g].begin(), core[g].end());
  }

  // --- hosts + rack layer ---
  for (int p = 0; p < k; ++p) {
    netw.begin_shard(p);
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        net::Host& host = netw.add_host();
        const std::size_t before = netw.links().size();
        netw.attach_host(host, *edge[p][e], cfg_.link_rate_bps, cfg_.rack_delay, cfg_.queue);
        rack_links_.push_back(netw.links()[before].get());      // host -> edge
        rack_links_.push_back(netw.links()[before + 1].get());  // edge -> host
        hosts_.push_back(&host);
      }
    }
  }

  // --- aggregation layer: every edge to every agg in the pod ---
  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        const auto ports = netw.connect_switches(*edge[p][e], *agg[p][a], cfg_.link_rate_bps,
                                                 cfg_.agg_delay, cfg_.queue);
        agg_links_.push_back(ports.a_to_b);
        agg_links_.push_back(ports.b_to_a);
        edge[p][e]->add_up_port(ports.on_a);
        // Agg routes the hosts of this edge switch downward through it.
        for (int h = 0; h < half; ++h) {
          const int host_index = p * hosts_per_pod_ + e * half + h;
          agg[p][a]->set_host_route(hosts_[host_index]->id(), ports.on_b);
        }
      }
    }
  }

  // --- core layer: agg #g of every pod to all cores in group g ---
  for (int p = 0; p < k; ++p) {
    for (int g = 0; g < half; ++g) {
      for (int j = 0; j < half; ++j) {
        const auto ports = netw.connect_switches(*agg[p][g], *core[g][j], cfg_.link_rate_bps,
                                                 cfg_.core_delay, cfg_.queue);
        core_links_.push_back(ports.a_to_b);
        core_links_.push_back(ports.b_to_a);
        agg[p][g]->add_up_port(ports.on_a);
        // The core switch reaches every host of pod p through this agg.
        for (int h = 0; h < hosts_per_pod_; ++h) {
          const int host_index = p * hosts_per_pod_ + h;
          core[g][j]->set_host_route(hosts_[host_index]->id(), ports.on_b);
        }
      }
    }
  }
}

std::vector<net::Link*> FatTree::path_links(int src, int dst, int agg_choice,
                                            int core_choice) const {
  const int half = cfg_.k / 2;
  assert(src != dst);
  assert(agg_choice >= 0 && agg_choice < half);
  assert(core_choice >= 0 && core_choice < half);
  // Link vectors mirror the construction loops exactly:
  //   rack_links_[2i]   = host i → edge,   [2i+1] = edge → host i
  //   agg_links_ at idx2 = (p·half + e)·half + a:
  //     [2·idx2] = edge → agg (up),        [2·idx2+1] = agg → edge (down)
  //   core_links_ at idx3 = (p·half + g)·half + j:
  //     [2·idx3] = agg → core (up),        [2·idx3+1] = core → agg (down)
  const int p_src = pod_of(src), p_dst = pod_of(dst);
  const int e_src = edge_of(src) - p_src * half;  // edge index within pod
  const int e_dst = edge_of(dst) - p_dst * half;
  std::vector<net::Link*> path;
  path.push_back(rack_links_[2 * static_cast<std::size_t>(src)]);
  if (edge_of(src) != edge_of(dst)) {
    const int g = agg_choice;  // agg switch (and core group) on the way up
    const std::size_t up2 = static_cast<std::size_t>((p_src * half + e_src) * half + g);
    path.push_back(agg_links_[2 * up2]);
    if (p_src != p_dst) {
      const std::size_t up3 = static_cast<std::size_t>((p_src * half + g) * half + core_choice);
      const std::size_t down3 = static_cast<std::size_t>((p_dst * half + g) * half + core_choice);
      path.push_back(core_links_[2 * up3]);
      path.push_back(core_links_[2 * down3 + 1]);
    }
    const std::size_t down2 = static_cast<std::size_t>((p_dst * half + e_dst) * half + g);
    path.push_back(agg_links_[2 * down2 + 1]);
  }
  path.push_back(rack_links_[2 * static_cast<std::size_t>(dst) + 1]);
  return path;
}

FatTree::Category FatTree::category(int src, int dst) const {
  if (pod_of(src) != pod_of(dst)) return Category::InterPod;
  if (edge_of(src) != edge_of(dst)) return Category::InterRack;
  return Category::InnerRack;
}

const std::vector<net::Link*>& FatTree::links(Layer l) const {
  switch (l) {
    case Layer::Rack:
      return rack_links_;
    case Layer::Aggregation:
      return agg_links_;
    case Layer::Core:
      return core_links_;
  }
  return rack_links_;  // unreachable
}

const std::vector<net::Switch*>& FatTree::switches(Layer l) const {
  switch (l) {
    case Layer::Rack:
      return edge_switches_;
    case Layer::Aggregation:
      return agg_switches_;
    case Layer::Core:
      return core_switches_;
  }
  return edge_switches_;  // unreachable
}

const char* FatTree::category_name(Category c) {
  switch (c) {
    case Category::InnerRack:
      return "Inner-Rack";
    case Category::InterRack:
      return "Inter-Rack";
    case Category::InterPod:
      return "Inter-Pod";
  }
  return "?";
}

const char* FatTree::layer_name(Layer l) {
  switch (l) {
    case Layer::Rack:
      return "Rack";
    case Layer::Aggregation:
      return "Aggregation";
    case Layer::Core:
      return "Core";
  }
  return "?";
}

}  // namespace xmp::topo
