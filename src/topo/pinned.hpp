#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"

namespace xmp::topo {

/// Testbed-style topology with explicitly pinned paths (paper Figures 3
/// and 5): a set of two-way bottleneck links, and per host-pair a list of
/// subflow paths, each nailed to one bottleneck.
///
/// For every pair, the source hangs off its own ingress switch and the
/// destination off its own egress switch; subflow k of the pair is routed
/// via the bottleneck named in the pair's path list by `path_tag = k`
/// (TagModulo policy on ingress/egress switches), both for data and for
/// the returning acks. Non-bottleneck links are fast and over-provisioned
/// so the named bottleneck is the only point of congestion — the simulator
/// equivalent of the paper's DummyNet boxes.
class PinnedPaths {
 public:
  struct BottleneckSpec {
    std::int64_t rate_bps;
    sim::Time delay;  ///< one-way propagation of the bottleneck hop
  };

  struct Config {
    std::vector<BottleneckSpec> bottlenecks;
    net::QueueConfig bottleneck_queue;  ///< marking/drop behaviour under test
    /// Hosts in the paper's testbed are multihomed (one NIC per path), so
    /// the access hop never binds; we model that with an over-provisioned
    /// single access link.
    std::int64_t access_rate_bps = 10'000'000'000;
    sim::Time access_delay = sim::Time::microseconds(20);
    std::int64_t inner_rate_bps = 10'000'000'000;
    sim::Time inner_delay = sim::Time::microseconds(20);
  };

  struct Pair {
    net::Host* src = nullptr;
    net::Host* dst = nullptr;
  };

  PinnedPaths(net::Network& netw, const Config& cfg);

  /// Create a source/destination pair whose subflow k traverses bottleneck
  /// `paths[k]`. Use a single-element list for single-path flows.
  Pair add_pair(const std::vector<int>& paths);

  /// Forward-direction bottleneck link (the congested one).
  [[nodiscard]] net::Link& bottleneck(int i) { return *bneck_fwd_.at(i); }

  /// Round-trip time over bottleneck `i`, excluding queueing and
  /// serialization (for picking K against the BDP).
  [[nodiscard]] sim::Time base_rtt(int i) const;

 private:
  net::Network& net_;
  Config cfg_;
  std::vector<net::Switch*> bneck_in_;    ///< A_j: ingress of bottleneck j
  std::vector<net::Switch*> bneck_out_;   ///< B_j: egress of bottleneck j
  std::vector<net::Link*> bneck_fwd_;
  std::vector<std::size_t> bneck_port_on_a_;  ///< A_j's port onto the bottleneck
  std::vector<std::size_t> bneck_port_on_b_;  ///< B_j's port back (reverse)
};

}  // namespace xmp::topo
