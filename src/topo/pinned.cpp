#include "topo/pinned.hpp"

#include <cassert>

namespace xmp::topo {
namespace {

/// Generous drop-tail config for links that must never be the bottleneck.
net::QueueConfig overprovisioned_queue() {
  net::QueueConfig q;
  q.kind = net::QueueConfig::Kind::DropTail;
  q.capacity_packets = 10'000;
  return q;
}

}  // namespace

PinnedPaths::PinnedPaths(net::Network& netw, const Config& cfg) : net_{netw}, cfg_{cfg} {
  for (const BottleneckSpec& spec : cfg_.bottlenecks) {
    net::Switch& a = net_.add_switch();
    net::Switch& b = net_.add_switch();
    const auto ports =
        net_.connect_switches(a, b, spec.rate_bps, spec.delay, cfg_.bottleneck_queue);
    bneck_in_.push_back(&a);
    bneck_out_.push_back(&b);
    bneck_fwd_.push_back(ports.a_to_b);
    bneck_port_on_a_.push_back(ports.on_a);
    bneck_port_on_b_.push_back(ports.on_b);
  }
}

PinnedPaths::Pair PinnedPaths::add_pair(const std::vector<int>& paths) {
  assert(!paths.empty());
  const net::QueueConfig fat = overprovisioned_queue();

  net::Host& src = net_.add_host();
  net::Host& dst = net_.add_host();
  net::Switch& ingress = net_.add_switch();
  net::Switch& egress = net_.add_switch();
  ingress.set_up_port_policy(net::Switch::UpPortPolicy::TagModulo);
  egress.set_up_port_policy(net::Switch::UpPortPolicy::TagModulo);

  net_.attach_host(src, ingress, cfg_.access_rate_bps, cfg_.access_delay, fat);
  net_.attach_host(dst, egress, cfg_.access_rate_bps, cfg_.access_delay, fat);

  for (std::size_t k = 0; k < paths.size(); ++k) {
    const int b = paths[k];
    assert(b >= 0 && b < static_cast<int>(bneck_in_.size()));
    net::Switch& a_sw = *bneck_in_[b];
    net::Switch& b_sw = *bneck_out_[b];

    // Ingress side: ingress <-> A_b. Subflow k's data go up port #k.
    const auto in_ports =
        net_.connect_switches(ingress, a_sw, cfg_.inner_rate_bps, cfg_.inner_delay, fat);
    ingress.add_up_port(in_ports.on_a);
    // A_b forwards data for `dst` onto its bottleneck, and returning acks
    // for `src` back to the ingress switch.
    a_sw.set_host_route(dst.id(), bneck_port_on_a_[b]);
    a_sw.set_host_route(src.id(), in_ports.on_b);

    // Egress side: egress <-> B_b. Subflow k's acks go up port #k.
    const auto out_ports =
        net_.connect_switches(egress, b_sw, cfg_.inner_rate_bps, cfg_.inner_delay, fat);
    egress.add_up_port(out_ports.on_a);
    // B_b forwards data for `dst` down to the egress switch, and acks for
    // `src` back across the (reverse) bottleneck hop.
    b_sw.set_host_route(dst.id(), out_ports.on_b);
    b_sw.set_host_route(src.id(), bneck_port_on_b_[b]);
  }

  // The source's own ingress switch must send acks that arrive for it down
  // to the host; same for data arriving at the egress switch.
  // attach_host() already installed those routes.
  return Pair{&src, &dst};
}

sim::Time PinnedPaths::base_rtt(int i) const {
  const sim::Time one_way = cfg_.access_delay * 2 + cfg_.inner_delay * 2 +
                            cfg_.bottlenecks.at(i).delay;
  return one_way * 2;
}

}  // namespace xmp::topo
