#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"
#include "topo/host_pool.hpp"

namespace xmp::topo {

/// Two-tier leaf–spine (Clos) fabric — the other multi-rooted topology
/// family the paper's related work surveys (VL2-style). Every leaf connects
/// to every spine; hosts hang off leaves. Upward spreading follows the same
/// deterministic (dst, path_tag) hashing as the Fat-Tree, giving one
/// distinct spine path per subflow tag.
class LeafSpine final : public HostPool {
 public:
  struct Config {
    int n_leaves = 4;
    int n_spines = 4;
    int hosts_per_leaf = 4;
    std::int64_t host_rate_bps = 1'000'000'000;
    std::int64_t fabric_rate_bps = 1'000'000'000;  ///< leaf<->spine links
    sim::Time host_delay = sim::Time::microseconds(20);
    sim::Time fabric_delay = sim::Time::microseconds(30);
    net::QueueConfig queue;
    /// Per-spine rate multiplier applied to that spine's fabric links
    /// (missing entries mean 1.0). Models an asymmetric/degraded fabric —
    /// the scenario WCMP weighting exists for. Empty = symmetric, the
    /// pre-existing wiring byte for byte.
    std::vector<double> spine_rate_factor;
  };

  LeafSpine(net::Network& netw, const Config& cfg);

  [[nodiscard]] int n_hosts() const override { return static_cast<int>(hosts_.size()); }
  [[nodiscard]] net::Host& host(int i) override { return *hosts_.at(i); }
  [[nodiscard]] int leaf_of(int host) const { return host / cfg_.hosts_per_leaf; }
  [[nodiscard]] int rack_of(int host) const override { return leaf_of(host); }
  [[nodiscard]] bool same_leaf(int a, int b) const { return leaf_of(a) == leaf_of(b); }

  /// Distinct equal-cost paths between hosts on different leaves.
  [[nodiscard]] int cross_leaf_paths() const { return cfg_.n_spines; }

  /// Logical shards the construction annotates (one per leaf; spines
  /// spread round-robin). Fixed by the topology, never by the worker count.
  [[nodiscard]] int n_shards() const { return cfg_.n_leaves; }

  [[nodiscard]] const std::vector<net::Link*>& host_links() const { return host_links_; }
  [[nodiscard]] const std::vector<net::Link*>& fabric_links() const { return fabric_links_; }

  /// Switches in build order. A spine uniquely identifies one cross-leaf
  /// path (path-diversity tests key off which spine forwarded).
  [[nodiscard]] const std::vector<net::Switch*>& leaves() const { return leaves_; }
  [[nodiscard]] const std::vector<net::Switch*>& spines() const { return spines_; }

 private:
  Config cfg_;
  std::vector<net::Host*> hosts_;
  std::vector<net::Link*> host_links_;
  std::vector<net::Link*> fabric_links_;
  std::vector<net::Switch*> leaves_;
  std::vector<net::Switch*> spines_;
};

}  // namespace xmp::topo
