#pragma once

#include <cstdint>
#include <vector>

namespace xmp::model {

/// Numerical companions to the paper's §2 analysis.
///
/// BOS's window dynamics (Eq. 2) give the equilibrium marking probability
/// (Eq. 3)  p̃ = 1 / (1 + w̃/(δβ)), i.e. w̃ = δβ(1-p̃)/p̃. On a saturated
/// bottleneck shared by flows i with gains δ_i, factors β_i and RTTs T_i,
/// rate conservation Σ w̃_i/T_i = C has the closed form
///   p = S / (C + S),   S = Σ_i δ_i β_i / T_i,
/// and per-flow rates x_i = δ_i β_i (1-p)/(p T_i).
///
/// For multipath flows the TraSh update (Eq. 9) δ_r = T_r x_r / (T_s y_s)
/// couples the per-path gains; `MultipathEquilibrium` solves the joint
/// fixed point by alternating the per-link closed form with the TraSh
/// update — the same two-level iteration the paper describes in §2.2.

/// One BOS flow (or XMP subflow) as the fluid model sees it.
struct FluidFlow {
  double delta = 1.0;  ///< per-round increase gain δ
  double beta = 4.0;   ///< reduction factor β
  double rtt_s = 0.0;  ///< round duration T (seconds)
};

/// Closed-form single-bottleneck equilibrium.
struct SingleBottleneckResult {
  double p = 0.0;                  ///< marking probability per round
  std::vector<double> rates;       ///< segments per second, per flow
  std::vector<double> windows;     ///< segments, per flow
  /// False when the inputs are outside the model's domain (non-positive or
  /// non-finite capacity, a flow with non-positive RTT); the closed form has
  /// no equilibrium there and `p`/`rates`/`windows` stay empty. An empty
  /// flow set is *valid* and yields the trivial p = 0 result.
  bool ok = false;
};

/// `capacity_sps` is the link capacity in segments per second.
[[nodiscard]] SingleBottleneckResult solve_single_bottleneck(
    const std::vector<FluidFlow>& flows, double capacity_sps);

/// Multipath input: a set of links and flows whose subflows each traverse
/// exactly one link (the PinnedPaths abstraction).
struct FluidSubflow {
  int link = 0;        ///< index into link capacities
  double rtt_s = 0.0;  ///< subflow round-trip time
};

struct FluidMptcpFlow {
  std::vector<FluidSubflow> subflows;
  double beta = 4.0;
};

struct MultipathResult {
  std::vector<double> link_p;                    ///< marking prob per link
  std::vector<std::vector<double>> rates;        ///< per flow, per subflow (sps)
  std::vector<std::vector<double>> deltas;       ///< converged TraSh gains
  int iterations = 0;
  bool converged = false;
  /// False when the inputs are outside the model's domain (a subflow naming
  /// a link that does not exist, a non-positive RTT or link capacity): the
  /// iteration never runs and `converged` stays false. Distinct from a
  /// valid-but-non-converging instance, which reports valid = true,
  /// converged = false after `max_iterations` bounded rounds.
  bool valid = false;
};

/// Solve the coupled TraSh fixed point.
///
/// When a path is strictly more congested than the flow-wide expectation at
/// any rate, the ideal gain sits on the boundary δ = 0 and the iteration
/// approaches it only harmonically; the paper's remedy (footnote 5) is a
/// floor — "give up the path", in practice a 2-packet cwnd. `delta_floor`
/// models that floor and makes the boundary fixed point reachable.
[[nodiscard]] MultipathResult solve_multipath(const std::vector<double>& link_capacity_sps,
                                              const std::vector<FluidMptcpFlow>& flows,
                                              int max_iterations = 20'000,
                                              double tolerance = 1e-9,
                                              double delta_floor = 1e-3);

/// Eq. 1 helper: the smallest marking threshold K (packets) that keeps a
/// single BOS flow at full utilization for a given bandwidth-delay product.
[[nodiscard]] constexpr double min_marking_threshold(double bdp_packets, double beta) {
  return bdp_packets / (beta - 1.0);
}

}  // namespace xmp::model
