#include "model/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace xmp::model {

SingleBottleneckResult solve_single_bottleneck(const std::vector<FluidFlow>& flows,
                                               double capacity_sps) {
  SingleBottleneckResult res;
  // Out-of-domain inputs are a graceful refusal, not an assert: the solver
  // is reachable from CLI/config paths that validate late (or not at all).
  if (!(capacity_sps > 0.0) || !std::isfinite(capacity_sps)) return res;
  double s = 0.0;
  for (const auto& f : flows) {
    if (!(f.rtt_s > 0.0) || !std::isfinite(f.rtt_s)) return res;
    s += f.delta * f.beta / f.rtt_s;
  }
  res.ok = true;
  if (s <= 0.0) return res;
  res.p = s / (capacity_sps + s);
  res.rates.reserve(flows.size());
  res.windows.reserve(flows.size());
  for (const auto& f : flows) {
    const double w = f.delta * f.beta * (1.0 - res.p) / res.p;
    res.windows.push_back(w);
    res.rates.push_back(w / f.rtt_s);
  }
  return res;
}

MultipathResult solve_multipath(const std::vector<double>& link_capacity_sps,
                                const std::vector<FluidMptcpFlow>& flows, int max_iterations,
                                double tolerance, double delta_floor) {
  MultipathResult res;
  const std::size_t n_links = link_capacity_sps.size();
  res.link_p.assign(n_links, 0.0);
  for (const double c : link_capacity_sps) {
    if (!(c > 0.0) || !std::isfinite(c)) return res;  // valid stays false
  }
  res.deltas.resize(flows.size());
  res.rates.resize(flows.size());
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    res.deltas[fi].assign(flows[fi].subflows.size(), 1.0);  // TraSh init (step 1)
    res.rates[fi].assign(flows[fi].subflows.size(), 0.0);
    for (const auto& sf : flows[fi].subflows) {
      if (sf.link < 0 || static_cast<std::size_t>(sf.link) >= n_links) return res;
      if (!(sf.rtt_s > 0.0) || !std::isfinite(sf.rtt_s)) return res;
    }
  }
  res.valid = true;
  if (flows.empty()) {
    res.converged = true;  // nothing to couple: the empty fixed point
    return res;
  }

  constexpr double kRelax = 0.5;  // damping on the TraSh update
  for (int it = 0; it < max_iterations; ++it) {
    // Per-link closed form, assuming every used link saturates (BOS flows
    // grow until marked, so a link carrying any subflow is driven to its
    // capacity in equilibrium).
    std::vector<double> s(n_links, 0.0);
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      for (std::size_t ri = 0; ri < flows[fi].subflows.size(); ++ri) {
        const auto& sf = flows[fi].subflows[ri];
        s[static_cast<std::size_t>(sf.link)] +=
            res.deltas[fi][ri] * flows[fi].beta / sf.rtt_s;
      }
    }
    for (std::size_t l = 0; l < n_links; ++l) {
      res.link_p[l] = s[l] > 0.0 ? s[l] / (link_capacity_sps[l] + s[l]) : 0.0;
    }

    // Subflow rates at these marking probabilities (Eq. 3 rearranged,
    // a.k.a. "Rate Convergence", TraSh step 2).
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      for (std::size_t ri = 0; ri < flows[fi].subflows.size(); ++ri) {
        const auto& sf = flows[fi].subflows[ri];
        const double p = res.link_p[static_cast<std::size_t>(sf.link)];
        res.rates[fi][ri] =
            p > 0.0 ? res.deltas[fi][ri] * flows[fi].beta * (1.0 - p) / (p * sf.rtt_s) : 0.0;
      }
    }

    // TraSh "Parameter Adjustment" (step 3, Eq. 9), with damping.
    double max_change = 0.0;
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      double y = 0.0;
      double t_min = 1e30;
      for (std::size_t ri = 0; ri < flows[fi].subflows.size(); ++ri) {
        y += res.rates[fi][ri];
        t_min = std::min(t_min, flows[fi].subflows[ri].rtt_s);
      }
      if (y <= 0.0) continue;
      for (std::size_t ri = 0; ri < flows[fi].subflows.size(); ++ri) {
        const double target =
            flows[fi].subflows[ri].rtt_s * res.rates[fi][ri] / (t_min * y);
        const double next =
            std::max((1.0 - kRelax) * res.deltas[fi][ri] + kRelax * target, delta_floor);
        max_change = std::max(max_change, std::fabs(next - res.deltas[fi][ri]));
        res.deltas[fi][ri] = next;
      }
    }

    res.iterations = it + 1;
    if (max_change < tolerance) {
      res.converged = true;
      break;
    }
  }
  return res;
}

}  // namespace xmp::model
