#include "model/hybrid/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/checkpoint.hpp"
#include "net/types.hpp"

namespace xmp::model::hybrid {

int Engine::add_link(net::Link* link, double mark_threshold) {
  assert(link != nullptr);
  const auto [it, inserted] = link_index_.try_emplace(link->id(), static_cast<int>(links_.size()));
  if (!inserted) return it->second;
  LinkState ls;
  ls.link = link;
  ls.mark_threshold = mark_threshold;
  ls.capacity_sps =
      static_cast<double>(link->rate_bps()) / 8.0 / static_cast<double>(net::kDataPacketBytes);
  ls.capacity_packets = static_cast<double>(link->queue().capacity());
  ls.last_bytes_sent = link->bytes_sent();
  links_.push_back(ls);
  return it->second;
}

int Engine::add_path(const std::vector<int>& links) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const int li : links) {
    assert(li >= 0 && static_cast<std::size_t>(li) < links_.size());
    h = net::mix64(h ^ static_cast<std::uint64_t>(li));
  }
  std::vector<int>& bucket = path_buckets_[h];
  for (const int pid : bucket) {
    if (paths_[static_cast<std::size_t>(pid)] == links) return pid;
  }
  const int pid = static_cast<int>(paths_.size());
  paths_.push_back(links);
  bucket.push_back(pid);
  return pid;
}

int Engine::add_aggregate(FluidAggregate agg) {
  assert(!agg.subflows.empty());
  for ([[maybe_unused]] const FluidSubflowState& sf : agg.subflows) {
    assert(sf.path >= 0 && static_cast<std::size_t>(sf.path) < paths_.size());
    assert(sf.base_rtt_s > 0.0);
  }
  aggs_.push_back(std::move(agg));
  return static_cast<int>(aggs_.size() - 1);
}

void Engine::start() {
  if (timer_ != sim::kInvalidEventId) return;
  // Re-baseline the odometers so traffic sent before start() (none, in
  // practice) is not mistaken for the first tick's drain or arrivals.
  for (LinkState& ls : links_) {
    ls.last_bytes_sent = ls.link->bytes_sent();
    ls.last_queue_bytes = ls.link->queue().len_bytes();
  }
  timer_ = sched_.schedule_in(cfg_.tick, [this] { tick(); });
}

int Engine::active_fluid_flows() const {
  int n = 0;
  for (const FluidAggregate& a : aggs_) {
    if (a.state == FluidAggregate::State::Fluid) ++n;
  }
  return n;
}

double Engine::fluid_throughput_bps() const {
  const double sec = sched_.now().sec();
  return sec > 0.0 ? stats_.fluid_bytes * 8.0 / sec : 0.0;
}

void Engine::push_coupling(LinkState& ls, std::size_t link_index) {
  // Foreground marking as a duty cycle: the fluid equilibrium backlog sits
  // above K by construction (q* = K + span·p), so the threshold compare
  // would mark every foreground packet; the real queue oscillates and
  // marks only a p fraction of rounds. Re-impose that sawtooth: mark all
  // arrivals during the first p_mark fraction of a fixed cycle, none
  // outside it, with the phase staggered per link so bursts are not
  // fleet-synchronized. The phase derives from stats_.ticks, which is
  // checkpointed, so a restored run resumes the same cycle position.
  const auto cycle = static_cast<std::uint64_t>(cfg_.mark_cycle_ticks);
  const std::uint64_t phase = (stats_.ticks + link_index * 7) % cycle;
  // Trim one tick off the burst: a round is marked when it merely touches
  // the burst, which inflates the experienced probability by ~RTT/cycle.
  const double burst_ticks = std::max(0.0, ls.p_mark * static_cast<double>(cycle) - 1.0);
  const bool burst = ls.p_mark >= 1.0 || static_cast<double>(phase) < burst_ticks;
  ls.link->queue().set_fluid_marking(burst);
  ls.link->set_fluid_share(std::min(cfg_.max_fluid_share, ls.fluid_share));
}

void Engine::tick() {
  const double dt = cfg_.tick.sec();
  ++stats_.ticks;

  // Pass 0: per-path queueing delay from the state at tick entry. The
  // effective RTT a fluid subflow experiences is its zero-load RTT plus the
  // drain time of every backlog (fluid + real packets) on its path —
  // material here: at K = 10 packets the queueing term is ~120 µs against
  // a ~300 µs base RTT.
  path_delay_s_.assign(paths_.size(), 0.0);
  path_rate_sps_.assign(paths_.size(), 0.0);
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    double d = 0.0;
    for (const int li : paths_[p]) {
      const LinkState& ls = links_[static_cast<std::size_t>(li)];
      d += (ls.q_fluid + static_cast<double>(ls.link->queue().len_packets())) / ls.capacity_sps;
    }
    path_delay_s_[p] = d;
  }

  // Pass 1: fluid arrival rates, accumulated per path then fanned out to
  // links — O(subflows + paths·hops), independent of the flow count per
  // path, which is what makes 10^5 background flows tractable.
  for (const FluidAggregate& agg : aggs_) {
    if (agg.state != FluidAggregate::State::Fluid) continue;
    for (const FluidSubflowState& sf : agg.subflows) {
      const double t_eff = sf.base_rtt_s + path_delay_s_[static_cast<std::size_t>(sf.path)];
      path_rate_sps_[static_cast<std::size_t>(sf.path)] += sf.w / t_eff;
    }
  }
  for (LinkState& ls : links_) ls.arrival_sps = 0.0;
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    const double r = path_rate_sps_[p];
    if (r <= 0.0) continue;
    for (const int li : paths_[p]) links_[static_cast<std::size_t>(li)].arrival_sps += r;
  }

  // Pass 2: per-link fluid queue evolution and marking probability. The
  // capacity available to fluid traffic is what the real transmitter did
  // not use since the last tick (packet → fluid coupling); the resulting
  // backlog and bandwidth share are pushed back into the queue and link
  // (fluid → packet coupling).
  double p_weighted = 0.0;
  double arrival_total = 0.0;
  for (std::size_t li = 0; li < links_.size(); ++li) {
    LinkState& ls = links_[li];
    const std::uint64_t sent = ls.link->bytes_sent();
    const double drained_bytes = static_cast<double>(sent - ls.last_bytes_sent);
    ls.last_bytes_sent = sent;
    // Packet arrivals over the tick = what drained + the queue's growth;
    // measured in bytes so ACKs weigh what they cost, not a full slot. Both
    // measurements are EWMA-smoothed: the raw per-tick values whipsaw with
    // the foreground window bursts (a tick is shorter than an RTT).
    const std::uint64_t qbytes = ls.link->queue().len_bytes();
    const double arrived_bytes =
        drained_bytes + static_cast<double>(static_cast<std::int64_t>(qbytes) -
                                            static_cast<std::int64_t>(ls.last_queue_bytes));
    ls.last_queue_bytes = qbytes;
    ls.pkt_drain_sps +=
        cfg_.rate_ewma * (drained_bytes / dt / static_cast<double>(net::kDataPacketBytes) -
                          ls.pkt_drain_sps);
    ls.pkt_arrival_sps +=
        cfg_.rate_ewma *
        (std::max(0.0, arrived_bytes / dt / static_cast<double>(net::kDataPacketBytes)) -
         ls.pkt_arrival_sps);
    // A work-conserving FIFO shared by both worlds serves proportionally to
    // arrivals under overload and leaves the residual otherwise. Deriving
    // the share from the fluid *throughput* instead would ratchet: the
    // packet drain could never grow past the residual it was last granted.
    const double total_arrival_sps = ls.arrival_sps + ls.pkt_arrival_sps;
    ls.fluid_share = total_arrival_sps > ls.capacity_sps
                         ? ls.arrival_sps / total_arrival_sps
                         : ls.arrival_sps / ls.capacity_sps;
    const double c_fluid = std::max(0.0, ls.capacity_sps - ls.pkt_drain_sps);
    const double backlog = ls.q_fluid + ls.arrival_sps * dt;
    const double served = std::min(backlog, c_fluid * dt);
    ls.q_fluid = std::min(backlog - served, ls.capacity_packets);
    ls.fluid_rate_sps = served / dt;
    // Per-round marking probability: a linear ramp of width `span` packets
    // above K. In equilibrium q settles at K + span·p*, which makes the
    // emergent p* coincide with the §2 closed form p = S/(C+S).
    const double q_tot = ls.q_fluid + static_cast<double>(ls.link->queue().len_packets());
    const double p_inst =
        std::clamp((q_tot - ls.mark_threshold) / cfg_.mark_span_packets, 0.0, 1.0);
    ls.p_mark += cfg_.mark_ewma * (p_inst - ls.p_mark);
    push_coupling(ls, li);
    p_weighted += ls.p_mark * ls.arrival_sps;
    arrival_total += ls.arrival_sps;
  }
  if (arrival_total > 0.0) stats_.mark_p_accum += p_weighted / arrival_total;

  // Pass 3: per-path end-to-end marking probability and refreshed delay
  // (semi-implicit: window updates see the post-update queues).
  path_p_.assign(paths_.size(), 0.0);
  path_serve_.assign(paths_.size(), 1.0);
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    double keep = 1.0;
    double d = 0.0;
    double f = 1.0;
    for (const int li : paths_[p]) {
      const LinkState& ls = links_[static_cast<std::size_t>(li)];
      keep *= 1.0 - ls.p_mark;
      d += (ls.q_fluid + static_cast<double>(ls.link->queue().len_packets())) / ls.capacity_sps;
      // Fraction of this link's fluid arrivals actually served this tick;
      // below 1 only while the queue overflows (gross overload).
      if (ls.arrival_sps > 0.0) f = std::min(f, std::min(1.0, ls.fluid_rate_sps / ls.arrival_sps));
    }
    path_p_[p] = 1.0 - keep;
    path_delay_s_[p] = d;
    path_serve_[p] = f;
  }

  // Pass 4: per-aggregate dynamics — delivery, TraSh gain coupling (Eq. 9,
  // damped), then the BOS window ODE (Eq. 2 in expectation):
  //   E[Δw per round] = δ(1-P) - (w/β)P.
  for (std::size_t ai = 0; ai < aggs_.size(); ++ai) {
    FluidAggregate& agg = aggs_[ai];
    if (agg.state != FluidAggregate::State::Fluid) continue;

    double y = 0.0;
    double y_served = 0.0;
    double t_min = 1e30;
    for (const FluidSubflowState& sf : agg.subflows) {
      const double t_eff = sf.base_rtt_s + path_delay_s_[static_cast<std::size_t>(sf.path)];
      y += sf.w / t_eff;
      // Delivery is the *served* rate: the offered rate w/T scaled by the
      // path's bottleneck service fraction, so goodput never exceeds what
      // the links actually carried even when windows are floored above the
      // network's capacity.
      y_served += sf.w / t_eff * path_serve_[static_cast<std::size_t>(sf.path)];
      t_min = std::min(t_min, t_eff);
    }
    const double delivered = y_served * dt * static_cast<double>(net::kMssBytes);
    agg.delivered_bytes += delivered;
    stats_.fluid_bytes += delivered;

    if (agg.subflows.size() > 1 && y > 0.0) {
      const double lambda = std::min(1.0, cfg_.trash_relax * dt / t_min);
      for (FluidSubflowState& sf : agg.subflows) {
        const double t_eff = sf.base_rtt_s + path_delay_s_[static_cast<std::size_t>(sf.path)];
        const double x = sf.w / t_eff;
        const double target = t_eff * x / (t_min * y);
        sf.delta =
            std::max(cfg_.delta_floor, sf.delta + lambda * (target - sf.delta));
      }
    }

    for (FluidSubflowState& sf : agg.subflows) {
      const double t_eff = sf.base_rtt_s + path_delay_s_[static_cast<std::size_t>(sf.path)];
      const double big_p = path_p_[static_cast<std::size_t>(sf.path)];
      const double rounds = dt / t_eff;
      const double dw = (sf.delta * (1.0 - big_p) - sf.w / agg.beta * big_p) * rounds;
      sf.w = std::clamp(sf.w + dw, cfg_.min_window, cfg_.max_window);
    }

    if (agg.total_bytes >= 0) {
      const double remaining = static_cast<double>(agg.total_bytes) - agg.delivered_bytes;
      if (remaining <= 0.0) {
        agg.state = FluidAggregate::State::Done;
        ++stats_.fluid_completions;
      } else if (cfg_.promote_bytes > 0 &&
                 remaining <= static_cast<double>(cfg_.promote_bytes)) {
        promote(static_cast<int>(ai));
      }
    }
  }

  timer_ = sched_.schedule_in(cfg_.tick, [this] { tick(); });
}

void Engine::promote(int agg_index) {
  FluidAggregate& agg = aggs_[static_cast<std::size_t>(agg_index)];
  agg.state = FluidAggregate::State::Promoted;
  ++stats_.promotions;
  if (!on_promote_) return;
  PromotionInfo info;
  info.aggregate = agg_index;
  const double remaining = static_cast<double>(agg.total_bytes) - agg.delivered_bytes;
  info.remaining_bytes = std::max<std::int64_t>(1, std::llround(remaining));
  double wsum = 0.0;
  for (const FluidSubflowState& sf : agg.subflows) wsum += sf.w;
  info.cwnd_segments = wsum / static_cast<double>(agg.subflows.size());
  info.src_host = agg.src_host;
  info.dst_host = agg.dst_host;
  on_promote_(info);
}

void Engine::save_state(core::ckpt::Saver& s) const {
  s.u64(links_.size());
  for (const LinkState& ls : links_) {
    s.f64(ls.q_fluid);
    s.f64(ls.p_mark);
    s.f64(ls.fluid_rate_sps);
    s.f64(ls.fluid_share);
    s.f64(ls.pkt_drain_sps);
    s.f64(ls.pkt_arrival_sps);
    s.u64(ls.last_bytes_sent);
    s.u64(ls.last_queue_bytes);
  }
  s.u64(aggs_.size());
  for (const FluidAggregate& agg : aggs_) {
    s.u8(static_cast<std::uint8_t>(agg.state));
    s.f64(agg.delivered_bytes);
    s.u64(agg.subflows.size());
    for (const FluidSubflowState& sf : agg.subflows) {
      s.f64(sf.w);
      s.f64(sf.delta);
    }
  }
  s.u64(stats_.ticks);
  s.u64(stats_.promotions);
  s.u64(stats_.fluid_completions);
  s.f64(stats_.fluid_bytes);
  s.f64(stats_.mark_p_accum);
  const bool armed = timer_ != sim::kInvalidEventId;
  s.b(armed);
  if (armed) {
    sim::Scheduler::PendingKey k;
    [[maybe_unused]] const bool live = sched_.key_of(timer_, k);
    assert(live && "hybrid tick timer id stale");
    s.i64(k.t_ns);
    s.u64(k.seq);
  }
}

void Engine::restore_state(core::ckpt::Loader& l) {
  // Structure (links, paths, aggregate shapes) was rebuilt from config
  // before this call — the config fingerprint guarantees it matches.
  const std::uint64_t n_links = l.u64();
  assert(n_links == links_.size());
  for (std::uint64_t i = 0; i < n_links && l.ok(); ++i) {
    LinkState& ls = links_[i];
    ls.q_fluid = l.f64();
    ls.p_mark = l.f64();
    ls.fluid_rate_sps = l.f64();
    ls.fluid_share = l.f64();
    ls.pkt_drain_sps = l.f64();
    ls.pkt_arrival_sps = l.f64();
    ls.last_bytes_sent = l.u64();
    ls.last_queue_bytes = l.u64();
  }
  const std::uint64_t n_aggs = l.u64();
  assert(n_aggs == aggs_.size());
  for (std::uint64_t i = 0; i < n_aggs && l.ok(); ++i) {
    FluidAggregate& agg = aggs_[i];
    agg.state = static_cast<FluidAggregate::State>(l.u8());
    agg.delivered_bytes = l.f64();
    const std::uint64_t n_sf = l.u64();
    assert(n_sf == agg.subflows.size());
    for (std::uint64_t j = 0; j < n_sf && l.ok(); ++j) {
      agg.subflows[j].w = l.f64();
      agg.subflows[j].delta = l.f64();
    }
  }
  stats_.ticks = l.u64();
  stats_.promotions = l.u64();
  stats_.fluid_completions = l.u64();
  stats_.fluid_bytes = l.f64();
  stats_.mark_p_accum = l.f64();
  if (l.b()) {
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    timer_ = sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this] { tick(); });
  }
  // Coupling values are not serialized in the queue/link objects; re-derive
  // them now that stats_.ticks (the duty-cycle phase) is restored.
  for (std::size_t i = 0; i < links_.size(); ++i) push_coupling(links_[i], i);
}

}  // namespace xmp::model::hybrid
