#pragma once

// Hybrid fluid/packet engine (DESIGN.md §14).
//
// Long-lived background flows evolve as per-RTT fluid ODEs — the paper's §2
// window dynamics (Eq. 2/3) plus the TraSh gain coupling (Eq. 9) — while
// designated foreground flows remain packet-accurate on the unchanged
// event-driven fast path. The two worlds meet at every link:
//
//   fluid → packet:  each egress queue is driven through marking bursts
//     (Queue::set_fluid_marking) whose duty cycle equals the fluid marking
//     probability — the sawtooth the fluid model averaged out, re-imposed
//     so packet flows are marked in a p fraction of rounds rather than
//     always (the fluid backlog itself sits above K at equilibrium) — and
//     each transmitter is slowed by the fluid bandwidth share
//     (Link::set_fluid_share), computed as proportional FIFO sharing of
//     fluid and measured packet arrivals, so packet flows contend for the
//     link the way they would against real background packets.
//
//   packet → fluid:  every tick measures the bytes the transmitter actually
//     serialized since the previous tick; that drain is subtracted from the
//     capacity available to the fluid aggregate, so fluid flows back off
//     when packet flows ramp up.
//
// The fluid tick runs on the ordinary Scheduler, so determinism, the
// metrics/trace layers and checkpointing (HYBR section) all compose: a
// hybrid run is an ordinary run with one extra periodic event.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "sim/scheduler.hpp"

namespace xmp::model::hybrid {

/// One fluid subflow: a pinned path through the topology plus the BOS
/// per-round state (window w, TraSh gain δ).
struct FluidSubflowState {
  int path = -1;           ///< index into the engine's deduped path table
  double base_rtt_s = 0.0; ///< zero-load round-trip time of the path
  double w = 10.0;         ///< congestion window, segments
  double delta = 1.0;      ///< TraSh gain δ
};

/// One background flow: a single- or multi-path aggregate of fluid subflows.
struct FluidAggregate {
  enum class State : std::uint8_t {
    Fluid,     ///< evolving as an ODE
    Promoted,  ///< handed to the packet domain for its final bytes
    Done,      ///< drained fully inside the fluid model
  };

  std::vector<FluidSubflowState> subflows;
  double beta = 4.0;             ///< XMP window-reduction factor
  std::int64_t total_bytes = -1; ///< -1 = unbounded (steady-state background)
  double delivered_bytes = 0.0;
  State state = State::Fluid;
  int src_host = -1;  ///< topology host indices, used at promotion
  int dst_host = -1;
};

/// Everything the promotion callback needs to start the packet-domain tail
/// of a finishing fluid flow.
struct PromotionInfo {
  int aggregate = -1;            ///< index into the engine's aggregate table
  std::int64_t remaining_bytes = 0;
  double cwnd_segments = 0.0;    ///< converged fluid window, per subflow
  int src_host = -1;
  int dst_host = -1;
};

/// Cumulative hybrid-engine counters (reported in summaries; checkpointed).
struct EngineStats {
  std::uint64_t ticks = 0;
  std::uint64_t promotions = 0;
  std::uint64_t fluid_completions = 0;  ///< finite flows fully drained as fluid
  double fluid_bytes = 0.0;             ///< bytes delivered by fluid flows
  /// Σ over ticks of the arrival-weighted mean marking probability; divide
  /// by `ticks` for the run's average congestion level.
  double mark_p_accum = 0.0;
};

/// The hybrid engine. Build it after the topology (add_link / add_aggregate),
/// then start() once; every `tick` interval it advances all fluid state by
/// one step and refreshes the per-link coupling terms.
class Engine {
 public:
  struct Config {
    sim::Time tick = sim::Time::microseconds(200);
    /// Marking-probability ramp width (packets): p = clamp((q - K)/span).
    /// In equilibrium the fluid queue settles at K + span·p*, so the
    /// emergent p* matches the §2 closed form exactly; span trades
    /// convergence speed against queue-length bias.
    double mark_span_packets = 4.0;
    /// Period (ticks) of the foreground marking duty cycle: each link marks
    /// all packet arrivals for the first p_mark fraction of every cycle.
    /// A round is marked when it *touches* a burst, so the probability a
    /// foreground flow actually experiences is p + RTT/period; longer
    /// cycles shrink that overshoot (and the burst is trimmed by one tick
    /// for the same reason) at the cost of slower response to load shifts.
    int mark_cycle_ticks = 100;
    /// EWMA weight for the per-tick marking probability. The instantaneous
    /// packet queue length feeds the congestion signal; unsmoothed, its
    /// sawtooth makes the fluid windows chase noise and the link runs
    /// under capacity. The fixed point is unchanged — only convergence is
    /// damped.
    double mark_ewma = 0.25;
    /// EWMA weight for the measured packet drain/arrival rates. A tick is
    /// shorter than a foreground RTT, so the raw per-tick drain whipsaws
    /// between line rate and zero with the window bursts; unsmoothed it
    /// drives the fluid capacity — and with it the fluid windows — into a
    /// limit cycle.
    double rate_ewma = 0.1;
    /// Promote a finite fluid flow to the packet domain when its remaining
    /// bytes drop to this threshold (0 = never promote, finish as fluid).
    std::int64_t promote_bytes = 0;
    double max_fluid_share = 0.95;  ///< keep the packet path schedulable
    double min_window = 2.0;        ///< paper footnote 5: 2-segment floor
    double max_window = 1.0e6;
    double delta_floor = 1.0e-3;    ///< as in model::solve_multipath
    double trash_relax = 0.5;       ///< TraSh damping per RTT
  };

  Engine(sim::Scheduler& sched, const Config& cfg) : sched_{sched}, cfg_{cfg} {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a link the fluid traffic may traverse; `mark_threshold` is its
  /// queue's ECN threshold K in packets. Idempotent per link — returns the
  /// existing index when called twice.
  int add_link(net::Link* link, double mark_threshold);

  /// Intern a path (hop-ordered engine link indices from add_link); paths
  /// are deduplicated, so 10^5 flows over a k=8 fat tree share a few
  /// thousand path entries and the per-tick cost is O(subflows + paths).
  int add_path(const std::vector<int>& links);

  /// Register a background flow. All paths referenced by its subflows must
  /// already be interned. Returns the aggregate index.
  int add_aggregate(FluidAggregate agg);

  /// Called when a finite fluid flow crosses the promotion threshold. The
  /// callee starts the packet-domain tail (FlowManager::start_large_flow
  /// with PromotionInfo::cwnd_segments as the initial window).
  void set_on_promote(std::function<void(const PromotionInfo&)> fn) {
    on_promote_ = std::move(fn);
  }

  /// Arm the periodic fluid tick (idempotent). Call on a fresh start only —
  /// restore_state re-arms the saved timer itself.
  void start();

  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t n_links() const { return links_.size(); }
  [[nodiscard]] std::size_t n_aggregates() const { return aggs_.size(); }
  [[nodiscard]] int active_fluid_flows() const;
  [[nodiscard]] const FluidAggregate& aggregate(int i) const {
    return aggs_.at(static_cast<std::size_t>(i));
  }

  /// Per-link fluid state, for validation tests and summaries.
  [[nodiscard]] double link_mark_p(int i) const {
    return links_.at(static_cast<std::size_t>(i)).p_mark;
  }
  [[nodiscard]] double link_fluid_queue(int i) const {
    return links_.at(static_cast<std::size_t>(i)).q_fluid;
  }
  [[nodiscard]] double link_fluid_rate_sps(int i) const {
    return links_.at(static_cast<std::size_t>(i)).fluid_rate_sps;
  }

  /// Aggregate fluid throughput over the whole run so far, bits per second.
  [[nodiscard]] double fluid_throughput_bps() const;

  /// Checkpoint the dynamic fluid state + the tick timer (HYBR section
  /// payload). The static structure (links, paths, aggregate shapes) is
  /// rebuilt from config before restore, exactly like the topology itself.
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  struct LinkState {
    net::Link* link = nullptr;
    double mark_threshold = 0.0;   ///< K, packets
    double capacity_sps = 0.0;     ///< full-size data packets per second
    double capacity_packets = 0.0; ///< queue capacity, packets
    // --- dynamic (checkpointed) ---
    double q_fluid = 0.0;          ///< virtual fluid backlog, packets
    double p_mark = 0.0;           ///< per-round marking probability
    double fluid_rate_sps = 0.0;   ///< fluid throughput through this link
    /// Fluid fraction of the link's service capacity under proportional
    /// FIFO sharing of fluid and measured packet arrivals (see tick()).
    double fluid_share = 0.0;
    double pkt_drain_sps = 0.0;    ///< EWMA-smoothed measured packet drain
    double pkt_arrival_sps = 0.0;  ///< EWMA-smoothed measured packet arrivals
    std::uint64_t last_bytes_sent = 0;  ///< transmitter odometer at last tick
    std::uint64_t last_queue_bytes = 0; ///< egress queue depth at last tick
    // --- per-tick scratch ---
    double arrival_sps = 0.0;
  };

  void tick();
  /// Push the marking duty-cycle phase / bandwidth share into the net-layer
  /// objects (after every tick and after a restore). The burst phase is a
  /// pure function of stats_.ticks and the link index, so it checkpoints
  /// for free and is staggered across links.
  void push_coupling(LinkState& ls, std::size_t link_index);
  void promote(int agg_index);

  sim::Scheduler& sched_;
  Config cfg_;
  std::vector<LinkState> links_;
  std::unordered_map<std::uint32_t, int> link_index_;  ///< LinkId -> index
  std::vector<std::vector<int>> paths_;
  std::unordered_map<std::uint64_t, std::vector<int>> path_buckets_;  ///< hash -> path ids
  std::vector<FluidAggregate> aggs_;
  std::function<void(const PromotionInfo&)> on_promote_;
  EngineStats stats_;
  sim::EventId timer_ = sim::kInvalidEventId;

  // Per-tick scratch, sized to paths_ (kept hot across ticks).
  std::vector<double> path_delay_s_;
  std::vector<double> path_rate_sps_;
  std::vector<double> path_p_;
  std::vector<double> path_serve_;  ///< min over hops of served/arrival
};

}  // namespace xmp::model::hybrid
