#include "workload/empirical.hpp"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"

namespace xmp::workload {

namespace {

/// Strict double parse of one whitespace-trimmed token: rejects trailing
/// garbage, NaN and infinities (hostile CDF lines must not round-trip into
/// the sampler as "valid").
bool parse_finite(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || errno == ERANGE) return false;
  if (!std::isfinite(v)) return false;
  out = v;
  return true;
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

bool EmpiricalCdf::parse_file(const std::string& path, EmpiricalCdf& out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = path + ": cannot open CDF file";
    return false;
  }
  return parse(in, path, out, error);
}

bool EmpiricalCdf::parse(std::istream& in, const std::string& name, EmpiricalCdf& out,
                         std::string* error) {
  auto fail = [&](int line, const std::string& msg) {
    if (error) *error = name + ":" + std::to_string(line) + ": " + msg;
    return false;
  };
  out.points_.clear();
  out.name_ = name;
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::string a, b, extra;
    if (!(ls >> a)) continue;  // blank / comment-only line
    if (!(ls >> b)) return fail(lineno, "truncated line (expected '<size_bytes> <cum_prob>')");
    if (ls >> extra) return fail(lineno, "trailing token '" + extra + "'");
    Point p;
    if (!parse_finite(a, p.bytes)) return fail(lineno, "bad size '" + a + "'");
    if (!parse_finite(b, p.cum)) return fail(lineno, "bad probability '" + b + "'");
    if (p.bytes <= 0.0) return fail(lineno, "non-positive size " + a);
    if (p.cum < 0.0 || p.cum > 1.0) return fail(lineno, "probability " + b + " outside [0,1]");
    if (!out.points_.empty()) {
      if (p.bytes < out.points_.back().bytes) return fail(lineno, "sizes must be non-decreasing");
      if (p.cum < out.points_.back().cum)
        return fail(lineno, "cumulative probability must be non-decreasing");
    }
    out.points_.push_back(p);
  }
  if (out.points_.size() < 2) return fail(lineno, "need at least two CDF points");
  if (out.points_.back().cum != 1.0)
    return fail(lineno, "last cumulative probability must be 1");
  if (out.points_.back().cum == out.points_.front().cum)
    return fail(lineno, "distribution has zero probability mass");
  return true;
}

std::int64_t EmpiricalCdf::sample(sim::Rng& rng) const {
  assert(!points_.empty());
  const double u = rng.uniform01();
  // First point with cum > u; u < 1 and the last point has cum == 1, so
  // `it` is never begin-with-cum>u only when the leading mass covers u.
  auto it = std::upper_bound(points_.begin(), points_.end(), u,
                             [](double v, const Point& p) { return v < p.cum; });
  if (it == points_.begin()) return std::max<std::int64_t>(1, std::llround(it->bytes));
  if (it == points_.end()) it = points_.end() - 1;  // u landed on trailing flat mass
  const Point& lo = *(it - 1);
  const Point& hi = *it;
  double bytes = hi.bytes;
  if (hi.cum > lo.cum) {
    const double f = (u - lo.cum) / (hi.cum - lo.cum);
    bytes = lo.bytes + f * (hi.bytes - lo.bytes);
  }
  return std::max<std::int64_t>(1, std::llround(bytes));
}

double EmpiricalCdf::mean_bytes() const {
  assert(points_.size() >= 2);
  // Size is linear in cumulative probability on each segment, so the mean
  // is the exact trapezoid sum: sum dF * (b_lo + b_hi) / 2. A point mass at
  // the first point (cum_0 > 0) contributes cum_0 * bytes_0.
  double mean = points_.front().cum * points_.front().bytes;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double df = points_[i].cum - points_[i - 1].cum;
    mean += df * 0.5 * (points_[i].bytes + points_[i - 1].bytes);
  }
  return mean;
}

void EmpiricalCdf::mix_fingerprint(std::uint64_t& h) const {
  h = mix64(h, points_.size());
  for (const Point& p : points_) {
    std::uint64_t b = 0, c = 0;
    static_assert(sizeof b == sizeof p.bytes);
    std::memcpy(&b, &p.bytes, sizeof b);
    std::memcpy(&c, &p.cum, sizeof c);
    h = mix64(h, b);
    h = mix64(h, c);
  }
}

EmpiricalTraffic::EmpiricalTraffic(sim::Scheduler& sched, topo::HostPool& topo,
                                   FlowManager& flows, sim::Rng rng, const Config& cfg)
    : sched_{sched}, topo_{topo}, flows_{flows}, rng_{rng}, cfg_{cfg} {
  assert(cfg_.nodes >= 2 && cfg_.nodes <= topo.n_hosts());
#ifndef NDEBUG
  if (cfg_.span == WorkloadSpan::InterRack) {
    // pick_destination() rejection-samples; the constraint must be
    // satisfiable for *every* source (the CLI validates this with a
    // diagnostic before we get here).
    bool multi_rack = false;
    for (int h = 1; h < cfg_.nodes && !multi_rack; ++h) {
      multi_rack = topo.rack_of(h) != topo.rack_of(0);
    }
    assert(multi_rack && "inter-rack span needs nodes in >= 2 racks");
  }
#endif
  if (cfg_.cdf != nullptr && cfg_.load > 0.0) {
    // Offered load L per sender at line rate R with mean flow size S bytes
    // means L*R/(8*S) flows/sec per sender; the aggregate Poisson process
    // runs at nodes times that and assigns sources uniformly, which is
    // statistically identical to independent per-sender processes but
    // needs a single timer.
    const double per_sender = cfg_.load * static_cast<double>(cfg_.line_rate_bps) /
                              (8.0 * cfg_.cdf->mean_bytes());
    rate_ = per_sender * cfg_.nodes;
  }
}

void EmpiricalTraffic::start() {
  if (rate_ > 0.0) {
    arrival_timer_ =
        sched_.schedule_in(sim::Time::seconds(rng_.exponential(1.0 / rate_)), [this] {
          on_arrival();
        });
  }
  if (cfg_.trace != nullptr && !cfg_.trace->empty()) {
    trace_timer_ = sched_.schedule_at((*cfg_.trace)[0].start, [this] { on_trace_due(); });
  }
}

void EmpiricalTraffic::stop() {
  stopped_ = true;
  if (arrival_timer_ != sim::kInvalidEventId) {
    sched_.cancel(arrival_timer_);
    arrival_timer_ = sim::kInvalidEventId;
  }
  if (trace_timer_ != sim::kInvalidEventId) {
    sched_.cancel(trace_timer_);
    trace_timer_ = sim::kInvalidEventId;
  }
}

void EmpiricalTraffic::on_arrival() {
  arrival_timer_ = sim::kInvalidEventId;
  if (stopped_) return;
  // Draw order is part of the determinism contract (tests pin it):
  // src, dst (with rejection), size, next inter-arrival gap.
  const int src = static_cast<int>(rng_.uniform_u64(static_cast<std::uint64_t>(cfg_.nodes)));
  const int dst = pick_destination(src);
  const std::int64_t bytes = cfg_.cdf->sample(rng_);
  ++poisson_issued_;
  issue(src, dst, bytes);
  arrival_timer_ =
      sched_.schedule_in(sim::Time::seconds(rng_.exponential(1.0 / rate_)), [this] {
        on_arrival();
      });
}

void EmpiricalTraffic::on_trace_due() {
  trace_timer_ = sim::kInvalidEventId;
  if (stopped_) return;
  const auto& tr = *cfg_.trace;
  const sim::Time now = sched_.now();
  while (trace_next_ < tr.size() && tr[trace_next_].start <= now) {
    const ExplicitFlow& f = tr[trace_next_++];
    ++trace_issued_;
    issue(f.src, f.dst, f.bytes);
  }
  if (trace_next_ < tr.size()) {
    trace_timer_ = sched_.schedule_at(tr[trace_next_].start, [this] { on_trace_due(); });
  }
}

void EmpiricalTraffic::issue(int src, int dst, std::int64_t bytes) {
  net::Host& s = topo_.host(src);
  net::Host& d = topo_.host(dst);
  // Open loop: no completion callback, so nothing to re-bind on restore.
  if (bytes < cfg_.mice_threshold) {
    flows_.start_small_flow(s, d, src, dst, bytes);
  } else {
    flows_.start_large_flow(s, d, src, dst, bytes);
  }
}

int EmpiricalTraffic::pick_destination(int src) {
  // Rejection sampling; the experiment wiring guarantees the constraint is
  // satisfiable (>= 2 racks for InterRack), so this terminates and draws a
  // deterministic number of uniforms for a given stream position.
  for (;;) {
    const int dst = static_cast<int>(rng_.uniform_u64(static_cast<std::uint64_t>(cfg_.nodes)));
    if (dst == src) continue;
    if (cfg_.span == WorkloadSpan::InterRack && topo_.rack_of(dst) == topo_.rack_of(src)) {
      continue;
    }
    return dst;
  }
}

void EmpiricalTraffic::save_state(core::ckpt::Saver& s) const {
  for (const std::uint64_t w : rng_.state()) s.u64(w);
  s.b(stopped_);
  s.u64(poisson_issued_);
  s.u64(trace_issued_);
  s.u64(trace_next_);
  const auto save_timer = [&](sim::EventId id) {
    const bool armed = id != sim::kInvalidEventId;
    s.b(armed);
    if (armed) {
      sim::Scheduler::PendingKey k;
      [[maybe_unused]] const bool live = sched_.key_of(id, k);
      assert(live && "empirical traffic timer id stale");
      s.i64(k.t_ns);
      s.u64(k.seq);
    }
  };
  save_timer(arrival_timer_);
  save_timer(trace_timer_);
}

void EmpiricalTraffic::restore_state(core::ckpt::Loader& l) {
  std::array<std::uint64_t, 4> st{};
  for (auto& w : st) w = l.u64();
  rng_.restore_state(st);
  stopped_ = l.b();
  poisson_issued_ = l.u64();
  trace_issued_ = l.u64();
  trace_next_ = static_cast<std::size_t>(l.u64());
  const auto restore_timer = [&](auto cb) -> sim::EventId {
    if (!l.b()) return sim::kInvalidEventId;
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    return sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, cb);
  };
  arrival_timer_ = restore_timer([this] { on_arrival(); });
  trace_timer_ = restore_timer([this] { on_trace_due(); });
}

}  // namespace xmp::workload
