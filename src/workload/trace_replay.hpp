#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "topo/host_pool.hpp"
#include "workload/flow_manager.hpp"

namespace xmp::workload {

/// One transfer in a trace file.
struct TraceEntry {
  double start_s = 0.0;
  int src = 0;
  int dst = 0;
  std::int64_t bytes = 0;
  bool small = false;  ///< small flows use plain TCP regardless of scheme
};

/// Parse a flow-trace CSV: `start_s,src,dst,bytes[,small]` with an optional
/// header line. Returns false on malformed input (partial results cleared).
[[nodiscard]] bool load_trace_csv(const std::string& path, std::vector<TraceEntry>& out);

/// Write entries back out in the same format (round-trip tooling).
void save_trace_csv(const std::string& path, const std::vector<TraceEntry>& entries);

/// Replays a recorded or synthesized flow trace against a Fat-Tree — the
/// mechanism for driving the simulator from production-style traces
/// instead of the paper's synthetic patterns.
class TraceReplay {
 public:
  TraceReplay(sim::Scheduler& sched, topo::HostPool& topo, FlowManager& flows,
              std::vector<TraceEntry> entries)
      : sched_{sched}, topo_{topo}, flows_{flows}, entries_{std::move(entries)} {}

  /// Schedule every entry (start times are relative to now()).
  void start();

  [[nodiscard]] std::size_t scheduled() const { return entries_.size(); }
  [[nodiscard]] std::size_t skipped_invalid() const { return skipped_; }

 private:
  sim::Scheduler& sched_;
  topo::HostPool& topo_;
  FlowManager& flows_;
  std::vector<TraceEntry> entries_;
  std::size_t skipped_ = 0;
};

}  // namespace xmp::workload
