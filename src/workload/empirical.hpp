#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/host_pool.hpp"
#include "workload/flow_manager.hpp"

namespace xmp::workload {

/// Empirical flow-size distribution loaded from a `.cdf` file (DESIGN.md
/// §13). The file is a sequence of `<size_bytes> <cum_prob>` lines — the
/// convention used by the public websearch (DCTCP) and datamining (VL2)
/// distributions — and is sampled by inverse transform with linear
/// interpolation between points, so draws are continuous within each
/// segment and bit-identical for a fixed RNG stream.
class EmpiricalCdf {
 public:
  struct Point {
    double bytes = 0.0;  ///< flow size at this CDF point
    double cum = 0.0;    ///< P(size <= bytes), non-decreasing, last == 1
  };

  /// Parse a CDF file. Returns false and fills `error` with a one-line
  /// `path:line: message` diagnostic on any hostile input (non-numeric or
  /// truncated lines, NaN/inf, non-positive sizes, decreasing sizes,
  /// non-monotone or out-of-range probabilities, fewer than two points,
  /// last cumulative probability != 1).
  static bool parse_file(const std::string& path, EmpiricalCdf& out, std::string* error);
  /// Same, from an already-open stream; `name` labels diagnostics.
  static bool parse(std::istream& in, const std::string& name, EmpiricalCdf& out,
                    std::string* error);

  /// Inverse-transform draw: u ~ U[0,1) mapped through the piecewise-linear
  /// inverse CDF. Always >= 1 byte. Exactly one uniform01() per call.
  [[nodiscard]] std::int64_t sample(sim::Rng& rng) const;

  /// Analytic mean of the piecewise-linear distribution (trapezoid over
  /// the inverse CDF) — used to convert offered load into an arrival rate
  /// without Monte-Carlo error.
  [[nodiscard]] double mean_bytes() const;

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Mix the parsed points into a config fingerprint accumulator so a
  /// checkpoint taken under one distribution cannot restore under another.
  void mix_fingerprint(std::uint64_t& h) const;

 private:
  std::vector<Point> points_;
  std::string name_;
};

/// Destination constraint for sampled (Poisson) flows in a workload file.
enum class WorkloadSpan : std::uint8_t {
  Any,        ///< any destination != source
  InterRack,  ///< destination in a different rack than the source
};

/// One explicit `flow SRC DST BYTES START_S` entry of a workload file.
struct ExplicitFlow {
  int src = 0;
  int dst = 0;
  std::int64_t bytes = 0;
  sim::Time start = sim::Time::zero();
};

/// Open-loop empirical traffic generator (DESIGN.md §13): a global Poisson
/// arrival process at a configured offered load, flow sizes drawn from an
/// EmpiricalCdf, sources uniform over the workload's nodes and destinations
/// uniform subject to the span constraint, plus an optional deterministic
/// trace of explicit flows. Arrivals are open loop — they never wait for
/// completions — so flows unfinished at the horizon are *censored*, not
/// retried; the FCT collector accounts for them explicitly.
///
/// Mice (flows below `mice_threshold`) are issued as plain-TCP small flows,
/// matching the paper's mice semantics; everything else follows the
/// configured SchemeSpec. No completion callbacks are installed (open loop),
/// so checkpoint restore needs no CallbackTag re-binding — only the RNG,
/// the counters and the two pending timers below.
class EmpiricalTraffic {
 public:
  struct Config {
    const EmpiricalCdf* cdf = nullptr;  ///< null = trace-only workload
    double load = 0.0;                  ///< offered load per sender, (0, 1.2]
    std::int64_t line_rate_bps = 1'000'000'000;
    int nodes = 0;                      ///< senders/receivers are hosts [0, nodes)
    WorkloadSpan span = WorkloadSpan::Any;
    std::int64_t mice_threshold = 100'000;  ///< bytes; below = plain-TCP mouse
    /// Explicit flows, sorted by (start, file order). Pointer into the
    /// owning WorkloadSpec; must outlive the generator.
    const std::vector<ExplicitFlow>* trace = nullptr;
  };

  EmpiricalTraffic(sim::Scheduler& sched, topo::HostPool& topo, FlowManager& flows,
                   sim::Rng rng, const Config& cfg);

  /// Arm the Poisson process (first inter-arrival drawn immediately) and
  /// the explicit-flow walker. Fresh starts only — restores re-arm through
  /// restore_state().
  void start();
  void stop();

  [[nodiscard]] std::uint64_t flows_issued() const { return poisson_issued_ + trace_issued_; }
  [[nodiscard]] std::uint64_t poisson_issued() const { return poisson_issued_; }
  [[nodiscard]] std::uint64_t trace_issued() const { return trace_issued_; }
  /// Aggregate Poisson arrival rate, flows/sec (0 for trace-only workloads).
  [[nodiscard]] double arrival_rate() const { return rate_; }

  /// Checkpoint the RNG, issue progress, trace cursor and pending timers
  /// (the GaugeProbe PendingKey idiom: equal-timestamp FIFO order survives).
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  void on_arrival();
  void on_trace_due();
  void issue(int src, int dst, std::int64_t bytes);
  [[nodiscard]] int pick_destination(int src);

  sim::Scheduler& sched_;
  topo::HostPool& topo_;
  FlowManager& flows_;
  sim::Rng rng_;
  Config cfg_;
  double rate_ = 0.0;  ///< aggregate arrivals/sec
  bool stopped_ = false;
  std::uint64_t poisson_issued_ = 0;
  std::uint64_t trace_issued_ = 0;
  std::size_t trace_next_ = 0;  ///< first unissued entry of cfg_.trace
  sim::EventId arrival_timer_ = sim::kInvalidEventId;
  sim::EventId trace_timer_ = sim::kInvalidEventId;
};

}  // namespace xmp::workload
