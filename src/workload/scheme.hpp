#pragma once

#include <string>

namespace xmp::workload {

/// Transport scheme used by *large* flows (small flows always use plain
/// TCP in the paper). The trailing digit of the paper's scheme names
/// ("XMP-2", "LIA-4") is `subflows`.
struct SchemeSpec {
  enum class Kind { Tcp, Dctcp, Xmp, Lia, Olia };

  Kind kind = Kind::Xmp;
  int subflows = 2;  ///< ignored for Tcp/Dctcp
  int beta = 4;      ///< XMP window-reduction factor 1/β
  /// Declare a multipath subflow dead after this many consecutive RTOs
  /// (0 = never, the fault-free default — keeps fault-free runs
  /// bit-identical to builds without the fault subsystem).
  int dead_after_rtos = 0;
  /// Re-home a detected-dead subflow onto a fresh path tag up to this many
  /// times per connection before killing it (0 = kill immediately, the
  /// pre-PathManager default).
  int max_rehomes = 0;

  [[nodiscard]] bool multipath() const {
    return kind == Kind::Xmp || kind == Kind::Lia || kind == Kind::Olia;
  }

  [[nodiscard]] std::string name() const {
    switch (kind) {
      case Kind::Tcp:
        return "TCP";
      case Kind::Dctcp:
        return "DCTCP";
      case Kind::Xmp:
        return "XMP-" + std::to_string(subflows);
      case Kind::Lia:
        return "LIA-" + std::to_string(subflows);
      case Kind::Olia:
        return "OLIA-" + std::to_string(subflows);
    }
    return "?";
  }
};

}  // namespace xmp::workload
