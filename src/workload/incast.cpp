#include "workload/incast.hpp"

#include <cassert>

namespace xmp::workload {

void IncastTraffic::start() {
  for (int i = 0; i < cfg_.n_jobs; ++i) start_job();
}

void IncastTraffic::start_job() {
  if (stopped_) return;
  if (cfg_.max_jobs != 0 && started_ >= cfg_.max_jobs) return;
  ++started_;

  // Pick 1 + servers_per_job distinct hosts at random.
  const int n = topo_.n_hosts();
  const int needed = cfg_.servers_per_job + 1;
  assert(needed <= n);
  std::vector<int> chosen;
  chosen.reserve(static_cast<std::size_t>(needed));
  while (static_cast<int>(chosen.size()) < needed) {
    const auto h = static_cast<int>(rng_.uniform_u64(static_cast<std::uint64_t>(n)));
    bool dup = false;
    for (int c : chosen) {
      if (c == h) {
        dup = true;
        break;
      }
    }
    if (!dup) chosen.push_back(h);
  }
  const int client = chosen[0];

  const std::size_t job = jobs_.size();
  JobRecord rec;
  rec.start = sched_.now();
  jobs_.push_back(rec);
  outstanding_.push_back(cfg_.servers_per_job);

  // Fan the requests out simultaneously.
  for (int s = 1; s <= cfg_.servers_per_job; ++s) {
    const int server = chosen[static_cast<std::size_t>(s)];
    flows_.start_small_flow(
        topo_.host(client), topo_.host(server), client, server, cfg_.request_bytes,
        [this, job, server, client] { on_request_done(job, server, client); },
        CallbackTag{CallbackTag::kIncastRequest, static_cast<std::int64_t>(job), server, client});
  }
}

void IncastTraffic::on_request_done(std::size_t job, int server_host, int client_host) {
  // The server answers immediately with the response small flow.
  flows_.start_small_flow(
      topo_.host(server_host), topo_.host(client_host), server_host, client_host,
      cfg_.response_bytes, [this, job] { on_response_done(job); },
      CallbackTag{CallbackTag::kIncastResponse, static_cast<std::int64_t>(job), 0, 0});
}

void IncastTraffic::on_response_done(std::size_t job) {
  assert(outstanding_[job] > 0);
  if (--outstanding_[job] > 0) return;
  jobs_[job].finish = sched_.now();
  jobs_[job].completed = true;
  start_job();  // replace the finished job
}

}  // namespace xmp::workload
