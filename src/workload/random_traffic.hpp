#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/host_pool.hpp"
#include "workload/flow_manager.hpp"

namespace xmp::workload {

/// The paper's Random pattern (§5.2.1): every host keeps exactly one large
/// flow to a random destination in flight (re-issued immediately on
/// completion), destinations capped at 4 concurrent inbound flows, sizes
/// bounded-Pareto with shape 1.5.
class RandomTraffic {
 public:
  struct Config {
    double pareto_shape = 1.5;
    std::int64_t min_bytes = 2'000'000;   ///< scaled: paper mean 192 MB -> ~6 MB
    std::int64_t max_bytes = 24'000'000;  ///< scaled: paper cap 768 MB -> 24 MB
    int max_inbound_per_host = 4;
    /// Paper's Incast-pattern footnote: background large flows must not be
    /// intra-rack.
    bool exclude_same_rack = false;
    /// Restrict senders to a subset of hosts (used for the Table 2
    /// coexistence scenarios where half the hosts run another scheme).
    std::vector<int> senders;  ///< empty = all hosts
  };

  RandomTraffic(sim::Scheduler& sched, topo::HostPool& topo, FlowManager& flows, sim::Rng rng,
                const Config& cfg)
      : sched_{sched}, topo_{topo}, flows_{flows}, rng_{rng}, cfg_{cfg},
        inbound_(static_cast<std::size_t>(topo.n_hosts()), 0) {}

  /// Launch one flow per configured sender; each re-issues on completion
  /// until stop() is called.
  void start();
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t flows_issued() const { return issued_; }

  /// Checkpoint the RNG, inbound tallies and issue progress.
  void save_state(core::ckpt::Saver& s) const {
    for (const std::uint64_t w : rng_.state()) s.u64(w);
    s.b(stopped_);
    s.u64(issued_);
    s.u64(inbound_.size());
    for (const int v : inbound_) s.i64(v);
  }
  void restore_state(core::ckpt::Loader& l) {
    std::array<std::uint64_t, 4> st{};
    for (auto& w : st) w = l.u64();
    rng_.restore_state(st);
    stopped_ = l.b();
    issued_ = l.u64();
    const std::uint64_t n = l.u64();
    for (std::uint64_t i = 0; i < n && i < inbound_.size() && l.ok(); ++i) {
      inbound_[i] = static_cast<int>(l.i64());
    }
  }
  /// Completion-callback target for flows re-bound after a restore; must
  /// mirror the lambda issue_from() installs.
  void restored_flow_done(int src, int dst) {
    --inbound_[static_cast<std::size_t>(dst)];
    issue_from(src);
  }

 private:
  void issue_from(int src);
  [[nodiscard]] int pick_destination(int src);

  sim::Scheduler& sched_;
  topo::HostPool& topo_;
  FlowManager& flows_;
  sim::Rng rng_;
  Config cfg_;
  std::vector<int> inbound_;
  bool stopped_ = false;
  std::uint64_t issued_ = 0;
};

}  // namespace xmp::workload
