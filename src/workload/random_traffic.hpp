#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/host_pool.hpp"
#include "workload/flow_manager.hpp"

namespace xmp::workload {

/// The paper's Random pattern (§5.2.1): every host keeps exactly one large
/// flow to a random destination in flight (re-issued immediately on
/// completion), destinations capped at 4 concurrent inbound flows, sizes
/// bounded-Pareto with shape 1.5.
class RandomTraffic {
 public:
  struct Config {
    double pareto_shape = 1.5;
    std::int64_t min_bytes = 2'000'000;   ///< scaled: paper mean 192 MB -> ~6 MB
    std::int64_t max_bytes = 24'000'000;  ///< scaled: paper cap 768 MB -> 24 MB
    int max_inbound_per_host = 4;
    /// Paper's Incast-pattern footnote: background large flows must not be
    /// intra-rack.
    bool exclude_same_rack = false;
    /// Restrict senders to a subset of hosts (used for the Table 2
    /// coexistence scenarios where half the hosts run another scheme).
    std::vector<int> senders;  ///< empty = all hosts
  };

  RandomTraffic(sim::Scheduler& sched, topo::HostPool& topo, FlowManager& flows, sim::Rng rng,
                const Config& cfg)
      : sched_{sched}, topo_{topo}, flows_{flows}, rng_{rng}, cfg_{cfg},
        inbound_(static_cast<std::size_t>(topo.n_hosts()), 0) {}

  /// Launch one flow per configured sender; each re-issues on completion
  /// until stop() is called.
  void start();
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t flows_issued() const { return issued_; }

 private:
  void issue_from(int src);
  [[nodiscard]] int pick_destination(int src);

  sim::Scheduler& sched_;
  topo::HostPool& topo_;
  FlowManager& flows_;
  sim::Rng rng_;
  Config cfg_;
  std::vector<int> inbound_;
  bool stopped_ = false;
  std::uint64_t issued_ = 0;
};

}  // namespace xmp::workload
