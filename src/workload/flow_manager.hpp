#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mptcp/connection.hpp"
#include "net/network.hpp"
#include "transport/flow.hpp"
#include "workload/scheme.hpp"

namespace xmp::workload {

/// Completion record of one transfer.
struct FlowRecord {
  net::FlowId id = 0;
  int src_host = -1;  ///< topology host index
  int dst_host = -1;
  std::int64_t bytes = 0;
  bool large = true;
  sim::Time start = sim::Time::zero();
  sim::Time finish = sim::Time::zero();
  bool completed = false;
  bool aborted = false;  ///< every subflow died with data undelivered

  [[nodiscard]] double goodput_bps() const {
    if (!completed || finish <= start) return 0.0;
    return static_cast<double>(bytes) * 8.0 / (finish - start).sec();
  }
};

/// Why a flow exists. Serialized with the flow's record so a restored run
/// can re-bind the owning workload generator's completion callback (plain
/// std::function callbacks cannot be checkpointed). `kind` identifies the
/// generator hook; `a`/`b`/`c` carry its captured arguments.
struct CallbackTag {
  static constexpr std::uint8_t kNone = 0;
  static constexpr std::uint8_t kPermutation = 1;     ///< (unused)
  static constexpr std::uint8_t kRandom = 2;          ///< a = src, b = dst
  static constexpr std::uint8_t kIncastRequest = 3;   ///< a = job, b = server, c = client
  static constexpr std::uint8_t kIncastResponse = 4;  ///< a = job
  static constexpr std::uint8_t kHybridFg = 5;        ///< a = foreground slot
  static constexpr std::uint8_t kHybridPromoted = 6;  ///< a = fluid flow index

  std::uint8_t kind = kNone;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

/// Creates, owns and tracks every transfer of an experiment.
///
/// Large flows follow the configured SchemeSpec (single-path Flow for
/// TCP/DCTCP, MptcpConnection otherwise); small flows are always plain TCP
/// as in the paper. Flow ids are unique across the manager's lifetime.
class FlowManager {
 public:
  /// `id_base` partitions the flow-id space when several managers share a
  /// network (coexistence runs): ids are demux keys at the hosts, so two
  /// managers must never hand out the same id.
  FlowManager(sim::Scheduler& sched, SchemeSpec spec, net::FlowId id_base = 1)
      : sched_{sched}, spec_{spec}, next_id_{id_base} {}

  /// Sharded runs: resolve the shard scheduler owning topology host `i`.
  /// When set, new transfers place their sender on the source host's
  /// scheduler and their receiver on the destination's; unset keeps every
  /// endpoint on the constructor scheduler (the serial path, untouched).
  void set_schedulers(std::function<sim::Scheduler&(int host_idx)> fn) {
    sched_lookup_ = std::move(fn);
  }

  /// Start a large flow now. `on_done` (optional) fires at completion,
  /// after the record is finalized; `tag` records how to re-create it after
  /// a checkpoint restore. `initial_cwnd` (segments, per subflow for
  /// multipath schemes; 0 keeps the scheme default) seeds the congestion
  /// window — the hybrid engine uses it to carry a promoted fluid flow's
  /// converged window into the packet domain instead of slow-starting from
  /// scratch. It only matters at construction: a checkpoint restore rebuilds
  /// the flow with scheme defaults and then overwrites the live sender
  /// state, cwnd included.
  void start_large_flow(net::Host& src, net::Host& dst, int src_idx, int dst_idx,
                        std::int64_t bytes, std::function<void()> on_done = nullptr,
                        CallbackTag tag = {}, double initial_cwnd = 0.0);

  /// Start a small plain-TCP flow now (incast requests/responses).
  void start_small_flow(net::Host& src, net::Host& dst, int src_idx, int dst_idx,
                        std::int64_t bytes, std::function<void()> on_done = nullptr,
                        CallbackTag tag = {});

  /// Checkpoint every record, tag and live transfer (in creation order).
  void save_state(core::ckpt::Saver& s) const;
  /// Rebuild and restore every transfer. `host` maps a topology host index
  /// to the Host object; `bind` turns a saved CallbackTag back into the
  /// owning generator's completion callback (null tag -> null callback).
  /// Expects a freshly constructed manager with the same spec/id_base and,
  /// in sharded runs, set_schedulers() already applied.
  using BindFn = std::function<std::function<void()>(const CallbackTag&)>;
  void restore_state(core::ckpt::Loader& l, const std::function<net::Host&(int)>& host,
                     const BindFn& bind);

  [[nodiscard]] const std::vector<FlowRecord>& records() const { return records_; }
  [[nodiscard]] const SchemeSpec& scheme() const { return spec_; }
  [[nodiscard]] std::size_t active_large_flows() const {
    return active_large_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t aborted_large_flows() const {
    return aborted_large_.load(std::memory_order_relaxed);
  }
  /// Subflow re-homes performed across all multipath connections.
  [[nodiscard]] std::uint64_t subflow_rehomes() const;

  /// Visit every in-progress multipath connection (invariant probing).
  void for_each_active_connection(
      const std::function<void(mptcp::MptcpConnection&)>& fn) const;

  /// Visit every in-progress large flow's subflow senders (RTT probing).
  void for_each_active_large_sender(
      const std::function<void(const FlowRecord&, const transport::TcpSender&)>& fn) const;

  /// Visit every *unfinished* large flow with the bytes it has delivered so
  /// far — used to include partial goodput at the end of a fixed-horizon
  /// run instead of silently censoring slow flows.
  void for_each_partial_large(
      const std::function<void(const FlowRecord&, std::int64_t delivered_bytes)>& fn) const;

 private:
  std::size_t new_record(int src_idx, int dst_idx, std::int64_t bytes, bool large);
  /// Flow/connection configs derived from the scheme — shared between the
  /// start_* paths and checkpoint reconstruction so both build identical
  /// objects.
  [[nodiscard]] transport::Flow::Config single_config(net::FlowId id, std::int64_t bytes,
                                                      bool large) const;
  [[nodiscard]] mptcp::MptcpConnection::Config multi_config(net::FlowId id,
                                                            std::int64_t bytes) const;
  void finish_record(std::size_t idx, std::function<void()>& on_done);
  void finish_multi(std::size_t slot, bool aborted);
  /// Local simulated time: the scheduler currently dispatching (sharded
  /// completions land on the endpoint's shard), else the serial scheduler.
  [[nodiscard]] sim::Time now_time() const;
  [[nodiscard]] sim::Scheduler& sched_for(int host_idx) const {
    return sched_lookup_ ? sched_lookup_(host_idx) : sched_;
  }

  sim::Scheduler& sched_;
  SchemeSpec spec_;
  net::FlowId next_id_;
  std::function<sim::Scheduler&(int)> sched_lookup_;
  // Concurrent finishes on different shards touch disjoint records_ rows but
  // share these tallies; new_record/push_back only ever run in the serial
  // (barrier / micro-step) phase, so the vector itself never reallocates
  // under a parallel reader.
  std::atomic<std::size_t> active_large_{0};
  std::atomic<std::size_t> aborted_large_{0};

  struct LargeSingle {
    std::size_t record;
    std::unique_ptr<transport::Flow> flow;
  };
  struct LargeMulti {
    std::size_t record;
    std::unique_ptr<mptcp::MptcpConnection> conn;
    std::function<void()> on_done;
  };
  struct Small {
    std::size_t record;
    std::unique_ptr<transport::Flow> flow;
  };
  std::vector<LargeSingle> singles_;
  std::vector<LargeMulti> multis_;
  std::vector<Small> smalls_;
  std::vector<FlowRecord> records_;
  std::vector<CallbackTag> tags_;  ///< parallel to records_
};

}  // namespace xmp::workload
