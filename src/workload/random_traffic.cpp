#include "workload/random_traffic.hpp"

#include <algorithm>
#include <cassert>

namespace xmp::workload {

void RandomTraffic::start() {
  std::vector<int> senders = cfg_.senders;
  if (senders.empty()) {
    senders.resize(static_cast<std::size_t>(topo_.n_hosts()));
    for (int i = 0; i < topo_.n_hosts(); ++i) senders[static_cast<std::size_t>(i)] = i;
  }
  for (int src : senders) issue_from(src);
}

int RandomTraffic::pick_destination(int src) {
  const int n = topo_.n_hosts();
  // Rejection sampling with a bounded number of tries; fall back to the
  // least-loaded eligible host so the pattern cannot stall.
  for (int tries = 0; tries < 64; ++tries) {
    const auto d = static_cast<int>(rng_.uniform_u64(static_cast<std::uint64_t>(n)));
    if (d == src) continue;
    if (cfg_.exclude_same_rack && topo_.rack_of(d) == topo_.rack_of(src)) continue;
    if (inbound_[static_cast<std::size_t>(d)] >= cfg_.max_inbound_per_host) continue;
    return d;
  }
  int best = -1;
  for (int d = 0; d < n; ++d) {
    if (d == src) continue;
    if (cfg_.exclude_same_rack && topo_.rack_of(d) == topo_.rack_of(src)) continue;
    if (best < 0 || inbound_[static_cast<std::size_t>(d)] < inbound_[static_cast<std::size_t>(best)]) {
      best = d;
    }
  }
  assert(best >= 0 && "no eligible destination");
  return best;
}

void RandomTraffic::issue_from(int src) {
  if (stopped_) return;
  const int dst = pick_destination(src);
  ++inbound_[static_cast<std::size_t>(dst)];
  ++issued_;

  const double raw = rng_.bounded_pareto(cfg_.pareto_shape, static_cast<double>(cfg_.min_bytes),
                                         static_cast<double>(cfg_.max_bytes));
  const auto bytes = static_cast<std::int64_t>(raw);

  flows_.start_large_flow(topo_.host(src), topo_.host(dst), src, dst, bytes,
                          [this, src, dst] {
                            --inbound_[static_cast<std::size_t>(dst)];
                            issue_from(src);  // "immediately chooses another host at random"
                          },
                          CallbackTag{CallbackTag::kRandom, src, dst, 0});
}

}  // namespace xmp::workload
