#include "workload/permutation.hpp"

#include <numeric>
#include <vector>

namespace xmp::workload {

void PermutationTraffic::start_round() {
  const int n = topo_.n_hosts();
  // Random permutation with no fixed points: Fisher-Yates shuffle, then
  // repair any host mapped to itself by swapping with a neighbour.
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng_.uniform_u64(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[i], perm[j]);
  }
  for (int i = 0; i < n; ++i) {
    if (perm[i] == i) std::swap(perm[i], perm[(i + 1) % n]);
  }

  outstanding_ = n;
  for (int src = 0; src < n; ++src) {
    const int dst = perm[src];
    const std::int64_t bytes = rng_.uniform_int(cfg_.min_bytes, cfg_.max_bytes);
    flows_.start_large_flow(topo_.host(src), topo_.host(dst), src, dst, bytes,
                            [this] { on_flow_done(); });
  }
}

void PermutationTraffic::on_flow_done() {
  if (--outstanding_ > 0) return;
  ++completed_rounds_;
  if (completed_rounds_ < cfg_.rounds) {
    start_round();
  } else if (on_done_) {
    on_done_();
  }
}

}  // namespace xmp::workload
