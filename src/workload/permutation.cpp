#include "workload/permutation.hpp"

#include <numeric>
#include <vector>

namespace xmp::workload {

void PermutationTraffic::start_round() {
  const int n = topo_.n_hosts();
  // Random permutation with no fixed points: Fisher-Yates shuffle, then
  // repair any host mapped to itself by swapping with a neighbour.
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng_.uniform_u64(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[i], perm[j]);
  }
  for (int i = 0; i < n; ++i) {
    if (perm[i] == i) std::swap(perm[i], perm[(i + 1) % n]);
  }

  outstanding_.store(n, std::memory_order_relaxed);
  for (int src = 0; src < n; ++src) {
    const int dst = perm[src];
    const std::int64_t bytes = rng_.uniform_int(cfg_.min_bytes, cfg_.max_bytes);
    flows_.start_large_flow(topo_.host(src), topo_.host(dst), src, dst, bytes,
                            [this] { on_flow_done(); },
                            CallbackTag{CallbackTag::kPermutation, 0, 0, 0});
  }
}

void PermutationTraffic::on_flow_done() {
  if (outstanding_.fetch_sub(1, std::memory_order_relaxed) > 1) return;
  if (parallel_phase_.load(std::memory_order_relaxed)) {
    // Last flow of the round finished inside a parallel epoch. The flip
    // fans out to every shard, so it cannot run here: flag the engine,
    // which discards this attempt and replays the epoch serially (where
    // this callback fires again, taking the branch below).
    deferred_done_.store(true, std::memory_order_relaxed);
    return;
  }
  ++completed_rounds_;
  if (completed_rounds_ < cfg_.rounds) {
    start_round();
  } else if (on_done_) {
    on_done_();
  }
}

}  // namespace xmp::workload
