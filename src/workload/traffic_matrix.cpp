#include "workload/traffic_matrix.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace xmp::workload {

namespace {

bool parse_finite(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || errno == ERANGE) return false;
  if (!std::isfinite(v)) return false;
  out = v;
  return true;
}

bool parse_i64(const std::string& tok, std::int64_t& out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::string stem_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.erase(dot);
  return base;
}

std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string{} : path.substr(0, slash);
}

}  // namespace

bool WorkloadSpec::parse_file(const std::string& path, WorkloadSpec& out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = path + ": cannot open workload file";
    return false;
  }
  out.path = path;
  return parse(in, path, dir_of(path), out, error);
}

bool WorkloadSpec::parse(std::istream& in, const std::string& name, const std::string& dir,
                         WorkloadSpec& out, std::string* error) {
  auto fail = [&](int line, const std::string& msg) {
    if (error) *error = name + ":" + std::to_string(line) + ": " + msg;
    return false;
  };
  out.name = stem_of(name);
  out.nodes = 0;
  out.span = WorkloadSpan::Any;
  out.cdf = {};
  out.has_cdf = false;
  out.default_load = 0.0;
  out.mice_threshold = 100'000;
  out.flows.clear();

  bool saw_nodes = false;
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::string kw;
    if (!(ls >> kw)) continue;

    auto want_end = [&]() -> bool {
      std::string extra;
      if (ls >> extra) return fail(lineno, "trailing token '" + extra + "'");
      return true;
    };

    if (kw == "nodes") {
      if (saw_nodes) return fail(lineno, "duplicate 'nodes' directive");
      std::string tok;
      std::int64_t n = 0;
      if (!(ls >> tok) || !parse_i64(tok, n))
        return fail(lineno, "expected 'nodes N' with integer N");
      if (n < 2) return fail(lineno, "need at least 2 nodes (got " + tok + ")");
      if (n > 1'000'000) return fail(lineno, "implausible node count " + tok);
      out.nodes = static_cast<int>(n);
      saw_nodes = true;
      if (!want_end()) return false;
    } else if (kw == "cdf") {
      if (out.has_cdf) return fail(lineno, "duplicate 'cdf' directive");
      std::string rel;
      if (!(ls >> rel)) return fail(lineno, "expected 'cdf PATH'");
      if (!want_end()) return false;
      const std::string full =
          (rel.front() == '/' || dir.empty()) ? rel : dir + "/" + rel;
      std::string cdf_err;
      if (!EmpiricalCdf::parse_file(full, out.cdf, &cdf_err)) {
        return fail(lineno, "in cdf '" + rel + "': " + cdf_err);
      }
      out.has_cdf = true;
    } else if (kw == "load") {
      std::string tok;
      double v = 0.0;
      if (!(ls >> tok) || !parse_finite(tok, v))
        return fail(lineno, "expected 'load X' with finite X");
      if (v <= 0.0 || v > 1.2)
        return fail(lineno, "load " + tok + " outside (0, 1.2]");
      out.default_load = v;
      if (!want_end()) return false;
    } else if (kw == "span") {
      std::string tok;
      if (!(ls >> tok)) return fail(lineno, "expected 'span any|inter-rack'");
      if (tok == "any") {
        out.span = WorkloadSpan::Any;
      } else if (tok == "inter-rack") {
        out.span = WorkloadSpan::InterRack;
      } else {
        return fail(lineno, "unknown span '" + tok + "' (expected any|inter-rack)");
      }
      if (!want_end()) return false;
    } else if (kw == "mice-threshold") {
      std::string tok;
      std::int64_t v = 0;
      if (!(ls >> tok) || !parse_i64(tok, v))
        return fail(lineno, "expected 'mice-threshold BYTES'");
      if (v < 0) return fail(lineno, "negative mice-threshold " + tok);
      out.mice_threshold = v;
      if (!want_end()) return false;
    } else if (kw == "flow") {
      if (!saw_nodes) return fail(lineno, "'flow' before 'nodes'");
      std::string a, b, c, d;
      if (!(ls >> a >> b >> c >> d))
        return fail(lineno, "truncated flow line (expected 'flow SRC DST BYTES START_S')");
      if (!want_end()) return false;
      std::int64_t src = 0, dst = 0, bytes = 0;
      double start = 0.0;
      if (!parse_i64(a, src)) return fail(lineno, "bad flow src '" + a + "'");
      if (!parse_i64(b, dst)) return fail(lineno, "bad flow dst '" + b + "'");
      if (!parse_i64(c, bytes)) return fail(lineno, "bad flow size '" + c + "'");
      if (!parse_finite(d, start)) return fail(lineno, "bad flow start '" + d + "'");
      if (src < 0 || src >= out.nodes)
        return fail(lineno, "unknown src host " + a + " (nodes " + std::to_string(out.nodes) + ")");
      if (dst < 0 || dst >= out.nodes)
        return fail(lineno, "unknown dst host " + b + " (nodes " + std::to_string(out.nodes) + ")");
      if (src == dst) return fail(lineno, "flow src == dst (" + a + ")");
      if (bytes <= 0) return fail(lineno, "non-positive flow size " + c);
      if (start < 0.0) return fail(lineno, "negative flow start " + d);
      ExplicitFlow f;
      f.src = static_cast<int>(src);
      f.dst = static_cast<int>(dst);
      f.bytes = bytes;
      f.start = sim::Time::seconds(start);
      out.flows.push_back(f);
    } else {
      return fail(lineno, "unknown directive '" + kw + "'");
    }
  }
  if (!saw_nodes) return fail(lineno, "missing required 'nodes' directive");
  if (!out.has_cdf && out.flows.empty())
    return fail(lineno, "workload defines no traffic (need a 'cdf' or 'flow' lines)");
  if (!out.has_cdf && out.default_load > 0.0)
    return fail(lineno, "'load' directive without a 'cdf' has no effect");
  // The generator walks explicit flows in start order; keep file order for
  // equal timestamps (stable sort) so scenarios replay exactly as written.
  std::stable_sort(out.flows.begin(), out.flows.end(),
                   [](const ExplicitFlow& x, const ExplicitFlow& y) { return x.start < y.start; });
  return true;
}

std::uint64_t WorkloadSpec::content_hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  h = mix64(h, static_cast<std::uint64_t>(nodes));
  h = mix64(h, static_cast<std::uint64_t>(span));
  h = mix64(h, static_cast<std::uint64_t>(mice_threshold));
  std::uint64_t load_bits = 0;
  std::memcpy(&load_bits, &default_load, sizeof load_bits);
  h = mix64(h, load_bits);
  h = mix64(h, has_cdf ? 1 : 0);
  if (has_cdf) cdf.mix_fingerprint(h);
  h = mix64(h, flows.size());
  for (const ExplicitFlow& f : flows) {
    h = mix64(h, static_cast<std::uint64_t>(f.src));
    h = mix64(h, static_cast<std::uint64_t>(f.dst));
    h = mix64(h, static_cast<std::uint64_t>(f.bytes));
    h = mix64(h, static_cast<std::uint64_t>(f.start.ns()));
  }
  return h;
}

}  // namespace xmp::workload
