#pragma once

#include <cstdint>
#include <functional>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/host_pool.hpp"
#include "workload/flow_manager.hpp"

namespace xmp::workload {

/// The paper's Permutation pattern (§5.2.1): every host sends one large
/// flow to a distinct random host (a random permutation with no fixed
/// point); when *all* flows of the round finish, a new permutation starts.
class PermutationTraffic {
 public:
  struct Config {
    std::int64_t min_bytes = 2'000'000;   ///< paper: 64 MB (scaled 32x down)
    std::int64_t max_bytes = 16'000'000;  ///< paper: 512 MB (scaled 32x down)
    int rounds = 2;
  };

  PermutationTraffic(sim::Scheduler& sched, topo::HostPool& topo, FlowManager& flows,
                     sim::Rng rng, const Config& cfg)
      : sched_{sched}, topo_{topo}, flows_{flows}, rng_{rng}, cfg_{cfg} {}

  void start() { start_round(); }

  [[nodiscard]] bool done() const { return completed_rounds_ >= cfg_.rounds; }
  [[nodiscard]] int completed_rounds() const { return completed_rounds_; }

  /// Fires when the configured number of rounds has completed.
  void set_on_done(std::function<void()> fn) { on_done_ = std::move(fn); }

 private:
  void start_round();
  void on_flow_done();

  sim::Scheduler& sched_;
  topo::HostPool& topo_;
  FlowManager& flows_;
  sim::Rng rng_;
  Config cfg_;
  int completed_rounds_ = 0;
  int outstanding_ = 0;
  std::function<void()> on_done_;
};

}  // namespace xmp::workload
