#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/host_pool.hpp"
#include "workload/flow_manager.hpp"

namespace xmp::workload {

/// The paper's Permutation pattern (§5.2.1): every host sends one large
/// flow to a distinct random host (a random permutation with no fixed
/// point); when *all* flows of the round finish, a new permutation starts.
class PermutationTraffic {
 public:
  struct Config {
    std::int64_t min_bytes = 2'000'000;   ///< paper: 64 MB (scaled 32x down)
    std::int64_t max_bytes = 16'000'000;  ///< paper: 512 MB (scaled 32x down)
    int rounds = 2;
  };

  PermutationTraffic(sim::Scheduler& sched, topo::HostPool& topo, FlowManager& flows,
                     sim::Rng rng, const Config& cfg)
      : sched_{sched}, topo_{topo}, flows_{flows}, rng_{rng}, cfg_{cfg} {}

  void start() { start_round(); }

  [[nodiscard]] bool done() const { return completed_rounds_ >= cfg_.rounds; }
  [[nodiscard]] int completed_rounds() const { return completed_rounds_; }

  /// Fires when the configured number of rounds has completed.
  void set_on_done(std::function<void()> fn) { on_done_ = std::move(fn); }

  // --- Sharded-engine sync gate -------------------------------------------
  // A round flip (start_round / on_done_) touches every shard, so it must
  // run in a serial context. The engine marks parallel epochs; if the last
  // flow of a round completes inside one, the flip is *deferred* and the
  // flag tells the engine to replay that epoch serially.

  /// Flows of the current round still in flight.
  [[nodiscard]] int pending_flows() const { return outstanding_.load(std::memory_order_relaxed); }
  /// Engine hook: bracket parallel epoch execution.
  void set_parallel_phase(bool on) { parallel_phase_.store(on, std::memory_order_relaxed); }
  /// True once a round completion was deferred (the round did NOT flip; the
  /// engine must replay from a serial context). Sticky for the attempt.
  [[nodiscard]] bool deferred_done() const {
    return deferred_done_.load(std::memory_order_relaxed);
  }

  /// Checkpoint the RNG and round progress. The parallel-phase flags are
  /// transient per-epoch state, always clear at a quiescent point.
  void save_state(core::ckpt::Saver& s) const {
    for (const std::uint64_t w : rng_.state()) s.u64(w);
    s.i64(completed_rounds_);
    s.i64(outstanding_.load(std::memory_order_relaxed));
  }
  void restore_state(core::ckpt::Loader& l) {
    std::array<std::uint64_t, 4> st{};
    for (auto& w : st) w = l.u64();
    rng_.restore_state(st);
    completed_rounds_ = static_cast<int>(l.i64());
    outstanding_.store(static_cast<int>(l.i64()), std::memory_order_relaxed);
  }
  /// Completion-callback target for flows re-bound after a restore.
  void restored_flow_done() { on_flow_done(); }

 private:
  void start_round();
  void on_flow_done();

  sim::Scheduler& sched_;
  topo::HostPool& topo_;
  FlowManager& flows_;
  sim::Rng rng_;
  Config cfg_;
  int completed_rounds_ = 0;
  std::atomic<int> outstanding_{0};
  std::atomic<bool> parallel_phase_{false};
  std::atomic<bool> deferred_done_{false};
  std::function<void()> on_done_;
};

}  // namespace xmp::workload
