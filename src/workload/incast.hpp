#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/host_pool.hpp"
#include "workload/flow_manager.hpp"

namespace xmp::workload {

/// One many-to-one "Job" lifecycle record (paper §5.2.1, Incast pattern).
struct JobRecord {
  sim::Time start = sim::Time::zero();
  sim::Time finish = sim::Time::zero();
  bool completed = false;

  [[nodiscard]] sim::Time completion_time() const { return finish - start; }
};

/// The paper's Incast pattern: `n_jobs` Jobs run concurrently, each picking
/// 1 client + `servers_per_job` servers at random; the client fans out a
/// 2 KB request to every server, each server answers with a 64 KB response,
/// and the Job ends when the client has every response — then a new Job
/// starts. All small flows use plain TCP (RTOmin = 200 ms), which is what
/// produces the paper's incast-collapse jumps in Fig. 9.
///
/// The paper additionally runs one background large flow per host (Random
/// pattern, no intra-rack pairs); compose a RandomTraffic with
/// `exclude_same_rack = true` alongside this generator for the full pattern.
class IncastTraffic {
 public:
  struct Config {
    int n_jobs = 8;
    int servers_per_job = 8;
    std::int64_t request_bytes = 2'000;
    std::int64_t response_bytes = 64'000;
    /// Stop starting replacement jobs after this many have been launched
    /// (0 = unlimited, run until simulation end).
    std::uint64_t max_jobs = 0;
  };

  IncastTraffic(sim::Scheduler& sched, topo::HostPool& topo, FlowManager& flows, sim::Rng rng,
                const Config& cfg)
      : sched_{sched}, topo_{topo}, flows_{flows}, rng_{rng}, cfg_{cfg} {}

  void start();
  void stop() { stopped_ = true; }

  [[nodiscard]] const std::vector<JobRecord>& jobs() const { return jobs_; }
  [[nodiscard]] std::uint64_t jobs_started() const { return started_; }

  /// Checkpoint the RNG, job records and per-job outstanding counts.
  void save_state(core::ckpt::Saver& s) const {
    for (const std::uint64_t w : rng_.state()) s.u64(w);
    s.b(stopped_);
    s.u64(started_);
    s.u64(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      s.time(jobs_[i].start);
      s.time(jobs_[i].finish);
      s.b(jobs_[i].completed);
      s.i64(outstanding_[i]);
    }
  }
  void restore_state(core::ckpt::Loader& l) {
    std::array<std::uint64_t, 4> st{};
    for (auto& w : st) w = l.u64();
    rng_.restore_state(st);
    stopped_ = l.b();
    started_ = l.u64();
    const std::uint64_t n = l.u64();
    jobs_.clear();
    outstanding_.clear();
    for (std::uint64_t i = 0; i < n && l.ok(); ++i) {
      JobRecord rec;
      rec.start = l.time();
      rec.finish = l.time();
      rec.completed = l.b();
      jobs_.push_back(rec);
      outstanding_.push_back(static_cast<int>(l.i64()));
    }
  }
  /// Completion-callback targets for flows re-bound after a restore.
  void restored_request_done(std::size_t job, int server, int client) {
    on_request_done(job, server, client);
  }
  void restored_response_done(std::size_t job) { on_response_done(job); }

 private:
  void start_job();
  void on_request_done(std::size_t job, int server_host, int client_host);
  void on_response_done(std::size_t job);

  sim::Scheduler& sched_;
  topo::HostPool& topo_;
  FlowManager& flows_;
  sim::Rng rng_;
  Config cfg_;
  std::vector<JobRecord> jobs_;
  std::vector<int> outstanding_;  ///< responses pending per job index
  bool stopped_ = false;
  std::uint64_t started_ = 0;
};

}  // namespace xmp::workload
