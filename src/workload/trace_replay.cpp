#include "workload/trace_replay.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/atomic_file.hpp"

namespace xmp::workload {

bool load_trace_csv(const std::string& path, std::vector<TraceEntry>& out) {
  out.clear();
  std::ifstream in{path};
  if (!in.good()) return false;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Optional header: skip a first line that cannot start a number.
    const bool numeric_start =
        !line.empty() && ((line[0] >= '0' && line[0] <= '9') || line[0] == '-' || line[0] == '.');
    if (first && !numeric_start) {
      first = false;
      continue;
    }
    first = false;
    std::stringstream ss{line};
    std::string cell;
    TraceEntry e;
    int col = 0;
    bool ok = true;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      switch (col) {
        case 0:
          e.start_s = std::strtod(cell.c_str(), &end);
          break;
        case 1:
          e.src = static_cast<int>(std::strtol(cell.c_str(), &end, 10));
          break;
        case 2:
          e.dst = static_cast<int>(std::strtol(cell.c_str(), &end, 10));
          break;
        case 3:
          e.bytes = std::strtoll(cell.c_str(), &end, 10);
          break;
        case 4:
          e.small = std::strtol(cell.c_str(), &end, 10) != 0;
          break;
        default:
          ok = false;
      }
      if (end != nullptr && *end != '\0') ok = false;
      ++col;
    }
    if (!ok || col < 4 || e.start_s < 0 || e.bytes <= 0) {
      out.clear();
      return false;
    }
    out.push_back(e);
  }
  return true;
}

void save_trace_csv(const std::string& path, const std::vector<TraceEntry>& entries) {
  std::string out = "start_s,src,dst,bytes,small\n";
  for (const auto& e : entries) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%.9g,%d,%d,%lld,%d\n", e.start_s, e.src, e.dst,
                  static_cast<long long>(e.bytes), e.small ? 1 : 0);
    out += buf;
  }
  trace::atomic_write_file(path, out);
}

void TraceReplay::start() {
  for (const auto& e : entries_) {
    if (e.src < 0 || e.src >= topo_.n_hosts() || e.dst < 0 || e.dst >= topo_.n_hosts() ||
        e.src == e.dst) {
      ++skipped_;
      continue;
    }
    sched_.schedule_in(sim::Time::seconds(e.start_s), [this, e] {
      if (e.small) {
        flows_.start_small_flow(topo_.host(e.src), topo_.host(e.dst), e.src, e.dst, e.bytes);
      } else {
        flows_.start_large_flow(topo_.host(e.src), topo_.host(e.dst), e.src, e.dst, e.bytes);
      }
    });
  }
}

}  // namespace xmp::workload
