#include "workload/flow_manager.hpp"

#include <cassert>
#include <string>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::workload {

namespace {

void note_flow_done(const FlowRecord& rec, bool aborted) {
  auto* tr = obs::tracer();
  auto* m = obs::metrics();
  if (tr == nullptr && m == nullptr) return;
  if (aborted) {
    if (tr != nullptr) tr->flow_abort(rec.finish, rec.id);
    return;
  }
  const double fct_us = (rec.finish - rec.start).us();
  const double goodput_mbps =
      fct_us > 0.0 ? static_cast<double>(rec.bytes) * 8.0 / fct_us : 0.0;
  if (tr != nullptr) tr->flow_done(rec.finish, rec.id, fct_us, goodput_mbps);
  if (m != nullptr) m->fct_us.add(static_cast<std::uint64_t>(fct_us));
}

}  // namespace

sim::Time FlowManager::now_time() const {
  sim::Scheduler* cs = sim::current_scheduler();
  return cs != nullptr ? cs->now() : sched_.now();
}

std::size_t FlowManager::new_record(int src_idx, int dst_idx, std::int64_t bytes, bool large) {
  FlowRecord rec;
  rec.id = next_id_++;
  rec.src_host = src_idx;
  rec.dst_host = dst_idx;
  rec.bytes = bytes;
  rec.large = large;
  rec.start = now_time();
  records_.push_back(rec);
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->flow_start(rec.start, rec.id, bytes, large);
    tr->name_flow(rec.id, "flow " + std::to_string(rec.id) + " h" +
                              std::to_string(src_idx) + "->h" + std::to_string(dst_idx) +
                              (large ? " (large)" : " (small)"));
  }
  return records_.size() - 1;
}

void FlowManager::finish_record(std::size_t idx, std::function<void()>& on_done) {
  FlowRecord& rec = records_[idx];
  rec.finish = now_time();
  rec.completed = true;
  if (rec.large) {
    [[maybe_unused]] const std::size_t prev =
        active_large_.fetch_sub(1, std::memory_order_relaxed);
    assert(prev > 0);
  }
  note_flow_done(rec, /*aborted=*/false);
  if (on_done) on_done();
}

void FlowManager::start_large_flow(net::Host& src, net::Host& dst, int src_idx, int dst_idx,
                                   std::int64_t bytes, std::function<void()> on_done) {
  const std::size_t rec = new_record(src_idx, dst_idx, bytes, /*large=*/true);
  const net::FlowId id = records_[rec].id;
  active_large_.fetch_add(1, std::memory_order_relaxed);

  if (!spec_.multipath()) {
    transport::Flow::Config fc;
    fc.id = id;
    fc.size_bytes = bytes;
    fc.cc.kind = spec_.kind == SchemeSpec::Kind::Dctcp ? transport::CcConfig::Kind::Dctcp
                                                       : transport::CcConfig::Kind::Reno;
    auto flow = std::make_unique<transport::Flow>(sched_for(src_idx), sched_for(dst_idx), src,
                                                  dst, fc);
    flow->set_on_complete(
        [this, rec, done = std::move(on_done)]() mutable { finish_record(rec, done); });
    flow->start();
    singles_.push_back(LargeSingle{rec, std::move(flow)});
    return;
  }

  mptcp::MptcpConnection::Config mc;
  mc.id = id;
  mc.size_bytes = bytes;
  mc.n_subflows = spec_.subflows;
  mc.bos.beta = spec_.beta;
  mc.dead_after_rtos = spec_.dead_after_rtos;
  mc.max_rehomes = spec_.max_rehomes;
  switch (spec_.kind) {
    case SchemeSpec::Kind::Xmp:
      mc.coupling = mptcp::Coupling::Xmp;
      break;
    case SchemeSpec::Kind::Lia:
      mc.coupling = mptcp::Coupling::Lia;
      break;
    case SchemeSpec::Kind::Olia:
      mc.coupling = mptcp::Coupling::Olia;
      break;
    default:
      assert(false && "unexpected multipath scheme");
  }
  auto conn = std::make_unique<mptcp::MptcpConnection>(sched_for(src_idx), sched_for(dst_idx),
                                                       src, dst, mc);
  const std::size_t slot = multis_.size();  // stable: multis_ never shrinks
  multis_.push_back(LargeMulti{rec, std::move(conn), std::move(on_done)});
  mptcp::MptcpConnection& c = *multis_[slot].conn;
  c.set_on_complete([this, slot] { finish_multi(slot, /*aborted=*/false); });
  c.set_on_abort([this, slot] { finish_multi(slot, /*aborted=*/true); });
  c.start();
}

void FlowManager::finish_multi(std::size_t slot, bool aborted) {
  LargeMulti& m = multis_.at(slot);
  FlowRecord& rec = records_[m.record];
  rec.finish = now_time();
  rec.completed = !aborted;
  rec.aborted = aborted;
  [[maybe_unused]] const std::size_t prev =
      active_large_.fetch_sub(1, std::memory_order_relaxed);
  assert(prev > 0);
  if (aborted) aborted_large_.fetch_add(1, std::memory_order_relaxed);
  note_flow_done(rec, aborted);
  // The caller's completion hook fires for aborts too: an aborted transfer
  // is *over* (workload round-robins must not wait for it forever).
  if (m.on_done) m.on_done();
}

void FlowManager::start_small_flow(net::Host& src, net::Host& dst, int src_idx, int dst_idx,
                                   std::int64_t bytes, std::function<void()> on_done) {
  const std::size_t rec = new_record(src_idx, dst_idx, bytes, /*large=*/false);

  transport::Flow::Config fc;
  fc.id = records_[rec].id;
  fc.size_bytes = bytes;
  fc.cc.kind = transport::CcConfig::Kind::Reno;  // small flows use TCP
  auto flow = std::make_unique<transport::Flow>(sched_for(src_idx), sched_for(dst_idx), src, dst,
                                                fc);
  flow->set_on_complete(
      [this, rec, done = std::move(on_done)]() mutable { finish_record(rec, done); });
  flow->start();
  smalls_.push_back(std::move(flow));
}

void FlowManager::for_each_partial_large(
    const std::function<void(const FlowRecord&, std::int64_t)>& fn) const {
  for (const auto& s : singles_) {
    if (!records_[s.record].completed) fn(records_[s.record], s.flow->delivered_bytes());
  }
  for (const auto& m : multis_) {
    if (!records_[m.record].completed) fn(records_[m.record], m.conn->delivered_bytes());
  }
}

void FlowManager::for_each_active_large_sender(
    const std::function<void(const FlowRecord&, const transport::TcpSender&)>& fn) const {
  for (const auto& s : singles_) {
    if (!records_[s.record].completed) fn(records_[s.record], s.flow->sender());
  }
  for (const auto& m : multis_) {
    if (records_[m.record].completed || records_[m.record].aborted) continue;
    for (int i = 0; i < m.conn->n_subflows(); ++i) {
      if (!m.conn->subflow_dead(i)) fn(records_[m.record], m.conn->subflow_sender(i));
    }
  }
}

std::uint64_t FlowManager::subflow_rehomes() const {
  std::uint64_t n = 0;
  for (const auto& m : multis_) n += static_cast<std::uint64_t>(m.conn->rehomes());
  return n;
}

void FlowManager::for_each_active_connection(
    const std::function<void(mptcp::MptcpConnection&)>& fn) const {
  for (const auto& m : multis_) {
    if (!records_[m.record].completed && !records_[m.record].aborted) fn(*m.conn);
  }
}

}  // namespace xmp::workload
