#include "workload/flow_manager.hpp"

#include <cassert>
#include <string>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::workload {

namespace {

void note_flow_done(const FlowRecord& rec, bool aborted) {
  auto* tr = obs::tracer();
  auto* m = obs::metrics();
  if (tr == nullptr && m == nullptr) return;
  if (aborted) {
    if (tr != nullptr) tr->flow_abort(rec.finish, rec.id);
    return;
  }
  const double fct_us = (rec.finish - rec.start).us();
  const double goodput_mbps =
      fct_us > 0.0 ? static_cast<double>(rec.bytes) * 8.0 / fct_us : 0.0;
  if (tr != nullptr) tr->flow_done(rec.finish, rec.id, fct_us, goodput_mbps);
  if (m != nullptr) m->fct_us.add(static_cast<std::uint64_t>(fct_us));
}

}  // namespace

sim::Time FlowManager::now_time() const {
  sim::Scheduler* cs = sim::current_scheduler();
  return cs != nullptr ? cs->now() : sched_.now();
}

std::size_t FlowManager::new_record(int src_idx, int dst_idx, std::int64_t bytes, bool large) {
  FlowRecord rec;
  rec.id = next_id_++;
  rec.src_host = src_idx;
  rec.dst_host = dst_idx;
  rec.bytes = bytes;
  rec.large = large;
  rec.start = now_time();
  records_.push_back(rec);
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->flow_start(rec.start, rec.id, bytes, large);
    tr->name_flow(rec.id, "flow " + std::to_string(rec.id) + " h" +
                              std::to_string(src_idx) + "->h" + std::to_string(dst_idx) +
                              (large ? " (large)" : " (small)"));
  }
  return records_.size() - 1;
}

void FlowManager::finish_record(std::size_t idx, std::function<void()>& on_done) {
  FlowRecord& rec = records_[idx];
  rec.finish = now_time();
  rec.completed = true;
  if (rec.large) {
    [[maybe_unused]] const std::size_t prev =
        active_large_.fetch_sub(1, std::memory_order_relaxed);
    assert(prev > 0);
  }
  note_flow_done(rec, /*aborted=*/false);
  if (on_done) on_done();
}

transport::Flow::Config FlowManager::single_config(net::FlowId id, std::int64_t bytes,
                                                   bool large) const {
  transport::Flow::Config fc;
  fc.id = id;
  fc.size_bytes = bytes;
  fc.cc.kind = large && spec_.kind == SchemeSpec::Kind::Dctcp ? transport::CcConfig::Kind::Dctcp
                                                              : transport::CcConfig::Kind::Reno;
  return fc;
}

mptcp::MptcpConnection::Config FlowManager::multi_config(net::FlowId id,
                                                         std::int64_t bytes) const {
  mptcp::MptcpConnection::Config mc;
  mc.id = id;
  mc.size_bytes = bytes;
  mc.n_subflows = spec_.subflows;
  mc.bos.beta = spec_.beta;
  mc.dead_after_rtos = spec_.dead_after_rtos;
  mc.max_rehomes = spec_.max_rehomes;
  switch (spec_.kind) {
    case SchemeSpec::Kind::Xmp:
      mc.coupling = mptcp::Coupling::Xmp;
      break;
    case SchemeSpec::Kind::Lia:
      mc.coupling = mptcp::Coupling::Lia;
      break;
    case SchemeSpec::Kind::Olia:
      mc.coupling = mptcp::Coupling::Olia;
      break;
    default:
      assert(false && "unexpected multipath scheme");
  }
  return mc;
}

void FlowManager::start_large_flow(net::Host& src, net::Host& dst, int src_idx, int dst_idx,
                                   std::int64_t bytes, std::function<void()> on_done,
                                   CallbackTag tag, double initial_cwnd) {
  const std::size_t rec = new_record(src_idx, dst_idx, bytes, /*large=*/true);
  tags_.push_back(tag);
  const net::FlowId id = records_[rec].id;
  active_large_.fetch_add(1, std::memory_order_relaxed);

  if (!spec_.multipath()) {
    auto fc = single_config(id, bytes, /*large=*/true);
    if (initial_cwnd > 0.0) {
      fc.tune_sender = [initial_cwnd](transport::SenderConfig& sc) {
        sc.initial_cwnd = initial_cwnd;
      };
    }
    auto flow =
        std::make_unique<transport::Flow>(sched_for(src_idx), sched_for(dst_idx), src, dst, fc);
    flow->set_on_complete(
        [this, rec, done = std::move(on_done)]() mutable { finish_record(rec, done); });
    flow->start();
    singles_.push_back(LargeSingle{rec, std::move(flow)});
    return;
  }

  auto mc = multi_config(id, bytes);
  if (initial_cwnd > 0.0) {
    mc.tune_sender = [initial_cwnd](transport::SenderConfig& sc) {
      sc.initial_cwnd = initial_cwnd;
    };
  }
  auto conn = std::make_unique<mptcp::MptcpConnection>(sched_for(src_idx), sched_for(dst_idx),
                                                       src, dst, mc);
  const std::size_t slot = multis_.size();  // stable: multis_ never shrinks
  multis_.push_back(LargeMulti{rec, std::move(conn), std::move(on_done)});
  mptcp::MptcpConnection& c = *multis_[slot].conn;
  c.set_on_complete([this, slot] { finish_multi(slot, /*aborted=*/false); });
  c.set_on_abort([this, slot] { finish_multi(slot, /*aborted=*/true); });
  c.start();
}

void FlowManager::finish_multi(std::size_t slot, bool aborted) {
  LargeMulti& m = multis_.at(slot);
  FlowRecord& rec = records_[m.record];
  rec.finish = now_time();
  rec.completed = !aborted;
  rec.aborted = aborted;
  [[maybe_unused]] const std::size_t prev =
      active_large_.fetch_sub(1, std::memory_order_relaxed);
  assert(prev > 0);
  if (aborted) aborted_large_.fetch_add(1, std::memory_order_relaxed);
  note_flow_done(rec, aborted);
  // The caller's completion hook fires for aborts too: an aborted transfer
  // is *over* (workload round-robins must not wait for it forever).
  if (m.on_done) m.on_done();
}

void FlowManager::start_small_flow(net::Host& src, net::Host& dst, int src_idx, int dst_idx,
                                   std::int64_t bytes, std::function<void()> on_done,
                                   CallbackTag tag) {
  const std::size_t rec = new_record(src_idx, dst_idx, bytes, /*large=*/false);
  tags_.push_back(tag);

  // Small flows always use plain TCP.
  auto flow = std::make_unique<transport::Flow>(
      sched_for(src_idx), sched_for(dst_idx), src, dst,
      single_config(records_[rec].id, bytes, /*large=*/false));
  flow->set_on_complete(
      [this, rec, done = std::move(on_done)]() mutable { finish_record(rec, done); });
  flow->start();
  smalls_.push_back(Small{rec, std::move(flow)});
}

void FlowManager::save_state(core::ckpt::Saver& s) const {
  s.u64(next_id_);
  s.u64(active_large_.load(std::memory_order_relaxed));
  s.u64(aborted_large_.load(std::memory_order_relaxed));
  assert(tags_.size() == records_.size());
  s.u64(records_.size());
  // Within each kind, object order follows record creation order, so the
  // walk below visits singles_/multis_/smalls_ exactly once each, in order.
  std::size_t si = 0;
  std::size_t mi = 0;
  std::size_t smi = 0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const FlowRecord& r = records_[i];
    s.u32(r.id);
    s.i64(r.src_host);
    s.i64(r.dst_host);
    s.i64(r.bytes);
    s.b(r.large);
    s.time(r.start);
    s.time(r.finish);
    s.b(r.completed);
    s.b(r.aborted);
    const CallbackTag& t = tags_[i];
    s.u8(t.kind);
    s.i64(t.a);
    s.i64(t.b);
    s.i64(t.c);
    if (r.large && spec_.multipath()) {
      multis_[mi++].conn->save_state(s);
    } else if (r.large) {
      singles_[si++].flow->save_state(s);
    } else {
      smalls_[smi++].flow->save_state(s);
    }
  }
}

void FlowManager::restore_state(core::ckpt::Loader& l, const std::function<net::Host&(int)>& host,
                                const BindFn& bind) {
  next_id_ = static_cast<net::FlowId>(l.u64());
  active_large_.store(l.u64(), std::memory_order_relaxed);
  aborted_large_.store(l.u64(), std::memory_order_relaxed);
  const std::uint64_t n = l.u64();
  for (std::uint64_t i = 0; i < n && l.ok(); ++i) {
    FlowRecord rec;
    rec.id = l.u32();
    rec.src_host = static_cast<int>(l.i64());
    rec.dst_host = static_cast<int>(l.i64());
    rec.bytes = l.i64();
    rec.large = l.b();
    rec.start = l.time();
    rec.finish = l.time();
    rec.completed = l.b();
    rec.aborted = l.b();
    CallbackTag tag;
    tag.kind = l.u8();
    tag.a = l.i64();
    tag.b = l.i64();
    tag.c = l.i64();
    records_.push_back(rec);
    tags_.push_back(tag);
    const std::size_t ridx = records_.size() - 1;
    std::function<void()> done = bind && tag.kind != CallbackTag::kNone ? bind(tag) : nullptr;

    if (rec.large && spec_.multipath()) {
      auto conn = std::make_unique<mptcp::MptcpConnection>(
          sched_for(rec.src_host), sched_for(rec.dst_host), host(rec.src_host),
          host(rec.dst_host), multi_config(rec.id, rec.bytes));
      const std::size_t slot = multis_.size();
      multis_.push_back(LargeMulti{ridx, std::move(conn), std::move(done)});
      mptcp::MptcpConnection& c = *multis_[slot].conn;
      c.set_on_complete([this, slot] { finish_multi(slot, /*aborted=*/false); });
      c.set_on_abort([this, slot] { finish_multi(slot, /*aborted=*/true); });
      c.restore_state(l);
    } else {
      auto flow = std::make_unique<transport::Flow>(
          sched_for(rec.src_host), sched_for(rec.dst_host), host(rec.src_host),
          host(rec.dst_host), single_config(rec.id, rec.bytes, rec.large));
      flow->set_on_complete(
          [this, ridx, d = std::move(done)]() mutable { finish_record(ridx, d); });
      flow->restore_state(l);
      if (rec.large) {
        singles_.push_back(LargeSingle{ridx, std::move(flow)});
      } else {
        smalls_.push_back(Small{ridx, std::move(flow)});
      }
    }
  }
}

void FlowManager::for_each_partial_large(
    const std::function<void(const FlowRecord&, std::int64_t)>& fn) const {
  for (const auto& s : singles_) {
    if (!records_[s.record].completed) fn(records_[s.record], s.flow->delivered_bytes());
  }
  for (const auto& m : multis_) {
    if (!records_[m.record].completed) fn(records_[m.record], m.conn->delivered_bytes());
  }
}

void FlowManager::for_each_active_large_sender(
    const std::function<void(const FlowRecord&, const transport::TcpSender&)>& fn) const {
  for (const auto& s : singles_) {
    if (!records_[s.record].completed) fn(records_[s.record], s.flow->sender());
  }
  for (const auto& m : multis_) {
    if (records_[m.record].completed || records_[m.record].aborted) continue;
    for (int i = 0; i < m.conn->n_subflows(); ++i) {
      if (!m.conn->subflow_dead(i)) fn(records_[m.record], m.conn->subflow_sender(i));
    }
  }
}

std::uint64_t FlowManager::subflow_rehomes() const {
  std::uint64_t n = 0;
  for (const auto& m : multis_) n += static_cast<std::uint64_t>(m.conn->rehomes());
  return n;
}

void FlowManager::for_each_active_connection(
    const std::function<void(mptcp::MptcpConnection&)>& fn) const {
  for (const auto& m : multis_) {
    if (!records_[m.record].completed && !records_[m.record].aborted) fn(*m.conn);
  }
}

}  // namespace xmp::workload
