#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/empirical.hpp"

namespace xmp::workload {

/// A parsed workload file — the scenario-as-data format behind
/// `xmpsim run --workload=FILE` (DESIGN.md §13). One directive per line,
/// `#` comments, blank lines ignored:
///
///   nodes N                  required; hosts [0, N) send and receive
///   cdf PATH                 flow-size CDF, relative to the workload file
///   load X                   default offered load per sender, (0, 1.2]
///   span any|inter-rack      destination constraint for sampled flows
///   mice-threshold BYTES     flows below this are plain-TCP mice
///   flow SRC DST BYTES START_S   one explicit flow (may repeat)
///
/// Either a `cdf` (open-loop Poisson traffic) or at least one `flow` line
/// (deterministic trace) must be present; both may be combined. Every
/// hostile input — truncated lines, NaN, negative sizes, unknown hosts,
/// unknown directives — is rejected with a one-line `file:line: message`
/// diagnostic, never silently patched.
struct WorkloadSpec {
  std::string path;      ///< source file (diagnostics; empty for streams)
  std::string name;      ///< file stem, used to label outputs
  int nodes = 0;
  WorkloadSpan span = WorkloadSpan::Any;
  EmpiricalCdf cdf;      ///< empty when the file is trace-only
  bool has_cdf = false;
  double default_load = 0.0;  ///< 0 = file sets no load (CLI must)
  std::int64_t mice_threshold = 100'000;
  std::vector<ExplicitFlow> flows;  ///< sorted by (start, file order)

  /// Parse a workload file (resolving a relative `cdf` path against the
  /// file's directory). Returns false + one-line diagnostic on any error.
  static bool parse_file(const std::string& path, WorkloadSpec& out, std::string* error);
  /// Parse from a stream; `name` labels diagnostics, `dir` anchors relative
  /// cdf paths ("" = cwd).
  static bool parse(std::istream& in, const std::string& name, const std::string& dir,
                    WorkloadSpec& out, std::string* error);

  /// Stable hash of the parsed content (nodes, span, thresholds, CDF points,
  /// explicit flows). Mixed into the checkpoint config fingerprint so a
  /// snapshot taken under one workload cannot restore under another, even
  /// if both files share a path.
  [[nodiscard]] std::uint64_t content_hash() const;
};

}  // namespace xmp::workload
