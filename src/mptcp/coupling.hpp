#pragma once

#include "sim/time.hpp"

namespace xmp::transport {
class TcpSender;
}

namespace xmp::mptcp {

/// View of an MPTCP connection's aggregate state that a per-subflow
/// congestion controller needs for coupling (paper §2.2). Implemented by
/// MptcpConnection; the aggregates are over subflows that have at least
/// one RTT sample.
class CouplingContext {
 public:
  virtual ~CouplingContext() = default;

  /// Σ_r cwnd_r / srtt_r in segments per second ("total_rate" in Alg. 1).
  [[nodiscard]] virtual double total_rate() const = 0;

  /// min_r srtt_r ("min_rtt" in Alg. 1); Time::zero() if no samples yet.
  [[nodiscard]] virtual sim::Time min_srtt() const = 0;

  /// Σ_r cwnd_r, in segments (LIA).
  [[nodiscard]] virtual double total_cwnd() const = 0;

  /// RFC 6356 aggressiveness factor:
  ///   alpha = cwnd_total * max_r(cwnd_r / rtt_r^2) / (Σ_r cwnd_r / rtt_r)^2
  [[nodiscard]] virtual double lia_alpha() const = 0;

  /// Number of established subflows (OLIA).
  [[nodiscard]] virtual int subflow_count() const = 0;

  /// OLIA's per-path aggressiveness term α_r for the subflow driven by
  /// `self` (Khalili et al., CoNEXT 2012): positive on "collected" paths
  /// (best quality but small window), negative on maximum-window paths
  /// when collected paths exist, zero otherwise.
  [[nodiscard]] virtual double olia_alpha(const transport::TcpSender& self) const = 0;
};

}  // namespace xmp::mptcp
