#include "mptcp/xmp_cc.hpp"

#include "transport/sender.hpp"

namespace xmp::mptcp {

double XmpCc::gain(transport::TcpSender& s) {
  const double total_rate = ctx_.total_rate();
  const sim::Time min_rtt = ctx_.min_srtt();
  if (total_rate <= 0.0 || min_rtt <= sim::Time::zero()) {
    return 1.0;  // no measurements yet: behave like standalone BOS (δ = 1)
  }
  // Algorithm 1: delta[r] <- snd_cwnd[r] / (total_rate * min_rtt).
  return s.cwnd() / (total_rate * min_rtt.sec());
}

}  // namespace xmp::mptcp
