#include "mptcp/lia_cc.hpp"

#include <algorithm>

#include "transport/sender.hpp"

namespace xmp::mptcp {

void LiaCc::increase_ca(transport::TcpSender& s, std::int64_t newly_acked) {
  const double total = ctx_.total_cwnd();
  if (total <= 0.0) {
    RenoCc::increase_ca(s, newly_acked);
    return;
  }
  const double alpha = ctx_.lia_alpha();
  const double per_segment = std::min(alpha / total, 1.0 / s.cwnd());
  s.set_cwnd(s.cwnd() + per_segment * static_cast<double>(newly_acked));
}

}  // namespace xmp::mptcp
