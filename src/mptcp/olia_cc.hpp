#pragma once

#include "mptcp/coupling.hpp"
#include "transport/cc/reno.hpp"

namespace xmp::mptcp {

/// OLIA — Opportunistic Linked Increases (Khalili et al., CoNEXT 2012).
///
/// The paper cites OLIA ([19]) as the fix for LIA's non-Pareto-optimality
/// and names adopting it as future work; we implement it as an extension
/// baseline. Congestion avoidance on path r increases cwnd_r per acked
/// segment by
///   cwnd_r/rtt_r^2 / (Σ_p cwnd_p/rtt_p)^2  +  α_r / cwnd_r
/// where α_r rebalances between the best-quality paths and the largest-
/// window paths. Loss response is Reno halving. Like LIA it is loss-driven
/// (not ECN-capable).
class OliaCc final : public transport::RenoCc {
 public:
  explicit OliaCc(const CouplingContext& ctx) : ctx_{ctx} {}

  [[nodiscard]] const char* name() const override { return "olia"; }

  void on_loss(transport::TcpSender& s, bool timeout) override;
  void on_ack(transport::TcpSender& s, const transport::AckEvent& ev) override;

  /// Path quality estimate ℓ_r²: segments sent between the two most recent
  /// losses (OLIA's inter-loss interval proxy).
  [[nodiscard]] double quality() const;

  void save_state(core::ckpt::Saver& s) const override {
    RenoCc::save_state(s);
    s.f64(since_last_loss_);
    s.f64(between_last_two_);
  }
  void restore_state(core::ckpt::Loader& l) override {
    RenoCc::restore_state(l);
    since_last_loss_ = l.f64();
    between_last_two_ = l.f64();
  }

 protected:
  void increase_ca(transport::TcpSender& s, std::int64_t newly_acked) override;

 private:
  const CouplingContext& ctx_;
  // Segments acked since the last loss / between the previous two losses.
  double since_last_loss_ = 0;
  double between_last_two_ = 0;
};

}  // namespace xmp::mptcp
