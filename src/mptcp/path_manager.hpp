#pragma once

#include <cstdint>
#include <vector>

#include "net/types.hpp"

namespace xmp::mptcp {

/// Path allocation for a connection's subflows: when failure detection
/// declares a subflow dead, the manager can re-home it — hand it a fresh
/// path tag disjoint from every live sibling's — instead of letting the
/// connection lose the pipe for good.
///
/// Purely deterministic: candidate tags come from mix64 over (flow,
/// subflow, attempt), probed until one avoids the in-use set, so a given
/// failure history always re-homes onto the same paths. The budget bounds
/// how often a connection may chase new paths before giving up (a subflow
/// that keeps dying is on a network with nothing left to offer).
class PathManager {
 public:
  struct Config {
    /// Total re-homes allowed across the connection's lifetime; 0 disables
    /// re-homing entirely (dead subflows are killed, the pre-existing
    /// behavior and the default).
    int max_rehomes = 0;
  };

  explicit PathManager(const Config& cfg) : cfg_{cfg} {}

  /// True if the budget still allows a re-home.
  [[nodiscard]] bool can_rehome() const { return used_ < cfg_.max_rehomes; }
  /// Re-homes performed so far.
  [[nodiscard]] int rehomes_used() const { return used_; }
  /// Checkpoint restore: reinstate a previously consumed budget count.
  void restore_rehomes_used(int n) { used_ = n; }

  /// Consume one budget unit and pick a tag for `subflow` distinct from
  /// `old_tag` and from every tag in `in_use`. Returns false (and picks
  /// nothing) when the budget is spent.
  bool pick_new_tag(net::FlowId flow, int subflow, std::uint16_t old_tag,
                    const std::vector<std::uint16_t>& in_use, std::uint16_t& out);

 private:
  Config cfg_;
  int used_ = 0;
};

}  // namespace xmp::mptcp
