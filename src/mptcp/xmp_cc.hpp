#pragma once

#include "mptcp/coupling.hpp"
#include "transport/cc/bos.hpp"

namespace xmp::mptcp {

/// XMP subflow controller: BOS mechanics with the TraSh gain (paper §2.2).
///
/// Once per round the increase gain is re-derived from Eq. 9:
///   δ_r = cwnd_r / (total_rate · min_rtt)
/// which realizes the Congestion Equality Principle — subflows on paths
/// more congested than the flow-wide expectation get a smaller δ (shedding
/// traffic), less congested ones get a larger δ (absorbing it), while the
/// flow as a whole stays as aggressive as one BOS flow on its best path.
class XmpCc final : public transport::BosCc {
 public:
  XmpCc(const CouplingContext& ctx, const Params& params)
      : BosCc{params}, ctx_{ctx} {}

  [[nodiscard]] const char* name() const override { return "xmp"; }

 protected:
  double gain(transport::TcpSender& s) override;

 private:
  const CouplingContext& ctx_;
};

}  // namespace xmp::mptcp
