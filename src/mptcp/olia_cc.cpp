#include "mptcp/olia_cc.hpp"

#include <algorithm>

#include "transport/sender.hpp"

namespace xmp::mptcp {

void OliaCc::on_ack(transport::TcpSender& s, const transport::AckEvent& ev) {
  if (!ev.dupack) since_last_loss_ += static_cast<double>(ev.newly_acked);
  RenoCc::on_ack(s, ev);
}

void OliaCc::on_loss(transport::TcpSender& s, bool timeout) {
  between_last_two_ = since_last_loss_;
  since_last_loss_ = 0;
  RenoCc::on_loss(s, timeout);
}

double OliaCc::quality() const {
  const double l = std::max(since_last_loss_, between_last_two_);
  return l * l;
}

void OliaCc::increase_ca(transport::TcpSender& s, std::int64_t newly_acked) {
  const double total_rate = ctx_.total_rate();  // Σ cwnd_p / rtt_p
  if (total_rate <= 0.0 || !s.has_rtt_sample()) {
    RenoCc::increase_ca(s, newly_acked);
    return;
  }
  const double rtt = s.srtt().sec();
  const double coupled = (s.cwnd() / (rtt * rtt)) / (total_rate * total_rate);
  const double alpha = ctx_.olia_alpha(s);
  const double per_segment = coupled + alpha / s.cwnd();
  const double next = s.cwnd() + per_segment * static_cast<double>(newly_acked);
  s.set_cwnd(std::max(next, s.config().min_cwnd));
}

}  // namespace xmp::mptcp
