#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mptcp/coupling.hpp"
#include "mptcp/path_manager.hpp"
#include "net/network.hpp"
#include "transport/cc/bos.hpp"
#include "transport/receiver.hpp"
#include "transport/segment_source.hpp"
#include "transport/sender.hpp"

namespace xmp::mptcp {

/// Which coupled controller drives the subflows.
enum class Coupling {
  Xmp,            ///< BOS + TraSh (the paper's scheme)
  Lia,            ///< RFC 6356 Linked Increases (baseline)
  Olia,           ///< Opportunistic LIA (paper's future-work reference [19])
  UncoupledBos,   ///< each subflow runs standalone BOS (fairness strawman)
  UncoupledReno,  ///< each subflow runs plain Reno (fairness strawman)
};

/// An MPTCP connection: one logical transfer striped over several subflows,
/// each on its own network path.
///
/// Data is a shared connection-level pool of segments; subflows pull from
/// it as their windows open, so scheduling is implicit "fill the fastest
/// pipe first". Buffers are unlimited (as configured throughout the paper),
/// so connection-level reassembly never throttles subflows.
///
/// Opportunistic reinjection (as in the MPTCP v0.86 stack the paper builds
/// on): when a subflow's retransmission timer fires, the data outstanding
/// on it is duplicated back into the pool so sibling subflows can carry it
/// — a stalled path delays only its own duplicates, not the transfer.
class MptcpConnection : private transport::SenderObserver {
 public:
  struct Config {
    net::FlowId id = 0;
    std::int64_t size_bytes = 0;
    int n_subflows = 2;
    Coupling coupling = Coupling::Xmp;
    transport::BosCc::Params bos;  ///< β (and fallback δ) for XMP subflows
    /// Per-subflow establishment offsets relative to start(); missing
    /// entries mean "immediately" (paper Fig. 6 staggers these).
    std::vector<sim::Time> subflow_start_offsets;
    /// Path selector per subflow index; default hashes (flow id, index).
    std::function<std::uint16_t(int)> path_tag_fn;
    /// Optional extra tuning applied to every subflow's sender config.
    std::function<void(transport::SenderConfig&)> tune_sender;
    /// Declare a subflow dead after this many consecutive RTOs without
    /// forward progress: its unacked data is reinjected onto the surviving
    /// subflows and it is excluded from the coupling aggregates. 0 disables
    /// failover (the pre-fault-injection behavior, and the default so that
    /// fault-free runs are bit-identical to older builds).
    int dead_after_rtos = 0;
    /// Before killing a detected-dead subflow, re-home it onto a fresh path
    /// tag up to this many times across the connection (PathManager). 0
    /// keeps the kill-only behavior (and byte-identical old runs).
    int max_rehomes = 0;
  };

  MptcpConnection(sim::Scheduler& sched, net::Host& src, net::Host& dst, const Config& cfg);

  /// Sharded variant: senders, source pool and start-offset timers live on
  /// the source host's shard scheduler; receivers (delayed-ACK timers) on
  /// the destination's. With the same scheduler twice this is exactly the
  /// serial constructor.
  MptcpConnection(sim::Scheduler& src_sched, sim::Scheduler& dst_sched, net::Host& src,
                  net::Host& dst, const Config& cfg);

  ~MptcpConnection();

  MptcpConnection(const MptcpConnection&) = delete;
  MptcpConnection& operator=(const MptcpConnection&) = delete;

  /// Begin the transfer; subflows start at their configured offsets.
  void start();

  void set_on_complete(std::function<void()> fn) { on_complete_ = std::move(fn); }
  /// Fired once if every subflow dies before the transfer completes.
  void set_on_abort(std::function<void()> fn) { on_abort_ = std::move(fn); }

  [[nodiscard]] bool complete() const { return finished_; }
  /// True once all subflows are dead with data still undelivered.
  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] sim::Time start_time() const { return start_time_; }
  [[nodiscard]] sim::Time finish_time() const { return finish_time_; }
  [[nodiscard]] double goodput_bps() const;
  [[nodiscard]] std::int64_t size_bytes() const { return cfg_.size_bytes; }
  /// Bytes delivered so far (== size_bytes() once complete).
  [[nodiscard]] std::int64_t delivered_bytes() const;
  [[nodiscard]] net::FlowId id() const { return cfg_.id; }

  [[nodiscard]] int n_subflows() const { return static_cast<int>(subflows_.size()); }
  [[nodiscard]] transport::TcpSender& subflow_sender(int i) { return *subflows_.at(i).sender; }
  [[nodiscard]] const transport::TcpSender& subflow_sender(int i) const {
    return *subflows_.at(i).sender;
  }
  [[nodiscard]] transport::TcpReceiver& subflow_receiver(int i) {
    return *subflows_.at(i).receiver;
  }
  [[nodiscard]] const transport::TcpReceiver& subflow_receiver(int i) const {
    return *subflows_.at(i).receiver;
  }
  [[nodiscard]] bool subflow_dead(int i) const { return subflows_.at(i).dead; }
  /// Subflows not (yet) declared dead, whether or not they have started.
  [[nodiscard]] int live_subflows() const;
  /// Subflow re-homes performed so far (<= Config::max_rehomes).
  [[nodiscard]] int rehomes() const { return path_mgr_.rehomes_used(); }

  [[nodiscard]] const CouplingContext& context() const;

  /// Checkpoint connection progress, the shared source pool, the re-home
  /// budget, every subflow's sender/receiver, and pending start-offset
  /// timers. The completion/abort callbacks are not saved — the owner
  /// re-binds them after restore.
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  struct Subflow {
    std::unique_ptr<transport::TcpSender> sender;
    std::unique_ptr<transport::TcpReceiver> receiver;
    bool started = false;
    bool dead = false;  ///< declared failed; excluded from coupling aggregates
  };

  class Context;  // CouplingContext over this connection's subflows

  // transport::SenderObserver
  void on_sender_delivered(const transport::TcpSender& s, std::int64_t segments) override;
  void on_sender_timeout(const transport::TcpSender& s) override;

  void start_subflow(int idx);
  /// Move a stalled subflow onto a fresh path; false when the re-home
  /// budget is spent (caller falls back to kill_subflow).
  bool try_rehome(int idx);
  void kill_subflow(int idx);
  void on_source_done();
  [[nodiscard]] std::unique_ptr<transport::CongestionControl> make_subflow_cc();

  sim::Scheduler& sched_;
  net::Host& src_;
  net::Host& dst_;
  Config cfg_;
  PathManager path_mgr_;
  std::unique_ptr<Context> ctx_;
  std::unique_ptr<transport::FixedSource> source_;
  std::vector<Subflow> subflows_;
  /// Pending start-offset timers, one slot per subflow (invalid once fired);
  /// tracked so checkpoints can re-arm staggered establishment.
  std::vector<sim::EventId> start_timers_;
  sim::Time start_time_ = sim::Time::zero();
  sim::Time finish_time_ = sim::Time::zero();
  bool started_ = false;
  bool finished_ = false;
  bool aborted_ = false;
  std::function<void()> on_complete_;
  std::function<void()> on_abort_;
};

}  // namespace xmp::mptcp
