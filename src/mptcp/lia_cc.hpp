#pragma once

#include "mptcp/coupling.hpp"
#include "transport/cc/reno.hpp"

namespace xmp::mptcp {

/// LIA — MPTCP Linked Increases (Wischik et al. NSDI'11, RFC 6356), the
/// paper's multipath baseline.
///
/// Congestion avoidance on subflow r increases cwnd_r per acked segment by
///   min( alpha / cwnd_total , 1 / cwnd_r )
/// with alpha coupling the subflows; decrease is standard Reno halving.
/// LIA is loss-driven (not ECN-capable), so in the paper's setting it
/// fills drop-tail buffers and frequently pays the 200 ms RTOmin.
class LiaCc final : public transport::RenoCc {
 public:
  explicit LiaCc(const CouplingContext& ctx) : ctx_{ctx} {}

  [[nodiscard]] const char* name() const override { return "lia"; }

 protected:
  void increase_ca(transport::TcpSender& s, std::int64_t newly_acked) override;

 private:
  const CouplingContext& ctx_;
};

}  // namespace xmp::mptcp
