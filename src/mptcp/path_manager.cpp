#include "mptcp/path_manager.hpp"

#include <algorithm>

namespace xmp::mptcp {

bool PathManager::pick_new_tag(net::FlowId flow, int subflow, std::uint16_t old_tag,
                               const std::vector<std::uint16_t>& in_use, std::uint16_t& out) {
  if (!can_rehome()) return false;
  ++used_;
  const std::uint64_t base = (static_cast<std::uint64_t>(flow) << 24) ^
                             (static_cast<std::uint64_t>(subflow) << 16) ^
                             (static_cast<std::uint64_t>(used_) << 40) ^ old_tag;
  // Tag spaces in play are tiny (up-port groups take tag % n or a hash of
  // the tag), so collisions with a sibling's tag are likely on the first
  // probe; a few salted re-probes find a disjoint one. If every probe
  // collides (more subflows than paths), the last candidate stands — a
  // shared path still beats a dead one.
  std::uint16_t tag = old_tag;
  for (std::uint64_t probe = 0; probe < 16; ++probe) {
    tag = static_cast<std::uint16_t>(net::mix64(base ^ (probe * 0x9e3779b97f4a7c15ULL)));
    if (tag != old_tag && std::find(in_use.begin(), in_use.end(), tag) == in_use.end()) break;
  }
  out = tag;
  return true;
}

}  // namespace xmp::mptcp
