#include "mptcp/connection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mptcp/lia_cc.hpp"
#include "mptcp/olia_cc.hpp"
#include "mptcp/xmp_cc.hpp"
#include "net/types.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "transport/cc/reno.hpp"
#include "transport/flow.hpp"

namespace xmp::mptcp {

/// Aggregates over the connection's *started* subflows with RTT samples.
class MptcpConnection::Context final : public CouplingContext {
 public:
  explicit Context(const MptcpConnection& conn) : conn_{conn} {}

  double total_rate() const override {
    double sum = 0.0;
    for_each_measured([&](const transport::TcpSender& s) { sum += s.instant_rate(); });
    return sum;
  }

  sim::Time min_srtt() const override {
    sim::Time best = sim::Time::infinity();
    for_each_measured([&](const transport::TcpSender& s) {
      if (s.srtt() < best) best = s.srtt();
    });
    return best == sim::Time::infinity() ? sim::Time::zero() : best;
  }

  double total_cwnd() const override {
    double sum = 0.0;
    for (const auto& sf : conn_.subflows_) {
      if (sf.started && !sf.dead) sum += sf.sender->cwnd();
    }
    return sum;
  }

  double lia_alpha() const override {
    // RFC 6356: alpha = cwnd_total * max_r(cwnd_r/rtt_r^2) / (Σ_r cwnd_r/rtt_r)^2
    double max_term = 0.0;
    double denom = 0.0;
    int measured = 0;
    for_each_measured([&](const transport::TcpSender& s) {
      const double rtt = s.srtt().sec();
      max_term = std::max(max_term, s.cwnd() / (rtt * rtt));
      denom += s.cwnd() / rtt;
      ++measured;
    });
    if (measured == 0 || denom <= 0.0) return 1.0;
    return total_cwnd() * max_term / (denom * denom);
  }

  int subflow_count() const override {
    int n = 0;
    for (const auto& sf : conn_.subflows_) {
      if (sf.started && !sf.dead) ++n;
    }
    return n;
  }

  double olia_alpha(const transport::TcpSender& self) const override {
    // Partition paths into B (best quality ℓ²/rtt) and M (largest cwnd);
    // "collected" = B \ M. (Khalili et al. §3.)
    constexpr double kEps = 1e-9;
    double best_quality = -1.0;
    double max_cwnd = -1.0;
    for_each_measured([&](const transport::TcpSender& s) {
      const auto* olia = dynamic_cast<const OliaCc*>(&s.cc());
      if (olia == nullptr) return;
      best_quality = std::max(best_quality, olia->quality() / s.srtt().sec());
      max_cwnd = std::max(max_cwnd, s.cwnd());
    });
    if (best_quality < 0.0) return 0.0;

    int n_collected = 0;
    int n_max = 0;
    bool self_collected = false;
    bool self_max = false;
    for_each_measured([&](const transport::TcpSender& s) {
      const auto* olia = dynamic_cast<const OliaCc*>(&s.cc());
      if (olia == nullptr) return;
      const bool in_best = olia->quality() / s.srtt().sec() >= best_quality - kEps;
      const bool in_max = s.cwnd() >= max_cwnd - kEps;
      const bool collected = in_best && !in_max;
      if (collected) ++n_collected;
      if (in_max) ++n_max;
      if (&s == &self) {
        self_collected = collected;
        self_max = in_max;
      }
    });
    const int n = std::max(subflow_count(), 1);
    if (self_collected && n_collected > 0) return 1.0 / (n * n_collected);
    if (self_max && n_collected > 0 && n_max > 0) return -1.0 / (n * n_max);
    return 0.0;
  }

 private:
  /// Dead subflows are excluded so their stale cwnd/rate never pollutes
  /// the TraSh y_s / T_s aggregates (a dead path must not attract shifted
  /// traffic nor depress the survivors' δ).
  template <typename Fn>
  void for_each_measured(Fn&& fn) const {
    for (const auto& sf : conn_.subflows_) {
      if (sf.started && !sf.dead && sf.sender->has_rtt_sample()) fn(*sf.sender);
    }
  }

  const MptcpConnection& conn_;
};

MptcpConnection::MptcpConnection(sim::Scheduler& sched, net::Host& src, net::Host& dst,
                                 const Config& cfg)
    : MptcpConnection{sched, sched, src, dst, cfg} {}

MptcpConnection::MptcpConnection(sim::Scheduler& src_sched, sim::Scheduler& dst_sched,
                                 net::Host& src, net::Host& dst, const Config& cfg)
    : sched_{src_sched},
      src_{src},
      dst_{dst},
      cfg_{cfg},
      path_mgr_{PathManager::Config{cfg.max_rehomes}} {
  assert(cfg_.n_subflows >= 1);
  ctx_ = std::make_unique<Context>(*this);
  source_ = std::make_unique<transport::FixedSource>(net::segments_for_bytes(cfg_.size_bytes),
                                                     [this] { on_source_done(); });

  for (int i = 0; i < cfg_.n_subflows; ++i) {
    const std::uint16_t tag =
        cfg_.path_tag_fn
            ? cfg_.path_tag_fn(i)
            : static_cast<std::uint16_t>(
                  net::mix64((static_cast<std::uint64_t>(cfg_.id) << 16) ^ static_cast<std::uint64_t>(i)));

    const bool ecn_scheme =
        cfg_.coupling == Coupling::Xmp || cfg_.coupling == Coupling::UncoupledBos;

    transport::SenderConfig sc;
    sc.ecn_capable = ecn_scheme;
    sc.min_cwnd = ecn_scheme ? 2.0 : 1.0;
    if (cfg_.tune_sender) cfg_.tune_sender(sc);

    transport::ReceiverConfig rc;
    rc.codec = ecn_scheme ? transport::EcnCodec::XmpCounter : transport::EcnCodec::None;

    Subflow sf;
    sf.receiver = std::make_unique<transport::TcpReceiver>(
        dst_sched, dst_, src_.id(), cfg_.id, static_cast<std::uint16_t>(i), tag, rc);
    sf.sender = std::make_unique<transport::TcpSender>(
        src_sched, src_, dst_.id(), cfg_.id, static_cast<std::uint16_t>(i), tag, *source_,
        make_subflow_cc(), sc);
    // Reinjection needs siblings; death detection works even solo.
    if (cfg_.n_subflows > 1 || cfg_.dead_after_rtos > 0) sf.sender->set_observer(this);
    subflows_.push_back(std::move(sf));
  }
  start_timers_.assign(subflows_.size(), sim::kInvalidEventId);
}

MptcpConnection::~MptcpConnection() = default;

const CouplingContext& MptcpConnection::context() const { return *ctx_; }

std::unique_ptr<transport::CongestionControl> MptcpConnection::make_subflow_cc() {
  switch (cfg_.coupling) {
    case Coupling::Xmp:
      return std::make_unique<XmpCc>(*ctx_, cfg_.bos);
    case Coupling::Lia:
      return std::make_unique<LiaCc>(*ctx_);
    case Coupling::Olia:
      return std::make_unique<OliaCc>(*ctx_);
    case Coupling::UncoupledBos:
      return std::make_unique<transport::BosCc>(cfg_.bos);
    case Coupling::UncoupledReno:
      return std::make_unique<transport::RenoCc>();
  }
  return nullptr;  // unreachable
}

void MptcpConnection::start() {
  if (started_) return;
  started_ = true;
  start_time_ = sched_.now();
  for (int i = 0; i < static_cast<int>(subflows_.size()); ++i) {
    sim::Time offset = sim::Time::zero();
    if (i < static_cast<int>(cfg_.subflow_start_offsets.size())) {
      offset = cfg_.subflow_start_offsets[i];
    }
    if (offset == sim::Time::zero()) {
      start_subflow(i);
    } else {
      start_timers_[static_cast<std::size_t>(i)] = sched_.schedule_in(offset, [this, i] {
        start_timers_[static_cast<std::size_t>(i)] = sim::kInvalidEventId;
        start_subflow(i);
      });
    }
  }
}

void MptcpConnection::start_subflow(int idx) {
  if (finished_ || aborted_) return;  // transfer already completed or torn down
  Subflow& sf = subflows_.at(idx);
  if (sf.started || sf.dead) return;
  sf.started = true;
  sf.sender->start();
}

void MptcpConnection::on_sender_delivered(const transport::TcpSender& /*s*/,
                                          std::int64_t /*segments*/) {}

void MptcpConnection::on_sender_timeout(const transport::TcpSender& s) {
  if (finished_ || aborted_) return;
  // Opportunistic reinjection: on the *first* timeout of a stall, put the
  // stalled subflow's outstanding segments back into the pool and wake the
  // siblings. Further backoffs of the same stall must not refund again;
  // go-back-N blocks new grants for the stalled subflow, so this single
  // refund covers everything it will ever have outstanding.
  if (subflows_.size() > 1 && s.rto_backoff() == 1) {
    const std::int64_t stuck = s.inflight();
    if (stuck > 0) {
      source_->refund(stuck);
      if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
        tr->reinjection(sched_.now(), cfg_.id, static_cast<std::uint8_t>(s.subflow()), stuck);
      }
      if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->reinjections.inc();
      for (auto& sf : subflows_) {
        if (sf.started && !sf.dead && sf.sender.get() != &s) sf.sender->pump();
      }
    }
  }
  if (cfg_.dead_after_rtos > 0 && s.rto_backoff() >= cfg_.dead_after_rtos) {
    for (int i = 0; i < static_cast<int>(subflows_.size()); ++i) {
      if (subflows_[i].sender.get() == &s) {
        // Re-homing beats killing while the budget lasts: the path died,
        // not the endpoint, so move the subflow to a surviving path.
        if (!try_rehome(i)) kill_subflow(i);
        break;
      }
    }
  }
}

bool MptcpConnection::try_rehome(int idx) {
  Subflow& sf = subflows_.at(idx);
  if (sf.dead || finished_ || aborted_) return false;
  std::vector<std::uint16_t> in_use;
  for (int i = 0; i < static_cast<int>(subflows_.size()); ++i) {
    if (i != idx && !subflows_[i].dead) in_use.push_back(subflows_[i].sender->path_tag());
  }
  std::uint16_t tag = 0;
  if (!path_mgr_.pick_new_tag(cfg_.id, idx, sf.sender->path_tag(), in_use, tag)) return false;
  // Acks must follow the data onto the new path, or the reverse direction
  // keeps blackholing.
  sf.receiver->set_path_tag(tag);
  sf.sender->rehome(tag);
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->path_rehome(sched_.now(), cfg_.id, static_cast<std::uint8_t>(idx), tag,
                    path_mgr_.rehomes_used());
  }
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->path_rehomes.inc();
  return true;
}

void MptcpConnection::kill_subflow(int idx) {
  Subflow& sf = subflows_.at(idx);
  if (sf.dead || finished_ || aborted_) return;
  sf.dead = true;
  sf.sender->halt();
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->subflow_dead(sched_.now(), cfg_.id, static_cast<std::uint8_t>(idx), live_subflows());
  }
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->subflow_deaths.inc();
  if (live_subflows() == 0) {
    // Nothing left to carry the data: tear the connection down instead of
    // retrying into the void forever.
    aborted_ = true;
    finish_time_ = sched_.now();
    if (on_abort_) on_abort_();
    return;
  }
  // Wake the survivors: the first-backoff refund already returned this
  // subflow's unacked segments to the pool, they just need takers.
  for (auto& other : subflows_) {
    if (other.started && !other.dead) other.sender->pump();
  }
}

int MptcpConnection::live_subflows() const {
  int n = 0;
  for (const auto& sf : subflows_) {
    if (!sf.dead) ++n;
  }
  return n;
}

void MptcpConnection::on_source_done() {
  if (aborted_) return;
  finished_ = true;
  finish_time_ = sched_.now();
  if (on_complete_) on_complete_();
}

void MptcpConnection::save_state(core::ckpt::Saver& s) const {
  s.b(started_);
  s.b(finished_);
  s.b(aborted_);
  s.time(start_time_);
  s.time(finish_time_);
  s.i64(path_mgr_.rehomes_used());
  source_->save_state(s);
  s.u64(subflows_.size());
  for (std::size_t i = 0; i < subflows_.size(); ++i) {
    const Subflow& sf = subflows_[i];
    s.b(sf.started);
    s.b(sf.dead);
    const bool timer = start_timers_[i] != sim::kInvalidEventId;
    s.b(timer);
    if (timer) {
      sim::Scheduler::PendingKey k;
      [[maybe_unused]] const bool live = sched_.key_of(start_timers_[i], k);
      assert(live && "subflow start timer id stale");
      s.i64(k.t_ns);
      s.u64(k.seq);
    }
    sf.sender->save_state(s);
    sf.receiver->save_state(s);
  }
}

void MptcpConnection::restore_state(core::ckpt::Loader& l) {
  started_ = l.b();
  finished_ = l.b();
  aborted_ = l.b();
  start_time_ = l.time();
  finish_time_ = l.time();
  path_mgr_.restore_rehomes_used(static_cast<int>(l.i64()));
  source_->restore_state(l);
  const std::uint64_t n = l.u64();
  assert(!l.ok() || n == subflows_.size());
  for (std::size_t i = 0; i < subflows_.size() && i < n && l.ok(); ++i) {
    Subflow& sf = subflows_[i];
    sf.started = l.b();
    sf.dead = l.b();
    if (l.b()) {
      const std::int64_t t_ns = l.i64();
      const std::uint64_t seq = l.u64();
      const int idx = static_cast<int>(i);
      start_timers_[i] = sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this, idx] {
        start_timers_[static_cast<std::size_t>(idx)] = sim::kInvalidEventId;
        start_subflow(idx);
      });
    }
    sf.sender->restore_state(l);
    sf.receiver->restore_state(l);
  }
}

std::int64_t MptcpConnection::delivered_bytes() const {
  if (finished_) return cfg_.size_bytes;
  const std::int64_t bytes = source_->delivered() * net::kMssBytes;
  return bytes < cfg_.size_bytes ? bytes : cfg_.size_bytes;
}

double MptcpConnection::goodput_bps() const {
  if (!finished_ || finish_time_ <= start_time_) return 0.0;
  return static_cast<double>(cfg_.size_bytes) * 8.0 / (finish_time_ - start_time_).sec();
}

}  // namespace xmp::mptcp
