#include "faults/fault_plan.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>

namespace xmp::faults {

LossModel LossModel::bernoulli(double p, double corrupt) {
  LossModel m;
  m.kind = Kind::Bernoulli;
  m.p_loss = p;
  m.p_corrupt = corrupt;
  return m;
}

LossModel LossModel::gilbert(double p_gb, double p_bg, double loss_bad, double loss_good,
                             double corrupt) {
  LossModel m;
  m.kind = Kind::GilbertElliott;
  m.p_good_bad = p_gb;
  m.p_bad_good = p_bg;
  m.loss_bad = loss_bad;
  m.loss_good = loss_good;
  m.p_corrupt = corrupt;
  return m;
}

const char* FaultEvent::kind_name(Kind k) {
  switch (k) {
    case Kind::LinkDown:
      return "link-down";
    case Kind::LinkUp:
      return "link-up";
    case Kind::SwitchDown:
      return "switch-down";
    case Kind::SwitchUp:
      return "switch-up";
    case Kind::HostDown:
      return "host-down";
    case Kind::HostUp:
      return "host-up";
    case Kind::LossStart:
      return "loss-start";
    case Kind::LossStop:
      return "loss-stop";
    case Kind::EcnBlackholeStart:
      return "blackhole-start";
    case Kind::EcnBlackholeStop:
      return "blackhole-stop";
    case Kind::DegradeStart:
      return "degrade-start";
    case Kind::DegradeStop:
      return "degrade-stop";
    case Kind::DelayStart:
      return "delay-start";
    case Kind::DelayStop:
      return "delay-stop";
    case Kind::ReorderStart:
      return "reorder-start";
    case Kind::ReorderStop:
      return "reorder-stop";
    case Kind::DuplicateStart:
      return "duplicate-start";
    case Kind::DuplicateStop:
      return "duplicate-stop";
    case Kind::EcnOvermarkStart:
      return "overmark-start";
    case Kind::EcnOvermarkStop:
      return "overmark-stop";
  }
  return "?";
}

namespace {

FaultEvent make(FaultEvent::Kind k, sim::Time at, int target) {
  FaultEvent e;
  e.kind = k;
  e.at = at;
  e.target = target;
  return e;
}

}  // namespace

FaultPlan& FaultPlan::link_down(net::LinkId link, sim::Time at) {
  events.push_back(make(FaultEvent::Kind::LinkDown, at, static_cast<int>(link)));
  return *this;
}

FaultPlan& FaultPlan::link_up(net::LinkId link, sim::Time at) {
  events.push_back(make(FaultEvent::Kind::LinkUp, at, static_cast<int>(link)));
  return *this;
}

FaultPlan& FaultPlan::link_flap(net::LinkId link, sim::Time at, sim::Time period, int count) {
  for (int i = 0; i < count; ++i) {
    const sim::Time t0 = at + period * i;
    link_down(link, t0);
    link_up(link, t0 + period / 2);
  }
  return *this;
}

FaultPlan& FaultPlan::switch_down(int sw, sim::Time at) {
  events.push_back(make(FaultEvent::Kind::SwitchDown, at, sw));
  return *this;
}

FaultPlan& FaultPlan::switch_up(int sw, sim::Time at) {
  events.push_back(make(FaultEvent::Kind::SwitchUp, at, sw));
  return *this;
}

FaultPlan& FaultPlan::host_down(int host, sim::Time at) {
  events.push_back(make(FaultEvent::Kind::HostDown, at, host));
  return *this;
}

FaultPlan& FaultPlan::host_up(int host, sim::Time at) {
  events.push_back(make(FaultEvent::Kind::HostUp, at, host));
  return *this;
}

FaultPlan& FaultPlan::loss(net::LinkId link, const LossModel& m, sim::Time at, sim::Time until) {
  FaultEvent e = make(FaultEvent::Kind::LossStart, at, static_cast<int>(link));
  e.loss = m;
  events.push_back(e);
  if (until < sim::Time::infinity()) {
    events.push_back(make(FaultEvent::Kind::LossStop, until, static_cast<int>(link)));
  }
  return *this;
}

FaultPlan& FaultPlan::blackhole(int sw, sim::Time at, sim::Time until) {
  events.push_back(make(FaultEvent::Kind::EcnBlackholeStart, at, sw));
  if (until < sim::Time::infinity()) {
    events.push_back(make(FaultEvent::Kind::EcnBlackholeStop, until, sw));
  }
  return *this;
}

namespace {

/// Shared start/stop expansion for the five gray-failure effects.
void push_gray(std::vector<FaultEvent>& events, FaultEvent::Kind start, FaultEvent::Kind stop,
               net::LinkId link, const GrayModel& m, sim::Time at, sim::Time until) {
  FaultEvent e = make(start, at, static_cast<int>(link));
  e.gray = m;
  events.push_back(e);
  if (until < sim::Time::infinity()) {
    events.push_back(make(stop, until, static_cast<int>(link)));
  }
}

}  // namespace

FaultPlan& FaultPlan::degrade(net::LinkId link, double factor, sim::Time at, sim::Time until) {
  GrayModel m;
  m.factor = factor;
  push_gray(events, FaultEvent::Kind::DegradeStart, FaultEvent::Kind::DegradeStop, link, m, at,
            until);
  return *this;
}

FaultPlan& FaultPlan::delay(net::LinkId link, sim::Time dt, sim::Time jitter, sim::Time at,
                            sim::Time until) {
  GrayModel m;
  m.delay = dt;
  m.jitter = jitter;
  push_gray(events, FaultEvent::Kind::DelayStart, FaultEvent::Kind::DelayStop, link, m, at,
            until);
  return *this;
}

FaultPlan& FaultPlan::reorder(net::LinkId link, double p, sim::Time hold, sim::Time at,
                              sim::Time until) {
  GrayModel m;
  m.p = p;
  m.hold = hold;
  push_gray(events, FaultEvent::Kind::ReorderStart, FaultEvent::Kind::ReorderStop, link, m, at,
            until);
  return *this;
}

FaultPlan& FaultPlan::duplicate(net::LinkId link, double p, sim::Time at, sim::Time until) {
  GrayModel m;
  m.p = p;
  push_gray(events, FaultEvent::Kind::DuplicateStart, FaultEvent::Kind::DuplicateStop, link, m,
            at, until);
  return *this;
}

FaultPlan& FaultPlan::overmark(net::LinkId link, double p, sim::Time at, sim::Time until) {
  GrayModel m;
  m.p = p;
  push_gray(events, FaultEvent::Kind::EcnOvermarkStart, FaultEvent::Kind::EcnOvermarkStop, link,
            m, at, until);
  return *this;
}

namespace {

/// One `verb,k=v,...` statement split into verb + key/value fields.
struct Statement {
  std::string verb;
  std::map<std::string, std::string> kv;
};

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

bool split_statement(const std::string& text, Statement& st, std::string* error) {
  std::size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string field =
        trim(comma == std::string::npos ? text.substr(pos) : text.substr(pos, comma - pos));
    if (!field.empty()) {
      if (first) {
        st.verb = field;
        first = false;
      } else {
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
          if (error != nullptr) *error = "expected key=value, got '" + field + "'";
          return false;
        }
        st.kv[trim(field.substr(0, eq))] = trim(field.substr(eq + 1));
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (st.verb.empty()) {
    if (error != nullptr) *error = "empty statement";
    return false;
  }
  return true;
}

bool get_double(const Statement& st, const std::string& key, double& out) {
  const auto it = st.kv.find(key);
  if (it == st.kv.end()) return false;
  out = std::atof(it->second.c_str());
  return true;
}

bool get_int(const Statement& st, const std::string& key, int& out) {
  const auto it = st.kv.find(key);
  if (it == st.kv.end()) return false;
  out = std::atoi(it->second.c_str());
  return true;
}

/// Resolve the statement's target into (down kind, up kind, index).
bool resolve_target(const Statement& st, FaultEvent::Kind& down, FaultEvent::Kind& up,
                    int& target, std::string* error) {
  int idx = 0;
  if (get_int(st, "link", idx)) {
    down = FaultEvent::Kind::LinkDown;
    up = FaultEvent::Kind::LinkUp;
  } else if (get_int(st, "switch", idx)) {
    down = FaultEvent::Kind::SwitchDown;
    up = FaultEvent::Kind::SwitchUp;
  } else if (get_int(st, "host", idx)) {
    down = FaultEvent::Kind::HostDown;
    up = FaultEvent::Kind::HostUp;
  } else {
    if (error != nullptr) *error = "'" + st.verb + "' needs link=/switch=/host=";
    return false;
  }
  target = idx;
  return true;
}

}  // namespace

bool FaultPlan::parse(const std::string& text, FaultPlan& out, std::string* error) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::string raw =
        trim(semi == std::string::npos ? text.substr(pos) : text.substr(pos, semi - pos));
    pos = semi == std::string::npos ? text.size() + 1 : semi + 1;
    if (raw.empty()) continue;

    Statement st;
    if (!split_statement(raw, st, error)) return false;

    double at_s = 0.0;
    if (!get_double(st, "at", at_s) || at_s < 0.0) {
      if (error != nullptr) *error = "'" + st.verb + "' needs at=<seconds >= 0>";
      return false;
    }
    const sim::Time at = sim::Time::seconds(at_s);
    double until_s = -1.0;
    const bool has_until = get_double(st, "until", until_s);
    if (has_until && until_s <= at_s) {
      if (error != nullptr) *error = "'" + st.verb + "': until= must be > at=";
      return false;
    }
    const sim::Time until = has_until ? sim::Time::seconds(until_s) : sim::Time::infinity();

    if (st.verb == "down" || st.verb == "up") {
      FaultEvent::Kind down_kind{};
      FaultEvent::Kind up_kind{};
      int target = 0;
      if (!resolve_target(st, down_kind, up_kind, target, error)) return false;
      plan.events.push_back(make(st.verb == "down" ? down_kind : up_kind, at, target));
      if (st.verb == "down" && has_until) {
        plan.events.push_back(make(up_kind, until, target));
      }
    } else if (st.verb == "flap") {
      int link = 0;
      int count = 0;
      double period_s = 0.0;
      if (!get_int(st, "link", link) || !get_double(st, "period", period_s) ||
          !get_int(st, "count", count) || period_s <= 0.0 || count <= 0) {
        if (error != nullptr) *error = "flap needs link=, period=>0, count=>0";
        return false;
      }
      plan.link_flap(static_cast<net::LinkId>(link), at, sim::Time::seconds(period_s), count);
    } else if (st.verb == "loss" || st.verb == "gilbert") {
      int link = 0;
      if (!get_int(st, "link", link)) {
        if (error != nullptr) *error = st.verb + " needs link=";
        return false;
      }
      LossModel m;
      double corrupt = 0.0;
      get_double(st, "corrupt", corrupt);
      if (st.verb == "loss") {
        double p = 0.0;
        get_double(st, "p", p);
        if (p < 0.0 || p > 1.0 || corrupt < 0.0 || corrupt > 1.0 || p + corrupt == 0.0) {
          if (error != nullptr) *error = "loss needs p= and/or corrupt= in (0, 1]";
          return false;
        }
        m = LossModel::bernoulli(p, corrupt);
      } else {
        double pgb = 0.0;
        double pbg = 0.1;
        double pbad = 0.5;
        double pgood = 0.0;
        if (!get_double(st, "pgb", pgb) || pgb <= 0.0) {
          if (error != nullptr) *error = "gilbert needs pgb=>0";
          return false;
        }
        get_double(st, "pbg", pbg);
        get_double(st, "pbad", pbad);
        get_double(st, "pgood", pgood);
        m = LossModel::gilbert(pgb, pbg, pbad, pgood, corrupt);
      }
      plan.loss(static_cast<net::LinkId>(link), m, at, until);
    } else if (st.verb == "blackhole") {
      int sw = 0;
      if (!get_int(st, "switch", sw)) {
        if (error != nullptr) *error = "blackhole needs switch=";
        return false;
      }
      plan.blackhole(sw, at, until);
    } else if (st.verb == "degrade") {
      int link = 0;
      double factor = 0.0;
      if (!get_int(st, "link", link) || !get_double(st, "factor", factor) || factor <= 0.0 ||
          factor >= 1.0) {
        if (error != nullptr) *error = "degrade needs link= and factor= in (0, 1)";
        return false;
      }
      plan.degrade(static_cast<net::LinkId>(link), factor, at, until);
    } else if (st.verb == "delay") {
      int link = 0;
      double dt_s = 0.0;
      double jitter_s = 0.0;
      if (!get_int(st, "link", link) || !get_double(st, "dt", dt_s) || dt_s <= 0.0) {
        if (error != nullptr) *error = "delay needs link= and dt=<seconds > 0>";
        return false;
      }
      get_double(st, "jitter", jitter_s);
      if (jitter_s < 0.0) {
        if (error != nullptr) *error = "delay: jitter= must be >= 0";
        return false;
      }
      plan.delay(static_cast<net::LinkId>(link), sim::Time::seconds(dt_s),
                 sim::Time::seconds(jitter_s), at, until);
    } else if (st.verb == "reorder") {
      int link = 0;
      double p = 0.0;
      double dt_s = 0.0;
      if (!get_int(st, "link", link) || !get_double(st, "p", p) || p <= 0.0 || p > 1.0 ||
          !get_double(st, "dt", dt_s) || dt_s <= 0.0) {
        if (error != nullptr) *error = "reorder needs link=, p= in (0, 1] and dt=<seconds > 0>";
        return false;
      }
      plan.reorder(static_cast<net::LinkId>(link), p, sim::Time::seconds(dt_s), at, until);
    } else if (st.verb == "duplicate" || st.verb == "overmark") {
      int link = 0;
      double p = 0.0;
      if (!get_int(st, "link", link) || !get_double(st, "p", p) || p <= 0.0 || p > 1.0) {
        if (error != nullptr) *error = st.verb + " needs link= and p= in (0, 1]";
        return false;
      }
      if (st.verb == "duplicate") {
        plan.duplicate(static_cast<net::LinkId>(link), p, at, until);
      } else {
        plan.overmark(static_cast<net::LinkId>(link), p, at, until);
      }
    } else {
      if (error != nullptr) *error = "unknown fault verb '" + st.verb + "'";
      return false;
    }
  }
  out = std::move(plan);
  return true;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[160];
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += "; ";
    switch (e.kind) {
      case FaultEvent::Kind::LossStart:
        if (e.loss.kind == LossModel::Kind::Bernoulli) {
          std::snprintf(buf, sizeof buf, "loss,link=%d,at=%g,p=%g,corrupt=%g", e.target,
                        e.at.sec(), e.loss.p_loss, e.loss.p_corrupt);
        } else {
          std::snprintf(buf, sizeof buf,
                        "gilbert,link=%d,at=%g,pgb=%g,pbg=%g,pbad=%g,pgood=%g,corrupt=%g",
                        e.target, e.at.sec(), e.loss.p_good_bad, e.loss.p_bad_good,
                        e.loss.loss_bad, e.loss.loss_good, e.loss.p_corrupt);
        }
        break;
      case FaultEvent::Kind::DegradeStart:
        std::snprintf(buf, sizeof buf, "degrade,link=%d,at=%g,factor=%g", e.target, e.at.sec(),
                      e.gray.factor);
        break;
      case FaultEvent::Kind::DelayStart:
        std::snprintf(buf, sizeof buf, "delay,link=%d,at=%g,dt=%g,jitter=%g", e.target,
                      e.at.sec(), e.gray.delay.sec(), e.gray.jitter.sec());
        break;
      case FaultEvent::Kind::ReorderStart:
        std::snprintf(buf, sizeof buf, "reorder,link=%d,at=%g,p=%g,dt=%g", e.target, e.at.sec(),
                      e.gray.p, e.gray.hold.sec());
        break;
      case FaultEvent::Kind::DuplicateStart:
        std::snprintf(buf, sizeof buf, "duplicate,link=%d,at=%g,p=%g", e.target, e.at.sec(),
                      e.gray.p);
        break;
      case FaultEvent::Kind::EcnOvermarkStart:
        std::snprintf(buf, sizeof buf, "overmark,link=%d,at=%g,p=%g", e.target, e.at.sec(),
                      e.gray.p);
        break;
      default:
        std::snprintf(buf, sizeof buf, "%s,target=%d,at=%g", FaultEvent::kind_name(e.kind),
                      e.target, e.at.sec());
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace xmp::faults
