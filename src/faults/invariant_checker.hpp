#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mptcp/connection.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "transport/receiver.hpp"
#include "transport/sender.hpp"

namespace xmp::faults {

/// One detected invariant violation, with enough context to debug it.
struct Violation {
  sim::Time at = sim::Time::zero();
  std::string what;
};

/// Opt-in runtime invariant probe: periodically sweeps the watched objects
/// and checks properties that must hold in *any* simulation state, faulty
/// or not. Zero-cost when not constructed; when armed it costs one probe
/// event per interval, touching only public accessors (no behavior change).
///
/// Checks per sweep:
///  - per-link packet conservation (duplicated = gray-failure clones,
///    held = gray-failure hold buffer):
///      offered + duplicated == delivered + drops.total() + queued
///                              + live_in_flight + held
///  - queue sanity: length <= capacity; empty in packets => empty in bytes
///  - sender sanity: cwnd finite, within [1 MSS, cwnd_max]; snd_una <= snd_nxt
///  - receiver progress is monotone (rcv_nxt never moves backwards — the
///    "no duplicate in-order delivery" property: a segment is delivered to
///    the application at most once)
///  - connection accounting: delivered_bytes monotone and <= size;
///    complete() => delivered_bytes == size; aborted() and complete() are
///    mutually exclusive
class InvariantChecker {
 public:
  struct Config {
    sim::Time interval = sim::Time::milliseconds(1);
    /// Upper bound on any sender cwnd, in segments (proxy for rwnd — the
    /// sim models unlimited receive buffers, so this guards against
    /// runaway growth / NaN poisoning rather than flow control).
    double cwnd_max = 1e7;
    /// Stop recording after this many violations (the first few are the
    /// informative ones; a broken run would otherwise OOM the log).
    std::size_t max_violations = 64;
  };

  InvariantChecker(sim::Scheduler& sched, Config cfg);
  explicit InvariantChecker(sim::Scheduler& sched) : InvariantChecker(sched, Config{}) {}
  ~InvariantChecker();

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Sweep every link of the network each probe tick.
  void watch_network(net::Network& net);
  /// Sweep the connection, all its subflow senders and receivers.
  void watch_connection(mptcp::MptcpConnection& conn);
  /// Sweep a standalone sender / receiver pair.
  void watch_sender(const transport::TcpSender& s);
  void watch_receiver(const transport::TcpReceiver& r);
  /// Register a callback that visits dynamically created senders (e.g.
  /// FlowManager's active flows) — called once per sweep.
  using SenderVisitor = std::function<void(const transport::TcpSender&)>;
  void add_sender_enumerator(std::function<void(const SenderVisitor&)> enumerate);
  /// Same, for dynamically created MPTCP connections.
  using ConnectionVisitor = std::function<void(const mptcp::MptcpConnection&)>;
  void add_connection_enumerator(std::function<void(const ConnectionVisitor&)> enumerate);

  /// Begin periodic sweeps (idempotent).
  void start();
  void stop();

  /// Run one sweep immediately (also called by the periodic timer).
  void check_now();

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] bool clean() const { return violations_.empty(); }
  /// Total individual checks evaluated (for "the probe actually ran").
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }

  /// One line per violation, for test failure messages.
  [[nodiscard]] std::string report() const;

 private:
  void tick();
  void fail(const std::string& what);
  void check_link(const net::Link& l);
  void check_sender(const transport::TcpSender& s);
  void check_receiver(const transport::TcpReceiver& r);
  void check_connection(const mptcp::MptcpConnection& c);

  sim::Scheduler& sched_;
  Config cfg_;
  std::vector<net::Network*> networks_;
  std::vector<mptcp::MptcpConnection*> connections_;
  std::vector<const transport::TcpSender*> senders_;
  std::vector<const transport::TcpReceiver*> receivers_;
  std::vector<std::function<void(const SenderVisitor&)>> enumerators_;
  std::vector<std::function<void(const ConnectionVisitor&)>> conn_enumerators_;

  /// Last observed progress marks, for monotonicity checks.
  std::unordered_map<const void*, std::int64_t> last_progress_;

  sim::EventId timer_ = sim::kInvalidEventId;
  std::vector<Violation> violations_;
  std::uint64_t checks_run_ = 0;
};

}  // namespace xmp::faults
