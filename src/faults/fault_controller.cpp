#include "faults/fault_controller.hpp"

#include <algorithm>
#include <cassert>

#include "net/types.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::faults {

LossProcess::LossProcess(const LossModel& model, std::uint64_t seed, net::LinkId link)
    : model_{model}, rng_{net::mix64(seed ^ (0x9e3779b97f4a7c15ULL + link))} {}

net::Link::FaultVerdict LossProcess::on_send(const net::Packet& /*p*/) {
  double p_loss = 0.0;
  if (model_.kind == LossModel::Kind::Bernoulli) {
    p_loss = model_.p_loss;
  } else {
    // Advance the two-state channel first, then draw the loss verdict from
    // the state the packet observes.
    if (bad_state_) {
      if (rng_.uniform01() < model_.p_bad_good) bad_state_ = false;
    } else {
      if (rng_.uniform01() < model_.p_good_bad) bad_state_ = true;
    }
    p_loss = bad_state_ ? model_.loss_bad : model_.loss_good;
  }
  if (p_loss > 0.0 && rng_.uniform01() < p_loss) return net::Link::FaultAction::Drop;
  if (model_.p_corrupt > 0.0 && rng_.uniform01() < model_.p_corrupt) {
    return net::Link::FaultAction::Corrupt;
  }
  return net::Link::FaultAction::Pass;
}

namespace {

// One salt per gray effect: distinct substreams per (seed, link, effect),
// so effects never share draws and toggling one cannot shift another.
constexpr std::array<std::uint64_t, GrayProcess::kEffects> kGraySalts = {
    0xd1342543de82ef95ULL,  // Delay
    0xaf251af3b0f025b5ULL,  // Reorder
    0x9e6c63d0a9de2b13ULL,  // Duplicate
    0xb7e151628aed2a6bULL,  // Overmark
};

}  // namespace

GrayProcess::GrayProcess(std::uint64_t seed, net::LinkId link) {
  for (int i = 0; i < kEffects; ++i) {
    slots_[static_cast<std::size_t>(i)].rng =
        sim::Rng{net::mix64(seed ^ (kGraySalts[static_cast<std::size_t>(i)] + link))};
  }
}

void GrayProcess::start(Effect e, const GrayModel& m) {
  Slot& sl = slot(e);
  sl.on = true;
  sl.model = m;
}

void GrayProcess::stop(Effect e) {
  Slot& sl = slot(e);
  sl.on = false;
  sl.model = GrayModel{};
}

bool GrayProcess::any_active() const {
  for (const Slot& sl : slots_) {
    if (sl.on) return true;
  }
  return false;
}

void GrayProcess::impair(net::Link::FaultVerdict& v) {
  Slot& d = slot(Effect::Delay);
  if (d.on) {
    std::int64_t extra_ns = d.model.delay.ns();
    if (d.model.jitter > sim::Time::zero()) {
      extra_ns += static_cast<std::int64_t>(d.rng.uniform01() *
                                            static_cast<double>(d.model.jitter.ns()));
    }
    v.delay = v.delay + sim::Time::nanoseconds(extra_ns);
  }
  Slot& r = slot(Effect::Reorder);
  if (r.on && r.rng.uniform01() < r.model.p) {
    // Hold this packet back; later sends overtake it through the queue.
    v.delay = v.delay + r.model.hold;
    v.reorder = true;
  }
  Slot& u = slot(Effect::Duplicate);
  if (u.on && u.rng.uniform01() < u.model.p) v.duplicate = true;
  Slot& o = slot(Effect::Overmark);
  if (o.on && o.rng.uniform01() < o.model.p) v.overmark = true;
}

void GrayProcess::save_state(core::ckpt::Saver& s) const {
  for (const Slot& sl : slots_) {
    s.b(sl.on);
    s.f64(sl.model.factor);
    s.time(sl.model.delay);
    s.time(sl.model.jitter);
    s.f64(sl.model.p);
    s.time(sl.model.hold);
    for (const std::uint64_t w : sl.rng.state()) s.u64(w);
  }
}

void GrayProcess::restore_state(core::ckpt::Loader& l) {
  for (Slot& sl : slots_) {
    sl.on = l.b();
    sl.model.factor = l.f64();
    sl.model.delay = l.time();
    sl.model.jitter = l.time();
    sl.model.p = l.f64();
    sl.model.hold = l.time();
    std::array<std::uint64_t, 4> st{};
    for (auto& w : st) w = l.u64();
    sl.rng.restore_state(st);
  }
}

FaultController::FaultController(sim::Scheduler& sched, net::Network& net, FaultPlan plan,
                                 Config cfg)
    : sched_{sched}, net_{net}, plan_{std::move(plan)}, cfg_{cfg} {}

void FaultController::arm() {
  event_ids_.assign(plan_.events.size(), sim::kInvalidEventId);
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    // Capture the index, not the event: the plan vector is stable for the
    // controller's lifetime and the capture stays pointer-sized.
    event_ids_[i] = sched_.schedule_at(plan_.events[i].at, [this, i] {
      event_ids_[i] = sim::kInvalidEventId;
      apply(plan_.events[i]);
    });
  }
}

void FaultController::apply(const FaultEvent& e) {
  ++events_applied_;
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->fault(sched_.now(), static_cast<std::uint16_t>(e.kind),
              static_cast<std::uint32_t>(e.target));
  }
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->fault_events.inc();
  switch (e.kind) {
    case FaultEvent::Kind::LinkDown:
      net_.link(static_cast<net::LinkId>(e.target)).set_down(true);
      break;
    case FaultEvent::Kind::LinkUp:
      net_.link(static_cast<net::LinkId>(e.target)).set_down(false);
      break;
    case FaultEvent::Kind::SwitchDown:
      set_switch_down(e.target, true);
      break;
    case FaultEvent::Kind::SwitchUp:
      set_switch_down(e.target, false);
      break;
    case FaultEvent::Kind::HostDown:
      set_host_down(e.target, true);
      break;
    case FaultEvent::Kind::HostUp:
      set_host_down(e.target, false);
      break;
    case FaultEvent::Kind::LossStart:
      start_loss(static_cast<net::LinkId>(e.target), e.loss);
      break;
    case FaultEvent::Kind::LossStop:
      stop_loss(static_cast<net::LinkId>(e.target));
      break;
    case FaultEvent::Kind::EcnBlackholeStart:
      set_blackhole(e.target, true);
      break;
    case FaultEvent::Kind::EcnBlackholeStop:
      set_blackhole(e.target, false);
      break;
    case FaultEvent::Kind::DegradeStart:
      net_.link(static_cast<net::LinkId>(e.target)).set_degrade(e.gray.factor);
      break;
    case FaultEvent::Kind::DegradeStop:
      net_.link(static_cast<net::LinkId>(e.target)).set_degrade(1.0);
      break;
    case FaultEvent::Kind::DelayStart:
      start_gray(static_cast<net::LinkId>(e.target), GrayProcess::Effect::Delay, e.gray);
      break;
    case FaultEvent::Kind::DelayStop:
      stop_gray(static_cast<net::LinkId>(e.target), GrayProcess::Effect::Delay);
      break;
    case FaultEvent::Kind::ReorderStart:
      start_gray(static_cast<net::LinkId>(e.target), GrayProcess::Effect::Reorder, e.gray);
      break;
    case FaultEvent::Kind::ReorderStop:
      stop_gray(static_cast<net::LinkId>(e.target), GrayProcess::Effect::Reorder);
      break;
    case FaultEvent::Kind::DuplicateStart:
      start_gray(static_cast<net::LinkId>(e.target), GrayProcess::Effect::Duplicate, e.gray);
      break;
    case FaultEvent::Kind::DuplicateStop:
      stop_gray(static_cast<net::LinkId>(e.target), GrayProcess::Effect::Duplicate);
      break;
    case FaultEvent::Kind::EcnOvermarkStart:
      start_gray(static_cast<net::LinkId>(e.target), GrayProcess::Effect::Overmark, e.gray);
      break;
    case FaultEvent::Kind::EcnOvermarkStop:
      stop_gray(static_cast<net::LinkId>(e.target), GrayProcess::Effect::Overmark);
      break;
  }
}

void FaultController::set_switch_down(int idx, bool down) {
  net::Switch& sw = *net_.switches().at(static_cast<std::size_t>(idx));
  for (std::size_t p = 0; p < sw.port_count(); ++p) {
    sw.port(p).set_down(down);
  }
  for (net::Link* l : net_.links_into(sw)) {
    l->set_down(down);
  }
}

void FaultController::set_host_down(int idx, bool down) {
  net::Host& h = net_.host(static_cast<std::size_t>(idx));
  if (h.uplink() != nullptr) h.uplink()->set_down(down);
  for (net::Link* l : net_.links_into(h)) {
    l->set_down(down);
  }
}

void FaultController::set_blackhole(int idx, bool blackholed) {
  net::Switch& sw = *net_.switches().at(static_cast<std::size_t>(idx));
  for (std::size_t p = 0; p < sw.port_count(); ++p) {
    sw.port(p).queue().set_marking_enabled(!blackholed);
  }
}

FaultController::Channel& FaultController::ensure_channel(net::LinkId link) {
  auto it = channels_.find(link);
  if (it == channels_.end()) {
    it = channels_.emplace(link, std::make_unique<Channel>()).first;
    net_.link(link).set_fault_hook(it->second.get());
  }
  return *it->second;
}

void FaultController::prune_channel(net::LinkId link) {
  const auto it = channels_.find(link);
  if (it == channels_.end()) return;
  if (it->second->loss == nullptr && it->second->gray == nullptr) {
    net_.link(link).set_fault_hook(nullptr);
    channels_.erase(it);
  }
}

void FaultController::start_loss(net::LinkId link, const LossModel& m) {
  // Replaces (and frees) any prior loss model; gray effects are untouched.
  ensure_channel(link).loss = std::make_unique<LossProcess>(m, cfg_.seed, link);
}

void FaultController::stop_loss(net::LinkId link) {
  const auto it = channels_.find(link);
  if (it == channels_.end()) return;
  it->second->loss.reset();
  prune_channel(link);
}

void FaultController::start_gray(net::LinkId link, GrayProcess::Effect effect,
                                 const GrayModel& m) {
  Channel& ch = ensure_channel(link);
  if (ch.gray == nullptr) ch.gray = std::make_unique<GrayProcess>(cfg_.seed, link);
  ch.gray->start(effect, m);
}

void FaultController::stop_gray(net::LinkId link, GrayProcess::Effect effect) {
  const auto it = channels_.find(link);
  if (it == channels_.end() || it->second->gray == nullptr) return;
  it->second->gray->stop(effect);
  // A fully idle process is destroyed: a later restart re-seeds its
  // substreams from scratch, which is plan-determined and thus replayable.
  if (!it->second->gray->any_active()) it->second->gray.reset();
  prune_channel(link);
}

void FaultController::save_state(core::ckpt::Saver& s) const {
  s.u64(events_applied_);
  s.u64(plan_.events.size());
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const bool pending = i < event_ids_.size() && event_ids_[i] != sim::kInvalidEventId;
    s.b(pending);
    if (pending) {
      sim::Scheduler::PendingKey k;
      [[maybe_unused]] const bool live = sched_.key_of(event_ids_[i], k);
      assert(live && "fault plan timer id stale");
      s.i64(k.t_ns);
      s.u64(k.seq);
    }
  }
  // Active per-link fault channels, in link-id order (the map is unordered).
  std::vector<net::LinkId> links;
  links.reserve(channels_.size());
  for (const auto& [link, ch] : channels_) links.push_back(link);
  std::sort(links.begin(), links.end());
  s.u64(links.size());
  for (const net::LinkId link : links) {
    const Channel& ch = *channels_.at(link);
    s.u32(link);
    s.b(ch.loss != nullptr);
    if (ch.loss != nullptr) {
      const LossModel& m = ch.loss->model();
      s.u8(static_cast<std::uint8_t>(m.kind));
      s.f64(m.p_loss);
      s.f64(m.p_corrupt);
      s.f64(m.p_good_bad);
      s.f64(m.p_bad_good);
      s.f64(m.loss_good);
      s.f64(m.loss_bad);
      ch.loss->save_state(s);
    }
    s.b(ch.gray != nullptr);
    if (ch.gray != nullptr) ch.gray->save_state(s);
  }
}

void FaultController::restore_state(core::ckpt::Loader& l) {
  events_applied_ = l.u64();
  const std::uint64_t n = l.u64();
  assert(!l.ok() || n == plan_.events.size());
  event_ids_.assign(plan_.events.size(), sim::kInvalidEventId);
  for (std::uint64_t i = 0; i < n && i < plan_.events.size() && l.ok(); ++i) {
    if (!l.b()) continue;
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    const std::size_t idx = static_cast<std::size_t>(i);
    event_ids_[idx] = sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this, idx] {
      event_ids_[idx] = sim::kInvalidEventId;
      apply(plan_.events[idx]);
    });
  }
  const std::uint64_t nl = l.u64();
  for (std::uint64_t i = 0; i < nl && l.ok(); ++i) {
    const net::LinkId link = l.u32();
    Channel& ch = ensure_channel(link);
    if (l.b()) {
      LossModel m;
      m.kind = static_cast<LossModel::Kind>(l.u8());
      m.p_loss = l.f64();
      m.p_corrupt = l.f64();
      m.p_good_bad = l.f64();
      m.p_bad_good = l.f64();
      m.loss_good = l.f64();
      m.loss_bad = l.f64();
      ch.loss = std::make_unique<LossProcess>(m, cfg_.seed, link);
      ch.loss->restore_state(l);
    }
    if (l.b()) {
      ch.gray = std::make_unique<GrayProcess>(cfg_.seed, link);
      ch.gray->restore_state(l);
    }
  }
}

}  // namespace xmp::faults
