#include "faults/fault_controller.hpp"

#include <algorithm>
#include <cassert>

#include "net/types.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::faults {

LossProcess::LossProcess(const LossModel& model, std::uint64_t seed, net::LinkId link)
    : model_{model}, rng_{net::mix64(seed ^ (0x9e3779b97f4a7c15ULL + link))} {}

net::Link::FaultAction LossProcess::on_send(const net::Packet& /*p*/) {
  double p_loss = 0.0;
  if (model_.kind == LossModel::Kind::Bernoulli) {
    p_loss = model_.p_loss;
  } else {
    // Advance the two-state channel first, then draw the loss verdict from
    // the state the packet observes.
    if (bad_state_) {
      if (rng_.uniform01() < model_.p_bad_good) bad_state_ = false;
    } else {
      if (rng_.uniform01() < model_.p_good_bad) bad_state_ = true;
    }
    p_loss = bad_state_ ? model_.loss_bad : model_.loss_good;
  }
  if (p_loss > 0.0 && rng_.uniform01() < p_loss) return net::Link::FaultAction::Drop;
  if (model_.p_corrupt > 0.0 && rng_.uniform01() < model_.p_corrupt) {
    return net::Link::FaultAction::Corrupt;
  }
  return net::Link::FaultAction::Pass;
}

FaultController::FaultController(sim::Scheduler& sched, net::Network& net, FaultPlan plan,
                                 Config cfg)
    : sched_{sched}, net_{net}, plan_{std::move(plan)}, cfg_{cfg} {}

void FaultController::arm() {
  event_ids_.assign(plan_.events.size(), sim::kInvalidEventId);
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    // Capture the index, not the event: the plan vector is stable for the
    // controller's lifetime and the capture stays pointer-sized.
    event_ids_[i] = sched_.schedule_at(plan_.events[i].at, [this, i] {
      event_ids_[i] = sim::kInvalidEventId;
      apply(plan_.events[i]);
    });
  }
}

void FaultController::apply(const FaultEvent& e) {
  ++events_applied_;
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->fault(sched_.now(), static_cast<std::uint16_t>(e.kind),
              static_cast<std::uint32_t>(e.target));
  }
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->fault_events.inc();
  switch (e.kind) {
    case FaultEvent::Kind::LinkDown:
      net_.link(static_cast<net::LinkId>(e.target)).set_down(true);
      break;
    case FaultEvent::Kind::LinkUp:
      net_.link(static_cast<net::LinkId>(e.target)).set_down(false);
      break;
    case FaultEvent::Kind::SwitchDown:
      set_switch_down(e.target, true);
      break;
    case FaultEvent::Kind::SwitchUp:
      set_switch_down(e.target, false);
      break;
    case FaultEvent::Kind::HostDown:
      set_host_down(e.target, true);
      break;
    case FaultEvent::Kind::HostUp:
      set_host_down(e.target, false);
      break;
    case FaultEvent::Kind::LossStart:
      start_loss(static_cast<net::LinkId>(e.target), e.loss);
      break;
    case FaultEvent::Kind::LossStop:
      stop_loss(static_cast<net::LinkId>(e.target));
      break;
    case FaultEvent::Kind::EcnBlackholeStart:
      set_blackhole(e.target, true);
      break;
    case FaultEvent::Kind::EcnBlackholeStop:
      set_blackhole(e.target, false);
      break;
  }
}

void FaultController::set_switch_down(int idx, bool down) {
  net::Switch& sw = *net_.switches().at(static_cast<std::size_t>(idx));
  for (std::size_t p = 0; p < sw.port_count(); ++p) {
    sw.port(p).set_down(down);
  }
  for (net::Link* l : net_.links_into(sw)) {
    l->set_down(down);
  }
}

void FaultController::set_host_down(int idx, bool down) {
  net::Host& h = net_.host(static_cast<std::size_t>(idx));
  if (h.uplink() != nullptr) h.uplink()->set_down(down);
  for (net::Link* l : net_.links_into(h)) {
    l->set_down(down);
  }
}

void FaultController::set_blackhole(int idx, bool blackholed) {
  net::Switch& sw = *net_.switches().at(static_cast<std::size_t>(idx));
  for (std::size_t p = 0; p < sw.port_count(); ++p) {
    sw.port(p).queue().set_marking_enabled(!blackholed);
  }
}

void FaultController::start_loss(net::LinkId link, const LossModel& m) {
  auto proc = std::make_unique<LossProcess>(m, cfg_.seed, link);
  net_.link(link).set_fault_hook(proc.get());
  losses_[link] = std::move(proc);  // replaces (and frees) any prior model
}

void FaultController::stop_loss(net::LinkId link) {
  net_.link(link).set_fault_hook(nullptr);
  losses_.erase(link);
}

void FaultController::save_state(core::ckpt::Saver& s) const {
  s.u64(events_applied_);
  s.u64(plan_.events.size());
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const bool pending = i < event_ids_.size() && event_ids_[i] != sim::kInvalidEventId;
    s.b(pending);
    if (pending) {
      sim::Scheduler::PendingKey k;
      [[maybe_unused]] const bool live = sched_.key_of(event_ids_[i], k);
      assert(live && "fault plan timer id stale");
      s.i64(k.t_ns);
      s.u64(k.seq);
    }
  }
  // Active loss processes, in link-id order (the map is unordered).
  std::vector<net::LinkId> links;
  links.reserve(losses_.size());
  for (const auto& [link, proc] : losses_) links.push_back(link);
  std::sort(links.begin(), links.end());
  s.u64(links.size());
  for (const net::LinkId link : links) {
    const LossProcess& proc = *losses_.at(link);
    s.u32(link);
    const LossModel& m = proc.model();
    s.u8(static_cast<std::uint8_t>(m.kind));
    s.f64(m.p_loss);
    s.f64(m.p_corrupt);
    s.f64(m.p_good_bad);
    s.f64(m.p_bad_good);
    s.f64(m.loss_good);
    s.f64(m.loss_bad);
    proc.save_state(s);
  }
}

void FaultController::restore_state(core::ckpt::Loader& l) {
  events_applied_ = l.u64();
  const std::uint64_t n = l.u64();
  assert(!l.ok() || n == plan_.events.size());
  event_ids_.assign(plan_.events.size(), sim::kInvalidEventId);
  for (std::uint64_t i = 0; i < n && i < plan_.events.size() && l.ok(); ++i) {
    if (!l.b()) continue;
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    const std::size_t idx = static_cast<std::size_t>(i);
    event_ids_[idx] = sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this, idx] {
      event_ids_[idx] = sim::kInvalidEventId;
      apply(plan_.events[idx]);
    });
  }
  const std::uint64_t nl = l.u64();
  for (std::uint64_t i = 0; i < nl && l.ok(); ++i) {
    const net::LinkId link = l.u32();
    LossModel m;
    m.kind = static_cast<LossModel::Kind>(l.u8());
    m.p_loss = l.f64();
    m.p_corrupt = l.f64();
    m.p_good_bad = l.f64();
    m.p_bad_good = l.f64();
    m.loss_good = l.f64();
    m.loss_bad = l.f64();
    auto proc = std::make_unique<LossProcess>(m, cfg_.seed, link);
    proc->restore_state(l);
    net_.link(link).set_fault_hook(proc.get());
    losses_[link] = std::move(proc);
  }
}

}  // namespace xmp::faults
