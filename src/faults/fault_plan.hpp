#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace xmp::faults {

/// Stochastic per-link loss / corruption process. All randomness is drawn
/// from a per-link xoshiro stream seeded by (fault seed, link id), so a
/// (plan, seed) pair replays bit-identically regardless of traffic.
struct LossModel {
  enum class Kind : std::uint8_t {
    Bernoulli,       ///< i.i.d. loss with probability `p_loss`
    GilbertElliott,  ///< two-state bursty channel (good/bad)
  };

  Kind kind = Kind::Bernoulli;
  double p_loss = 0.0;     ///< Bernoulli: per-packet loss probability
  double p_corrupt = 0.0;  ///< survivors are corrupted with this probability

  // Gilbert–Elliott parameters (per-packet state transitions).
  double p_good_bad = 0.0;  ///< P(good -> bad)
  double p_bad_good = 0.1;  ///< P(bad -> good)
  double loss_good = 0.0;   ///< loss probability while in the good state
  double loss_bad = 0.5;    ///< loss probability while in the bad state

  [[nodiscard]] static LossModel bernoulli(double p, double corrupt = 0.0);
  [[nodiscard]] static LossModel gilbert(double p_gb, double p_bg, double loss_bad,
                                         double loss_good = 0.0, double corrupt = 0.0);
};

/// Parameters of one gray-failure (degraded-but-not-dead) effect. Which
/// fields matter depends on the FaultEvent kind; unused fields keep their
/// defaults so plans hash and compare deterministically.
struct GrayModel {
  /// DegradeStart: residual capacity fraction in (0, 1) — a slow-drain port
  /// serializing at factor x nominal rate.
  double factor = 1.0;
  /// DelayStart: base latency added to every packet at link entry.
  sim::Time delay = sim::Time::zero();
  /// DelayStart: per-packet uniform jitter bound on top of `delay`, drawn
  /// from the link's fault RNG stream (0 = constant inflation).
  sim::Time jitter = sim::Time::zero();
  /// Reorder/Duplicate/EcnOvermark: per-packet probability of the effect.
  double p = 0.0;
  /// ReorderStart: how long a selected packet is held back while later
  /// packets overtake it.
  sim::Time hold = sim::Time::zero();
};

/// One primitive fault event. Composite directives (flap, `until=`) are
/// expanded into primitives by the FaultPlan builder / parser.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    LinkDown,
    LinkUp,
    SwitchDown,  ///< downs every link attached to the switch (both directions)
    SwitchUp,
    HostDown,  ///< downs the host's uplink and its ingress links
    HostUp,
    LossStart,  ///< install `loss` on the link
    LossStop,
    EcnBlackholeStart,  ///< switch keeps forwarding but stops CE-marking
    EcnBlackholeStop,
    // --- gray failures: the link degrades without going down ---
    DegradeStart,  ///< slow drain: capacity scaled by gray.factor
    DegradeStop,
    DelayStart,  ///< every packet held gray.delay (+ jitter) at link entry
    DelayStop,
    ReorderStart,  ///< a gray.p fraction held gray.hold, so later packets pass
    ReorderStop,
    DuplicateStart,  ///< a gray.p fraction cloned (both copies transmitted)
    DuplicateStop,
    EcnOvermarkStart,  ///< forced CE on a gray.p fraction of ECT survivors
    EcnOvermarkStop,
  };

  Kind kind = Kind::LinkDown;
  sim::Time at = sim::Time::zero();
  /// Link id for Link*/Loss*/gray events; index into Network::switches()
  /// for Switch*/EcnBlackhole* events; index into Network::hosts() for Host*.
  int target = 0;
  LossModel loss;  ///< LossStart only
  GrayModel gray;  ///< Degrade/Delay/Reorder/Duplicate/EcnOvermark Start only

  [[nodiscard]] static const char* kind_name(Kind k);
};

/// Declarative, seedable schedule of fault events — the single source of
/// truth for what goes wrong during a run. Plans are plain data: building,
/// copying and hashing them never touches a network.
///
/// Text form (xmpsim `--faults=`): statements separated by `;`, fields by
/// `,`, times in seconds:
///
///   down,link=3,at=0.5            permanent link failure
///   down,link=3,at=0.5,until=0.7  transient (auto up at 0.7)
///   up,link=3,at=0.9              explicit repair
///   flap,link=3,at=0.5,period=0.1,count=4   4 down/up cycles, 50% duty
///   down,switch=2,at=0.5[,until=..]         whole-switch failure
///   down,host=7,at=0.5[,until=..]           host failure
///   loss,link=2,at=0,p=0.01[,corrupt=0.002][,until=..]      Bernoulli
///   gilbert,link=2,at=0,pgb=0.001,pbg=0.1,pbad=0.3[,pgood=0][,corrupt=..]
///   blackhole,switch=5,at=0.2[,until=..]    ECN marking disabled
///   degrade,link=2,at=0.1,factor=0.3[,until=..]     slow drain (30% rate)
///   delay,link=2,at=0.1,dt=1e-4[,jitter=5e-5][,until=..]    latency + jitter
///   reorder,link=2,at=0.1,p=0.05,dt=2e-4[,until=..] hold-and-release
///   duplicate,link=2,at=0.1,p=0.01[,until=..]       clone a p fraction
///   overmark,link=2,at=0.1,p=0.2[,until=..]         forced CE on survivors
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t size() const { return events.size(); }

  // --- builders (return *this for chaining) ---
  FaultPlan& link_down(net::LinkId link, sim::Time at);
  FaultPlan& link_up(net::LinkId link, sim::Time at);
  /// `count` down/up cycles of length `period` (down for the first half).
  FaultPlan& link_flap(net::LinkId link, sim::Time at, sim::Time period, int count);
  FaultPlan& switch_down(int sw, sim::Time at);
  FaultPlan& switch_up(int sw, sim::Time at);
  FaultPlan& host_down(int host, sim::Time at);
  FaultPlan& host_up(int host, sim::Time at);
  FaultPlan& loss(net::LinkId link, const LossModel& m, sim::Time at,
                  sim::Time until = sim::Time::infinity());
  FaultPlan& blackhole(int sw, sim::Time at, sim::Time until = sim::Time::infinity());
  // --- gray failures ---
  FaultPlan& degrade(net::LinkId link, double factor, sim::Time at,
                     sim::Time until = sim::Time::infinity());
  FaultPlan& delay(net::LinkId link, sim::Time dt, sim::Time jitter, sim::Time at,
                   sim::Time until = sim::Time::infinity());
  FaultPlan& reorder(net::LinkId link, double p, sim::Time hold, sim::Time at,
                     sim::Time until = sim::Time::infinity());
  FaultPlan& duplicate(net::LinkId link, double p, sim::Time at,
                       sim::Time until = sim::Time::infinity());
  FaultPlan& overmark(net::LinkId link, double p, sim::Time at,
                      sim::Time until = sim::Time::infinity());

  /// Parse the text form; on failure returns false and, if `error` is
  /// non-null, stores a one-line diagnostic.
  static bool parse(const std::string& text, FaultPlan& out, std::string* error = nullptr);

  /// Canonical text form (round-trips through parse for primitive events).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace xmp::faults
