#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace xmp::faults {

/// Per-link stochastic loss/corruption channel installed as the link's
/// fault hook. Draws from its own xoshiro stream seeded by
/// (fault seed, link id), so the sequence of verdicts on one link depends
/// only on how many packets traversed *that* link — loss on link A can
/// never perturb the draws on link B.
class LossProcess final : public net::Link::FaultHook {
 public:
  LossProcess(const LossModel& model, std::uint64_t seed, net::LinkId link);

  [[nodiscard]] net::Link::FaultVerdict on_send(const net::Packet& p) override;

  [[nodiscard]] const LossModel& model() const { return model_; }

  /// Checkpoint the channel RNG and Gilbert–Elliott state (the model itself
  /// is reconstructed from the saved LossModel by the controller).
  void save_state(core::ckpt::Saver& s) const {
    for (const std::uint64_t w : rng_.state()) s.u64(w);
    s.b(bad_state_);
  }
  void restore_state(core::ckpt::Loader& l) {
    std::array<std::uint64_t, 4> st{};
    for (auto& w : st) w = l.u64();
    rng_.restore_state(st);
    bad_state_ = l.b();
  }

 private:
  LossModel model_;
  sim::Rng rng_;
  bool bad_state_ = false;  ///< Gilbert–Elliott channel state
};

/// Per-link gray-failure process: the stochastic (delay-jitter, reorder,
/// duplicate, ECN-overmark) effects that impair packets *without* dropping
/// them. Each effect draws from its own salted xoshiro substream seeded by
/// (fault seed, link id, effect), so starting or stopping one effect never
/// shifts the draws of another — the per-effect verdict sequence depends
/// only on how many packets the effect has examined on this link.
///
/// Degrade (slow drain) is deliberately absent: it is deterministic link
/// state (a rate multiplier), applied via Link::set_degrade and
/// checkpointed by the link itself.
class GrayProcess final {
 public:
  enum class Effect : std::uint8_t { Delay = 0, Reorder = 1, Duplicate = 2, Overmark = 3 };
  static constexpr int kEffects = 4;

  GrayProcess(std::uint64_t seed, net::LinkId link);

  void start(Effect e, const GrayModel& m);
  void stop(Effect e);
  [[nodiscard]] bool active(Effect e) const { return slot(e).on; }
  [[nodiscard]] bool any_active() const;

  /// Compose the active effects onto a not-dropped packet's verdict:
  /// delay inflation (+ jitter draw), reorder hold, duplicate flag,
  /// overmark flag. Draw order is fixed (Delay, Reorder, Duplicate,
  /// Overmark), one substream per effect.
  void impair(net::Link::FaultVerdict& v);

  /// Checkpoint every slot (on flag + model) and every substream's RNG
  /// words; symmetric with restore_state on a freshly constructed process.
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  struct Slot {
    bool on = false;
    GrayModel model;
    sim::Rng rng;
    Slot() : rng{1} {}
  };

  [[nodiscard]] Slot& slot(Effect e) { return slots_[static_cast<std::size_t>(e)]; }
  [[nodiscard]] const Slot& slot(Effect e) const { return slots_[static_cast<std::size_t>(e)]; }

  std::array<Slot, kEffects> slots_;
};

/// Executes a FaultPlan against a live network: schedules every event on
/// the simulation clock and applies it via the net-layer primitives
/// (Link::set_down, Link::set_fault_hook, Queue::set_marking_enabled).
///
/// Composite semantics:
///  - SwitchDown downs every egress port of the switch *and* every link
///    delivering into it (so the failure is visible from both directions);
///    SwitchUp reverses exactly that set.
///  - HostDown downs the host's uplink and its ingress links.
///  - EcnBlackhole disables CE-marking on all egress-port queues of the
///    switch; forwarding continues (the failure mode of a misconfigured
///    or buggy switch that silently stops marking).
///
/// Lifetime: must outlive the scheduler run (it owns the per-link fault
/// channels — loss + gray processes — installed as link hooks). arm() is
/// idempotent-hostile: call it exactly once.
class FaultController {
 public:
  struct Config {
    std::uint64_t seed = 1;  ///< fault-stream seed (independent of workload)
  };

  FaultController(sim::Scheduler& sched, net::Network& net, FaultPlan plan, Config cfg);
  FaultController(sim::Scheduler& sched, net::Network& net, FaultPlan plan)
      : FaultController(sched, net, std::move(plan), Config{}) {}

  FaultController(const FaultController&) = delete;
  FaultController& operator=(const FaultController&) = delete;

  /// Schedule every plan event. Call once, before (or during) the run.
  void arm();

  [[nodiscard]] std::size_t events_applied() const { return events_applied_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Checkpoint applied-event progress, the pending plan timers' keys and
  /// every active loss/gray process. restore_state() expects an *un-armed*
  /// controller over the same plan: it re-arms only the still-pending
  /// events and re-installs the per-link fault channels (the
  /// already-applied topology effects — down links, degraded rates,
  /// disabled marking — live in the net-layer state and restore there).
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  /// The one FaultHook installed per faulted link: loss first (a dropped
  /// packet draws nothing from the gray streams), then the gray effects on
  /// survivors. Owns both processes; the controller installs/uninstalls it
  /// as processes come and go.
  struct Channel final : net::Link::FaultHook {
    [[nodiscard]] net::Link::FaultVerdict on_send(const net::Packet& p) override {
      net::Link::FaultVerdict v;
      if (loss != nullptr) {
        v = loss->on_send(p);
        if (v.action == net::Link::FaultAction::Drop) return v;
      }
      if (gray != nullptr) gray->impair(v);
      return v;
    }
    std::unique_ptr<LossProcess> loss;
    std::unique_ptr<GrayProcess> gray;
  };

  void apply(const FaultEvent& e);
  void set_switch_down(int idx, bool down);
  void set_host_down(int idx, bool down);
  void set_blackhole(int idx, bool blackholed);
  void start_loss(net::LinkId link, const LossModel& m);
  void stop_loss(net::LinkId link);
  void start_gray(net::LinkId link, GrayProcess::Effect effect, const GrayModel& m);
  void stop_gray(net::LinkId link, GrayProcess::Effect effect);
  /// Get-or-create the link's channel (installing it as the fault hook).
  Channel& ensure_channel(net::LinkId link);
  /// Drop the channel (and uninstall the hook) once both processes are gone.
  void prune_channel(net::LinkId link);

  sim::Scheduler& sched_;
  net::Network& net_;
  FaultPlan plan_;
  Config cfg_;
  std::size_t events_applied_ = 0;
  /// Pending plan-event timers, parallel to plan_.events (invalid once
  /// fired); tracked so checkpoints can re-arm the remaining schedule.
  std::vector<sim::EventId> event_ids_;
  std::unordered_map<net::LinkId, std::unique_ptr<Channel>> channels_;
};

}  // namespace xmp::faults
