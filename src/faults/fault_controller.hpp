#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace xmp::faults {

/// Per-link stochastic loss/corruption channel installed as the link's
/// fault hook. Draws from its own xoshiro stream seeded by
/// (fault seed, link id), so the sequence of verdicts on one link depends
/// only on how many packets traversed *that* link — loss on link A can
/// never perturb the draws on link B.
class LossProcess final : public net::Link::FaultHook {
 public:
  LossProcess(const LossModel& model, std::uint64_t seed, net::LinkId link);

  [[nodiscard]] net::Link::FaultAction on_send(const net::Packet& p) override;

  [[nodiscard]] const LossModel& model() const { return model_; }

  /// Checkpoint the channel RNG and Gilbert–Elliott state (the model itself
  /// is reconstructed from the saved LossModel by the controller).
  void save_state(core::ckpt::Saver& s) const {
    for (const std::uint64_t w : rng_.state()) s.u64(w);
    s.b(bad_state_);
  }
  void restore_state(core::ckpt::Loader& l) {
    std::array<std::uint64_t, 4> st{};
    for (auto& w : st) w = l.u64();
    rng_.restore_state(st);
    bad_state_ = l.b();
  }

 private:
  LossModel model_;
  sim::Rng rng_;
  bool bad_state_ = false;  ///< Gilbert–Elliott channel state
};

/// Executes a FaultPlan against a live network: schedules every event on
/// the simulation clock and applies it via the net-layer primitives
/// (Link::set_down, Link::set_fault_hook, Queue::set_marking_enabled).
///
/// Composite semantics:
///  - SwitchDown downs every egress port of the switch *and* every link
///    delivering into it (so the failure is visible from both directions);
///    SwitchUp reverses exactly that set.
///  - HostDown downs the host's uplink and its ingress links.
///  - EcnBlackhole disables CE-marking on all egress-port queues of the
///    switch; forwarding continues (the failure mode of a misconfigured
///    or buggy switch that silently stops marking).
///
/// Lifetime: must outlive the scheduler run (it owns the LossProcess hooks
/// installed on links). arm() is idempotent-hostile: call it exactly once.
class FaultController {
 public:
  struct Config {
    std::uint64_t seed = 1;  ///< fault-stream seed (independent of workload)
  };

  FaultController(sim::Scheduler& sched, net::Network& net, FaultPlan plan, Config cfg);
  FaultController(sim::Scheduler& sched, net::Network& net, FaultPlan plan)
      : FaultController(sched, net, std::move(plan), Config{}) {}

  FaultController(const FaultController&) = delete;
  FaultController& operator=(const FaultController&) = delete;

  /// Schedule every plan event. Call once, before (or during) the run.
  void arm();

  [[nodiscard]] std::size_t events_applied() const { return events_applied_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Checkpoint applied-event progress, the pending plan timers' keys and
  /// every active loss process. restore_state() expects an *un-armed*
  /// controller over the same plan: it re-arms only the still-pending
  /// events and re-installs the loss hooks (the already-applied topology
  /// effects — down links, disabled marking — live in the net-layer state
  /// and are restored there).
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  void apply(const FaultEvent& e);
  void set_switch_down(int idx, bool down);
  void set_host_down(int idx, bool down);
  void set_blackhole(int idx, bool blackholed);
  void start_loss(net::LinkId link, const LossModel& m);
  void stop_loss(net::LinkId link);

  sim::Scheduler& sched_;
  net::Network& net_;
  FaultPlan plan_;
  Config cfg_;
  std::size_t events_applied_ = 0;
  /// Pending plan-event timers, parallel to plan_.events (invalid once
  /// fired); tracked so checkpoints can re-arm the remaining schedule.
  std::vector<sim::EventId> event_ids_;
  std::unordered_map<net::LinkId, std::unique_ptr<LossProcess>> losses_;
};

}  // namespace xmp::faults
