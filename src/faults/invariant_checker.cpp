#include "faults/invariant_checker.hpp"

#include <cmath>
#include <cstdio>

namespace xmp::faults {

InvariantChecker::InvariantChecker(sim::Scheduler& sched, Config cfg)
    : sched_{sched}, cfg_{cfg} {}

InvariantChecker::~InvariantChecker() { stop(); }

void InvariantChecker::watch_network(net::Network& net) { networks_.push_back(&net); }

void InvariantChecker::watch_connection(mptcp::MptcpConnection& conn) {
  connections_.push_back(&conn);
}

void InvariantChecker::watch_sender(const transport::TcpSender& s) { senders_.push_back(&s); }

void InvariantChecker::watch_receiver(const transport::TcpReceiver& r) {
  receivers_.push_back(&r);
}

void InvariantChecker::add_sender_enumerator(
    std::function<void(const SenderVisitor&)> enumerate) {
  enumerators_.push_back(std::move(enumerate));
}

void InvariantChecker::add_connection_enumerator(
    std::function<void(const ConnectionVisitor&)> enumerate) {
  conn_enumerators_.push_back(std::move(enumerate));
}

void InvariantChecker::start() {
  if (timer_ == sim::kInvalidEventId) {
    timer_ = sched_.schedule_in(cfg_.interval, [this] { tick(); });
  }
}

void InvariantChecker::stop() {
  if (timer_ != sim::kInvalidEventId) {
    sched_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
  }
}

void InvariantChecker::tick() {
  timer_ = sim::kInvalidEventId;
  check_now();
  timer_ = sched_.schedule_in(cfg_.interval, [this] { tick(); });
}

void InvariantChecker::fail(const std::string& what) {
  if (violations_.size() >= cfg_.max_violations) return;
  Violation v;
  v.at = sched_.now();
  v.what = what;
  violations_.push_back(std::move(v));
}

void InvariantChecker::check_now() {
  for (net::Network* n : networks_) {
    for (const auto& l : n->links()) check_link(*l);
  }
  for (const transport::TcpSender* s : senders_) check_sender(*s);
  for (const transport::TcpReceiver* r : receivers_) check_receiver(*r);
  for (mptcp::MptcpConnection* c : connections_) check_connection(*c);
  const SenderVisitor visit = [this](const transport::TcpSender& s) { check_sender(s); };
  for (const auto& enumerate : enumerators_) enumerate(visit);
  const ConnectionVisitor visit_conn = [this](const mptcp::MptcpConnection& c) {
    check_connection(c);
  };
  for (const auto& enumerate : conn_enumerators_) enumerate(visit_conn);
}

void InvariantChecker::check_link(const net::Link& l) {
  ++checks_run_;
  // Duplication manufactures packets inside the link, so clones join the
  // offered side; the gray hold buffer is one more place a live packet can
  // legitimately sit.
  const std::uint64_t accounted = l.delivered() + l.drops().total() +
                                  l.queue().len_packets() + l.live_in_flight() + l.held();
  if (l.offered() + l.duplicated() != accounted) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "link %u: conservation broken: offered=%llu + duplicated=%llu != "
                  "delivered=%llu + drops=%llu + queued=%zu + in_flight=%zu + held=%zu",
                  l.id(), static_cast<unsigned long long>(l.offered()),
                  static_cast<unsigned long long>(l.duplicated()),
                  static_cast<unsigned long long>(l.delivered()),
                  static_cast<unsigned long long>(l.drops().total()), l.queue().len_packets(),
                  l.live_in_flight(), l.held());
    fail(buf);
  }
  ++checks_run_;
  if (l.queue().len_packets() > l.queue().capacity()) {
    fail("link " + std::to_string(l.id()) + ": queue over capacity");
  }
  ++checks_run_;
  if (l.queue().len_packets() == 0 && l.queue().len_bytes() != 0) {
    fail("link " + std::to_string(l.id()) + ": empty queue holds bytes");
  }
}

void InvariantChecker::check_sender(const transport::TcpSender& s) {
  ++checks_run_;
  const double w = s.cwnd();
  if (!std::isfinite(w) || w < 1.0 || w > cfg_.cwnd_max) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "flow %u/%u: cwnd out of range: %g", s.flow(), s.subflow(),
                  w);
    fail(buf);
  }
  ++checks_run_;
  if (s.snd_una() > s.snd_nxt()) {
    fail("flow " + std::to_string(s.flow()) + "/" + std::to_string(s.subflow()) +
         ": snd_una > snd_nxt");
  }
}

void InvariantChecker::check_receiver(const transport::TcpReceiver& r) {
  ++checks_run_;
  std::int64_t& last = last_progress_[&r];
  if (r.rcv_nxt() < last) {
    fail("receiver: rcv_nxt moved backwards (duplicate in-order delivery)");
  }
  last = r.rcv_nxt();
}

void InvariantChecker::check_connection(const mptcp::MptcpConnection& c) {
  for (int i = 0; i < c.n_subflows(); ++i) {
    check_sender(c.subflow_sender(i));
    check_receiver(c.subflow_receiver(i));
  }
  ++checks_run_;
  const std::int64_t delivered = c.delivered_bytes();
  std::int64_t& last = last_progress_[&c];
  if (delivered < last || delivered > c.size_bytes()) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "connection %u: delivered_bytes non-monotone or over size: %lld (last %lld)",
                  c.id(), static_cast<long long>(delivered), static_cast<long long>(last));
    fail(buf);
  }
  last = delivered;
  ++checks_run_;
  if (c.complete() && delivered != c.size_bytes()) {
    fail("connection " + std::to_string(c.id()) + ": complete but short delivery");
  }
  ++checks_run_;
  if (c.complete() && c.aborted()) {
    fail("connection " + std::to_string(c.id()) + ": both complete and aborted");
  }
}

std::string InvariantChecker::report() const {
  std::string out;
  for (const Violation& v : violations_) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "[t=%.6fs] ", v.at.sec());
    out += buf;
    out += v.what;
    out += '\n';
  }
  return out;
}

}  // namespace xmp::faults
