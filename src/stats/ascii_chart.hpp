#pragma once

#include <string>
#include <vector>

namespace xmp::stats {

/// Plain-text time-series chart for bench output ("figures" a terminal can
/// show). Series are drawn with per-series glyphs over a fixed-size grid;
/// values are clamped to [y_min, y_max].
class AsciiChart {
 public:
  struct Series {
    std::string name;
    std::vector<double> values;
    char glyph = '*';
  };

  struct Options {
    int rows = 12;
    int cols = 72;       ///< plot width; longer series are downsampled
    double y_min = 0.0;
    double y_max = 1.0;
    std::string y_label;  ///< printed above the axis
  };

  /// Render the chart with legend and y-axis labels.
  [[nodiscard]] static std::string render(const std::vector<Series>& series,
                                          const Options& opts);
};

}  // namespace xmp::stats
