#include "stats/distribution.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace xmp::stats {

void Distribution::ensure_sorted() const {
  if (sorted_) return;
  sorted_samples_ = samples_;
  std::sort(sorted_samples_.begin(), sorted_samples_.end());
  sorted_ = true;
}

double Distribution::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Distribution::min() const {
  ensure_sorted();
  return sorted_samples_.empty() ? 0.0 : sorted_samples_.front();
}

double Distribution::max() const {
  ensure_sorted();
  return sorted_samples_.empty() ? 0.0 : sorted_samples_.back();
}

double Distribution::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_samples_.empty()) return 0.0;
  const auto n = sorted_samples_.size();
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted_samples_[std::min(idx, n - 1)];
}

double Distribution::cdf_at(double x) const {
  ensure_sorted();
  if (sorted_samples_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_samples_.begin(), sorted_samples_.end(), x);
  return static_cast<double>(it - sorted_samples_.begin()) /
         static_cast<double>(sorted_samples_.size());
}

std::vector<std::pair<double, double>> Distribution::cdf_points(std::size_t n) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> pts;
  if (sorted_samples_.empty() || n == 0) return pts;
  pts.reserve(n);
  const auto count = sorted_samples_.size();
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t idx = std::min(count - 1, i * count / n);
    pts.emplace_back(sorted_samples_[idx],
                     static_cast<double>(idx + 1) / static_cast<double>(count));
  }
  return pts;
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sq = 0.0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

}  // namespace xmp::stats
