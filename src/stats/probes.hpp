#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace xmp::stats {

/// Aggregate of the per-cause Link drop counters over a set of links —
/// the fleet-wide view of where packets died during a (possibly faulty)
/// run. `offered == delivered + total_drops()` only once the network has
/// drained; mid-run the difference is packets queued or in flight.
struct DropBreakdown {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queue = 0;       ///< egress queue overflow
  std::uint64_t admin_down = 0;  ///< link administratively down
  std::uint64_t fault = 0;       ///< injected loss process
  std::uint64_t corrupt = 0;     ///< corrupted in flight, discarded at sink

  // Gray-failure impairments (not drops: the packets lived on).
  std::uint64_t duplicated = 0;  ///< clones manufactured by Duplicate
  std::uint64_t delayed = 0;     ///< packets parked by Delay/Reorder holds
  std::uint64_t overmarked = 0;  ///< forced CE marks (EcnOvermark)

  [[nodiscard]] std::uint64_t total_drops() const {
    return queue + admin_down + fault + corrupt;
  }

  void add(const net::Link& l);
};

/// Sum the drop counters of every given link / every link of the network.
[[nodiscard]] DropBreakdown collect_drops(const std::vector<net::Link*>& links);
[[nodiscard]] DropBreakdown collect_drops(const net::Network& net);

/// Periodically differentiates a cumulative counter into a per-interval
/// rate series (the "Normalized Rate" time series of Figures 1/4/6/7).
class RateProbe {
 public:
  /// `cumulative` returns a monotone counter (e.g. delivered bytes).
  RateProbe(sim::Scheduler& sched, sim::Time interval, std::function<double()> cumulative);
  ~RateProbe();

  RateProbe(const RateProbe&) = delete;
  RateProbe& operator=(const RateProbe&) = delete;

  void start();
  void stop();

  /// Rates per interval, in counter-units per second.
  [[nodiscard]] const std::vector<double>& rates() const { return rates_; }
  /// End timestamp of each interval.
  [[nodiscard]] const std::vector<sim::Time>& timestamps() const { return times_; }
  [[nodiscard]] sim::Time interval() const { return interval_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  sim::Time interval_;
  std::function<double()> cumulative_;
  double last_value_ = 0.0;
  sim::EventId timer_ = sim::kInvalidEventId;
  std::vector<double> rates_;
  std::vector<sim::Time> times_;
};

/// Periodically samples an instantaneous gauge (queue occupancy, srtt, ...).
class GaugeProbe {
 public:
  GaugeProbe(sim::Scheduler& sched, sim::Time interval, std::function<double()> gauge);
  ~GaugeProbe();

  GaugeProbe(const GaugeProbe&) = delete;
  GaugeProbe& operator=(const GaugeProbe&) = delete;

  void start();
  void stop();

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// Checkpoint the sample series and the pending tick timer's key.
  /// restore_state() expects a probe that has NOT been start()ed; it
  /// re-arms the tick under its original (time, sequence) key.
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  void tick();

  sim::Scheduler& sched_;
  sim::Time interval_;
  std::function<double()> gauge_;
  sim::EventId timer_ = sim::kInvalidEventId;
  std::vector<double> samples_;
};

/// Measures per-link utilization over a time window: snapshot busy time at
/// open(), compute busy-fraction at close().
class UtilizationWindow {
 public:
  explicit UtilizationWindow(sim::Scheduler& sched) : sched_{sched} {}

  /// Begin the window over the given links.
  void open(const std::vector<net::Link*>& links);

  /// End the window; returns one utilization value in [0,1] per link.
  [[nodiscard]] std::vector<double> close() const;

  /// Checkpoint the window anchor. restore_state() replaces open(): the
  /// caller passes the same link set (same order) as the saved run's open().
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l, const std::vector<net::Link*>& links);

 private:
  sim::Scheduler& sched_;
  std::vector<net::Link*> links_;
  std::vector<sim::Time> busy_at_open_;
  sim::Time opened_at_ = sim::Time::zero();
};

}  // namespace xmp::stats
