#include "stats/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace xmp::stats {
namespace {

/// Resample `values` to exactly `cols` points (bucket means).
std::vector<double> fit_width(const std::vector<double>& values, int cols) {
  std::vector<double> out(static_cast<std::size_t>(cols),
                          std::numeric_limits<double>::quiet_NaN());
  if (values.empty()) return out;
  const auto n = values.size();
  for (int c = 0; c < cols; ++c) {
    const std::size_t lo = static_cast<std::size_t>(c) * n / static_cast<std::size_t>(cols);
    std::size_t hi = static_cast<std::size_t>(c + 1) * n / static_cast<std::size_t>(cols);
    if (hi <= lo) hi = lo + 1;
    if (lo >= n) break;
    double sum = 0.0;
    std::size_t cnt = 0;
    for (std::size_t i = lo; i < std::min(hi, n); ++i) {
      sum += values[i];
      ++cnt;
    }
    if (cnt > 0) out[static_cast<std::size_t>(c)] = sum / static_cast<double>(cnt);
  }
  return out;
}

}  // namespace

std::string AsciiChart::render(const std::vector<Series>& series, const Options& opts) {
  const int rows = std::max(opts.rows, 2);
  const int cols = std::max(opts.cols, 8);
  const double span = std::max(opts.y_max - opts.y_min, 1e-12);

  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), ' '));
  for (const Series& s : series) {
    const auto fitted = fit_width(s.values, cols);
    for (int c = 0; c < cols; ++c) {
      const double v = fitted[static_cast<std::size_t>(c)];
      if (std::isnan(v)) continue;
      const double norm = std::clamp((v - opts.y_min) / span, 0.0, 1.0);
      const int r = rows - 1 - static_cast<int>(std::lround(norm * (rows - 1)));
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = s.glyph;
    }
  }

  std::string out;
  if (!opts.y_label.empty()) out += opts.y_label + "\n";
  char label[32];
  for (int r = 0; r < rows; ++r) {
    const double y = opts.y_max - span * r / (rows - 1);
    std::snprintf(label, sizeof label, "%8.2f |", y);
    out += label;
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += std::string(9, ' ') + '+' + std::string(static_cast<std::size_t>(cols), '-') + "> t\n";
  out += "  legend:";
  for (const Series& s : series) {
    out += "  ";
    out += s.glyph;
    out += "=" + s.name;
  }
  out += '\n';
  return out;
}

}  // namespace xmp::stats
