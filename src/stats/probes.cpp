#include "stats/probes.hpp"

#include <cassert>

namespace xmp::stats {

void DropBreakdown::add(const net::Link& l) {
  offered += l.offered();
  delivered += l.delivered();
  queue += l.drops().queue;
  admin_down += l.drops().admin_down;
  fault += l.drops().fault;
  corrupt += l.drops().corrupt;
  duplicated += l.duplicated();
  delayed += l.delayed();
  overmarked += l.overmarked();
}

DropBreakdown collect_drops(const std::vector<net::Link*>& links) {
  DropBreakdown d;
  for (const net::Link* l : links) d.add(*l);
  return d;
}

DropBreakdown collect_drops(const net::Network& net) {
  DropBreakdown d;
  for (const auto& l : net.links()) d.add(*l);
  return d;
}

RateProbe::RateProbe(sim::Scheduler& sched, sim::Time interval, std::function<double()> cumulative)
    : sched_{sched}, interval_{interval}, cumulative_{std::move(cumulative)} {
  assert(interval_ > sim::Time::zero());
}

RateProbe::~RateProbe() { stop(); }

void RateProbe::start() {
  if (timer_ != sim::kInvalidEventId) return;
  last_value_ = cumulative_();
  timer_ = sched_.schedule_in(interval_, [this] { tick(); });
}

void RateProbe::stop() {
  if (timer_ == sim::kInvalidEventId) return;
  sched_.cancel(timer_);
  timer_ = sim::kInvalidEventId;
}

void RateProbe::tick() {
  const double now_value = cumulative_();
  rates_.push_back((now_value - last_value_) / interval_.sec());
  times_.push_back(sched_.now());
  last_value_ = now_value;
  timer_ = sched_.schedule_in(interval_, [this] { tick(); });
}

GaugeProbe::GaugeProbe(sim::Scheduler& sched, sim::Time interval, std::function<double()> gauge)
    : sched_{sched}, interval_{interval}, gauge_{std::move(gauge)} {
  assert(interval_ > sim::Time::zero());
}

GaugeProbe::~GaugeProbe() { stop(); }

void GaugeProbe::start() {
  if (timer_ != sim::kInvalidEventId) return;
  timer_ = sched_.schedule_in(interval_, [this] { tick(); });
}

void GaugeProbe::stop() {
  if (timer_ == sim::kInvalidEventId) return;
  sched_.cancel(timer_);
  timer_ = sim::kInvalidEventId;
}

void GaugeProbe::tick() {
  samples_.push_back(gauge_());
  timer_ = sched_.schedule_in(interval_, [this] { tick(); });
}

void GaugeProbe::save_state(core::ckpt::Saver& s) const {
  s.u64(samples_.size());
  for (const double x : samples_) s.f64(x);
  const bool armed = timer_ != sim::kInvalidEventId;
  s.b(armed);
  if (armed) {
    sim::Scheduler::PendingKey k;
    [[maybe_unused]] const bool live = sched_.key_of(timer_, k);
    assert(live && "gauge probe timer id stale");
    s.i64(k.t_ns);
    s.u64(k.seq);
  }
}

void GaugeProbe::restore_state(core::ckpt::Loader& l) {
  const std::uint64_t n = l.u64();
  samples_.clear();
  samples_.reserve(n);
  for (std::uint64_t i = 0; i < n && l.ok(); ++i) samples_.push_back(l.f64());
  if (l.b()) {
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    timer_ = sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this] { tick(); });
  }
}

void UtilizationWindow::open(const std::vector<net::Link*>& links) {
  links_ = links;
  busy_at_open_.clear();
  busy_at_open_.reserve(links_.size());
  for (const net::Link* l : links_) busy_at_open_.push_back(l->busy_time());
  opened_at_ = sched_.now();
}

void UtilizationWindow::save_state(core::ckpt::Saver& s) const {
  s.time(opened_at_);
  s.u64(busy_at_open_.size());
  for (const sim::Time t : busy_at_open_) s.time(t);
}

void UtilizationWindow::restore_state(core::ckpt::Loader& l,
                                      const std::vector<net::Link*>& links) {
  links_ = links;
  opened_at_ = l.time();
  const std::uint64_t n = l.u64();
  busy_at_open_.clear();
  busy_at_open_.reserve(n);
  for (std::uint64_t i = 0; i < n && l.ok(); ++i) busy_at_open_.push_back(l.time());
}

std::vector<double> UtilizationWindow::close() const {
  std::vector<double> util;
  const sim::Time span = sched_.now() - opened_at_;
  if (span <= sim::Time::zero()) return util;
  util.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const sim::Time busy = links_[i]->busy_time() - busy_at_open_[i];
    util.push_back(busy.sec() / span.sec());
  }
  return util;
}

}  // namespace xmp::stats
