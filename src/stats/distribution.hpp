#pragma once

#include <cstddef>
#include <vector>

#include "core/checkpoint.hpp"

namespace xmp::stats {

/// Sample accumulator with percentile/CDF queries (used for goodput, RTT,
/// completion-time and utilization distributions).
class Distribution {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// p in [0, 100]; nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double p) const;

  /// Fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;

  /// `n` evenly spaced (value, cumulative fraction) points for plotting.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points(std::size_t n) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// Checkpoint the raw samples (exact double bits, insertion order).
  void save_state(core::ckpt::Saver& s) const {
    s.u64(samples_.size());
    for (const double x : samples_) s.f64(x);
  }
  void restore_state(core::ckpt::Loader& l) {
    const std::uint64_t n = l.u64();
    samples_.clear();
    samples_.reserve(n);
    for (std::uint64_t i = 0; i < n && l.ok(); ++i) samples_.push_back(l.f64());
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

/// Jain's fairness index over a set of rates: (Σx)² / (n·Σx²); 1 = fair.
[[nodiscard]] double jain_index(const std::vector<double>& xs);

}  // namespace xmp::stats
