#include "transport/cc/dctcp.hpp"

#include <algorithm>

#include "transport/sender.hpp"

namespace xmp::transport {

void DctcpCc::on_ack(TcpSender& s, const AckEvent& ev) {
  if (ev.dupack) return;
  acked_in_window_ += ev.newly_acked;
  if (ev.ece) marked_in_window_ += ev.newly_acked;

  // Window boundary: the cumulative ack passed window_end_. The closing
  // ack's own segments belong to the finished window.
  if (s.snd_una() > window_end_) {
    if (acked_in_window_ > 0) {
      const double frac =
          static_cast<double>(marked_in_window_) / static_cast<double>(acked_in_window_);
      alpha_ = (1.0 - params_.g) * alpha_ + params_.g * frac;
    }
    acked_in_window_ = 0;
    marked_in_window_ = 0;
    window_end_ = s.snd_nxt();
  }

  if (s.in_slow_start()) {
    s.set_cwnd(s.cwnd() + 1.0);
  } else {
    s.set_cwnd(s.cwnd() + static_cast<double>(ev.newly_acked) / s.cwnd());
  }
}

void DctcpCc::on_congestion_signal(TcpSender& s, const AckEvent& /*ev*/) {
  if (s.snd_una() <= cwr_seq_) return;  // already reduced in this window
  cwr_seq_ = s.snd_nxt();
  const double reduced = s.cwnd() * (1.0 - alpha_ / 2.0);
  s.set_cwnd(std::max(reduced, 2.0));
  // Leave slow start for good once congestion has been signalled.
  if (s.ssthresh() > s.cwnd()) s.set_ssthresh(s.cwnd() - 1.0);
}

void DctcpCc::on_loss(TcpSender& s, bool timeout) {
  s.set_ssthresh(std::max(s.cwnd() / 2.0, 2.0));
  s.set_cwnd(timeout ? s.config().min_cwnd : s.ssthresh());
}

}  // namespace xmp::transport
