#pragma once

#include "transport/congestion_control.hpp"

namespace xmp::transport {

/// TCP-Reno congestion control (2013-era Linux behaviour: +1 per ack in
/// slow start, +1/cwnd per acked segment in congestion avoidance, halving
/// on loss). This is both the paper's "TCP" for small flows and the base
/// class for LIA's per-subflow behaviour.
class RenoCc : public CongestionControl {
 public:
  void on_ack(TcpSender& s, const AckEvent& ev) override;
  void on_congestion_signal(TcpSender& s, const AckEvent& ev) override;
  void on_loss(TcpSender& s, bool timeout) override;
  [[nodiscard]] const char* name() const override { return "reno"; }

  void save_state(core::ckpt::Saver& s) const override { s.i64(cwr_seq_); }
  void restore_state(core::ckpt::Loader& l) override { cwr_seq_ = l.i64(); }

 protected:
  /// Congestion-avoidance increase for `newly_acked` segments; LIA
  /// overrides this with the coupled increase.
  virtual void increase_ca(TcpSender& s, std::int64_t newly_acked);

 private:
  // Reno-ECN fallback: react to ECE at most once per RTT.
  std::int64_t cwr_seq_ = -1;
};

}  // namespace xmp::transport
