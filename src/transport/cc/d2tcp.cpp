#include "transport/cc/d2tcp.hpp"

#include <algorithm>
#include <cmath>

#include "transport/sender.hpp"

namespace xmp::transport {

double D2tcpCc::imminence(const TcpSender& s, sim::Time now) const {
  if (dp_.deadline <= sim::Time::zero() || dp_.total_segments <= 0) return 1.0;
  const std::int64_t remaining_segments = dp_.total_segments - s.delivered_segments();
  if (remaining_segments <= 0) return 0.5;  // effectively done: be gentle
  const double rate = s.instant_rate();     // segments per second
  if (rate <= 0.0) return 1.0;
  const double tc = static_cast<double>(remaining_segments) / rate;
  const double d_remaining = (dp_.deadline - now).sec();
  if (d_remaining <= 0.0) return 2.0;  // past deadline: maximally aggressive
  return std::clamp(tc / d_remaining, 0.5, 2.0);
}

void D2tcpCc::on_congestion_signal(TcpSender& s, const AckEvent& /*ev*/) {
  if (s.snd_una() <= cwr_seq_) return;  // once per window, as in DCTCP
  cwr_seq_ = s.snd_nxt();
  const double d = imminence(s, s.now());
  const double penalty = std::pow(alpha(), d);  // p = alpha^d
  s.set_cwnd(std::max(s.cwnd() * (1.0 - penalty / 2.0), 2.0));
  if (s.ssthresh() > s.cwnd()) s.set_ssthresh(s.cwnd() - 1.0);
}

}  // namespace xmp::transport
