#pragma once

#include "transport/congestion_control.hpp"

namespace xmp::transport {

/// BOS — Buffer Occupancy Suppression (paper §2.1, Algorithm 1).
///
/// Congestion avoidance changes cwnd once per *round* (one RTT, delimited
/// with beg_seq/snd_una as in the paper's Fig. 2):
///   - no congestion: cwnd grows by the gain δ (fractional growth is
///     accumulated in `adder`, exactly as in Algorithm 1);
///   - on an ECN echo: cwnd is cut by 1/β, at most once per round, tracked
///     by the NORMAL/REDUCED state machine keyed on cwr_seq.
/// Slow start grows by 1 per ack and ends at the first congestion echo.
///
/// With a fixed δ = 1 this is the standalone single-path algorithm; the
/// XMP subflow controller derives from this class and supplies the TraSh
/// gain (Eq. 9) by overriding `gain()`.
class BosCc : public CongestionControl {
 public:
  struct Params {
    int beta = 4;        ///< window reduction factor 1/β (paper: β ∈ [3,5])
    double delta = 1.0;  ///< per-round increase gain for standalone BOS
  };

  BosCc() = default;
  explicit BosCc(const Params& p) : params_{p} {}

  void on_round_end(TcpSender& s) override;
  void on_ack(TcpSender& s, const AckEvent& ev) override;
  void on_congestion_signal(TcpSender& s, const AckEvent& ev) override;
  void on_loss(TcpSender& s, bool timeout) override;
  [[nodiscard]] const char* name() const override { return "bos"; }

  [[nodiscard]] int beta() const { return params_.beta; }
  [[nodiscard]] bool reduced_state() const { return state_ == State::Reduced; }
  [[nodiscard]] double current_gain() const { return delta_; }

  void save_state(core::ckpt::Saver& s) const override {
    s.u8(static_cast<std::uint8_t>(state_));
    s.i64(cwr_seq_);
    s.f64(adder_);
    s.f64(delta_);
  }
  void restore_state(core::ckpt::Loader& l) override {
    state_ = static_cast<State>(l.u8());
    cwr_seq_ = l.i64();
    adder_ = l.f64();
    delta_ = l.f64();
  }

 protected:
  /// The per-round increase gain δ, re-evaluated at every round end.
  [[nodiscard]] virtual double gain(TcpSender& /*s*/) { return params_.delta; }

  Params params_;

 private:
  enum class State { Normal, Reduced };

  State state_ = State::Normal;
  std::int64_t cwr_seq_ = 0;
  double adder_ = 0.0;
  double delta_ = 1.0;
};

}  // namespace xmp::transport
