#include "transport/cc/bos.hpp"

#include <algorithm>
#include <cmath>

#include "obs/hooks.hpp"
#include "obs/timeline.hpp"
#include "transport/sender.hpp"

namespace xmp::transport {

void BosCc::on_round_end(TcpSender& s) {
  // Algorithm 1, per-round operations: refresh the gain from current rates,
  // then apply the congestion-avoidance increase with the fractional-part
  // accumulator.
  delta_ = gain(s);
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    // Covers XmpCc too: TraSh only overrides gain(), so every δ refresh for
    // every BOS-family sender lands here.
    tr->gain(s.now(), s.flow(), static_cast<std::uint8_t>(s.subflow()), delta_);
  }
  if (state_ == State::Normal && !s.in_slow_start()) {
    adder_ += delta_;
    const double whole = std::floor(adder_);
    if (whole > 0) {
      s.set_cwnd(s.cwnd() + whole);
      adder_ -= whole;
    }
  }
}

void BosCc::on_ack(TcpSender& s, const AckEvent& ev) {
  if (ev.dupack) return;
  // Per-ack operations: slow start, then the REDUCED -> NORMAL transition
  // once every CE issued before the reduction has been echoed back.
  if (state_ == State::Normal && s.in_slow_start()) {
    s.set_cwnd(s.cwnd() + 1.0);
  }
  if (state_ != State::Normal && s.snd_una() >= cwr_seq_) {
    state_ = State::Normal;
  }
}

void BosCc::on_congestion_signal(TcpSender& s, const AckEvent& /*ev*/) {
  if (state_ != State::Normal) return;  // at most one reduction per round
  state_ = State::Reduced;
  cwr_seq_ = s.snd_nxt();
  if (s.cwnd() > s.ssthresh()) {
    const double tmp = std::floor(s.cwnd() / params_.beta);
    s.set_cwnd(std::max(s.cwnd() - std::max(tmp, 1.0), 2.0));
  }
  // Avoid re-entering slow start (Algorithm 1).
  s.set_ssthresh(s.cwnd() - 1.0);
}

void BosCc::on_loss(TcpSender& s, bool timeout) {
  // Packet loss is rare under BOS (ECN reacts first); respond like Reno but
  // respect the 2-segment floor the paper imposes on subflows.
  s.set_ssthresh(std::max(s.cwnd() / 2.0, 2.0));
  if (timeout) {
    s.set_cwnd(s.config().min_cwnd);
    state_ = State::Normal;
    adder_ = 0.0;
  } else {
    s.set_cwnd(s.ssthresh());
    state_ = State::Reduced;  // suppress an ECN-triggered double reduction
    cwr_seq_ = s.snd_nxt();
  }
}

}  // namespace xmp::transport
