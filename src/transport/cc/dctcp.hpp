#pragma once

#include "transport/congestion_control.hpp"

namespace xmp::transport {

/// DCTCP (Alizadeh et al., SIGCOMM 2010) — the paper's single-path baseline.
///
/// The sender maintains an EWMA `alpha` of the fraction of acked segments
/// that carried an ECN echo, updated once per window (~ one round), and on
/// congestion reduces cwnd proportionally: cwnd <- cwnd * (1 - alpha/2),
/// at most once per window. Increase behaviour is Reno's.
class DctcpCc : public CongestionControl {
 public:
  struct Params {
    double g = 1.0 / 16.0;  ///< EWMA gain (the DCTCP paper's recommendation)
    /// Starting congestion estimate. 1.0 (the reference default) is
    /// maximally conservative: the first echo halves. Long-lived flows
    /// converge regardless; short flows may want warm-started values.
    double initial_alpha = 1.0;
  };

  DctcpCc() = default;
  explicit DctcpCc(const Params& p) : params_{p}, alpha_{p.initial_alpha} {}

  void on_ack(TcpSender& s, const AckEvent& ev) override;
  void on_congestion_signal(TcpSender& s, const AckEvent& ev) override;
  void on_loss(TcpSender& s, bool timeout) override;
  [[nodiscard]] const char* name() const override { return "dctcp"; }

  [[nodiscard]] double alpha() const { return alpha_; }

  void save_state(core::ckpt::Saver& s) const override {
    s.f64(alpha_);
    s.i64(window_end_);
    s.i64(acked_in_window_);
    s.i64(marked_in_window_);
    s.i64(cwr_seq_);
  }
  void restore_state(core::ckpt::Loader& l) override {
    alpha_ = l.f64();
    window_end_ = l.i64();
    acked_in_window_ = l.i64();
    marked_in_window_ = l.i64();
    cwr_seq_ = l.i64();
  }

 private:
  Params params_;
  double alpha_ = 1.0;  ///< start conservative, as in the reference code
  // DCTCP tracks its own observation window (~ one RTT of data): counters
  // accumulate until the cumulative ack passes window_end_, *including*
  // the ack that closes the window.
  std::int64_t window_end_ = 0;
  std::int64_t acked_in_window_ = 0;
  std::int64_t marked_in_window_ = 0;
  std::int64_t cwr_seq_ = -1;  ///< reduce at most once per window
};

}  // namespace xmp::transport
