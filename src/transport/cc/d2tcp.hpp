#pragma once

#include "transport/cc/dctcp.hpp"
#include "sim/time.hpp"

namespace xmp::transport {

/// D²TCP — Deadline-Aware Datacenter TCP (Vamanan et al., SIGCOMM 2012),
/// one of the paper's related-work baselines (§6, [30]). Extension beyond
/// the paper's evaluation.
///
/// D²TCP gamma-corrects DCTCP's congestion estimate with a deadline
/// imminence factor d: the penalty applied on congestion is p = alpha^d,
/// cwnd <- cwnd * (1 - p/2). Far-deadline flows (d < 1) back off more than
/// DCTCP would; near-deadline flows (d > 1) back off less, trading
/// bandwidth toward flows that are about to miss their deadline.
///   d = Tc / D, clamped to [0.5, 2.0]
/// where D is the time remaining to the deadline and Tc the time the flow
/// still needs at its current rate.
class D2tcpCc final : public DctcpCc {
 public:
  struct DeadlineParams {
    sim::Time deadline = sim::Time::zero();  ///< absolute; zero = no deadline
    std::int64_t total_segments = 0;         ///< flow size
  };

  D2tcpCc(const Params& dctcp_params, const DeadlineParams& dp)
      : DctcpCc{dctcp_params}, dp_{dp} {}

  void on_congestion_signal(TcpSender& s, const AckEvent& ev) override;

  [[nodiscard]] const char* name() const override { return "d2tcp"; }

  /// The current deadline-imminence factor (1.0 when no deadline is set or
  /// nothing is known yet).
  [[nodiscard]] double imminence(const TcpSender& s, sim::Time now) const;

  void save_state(core::ckpt::Saver& s) const override {
    DctcpCc::save_state(s);
    s.i64(cwr_seq_);
  }
  void restore_state(core::ckpt::Loader& l) override {
    DctcpCc::restore_state(l);
    cwr_seq_ = l.i64();
  }

 private:
  DeadlineParams dp_;
  std::int64_t cwr_seq_ = -1;
};

}  // namespace xmp::transport
