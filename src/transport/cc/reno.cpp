#include "transport/cc/reno.hpp"

#include <algorithm>

#include "transport/sender.hpp"

namespace xmp::transport {

void RenoCc::on_ack(TcpSender& s, const AckEvent& ev) {
  if (ev.dupack) return;
  if (s.in_slow_start()) {
    s.set_cwnd(s.cwnd() + 1.0);  // per ack, as in pre-ABC Linux
  } else {
    increase_ca(s, ev.newly_acked);
  }
}

void RenoCc::increase_ca(TcpSender& s, std::int64_t newly_acked) {
  s.set_cwnd(s.cwnd() + static_cast<double>(newly_acked) / s.cwnd());
}

void RenoCc::on_congestion_signal(TcpSender& s, const AckEvent& /*ev*/) {
  // Classic ECN response (RFC 3168): halve at most once per window. Plain
  // TCP flows in the paper are not ECN-capable, so this path only runs when
  // a Reno sender is explicitly configured with ecn_capable = true.
  if (s.snd_una() <= cwr_seq_) return;
  cwr_seq_ = s.snd_nxt();
  s.set_ssthresh(std::max(s.cwnd() / 2.0, 2.0));
  s.set_cwnd(s.ssthresh());
  s.signal_cwr();
}

void RenoCc::on_loss(TcpSender& s, bool timeout) {
  if (timeout) {
    s.set_ssthresh(std::max(s.cwnd() / 2.0, 2.0));
    s.set_cwnd(s.config().min_cwnd);
  } else {
    s.set_ssthresh(std::max(s.cwnd() / 2.0, 2.0));
    s.set_cwnd(s.ssthresh());
  }
}

}  // namespace xmp::transport
