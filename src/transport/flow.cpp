#include "transport/flow.hpp"

#include "net/types.hpp"

namespace xmp::transport {

std::unique_ptr<CongestionControl> make_cc(const CcConfig& cfg) {
  switch (cfg.kind) {
    case CcConfig::Kind::Reno:
      return std::make_unique<RenoCc>();
    case CcConfig::Kind::Dctcp:
      return std::make_unique<DctcpCc>(cfg.dctcp);
    case CcConfig::Kind::Bos:
      return std::make_unique<BosCc>(cfg.bos);
  }
  return nullptr;  // unreachable
}

SenderConfig sender_config_for(const CcConfig& cfg) {
  SenderConfig sc;
  switch (cfg.kind) {
    case CcConfig::Kind::Reno:
      sc.ecn_capable = false;
      sc.min_cwnd = 1.0;
      break;
    case CcConfig::Kind::Dctcp:
      sc.ecn_capable = true;
      sc.min_cwnd = 1.0;
      break;
    case CcConfig::Kind::Bos:
      sc.ecn_capable = true;
      sc.min_cwnd = 2.0;  // paper: 2 segments is the cwnd floor
      break;
  }
  return sc;
}

ReceiverConfig receiver_config_for(const CcConfig& cfg) {
  ReceiverConfig rc;
  switch (cfg.kind) {
    case CcConfig::Kind::Reno:
      rc.codec = EcnCodec::None;
      break;
    case CcConfig::Kind::Dctcp:
      rc.codec = EcnCodec::Dctcp;
      break;
    case CcConfig::Kind::Bos:
      rc.codec = EcnCodec::XmpCounter;
      break;
  }
  return rc;
}

Flow::Flow(sim::Scheduler& sched, net::Host& src, net::Host& dst, const Config& cfg)
    : Flow{sched, sched, src, dst, cfg} {}

Flow::Flow(sim::Scheduler& src_sched, sim::Scheduler& dst_sched, net::Host& src, net::Host& dst,
           const Config& cfg)
    : sched_{src_sched}, id_{cfg.id}, size_bytes_{cfg.size_bytes} {
  const std::uint16_t tag = cfg.path_tag_explicit
                                ? cfg.path_tag
                                : static_cast<std::uint16_t>(net::mix64(cfg.id));

  source_ = std::make_unique<FixedSource>(net::segments_for_bytes(cfg.size_bytes),
                                          [this] { on_source_done(); });

  SenderConfig sc = sender_config_for(cfg.cc);
  if (cfg.tune_sender) cfg.tune_sender(sc);
  ReceiverConfig rc = receiver_config_for(cfg.cc);
  if (cfg.tune_receiver) cfg.tune_receiver(rc);

  receiver_ =
      std::make_unique<TcpReceiver>(dst_sched, dst, src.id(), cfg.id, /*subflow=*/0, tag, rc);
  sender_ = std::make_unique<TcpSender>(src_sched, src, dst.id(), cfg.id, /*subflow=*/0, tag,
                                        *source_, make_cc(cfg.cc), sc);
}

void Flow::start() {
  if (started_) return;
  started_ = true;
  start_time_ = sched_.now();
  sender_->start();
}

void Flow::on_source_done() {
  finished_ = true;
  finish_time_ = sched_.now();
  if (on_complete_) on_complete_();
}

void Flow::save_state(core::ckpt::Saver& s) const {
  s.b(started_);
  s.b(finished_);
  s.time(start_time_);
  s.time(finish_time_);
  source_->save_state(s);
  sender_->save_state(s);
  receiver_->save_state(s);
}

void Flow::restore_state(core::ckpt::Loader& l) {
  started_ = l.b();
  finished_ = l.b();
  start_time_ = l.time();
  finish_time_ = l.time();
  source_->restore_state(l);
  sender_->restore_state(l);
  receiver_->restore_state(l);
}

std::int64_t Flow::delivered_bytes() const {
  if (finished_) return size_bytes_;
  const std::int64_t bytes = source_->delivered() * net::kMssBytes;
  return bytes < size_bytes_ ? bytes : size_bytes_;
}

double Flow::goodput_bps() const {
  if (!finished_ || finish_time_ <= start_time_) return 0.0;
  return static_cast<double>(size_bytes_) * 8.0 / (finish_time_ - start_time_).sec();
}

}  // namespace xmp::transport
