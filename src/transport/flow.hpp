#pragma once

#include <functional>
#include <memory>

#include "net/network.hpp"
#include "transport/cc/bos.hpp"
#include "transport/cc/dctcp.hpp"
#include "transport/cc/reno.hpp"
#include "transport/receiver.hpp"
#include "transport/sender.hpp"

namespace xmp::transport {

/// Single-path congestion-control scheme selection.
struct CcConfig {
  enum class Kind { Reno, Dctcp, Bos };
  Kind kind = Kind::Reno;
  DctcpCc::Params dctcp;
  BosCc::Params bos;
};

/// Instantiate the policy object for a scheme.
[[nodiscard]] std::unique_ptr<CongestionControl> make_cc(const CcConfig& cfg);

/// Default sender knobs implied by a scheme (ECN capability, cwnd floor).
[[nodiscard]] SenderConfig sender_config_for(const CcConfig& cfg);

/// Default receiver knobs implied by a scheme (ECN echo codec).
[[nodiscard]] ReceiverConfig receiver_config_for(const CcConfig& cfg);

/// A single-path one-way transfer: source pool + sender at `src`, receiver
/// at `dst`. This is the paper's "small flow" as well as the DCTCP/TCP
/// large-flow baseline.
class Flow {
 public:
  struct Config {
    net::FlowId id = 0;
    std::int64_t size_bytes = 0;
    CcConfig cc;
    /// Path selector; by default derived from the flow id (per-flow ECMP).
    std::uint16_t path_tag = 0;
    bool path_tag_explicit = false;
    /// Optional overrides applied on top of the scheme defaults.
    std::function<void(SenderConfig&)> tune_sender;
    std::function<void(ReceiverConfig&)> tune_receiver;
  };

  Flow(sim::Scheduler& sched, net::Host& src, net::Host& dst, const Config& cfg);

  /// Sharded variant: the sender (and its timers) live on the source
  /// host's shard scheduler, the receiver (and its delayed-ACK timer) on
  /// the destination's. With the same scheduler twice this is exactly the
  /// serial constructor.
  Flow(sim::Scheduler& src_sched, sim::Scheduler& dst_sched, net::Host& src, net::Host& dst,
       const Config& cfg);

  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  /// Begin transmission now.
  void start();

  void set_on_complete(std::function<void()> fn) { on_complete_ = std::move(fn); }

  [[nodiscard]] bool complete() const { return finished_; }
  [[nodiscard]] sim::Time start_time() const { return start_time_; }
  [[nodiscard]] sim::Time finish_time() const { return finish_time_; }
  /// Average goodput over the flow lifetime, bits per second (0 until done).
  [[nodiscard]] double goodput_bps() const;
  [[nodiscard]] std::int64_t size_bytes() const { return size_bytes_; }
  /// Bytes delivered so far (== size_bytes() once complete).
  [[nodiscard]] std::int64_t delivered_bytes() const;

  /// Checkpoint progress plus the source pool, sender, and receiver. The
  /// completion callback is not saved — the owner (FlowManager) re-binds it
  /// after restore from its own record of why the flow exists.
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

  [[nodiscard]] TcpSender& sender() { return *sender_; }
  [[nodiscard]] const TcpSender& sender() const { return *sender_; }
  [[nodiscard]] TcpReceiver& receiver() { return *receiver_; }
  [[nodiscard]] net::FlowId id() const { return id_; }

 private:
  void on_source_done();

  sim::Scheduler& sched_;
  net::FlowId id_;
  std::int64_t size_bytes_;
  std::unique_ptr<FixedSource> source_;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
  sim::Time start_time_ = sim::Time::zero();
  sim::Time finish_time_ = sim::Time::zero();
  bool started_ = false;
  bool finished_ = false;
  std::function<void()> on_complete_;
};

}  // namespace xmp::transport
