#include "transport/sender.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::transport {

TcpSender::TcpSender(sim::Scheduler& sched, net::Host& local, net::NodeId remote,
                     net::FlowId flow, std::uint16_t subflow, std::uint16_t path_tag,
                     SegmentSource& source, std::unique_ptr<CongestionControl> cc,
                     const SenderConfig& cfg)
    : sched_{sched},
      local_{local},
      remote_{remote},
      flow_{flow},
      subflow_{subflow},
      path_tag_{path_tag},
      source_{source},
      cc_{std::move(cc)},
      cfg_{cfg},
      cwnd_{cfg.initial_cwnd} {
  assert(cc_ != nullptr);
}

TcpSender::~TcpSender() {
  cancel_rto();
  if (started_) local_.unregister_endpoint(flow_, subflow_, net::PacketType::Ack);
}

void TcpSender::start() {
  if (started_) return;
  started_ = true;
  local_.register_endpoint(flow_, subflow_, net::PacketType::Ack, *this);
  cc_->on_start(*this);
  pump();
}

void TcpSender::set_cwnd(double w) {
  cwnd_ = std::max(w, cfg_.min_cwnd);
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->cwnd(sched_.now(), flow_, static_cast<std::uint8_t>(subflow_), cwnd_);
  }
}

double TcpSender::instant_rate() const {
  if (srtt_ <= sim::Time::zero()) return 0.0;
  return cwnd_ / srtt_.sec();
}

std::int64_t TcpSender::effective_window() const {
  // Fast-recovery window inflation keeps the ack clock ticking (RFC 5681);
  // before recovery, Limited Transmit (RFC 3042) lets the first two
  // duplicate acks clock out new segments so small windows can still
  // gather the three dupacks needed for fast retransmit.
  const auto base = static_cast<std::int64_t>(cwnd_);
  if (in_recovery_) return base + dupacks_;
  return base + std::min<std::int64_t>(dupacks_, 2);
}

void TcpSender::halt() {
  halted_ = true;
  cancel_rto();
}

void TcpSender::rehome(std::uint16_t new_tag) {
  if (halted_) return;
  path_tag_ = new_tag;
  // The old estimator described the dead path; keep nothing. A zero srtt
  // also drops this subflow out of the coupling aggregates until the new
  // path produces a genuine sample.
  srtt_ = sim::Time::zero();
  rttvar_ = sim::Time::zero();
  rto_backoff_ = 0;
  dupacks_ = 0;
  in_recovery_ = false;
  if (!started_) return;
  if (inflight() > 0) {
    // Everything outstanding was addressed to the dead path; go-back-N it
    // onto the new one, head first.
    transmit_segment(snd_una_, /*retransmit=*/true);
    gbn_next_ = snd_una_ + 1;
    gbn_high_ = snd_nxt_;
    // The lazy RTO timer only ever pushes deadlines forward; resetting the
    // backoff shortens the deadline, so force a genuine re-arm.
    cancel_rto();
    arm_rto();
  } else {
    cancel_rto();
  }
  pump();
}

void TcpSender::pump() {
  if (!started_ || halted_) return;
  // Phase 1: go-back-N retransmissions after a timeout. The "pipe" during
  // this phase is what we have re-sent beyond the cumulative ack.
  while (gbn_next_ < gbn_high_ && gbn_next_ - snd_una_ < effective_window()) {
    transmit_segment(gbn_next_, /*retransmit=*/true);
    ++gbn_next_;
  }
  // Phase 2: new data.
  while (gbn_next_ >= gbn_high_ && inflight() < effective_window()) {
    if (source_.request_segments(1) == 0) break;
    transmit_segment(snd_nxt_, /*retransmit=*/false);
    ++snd_nxt_;
  }
  if (inflight() > 0 && rto_timer_ == sim::kInvalidEventId) arm_rto();
}

void TcpSender::transmit_segment(std::int64_t seq, bool retransmit) {
  net::Packet p;
  p.flow = flow_;
  p.subflow = subflow_;
  p.path_tag = path_tag_;
  p.type = net::PacketType::Data;
  p.ecn = cfg_.ecn_capable ? net::Ecn::Ect : net::Ecn::NotEct;
  p.src = local_.id();
  p.dst = remote_;
  p.size_bytes = net::kDataPacketBytes;
  p.seq = seq;
  p.retransmit = retransmit;
  if (cwr_pending_ && !retransmit) {
    p.cwr = true;
    cwr_pending_ = false;
  }
  // Karn's rule: never take RTT samples from retransmissions.
  p.ts = retransmit ? sim::Time::zero() : sched_.now();
  ++segments_sent_;
  if (retransmit) {
    ++retransmissions_;
    if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->retransmissions.inc();
  }
  local_.send(std::move(p));
}

void TcpSender::handle(net::Packet p) {
  assert(p.type == net::PacketType::Ack);
  if (halted_) return;  // dead subflow: late acks are noise
  if (p.ack > snd_una_) {
    on_new_ack(p);
  } else if (inflight() > 0) {
    on_dup_ack(p);
  }
  pump();
}

void TcpSender::on_new_ack(const net::Packet& p) {
  AckEvent ev;
  ev.newly_acked = p.ack - snd_una_;
  ev.ece = p.ece;
  ev.ce_count = p.ce_echo;
  if (p.ts > sim::Time::zero()) {
    ev.rtt_valid = true;
    ev.rtt = sched_.now() - p.ts;
    update_rtt(ev.rtt);
  }

  snd_una_ = p.ack;
  dupacks_ = 0;
  rto_backoff_ = 0;
  // Segments below the cumulative ack need no go-back-N retransmission.
  if (gbn_next_ < snd_una_) gbn_next_ = snd_una_;

  if (in_recovery_) {
    if (snd_una_ >= recover_) {
      in_recovery_ = false;  // full ack: recovery complete
    } else {
      // NewReno partial ack: the next hole is lost too — retransmit it and
      // stay in recovery.
      transmit_segment(snd_una_, /*retransmit=*/true);
    }
  }

  // Round bookkeeping (paper Fig. 2): a round ends when the cumulative ack
  // passes beg_seq; beg_seq is then re-armed at the current snd_nxt.
  if (snd_una_ > beg_seq_) {
    cc_->on_round_end(*this);
    beg_seq_ = snd_nxt_;
  }

  cc_->on_ack(*this, ev);
  if (ev.ece || ev.ce_count > 0) {
    ++ce_echoes_;
    cc_->on_congestion_signal(*this, ev);
  }

  source_.on_delivered(ev.newly_acked);
  if (observer_ != nullptr) observer_->on_sender_delivered(*this, ev.newly_acked);

  if (inflight() > 0) {
    arm_rto();  // restart on forward progress
  } else {
    cancel_rto();
  }
}

void TcpSender::on_dup_ack(const net::Packet& p) {
  ++dupacks_;
  // Congestion feedback riding on duplicate acks still counts (the marked
  // packet may be the out-of-order one that triggered the dupack).
  if (p.ece || p.ce_echo > 0) {
    AckEvent ev;
    ev.dupack = true;
    ev.ece = p.ece;
    ev.ce_count = p.ce_echo;
    ++ce_echoes_;
    cc_->on_congestion_signal(*this, ev);
  }
  if (!in_recovery_ && dupacks_ >= 3) enter_fast_recovery();
}

void TcpSender::enter_fast_recovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  ++fast_retransmits_;
  cc_->on_loss(*this, /*timeout=*/false);
  transmit_segment(snd_una_, /*retransmit=*/true);
  arm_rto();
}

void TcpSender::on_rto() {
  rto_timer_ = sim::kInvalidEventId;
  if (inflight() == 0) return;
  // Lazy timer: forward progress only pushed `rto_deadline_` instead of
  // rescheduling the event. If the real deadline is still ahead, re-arm.
  if (rto_deadline_ > sched_.now()) {
    rto_timer_ = sched_.schedule_at(rto_deadline_, [this] { on_rto(); });
    return;
  }
  ++timeouts_;
  ++rto_backoff_;
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->rto(sched_.now(), flow_, static_cast<std::uint8_t>(subflow_), rto_backoff_);
  }
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->timeouts.inc();
  dupacks_ = 0;
  in_recovery_ = false;
  cc_->on_loss(*this, /*timeout=*/true);
  // Go-back-N: presume the whole outstanding window lost; retransmit the
  // head now, the rest as the (collapsed) window re-opens via pump().
  transmit_segment(snd_una_, /*retransmit=*/true);
  gbn_next_ = snd_una_ + 1;
  gbn_high_ = snd_nxt_;
  arm_rto();
  if (observer_ != nullptr) observer_->on_sender_timeout(*this);
  pump();
}

void TcpSender::update_rtt(sim::Time sample) {
  if (srtt_ == sim::Time::zero()) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const sim::Time err = sample >= srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (rttvar_ * 3 + err) / 4;
    srtt_ = (srtt_ * 7 + sample) / 8;
  }
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->srtt(sched_.now(), flow_, static_cast<std::uint8_t>(subflow_), srtt_.us());
  }
}

sim::Time TcpSender::current_rto() const {
  sim::Time rto = cfg_.initial_rto;
  if (srtt_ > sim::Time::zero()) rto = srtt_ + rttvar_ * 4;
  if (rto < cfg_.rto_min) rto = cfg_.rto_min;
  // Exponential backoff on consecutive timeouts.
  for (int i = 0; i < rto_backoff_ && rto < cfg_.rto_max; ++i) rto = rto * 2;
  if (rto > cfg_.rto_max) rto = cfg_.rto_max;
  return rto;
}

void TcpSender::arm_rto() {
  rto_deadline_ = sched_.now() + current_rto();
  if (rto_timer_ == sim::kInvalidEventId) {
    rto_timer_ = sched_.schedule_at(rto_deadline_, [this] { on_rto(); });
  }
  // Otherwise the pending event fires at (or before) the old deadline and
  // re-arms itself against rto_deadline_ — no per-ack cancel/reschedule.
}

void TcpSender::cancel_rto() {
  if (rto_timer_ != sim::kInvalidEventId) {
    sched_.cancel(rto_timer_);
    rto_timer_ = sim::kInvalidEventId;
  }
}

void TcpSender::save_state(core::ckpt::Saver& s) const {
  s.u16(path_tag_);
  s.f64(cwnd_);
  s.f64(ssthresh_);
  s.i64(snd_una_);
  s.i64(snd_nxt_);
  s.i64(beg_seq_);
  s.i64(dupacks_);
  s.b(in_recovery_);
  s.i64(recover_);
  s.i64(gbn_next_);
  s.i64(gbn_high_);
  s.time(srtt_);
  s.time(rttvar_);
  s.i64(rto_backoff_);
  s.time(rto_deadline_);
  s.b(started_);
  s.b(halted_);
  s.b(cwr_pending_);
  s.u64(segments_sent_);
  s.u64(retransmissions_);
  s.u64(timeouts_);
  s.u64(fast_retransmits_);
  s.u64(ce_echoes_);
  const bool timer = rto_timer_ != sim::kInvalidEventId;
  s.b(timer);
  if (timer) {
    sim::Scheduler::PendingKey k;
    [[maybe_unused]] const bool live = sched_.key_of(rto_timer_, k);
    assert(live && "rto timer id stale");
    s.i64(k.t_ns);
    s.u64(k.seq);
  }
  cc_->save_state(s);
}

void TcpSender::restore_state(core::ckpt::Loader& l) {
  path_tag_ = l.u16();
  cwnd_ = l.f64();
  ssthresh_ = l.f64();
  snd_una_ = l.i64();
  snd_nxt_ = l.i64();
  beg_seq_ = l.i64();
  dupacks_ = static_cast<int>(l.i64());
  in_recovery_ = l.b();
  recover_ = l.i64();
  gbn_next_ = l.i64();
  gbn_high_ = l.i64();
  srtt_ = l.time();
  rttvar_ = l.time();
  rto_backoff_ = static_cast<int>(l.i64());
  rto_deadline_ = l.time();
  started_ = l.b();
  halted_ = l.b();
  cwr_pending_ = l.b();
  segments_sent_ = l.u64();
  retransmissions_ = l.u64();
  timeouts_ = l.u64();
  fast_retransmits_ = l.u64();
  ce_echoes_ = l.u64();
  // The construction-time registration does not exist for senders (start()
  // registers), so mirror the started side effect without pumping.
  if (started_) local_.register_endpoint(flow_, subflow_, net::PacketType::Ack, *this);
  if (l.b()) {
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    rto_timer_ = sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this] { on_rto(); });
  }
  cc_->restore_state(l);
}

}  // namespace xmp::transport
