#pragma once

#include <cstdint>
#include <memory>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "transport/congestion_control.hpp"
#include "transport/segment_source.hpp"

namespace xmp::transport {

struct SenderConfig {
  double initial_cwnd = 10.0;     ///< segments (Linux IW10 era, 2013)
  double min_cwnd = 1.0;          ///< 2.0 for XMP subflows (paper footnote 5)
  bool ecn_capable = false;       ///< data packets carry ECT
  sim::Time rto_min = sim::Time::milliseconds(200);  ///< the paper's RTOmin
  sim::Time rto_max = sim::Time::seconds(60.0);
  sim::Time initial_rto = sim::Time::milliseconds(200);
};

/// Observer hook for per-subflow telemetry and connection-level recovery.
class SenderObserver {
 public:
  virtual ~SenderObserver() = default;
  virtual void on_sender_delivered(const TcpSender& s, std::int64_t segments) = 0;
  /// Fired when this sender's retransmission timer expires (after the
  /// congestion response). MPTCP uses it for opportunistic reinjection.
  virtual void on_sender_timeout(const TcpSender& /*s*/) {}
};

/// Send side of one (sub)flow.
///
/// Implements the mechanical parts shared by every scheme — sequence space
/// (counted in MSS segments), cumulative/duplicate ack processing, RTT
/// estimation (RFC 6298 with the paper's RTOmin = 200 ms), retransmission
/// timer with exponential backoff, NewReno-style fast retransmit/recovery
/// with window inflation, and the paper's per-round bookkeeping (Fig. 2:
/// beg_seq / snd_nxt / snd_una) — and delegates all window sizing decisions
/// to a CongestionControl policy.
class TcpSender final : public net::Host::Endpoint {
 public:
  TcpSender(sim::Scheduler& sched, net::Host& local, net::NodeId remote, net::FlowId flow,
            std::uint16_t subflow, std::uint16_t path_tag, SegmentSource& source,
            std::unique_ptr<CongestionControl> cc, const SenderConfig& cfg);
  ~TcpSender() override;

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Begin transmitting (registers the ack endpoint and pumps the window).
  void start();

  /// Ack arrival (Host::Endpoint).
  void handle(net::Packet p) override;

  /// Re-evaluate the window and transmit what fits. Called internally after
  /// every ack; exposed for MPTCP so a sibling subflow's delivery can wake
  /// this one when connection-level data becomes available.
  void pump();

  /// Permanently stop this sender: cancel the retransmission timer and
  /// ignore any further acks and pump() calls. Used when MPTCP declares the
  /// subflow dead — the sender object stays alive (stats remain readable)
  /// but generates no more events. Irreversible.
  void halt();
  [[nodiscard]] bool halted() const { return halted_; }

  /// Move this subflow onto a new path (mptcp::PathManager): future packets
  /// carry `new_tag`, the RTT estimator and backoff restart from scratch
  /// (Karn-style — the new path's RTT is unknown), and the outstanding
  /// window is retransmitted go-back-N on the new path immediately.
  void rehome(std::uint16_t new_tag);
  [[nodiscard]] std::uint16_t path_tag() const { return path_tag_; }

  // --- congestion-control facing state ---
  [[nodiscard]] double cwnd() const { return cwnd_; }
  void set_cwnd(double w);
  [[nodiscard]] double ssthresh() const { return ssthresh_; }
  void set_ssthresh(double s) { ssthresh_ = s; }
  /// Linux semantics: slow start iff cwnd < ssthresh (equality is CA).
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }
  [[nodiscard]] sim::Time srtt() const { return srtt_; }
  /// Current virtual time (convenience for CC policies).
  [[nodiscard]] sim::Time now() const { return sched_.now(); }
  [[nodiscard]] bool has_rtt_sample() const { return srtt_ > sim::Time::zero(); }
  /// cwnd / srtt in segments per second; 0 before the first RTT sample.
  [[nodiscard]] double instant_rate() const;
  [[nodiscard]] const SenderConfig& config() const { return cfg_; }
  /// Stamp CWR on the next first-transmission data packet (RFC 3168: tells
  /// a Classic-codec receiver to stop setting ECE). Called by the CC policy
  /// when it reduces the window in response to an ECN echo.
  void signal_cwr() { cwr_pending_ = true; }
  [[nodiscard]] CongestionControl& cc() { return *cc_; }
  [[nodiscard]] const CongestionControl& cc() const { return *cc_; }

  // --- sequence state (paper Fig. 2) ---
  [[nodiscard]] std::int64_t snd_una() const { return snd_una_; }
  [[nodiscard]] std::int64_t snd_nxt() const { return snd_nxt_; }
  [[nodiscard]] std::int64_t inflight() const { return snd_nxt_ - snd_una_; }

  // --- stats ---
  [[nodiscard]] std::int64_t delivered_segments() const { return snd_una_; }
  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  /// Consecutive timeouts without forward progress (backoff exponent).
  [[nodiscard]] int rto_backoff() const { return rto_backoff_; }
  [[nodiscard]] std::uint64_t fast_retransmits() const { return fast_retransmits_; }
  [[nodiscard]] std::uint64_t ce_echoes() const { return ce_echoes_; }
  [[nodiscard]] bool idle() const { return snd_una_ == snd_nxt_; }
  [[nodiscard]] net::FlowId flow() const { return flow_; }
  [[nodiscard]] std::uint16_t subflow() const { return subflow_; }

  void set_observer(SenderObserver* obs) { observer_ = obs; }

  /// Checkpoint the full sender state, including the CC policy's and the
  /// pending RTO timer's (time, sequence) key. restore_state() expects a
  /// freshly constructed sender built from the same config: it registers
  /// the ack endpoint (when the saved sender had started) and re-arms the
  /// timer under its original key.
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  void transmit_segment(std::int64_t seq, bool retransmit);
  void on_new_ack(const net::Packet& p);
  void on_dup_ack(const net::Packet& p);
  void enter_fast_recovery();
  void on_rto();
  void update_rtt(sim::Time sample);
  void arm_rto();
  void cancel_rto();
  [[nodiscard]] sim::Time current_rto() const;
  [[nodiscard]] std::int64_t effective_window() const;

  sim::Scheduler& sched_;
  net::Host& local_;
  net::NodeId remote_;
  net::FlowId flow_;
  std::uint16_t subflow_;
  std::uint16_t path_tag_;
  SegmentSource& source_;
  std::unique_ptr<CongestionControl> cc_;
  SenderConfig cfg_;
  SenderObserver* observer_ = nullptr;

  // window
  double cwnd_;
  double ssthresh_ = 1e12;

  // sequence space (segments)
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;
  std::int64_t beg_seq_ = 0;  ///< round boundary marker (paper Fig. 2)

  // fast retransmit / recovery
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;

  // Go-back-N after a timeout (no SACK): everything in [gbn_next_,
  // gbn_high_) is presumed lost and is retransmitted as the window opens,
  // without consuming new source grants.
  std::int64_t gbn_next_ = 0;
  std::int64_t gbn_high_ = 0;

  // RTT / RTO (RFC 6298)
  sim::Time srtt_ = sim::Time::zero();
  sim::Time rttvar_ = sim::Time::zero();
  int rto_backoff_ = 0;  ///< consecutive timeouts (exponential backoff shift)
  sim::EventId rto_timer_ = sim::kInvalidEventId;
  sim::Time rto_deadline_ = sim::Time::zero();  ///< lazy-timer true deadline

  bool started_ = false;
  bool halted_ = false;
  bool cwr_pending_ = false;

  // stats
  std::uint64_t segments_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t fast_retransmits_ = 0;
  std::uint64_t ce_echoes_ = 0;
};

}  // namespace xmp::transport
