#pragma once

#include <cstdint>
#include <memory>

#include "core/checkpoint.hpp"
#include "sim/time.hpp"

namespace xmp::transport {

class TcpSender;

/// Everything a congestion controller learns from one acknowledgement.
struct AckEvent {
  std::int64_t newly_acked = 0;  ///< segments cumulatively acked by this packet
  bool dupack = false;
  bool ece = false;             ///< classic / DCTCP echo flag
  std::uint8_t ce_count = 0;    ///< XMP 2-bit codec: CEs echoed by this ack
  bool rtt_valid = false;
  sim::Time rtt = sim::Time::zero();
};

/// Pluggable congestion-control policy driven by TcpSender.
///
/// The sender owns cwnd/ssthresh and exposes them through accessors; the
/// policy mutates them from these hooks. Hook order for one ack mirrors the
/// paper's Algorithm 1:
///   1. on_round_end()           — iff the ack closes a round (ack > beg_seq)
///   2. on_ack()                 — every new (non-duplicate) ack
///   3. on_congestion_signal()   — iff the ack carries ECE / CE counts
/// Losses are reported separately via on_loss().
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_start(TcpSender& /*s*/) {}
  virtual void on_round_end(TcpSender& /*s*/) {}
  virtual void on_ack(TcpSender& s, const AckEvent& ev) = 0;
  virtual void on_congestion_signal(TcpSender& s, const AckEvent& ev) = 0;
  /// `timeout` true for RTO expiry, false for fast retransmit.
  virtual void on_loss(TcpSender& s, bool timeout) = 0;

  /// Checkpoint hooks: policies with state beyond cwnd/ssthresh (which the
  /// sender owns) serialize it here. Overrides must call their base class.
  virtual void save_state(core::ckpt::Saver& /*s*/) const {}
  virtual void restore_state(core::ckpt::Loader& /*l*/) {}

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace xmp::transport
