#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace xmp::transport {

/// How a receiver feeds congestion marks back to its sender.
enum class EcnCodec : std::uint8_t {
  None,        ///< sender is not ECN-capable (plain TCP, LIA)
  Classic,     ///< RFC 3168: sticky ECE until the sender's CWR arrives
  Dctcp,       ///< DCTCP's delayed-ACK state machine (ECE mirrors CE state)
  XmpCounter,  ///< XMP §2.1: ECE+CWR encode the exact count of CEs (0..3)
};

/// Receiver-side ECN echo state. Decides when a CE arrival forces an
/// immediate ack and stamps outgoing acks.
class EcnEchoState {
 public:
  explicit EcnEchoState(EcnCodec codec) : codec_{codec} {}

  /// Record an arriving data packet. Returns true when the codec requires
  /// an immediate acknowledgement (DCTCP: CE state changed — the pending
  /// delayed ack must be flushed *before* absorbing this packet's state).
  bool on_data(const net::Packet& p) {
    switch (codec_) {
      case EcnCodec::None:
        return false;
      case EcnCodec::Classic:
        if (p.ecn == net::Ecn::Ce) ece_latched_ = true;
        if (p.cwr) ece_latched_ = false;  // sender acknowledged the signal
        return false;
      case EcnCodec::Dctcp: {
        const bool ce = p.ecn == net::Ecn::Ce;
        if (ce != ce_state_) {
          pending_state_change_ = true;
          ce_state_ = ce;
          return true;
        }
        return false;
      }
      case EcnCodec::XmpCounter:
        if (p.ecn == net::Ecn::Ce) ++ce_pending_;
        return false;
    }
    return false;
  }

  /// Stamp an outgoing ack and reset per-ack state.
  void fill_ack(net::Packet& ack) {
    switch (codec_) {
      case EcnCodec::None:
        break;
      case EcnCodec::Classic:
        ack.ece = ece_latched_;
        break;
      case EcnCodec::Dctcp:
        // The flushed ack (sent on state change, before the new packet is
        // counted) must carry the *previous* state; subsequent acks carry
        // the current state.
        ack.ece = pending_state_change_ ? !ce_state_ : ce_state_;
        pending_state_change_ = false;
        break;
      case EcnCodec::XmpCounter: {
        const std::uint8_t n = ce_pending_ > 3 ? std::uint8_t{3} : static_cast<std::uint8_t>(ce_pending_);
        ack.ce_echo = n;
        ce_pending_ -= n;
        break;
      }
    }
  }

  /// Called by the receiver when a state-change flush was requested but no
  /// ack was pending (nothing to flush): the next ack then simply carries
  /// the current state.
  void drop_pending_state_change() { pending_state_change_ = false; }

  [[nodiscard]] EcnCodec codec() const { return codec_; }

  void save_state(core::ckpt::Saver& s) const {
    s.b(ece_latched_);
    s.b(ce_state_);
    s.b(pending_state_change_);
    s.u32(ce_pending_);
  }
  void restore_state(core::ckpt::Loader& l) {
    ece_latched_ = l.b();
    ce_state_ = l.b();
    pending_state_change_ = l.b();
    ce_pending_ = l.u32();
  }

 private:
  EcnCodec codec_;
  bool ece_latched_ = false;        // Classic
  bool ce_state_ = false;           // DCTCP
  bool pending_state_change_ = false;
  std::uint32_t ce_pending_ = 0;    // XMP
};

}  // namespace xmp::transport
