#pragma once

#include <cstdint>
#include <functional>

#include "core/checkpoint.hpp"

namespace xmp::transport {

/// Supplier of application data, counted in MSS segments.
///
/// Senders pull: each *new* (non-retransmitted) segment sent corresponds to
/// exactly one granted segment. For a single-path flow the source is the
/// flow itself; for MPTCP it is the connection-level pool shared by all
/// subflows.
class SegmentSource {
 public:
  virtual ~SegmentSource() = default;

  /// Grant up to `n` segments for first transmission; returns the number
  /// actually granted (0 when no data is currently available).
  [[nodiscard]] virtual std::int64_t request_segments(std::int64_t n) = 0;

  /// `n` previously granted segments were cumulatively acknowledged.
  virtual void on_delivered(std::int64_t n) = 0;
};

/// Fixed-size pool of segments with a completion callback — the common case.
class FixedSource final : public SegmentSource {
 public:
  using DoneFn = std::function<void()>;

  explicit FixedSource(std::int64_t total_segments, DoneFn on_done = nullptr)
      : remaining_{total_segments}, total_{total_segments}, on_done_{std::move(on_done)} {}

  std::int64_t request_segments(std::int64_t n) override {
    const std::int64_t granted = n < remaining_ ? n : remaining_;
    remaining_ -= granted;
    return granted;
  }

  void on_delivered(std::int64_t n) override {
    delivered_ += n;
    if (delivered_ >= total_ && on_done_) {
      auto done = std::move(on_done_);
      on_done_ = nullptr;
      done();
    }
  }

  /// Put `n` segments back into the pool without raising the completion
  /// target — MPTCP opportunistic reinjection: data stuck behind a stalled
  /// subflow's RTO is duplicated onto its siblings. Whichever copy arrives
  /// first completes the transfer; late duplicates are harmless.
  void refund(std::int64_t n) { remaining_ += n; }

  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] std::int64_t delivered() const { return delivered_; }
  [[nodiscard]] bool complete() const { return delivered_ >= total_; }

  /// Checkpoint the pool counters. The completion callback itself is
  /// construction state; when the saved source had already fired it, the
  /// restored callback is disarmed so completion cannot fire twice.
  void save_state(core::ckpt::Saver& s) const {
    s.i64(remaining_);
    s.i64(total_);
    s.i64(delivered_);
    s.b(on_done_ != nullptr);
  }
  void restore_state(core::ckpt::Loader& l) {
    remaining_ = l.i64();
    total_ = l.i64();
    delivered_ = l.i64();
    if (!l.b()) on_done_ = nullptr;
  }

 private:
  std::int64_t remaining_;
  std::int64_t total_;
  std::int64_t delivered_ = 0;
  DoneFn on_done_;
};

}  // namespace xmp::transport
