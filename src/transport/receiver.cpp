#include "transport/receiver.hpp"

namespace xmp::transport {

TcpReceiver::TcpReceiver(sim::Scheduler& sched, net::Host& local, net::NodeId remote,
                         net::FlowId flow, std::uint16_t subflow, std::uint16_t path_tag,
                         const ReceiverConfig& cfg)
    : sched_{sched},
      local_{local},
      remote_{remote},
      flow_{flow},
      subflow_{subflow},
      path_tag_{path_tag},
      cfg_{cfg},
      ecn_{cfg.codec} {
  local_.register_endpoint(flow_, subflow_, net::PacketType::Data, *this);
}

TcpReceiver::~TcpReceiver() {
  sched_.cancel(delack_timer_);
  local_.unregister_endpoint(flow_, subflow_, net::PacketType::Data);
}

void TcpReceiver::handle(net::Packet p) {
  // ECN bookkeeping first; DCTCP may require flushing the delayed ack with
  // the previous CE state before this packet is absorbed.
  if (ecn_.on_data(p)) {
    if (pending_acks_ > 0) {
      flush_pending(pending_ts_);
    } else {
      ecn_.drop_pending_state_change();
    }
  }

  if (p.seq == rcv_nxt_) {
    ++rcv_nxt_;
    // Pull any buffered continuation.
    auto it = out_of_order_.begin();
    bool filled_hole = false;
    while (it != out_of_order_.end() && *it == rcv_nxt_) {
      ++rcv_nxt_;
      it = out_of_order_.erase(it);
      filled_hole = true;
    }
    ++pending_acks_;
    if (pending_ts_ == sim::Time::zero()) pending_ts_ = p.ts;
    if (filled_hole || pending_acks_ >= cfg_.delack_segments) {
      flush_pending(pending_ts_);
    } else {
      arm_delack_timer();
    }
  } else if (p.seq > rcv_nxt_) {
    // Out of order: buffer and emit an immediate duplicate ack.
    out_of_order_.insert(p.seq);
    flush_pending(sim::Time::zero());
  } else {
    // Old duplicate (e.g. spurious retransmission): ack immediately.
    ++duplicates_;
    flush_pending(sim::Time::zero());
  }
}

void TcpReceiver::flush_pending(sim::Time ts_echo) {
  pending_acks_ = 0;
  pending_ts_ = sim::Time::zero();
  if (delack_timer_ != sim::kInvalidEventId) {
    sched_.cancel(delack_timer_);
    delack_timer_ = sim::kInvalidEventId;
  }
  send_ack(ts_echo);
}

void TcpReceiver::send_ack(sim::Time ts_echo) {
  net::Packet ack;
  ack.flow = flow_;
  ack.subflow = subflow_;
  ack.path_tag = path_tag_;
  ack.type = net::PacketType::Ack;
  ack.ecn = net::Ecn::NotEct;  // acks are never marked
  ack.src = local_.id();
  ack.dst = remote_;
  ack.size_bytes = net::kAckPacketBytes;
  ack.ack = rcv_nxt_;
  ack.ts = ts_echo;
  ecn_.fill_ack(ack);
  ++acks_sent_;
  local_.send(std::move(ack));
}

void TcpReceiver::arm_delack_timer() {
  if (delack_timer_ != sim::kInvalidEventId) return;
  delack_timer_ = sched_.schedule_in(cfg_.delack_timeout, [this] {
    delack_timer_ = sim::kInvalidEventId;
    if (pending_acks_ > 0) flush_pending(pending_ts_);
  });
}

}  // namespace xmp::transport
