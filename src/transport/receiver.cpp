#include "transport/receiver.hpp"

#include <cassert>

namespace xmp::transport {

TcpReceiver::TcpReceiver(sim::Scheduler& sched, net::Host& local, net::NodeId remote,
                         net::FlowId flow, std::uint16_t subflow, std::uint16_t path_tag,
                         const ReceiverConfig& cfg)
    : sched_{sched},
      local_{local},
      remote_{remote},
      flow_{flow},
      subflow_{subflow},
      path_tag_{path_tag},
      cfg_{cfg},
      ecn_{cfg.codec} {
  local_.register_endpoint(flow_, subflow_, net::PacketType::Data, *this);
}

TcpReceiver::~TcpReceiver() {
  sched_.cancel(delack_timer_);
  local_.unregister_endpoint(flow_, subflow_, net::PacketType::Data);
}

void TcpReceiver::handle(net::Packet p) {
  // ECN bookkeeping first; DCTCP may require flushing the delayed ack with
  // the previous CE state before this packet is absorbed.
  if (ecn_.on_data(p)) {
    if (pending_acks_ > 0) {
      flush_pending(pending_ts_);
    } else {
      ecn_.drop_pending_state_change();
    }
  }

  if (p.seq == rcv_nxt_) {
    ++rcv_nxt_;
    // Pull any buffered continuation.
    auto it = out_of_order_.begin();
    bool filled_hole = false;
    while (it != out_of_order_.end() && *it == rcv_nxt_) {
      ++rcv_nxt_;
      it = out_of_order_.erase(it);
      filled_hole = true;
    }
    ++pending_acks_;
    if (pending_ts_ == sim::Time::zero()) pending_ts_ = p.ts;
    if (filled_hole || pending_acks_ >= cfg_.delack_segments) {
      flush_pending(pending_ts_);
    } else {
      arm_delack_timer();
    }
  } else if (p.seq > rcv_nxt_) {
    // Out of order: buffer and emit an immediate duplicate ack.
    out_of_order_.insert(p.seq);
    flush_pending(sim::Time::zero());
  } else {
    // Old duplicate (e.g. spurious retransmission): ack immediately.
    ++duplicates_;
    flush_pending(sim::Time::zero());
  }
}

void TcpReceiver::flush_pending(sim::Time ts_echo) {
  pending_acks_ = 0;
  pending_ts_ = sim::Time::zero();
  if (delack_timer_ != sim::kInvalidEventId) {
    sched_.cancel(delack_timer_);
    delack_timer_ = sim::kInvalidEventId;
  }
  send_ack(ts_echo);
}

void TcpReceiver::send_ack(sim::Time ts_echo) {
  net::Packet ack;
  ack.flow = flow_;
  ack.subflow = subflow_;
  ack.path_tag = path_tag_;
  ack.type = net::PacketType::Ack;
  ack.ecn = net::Ecn::NotEct;  // acks are never marked
  ack.src = local_.id();
  ack.dst = remote_;
  ack.size_bytes = net::kAckPacketBytes;
  ack.ack = rcv_nxt_;
  ack.ts = ts_echo;
  ecn_.fill_ack(ack);
  ++acks_sent_;
  local_.send(std::move(ack));
}

void TcpReceiver::arm_delack_timer() {
  if (delack_timer_ != sim::kInvalidEventId) return;
  delack_timer_ = sched_.schedule_in(cfg_.delack_timeout, [this] {
    delack_timer_ = sim::kInvalidEventId;
    if (pending_acks_ > 0) flush_pending(pending_ts_);
  });
}

void TcpReceiver::save_state(core::ckpt::Saver& s) const {
  s.u16(path_tag_);
  ecn_.save_state(s);
  s.i64(rcv_nxt_);
  s.u64(out_of_order_.size());
  for (const std::int64_t seq : out_of_order_) s.i64(seq);
  s.i64(pending_acks_);
  s.time(pending_ts_);
  s.u64(acks_sent_);
  s.u64(duplicates_);
  const bool timer = delack_timer_ != sim::kInvalidEventId;
  s.b(timer);
  if (timer) {
    sim::Scheduler::PendingKey k;
    [[maybe_unused]] const bool live = sched_.key_of(delack_timer_, k);
    assert(live && "delack timer id stale");
    s.i64(k.t_ns);
    s.u64(k.seq);
  }
}

void TcpReceiver::restore_state(core::ckpt::Loader& l) {
  path_tag_ = l.u16();
  ecn_.restore_state(l);
  rcv_nxt_ = l.i64();
  const std::uint64_t n_ooo = l.u64();
  for (std::uint64_t i = 0; i < n_ooo && l.ok(); ++i) out_of_order_.insert(l.i64());
  pending_acks_ = static_cast<int>(l.i64());
  pending_ts_ = l.time();
  acks_sent_ = l.u64();
  duplicates_ = l.u64();
  if (l.b()) {
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    delack_timer_ = sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this] {
      delack_timer_ = sim::kInvalidEventId;
      if (pending_acks_ > 0) flush_pending(pending_ts_);
    });
  }
}

}  // namespace xmp::transport
