#pragma once

#include <cstdint>
#include <set>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "transport/ecn_codec.hpp"

namespace xmp::transport {

struct ReceiverConfig {
  EcnCodec codec = EcnCodec::None;
  /// Cumulative-ack coalescing factor ("Delayed ACKs": one ack per this
  /// many in-order segments).
  int delack_segments = 2;
  /// Flush a pending delayed ack after this much quiet time.
  sim::Time delack_timeout = sim::Time::milliseconds(1);
};

/// Receive side of one (sub)flow: in-order tracking with an out-of-order
/// buffer, delayed acks, duplicate acks on reordering, and per-scheme ECN
/// echo. Unlimited reassembly buffer (as configured in the paper).
class TcpReceiver final : public net::Host::Endpoint {
 public:
  TcpReceiver(sim::Scheduler& sched, net::Host& local, net::NodeId remote, net::FlowId flow,
              std::uint16_t subflow, std::uint16_t path_tag, const ReceiverConfig& cfg);
  ~TcpReceiver() override;

  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  void handle(net::Packet p) override;

  /// Re-tag outgoing acks (mptcp::PathManager re-homed the subflow; acks
  /// must follow the data onto the surviving path).
  void set_path_tag(std::uint16_t tag) { path_tag_ = tag; }
  [[nodiscard]] std::uint16_t path_tag() const { return path_tag_; }

  /// Next expected in-order segment.
  [[nodiscard]] std::int64_t rcv_nxt() const { return rcv_nxt_; }
  /// Segments accepted in order (goodput seen by the application).
  [[nodiscard]] std::int64_t delivered_segments() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t duplicates_seen() const { return duplicates_; }

  /// Checkpoint the reassembly/ack state including the ECN echo machine and
  /// the pending delayed-ack timer's key. The data endpoint registration is
  /// construction-time (the restoring run's constructor already did it).
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  void send_ack(sim::Time ts_echo);
  void flush_pending(sim::Time ts_echo);
  void arm_delack_timer();

  sim::Scheduler& sched_;
  net::Host& local_;
  net::NodeId remote_;
  net::FlowId flow_;
  std::uint16_t subflow_;
  std::uint16_t path_tag_;
  ReceiverConfig cfg_;
  EcnEchoState ecn_;

  std::int64_t rcv_nxt_ = 0;
  std::set<std::int64_t> out_of_order_;
  int pending_acks_ = 0;                 ///< in-order segments not yet acked
  sim::Time pending_ts_ = sim::Time::zero();  ///< earliest unechoed timestamp
  sim::EventId delack_timer_ = sim::kInvalidEventId;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace xmp::transport
