#pragma once

// Versioned, CRC-verified simulation checkpoints (DESIGN.md §12).
//
// A checkpoint is a single `ckpt_<seq>.bin` file: a fixed header (magic,
// format version, config fingerprint, sim time, sequence number, cumulative
// write totals) followed by a CRC32-protected payload of tagged per-module
// sections. Files are published atomically (trace/atomic_file), so a crash
// mid-write leaves either the previous complete checkpoint or nothing.
//
// The Saver/Loader serialization primitives are header-only on purpose:
// transport/net/workload classes implement save_state()/restore_state()
// member hooks against them without creating a link cycle back into
// xmp_core (which already links every other library). Only the file-level
// API (write/read/probe/scan) lives in checkpoint.cpp.
//
// The Loader never throws and never reads out of bounds: any structural
// mismatch (short buffer, wrong section tag) sets a sticky error flag and
// every subsequent read returns zero. Callers check ok() once at the end —
// a corrupted-but-CRC-valid payload (impossible short of a CRC collision)
// degrades to a clean "invalid checkpoint" rejection, never UB.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace xmp::core {
struct ExperimentConfig;
}

namespace xmp::core::ckpt {

inline constexpr std::uint32_t kFormatVersion = 2;

/// Bytes before the payload: magic + version + fingerprint + t_ns + seq +
/// prev_written + prev_bytes + payload size + crc32. A checkpoint file is
/// exactly kHeaderBytes + payload bytes long.
inline constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 4;

/// CRC-32 (IEEE 802.3, reflected) over a byte range.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n);

/// Little-endian append-only serializer for checkpoint payloads.
class Saver {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }  // raw bits: restore is exact
  void time(sim::Time t) { i64(t.ns()); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  /// Four-character section marker; the Loader verifies it in order, so a
  /// save/restore structural mismatch is caught at the exact section.
  void tag(const char t[5]) { buf_.append(t, 4); }

  [[nodiscard]] const std::string& data() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) { buf_.append(static_cast<const char*>(p), n); }
  std::string buf_;
};

/// Bounds-checked little-endian reader with a sticky error flag.
class Loader {
 public:
  Loader(const void* data, std::size_t n)
      : p_{static_cast<const char*>(data)}, n_{n} {}
  explicit Loader(const std::string& s) : Loader(s.data(), s.size()) {}

  [[nodiscard]] bool ok() const { return ok_; }
  /// Fully consumed and error-free (trailing bytes mean a version skew).
  [[nodiscard]] bool done() const { return ok_ && off_ == n_; }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  bool b() { return u8() != 0; }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v = 0;
    raw(&v, sizeof v);
    return v;
  }
  sim::Time time() { return sim::Time::nanoseconds(i64()); }
  std::string str() {
    const std::uint64_t n = u64();
    if (!ok_ || n > n_ - off_) {
      ok_ = false;
      return {};
    }
    std::string s{p_ + off_, static_cast<std::size_t>(n)};
    off_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Consume and verify a section marker written by Saver::tag().
  void tag(const char t[5]) {
    char got[4] = {};
    raw(got, 4);
    if (ok_ && std::memcmp(got, t, 4) != 0) ok_ = false;
  }

 private:
  void raw(void* out, std::size_t n) {
    if (!ok_ || n > n_ - off_) {
      ok_ = false;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, p_ + off_, n);
    off_ += n;
  }

  const char* p_;
  std::size_t n_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

/// Fixed checkpoint file header (everything before the payload).
struct Header {
  std::uint32_t version = kFormatVersion;
  std::uint64_t fingerprint = 0;  ///< hash of the determinism-relevant config
  std::int64_t t_ns = 0;          ///< sim time of the quiescent point
  std::uint64_t seq = 0;          ///< checkpoint ordinal within the run (1-based)
  /// Cumulative checkpoint-write totals *before* this file, so a restored
  /// run reconstructs harness.ckpt.written/bytes exactly (this file itself
  /// contributes +1 and +its own size).
  std::uint64_t prev_written = 0;
  std::uint64_t prev_bytes = 0;
};

/// "ckpt_<seq>.bin"
[[nodiscard]] std::string file_name(std::uint64_t seq);

/// Serialize header+payload and publish atomically. Returns false (with a
/// one-line *error) on I/O failure.
bool write_file(const std::string& path, const Header& h, const std::string& payload,
                std::string* error = nullptr);

/// Read and fully verify a checkpoint file: magic, format version, CRC over
/// the payload, and — when `expect_fingerprint` is nonzero — the config
/// fingerprint. On any mismatch returns false with a one-line diagnostic in
/// *error; never throws, never crashes on truncated or bit-flipped input.
bool read_file(const std::string& path, std::uint64_t expect_fingerprint, Header& h,
               std::string& payload, std::string* error = nullptr);

/// read_file() without retaining the payload: cheap validity probe used to
/// pick a restore candidate.
bool probe_file(const std::string& path, std::uint64_t expect_fingerprint, Header& h,
                std::string* error = nullptr);

/// Scan `dir` for the newest (highest-seq) checkpoint that passes
/// probe_file(). Returns the empty string when none qualifies; invalid
/// candidates are reported one line each on stderr when `verbose`.
[[nodiscard]] std::string newest_valid(const std::string& dir, std::uint64_t expect_fingerprint,
                                       bool verbose = false);

/// Hash of the determinism-relevant parts of an ExperimentConfig: workload,
/// topology, scheme, routing, faults, seeds, and whether the sharded engine
/// runs (its equal-timestamp tie order differs from serial). Observability
/// outputs, invariant checking and the checkpoint settings themselves are
/// deliberately excluded so `xmpsim replay --restore` can add --trace /
/// --invariants to a checkpoint taken without them.
[[nodiscard]] std::uint64_t config_fingerprint(const ExperimentConfig& cfg);

}  // namespace xmp::core::ckpt
