#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/job_manifest.hpp"

namespace xmp::obs {
class MetricsRegistry;
class TimelineTracer;
}  // namespace xmp::obs

namespace xmp::core {

/// Knobs of one resilient sweep campaign.
struct OrchestratorConfig {
  std::string campaign_dir;     ///< manifest + per-job result files live here
  unsigned workers = 0;         ///< concurrent child processes; 0 = hardware cores
  double job_timeout_s = 0.0;   ///< wall-clock watchdog per attempt; 0 = none
  int retries = 2;              ///< extra attempts after a failed first run
  double backoff_base_s = 0.5;  ///< exponential backoff base (see retry_backoff_s)
  bool strict = false;          ///< caller policy: incomplete campaign = failure

  /// Optional harness observability. Counters land under "harness.*"; the
  /// tracer gets job-lifecycle events (cat::kHarness) stamped with
  /// wall-clock time since the campaign started.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TimelineTracer* tracer = nullptr;

  /// Granularity of the reap/watchdog loop. Only tests tune this.
  double poll_interval_s = 0.002;
};

/// The numbers salvaged from one job's result file (job_<i>.json), written
/// by the child and parsed back by the parent. The aggregate sweep table is
/// built *only* from these files — never from in-memory state — so a
/// resumed campaign aggregates byte-identically to an uninterrupted one.
struct JobResult {
  double value = 0.0;  ///< swept parameter value (filled from the manifest)
  double goodput_mbps = 0.0;
  std::uint64_t events = 0;
  std::uint64_t flows = 0;
  std::uint64_t completed_flows = 0;
  std::uint64_t aborted_flows = 0;

  /// FCT-slowdown quantiles parsed back from the job file (Workload runs;
  /// `has_fct` false otherwise). Mirrors ExperimentResults::FctStats.
  struct FctQuantiles {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  bool has_fct = false;
  double fct_load = 0.0;
  std::uint64_t fct_completed = 0;
  std::uint64_t fct_censored = 0;
  FctQuantiles fct_all;
  std::array<FctQuantiles, ExperimentResults::FctStats::kBins> fct_bins;
};

/// Final shape of a campaign: every job either salvaged a result or is
/// listed in `incomplete` (state Exhausted in `jobs`).
struct CampaignOutcome {
  std::vector<JobEntry> jobs;                     ///< final manifest rows
  std::vector<std::optional<JobResult>> results;  ///< indexed like the grid
  std::vector<std::size_t> incomplete;            ///< jobs with no salvageable result
  [[nodiscard]] bool complete() const { return incomplete.empty(); }
};

/// Crash-isolated sweep campaign driver.
///
/// Each grid point runs in a forked child process: a segfault, OOM kill,
/// std::terminate or runaway loop in one job can never take down the
/// campaign or its siblings. The parent is a single-threaded reap loop —
/// spawn up to `workers` children, waitpid(WNOHANG) each, SIGKILL any that
/// outlive the watchdog, and respawn failures after a deterministic
/// exponential backoff — which sidesteps every fork-vs-threads hazard
/// (ParallelRunner's in-process thread pool remains the fast path for
/// trusted sweeps without isolation).
///
/// The manifest is rewritten atomically after every state transition, so
/// SIGKILLing the *campaign* at any instant leaves a resumable directory.
class Orchestrator {
 public:
  /// Body of one job attempt, run inside the forked child; its return value
  /// becomes the child's exit status. The default body is run_sweep_job().
  /// Tests substitute hostile bodies (hang, abort, exit non-zero).
  using ChildFn = std::function<int(std::size_t index, const ExperimentConfig& cfg,
                                    const std::string& result_path, int attempt)>;

  explicit Orchestrator(OrchestratorConfig cfg);

  /// Run the campaign to quiescence: every job ends Succeeded or Exhausted.
  /// `manifest.jobs` must have one entry per grid config (index and value
  /// filled in). Entries already Succeeded with a parseable result file are
  /// skipped — that is what makes --resume cheap; all other states are
  /// reset to Pending and re-run.
  CampaignOutcome run(const std::vector<ExperimentConfig>& grid, JobManifest& manifest,
                      const ChildFn& child = {});

 private:
  OrchestratorConfig cfg_;
};

/// Default child body: run_experiment(cfg), write the job result JSON
/// atomically to `result_path`. Returns 0, or 3 when invariant checking
/// found violations, or 4 on an exception.
int run_sweep_job(std::size_t index, const ExperimentConfig& cfg, const std::string& result_path);

/// Result-file name for grid point `index`: "job_<index>.json".
[[nodiscard]] std::string job_result_file(std::size_t index);

/// Parse a result file written by run_sweep_job. `value` is left at 0 (the
/// manifest owns it). Returns false and sets *error on missing/malformed
/// files — the caller treats that attempt as failed.
bool load_job_result(const std::string& path, JobResult& out, std::string* error = nullptr);

}  // namespace xmp::core
