#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"
#include "faults/fault_controller.hpp"
#include "net/handoff.hpp"
#include "net/network.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "route/route_manager.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "stats/probes.hpp"
#include "workload/permutation.hpp"

// The sharded conservative-sync engine (DESIGN.md §11).
//
// The fabric is partitioned into one *logical* shard per pod (plus the
// round-robin core assignment) at topology-construction time; cfg.shards
// only sizes the worker pool, so every run is bit-identical across worker
// counts by construction. Shards advance in epochs of length
//
//   L = min cross-shard propagation delay  (the lookahead),
//
// executing events strictly before the epoch boundary in parallel: a packet
// another shard sends during the same epoch cannot arrive earlier than
// epoch_start + L, so nothing a shard runs inside the window can be
// invalidated. At the barrier, parked cross-shard packets are drained in a
// fixed (dst, src, FIFO) merge order, every clock advances to the boundary,
// and the control strand (RTT probe, fault plan, route manager) runs with
// the whole fabric quiesced.
//
// Global transitions — a Permutation round flip fans flow construction out
// to every shard — must not run mid-epoch on a worker thread. The workload
// defers a round completion that lands inside a parallel epoch and flags
// the engine, which discards the attempt and replays it from scratch with
// that epoch pinned serial (micro-stepped in global (t, control-first,
// shard-index) order). A cheap gate makes replays rare: once a round has
// at most one flow left, the engine micro-steps until the next round is in
// full flight again.

namespace xmp::core {

namespace {

struct EpochStats {
  std::uint64_t epochs = 0;
  std::uint64_t barriers = 0;
  std::uint64_t handoff_packets = 0;
  std::uint64_t micro_steps = 0;
};

struct AttemptOutcome {
  bool ok = true;
  std::int64_t failed_epoch_start_ns = 0;  ///< epoch to pin serial on replay
  ExperimentResults res;
};

/// A checkpoint image read once by run_experiment_sharded and restored by
/// every attempt (replayed attempts re-restore the same bytes, so the
/// abort-and-replay gate composes with --restore).
struct RestoreImage {
  ckpt::Header h;
  std::string payload;
};

AttemptOutcome attempt(const ExperimentConfig& cfg, const std::set<std::int64_t>& forced,
                       WorkerPool& pool, std::uint64_t replays, const RestoreImage* restore) {
  AttemptOutcome out;

  // --- observation: one tracer per shard plus one for the control strand
  // (merged deterministically at export); a single registry whose
  // instruments are relaxed atomics shared by every thread ---
  std::unique_ptr<obs::TimelineTracer> control_tracer;
  std::vector<std::unique_ptr<obs::TimelineTracer>> shard_tracers;
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::SimMetrics> sim_metrics;
  if (cfg.obs.tracing()) {
    obs::TimelineTracer::Config oc;
    oc.capacity = cfg.obs.capacity;
    oc.categories = cfg.obs.categories;
    control_tracer = std::make_unique<obs::TimelineTracer>(oc);
  }
  if (cfg.obs.enabled()) {
    registry = std::make_unique<obs::MetricsRegistry>();
    sim_metrics = std::make_unique<obs::SimMetrics>(*registry);
  }
  // The engine thread observes as the control strand for the whole attempt
  // (epoch/barrier markers, serial micro-steps, control events).
  obs::ObservationScope scope{control_tracer.get(), sim_metrics.get()};

  // --- world construction (identical order to the serial engine, so every
  // NodeId/LinkId and the full creation sequence match byte for byte) ---
  sim::Scheduler control;
  net::Network netw{control};

  topo::FatTree::Config tc;
  tc.k = cfg.fat_tree_k;
  tc.queue.kind = net::QueueConfig::Kind::EcnThreshold;
  tc.queue.capacity_packets = cfg.queue_capacity;
  tc.queue.mark_threshold = cfg.mark_threshold;

  net::ShardFabric fabric{tc.k};
  netw.set_shard_fabric(&fabric);
  topo::FatTree tree{netw, tc};
  const int n_shards = fabric.n_shards();

  if (control_tracer) {
    shard_tracers.reserve(static_cast<std::size_t>(n_shards));
    for (int s = 0; s < n_shards; ++s) {
      obs::TimelineTracer::Config oc;
      oc.capacity = cfg.obs.capacity;
      oc.categories = cfg.obs.categories;
      shard_tracers.push_back(std::make_unique<obs::TimelineTracer>(oc));
    }
    for (int l = 0; l < 3; ++l) {
      const auto layer = static_cast<topo::FatTree::Layer>(l);
      for (const net::Link* link : tree.links(layer)) {
        control_tracer->name_link(link->id(), std::string{topo::FatTree::layer_name(layer)} +
                                                  " link " + std::to_string(link->id()));
      }
    }
  }

  route::RouteManager routes{control, netw, cfg.routing};
  routes.install_all();

  sim::Rng rng{cfg.seed};

  workload::FlowManager flows_a{control, cfg.scheme};
  flows_a.set_schedulers([&netw, &fabric, &tree](int host) -> sim::Scheduler& {
    return fabric.sched(netw.shard_of(tree.host(host)));
  });

  std::unique_ptr<faults::FaultController> fault_ctl;
  if (!cfg.fault_plan.empty()) {
    faults::FaultController::Config fcc;
    fcc.seed = cfg.fault_seed;
    fault_ctl = std::make_unique<faults::FaultController>(control, netw, cfg.fault_plan, fcc);
    // arm() is deferred to the restore-or-fresh branch below.
  }

  // --- workload (Permutation only; the caller asserted the pattern) ---
  bool done = false;
  sim::Time final_time = cfg.duration;
  workload::PermutationTraffic::Config pc;
  pc.min_bytes = cfg.perm_min_bytes;
  pc.max_bytes = cfg.perm_max_bytes;
  pc.rounds = cfg.permutation_rounds;
  auto perm = std::make_unique<workload::PermutationTraffic>(control, tree, flows_a, rng.split(),
                                                             pc);
  perm->set_on_done([&done, &final_time, &control] {
    done = true;
    // Fires inside a serial micro-step: the dispatching scheduler's clock
    // is the exact completion instant (the serial engine's sched.now()).
    sim::Scheduler* cs = sim::current_scheduler();
    final_time = cs != nullptr ? cs->now() : control.now();
  });
  // start() is deferred to the restore-or-fresh branch below.

  // --- probes (control strand; they run with the fabric quiesced) ---
  ExperimentResults res;

  stats::GaugeProbe rtt_tick{control, cfg.rtt_sample_interval, [&] {
    flows_a.for_each_active_large_sender(
        [&](const workload::FlowRecord& rec, const transport::TcpSender& s) {
          if (!s.has_rtt_sample()) return;
          const auto cat = tree.category(rec.src_host, rec.dst_host);
          res.rtt_by_category[static_cast<int>(cat)].add(s.srtt().ms());
        });
    return 0.0;
  }};

  stats::UtilizationWindow util{control};
  std::vector<net::Link*> all_links;
  std::array<std::pair<std::size_t, std::size_t>, 3> layer_ranges;
  {
    std::size_t off = 0;
    for (int l = 0; l < 3; ++l) {
      const auto& ls = tree.links(static_cast<topo::FatTree::Layer>(l));
      all_links.insert(all_links.end(), ls.begin(), ls.end());
      layer_ranges[l] = {off, off + ls.size()};
      off += ls.size();
    }
  }

  // --- the epoch engine ---
  const sim::Time horizon = cfg.duration;
  // A fabric with no cross-shard links has unbounded lookahead; one epoch
  // spans the whole horizon. (Unreachable for a Fat-Tree, where pods only
  // connect through cores, but it keeps the math total.)
  const sim::Time lookahead = fabric.has_cross_links()
                                  ? fabric.lookahead()
                                  : horizon + sim::Time::nanoseconds(1);
  EpochStats stats;

  auto all_clocks_to = [&](sim::Time t) {
    for (int s = 0; s < n_shards; ++s) fabric.sched(s).advance_clock_to(t);
    control.advance_clock_to(t);
  };

  // The strand with the earliest pending event; the control strand wins
  // ties, then ascending shard index — the canonical order that keeps
  // serial segments a pure function of simulation state.
  auto earliest = [&](sim::Time& t_out) -> sim::Scheduler* {
    sim::Scheduler* who = nullptr;
    sim::Time best = control.next_time();
    if (best < sim::Time::infinity()) who = &control;
    for (int s = 0; s < n_shards; ++s) {
      sim::Scheduler& ss = fabric.sched(s);
      const sim::Time t = ss.next_time();
      if (t < best) {
        best = t;
        who = &ss;
      }
    }
    t_out = best;
    return who;
  };

  std::uint32_t epoch_idx = 0;

  // --- checkpoint plumbing (DESIGN.md §12; sharded payload layout) ---
  // Snapshots happen only at barriers, where handoff channels are drained
  // and every clock is aligned — the sharded engine's quiescent points.
  const bool ckpt_on = cfg.checkpoint.enabled();
  const std::uint64_t fp = ckpt_on ? ckpt::config_fingerprint(cfg) : 0;
  std::uint64_t ckpt_seq = 0;      // last sequence number used
  std::uint64_t ckpt_written = 0;  // lineage-cumulative snapshot count
  std::uint64_t ckpt_bytes = 0;    // lineage-cumulative snapshot bytes

  const workload::FlowManager::BindFn bind =
      [&](const workload::CallbackTag& tag) -> std::function<void()> {
    if (tag.kind == workload::CallbackTag::kPermutation) {
      return [g = perm.get()] { g->restored_flow_done(); };
    }
    return nullptr;  // the CLI gates the sharded engine to Permutation
  };

  auto save_tracer = [](ckpt::Saver& s, const obs::TimelineTracer& t) {
    s.u64(t.size());
    t.for_each([&](const obs::TimelineEvent& e) {
      s.i64(e.t_ns);
      s.f64(e.a);
      s.f64(e.b);
      s.u32(e.id);
      s.u8(static_cast<std::uint8_t>(e.kind));
      s.u8(e.subflow);
      s.u16(e.aux);
    });
    s.u64(t.dropped());
  };
  // Consumes one tracer section; applies it when `t` is non-null (presence
  // flags let an untraced checkpoint be replayed with --trace and vice versa).
  auto load_tracer = [](ckpt::Loader& l, obs::TimelineTracer* t) {
    const std::uint64_t ne = l.u64();
    std::vector<obs::TimelineEvent> evs;
    for (std::uint64_t i = 0; i < ne && l.ok(); ++i) {
      obs::TimelineEvent e;
      e.t_ns = l.i64();
      e.a = l.f64();
      e.b = l.f64();
      e.id = l.u32();
      e.kind = static_cast<obs::EventKind>(l.u8());
      e.subflow = l.u8();
      e.aux = l.u16();
      evs.push_back(e);
    }
    const std::uint64_t ev_dropped = l.u64();
    if (t != nullptr && l.ok()) t->restore_snapshot(evs, ev_dropped);
  };

  auto save_world = [&](ckpt::Saver& s) {
    s.tag("SCHD");
    s.time(control.now());
    s.u64(control.next_seq());
    s.u64(control.dispatched());
    s.tag("SHRD");
    s.u64(static_cast<std::uint64_t>(n_shards));
    for (int sh = 0; sh < n_shards; ++sh) {
      const sim::Scheduler& ss = fabric.sched(sh);
      s.time(ss.now());
      s.u64(ss.next_seq());
      s.u64(ss.dispatched());
    }
    s.tag("LNKS");
    s.u64(netw.links().size());
    for (const auto& l : netw.links()) {
      l->save_state(s, l->is_boundary() ? &fabric.sched(netw.link_dst_shard(l->id())) : nullptr);
    }
    s.tag("SWCH");
    s.u64(netw.switches().size());
    for (const net::Switch* sw : netw.switches()) sw->save_state(s);
    s.tag("HOST");
    s.u64(netw.hosts().size());
    for (const net::Host* h : netw.hosts()) h->save_state(s);
    s.tag("RTEM");
    routes.save_state(s);
    s.tag("FLTC");
    s.b(fault_ctl != nullptr);
    if (fault_ctl) fault_ctl->save_state(s);
    s.tag("FLWA");
    flows_a.save_state(s);
    s.tag("WKLD");
    perm->save_state(s);
    s.tag("PROB");
    rtt_tick.save_state(s);
    util.save_state(s);
    // The RTT gauge accumulates into the results object, not the probe, so
    // its pre-checkpoint samples must ride along explicitly.
    for (const auto& d : res.rtt_by_category) d.save_state(s);
    // Epoch accounting rides along so a resumed run's summary (epochs,
    // barriers, micro-steps) matches an uninterrupted run's. `replays` is
    // process-local by design and deliberately not saved.
    s.tag("SHST");
    s.u64(stats.epochs);
    s.u64(stats.barriers);
    s.u64(stats.handoff_packets);
    s.u64(stats.micro_steps);
    s.u32(epoch_idx);
    s.tag("OBSV");
    s.b(control_tracer != nullptr);
    if (control_tracer) {
      save_tracer(s, *control_tracer);
      s.u64(shard_tracers.size());
      for (const auto& t : shard_tracers) save_tracer(s, *t);
    }
    s.b(registry != nullptr);
    if (registry) registry->save_state(s);
  };

  auto restore_world = [&](ckpt::Loader& l) -> bool {
    l.tag("SCHD");
    {
      const sim::Time now = l.time();
      const std::uint64_t next_seq = l.u64();
      const std::uint64_t disp = l.u64();
      if (!l.ok()) return false;
      control.restore_clock(now, next_seq, disp);
    }
    l.tag("SHRD");
    if (l.u64() != static_cast<std::uint64_t>(n_shards)) return false;
    for (int sh = 0; sh < n_shards && l.ok(); ++sh) {
      const sim::Time now = l.time();
      const std::uint64_t next_seq = l.u64();
      const std::uint64_t disp = l.u64();
      if (!l.ok()) return false;
      fabric.sched(sh).restore_clock(now, next_seq, disp);
    }
    l.tag("LNKS");
    const std::uint64_t nl = l.u64();
    if (l.ok() && nl != netw.links().size()) return false;
    for (std::uint64_t i = 0; i < nl && l.ok(); ++i) {
      net::Link* link = netw.links()[i].get();
      link->restore_state(
          l, link->is_boundary() ? &fabric.sched(netw.link_dst_shard(link->id())) : nullptr);
    }
    l.tag("SWCH");
    const std::uint64_t nsw = l.u64();
    if (l.ok() && nsw != netw.switches().size()) return false;
    for (std::uint64_t i = 0; i < nsw && l.ok(); ++i) netw.switches()[i]->restore_state(l);
    l.tag("HOST");
    const std::uint64_t nh = l.u64();
    if (l.ok() && nh != netw.hosts().size()) return false;
    for (std::uint64_t i = 0; i < nh && l.ok(); ++i) netw.hosts()[i]->restore_state(l);
    l.tag("RTEM");
    routes.restore_state(l);
    l.tag("FLTC");
    if (l.b() && fault_ctl) fault_ctl->restore_state(l);
    l.tag("FLWA");
    flows_a.restore_state(l, [&](int h) -> net::Host& { return tree.host(h); }, bind);
    l.tag("WKLD");
    perm->restore_state(l);
    l.tag("PROB");
    rtt_tick.restore_state(l);
    util.restore_state(l, all_links);
    for (auto& d : res.rtt_by_category) d.restore_state(l);
    l.tag("SHST");
    stats.epochs = l.u64();
    stats.barriers = l.u64();
    stats.handoff_packets = l.u64();
    stats.micro_steps = l.u64();
    epoch_idx = l.u32();
    l.tag("OBSV");
    if (l.b()) {
      load_tracer(l, control_tracer.get());
      const std::uint64_t nt = l.u64();
      for (std::uint64_t i = 0; i < nt && l.ok(); ++i) {
        load_tracer(l, i < shard_tracers.size() ? shard_tracers[i].get() : nullptr);
      }
    }
    if (l.b()) {
      if (registry) {
        registry->restore_state(l);
      } else {
        obs::MetricsRegistry discard;  // consume the section to stay aligned
        discard.restore_state(l);
      }
    }
    return l.done();
  };

  auto write_checkpoint = [&]() {
    ckpt::Saver s;
    save_world(s);
    ckpt::Header h;
    h.fingerprint = fp;
    h.t_ns = control.now().ns();
    h.seq = ++ckpt_seq;
    h.prev_written = ckpt_written;
    h.prev_bytes = ckpt_bytes;
    const std::string path = cfg.checkpoint.dir + "/" + ckpt::file_name(h.seq);
    std::string err;
    if (!ckpt::write_file(path, h, s.data(), &err)) {
      std::fprintf(stderr, "xmpsim: checkpoint write failed: %s\n", err.c_str());
      return;  // the run continues; the previous snapshot stays the fallback
    }
    const std::uint64_t file_bytes = ckpt::kHeaderBytes + s.data().size();
    ckpt_written += 1;
    ckpt_bytes += file_bytes;
    res.ckpt.last_path = path;
    if (registry) {
      registry->counter("harness.ckpt.written").set(ckpt_written);
      registry->counter("harness.ckpt.bytes").set(ckpt_bytes);
    }
    if (control_tracer) control_tracer->ckpt_write(control.now(), h.seq, file_bytes);
  };

  // --- restore or fresh start ---
  if (restore != nullptr) {
    ckpt::Loader l{restore->payload};
    if (!restore_world(l)) {
      std::fprintf(stderr, "xmpsim: restore failed: %s: malformed payload\n",
                   cfg.checkpoint.restore_path.c_str());
      std::exit(2);
    }
    ckpt_seq = restore->h.seq;
    ckpt_written = restore->h.prev_written + 1;
    ckpt_bytes = restore->h.prev_bytes + ckpt::kHeaderBytes + restore->payload.size();
    res.ckpt.restored = true;
    res.ckpt.restored_seq = restore->h.seq;
    res.ckpt.restored_t = sim::Time::nanoseconds(restore->h.t_ns);
    if (registry) {
      registry->counter("harness.ckpt.written").set(ckpt_written);
      registry->counter("harness.ckpt.bytes").set(ckpt_bytes);
    }
    // The snapshot predates its own ckpt_write event; synthesize it so the
    // resumed trace matches an uninterrupted run's.
    if (control_tracer) {
      control_tracer->ckpt_write(sim::Time::nanoseconds(restore->h.t_ns), restore->h.seq,
                                 ckpt::kHeaderBytes + restore->payload.size());
    }
  } else {
    // Legacy scheduling order — byte-compatible with the pre-checkpoint
    // engine: faults, workload, probes.
    if (fault_ctl) fault_ctl->arm();
    perm->start();
    rtt_tick.start();
    util.open(all_links);
  }

  const std::atomic<bool>* stop_flag = cfg.checkpoint.stop_requested;
  const sim::Time every = cfg.checkpoint.every;
  // The next periodic boundary is a pure function of the clock, so a
  // resumed run checkpoints at the same sim times as an uninterrupted one.
  sim::Time next_ckpt = sim::Time::infinity();
  if (every > sim::Time::zero()) {
    next_ckpt = sim::Time::nanoseconds((control.now().ns() / every.ns() + 1) * every.ns());
  }

  sim::Time start = control.now();

  while (!done && start < horizon) {
    const bool forced_serial = forced.count(start.ns()) > 0;
    const bool gate_serial = perm->pending_flows() <= 1;

    if (forced_serial || gate_serial) {
      // ---- serial segment: global one-event micro-steps ----
      const sim::Time serial_until = start + lookahead;
      if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
        tr->shard_epoch(start, epoch_idx, serial_until.us(), /*serial=*/true);
      }
      sim::Time seg_t = start;
      for (;;) {
        sim::Time t;
        sim::Scheduler* s = earliest(t);
        if (s == nullptr || t > horizon) {
          seg_t = horizon;
          break;
        }
        // The segment ends once the next round is in full flight again and
        // one full lookahead window has been stepped through.
        if (t >= serial_until && perm->pending_flows() > 1) break;
        s->step_one();
        ++stats.micro_steps;
        stats.handoff_packets += fabric.drain_all();
        all_clocks_to(t);
        seg_t = t;
        if (done) break;
        // Clocks are aligned and handoffs drained right here, so an external
        // stop can cut the segment short and still checkpoint safely below.
        if (stop_flag != nullptr && stop_flag->load()) break;
      }
      ++stats.barriers;
      if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
        tr->shard_barrier(seg_t, epoch_idx, 0);
      }
      start = seg_t > start ? seg_t : start;
    } else {
      // ---- parallel epoch [start, b) ----
      sim::Time b = start + lookahead;
      const sim::Time ct = control.next_time();
      if (ct < b) b = ct;  // the control strand defines the next boundary
      if (b > horizon) b = horizon;
      if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
        tr->shard_epoch(start, epoch_idx, b.us(), /*serial=*/false);
      }

      obs::SimMetrics* metrics = sim_metrics.get();
      perm->set_parallel_phase(true);
      pool.run(n_shards, [&fabric, &shard_tracers, metrics, b](int s) {
        obs::ObservationScope shard_scope{
            shard_tracers.empty() ? nullptr : shard_tracers[static_cast<std::size_t>(s)].get(),
            metrics};
        fabric.sched(s).run_before(b);
      });
      perm->set_parallel_phase(false);

      if (perm->deferred_done()) {
        // A round completed mid-epoch; the flip must run serially. Discard
        // this attempt and replay with this epoch pinned.
        out.ok = false;
        out.failed_epoch_start_ns = start.ns();
        return out;
      }

      // ---- barrier: drain handoffs, align clocks, run the control strand ----
      const std::uint64_t drained = fabric.drain_all();
      stats.handoff_packets += drained;
      all_clocks_to(b);
      control.run_until(b);
      ++stats.epochs;
      ++stats.barriers;
      if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
        tr->shard_barrier(b, epoch_idx, drained);
      }
      start = b;
    }
    ++epoch_idx;

    // ---- quiescent point: channels drained, every clock == start ----
    if (ckpt_on && !done) {
      if (stop_flag != nullptr && stop_flag->load()) {
        write_checkpoint();
        res.ckpt.interrupted = true;
        final_time = start;  // partial summary covers [0, halt)
        break;
      }
      if (start >= next_ckpt) {
        write_checkpoint();
        next_ckpt = sim::Time::nanoseconds((start.ns() / every.ns() + 1) * every.ns());
      }
    }
  }

  if (!done && !res.ckpt.interrupted) {
    // Horizon pass: the serial engine's run_until bound is inclusive, so
    // events at exactly t == horizon still run (canonical order; equal-time
    // events on different shards cannot interact within the instant).
    control.run_until(horizon);
    for (int s = 0; s < n_shards; ++s) fabric.sched(s).run_until(horizon);
    all_clocks_to(horizon);
    final_time = horizon;
  }

  // --- collect (mirrors the serial engine, with the control clock standing
  // in for the single serial scheduler) ---
  // close() returns an empty vector when no sim time elapsed (e.g. a run
  // interrupted at t=0): no window, no samples.
  const auto utils = util.close();
  for (int l = 0; l < 3; ++l) {
    for (std::size_t i = layer_ranges[l].first; i < layer_ranges[l].second; ++i) {
      if (!utils.empty()) res.utilization_by_layer[l].add(utils[i]);
      res.queue_occupancy_by_layer[l].add(all_links[i]->queue().mean_occupancy(control.now()));
    }
  }

  for (const auto& rec : flows_a.records()) {
    res.flows.push_back(rec);
    res.flow_category.push_back(tree.category(rec.src_host, rec.dst_host));
    res.flow_scheme.push_back(0);
    if (rec.large && rec.completed) {
      const double mbps = rec.goodput_bps() / 1e6;
      res.goodput.add(mbps);
      res.goodput_by_category[static_cast<int>(tree.category(rec.src_host, rec.dst_host))].add(
          mbps);
    }
  }
  flows_a.for_each_partial_large([&](const workload::FlowRecord& rec, std::int64_t bytes) {
    const sim::Time ran = control.now() - rec.start;
    if (ran < sim::Time::milliseconds(20) || bytes < 128 * net::kMssBytes) return;
    const double mbps = static_cast<double>(bytes) * 8.0 / ran.sec() / 1e6;
    res.goodput.add(mbps);
    res.goodput_by_category[static_cast<int>(tree.category(rec.src_host, rec.dst_host))].add(
        mbps);
  });

  res.sim_duration = final_time;
  res.events_dispatched = fabric.total_dispatched() + control.dispatched();

  res.drops = stats::collect_drops(netw);
  for (const auto& l : netw.links()) {
    if (l->offered() == 0) continue;
    ExperimentResults::LinkDropRow row;
    row.link = l->id();
    row.offered = l->offered();
    row.delivered = l->delivered();
    row.drops = l->drops();
    res.link_drops.push_back(row);
  }
  res.aborted_flows = flows_a.aborted_large_flows();

  for (const net::Switch* sw : netw.switches()) {
    res.switch_forwarded += sw->forwarded();
    res.switch_unroutable += sw->unroutable();
    if (sw->unroutable() > 0) {
      res.switch_drops.push_back({sw->id(), sw->forwarded(), sw->unroutable()});
    }
  }
  res.route_reroutes = routes.reroutes();
  res.route_collisions = routes.collisions();
  res.flowlet_repaths = routes.repaths();
  res.path_rehomes = flows_a.subflow_rehomes();
  if (sim_metrics) {
    sim_metrics->switch_forwarded.inc(res.switch_forwarded);
    sim_metrics->switch_unroutable.inc(res.switch_unroutable);
  }

  res.sharded = true;
  res.shard.logical_shards = n_shards;
  res.shard.lookahead_us = fabric.has_cross_links() ? fabric.lookahead().us() : 0.0;
  res.shard.epochs = stats.epochs;
  res.shard.barriers = stats.barriers;
  res.shard.handoff_packets = stats.handoff_packets;
  res.shard.micro_steps = stats.micro_steps;
  res.shard.replays = replays;
  res.ckpt.written = ckpt_written;
  res.ckpt.bytes = ckpt_bytes;

  // --- observability exports (after collection) ---
  if (registry) {
    registry->counter("harness.shard.logical_shards").inc(static_cast<std::uint64_t>(n_shards));
    registry->counter("harness.shard.epochs").inc(stats.epochs);
    registry->counter("harness.shard.barriers").inc(stats.barriers);
    registry->counter("harness.shard.handoff_packets").inc(stats.handoff_packets);
    registry->counter("harness.shard.micro_steps").inc(stats.micro_steps);
    registry->counter("harness.shard.replays").inc(replays);
  }
  if (control_tracer) {
    std::vector<const obs::TimelineTracer*> streams;
    streams.push_back(control_tracer.get());  // stream 0: control wins ties
    for (const auto& t : shard_tracers) streams.push_back(t.get());
    const auto merged = obs::TimelineTracer::merged(streams);
    if (!cfg.obs.trace_json.empty()) merged->export_chrome_json(cfg.obs.trace_json);
    if (!cfg.obs.trace_csv.empty()) merged->export_csv(cfg.obs.trace_csv);
  }
  if (registry && !cfg.obs.metrics_json.empty()) {
    registry->dump_to_file(cfg.obs.metrics_json);
  }

  out.res = std::move(res);
  return out;
}

}  // namespace

ExperimentResults run_experiment_sharded(const ExperimentConfig& cfg) {
  assert(cfg.shards >= 1);
  assert(cfg.pattern == Pattern::Permutation &&
         "sharded engine: Permutation pattern only (CLI rejects others)");
  assert(!cfg.scheme_b && "sharded engine: coexistence runs are serial-only");
  assert(cfg.routing.kind != route::PolicyKind::Flowlet &&
         "sharded engine: flowlet repathing reads the control clock per packet");
  assert(!cfg.check_invariants && "sharded engine: invariant probing is serial-only");
  assert(cfg.scheme.max_rehomes == 0 && "sharded engine: subflow re-homing is serial-only");

  // A restore image is read and verified once; every attempt (including
  // round-flip replays) restores from the same in-memory bytes.
  std::unique_ptr<RestoreImage> restore;
  if (!cfg.checkpoint.restore_path.empty()) {
    restore = std::make_unique<RestoreImage>();
    std::string err;
    if (!ckpt::read_file(cfg.checkpoint.restore_path, ckpt::config_fingerprint(cfg), restore->h,
                         restore->payload, &err)) {
      std::fprintf(stderr, "xmpsim: restore failed: %s\n", err.c_str());
      std::exit(2);
    }
  }

  WorkerPool pool{static_cast<unsigned>(cfg.shards)};
  std::set<std::int64_t> forced;  // epoch starts pinned serial by failed attempts
  for (;;) {
    AttemptOutcome out = attempt(cfg, forced, pool, forced.size(), restore.get());
    if (out.ok) return std::move(out.res);
    // Abort-and-replay: deterministic world construction makes the replay
    // reach the same epoch with the same state, now micro-stepped serially.
    const bool fresh = forced.insert(out.failed_epoch_start_ns).second;
    assert(fresh && "replayed epoch deferred again despite serial pinning");
    (void)fresh;
  }
}

}  // namespace xmp::core
