#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/experiment.hpp"

namespace xmp::core {

/// Fans independent experiment configs across a pool of worker threads.
///
/// Table/Figure-scale evaluations are embarrassingly parallel: every
/// `ExperimentConfig` (seed sweep, scheme comparison, ablation grid point)
/// owns its whole world — `run_experiment` builds a private Scheduler,
/// Network and Rng per call, and nothing in the simulation core touches
/// shared mutable state. The runner therefore guarantees:
///
///  - **Determinism**: results are bit-identical to running the same
///    configs through a serial loop, regardless of worker count or
///    completion order.
///  - **Submission order**: results[i] always corresponds to configs[i].
///
/// Workers pull the next un-run config from a shared counter, so uneven
/// run times load-balance automatically.
class ParallelRunner {
 public:
  /// `workers == 0` picks std::thread::hardware_concurrency() (at least 1).
  explicit ParallelRunner(unsigned workers = 0);

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Called after each config finishes: (index into configs, done so far,
  /// total). Invoked under an internal mutex, so it may print.
  using Progress = std::function<void(std::size_t index, std::size_t done, std::size_t total)>;

  /// Run every config to completion; blocks until all are done. The first
  /// exception thrown by a worker (if any) is rethrown after the pool
  /// joins.
  [[nodiscard]] std::vector<ExperimentResults> run(const std::vector<ExperimentConfig>& configs,
                                                   const Progress& progress = {}) const;

  /// Generic fan-out: invoke `task(i)` for every i in [0, total) across the
  /// pool, same determinism/ordering/error contract as run(). run() is
  /// built on this; callers with non-ExperimentConfig work (e.g. parsing a
  /// directory of result files) use it directly. Reentrant: a task may
  /// construct its own ParallelRunner and call for_each()/run() inside.
  using Task = std::function<void(std::size_t index)>;
  void for_each(std::size_t total, const Task& task, const Progress& progress = {}) const;

 private:
  unsigned workers_;
};

/// Persistent barrier-synchronised worker pool for the sharded engine.
///
/// Unlike ParallelRunner (which load-balances independent jobs through a
/// shared counter), shard-to-worker assignment here is *static*: shard s
/// always executes on worker (s % width). That pins every shard's
/// scheduler, links and flows to one thread for the whole run — no
/// migration, no false sharing surprises, and the assignment is a pure
/// function of (s, width), never of timing.
///
/// run() is a barrier: it returns only after every shard's task finished.
/// The calling thread participates as worker 0, so width == 1 degrades to
/// a plain inline loop with no synchronisation at all. The first exception
/// thrown by any task is rethrown from run() after the barrier.
class WorkerPool {
 public:
  /// `width == 0` picks std::thread::hardware_concurrency() (at least 1).
  explicit WorkerPool(unsigned width);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned width() const { return width_; }

  using ShardTask = std::function<void(int shard)>;
  /// Execute task(s) for every s in [0, n_shards), shard s on worker
  /// (s % width). Blocks until all complete.
  void run(int n_shards, const ShardTask& task);

 private:
  void worker_loop(unsigned index);
  void run_share(unsigned index);

  unsigned width_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  ///< bumped per run(); wakes the workers
  const ShardTask* task_ = nullptr;
  int n_shards_ = 0;
  unsigned running_ = 0;  ///< helper workers still inside the current run
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Expand `base` into one config per seed (convenience for seed sweeps).
[[nodiscard]] std::vector<ExperimentConfig> seed_sweep(const ExperimentConfig& base,
                                                       const std::vector<std::uint64_t>& seeds);

}  // namespace xmp::core
