#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/experiment.hpp"

namespace xmp::core {

/// Fans independent experiment configs across a pool of worker threads.
///
/// Table/Figure-scale evaluations are embarrassingly parallel: every
/// `ExperimentConfig` (seed sweep, scheme comparison, ablation grid point)
/// owns its whole world — `run_experiment` builds a private Scheduler,
/// Network and Rng per call, and nothing in the simulation core touches
/// shared mutable state. The runner therefore guarantees:
///
///  - **Determinism**: results are bit-identical to running the same
///    configs through a serial loop, regardless of worker count or
///    completion order.
///  - **Submission order**: results[i] always corresponds to configs[i].
///
/// Workers pull the next un-run config from a shared counter, so uneven
/// run times load-balance automatically.
class ParallelRunner {
 public:
  /// `workers == 0` picks std::thread::hardware_concurrency() (at least 1).
  explicit ParallelRunner(unsigned workers = 0);

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Called after each config finishes: (index into configs, done so far,
  /// total). Invoked under an internal mutex, so it may print.
  using Progress = std::function<void(std::size_t index, std::size_t done, std::size_t total)>;

  /// Run every config to completion; blocks until all are done. The first
  /// exception thrown by a worker (if any) is rethrown after the pool
  /// joins.
  [[nodiscard]] std::vector<ExperimentResults> run(const std::vector<ExperimentConfig>& configs,
                                                   const Progress& progress = {}) const;

  /// Generic fan-out: invoke `task(i)` for every i in [0, total) across the
  /// pool, same determinism/ordering/error contract as run(). run() is
  /// built on this; callers with non-ExperimentConfig work (e.g. parsing a
  /// directory of result files) use it directly. Reentrant: a task may
  /// construct its own ParallelRunner and call for_each()/run() inside.
  using Task = std::function<void(std::size_t index)>;
  void for_each(std::size_t total, const Task& task, const Progress& progress = {}) const;

 private:
  unsigned workers_;
};

/// Expand `base` into one config per seed (convenience for seed sweeps).
[[nodiscard]] std::vector<ExperimentConfig> seed_sweep(const ExperimentConfig& base,
                                                       const std::vector<std::uint64_t>& seeds);

}  // namespace xmp::core
