#include "core/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"
#include "trace/atomic_file.hpp"

namespace xmp::core::ckpt {

namespace {

constexpr char kMagic[4] = {'X', 'M', 'P', 'C'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

void fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

/// splitmix64-based field mixer for config fingerprints. Every field is fed
/// as a u64, so adding/reordering fields changes the fingerprint — which is
/// exactly the point: a checkpoint only restores into the config that wrote
/// it.
struct Fingerprint {
  std::uint64_t h = 0x243f6a8885a308d3ull;  // pi

  void mix(std::uint64_t v) {
    std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    h = z ^ (z >> 31);
  }
  void mix_i(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_d(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }
  void mix_scheme(const workload::SchemeSpec& s) {
    mix(static_cast<std::uint64_t>(s.kind));
    mix_i(s.subflows);
    mix_i(s.beta);
    mix_i(s.dead_after_rtos);
    mix_i(s.max_rehomes);
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::string file_name(std::uint64_t seq) {
  return "ckpt_" + std::to_string(seq) + ".bin";
}

bool write_file(const std::string& path, const Header& h, const std::string& payload,
                std::string* error) {
  Saver s;
  s.tag("XMPC");
  s.u32(h.version);
  s.u64(h.fingerprint);
  s.i64(h.t_ns);
  s.u64(h.seq);
  s.u64(h.prev_written);
  s.u64(h.prev_bytes);
  s.u64(payload.size());
  s.u32(crc32(payload.data(), payload.size()));
  std::string out = s.data();
  out += payload;
  return trace::atomic_write_file(path, out, error);
}

namespace {

/// Shared header parse + verification; `payload` may be null for probes.
bool read_impl(const std::string& path, std::uint64_t expect_fingerprint, Header& h,
               std::string* payload, std::string* error) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    fail(error, "checkpoint " + path + ": cannot open");
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    fail(error, "checkpoint " + path + ": read error");
    return false;
  }
  const std::string raw = buf.str();
  if (raw.size() < kHeaderBytes) {
    fail(error, "checkpoint " + path + ": truncated (" + std::to_string(raw.size()) +
                    " bytes < " + std::to_string(kHeaderBytes) + "-byte header)");
    return false;
  }
  Loader l{raw};
  char magic[4];
  // Loader::tag would reject, but we want a distinct diagnostic for magic.
  std::memcpy(magic, raw.data(), 4);
  l.tag("XMPC");
  if (std::memcmp(magic, kMagic, 4) != 0) {
    fail(error, "checkpoint " + path + ": bad magic (not a checkpoint file)");
    return false;
  }
  h.version = l.u32();
  if (h.version != kFormatVersion) {
    fail(error, "checkpoint " + path + ": format version " + std::to_string(h.version) +
                    " (expected " + std::to_string(kFormatVersion) + ")");
    return false;
  }
  h.fingerprint = l.u64();
  h.t_ns = l.i64();
  h.seq = l.u64();
  h.prev_written = l.u64();
  h.prev_bytes = l.u64();
  const std::uint64_t payload_size = l.u64();
  const std::uint32_t stored_crc = l.u32();
  if (!l.ok()) {
    fail(error, "checkpoint " + path + ": corrupt header");
    return false;
  }
  if (raw.size() - kHeaderBytes != payload_size) {
    fail(error, "checkpoint " + path + ": payload truncated (have " +
                    std::to_string(raw.size() - kHeaderBytes) + " bytes, header says " +
                    std::to_string(payload_size) + ")");
    return false;
  }
  const std::uint32_t actual = crc32(raw.data() + kHeaderBytes, payload_size);
  if (actual != stored_crc) {
    char msg[96];
    std::snprintf(msg, sizeof msg, "CRC mismatch (stored %08x, computed %08x)", stored_crc,
                  actual);
    fail(error, "checkpoint " + path + ": " + msg);
    return false;
  }
  if (expect_fingerprint != 0 && h.fingerprint != expect_fingerprint) {
    fail(error, "checkpoint " + path + ": config fingerprint mismatch (run configuration differs)");
    return false;
  }
  if (payload) payload->assign(raw, kHeaderBytes, payload_size);
  return true;
}

}  // namespace

bool read_file(const std::string& path, std::uint64_t expect_fingerprint, Header& h,
               std::string& payload, std::string* error) {
  return read_impl(path, expect_fingerprint, h, &payload, error);
}

bool probe_file(const std::string& path, std::uint64_t expect_fingerprint, Header& h,
                std::string* error) {
  return read_impl(path, expect_fingerprint, h, nullptr, error);
}

std::string newest_valid(const std::string& dir, std::uint64_t expect_fingerprint, bool verbose) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator{dir, ec}) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 9 || name.compare(0, 5, "ckpt_") != 0 ||
        name.compare(name.size() - 4, 4, ".bin") != 0)
      continue;
    const std::string digits = name.substr(5, name.size() - 9);
    if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) continue;
    candidates.emplace_back(std::stoull(digits), entry.path().string());
  }
  // Newest first: the first candidate that verifies wins, older good
  // snapshots stay on disk as further fallbacks.
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [seq, path] : candidates) {
    Header h;
    std::string error;
    if (probe_file(path, expect_fingerprint, h, &error)) return path;
    if (verbose) std::fprintf(stderr, "xmpsim: %s — skipped\n", error.c_str());
  }
  return {};
}

std::uint64_t config_fingerprint(const ExperimentConfig& cfg) {
  Fingerprint f;
  f.mix(static_cast<std::uint64_t>(cfg.pattern));
  f.mix_scheme(cfg.scheme);
  f.mix(cfg.scheme_b.has_value());
  if (cfg.scheme_b) f.mix_scheme(*cfg.scheme_b);
  f.mix_i(cfg.fat_tree_k);
  f.mix(cfg.queue_capacity);
  f.mix(cfg.mark_threshold);
  f.mix_i(cfg.perm_min_bytes);
  f.mix_i(cfg.perm_max_bytes);
  f.mix_i(cfg.rand_min_bytes);
  f.mix_i(cfg.rand_max_bytes);
  f.mix_i(cfg.permutation_rounds);
  f.mix_i(cfg.duration.ns());
  f.mix_i(cfg.incast.n_jobs);
  f.mix_i(cfg.incast.servers_per_job);
  f.mix_i(cfg.incast.request_bytes);
  f.mix_i(cfg.incast.response_bytes);
  f.mix(cfg.incast.max_jobs);
  f.mix(cfg.seed);
  f.mix_i(cfg.rtt_sample_interval.ns());
  f.mix(static_cast<std::uint64_t>(cfg.routing.kind));
  f.mix_i(cfg.routing.flowlet_gap.ns());
  f.mix_i(cfg.routing.reroute_delay.ns());
  f.mix(cfg.fault_plan.events.size());
  for (const auto& e : cfg.fault_plan.events) {
    f.mix(static_cast<std::uint64_t>(e.kind));
    f.mix_i(e.at.ns());
    f.mix_i(e.target);
    f.mix(static_cast<std::uint64_t>(e.loss.kind));
    f.mix_d(e.loss.p_loss);
    f.mix_d(e.loss.p_corrupt);
    f.mix_d(e.loss.p_good_bad);
    f.mix_d(e.loss.p_bad_good);
    f.mix_d(e.loss.loss_good);
    f.mix_d(e.loss.loss_bad);
    f.mix_d(e.gray.factor);
    f.mix_i(e.gray.delay.ns());
    f.mix_i(e.gray.jitter.ns());
    f.mix_d(e.gray.p);
    f.mix_i(e.gray.hold.ns());
  }
  f.mix(cfg.fault_seed);
  // Empirical workloads: the fingerprint covers the *parsed content* of the
  // workload file (nodes, span, CDF points, explicit flows) plus the
  // effective offered load, so a snapshot taken under one workload cannot
  // restore under another even if both share a path.
  f.mix(cfg.workload != nullptr);
  if (cfg.workload) {
    f.mix(cfg.workload->content_hash());
    f.mix_d(cfg.offered_load > 0.0 ? cfg.offered_load : cfg.workload->default_load);
  }
  // Sharded runs use a different (documented) equal-timestamp tie order, so
  // a serial checkpoint must not restore into a sharded run or vice versa —
  // but the worker count itself is identity-neutral.
  f.mix(cfg.shards > 0);
  // Hybrid runs carry a HYBR section whose shape is a function of these
  // knobs; covering them rejects a non-hybrid snapshot in a hybrid world
  // (and any hybrid-population mismatch) at the header check.
  f.mix(cfg.hybrid.enabled);
  if (cfg.hybrid.enabled) {
    f.mix_i(cfg.hybrid.bg_flows);
    f.mix_i(cfg.hybrid.bg_bytes);
    f.mix_i(cfg.hybrid.fg_flows);
    f.mix_i(cfg.hybrid.fg_bytes);
    f.mix_i(cfg.hybrid.promote_bytes);
    f.mix_i(cfg.hybrid.tick.ns());
  }
  return f.h;
}

}  // namespace xmp::core::ckpt
