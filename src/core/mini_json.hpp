#pragma once

// Minimal recursive-descent JSON parser — just enough to read back what
// trace::JsonWriter emits (objects, arrays, strings, numbers, booleans,
// null — \uXXXX escapes including surrogate pairs decode to UTF-8).
// Promoted from the test utilities so the sweep orchestrator can parse its
// own manifests and per-job result files; still not a general-purpose
// parser (no streaming, whole document in memory).
//
// Hardened against hostile input: nesting is capped (kMaxDepth) so a
// "[[[[..." bomb cannot overflow the stack, unescaped control characters
// (including NUL bytes) in strings are rejected per RFC 8259, and every
// truncation path fails with a clean one-line error instead of reading out
// of bounds.

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace xmp::core::json {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }

  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::Object && object.count(key) != 0;
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("mini_json: missing key " + key);
    return object.at(key);
  }
};

class MiniJsonParser {
 public:
  /// Parse `text`; throws std::runtime_error with a position on any
  /// malformed input (including trailing garbage).
  static JsonValue parse(const std::string& text) {
    MiniJsonParser p{text};
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos_ != text.size()) p.fail("trailing characters");
    return v;
  }

  /// Containers deeper than this are rejected ("nesting too deep"), keeping
  /// the recursive descent's stack usage bounded on hostile input.
  static constexpr std::size_t kMaxDepth = 256;

 private:
  explicit MiniJsonParser(const std::string& text) : text_{text} {}

  /// RAII nesting guard for parse_object/parse_array.
  struct DepthGuard {
    explicit DepthGuard(MiniJsonParser& p) : p_{p} {
      if (++p_.depth_ > kMaxDepth) p_.fail("nesting too deep");
    }
    ~DepthGuard() { --p_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    MiniJsonParser& p_;
  };

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("mini_json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    const DepthGuard guard{*this};
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard{*this};
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        // RFC 8259 §7: control characters (NUL included) must be escaped.
        --pos_;
        fail("unescaped control character in string");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': append_utf8(out, parse_codepoint()); break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  /// Four hex digits after a consumed "\u".
  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return v;
  }

  /// Scalar code point of one \uXXXX escape, combining a high surrogate
  /// with its mandatory low-surrogate partner (RFC 8259 §7).
  std::uint32_t parse_codepoint() {
    const std::uint32_t u = parse_hex4();
    if (u >= 0xD800 && u <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("high surrogate without \\u low surrogate");
      }
      pos_ += 2;
      const std::uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      return 0x10000 + ((u - 0xD800) << 10) + (lo - 0xDC00);
    }
    if (u >= 0xDC00 && u <= 0xDFFF) fail("unpaired low surrogate");
    return u;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

/// Parse an entire JSON file. Returns false (and sets *error) when the file
/// cannot be opened or does not parse.
inline bool parse_file(const std::string& path, JsonValue& out, std::string* error = nullptr) {
  std::ifstream in{path};
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  try {
    out = MiniJsonParser::parse(ss.str());
  } catch (const std::exception& e) {
    if (error != nullptr) *error = path + ": " + e.what();
    return false;
  }
  return true;
}

}  // namespace xmp::core::json
