#pragma once

// Crash-safe file writes for result artifacts. The implementation lives in
// the trace layer (the lowest library, so CsvWriter/JsonWriter and every
// exporter above them share it); this header re-exports it under core:: —
// the name orchestration code and callers outside the export layer use.

#include "trace/atomic_file.hpp"

namespace xmp::core {

using trace::atomic_write_file;  // write "<path>.tmp", fsync, rename
using trace::commit_tmp_file;
using trace::tmp_path_for;

}  // namespace xmp::core
