#include "core/export.hpp"

#include "trace/writers.hpp"

namespace xmp::core {
namespace {

void write_distribution(trace::JsonWriter& json, const char* name,
                        const stats::Distribution& d) {
  json.key(name);
  json.begin_object();
  json.kv("count", static_cast<std::uint64_t>(d.count()));
  if (!d.empty()) {
    json.kv("mean", d.mean());
    json.kv("min", d.min());
    json.kv("p10", d.percentile(10));
    json.kv("p50", d.percentile(50));
    json.kv("p90", d.percentile(90));
    json.kv("max", d.max());
  }
  json.end_object();
}

}  // namespace

void export_flows_csv(const ExperimentResults& results, const std::string& path) {
  trace::CsvWriter csv{path};
  csv.header({"id", "src", "dst", "bytes", "large", "category", "scheme", "start_s",
              "finish_s", "completed", "goodput_mbps"});
  for (std::size_t i = 0; i < results.flows.size(); ++i) {
    const auto& rec = results.flows[i];
    csv.field(static_cast<std::uint64_t>(rec.id))
        .field(rec.src_host)
        .field(rec.dst_host)
        .field(rec.bytes)
        .field(rec.large ? 1 : 0)
        .field(topo::FatTree::category_name(results.flow_category[i]))
        .field(results.flow_scheme[i])
        .field(rec.start.sec())
        .field(rec.completed ? rec.finish.sec() : -1.0)
        .field(rec.completed ? 1 : 0)
        .field(rec.goodput_bps() / 1e6);
    csv.end_row();
  }
}

void export_fct_csv(const ExperimentResults& results, const std::string& path) {
  trace::CsvWriter csv{path};
  csv.header({"id", "bytes", "start_s", "finish_s", "completed", "slowdown"});
  for (const auto& r : results.fct_records) {
    csv.field(static_cast<std::uint64_t>(r.id))
        .field(r.bytes)
        .field(static_cast<double>(r.start_ns) / 1e9)
        .field(r.completed ? static_cast<double>(r.finish_ns) / 1e9 : -1.0)
        .field(r.completed ? 1 : 0)
        .field(r.slowdown);
    csv.end_row();
  }
}

void export_link_drops_csv(const ExperimentResults& results, const std::string& path) {
  trace::CsvWriter csv{path};
  csv.header({"link", "offered", "delivered", "drops_queue", "drops_admin_down", "drops_fault",
              "drops_corrupt", "drops_unroutable", "duplicated", "delayed", "overmarked"});
  for (const auto& row : results.link_drops) {
    csv.field(static_cast<std::uint64_t>(row.link))
        .field(row.offered)
        .field(row.delivered)
        .field(row.drops.queue)
        .field(row.drops.admin_down)
        .field(row.drops.fault)
        .field(row.drops.corrupt)
        .field(std::uint64_t{0})
        .field(row.duplicated)
        .field(row.delayed)
        .field(row.overmarked);
    csv.end_row();
  }
  // Unroutable packets die inside a switch, before any link sees them, so
  // they get their own rows rather than being misattributed to a link.
  for (const auto& row : results.switch_drops) {
    csv.field("sw" + std::to_string(row.node))
        .field(row.forwarded + row.unroutable)
        .field(row.forwarded)
        .field(std::uint64_t{0})
        .field(std::uint64_t{0})
        .field(std::uint64_t{0})
        .field(std::uint64_t{0})
        .field(row.unroutable)
        .field(std::uint64_t{0})
        .field(std::uint64_t{0})
        .field(std::uint64_t{0});
    csv.end_row();
  }
}

void export_summary_json(const ExperimentConfig& cfg, const ExperimentResults& results,
                         const std::string& path) {
  trace::JsonWriter json{path};
  json.begin_object();

  json.key("config");
  json.begin_object();
  json.kv("scheme", cfg.scheme.name());
  if (cfg.scheme_b) json.kv("scheme_b", cfg.scheme_b->name());
  json.kv("pattern", pattern_name(cfg.pattern));
  json.kv("fat_tree_k", static_cast<std::int64_t>(cfg.fat_tree_k));
  json.kv("queue_capacity", static_cast<std::uint64_t>(cfg.queue_capacity));
  json.kv("mark_threshold", static_cast<std::uint64_t>(cfg.mark_threshold));
  json.kv("duration_s", cfg.duration.sec());
  json.kv("seed", cfg.seed);
  json.kv("routing", route::policy_name(cfg.routing.kind));
  if (cfg.pattern == Pattern::Workload && cfg.workload) {
    json.kv("workload", cfg.workload->name);
    json.kv("offered_load", results.fct.offered_load);
  }
  json.end_object();

  json.key("summary");
  json.begin_object();
  json.kv("sim_duration_s", results.sim_duration.sec());
  json.kv("events", results.events_dispatched);
  json.kv("flows", static_cast<std::uint64_t>(results.flows.size()));
  json.kv("jobs", static_cast<std::uint64_t>(results.jobs.size()));
  json.kv("avg_goodput_mbps", results.avg_goodput_mbps());
  if (cfg.scheme_b) json.kv("avg_goodput_b_mbps", results.avg_goodput_b_mbps());
  if (!results.jobs.empty()) {
    json.kv("avg_job_completion_ms", results.avg_job_completion_ms());
    json.kv("jobs_over_300ms", results.job_completion_over_ms(300.0));
  }
  json.kv("aborted_flows", results.aborted_flows);
  if (results.invariant_checks > 0) {
    json.kv("invariant_checks", results.invariant_checks);
    json.kv("invariant_violations",
            static_cast<std::uint64_t>(results.invariant_violations.size()));
  }
  json.end_object();

  json.key("drops");
  json.begin_object();
  json.kv("offered", results.drops.offered);
  json.kv("delivered", results.drops.delivered);
  json.kv("queue", results.drops.queue);
  json.kv("admin_down", results.drops.admin_down);
  json.kv("fault", results.drops.fault);
  json.kv("corrupt", results.drops.corrupt);
  json.kv("unroutable", results.switch_unroutable);
  json.end_object();

  // Gray-failure impairments: packets the fault layer touched but did not
  // drop. Zero in healthy runs; byte-stable either way.
  json.key("impairments");
  json.begin_object();
  json.kv("duplicated", results.drops.duplicated);
  json.kv("delayed", results.drops.delayed);
  json.kv("overmarked", results.drops.overmarked);
  json.end_object();

  json.key("routing");
  json.begin_object();
  json.kv("policy", route::policy_name(cfg.routing.kind));
  json.kv("forwarded", results.switch_forwarded);
  json.kv("unroutable", results.switch_unroutable);
  json.kv("reroutes", results.route_reroutes);
  json.kv("collisions", results.route_collisions);
  json.kv("flowlet_repaths", results.flowlet_repaths);
  json.kv("path_rehomes", results.path_rehomes);
  json.end_object();

  if (results.sharded) {
    // Every field is a function of the logical shard structure, never of
    // the worker count, so the block is safe in byte-compared output.
    json.key("sharding");
    json.begin_object();
    json.kv("logical_shards", static_cast<std::int64_t>(results.shard.logical_shards));
    json.kv("lookahead_us", results.shard.lookahead_us);
    json.kv("epochs", results.shard.epochs);
    json.kv("barriers", results.shard.barriers);
    json.kv("handoff_packets", results.shard.handoff_packets);
    json.kv("micro_steps", results.shard.micro_steps);
    json.kv("replays", results.shard.replays);
    json.end_object();
  }

  if (results.fct.enabled()) {
    // FCT-slowdown block (empirical workloads): exact nearest-rank
    // percentiles per flow-size bin, plus explicit censoring counts so a
    // reader can tell how much of the open-loop arrival mass finished.
    json.key("fct");
    json.begin_object();
    json.kv("offered_load", results.fct.offered_load);
    json.kv("arrival_rate_fps", results.fct.arrival_rate);
    json.kv("completed", results.fct.completed);
    json.kv("censored", results.fct.censored);
    auto write_slowdown = [&](const char* name, const stats::Distribution& d) {
      json.key(name);
      json.begin_object();
      json.kv("count", static_cast<std::uint64_t>(d.count()));
      if (d.count() > 0) {
        json.kv("mean", d.mean());
        json.kv("p50", d.percentile(50));
        json.kv("p95", d.percentile(95));
        json.kv("p99", d.percentile(99));
        json.kv("max", d.max());
      }
      json.end_object();
    };
    write_slowdown("all", results.fct.slowdown_all);
    json.key("bins");
    json.begin_object();
    for (int b = 0; b < ExperimentResults::FctStats::kBins; ++b) {
      write_slowdown(ExperimentResults::FctStats::bin_name(b), results.fct.slowdown_by_bin[b]);
    }
    json.end_object();
    json.end_object();
  }

  if (results.hybrid.enabled) {
    json.key("hybrid");
    json.begin_object();
    json.kv("bg_flows", static_cast<std::int64_t>(results.hybrid.bg_flows));
    json.kv("fg_flows", static_cast<std::int64_t>(results.hybrid.fg_flows));
    json.kv("active_fluid", static_cast<std::int64_t>(results.hybrid.active_fluid));
    json.kv("ticks", results.hybrid.ticks);
    json.kv("promotions", results.hybrid.promotions);
    json.kv("fluid_completions", results.hybrid.fluid_completions);
    json.kv("fluid_bytes", results.hybrid.fluid_bytes);
    json.kv("fluid_throughput_mbps", results.hybrid.fluid_throughput_mbps);
    json.kv("mean_mark_p", results.hybrid.mean_mark_p);
    json.end_object();
  }

  json.key("goodput_mbps");
  json.begin_object();
  write_distribution(json, "all", results.goodput);
  for (int c = 0; c < 3; ++c) {
    write_distribution(json, topo::FatTree::category_name(static_cast<topo::FatTree::Category>(c)),
                       results.goodput_by_category[c]);
  }
  json.end_object();

  json.key("rtt_ms");
  json.begin_object();
  for (int c = 0; c < 3; ++c) {
    write_distribution(json, topo::FatTree::category_name(static_cast<topo::FatTree::Category>(c)),
                       results.rtt_by_category[c]);
  }
  json.end_object();

  json.key("utilization");
  json.begin_object();
  for (int l = 0; l < 3; ++l) {
    write_distribution(json, topo::FatTree::layer_name(static_cast<topo::FatTree::Layer>(l)),
                       results.utilization_by_layer[l]);
  }
  json.end_object();

  json.end_object();
}

}  // namespace xmp::core
