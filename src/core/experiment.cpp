#include "core/experiment.hpp"

#include <memory>

#include "faults/fault_controller.hpp"
#include "faults/invariant_checker.hpp"
#include "net/network.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "route/route_manager.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "stats/probes.hpp"
#include "workload/permutation.hpp"
#include "workload/random_traffic.hpp"

namespace xmp::core {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Permutation:
      return "Permutation";
    case Pattern::Random:
      return "Random";
    case Pattern::Incast:
      return "Incast";
  }
  return "?";
}

double ExperimentResults::avg_job_completion_ms() const {
  stats::Distribution d;
  for (const auto& j : jobs) {
    if (j.completed) d.add(j.completion_time().ms());
  }
  return d.mean();
}

double ExperimentResults::job_completion_over_ms(double threshold_ms) const {
  std::size_t total = 0;
  std::size_t over = 0;
  for (const auto& j : jobs) {
    if (!j.completed) continue;
    ++total;
    if (j.completion_time().ms() > threshold_ms) ++over;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(over) / static_cast<double>(total);
}

ExperimentResults run_experiment(const ExperimentConfig& cfg) {
  if (cfg.shards > 0) return run_experiment_sharded(cfg);
  // Observation is installed for this thread only (ParallelRunner gives
  // every sweep job its own worker thread and its own observers) and is
  // strictly passive: nothing below reads the tracer or registry, so a run
  // with observation produces byte-identical results to one without.
  std::unique_ptr<obs::TimelineTracer> tracer;
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::SimMetrics> sim_metrics;
  if (cfg.obs.tracing()) {
    obs::TimelineTracer::Config oc;
    oc.capacity = cfg.obs.capacity;
    oc.categories = cfg.obs.categories;
    tracer = std::make_unique<obs::TimelineTracer>(oc);
  }
  if (cfg.obs.enabled()) {
    registry = std::make_unique<obs::MetricsRegistry>();
    sim_metrics = std::make_unique<obs::SimMetrics>(*registry);
  }
  obs::ObservationScope scope{tracer.get(), sim_metrics.get()};

  sim::Scheduler sched;
  net::Network netw{sched};

  topo::FatTree::Config tc;
  tc.k = cfg.fat_tree_k;
  tc.queue.kind = net::QueueConfig::Kind::EcnThreshold;
  tc.queue.capacity_packets = cfg.queue_capacity;
  tc.queue.mark_threshold = cfg.mark_threshold;
  topo::FatTree tree{netw, tc};

  if (tracer) {
    for (int l = 0; l < 3; ++l) {
      const auto layer = static_cast<topo::FatTree::Layer>(l);
      for (const net::Link* link : tree.links(layer)) {
        tracer->name_link(link->id(), std::string{topo::FatTree::layer_name(layer)} +
                                          " link " + std::to_string(link->id()));
      }
    }
  }

  // --- routing tables (the default Pinned config replays the legacy
  // built-in hash bit for bit and schedules nothing while no link fails,
  // so fault-free default runs stay byte-identical) ---
  route::RouteManager routes{sched, netw, cfg.routing};
  routes.install_all();

  sim::Rng rng{cfg.seed};

  workload::FlowManager flows_a{sched, cfg.scheme};
  std::unique_ptr<workload::FlowManager> flows_b;
  if (cfg.scheme_b) {
    // Disjoint id space: flow ids are endpoint demux keys at the hosts.
    flows_b = std::make_unique<workload::FlowManager>(sched, *cfg.scheme_b,
                                                      net::FlowId{1} << 24);
  }

  // --- fault injection (no-op when the plan is empty) ---
  std::unique_ptr<faults::FaultController> fault_ctl;
  if (!cfg.fault_plan.empty()) {
    faults::FaultController::Config fcc;
    fcc.seed = cfg.fault_seed;
    fault_ctl = std::make_unique<faults::FaultController>(sched, netw, cfg.fault_plan, fcc);
    fault_ctl->arm();
  }

  std::unique_ptr<faults::InvariantChecker> inv;
  if (cfg.check_invariants) {
    inv = std::make_unique<faults::InvariantChecker>(sched);
    inv->watch_network(netw);
    inv->add_sender_enumerator([&flows_a](const faults::InvariantChecker::SenderVisitor& v) {
      flows_a.for_each_active_large_sender(
          [&v](const workload::FlowRecord&, const transport::TcpSender& s) { v(s); });
    });
    inv->add_connection_enumerator(
        [&flows_a](const faults::InvariantChecker::ConnectionVisitor& v) {
          flows_a.for_each_active_connection([&v](mptcp::MptcpConnection& c) { v(c); });
        });
    if (flows_b) {
      workload::FlowManager* fb = flows_b.get();
      inv->add_sender_enumerator([fb](const faults::InvariantChecker::SenderVisitor& v) {
        fb->for_each_active_large_sender(
            [&v](const workload::FlowRecord&, const transport::TcpSender& s) { v(s); });
      });
      inv->add_connection_enumerator(
          [fb](const faults::InvariantChecker::ConnectionVisitor& v) {
            fb->for_each_active_connection([&v](mptcp::MptcpConnection& c) { v(c); });
          });
    }
    inv->start();
  }

  // --- workload ---
  std::unique_ptr<workload::PermutationTraffic> perm;
  std::unique_ptr<workload::RandomTraffic> rand_a;
  std::unique_ptr<workload::RandomTraffic> rand_b;
  std::unique_ptr<workload::IncastTraffic> incast;
  std::unique_ptr<workload::RandomTraffic> incast_bg;

  switch (cfg.pattern) {
    case Pattern::Permutation: {
      workload::PermutationTraffic::Config pc;
      pc.min_bytes = cfg.perm_min_bytes;
      pc.max_bytes = cfg.perm_max_bytes;
      pc.rounds = cfg.permutation_rounds;
      perm = std::make_unique<workload::PermutationTraffic>(sched, tree, flows_a, rng.split(), pc);
      perm->set_on_done([&sched] { sched.stop(); });
      perm->start();
      break;
    }
    case Pattern::Random: {
      workload::RandomTraffic::Config rc;
      rc.min_bytes = cfg.rand_min_bytes;
      rc.max_bytes = cfg.rand_max_bytes;
      if (flows_b) {
        // Coexistence: even hosts use scheme A, odd hosts scheme B.
        workload::RandomTraffic::Config rc_b = rc;
        for (int h = 0; h < tree.n_hosts(); ++h) {
          (h % 2 == 0 ? rc.senders : rc_b.senders).push_back(h);
        }
        rand_b = std::make_unique<workload::RandomTraffic>(sched, tree, *flows_b, rng.split(), rc_b);
      }
      rand_a = std::make_unique<workload::RandomTraffic>(sched, tree, flows_a, rng.split(), rc);
      rand_a->start();
      if (rand_b) rand_b->start();
      break;
    }
    case Pattern::Incast: {
      incast = std::make_unique<workload::IncastTraffic>(sched, tree, flows_a, rng.split(),
                                                         cfg.incast);
      workload::RandomTraffic::Config rc;
      rc.min_bytes = cfg.rand_min_bytes;
      rc.max_bytes = cfg.rand_max_bytes;
      rc.exclude_same_rack = true;  // paper footnote 8
      incast_bg = std::make_unique<workload::RandomTraffic>(sched, tree, flows_a, rng.split(), rc);
      incast->start();
      incast_bg->start();
      break;
    }
  }

  // --- probes ---
  ExperimentResults res;

  // The gauge hook samples into the category distributions directly; the
  // probe machinery just provides the periodic tick.
  stats::GaugeProbe rtt_tick{sched, cfg.rtt_sample_interval, [&] {
    auto sample = [&](const workload::FlowManager& fm) {
      fm.for_each_active_large_sender(
          [&](const workload::FlowRecord& rec, const transport::TcpSender& s) {
            if (!s.has_rtt_sample()) return;
            const auto cat = tree.category(rec.src_host, rec.dst_host);
            res.rtt_by_category[static_cast<int>(cat)].add(s.srtt().ms());
          });
    };
    sample(flows_a);
    if (flows_b) sample(*flows_b);
    return 0.0;
  }};
  rtt_tick.start();

  stats::UtilizationWindow util{sched};
  std::vector<net::Link*> all_links;
  std::array<std::pair<std::size_t, std::size_t>, 3> layer_ranges;
  {
    std::size_t off = 0;
    for (int l = 0; l < 3; ++l) {
      const auto& ls = tree.links(static_cast<topo::FatTree::Layer>(l));
      all_links.insert(all_links.end(), ls.begin(), ls.end());
      layer_ranges[l] = {off, off + ls.size()};
      off += ls.size();
    }
  }
  util.open(all_links);

  // --- run ---
  sched.run_until(cfg.duration);

  // --- collect ---
  const auto utils = util.close();
  for (int l = 0; l < 3; ++l) {
    for (std::size_t i = layer_ranges[l].first; i < layer_ranges[l].second; ++i) {
      res.utilization_by_layer[l].add(utils[i]);
      res.queue_occupancy_by_layer[l].add(all_links[i]->queue().mean_occupancy(sched.now()));
    }
  }

  auto collect_flows = [&](const workload::FlowManager& fm, int scheme_index) {
    for (const auto& rec : fm.records()) {
      res.flows.push_back(rec);
      res.flow_category.push_back(tree.category(rec.src_host, rec.dst_host));
      res.flow_scheme.push_back(scheme_index);
      if (rec.large && rec.completed) {
        const double mbps = rec.goodput_bps() / 1e6;
        (scheme_index == 0 ? res.goodput : res.goodput_b).add(mbps);
        if (scheme_index == 0) {
          res.goodput_by_category[static_cast<int>(tree.category(rec.src_host, rec.dst_host))]
              .add(mbps);
        }
      }
    }
  };
  collect_flows(flows_a, 0);
  if (flows_b) collect_flows(*flows_b, 1);

  // Fixed-horizon runs cut slow flows off mid-transfer; dropping them would
  // bias mean goodput toward fast schemes (survivorship). Count a partial
  // flow at its average rate so far, provided it ran long enough for the
  // estimate to be meaningful.
  auto collect_partials = [&](const workload::FlowManager& fm, int scheme_index) {
    fm.for_each_partial_large([&](const workload::FlowRecord& rec, std::int64_t bytes) {
      const sim::Time ran = sched.now() - rec.start;
      if (ran < sim::Time::milliseconds(20) || bytes < 128 * net::kMssBytes) return;
      const double mbps = static_cast<double>(bytes) * 8.0 / ran.sec() / 1e6;
      (scheme_index == 0 ? res.goodput : res.goodput_b).add(mbps);
      if (scheme_index == 0) {
        res.goodput_by_category[static_cast<int>(tree.category(rec.src_host, rec.dst_host))]
            .add(mbps);
      }
    });
  };
  collect_partials(flows_a, 0);
  if (flows_b) collect_partials(*flows_b, 1);

  if (incast) res.jobs = incast->jobs();
  res.sim_duration = sched.now();
  res.events_dispatched = sched.dispatched();

  res.drops = stats::collect_drops(netw);
  for (const auto& l : netw.links()) {
    if (l->offered() == 0) continue;
    ExperimentResults::LinkDropRow row;
    row.link = l->id();
    row.offered = l->offered();
    row.delivered = l->delivered();
    row.drops = l->drops();
    res.link_drops.push_back(row);
  }
  res.aborted_flows = flows_a.aborted_large_flows();
  if (flows_b) res.aborted_flows += flows_b->aborted_large_flows();

  // --- routing-layer accounting (end-of-run aggregation: the per-packet
  // hot path never touches the metrics registry for these) ---
  for (const net::Switch* sw : netw.switches()) {
    res.switch_forwarded += sw->forwarded();
    res.switch_unroutable += sw->unroutable();
    if (sw->unroutable() > 0) {
      res.switch_drops.push_back({sw->id(), sw->forwarded(), sw->unroutable()});
    }
  }
  res.route_reroutes = routes.reroutes();
  res.route_collisions = routes.collisions();
  res.flowlet_repaths = routes.repaths();
  res.path_rehomes = flows_a.subflow_rehomes();
  if (flows_b) res.path_rehomes += flows_b->subflow_rehomes();
  if (sim_metrics) {
    sim_metrics->switch_forwarded.inc(res.switch_forwarded);
    sim_metrics->switch_unroutable.inc(res.switch_unroutable);
  }
  if (inv) {
    inv->stop();
    inv->check_now();  // final sweep at the horizon
    res.invariant_checks = inv->checks_run();
    for (const auto& v : inv->violations()) {
      res.invariant_violations.push_back("[t=" + std::to_string(v.at.sec()) + "s] " + v.what);
    }
  }

  // --- observability exports (after collection: they must not observe the run) ---
  if (tracer) {
    if (!cfg.obs.trace_json.empty()) tracer->export_chrome_json(cfg.obs.trace_json);
    if (!cfg.obs.trace_csv.empty()) tracer->export_csv(cfg.obs.trace_csv);
  }
  if (registry && !cfg.obs.metrics_json.empty()) {
    registry->dump_to_file(cfg.obs.metrics_json);
  }
  return res;
}

}  // namespace xmp::core
