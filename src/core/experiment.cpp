#include "core/experiment.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/checkpoint.hpp"
#include "core/export.hpp"
#include "faults/fault_controller.hpp"
#include "faults/invariant_checker.hpp"
#include "model/hybrid/engine.hpp"
#include "net/network.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "route/route_manager.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "stats/probes.hpp"
#include "workload/empirical.hpp"
#include "workload/permutation.hpp"
#include "workload/random_traffic.hpp"

namespace xmp::core {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Permutation:
      return "Permutation";
    case Pattern::Random:
      return "Random";
    case Pattern::Incast:
      return "Incast";
    case Pattern::Workload:
      return "Workload";
  }
  return "?";
}

const char* ExperimentResults::FctStats::bin_name(int b) {
  switch (b) {
    case 0: return "0-10K";
    case 1: return "10K-100K";
    case 2: return "100K-1M";
    case 3: return "1M-10M";
    case 4: return ">10M";
  }
  return "?";
}

int ExperimentResults::FctStats::bin_of(std::int64_t bytes) {
  if (bytes < 10'000) return 0;
  if (bytes < 100'000) return 1;
  if (bytes < 1'000'000) return 2;
  if (bytes < 10'000'000) return 3;
  return 4;
}

double ExperimentResults::avg_job_completion_ms() const {
  stats::Distribution d;
  for (const auto& j : jobs) {
    if (j.completed) d.add(j.completion_time().ms());
  }
  return d.mean();
}

double ExperimentResults::job_completion_over_ms(double threshold_ms) const {
  std::size_t total = 0;
  std::size_t over = 0;
  for (const auto& j : jobs) {
    if (!j.completed) continue;
    ++total;
    if (j.completion_time().ms() > threshold_ms) ++over;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(over) / static_cast<double>(total);
}

ExperimentResults run_experiment(const ExperimentConfig& cfg) {
  if (cfg.shards > 0) return run_experiment_sharded(cfg);
  // Observation is installed for this thread only (ParallelRunner gives
  // every sweep job its own worker thread and its own observers) and is
  // strictly passive: nothing below reads the tracer or registry, so a run
  // with observation produces byte-identical results to one without.
  std::unique_ptr<obs::TimelineTracer> tracer;
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::SimMetrics> sim_metrics;
  if (cfg.obs.tracing()) {
    obs::TimelineTracer::Config oc;
    oc.capacity = cfg.obs.capacity;
    oc.categories = cfg.obs.categories;
    tracer = std::make_unique<obs::TimelineTracer>(oc);
  }
  if (cfg.obs.enabled()) {
    registry = std::make_unique<obs::MetricsRegistry>();
    sim_metrics = std::make_unique<obs::SimMetrics>(*registry);
  }
  obs::ObservationScope scope{tracer.get(), sim_metrics.get()};

  sim::Scheduler sched;
  net::Network netw{sched};

  topo::FatTree::Config tc;
  tc.k = cfg.fat_tree_k;
  tc.queue.kind = net::QueueConfig::Kind::EcnThreshold;
  tc.queue.capacity_packets = cfg.queue_capacity;
  tc.queue.mark_threshold = cfg.mark_threshold;
  topo::FatTree tree{netw, tc};

  if (tracer) {
    for (int l = 0; l < 3; ++l) {
      const auto layer = static_cast<topo::FatTree::Layer>(l);
      for (const net::Link* link : tree.links(layer)) {
        tracer->name_link(link->id(), std::string{topo::FatTree::layer_name(layer)} +
                                          " link " + std::to_string(link->id()));
      }
    }
  }

  // --- routing tables (the default Pinned config replays the legacy
  // built-in hash bit for bit and schedules nothing while no link fails,
  // so fault-free default runs stay byte-identical) ---
  route::RouteManager routes{sched, netw, cfg.routing};
  routes.install_all();

  sim::Rng rng{cfg.seed};

  workload::FlowManager flows_a{sched, cfg.scheme};
  std::unique_ptr<workload::FlowManager> flows_b;
  if (cfg.scheme_b) {
    // Disjoint id space: flow ids are endpoint demux keys at the hosts.
    flows_b = std::make_unique<workload::FlowManager>(sched, *cfg.scheme_b,
                                                      net::FlowId{1} << 24);
  }

  // --- fault injection (no-op when the plan is empty). arm() is deferred:
  // on a fresh start it runs in the legacy order below; on a restore the
  // checkpoint re-arms the pending plan events instead. ---
  std::unique_ptr<faults::FaultController> fault_ctl;
  if (!cfg.fault_plan.empty()) {
    faults::FaultController::Config fcc;
    fcc.seed = cfg.fault_seed;
    fault_ctl = std::make_unique<faults::FaultController>(sched, netw, cfg.fault_plan, fcc);
  }

  std::unique_ptr<faults::InvariantChecker> inv;
  if (cfg.check_invariants) {
    inv = std::make_unique<faults::InvariantChecker>(sched);
    inv->watch_network(netw);
    inv->add_sender_enumerator([&flows_a](const faults::InvariantChecker::SenderVisitor& v) {
      flows_a.for_each_active_large_sender(
          [&v](const workload::FlowRecord&, const transport::TcpSender& s) { v(s); });
    });
    inv->add_connection_enumerator(
        [&flows_a](const faults::InvariantChecker::ConnectionVisitor& v) {
          flows_a.for_each_active_connection([&v](mptcp::MptcpConnection& c) { v(c); });
        });
    if (flows_b) {
      workload::FlowManager* fb = flows_b.get();
      inv->add_sender_enumerator([fb](const faults::InvariantChecker::SenderVisitor& v) {
        fb->for_each_active_large_sender(
            [&v](const workload::FlowRecord&, const transport::TcpSender& s) { v(s); });
      });
      inv->add_connection_enumerator(
          [fb](const faults::InvariantChecker::ConnectionVisitor& v) {
            fb->for_each_active_connection([&v](mptcp::MptcpConnection& c) { v(c); });
          });
    }
    // start() is deferred: on a restore it must schedule after the clock
    // and sequence counter have been restored.
  }

  // --- workload ---
  std::unique_ptr<workload::PermutationTraffic> perm;
  std::unique_ptr<workload::RandomTraffic> rand_a;
  std::unique_ptr<workload::RandomTraffic> rand_b;
  std::unique_ptr<workload::IncastTraffic> incast;
  std::unique_ptr<workload::RandomTraffic> incast_bg;
  std::unique_ptr<workload::EmpiricalTraffic> emp;

  // Generators are constructed on both the fresh and the restore path (the
  // rng.split() draws happen here, identically); start() is deferred so a
  // restore can rebuild their state instead. A hybrid run replaces the
  // pattern entirely (the CLI rejects an explicit --pattern), so none are
  // built.
  if (!cfg.hybrid.enabled) switch (cfg.pattern) {
    case Pattern::Permutation: {
      workload::PermutationTraffic::Config pc;
      pc.min_bytes = cfg.perm_min_bytes;
      pc.max_bytes = cfg.perm_max_bytes;
      pc.rounds = cfg.permutation_rounds;
      perm = std::make_unique<workload::PermutationTraffic>(sched, tree, flows_a, rng.split(), pc);
      perm->set_on_done([&sched] { sched.stop(); });
      break;
    }
    case Pattern::Random: {
      workload::RandomTraffic::Config rc;
      rc.min_bytes = cfg.rand_min_bytes;
      rc.max_bytes = cfg.rand_max_bytes;
      if (flows_b) {
        // Coexistence: even hosts use scheme A, odd hosts scheme B.
        workload::RandomTraffic::Config rc_b = rc;
        for (int h = 0; h < tree.n_hosts(); ++h) {
          (h % 2 == 0 ? rc.senders : rc_b.senders).push_back(h);
        }
        rand_b = std::make_unique<workload::RandomTraffic>(sched, tree, *flows_b, rng.split(), rc_b);
      }
      rand_a = std::make_unique<workload::RandomTraffic>(sched, tree, flows_a, rng.split(), rc);
      break;
    }
    case Pattern::Incast: {
      incast = std::make_unique<workload::IncastTraffic>(sched, tree, flows_a, rng.split(),
                                                         cfg.incast);
      workload::RandomTraffic::Config rc;
      rc.min_bytes = cfg.rand_min_bytes;
      rc.max_bytes = cfg.rand_max_bytes;
      rc.exclude_same_rack = true;  // paper footnote 8
      incast_bg = std::make_unique<workload::RandomTraffic>(sched, tree, flows_a, rng.split(), rc);
      break;
    }
    case Pattern::Workload: {
      const workload::WorkloadSpec& spec = *cfg.workload;
      workload::EmpiricalTraffic::Config ec;
      ec.cdf = spec.has_cdf ? &spec.cdf : nullptr;
      ec.load = cfg.offered_load > 0.0 ? cfg.offered_load : spec.default_load;
      ec.line_rate_bps = tree.config().link_rate_bps;
      ec.nodes = spec.nodes;
      ec.span = spec.span;
      ec.mice_threshold = spec.mice_threshold;
      ec.trace = &spec.flows;
      emp = std::make_unique<workload::EmpiricalTraffic>(sched, tree, flows_a, rng.split(), ec);
      break;
    }
  }

  // --- hybrid fluid/packet engine (DESIGN.md §14) ---
  std::unique_ptr<model::hybrid::Engine> hybrid;
  std::function<void(int)> start_hybrid_fg;
  if (cfg.hybrid.enabled) {
    model::hybrid::Engine::Config hc;
    hc.tick = cfg.hybrid.tick;
    hc.promote_bytes = cfg.hybrid.promote_bytes;
    hybrid = std::make_unique<model::hybrid::Engine>(sched, hc);

    const auto n_hosts = static_cast<std::uint64_t>(tree.n_hosts());
    const int half = cfg.fat_tree_k / 2;
    // Endpoint placement is derived by hashing (seed, index) rather than by
    // consuming the workload rng stream, so the fluid population never
    // perturbs the packet-domain draw sequence. Value captures only: this
    // lambda is copied into start_hybrid_fg, which outlives this block.
    auto pick_pair = [seed = cfg.seed, n_hosts](std::uint64_t salt, int& src, int& dst) {
      const std::uint64_t h = net::mix64(seed * 0x9e3779b97f4a7c15ULL + salt);
      src = static_cast<int>(h % n_hosts);
      dst = static_cast<int>(net::mix64(h) % (n_hosts - 1));
      if (dst >= src) ++dst;
    };
    // Interning a path registers its links on first sight; every queue in
    // the fabric shares the same ECN threshold K.
    const double mark_k = static_cast<double>(cfg.mark_threshold);
    auto intern_path = [&](int src, int dst, int agg_choice, int core_choice,
                           double& base_rtt_s) {
      const auto links = tree.path_links(src, dst, agg_choice, core_choice);
      std::vector<int> ids;
      ids.reserve(links.size());
      base_rtt_s = 0.0;
      for (net::Link* l : links) {
        ids.push_back(hybrid->add_link(l, mark_k));
        // Data out plus the ACK back over the mirror link: twice the
        // propagation, plus store-and-forward serialization of both packets.
        base_rtt_s += 2.0 * l->prop_delay().sec() +
                      static_cast<double>((net::kDataPacketBytes + net::kAckPacketBytes) * 8) /
                          static_cast<double>(l->rate_bps());
      }
      return hybrid->add_path(ids);
    };
    const int n_sub = cfg.scheme.multipath() ? cfg.scheme.subflows : 1;
    for (int i = 0; i < cfg.hybrid.bg_flows; ++i) {
      model::hybrid::FluidAggregate agg;
      agg.beta = static_cast<double>(cfg.scheme.beta);
      agg.total_bytes = cfg.hybrid.bg_bytes;
      pick_pair(0x1000000ULL + static_cast<std::uint64_t>(i), agg.src_host, agg.dst_host);
      const std::uint64_t hp = net::mix64(cfg.seed ^ 0xb5f0'd27cULL ^
                                          (static_cast<std::uint64_t>(i) << 20));
      for (int r = 0; r < n_sub; ++r) {
        model::hybrid::FluidSubflowState sf;
        // Distinct aggregation-layer choice per subflow (one pinned path
        // each, as in the packet domain); inner-rack pairs collapse to the
        // single rack path and the engine dedups it.
        const int agg_choice = static_cast<int>((hp + static_cast<std::uint64_t>(r)) %
                                                static_cast<std::uint64_t>(half));
        const int core_choice =
            static_cast<int>((hp >> 24) % static_cast<std::uint64_t>(half));
        sf.path = intern_path(agg.src_host, agg.dst_host, agg_choice, core_choice,
                              sf.base_rtt_s);
        agg.subflows.push_back(sf);
      }
      hybrid->add_aggregate(std::move(agg));
    }
    hybrid->set_on_promote([&](const model::hybrid::PromotionInfo& info) {
      workload::CallbackTag t;
      t.kind = workload::CallbackTag::kHybridPromoted;
      t.a = info.aggregate;
      flows_a.start_large_flow(tree.host(info.src_host), tree.host(info.dst_host),
                               info.src_host, info.dst_host, info.remaining_bytes, nullptr, t,
                               info.cwnd_segments);
    });
    // Foreground flows restart on completion so the packet-accurate lane
    // covers the whole horizon; the slot index makes the restart chain
    // checkpointable (CallbackTag::kHybridFg).
    // Captures are function-scope objects (or copies): start_hybrid_fg is
    // invoked long after this block's locals are gone.
    start_hybrid_fg = [&flows_a, &tree, &cfg, &start_hybrid_fg, pick_pair](int slot) {
      int src = 0;
      int dst = 0;
      pick_pair(0x2000000ULL + static_cast<std::uint64_t>(slot), src, dst);
      workload::CallbackTag t;
      t.kind = workload::CallbackTag::kHybridFg;
      t.a = slot;
      flows_a.start_large_flow(tree.host(src), tree.host(dst), src, dst, cfg.hybrid.fg_bytes,
                               [&start_hybrid_fg, slot] { start_hybrid_fg(slot); }, t);
    };
  }

  // --- probes ---
  ExperimentResults res;

  // The gauge hook samples into the category distributions directly; the
  // probe machinery just provides the periodic tick.
  stats::GaugeProbe rtt_tick{sched, cfg.rtt_sample_interval, [&] {
    auto sample = [&](const workload::FlowManager& fm) {
      fm.for_each_active_large_sender(
          [&](const workload::FlowRecord& rec, const transport::TcpSender& s) {
            if (!s.has_rtt_sample()) return;
            const auto cat = tree.category(rec.src_host, rec.dst_host);
            res.rtt_by_category[static_cast<int>(cat)].add(s.srtt().ms());
          });
    };
    sample(flows_a);
    if (flows_b) sample(*flows_b);
    return 0.0;
  }};
  stats::UtilizationWindow util{sched};
  std::vector<net::Link*> all_links;
  std::array<std::pair<std::size_t, std::size_t>, 3> layer_ranges;
  {
    std::size_t off = 0;
    for (int l = 0; l < 3; ++l) {
      const auto& ls = tree.links(static_cast<topo::FatTree::Layer>(l));
      all_links.insert(all_links.end(), ls.begin(), ls.end());
      layer_ranges[l] = {off, off + ls.size()};
      off += ls.size();
    }
  }

  // --- checkpoint plumbing (DESIGN.md §12) ---
  const bool ckpt_on = cfg.checkpoint.enabled();
  const bool restoring = !cfg.checkpoint.restore_path.empty();
  const std::uint64_t fp = ckpt_on ? ckpt::config_fingerprint(cfg) : 0;
  std::uint64_t ckpt_seq = 0;      // last sequence number used
  std::uint64_t ckpt_written = 0;  // lineage-cumulative snapshot count
  std::uint64_t ckpt_bytes = 0;    // lineage-cumulative snapshot bytes

  // Saved flow-completion callbacks come back as CallbackTags; resolve them
  // against the generators of this (identically constructed) world.
  const workload::FlowManager::BindFn bind =
      [&](const workload::CallbackTag& tag) -> std::function<void()> {
    using Tag = workload::CallbackTag;
    switch (tag.kind) {
      case Tag::kPermutation:
        return [g = perm.get()] { g->restored_flow_done(); };
      case Tag::kRandom: {
        workload::RandomTraffic* g =
            cfg.pattern == Pattern::Incast ? incast_bg.get() : rand_a.get();
        return [g, src = static_cast<int>(tag.a), dst = static_cast<int>(tag.b)] {
          g->restored_flow_done(src, dst);
        };
      }
      case Tag::kIncastRequest:
        return [g = incast.get(), job = static_cast<std::size_t>(tag.a),
                server = static_cast<int>(tag.b), client = static_cast<int>(tag.c)] {
          g->restored_request_done(job, server, client);
        };
      case Tag::kIncastResponse:
        return [g = incast.get(), job = static_cast<std::size_t>(tag.a)] {
          g->restored_response_done(job);
        };
      case Tag::kHybridFg:
        return [&start_hybrid_fg, slot = static_cast<int>(tag.a)] { start_hybrid_fg(slot); };
      default:
        // Includes kHybridPromoted: a promoted tail has no completion hook
        // (its FlowRecord is the record of completion).
        return nullptr;
    }
  };

  auto save_world = [&](ckpt::Saver& s) {
    s.tag("SCHD");
    s.time(sched.now());
    s.u64(sched.next_seq());
    s.u64(sched.dispatched());
    s.tag("LNKS");
    s.u64(netw.links().size());
    for (const auto& l : netw.links()) l->save_state(s);
    s.tag("SWCH");
    s.u64(netw.switches().size());
    for (const net::Switch* sw : netw.switches()) sw->save_state(s);
    s.tag("HOST");
    s.u64(netw.hosts().size());
    for (const net::Host* h : netw.hosts()) h->save_state(s);
    s.tag("RTEM");
    routes.save_state(s);
    s.tag("FLTC");
    s.b(fault_ctl != nullptr);
    if (fault_ctl) fault_ctl->save_state(s);
    s.tag("FLWA");
    flows_a.save_state(s);
    s.tag("WKLD");
    if (!cfg.hybrid.enabled) switch (cfg.pattern) {
      case Pattern::Permutation:
        perm->save_state(s);
        break;
      case Pattern::Random:
        rand_a->save_state(s);
        break;
      case Pattern::Incast:
        incast->save_state(s);
        incast_bg->save_state(s);
        break;
      case Pattern::Workload:
        emp->save_state(s);
        break;
    }
    s.tag("HYBR");
    s.b(hybrid != nullptr);
    if (hybrid) hybrid->save_state(s);
    s.tag("PROB");
    rtt_tick.save_state(s);
    util.save_state(s);
    // The RTT gauge accumulates into the results object, not the probe, so
    // its pre-checkpoint samples must ride along explicitly.
    for (const auto& d : res.rtt_by_category) d.save_state(s);
    // Observability state rides along so a resumed run's exports match an
    // uninterrupted run's byte for byte. Presence flags let a checkpoint
    // taken without --trace be replayed with it (and vice versa).
    s.tag("OBSV");
    s.b(tracer != nullptr);
    if (tracer) {
      s.u64(tracer->size());
      tracer->for_each([&](const obs::TimelineEvent& e) {
        s.i64(e.t_ns);
        s.f64(e.a);
        s.f64(e.b);
        s.u32(e.id);
        s.u8(static_cast<std::uint8_t>(e.kind));
        s.u8(e.subflow);
        s.u16(e.aux);
      });
      s.u64(tracer->dropped());
    }
    s.b(registry != nullptr);
    if (registry) registry->save_state(s);
  };

  auto restore_world = [&](ckpt::Loader& l) -> bool {
    l.tag("SCHD");
    const sim::Time now = l.time();
    const std::uint64_t next_seq = l.u64();
    const std::uint64_t disp = l.u64();
    if (!l.ok()) return false;
    sched.restore_clock(now, next_seq, disp);
    l.tag("LNKS");
    const std::uint64_t nl = l.u64();
    if (l.ok() && nl != netw.links().size()) return false;
    for (std::uint64_t i = 0; i < nl && l.ok(); ++i) netw.links()[i]->restore_state(l);
    l.tag("SWCH");
    const std::uint64_t nsw = l.u64();
    if (l.ok() && nsw != netw.switches().size()) return false;
    for (std::uint64_t i = 0; i < nsw && l.ok(); ++i) netw.switches()[i]->restore_state(l);
    l.tag("HOST");
    const std::uint64_t nh = l.u64();
    if (l.ok() && nh != netw.hosts().size()) return false;
    for (std::uint64_t i = 0; i < nh && l.ok(); ++i) netw.hosts()[i]->restore_state(l);
    l.tag("RTEM");
    routes.restore_state(l);
    l.tag("FLTC");
    if (l.b() && fault_ctl) fault_ctl->restore_state(l);
    l.tag("FLWA");
    flows_a.restore_state(l, [&](int h) -> net::Host& { return tree.host(h); }, bind);
    l.tag("WKLD");
    if (!cfg.hybrid.enabled) switch (cfg.pattern) {
      case Pattern::Permutation:
        perm->restore_state(l);
        break;
      case Pattern::Random:
        rand_a->restore_state(l);
        break;
      case Pattern::Incast:
        incast->restore_state(l);
        incast_bg->restore_state(l);
        break;
      case Pattern::Workload:
        emp->restore_state(l);
        break;
    }
    l.tag("HYBR");
    // The config fingerprint covers cfg.hybrid, so a non-hybrid snapshot
    // never reaches a hybrid world (and vice versa); the flag only keeps the
    // payload self-describing.
    if (l.b() && hybrid) hybrid->restore_state(l);
    l.tag("PROB");
    rtt_tick.restore_state(l);
    util.restore_state(l, all_links);
    for (auto& d : res.rtt_by_category) d.restore_state(l);
    l.tag("OBSV");
    if (l.b()) {
      const std::uint64_t ne = l.u64();
      std::vector<obs::TimelineEvent> evs;
      for (std::uint64_t i = 0; i < ne && l.ok(); ++i) {
        obs::TimelineEvent e;
        e.t_ns = l.i64();
        e.a = l.f64();
        e.b = l.f64();
        e.id = l.u32();
        e.kind = static_cast<obs::EventKind>(l.u8());
        e.subflow = l.u8();
        e.aux = l.u16();
        evs.push_back(e);
      }
      const std::uint64_t ev_dropped = l.u64();
      if (tracer && l.ok()) tracer->restore_snapshot(evs, ev_dropped);
    }
    if (l.b()) {
      if (registry) {
        registry->restore_state(l);
      } else {
        obs::MetricsRegistry discard;  // consume the section to stay aligned
        discard.restore_state(l);
      }
    }
    return l.done();
  };

  auto write_checkpoint = [&]() {
    ckpt::Saver s;
    save_world(s);
    ckpt::Header h;
    h.fingerprint = fp;
    h.t_ns = sched.now().ns();
    h.seq = ++ckpt_seq;
    h.prev_written = ckpt_written;
    h.prev_bytes = ckpt_bytes;
    const std::string path = cfg.checkpoint.dir + "/" + ckpt::file_name(h.seq);
    std::string err;
    if (!ckpt::write_file(path, h, s.data(), &err)) {
      std::fprintf(stderr, "xmpsim: checkpoint write failed: %s\n", err.c_str());
      return;  // the run continues; the previous snapshot stays the fallback
    }
    const std::uint64_t file_bytes = ckpt::kHeaderBytes + s.data().size();
    ckpt_written += 1;
    ckpt_bytes += file_bytes;
    res.ckpt.last_path = path;
    if (registry) {
      registry->counter("harness.ckpt.written").set(ckpt_written);
      registry->counter("harness.ckpt.bytes").set(ckpt_bytes);
    }
    // Recorded *after* the snapshot was serialized: the event describes this
    // file, so it can only appear in the next one (restores synthesize it).
    if (tracer) tracer->ckpt_write(sched.now(), h.seq, file_bytes);
  };

  // --- restore or fresh start ---
  if (restoring) {
    ckpt::Header h;
    std::string payload;
    std::string err;
    if (!ckpt::read_file(cfg.checkpoint.restore_path, fp, h, payload, &err)) {
      std::fprintf(stderr, "xmpsim: restore failed: %s\n", err.c_str());
      std::exit(2);
    }
    ckpt::Loader l{payload};
    if (!restore_world(l)) {
      std::fprintf(stderr, "xmpsim: restore failed: %s: malformed payload\n",
                   cfg.checkpoint.restore_path.c_str());
      std::exit(2);
    }
    ckpt_seq = h.seq;
    ckpt_written = h.prev_written + 1;
    ckpt_bytes = h.prev_bytes + ckpt::kHeaderBytes + payload.size();
    res.ckpt.restored = true;
    res.ckpt.restored_seq = h.seq;
    res.ckpt.restored_t = sim::Time::nanoseconds(h.t_ns);
    if (registry) {
      registry->counter("harness.ckpt.written").set(ckpt_written);
      registry->counter("harness.ckpt.bytes").set(ckpt_bytes);
    }
    // The snapshot predates its own ckpt_write event; synthesize it so the
    // resumed trace matches an uninterrupted run's.
    if (tracer) {
      tracer->ckpt_write(sim::Time::nanoseconds(h.t_ns), h.seq,
                         ckpt::kHeaderBytes + payload.size());
    }
    if (inv) inv->start();  // replay-only: a fresh checker over the resumed run
  } else {
    // Legacy scheduling order — byte-compatible with the pre-checkpoint
    // engine: faults, invariant checker, workload, probes.
    if (fault_ctl) fault_ctl->arm();
    if (inv) inv->start();
    if (!cfg.hybrid.enabled) switch (cfg.pattern) {
      case Pattern::Permutation:
        perm->start();
        break;
      case Pattern::Random:
        rand_a->start();
        if (rand_b) rand_b->start();
        break;
      case Pattern::Incast:
        incast->start();
        incast_bg->start();
        break;
      case Pattern::Workload:
        emp->start();
        break;
    }
    if (hybrid) {
      for (int slot = 0; slot < cfg.hybrid.fg_flows; ++slot) start_hybrid_fg(slot);
      hybrid->start();
    }
    rtt_tick.start();
    util.open(all_links);
  }

  // --- run ---
  if (!ckpt_on) {
    sched.run_until(cfg.duration);
  } else {
    if (cfg.checkpoint.stop_requested) sched.set_external_stop(cfg.checkpoint.stop_requested);
    const sim::Time every = cfg.checkpoint.every;
    // Segmented run: each segment ends at the next absolute multiple of
    // `every` (so a resumed run checkpoints at the same sim times as an
    // uninterrupted one) or at the horizon, whichever is earlier.
    while (true) {
      sim::Time target = cfg.duration;
      bool boundary = false;
      if (every > sim::Time::zero()) {
        const std::int64_t next = (sched.now().ns() / every.ns() + 1) * every.ns();
        if (next < cfg.duration.ns()) {
          target = sim::Time::nanoseconds(next);
          boundary = true;
        }
      }
      sched.run_until(target);
      if (cfg.checkpoint.stop_requested && cfg.checkpoint.stop_requested->load()) {
        // Halted between events — always a quiescent point in a serial DES.
        write_checkpoint();
        res.ckpt.interrupted = true;
        break;
      }
      if (sched.stopped()) break;  // the workload ended the run early
      if (!boundary) break;        // reached the horizon
      write_checkpoint();
    }
    sched.set_external_stop(nullptr);
  }

  // --- collect ---
  // close() returns an empty vector when no sim time elapsed (e.g. a run
  // interrupted at t=0): no window, no samples.
  const auto utils = util.close();
  for (int l = 0; l < 3; ++l) {
    for (std::size_t i = layer_ranges[l].first; i < layer_ranges[l].second; ++i) {
      if (!utils.empty()) res.utilization_by_layer[l].add(utils[i]);
      res.queue_occupancy_by_layer[l].add(all_links[i]->queue().mean_occupancy(sched.now()));
    }
  }

  auto collect_flows = [&](const workload::FlowManager& fm, int scheme_index) {
    for (const auto& rec : fm.records()) {
      res.flows.push_back(rec);
      res.flow_category.push_back(tree.category(rec.src_host, rec.dst_host));
      res.flow_scheme.push_back(scheme_index);
      if (rec.large && rec.completed) {
        const double mbps = rec.goodput_bps() / 1e6;
        (scheme_index == 0 ? res.goodput : res.goodput_b).add(mbps);
        if (scheme_index == 0) {
          res.goodput_by_category[static_cast<int>(tree.category(rec.src_host, rec.dst_host))]
              .add(mbps);
        }
      }
    }
  };
  collect_flows(flows_a, 0);
  if (flows_b) collect_flows(*flows_b, 1);

  // Fixed-horizon runs cut slow flows off mid-transfer; dropping them would
  // bias mean goodput toward fast schemes (survivorship). Count a partial
  // flow at its average rate so far, provided it ran long enough for the
  // estimate to be meaningful.
  auto collect_partials = [&](const workload::FlowManager& fm, int scheme_index) {
    fm.for_each_partial_large([&](const workload::FlowRecord& rec, std::int64_t bytes) {
      const sim::Time ran = sched.now() - rec.start;
      if (ran < sim::Time::milliseconds(20) || bytes < 128 * net::kMssBytes) return;
      const double mbps = static_cast<double>(bytes) * 8.0 / ran.sec() / 1e6;
      (scheme_index == 0 ? res.goodput : res.goodput_b).add(mbps);
      if (scheme_index == 0) {
        res.goodput_by_category[static_cast<int>(tree.category(rec.src_host, rec.dst_host))]
            .add(mbps);
      }
    });
  };
  collect_partials(flows_a, 0);
  if (flows_b) collect_partials(*flows_b, 1);

  if (emp) {
    // FCT slowdown vs the unloaded fabric: one-way propagation by locality
    // category plus serialization at line rate. Aborted and still-in-flight
    // flows are censored (counted, never averaged in).
    const topo::FatTree::Config& tc2 = tree.config();
    const double rate_bps = static_cast<double>(tc2.link_rate_bps);
    auto ideal_sec = [&](const workload::FlowRecord& rec) {
      const auto cat = tree.category(rec.src_host, rec.dst_host);
      double prop = 2.0 * tc2.rack_delay.sec();
      if (cat != topo::FatTree::Category::InnerRack) prop += 2.0 * tc2.agg_delay.sec();
      if (cat == topo::FatTree::Category::InterPod) prop += 2.0 * tc2.core_delay.sec();
      return prop + static_cast<double>(rec.bytes) * 8.0 / rate_bps;
    };
    res.fct.offered_load =
        cfg.offered_load > 0.0 ? cfg.offered_load : cfg.workload->default_load;
    res.fct.arrival_rate = emp->arrival_rate();
    for (const auto& rec : flows_a.records()) {
      ExperimentResults::FctRecord fr;
      fr.id = rec.id;
      fr.bytes = rec.bytes;
      fr.start_ns = rec.start.ns();
      if (!rec.completed) {
        ++res.fct.censored;
        res.fct_records.push_back(fr);
        continue;
      }
      const double slow = (rec.finish - rec.start).sec() / ideal_sec(rec);
      fr.finish_ns = rec.finish.ns();
      fr.completed = true;
      fr.slowdown = slow;
      res.fct_records.push_back(fr);
      res.fct.slowdown_all.add(slow);
      res.fct.slowdown_by_bin[ExperimentResults::FctStats::bin_of(rec.bytes)].add(slow);
      ++res.fct.completed;
      if (sim_metrics) {
        sim_metrics->fct_slowdown_milli.add(static_cast<std::uint64_t>(slow * 1000.0));
      }
    }
  }

  if (incast) res.jobs = incast->jobs();
  if (hybrid) {
    res.hybrid.enabled = true;
    res.hybrid.bg_flows = cfg.hybrid.bg_flows;
    res.hybrid.fg_flows = cfg.hybrid.fg_flows;
    res.hybrid.active_fluid = hybrid->active_fluid_flows();
    const auto& hs = hybrid->stats();
    res.hybrid.ticks = hs.ticks;
    res.hybrid.promotions = hs.promotions;
    res.hybrid.fluid_completions = hs.fluid_completions;
    res.hybrid.fluid_bytes = hs.fluid_bytes;
    res.hybrid.fluid_throughput_mbps = hybrid->fluid_throughput_bps() / 1e6;
    res.hybrid.mean_mark_p =
        hs.ticks > 0 ? hs.mark_p_accum / static_cast<double>(hs.ticks) : 0.0;
  }
  res.sim_duration = sched.now();
  res.events_dispatched = sched.dispatched();
  res.ckpt.written = ckpt_written;
  res.ckpt.bytes = ckpt_bytes;

  res.drops = stats::collect_drops(netw);
  for (const auto& l : netw.links()) {
    if (l->offered() == 0) continue;
    ExperimentResults::LinkDropRow row;
    row.link = l->id();
    row.offered = l->offered();
    row.delivered = l->delivered();
    row.drops = l->drops();
    row.duplicated = l->duplicated();
    row.delayed = l->delayed();
    row.overmarked = l->overmarked();
    res.link_drops.push_back(row);
  }
  res.aborted_flows = flows_a.aborted_large_flows();
  if (flows_b) res.aborted_flows += flows_b->aborted_large_flows();

  // --- routing-layer accounting (end-of-run aggregation: the per-packet
  // hot path never touches the metrics registry for these) ---
  for (const net::Switch* sw : netw.switches()) {
    res.switch_forwarded += sw->forwarded();
    res.switch_unroutable += sw->unroutable();
    if (sw->unroutable() > 0) {
      res.switch_drops.push_back({sw->id(), sw->forwarded(), sw->unroutable()});
    }
  }
  res.route_reroutes = routes.reroutes();
  res.route_collisions = routes.collisions();
  res.flowlet_repaths = routes.repaths();
  res.path_rehomes = flows_a.subflow_rehomes();
  if (flows_b) res.path_rehomes += flows_b->subflow_rehomes();
  if (sim_metrics) {
    sim_metrics->switch_forwarded.inc(res.switch_forwarded);
    sim_metrics->switch_unroutable.inc(res.switch_unroutable);
  }
  if (inv) {
    inv->stop();
    inv->check_now();  // final sweep at the horizon
    res.invariant_checks = inv->checks_run();
    for (const auto& v : inv->violations()) {
      res.invariant_violations.push_back("[t=" + std::to_string(v.at.sec()) + "s] " + v.what);
    }
  }

  // --- observability exports (after collection: they must not observe the run) ---
  if (tracer) {
    if (!cfg.obs.trace_json.empty()) tracer->export_chrome_json(cfg.obs.trace_json);
    if (!cfg.obs.trace_csv.empty()) tracer->export_csv(cfg.obs.trace_csv);
  }
  if (registry && !cfg.obs.metrics_json.empty()) {
    registry->dump_to_file(cfg.obs.metrics_json);
  }
  if (!cfg.obs.fct_csv.empty()) export_fct_csv(res, cfg.obs.fct_csv);
  return res;
}

}  // namespace xmp::core
