#include "core/parallel_runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace xmp::core {

ParallelRunner::ParallelRunner(unsigned workers) : workers_{workers} {
  if (workers_ == 0) {
    workers_ = std::thread::hardware_concurrency();
    if (workers_ == 0) workers_ = 1;
  }
}

void ParallelRunner::for_each(std::size_t total, const Task& task,
                              const Progress& progress) const {
  if (total == 0) return;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;  // guards progress invocation and first_error
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock{mu};
        if (!first_error) first_error = std::current_exception();
        continue;
      }
      const std::size_t n = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress) {
        const std::lock_guard<std::mutex> lock{mu};
        progress(i, n, total);
      }
    }
  };

  const unsigned n_threads =
      workers_ < total ? workers_ : static_cast<unsigned>(total);
  if (n_threads <= 1) {
    worker();  // serial fallback: no thread-spawn overhead for one task
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned w = 0; w < n_threads; ++w) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ExperimentResults> ParallelRunner::run(const std::vector<ExperimentConfig>& configs,
                                                   const Progress& progress) const {
  std::vector<ExperimentResults> results(configs.size());
  for_each(
      configs.size(), [&](std::size_t i) { results[i] = run_experiment(configs[i]); }, progress);
  return results;
}

WorkerPool::WorkerPool(unsigned width) : width_{width} {
  if (width_ == 0) {
    width_ = std::thread::hardware_concurrency();
    if (width_ == 0) width_ = 1;
  }
  threads_.reserve(width_ - 1);
  for (unsigned i = 1; i < width_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& th : threads_) th.join();
}

void WorkerPool::run(int n_shards, const ShardTask& task) {
  if (n_shards <= 0) return;
  if (width_ == 1) {
    for (int s = 0; s < n_shards; ++s) task(s);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock{mu_};
    task_ = &task;
    n_shards_ = n_shards;
    running_ = width_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  run_share(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock{mu_};
  cv_done_.wait(lock, [this] { return running_ == 0; });
  task_ = nullptr;
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void WorkerPool::run_share(unsigned index) {
  for (int s = static_cast<int>(index); s < n_shards_; s += static_cast<int>(width_)) {
    try {
      (*task_)(s);
    } catch (...) {
      const std::lock_guard<std::mutex> lock{mu_};
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_start_.wait(lock, [this, seen] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_share(index);
    {
      const std::lock_guard<std::mutex> lock{mu_};
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

std::vector<ExperimentConfig> seed_sweep(const ExperimentConfig& base,
                                         const std::vector<std::uint64_t>& seeds) {
  std::vector<ExperimentConfig> out;
  out.reserve(seeds.size());
  for (const std::uint64_t s : seeds) {
    out.push_back(base);
    out.back().seed = s;
  }
  return out;
}

}  // namespace xmp::core
