#include "core/parallel_runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace xmp::core {

ParallelRunner::ParallelRunner(unsigned workers) : workers_{workers} {
  if (workers_ == 0) {
    workers_ = std::thread::hardware_concurrency();
    if (workers_ == 0) workers_ = 1;
  }
}

void ParallelRunner::for_each(std::size_t total, const Task& task,
                              const Progress& progress) const {
  if (total == 0) return;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;  // guards progress invocation and first_error
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock{mu};
        if (!first_error) first_error = std::current_exception();
        continue;
      }
      const std::size_t n = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress) {
        const std::lock_guard<std::mutex> lock{mu};
        progress(i, n, total);
      }
    }
  };

  const unsigned n_threads =
      workers_ < total ? workers_ : static_cast<unsigned>(total);
  if (n_threads <= 1) {
    worker();  // serial fallback: no thread-spawn overhead for one task
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned w = 0; w < n_threads; ++w) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ExperimentResults> ParallelRunner::run(const std::vector<ExperimentConfig>& configs,
                                                   const Progress& progress) const {
  std::vector<ExperimentResults> results(configs.size());
  for_each(
      configs.size(), [&](std::size_t i) { results[i] = run_experiment(configs[i]); }, progress);
  return results;
}

std::vector<ExperimentConfig> seed_sweep(const ExperimentConfig& base,
                                         const std::vector<std::uint64_t>& seeds) {
  std::vector<ExperimentConfig> out;
  out.reserve(seeds.size());
  for (const std::uint64_t s : seeds) {
    out.push_back(base);
    out.back().seed = s;
  }
  return out;
}

}  // namespace xmp::core
