#include "core/orchestrator.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/mini_json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "trace/writers.hpp"

namespace xmp::core {
namespace {

using Clock = std::chrono::steady_clock;

std::chrono::nanoseconds dur_s(double s) {
  return std::chrono::nanoseconds{static_cast<std::int64_t>(s * 1e9)};
}

/// One live child process the reap loop is responsible for.
struct RunningChild {
  pid_t pid = -1;
  std::size_t job = 0;
  Clock::time_point start;
  Clock::time_point deadline;  ///< only meaningful when has_deadline
  bool has_deadline = false;
};

}  // namespace

Orchestrator::Orchestrator(OrchestratorConfig cfg) : cfg_{std::move(cfg)} {
  if (cfg_.workers == 0) {
    cfg_.workers = std::thread::hardware_concurrency();
    if (cfg_.workers == 0) cfg_.workers = 1;
  }
}

CampaignOutcome Orchestrator::run(const std::vector<ExperimentConfig>& grid,
                                  JobManifest& manifest, const ChildFn& child) {
  if (manifest.jobs.size() != grid.size()) {
    throw std::invalid_argument("Orchestrator: manifest has " +
                                std::to_string(manifest.jobs.size()) + " jobs for a grid of " +
                                std::to_string(grid.size()));
  }
  const ChildFn body =
      child ? child
            : ChildFn{[](std::size_t i, const ExperimentConfig& c, const std::string& p, int) {
                return run_sweep_job(i, c, p);
              }};

  obs::MetricsRegistry* m = cfg_.metrics;
  obs::Counter* c_spawns = m != nullptr ? &m->counter("harness.spawns") : nullptr;
  obs::Counter* c_retries = m != nullptr ? &m->counter("harness.retries") : nullptr;
  obs::Counter* c_timeouts = m != nullptr ? &m->counter("harness.timeouts") : nullptr;
  obs::Counter* c_exits = m != nullptr ? &m->counter("harness.exits_nonzero") : nullptr;
  obs::Counter* c_crashes = m != nullptr ? &m->counter("harness.crashes") : nullptr;
  obs::Counter* c_succeeded = m != nullptr ? &m->counter("harness.jobs_succeeded") : nullptr;
  obs::Counter* c_exhausted = m != nullptr ? &m->counter("harness.jobs_exhausted") : nullptr;
  obs::Counter* c_salvaged = m != nullptr ? &m->counter("harness.results_salvaged") : nullptr;
  obs::Counter* c_resumed = m != nullptr ? &m->counter("harness.jobs_resumed") : nullptr;
  obs::Counter* c_ckpt_restores = m != nullptr ? &m->counter("harness.ckpt.restores") : nullptr;
  obs::Counter* c_ckpt_fallbacks = m != nullptr ? &m->counter("harness.ckpt.fallbacks") : nullptr;
  obs::Histogram* h_attempt_ms = m != nullptr ? &m->histogram("harness.attempt_ms") : nullptr;

  const auto t0 = Clock::now();
  const auto trace_now = [&] {
    return sim::Time::nanoseconds(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
  };

  CampaignOutcome out;
  out.results.resize(grid.size());

  // Resume pass: keep Succeeded jobs whose result file still parses;
  // everything else (including jobs that were Running when a previous
  // campaign process died) starts over from Pending.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    JobEntry& j = manifest.jobs[i];
    j.result_file = job_result_file(i);
    if (j.state == JobState::Succeeded) {
      JobResult r;
      if (load_job_result(cfg_.campaign_dir + "/" + j.result_file, r)) {
        r.value = j.value;
        out.results[i] = r;
        if (c_resumed != nullptr) c_resumed->inc();
        if (c_salvaged != nullptr) c_salvaged->inc();
        continue;
      }
    }
    j.state = JobState::Pending;
    j.attempts = 0;
    j.last_error.clear();
  }
  manifest.save(cfg_.campaign_dir);

  if (cfg_.tracer != nullptr) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      char value[40];
      std::snprintf(value, sizeof value, "%g", manifest.jobs[i].value);
      cfg_.tracer->name_flow(static_cast<std::uint32_t>(i), "job " + std::to_string(i) + " (" +
                                                                manifest.param + "=" + value + ")");
    }
  }

  std::vector<Clock::time_point> ready(grid.size(), t0);  // earliest next spawn per job
  std::vector<RunningChild> running;

  const auto runnable = [&](std::size_t i) {
    const JobState s = manifest.jobs[i].state;
    return (s == JobState::Pending || s == JobState::Failed) && ready[i] <= Clock::now();
  };
  const auto unsettled = [&] {
    for (const JobEntry& j : manifest.jobs) {
      if (j.state == JobState::Pending || j.state == JobState::Failed ||
          j.state == JobState::Running) {
        return true;
      }
    }
    return false;
  };

  // Handle one finished attempt of `job` (waitpid status `st`); decides
  // Succeeded / Failed-with-backoff / Exhausted and persists the manifest.
  const auto settle = [&](std::size_t job, int st, bool timed_out, Clock::time_point started) {
    JobEntry& j = manifest.jobs[job];
    const int attempt = j.attempts;  // 1-based count of spawns so far
    if (h_attempt_ms != nullptr) {
      const auto ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - started).count();
      h_attempt_ms->add(static_cast<std::uint64_t>(ms));
    }

    // A clean exit 0 wins even if the watchdog fired in the race window
    // between the last poll and the kill.
    if (WIFEXITED(st) && WEXITSTATUS(st) == 0) {
      JobResult r;
      std::string perr;
      if (load_job_result(cfg_.campaign_dir + "/" + j.result_file, r, &perr)) {
        r.value = j.value;
        out.results[job] = r;
        j.state = JobState::Succeeded;
        j.last_error.clear();
        if (c_succeeded != nullptr) c_succeeded->inc();
        if (c_salvaged != nullptr) c_salvaged->inc();
        if (cfg_.tracer != nullptr) {
          cfg_.tracer->job_outcome(trace_now(), static_cast<std::uint32_t>(job),
                                   obs::JobOutcomeCode::Ok, attempt, 0);
        }
        manifest.save(cfg_.campaign_dir);
        return;
      }
      j.last_error = "missing result";
      if (c_exits != nullptr) c_exits->inc();
      if (cfg_.tracer != nullptr) {
        cfg_.tracer->job_outcome(trace_now(), static_cast<std::uint32_t>(job),
                                 obs::JobOutcomeCode::MissingResult, attempt, 0);
      }
    } else if (timed_out) {
      j.last_error = "timeout";
      if (c_timeouts != nullptr) c_timeouts->inc();
      if (cfg_.tracer != nullptr) {
        cfg_.tracer->job_outcome(trace_now(), static_cast<std::uint32_t>(job),
                                 obs::JobOutcomeCode::Timeout, attempt, SIGKILL);
      }
    } else if (WIFSIGNALED(st)) {
      j.last_error = "signal " + std::to_string(WTERMSIG(st));
      if (c_crashes != nullptr) c_crashes->inc();
      if (cfg_.tracer != nullptr) {
        cfg_.tracer->job_outcome(trace_now(), static_cast<std::uint32_t>(job),
                                 obs::JobOutcomeCode::Signal, attempt, WTERMSIG(st));
      }
    } else {
      const int code = WIFEXITED(st) ? WEXITSTATUS(st) : -1;
      j.last_error = "exit " + std::to_string(code);
      if (c_exits != nullptr) c_exits->inc();
      if (cfg_.tracer != nullptr) {
        cfg_.tracer->job_outcome(trace_now(), static_cast<std::uint32_t>(job),
                                 obs::JobOutcomeCode::Exit, attempt, code);
      }
    }

    if (j.attempts > cfg_.retries) {
      j.state = JobState::Exhausted;
      if (c_exhausted != nullptr) c_exhausted->inc();
      if (cfg_.tracer != nullptr) {
        cfg_.tracer->job_exhausted(trace_now(), static_cast<std::uint32_t>(job), j.attempts);
      }
    } else {
      j.state = JobState::Failed;
      const double backoff = retry_backoff_s(cfg_.backoff_base_s, j.attempts - 1, job);
      ready[job] = Clock::now() + dur_s(backoff);
      if (c_retries != nullptr) c_retries->inc();
      if (cfg_.tracer != nullptr) {
        cfg_.tracer->job_retry(trace_now(), static_cast<std::uint32_t>(job), j.attempts, backoff);
      }
    }
    manifest.save(cfg_.campaign_dir);
  };

  for (;;) {
    // Spawn phase: fill free worker slots with the lowest-index ready job.
    while (running.size() < cfg_.workers) {
      std::size_t pick = grid.size();
      for (std::size_t i = 0; i < grid.size(); ++i) {
        if (runnable(i)) {
          pick = i;
          break;
        }
      }
      if (pick == grid.size()) break;

      JobEntry& j = manifest.jobs[pick];
      j.state = JobState::Running;
      ++j.attempts;

      // Checkpoint-aware retry: every attempt of a checkpointing job writes
      // into the campaign's per-job directory; a retry resumes from the
      // newest snapshot that still verifies (CRC + fingerprint), falling
      // back through older ones — or a fresh start — when the newest is
      // truncated or bit-flipped. The lineage column makes the decision
      // auditable per attempt in sweep_manifest.json.
      ExperimentConfig eff = grid[pick];
      if (eff.checkpoint.every > sim::Time::zero()) {
        const std::string ckpt_dir =
            cfg_.campaign_dir + "/ckpt_job_" + std::to_string(pick);
        std::error_code ec;
        std::filesystem::create_directories(ckpt_dir, ec);
        eff.checkpoint.dir = ckpt_dir;
        std::string resumed_from = "fresh";
        // A retry within this campaign process (attempts > 1) or a job that
        // already ran in a resumed campaign (non-empty lineage) prefers the
        // newest snapshot it left behind.
        if (j.attempts > 1 || !j.lineage.empty()) {
          const std::uint64_t fp = ckpt::config_fingerprint(eff);
          const std::string best = ckpt::newest_valid(ckpt_dir, fp, /*verbose=*/true);
          if (!best.empty()) {
            eff.checkpoint.restore_path = best;
            resumed_from = best.substr(best.find_last_of('/') + 1);
            if (c_ckpt_restores != nullptr) c_ckpt_restores->inc();
            ckpt::Header h;
            if (cfg_.tracer != nullptr && ckpt::probe_file(best, fp, h)) {
              std::error_code fec;
              const auto sz = std::filesystem::file_size(best, fec);
              cfg_.tracer->ckpt_restore(trace_now(), h.seq, fec ? 0 : sz,
                                        sim::Time::nanoseconds(h.t_ns).us());
            }
          } else if (c_ckpt_fallbacks != nullptr) {
            // A prior attempt ran but left no usable snapshot: fresh start.
            c_ckpt_fallbacks->inc();
          }
        }
        j.lineage.push_back(resumed_from);
      }

      manifest.save(cfg_.campaign_dir);
      if (c_spawns != nullptr) c_spawns->inc();
      if (cfg_.tracer != nullptr) {
        cfg_.tracer->job_spawn(trace_now(), static_cast<std::uint32_t>(pick), j.attempts);
      }

      // Flush stdio so the child does not replay buffered parent output.
      std::fflush(stdout);
      std::fflush(stderr);
      const pid_t pid = ::fork();
      if (pid == 0) {
        // Child: run the job body and leave without running atexit hooks —
        // the parent's state (manifest, tracer, stdio) is not ours to touch.
        int code = 125;
        try {
          code = body(pick, eff, cfg_.campaign_dir + "/" + j.result_file, j.attempts - 1);
        } catch (...) {
          code = 125;
        }
        std::_Exit(code);
      }
      if (pid < 0) {
        // fork failed (EAGAIN/ENOMEM): count it as a failed attempt so the
        // campaign backs off instead of spinning.
        settle(pick, 0x7f00 /* synthetic "exit 127" */, false, Clock::now());
        continue;
      }
      RunningChild rc;
      rc.pid = pid;
      rc.job = pick;
      rc.start = Clock::now();
      rc.has_deadline = cfg_.job_timeout_s > 0;
      if (rc.has_deadline) rc.deadline = rc.start + dur_s(cfg_.job_timeout_s);
      running.push_back(rc);
    }

    if (running.empty()) {
      if (!unsettled()) break;           // campaign quiescent: all terminal
      std::this_thread::sleep_for(dur_s(cfg_.poll_interval_s));  // backoff wait
      continue;
    }

    // Reap phase: non-blocking wait on every child; SIGKILL watchdog
    // overruns and reap them synchronously.
    bool reaped = false;
    for (auto it = running.begin(); it != running.end();) {
      int st = 0;
      const pid_t r = ::waitpid(it->pid, &st, WNOHANG);
      bool timed_out = false;
      if (r == 0) {
        if (it->has_deadline && Clock::now() > it->deadline) {
          ::kill(it->pid, SIGKILL);
          ::waitpid(it->pid, &st, 0);
          timed_out = true;
        } else {
          ++it;
          continue;
        }
      }
      settle(it->job, st, timed_out, it->start);
      it = running.erase(it);
      reaped = true;
    }
    if (!reaped) std::this_thread::sleep_for(dur_s(cfg_.poll_interval_s));
  }

  out.jobs = manifest.jobs;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!out.results[i]) out.incomplete.push_back(i);
  }
  return out;
}

std::string job_result_file(std::size_t index) { return "job_" + std::to_string(index) + ".json"; }

int run_sweep_job(std::size_t index, const ExperimentConfig& cfg, const std::string& result_path) {
  try {
    const ExperimentResults res = run_experiment(cfg);
    {
      trace::JsonWriter json{result_path};
      json.begin_object();
      json.kv("index", static_cast<std::uint64_t>(index));
      json.kv("goodput_mbps", res.avg_goodput_mbps());
      json.kv("events", res.events_dispatched);
      json.kv("flows", static_cast<std::uint64_t>(res.flows.size()));
      json.kv("completed_flows", static_cast<std::uint64_t>(res.goodput.count()));
      json.kv("aborted_flows", res.aborted_flows);
      if (res.fct.enabled()) {
        // FCT quantiles ride in the job file so the campaign-level
        // fct_summary.json can be rebuilt from files alone (the resume
        // byte-identity contract).
        json.key("fct");
        json.begin_object();
        json.kv("offered_load", res.fct.offered_load);
        json.kv("completed", res.fct.completed);
        json.kv("censored", res.fct.censored);
        auto quantiles = [&](const char* name, const stats::Distribution& d) {
          json.key(name);
          json.begin_object();
          json.kv("count", static_cast<std::uint64_t>(d.count()));
          json.kv("mean", d.count() > 0 ? d.mean() : 0.0);
          json.kv("p50", d.count() > 0 ? d.percentile(50) : 0.0);
          json.kv("p95", d.count() > 0 ? d.percentile(95) : 0.0);
          json.kv("p99", d.count() > 0 ? d.percentile(99) : 0.0);
          json.end_object();
        };
        quantiles("all", res.fct.slowdown_all);
        json.key("bins");
        json.begin_object();
        for (int b = 0; b < ExperimentResults::FctStats::kBins; ++b) {
          quantiles(ExperimentResults::FctStats::bin_name(b), res.fct.slowdown_by_bin[b]);
        }
        json.end_object();
        json.end_object();
      }
      json.end_object();
      if (!json.ok()) return 5;
    }
    return res.invariant_violations.empty() ? 0 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "job %zu: %s\n", index, e.what());
    return 4;
  } catch (...) {
    return 4;
  }
}

bool load_job_result(const std::string& path, JobResult& out, std::string* error) {
  json::JsonValue root;
  if (!json::parse_file(path, root, error)) return false;
  if (!root.is_object() || !root.has("goodput_mbps") || !root.has("events")) {
    if (error != nullptr) *error = path + ": not a job result file";
    return false;
  }
  out = JobResult{};
  out.goodput_mbps = root.at("goodput_mbps").number;
  out.events = static_cast<std::uint64_t>(root.at("events").number);
  if (root.has("flows")) out.flows = static_cast<std::uint64_t>(root.at("flows").number);
  if (root.has("completed_flows")) {
    out.completed_flows = static_cast<std::uint64_t>(root.at("completed_flows").number);
  }
  if (root.has("aborted_flows")) {
    out.aborted_flows = static_cast<std::uint64_t>(root.at("aborted_flows").number);
  }
  if (root.has("fct") && root.at("fct").is_object()) {
    const json::JsonValue& fct = root.at("fct");
    auto quantiles = [&](const json::JsonValue& q, JobResult::FctQuantiles& out_q) {
      if (!q.is_object()) return;
      if (q.has("count")) out_q.count = static_cast<std::uint64_t>(q.at("count").number);
      if (q.has("mean")) out_q.mean = q.at("mean").number;
      if (q.has("p50")) out_q.p50 = q.at("p50").number;
      if (q.has("p95")) out_q.p95 = q.at("p95").number;
      if (q.has("p99")) out_q.p99 = q.at("p99").number;
    };
    out.has_fct = true;
    if (fct.has("offered_load")) out.fct_load = fct.at("offered_load").number;
    if (fct.has("completed")) {
      out.fct_completed = static_cast<std::uint64_t>(fct.at("completed").number);
    }
    if (fct.has("censored")) {
      out.fct_censored = static_cast<std::uint64_t>(fct.at("censored").number);
    }
    if (fct.has("all")) quantiles(fct.at("all"), out.fct_all);
    if (fct.has("bins") && fct.at("bins").is_object()) {
      for (int b = 0; b < ExperimentResults::FctStats::kBins; ++b) {
        const char* name = ExperimentResults::FctStats::bin_name(b);
        if (fct.at("bins").has(name)) {
          quantiles(fct.at("bins").at(name), out.fct_bins[static_cast<std::size_t>(b)]);
        }
      }
    }
  }
  return true;
}

}  // namespace xmp::core
