#include "core/job_manifest.hpp"

#include <cmath>

#include "core/mini_json.hpp"
#include "trace/writers.hpp"

namespace xmp::core {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Pending:
      return "pending";
    case JobState::Running:
      return "running";
    case JobState::Succeeded:
      return "succeeded";
    case JobState::Failed:
      return "failed";
    case JobState::Exhausted:
      return "exhausted";
  }
  return "?";
}

bool parse_job_state(const std::string& name, JobState& out) {
  for (const JobState s : {JobState::Pending, JobState::Running, JobState::Succeeded,
                           JobState::Failed, JobState::Exhausted}) {
    if (name == job_state_name(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

bool JobManifest::save(const std::string& dir, std::string* error) const {
  const std::string path = dir + "/" + kFileName;
  {
    // JsonWriter stages into "<path>.tmp" and renames on destruction, so
    // the manifest on disk is always a complete document.
    trace::JsonWriter json{path};
    json.begin_object();
    json.kv("version", static_cast<std::int64_t>(kVersion));
    json.kv("param", param);
    json.key("argv");
    json.begin_array();
    for (const auto& a : argv) json.value(a);
    json.end_array();
    json.key("jobs");
    json.begin_array();
    for (const auto& j : jobs) {
      json.begin_object();
      json.kv("index", static_cast<std::uint64_t>(j.index));
      json.kv("value", j.value);
      json.kv("state", job_state_name(j.state));
      json.kv("attempts", static_cast<std::int64_t>(j.attempts));
      json.kv("result", j.result_file);
      json.kv("error", j.last_error);
      if (!j.lineage.empty()) {
        json.key("lineage");
        json.begin_array();
        for (const auto& l : j.lineage) json.value(l);
        json.end_array();
      }
      json.end_object();
    }
    json.end_array();
    json.end_object();
    if (!json.ok()) {
      if (error != nullptr) *error = "cannot write " + path;
      return false;
    }
  }
  return true;
}

bool JobManifest::load(const std::string& dir, JobManifest& out, std::string* error) {
  const std::string path = dir + "/" + kFileName;
  json::JsonValue root;
  if (!json::parse_file(path, root, error)) return false;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = path + ": " + what;
    return false;
  };
  if (!root.is_object()) return fail("not a JSON object");
  if (!root.has("version") || static_cast<int>(root.at("version").number) != kVersion) {
    return fail("missing or unsupported manifest version");
  }
  if (!root.has("param") || !root.at("param").is_string()) return fail("missing param");
  if (!root.has("argv") || !root.at("argv").is_array()) return fail("missing argv");
  if (!root.has("jobs") || !root.at("jobs").is_array()) return fail("missing jobs");

  out = JobManifest{};
  out.param = root.at("param").str;
  for (const auto& a : root.at("argv").array) {
    if (!a.is_string()) return fail("argv entries must be strings");
    out.argv.push_back(a.str);
  }
  for (const auto& jv : root.at("jobs").array) {
    if (!jv.is_object()) return fail("job entries must be objects");
    JobEntry j;
    if (!jv.has("index") || !jv.at("index").is_number()) return fail("job missing index");
    j.index = static_cast<std::size_t>(jv.at("index").number);
    if (!jv.has("value") || !jv.at("value").is_number()) return fail("job missing value");
    j.value = jv.at("value").number;
    if (!jv.has("state") || !jv.at("state").is_string() ||
        !parse_job_state(jv.at("state").str, j.state)) {
      return fail("job missing or unknown state");
    }
    if (jv.has("attempts")) j.attempts = static_cast<int>(jv.at("attempts").number);
    if (jv.has("result")) j.result_file = jv.at("result").str;
    if (jv.has("error")) j.last_error = jv.at("error").str;
    if (jv.has("lineage") && jv.at("lineage").is_array()) {
      for (const auto& l : jv.at("lineage").array) {
        if (!l.is_string()) return fail("lineage entries must be strings");
        j.lineage.push_back(l.str);
      }
    }
    if (j.index != out.jobs.size()) return fail("job indices must be dense and ordered");
    out.jobs.push_back(std::move(j));
  }
  return true;
}

double retry_backoff_s(double base_s, int attempt, std::size_t job_index) {
  // splitmix64 over a mix of job index and attempt number.
  std::uint64_t z = static_cast<std::uint64_t>(job_index) * 0x9E3779B97F4A7C15ull +
                    (static_cast<std::uint64_t>(attempt) + 1) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  const double jitter = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
  return base_s * std::ldexp(1.0, attempt) * (1.0 + 0.5 * jitter);
}

}  // namespace xmp::core
