#pragma once

/// Umbrella header: the public API of the xmp-sim library.
///
/// Layers, bottom-up:
///   - sim:       discrete-event scheduler, virtual time, deterministic RNG
///   - net:       packets, ECN-marking queues, links, switches, hosts
///   - route:     per-switch forwarding tables + pluggable multipath policy
///   - topo:      Fat-Tree and pinned-path (testbed-style) topologies
///   - transport: TCP machinery + Reno / DCTCP / BOS congestion control
///   - mptcp:     MPTCP connections + XMP (BOS+TraSh) / LIA / OLIA coupling
///   - workload:  the paper's Permutation / Random / Incast patterns
///   - stats:     distributions, rate/gauge probes, utilization windows
///   - faults:    deterministic fault injection + runtime invariant probe
///   - core:      one-call experiment runner for the paper's evaluation
///
/// Quickstart: see examples/quickstart.cpp.

#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"
#include "faults/fault_controller.hpp"
#include "faults/fault_plan.hpp"
#include "faults/invariant_checker.hpp"
#include "mptcp/connection.hpp"
#include "mptcp/path_manager.hpp"
#include "net/network.hpp"
#include "route/policy.hpp"
#include "route/route_manager.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "stats/ascii_chart.hpp"
#include "stats/distribution.hpp"
#include "stats/probes.hpp"
#include "topo/fattree.hpp"
#include "topo/pinned.hpp"
#include "transport/flow.hpp"
#include "workload/flow_manager.hpp"
#include "workload/incast.hpp"
#include "workload/permutation.hpp"
#include "workload/random_traffic.hpp"
#include "workload/scheme.hpp"
