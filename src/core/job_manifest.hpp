#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xmp::core {

/// Lifecycle of one sweep job inside a campaign (DESIGN.md §10):
///
///   Pending ──spawn──▶ Running ──exit 0 + result──▶ Succeeded
///                         │
///                         └──exit!=0 / signal / timeout──▶ Failed
///                                │                            │
///          retries left: back to Running after backoff ◀──────┤
///                                │                            │
///                                └──retries exhausted──▶ Exhausted
///
/// Failed is a *transient* state (the job will be respawned after its
/// backoff); Succeeded and Exhausted are terminal.
enum class JobState : std::uint8_t { Pending, Running, Succeeded, Failed, Exhausted };

[[nodiscard]] const char* job_state_name(JobState s);
[[nodiscard]] bool parse_job_state(const std::string& name, JobState& out);

/// One job row of the campaign manifest.
struct JobEntry {
  std::size_t index = 0;    ///< position in the sweep grid
  double value = 0.0;       ///< swept parameter value of this grid point
  JobState state = JobState::Pending;
  int attempts = 0;         ///< child processes spawned so far for this job
  std::string result_file;  ///< campaign-dir-relative result JSON ("job_<i>.json")
  std::string last_error;   ///< "", "exit N", "signal N", "timeout", "missing result"
  /// Checkpoint lineage, one entry per spawned attempt: "fresh" for a clean
  /// start, or the ckpt_<seq>.bin file the attempt resumed from. Empty when
  /// the campaign runs without --checkpoint-every.
  std::vector<std::string> lineage;
};

/// Per-campaign sweep manifest, persisted as sweep_manifest.json in the
/// campaign directory. Saved atomically (temp file + fsync + rename) after
/// every job-state transition, so a campaign killed at any instant — even
/// SIGKILL mid-write — leaves a consistent manifest behind. On
/// `xmpsim sweep --resume <dir>` the stored argv rebuilds the grid,
/// Succeeded jobs with a parseable result file are skipped, and everything
/// else re-runs from Pending.
struct JobManifest {
  static constexpr int kVersion = 1;
  static constexpr const char* kFileName = "sweep_manifest.json";

  std::string param;              ///< swept parameter name (--param)
  std::vector<std::string> argv;  ///< original sweep arguments, verbatim
  std::vector<JobEntry> jobs;

  /// Atomic write of <dir>/sweep_manifest.json. Returns false and sets
  /// *error on I/O failure.
  bool save(const std::string& dir, std::string* error = nullptr) const;

  /// Load <dir>/sweep_manifest.json. Returns false and sets *error when the
  /// file is missing, malformed, or a different manifest version.
  static bool load(const std::string& dir, JobManifest& out, std::string* error = nullptr);
};

/// Deterministic retry backoff: base * 2^attempt stretched by up to +50%
/// jitter. The jitter is derived from (job index, attempt) via splitmix64 —
/// never rand() — so a replayed campaign schedules retries at identical
/// offsets, while concurrent failing jobs still decorrelate instead of
/// thundering back in lockstep. `attempt` counts prior failures (0 = first
/// retry).
[[nodiscard]] double retry_backoff_s(double base_s, int attempt, std::size_t job_index);

}  // namespace xmp::core
