#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include <string>

#include "faults/fault_plan.hpp"
#include "obs/timeline.hpp"
#include "route/policy.hpp"
#include "sim/time.hpp"
#include "stats/distribution.hpp"
#include "stats/probes.hpp"
#include "topo/fattree.hpp"
#include "workload/flow_manager.hpp"
#include "workload/incast.hpp"
#include "workload/scheme.hpp"
#include "workload/traffic_matrix.hpp"

namespace xmp::core {

/// Which traffic pattern to run: the paper's §5.2.1 synthetic patterns,
/// or an empirical workload file (open-loop Poisson arrivals from a
/// flow-size CDF plus optional explicit flows — DESIGN.md §13).
enum class Pattern { Permutation, Random, Incast, Workload };

/// Observability outputs for one run. All paths are optional; when every
/// path is empty no tracer/registry is even constructed, so the run is
/// byte-identical to a build without the obs layer.
struct ObsConfig {
  std::string trace_json;   ///< Chrome trace-event JSON (Perfetto)
  std::string trace_csv;    ///< flat CSV of the same events
  std::string metrics_json; ///< MetricsRegistry dump
  /// Per-flow FCT records (id, size, start, finish/censored, slowdown) as
  /// CSV, atomic-writer published. Workload runs only; per-job in sweeps.
  std::string fct_csv;
  std::uint32_t categories = obs::cat::kAll;  ///< --trace-filter mask
  std::size_t capacity = 1u << 18;            ///< tracer ring, events

  [[nodiscard]] bool tracing() const { return !trace_json.empty() || !trace_csv.empty(); }
  [[nodiscard]] bool enabled() const { return tracing() || !metrics_json.empty(); }
};

[[nodiscard]] const char* pattern_name(Pattern p);

/// In-run checkpoint/restore settings (DESIGN.md §12). Deliberately excluded
/// from the config fingerprint: the same logical run may be checkpointed at
/// different cadences, restored, or replayed with extra observability.
struct CheckpointConfig {
  /// Snapshot cadence in sim time; zero disables periodic checkpoints.
  sim::Time every = sim::Time::zero();
  /// Directory receiving ckpt_<seq>.bin files (must exist; "." by default).
  std::string dir = ".";
  /// Resume from this checkpoint file instead of starting fresh.
  std::string restore_path;
  /// External stop flag (SIGTERM handler). When it flips, the run halts at
  /// the next inter-event point, writes a final checkpoint (if a dir is
  /// configured) and returns with ckpt.interrupted set.
  const std::atomic<bool>* stop_requested = nullptr;

  [[nodiscard]] bool enabled() const {
    return every > sim::Time::zero() || !restore_path.empty() || stop_requested != nullptr;
  }
};

/// Hybrid fluid/packet engine settings (DESIGN.md §14). When enabled the run
/// replaces its traffic pattern with `bg_flows` fluid background aggregates
/// (per-RTT BOS/TraSh ODEs on the run's scheme) plus `fg_flows`
/// packet-accurate foreground flows, coupled through shared queue state.
/// Requires an XMP scheme (the fluid model implements the §2 dynamics), the
/// serial engine, and no fault plan / coexistence / explicit pattern.
struct HybridConfig {
  bool enabled = false;
  int bg_flows = 1000;            ///< fluid background aggregates
  std::int64_t bg_bytes = -1;     ///< per-flow bytes; -1 = unbounded steady state
  int fg_flows = 4;               ///< packet-accurate foreground flows
  std::int64_t fg_bytes = 8'000'000;  ///< per foreground flow (restarted on finish)
  /// Promote a finite fluid flow to the packet domain for its last
  /// `promote_bytes` bytes (0 = finish entirely as fluid).
  std::int64_t promote_bytes = 0;
  sim::Time tick = sim::Time::microseconds(200);  ///< fluid step, ≈ one RTT
};

/// Declarative configuration of one Fat-Tree evaluation run (the setting of
/// the paper's Tables 1–3 and Figures 8–11).
struct ExperimentConfig {
  workload::SchemeSpec scheme;
  /// When set, the sending hosts are split evenly between `scheme` and
  /// `scheme_b` (the Table 2 coexistence scenarios).
  std::optional<workload::SchemeSpec> scheme_b;

  Pattern pattern = Pattern::Permutation;

  int fat_tree_k = 8;
  std::size_t queue_capacity = 100;  ///< packets
  std::size_t mark_threshold = 10;   ///< K

  /// Large-flow sizes. Paper: 64–512 MB uniform (Permutation) and
  /// Pareto(1.5, mean 192 MB, cap 768 MB) (Random/Incast); defaults are
  /// scaled 32x down — see DESIGN.md §3.
  std::int64_t perm_min_bytes = 2'000'000;
  std::int64_t perm_max_bytes = 16'000'000;
  std::int64_t rand_min_bytes = 2'000'000;
  std::int64_t rand_max_bytes = 24'000'000;

  int permutation_rounds = 2;
  /// Wall-clock (simulated) horizon for Random/Incast, and a safety cap
  /// for Permutation.
  sim::Time duration = sim::Time::seconds(0.6);

  workload::IncastTraffic::Config incast;

  /// Parsed workload file (Pattern::Workload only). Shared, immutable:
  /// sweep grids copy the config per grid point without re-parsing, and
  /// forked campaign jobs inherit the mapping.
  std::shared_ptr<const workload::WorkloadSpec> workload;
  /// Offered load per sender for Pattern::Workload; 0 defers to the
  /// workload file's `load` directive.
  double offered_load = 0.0;

  std::uint64_t seed = 1;
  sim::Time rtt_sample_interval = sim::Time::milliseconds(5);

  /// Upward forwarding tables of every switch (src/route/). The default
  /// Pinned policy reproduces the legacy built-in hash bit for bit, and a
  /// fault-free run schedules no routing events, so the default config is
  /// byte-identical to builds without the routing layer. Under a fault
  /// plan, tables converge around failed links after `routing.reroute_delay`.
  route::RouteConfig routing;

  /// Fault injection (empty plan = fault-free, bit-identical to builds
  /// without the fault subsystem). The fault seed is independent of the
  /// workload seed so the same faults can be replayed across workloads.
  faults::FaultPlan fault_plan;
  std::uint64_t fault_seed = 1;
  /// Run the opt-in InvariantChecker probe alongside the experiment.
  bool check_invariants = false;

  /// Worker threads for the sharded conservative-sync engine; 0 runs the
  /// serial engine (the default, byte-for-byte the legacy behavior). Any
  /// value >= 1 selects the sharded engine: the fabric is partitioned into
  /// one *logical* shard per pod (fixed by the topology, never by this
  /// knob), so results are bit-identical across every `shards` value.
  /// Sharded runs support the Permutation pattern only, and neither
  /// flowlet routing, invariant checking, subflow re-homing nor a
  /// coexistence scheme_b (the serial engine covers those).
  int shards = 0;

  /// Hybrid fluid/packet engine (inactive by default).
  HybridConfig hybrid;

  /// Trace/metrics exports (inactive unless a path is set).
  ObsConfig obs;

  /// In-run checkpoint/restore (inactive by default).
  CheckpointConfig checkpoint;
};

/// Everything the paper reports from one run.
struct ExperimentResults {
  /// All transfer records (completed and not; small flows included).
  std::vector<workload::FlowRecord> flows;
  /// Locality category per entry of `flows`.
  std::vector<topo::FatTree::Category> flow_category;
  /// Which scheme issued each entry of `flows` (0 = scheme, 1 = scheme_b).
  std::vector<int> flow_scheme;

  std::vector<workload::JobRecord> jobs;

  /// Goodput of completed large flows, Mbps.
  stats::Distribution goodput;
  std::array<stats::Distribution, 3> goodput_by_category;  ///< index = Category
  stats::Distribution goodput_b;  ///< scheme_b flows (coexistence runs)

  /// Sampled smoothed RTTs of active large flows, milliseconds.
  std::array<stats::Distribution, 3> rtt_by_category;

  /// Per-link utilization in [0,1] over the run, per layer.
  std::array<stats::Distribution, 3> utilization_by_layer;  ///< index = Layer

  /// Time-weighted mean queue occupancy (packets) per link, per layer —
  /// the buffer-occupancy claim behind the paper's Fig. 10.
  std::array<stats::Distribution, 3> queue_occupancy_by_layer;

  sim::Time sim_duration = sim::Time::zero();
  std::uint64_t events_dispatched = 0;

  /// Fleet-wide per-cause drop accounting (all links).
  stats::DropBreakdown drops;
  /// Per-link drop rows for CSV export; only links that saw traffic.
  struct LinkDropRow {
    net::LinkId link = 0;
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    net::LinkDropCounters drops;
    // Gray-failure impairments (survivor effects, not drops).
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::uint64_t overmarked = 0;
  };
  std::vector<LinkDropRow> link_drops;

  // --- routing-layer accounting (src/route/) ---
  /// Packets forwarded / with no usable output port, summed over switches.
  std::uint64_t switch_forwarded = 0;
  std::uint64_t switch_unroutable = 0;
  /// Converged table changes (link died or was repaired) applied by the
  /// RouteManager; 0 in fault-free runs.
  std::uint64_t route_reroutes = 0;
  /// Ecmp/Wcmp flows hashed onto a busy port while an idle one existed.
  std::uint64_t route_collisions = 0;
  /// Flowlet idle-gap expiries that actually moved a flow.
  std::uint64_t flowlet_repaths = 0;
  /// MPTCP subflows re-homed onto a fresh path instead of being killed.
  std::uint64_t path_rehomes = 0;
  /// Per-switch forwarding rows for CSV export; only switches that saw
  /// unroutable packets (the interesting ones — forwarded totals are in
  /// `switch_forwarded`).
  struct SwitchDropRow {
    net::NodeId node = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t unroutable = 0;
  };
  std::vector<SwitchDropRow> switch_drops;

  /// FCT-slowdown accounting for Pattern::Workload runs (zeroed otherwise).
  /// Slowdown = actual FCT / ideal FCT, where the ideal is the unloaded
  /// fabric: the flow's one-way propagation delay by locality category plus
  /// its serialization time at line rate (DESIGN.md §13). Open-loop flows
  /// still in flight at the horizon are *censored* — counted, never folded
  /// into the percentiles — so high-load numbers cannot silently improve
  /// by dropping their slowest flows.
  struct FctStats {
    static constexpr int kBins = 5;  ///< 0-10K, 10-100K, 100K-1M, 1-10M, >10M
    [[nodiscard]] static const char* bin_name(int b);
    [[nodiscard]] static int bin_of(std::int64_t bytes);

    std::array<stats::Distribution, kBins> slowdown_by_bin;
    stats::Distribution slowdown_all;
    std::uint64_t completed = 0;
    std::uint64_t censored = 0;     ///< arrived but unfinished (or aborted)
    double offered_load = 0.0;      ///< effective per-sender load
    double arrival_rate = 0.0;      ///< aggregate Poisson arrivals/sec

    [[nodiscard]] bool enabled() const { return completed + censored > 0; }
  };
  FctStats fct;

  /// One row per flow for the --fct-csv export (workload runs only; empty
  /// otherwise). Censored flows carry finish_ns = 0 and slowdown = 0.
  struct FctRecord {
    net::FlowId id = 0;
    std::int64_t bytes = 0;
    std::int64_t start_ns = 0;
    std::int64_t finish_ns = 0;
    bool completed = false;  ///< false = censored at the horizon (or aborted)
    double slowdown = 0.0;   ///< actual / ideal FCT
  };
  std::vector<FctRecord> fct_records;

  /// Hybrid fluid/packet engine accounting (zeroed unless cfg.hybrid).
  struct HybridStats {
    bool enabled = false;
    int bg_flows = 0;               ///< configured fluid aggregates
    int fg_flows = 0;               ///< packet-accurate foreground flows
    int active_fluid = 0;           ///< still evolving as fluid at the horizon
    std::uint64_t ticks = 0;        ///< fluid steps executed
    std::uint64_t promotions = 0;   ///< fluid -> packet representation switches
    std::uint64_t fluid_completions = 0;  ///< finite flows drained fully as fluid
    double fluid_bytes = 0.0;       ///< bytes delivered by the fluid model
    double fluid_throughput_mbps = 0.0;   ///< aggregate fluid goodput
    double mean_mark_p = 0.0;       ///< arrival-weighted mean marking probability
  };
  HybridStats hybrid;

  /// Multipath transfers that lost every subflow (requires a SchemeSpec
  /// with dead_after_rtos > 0 and a hostile enough FaultPlan).
  std::uint64_t aborted_flows = 0;

  /// InvariantChecker findings (empty unless cfg.check_invariants).
  std::uint64_t invariant_checks = 0;
  std::vector<std::string> invariant_violations;

  /// Sharded-engine accounting (zeroed in serial runs). Every field is a
  /// function of the logical shard structure only — independent of the
  /// worker count — so it belongs in deterministic summary output.
  struct ShardStats {
    int logical_shards = 0;       ///< fixed by the topology (k for a Fat-Tree)
    double lookahead_us = 0.0;    ///< min cross-shard propagation delay
    std::uint64_t epochs = 0;     ///< conservative windows executed
    std::uint64_t barriers = 0;   ///< synchronisation points (incl. serial segments)
    std::uint64_t handoff_packets = 0;  ///< packets crossing shard boundaries
    std::uint64_t micro_steps = 0;      ///< events run one-at-a-time in serial segments
    std::uint64_t replays = 0;          ///< attempts discarded by the round-flip gate
  };
  ShardStats shard;
  bool sharded = false;

  /// Checkpoint accounting (zeroed when checkpointing is off). `written` and
  /// `bytes` are lineage-cumulative: a restored run inherits the totals of
  /// the checkpoints that led to it, so the final numbers match an
  /// uninterrupted run of the same config.
  struct CkptStats {
    std::uint64_t written = 0;
    std::uint64_t bytes = 0;
    bool restored = false;        ///< this run resumed from a checkpoint
    std::uint64_t restored_seq = 0;
    sim::Time restored_t = sim::Time::zero();
    bool interrupted = false;     ///< external stop cut the run short
    std::string last_path;        ///< newest checkpoint written by this run
  };
  CkptStats ckpt;

  [[nodiscard]] double avg_goodput_mbps() const { return goodput.mean(); }
  [[nodiscard]] double avg_goodput_b_mbps() const { return goodput_b.mean(); }

  /// Average job completion time (ms) and the fraction exceeding 300 ms
  /// (paper Table 3).
  [[nodiscard]] double avg_job_completion_ms() const;
  [[nodiscard]] double job_completion_over_ms(double threshold_ms) const;
};

/// One self-contained Fat-Tree evaluation run. Builds the topology, the
/// workload and the scheme from the config, runs to completion, and
/// collects the paper's metrics.
[[nodiscard]] ExperimentResults run_experiment(const ExperimentConfig& cfg);

/// The sharded conservative-sync engine behind run_experiment when
/// cfg.shards >= 1 (exposed for tests; run_experiment dispatches here).
/// Preconditions (asserted; the CLI rejects them with a diagnostic):
/// Permutation pattern, no scheme_b, no flowlet routing, no invariant
/// checking, no subflow re-homing.
[[nodiscard]] ExperimentResults run_experiment_sharded(const ExperimentConfig& cfg);

}  // namespace xmp::core
