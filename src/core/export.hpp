#pragma once

#include <string>

#include "core/experiment.hpp"

namespace xmp::core {

/// Write one row per transfer (large and small) to a CSV file:
/// id,src,dst,bytes,large,category,scheme,start_s,finish_s,completed,goodput_mbps
void export_flows_csv(const ExperimentResults& results, const std::string& path);

/// Write the experiment configuration and summary metrics (goodput,
/// job-completion, RTT and utilization distributions, drop breakdown) as a
/// JSON document.
void export_summary_json(const ExperimentConfig& cfg, const ExperimentResults& results,
                         const std::string& path);

/// Write one row per flow of a workload run's FCT records:
/// id,bytes,start_s,finish_s,completed,slowdown
/// Censored flows (unfinished at the horizon) carry finish_s = -1,
/// completed = 0 and slowdown = 0.
void export_fct_csv(const ExperimentResults& results, const std::string& path);

/// Write one row per link that saw traffic, with per-cause drop counters:
/// link,offered,delivered,drops_queue,drops_admin_down,drops_fault,drops_corrupt,drops_unroutable
/// followed by one row per switch that dropped packets for lack of a usable
/// output port (link column = "sw<id>", offered = forwarded + unroutable).
void export_link_drops_csv(const ExperimentResults& results, const std::string& path);

}  // namespace xmp::core
