#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace xmp::trace {

/// Minimal CSV writer: header once, then typed rows. Values containing
/// commas/quotes are quoted per RFC 4180.
///
/// Crash-safe: rows are streamed to "<path>.tmp" and the real name only
/// appears on destruction (fsync + rename, see trace/atomic_file.hpp), so
/// an interrupted run never leaves a torn CSV behind.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  [[nodiscard]] bool ok() const { return out_.good(); }

  void header(const std::vector<std::string>& columns);

  CsvWriter& field(const std::string& v);
  CsvWriter& field(double v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }
  void end_row();

 private:
  void sep();

  std::string path_;
  std::ofstream out_;
  bool row_started_ = false;
};

/// Minimal JSON emitter (objects, arrays, scalars) — enough to export
/// experiment results without external dependencies. Not a general
/// serializer: the caller is responsible for balanced begin/end calls
/// (assertions check nesting in debug builds).
///
/// Crash-safe like CsvWriter: the document is staged in "<path>.tmp" and
/// atomically renamed into place on destruction.
class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  [[nodiscard]] bool ok() const { return out_.good(); }

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object; must be followed by a value/begin call.
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v) { value(std::string{v}); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);

  // Convenience: key + scalar value.
  template <typename T>
  void kv(const std::string& k, T v) {
    key(k);
    value(v);
  }

 private:
  void comma_if_needed();
  void indent();
  static std::string escape(const std::string& s);

  std::string path_;
  std::ofstream out_;
  std::vector<bool> needs_comma_;  ///< per nesting level
  bool after_key_ = false;
  int depth_ = 0;
};

}  // namespace xmp::trace
