#pragma once

#include <string>

namespace xmp::trace {

/// The temp name every crash-safe writer stages into: "<path>.tmp". A
/// reader never sees this name appear at `path`, so a crash at any instant
/// leaves either the previous complete file or nothing — never a torn one.
[[nodiscard]] std::string tmp_path_for(const std::string& path);

/// Publish a fully-written temp file as `path`: fsync(tmp), rename(tmp,
/// path), then best-effort fsync of the containing directory so the rename
/// itself survives a power cut. Returns false (and sets *error) if the
/// temp file cannot be synced or renamed; the temp file is removed on
/// failure.
bool commit_tmp_file(const std::string& tmp, const std::string& path,
                     std::string* error = nullptr);

/// Crash-safe whole-file write: `content` goes to "<path>.tmp" and is
/// published via commit_tmp_file. This is the primitive behind every
/// result-file export (summary JSON, drops CSV, metrics, traces, sweep
/// manifests); an interrupted run can leave a stale *.tmp but never a
/// half-written artifact under the real name.
bool atomic_write_file(const std::string& path, const std::string& content,
                       std::string* error = nullptr);

}  // namespace xmp::trace
