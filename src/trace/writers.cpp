#include "trace/writers.hpp"

#include <cassert>
#include <cstdio>

#include "trace/atomic_file.hpp"

namespace xmp::trace {
namespace {

/// Shared teardown for both writers: publish the staged temp file if every
/// write succeeded, otherwise discard it so a failed export leaves no
/// artifact at all (and never a torn one).
void finish_atomic(std::ofstream& out, const std::string& path) {
  out.flush();
  const bool good = out.good();
  out.close();
  const std::string tmp = tmp_path_for(path);
  if (good) {
    commit_tmp_file(tmp, path);
  } else {
    std::remove(tmp.c_str());
  }
}

}  // namespace

// ---------------------------------------------------------------- CSV ---

CsvWriter::CsvWriter(const std::string& path) : path_{path}, out_{tmp_path_for(path)} {}

CsvWriter::~CsvWriter() {
  if (row_started_) end_row();
  finish_atomic(out_, path_);
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  for (const auto& c : columns) field(c);
  end_row();
}

void CsvWriter::sep() {
  if (row_started_) out_ << ',';
  row_started_ = true;
}

CsvWriter& CsvWriter::field(const std::string& v) {
  sep();
  if (v.find_first_of(",\"\n") != std::string::npos) {
    out_ << '"';
    for (char c : v) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  } else {
    out_ << v;
  }
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  sep();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ << buf;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  sep();
  out_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  sep();
  out_ << v;
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_started_ = false;
}

// --------------------------------------------------------------- JSON ---

JsonWriter::JsonWriter(const std::string& path) : path_{path}, out_{tmp_path_for(path)} {
  needs_comma_.push_back(false);
}

JsonWriter::~JsonWriter() {
  out_ << '\n';
  finish_atomic(out_, path_);
}

std::string JsonWriter::escape(const std::string& s) {
  std::string r;
  r.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        r += "\\\"";
        break;
      case '\\':
        r += "\\\\";
        break;
      case '\n':
        r += "\\n";
        break;
      case '\t':
        r += "\\t";
        break;
      default:
        // RFC 8259: all other control characters must be \u-escaped.
        // Non-ASCII bytes pass through untouched (UTF-8 is valid JSON).
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          r += buf;
        } else {
          r += c;
        }
    }
  }
  return r;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (needs_comma_.back()) out_ << ",";
  if (depth_ > 0) {
    out_ << '\n';
    indent();
  }
  needs_comma_.back() = true;
}

void JsonWriter::indent() {
  for (int i = 0; i < depth_; ++i) out_ << "  ";
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ << '{';
  needs_comma_.push_back(false);
  ++depth_;
}

void JsonWriter::end_object() {
  assert(!after_key_);
  const bool had_content = needs_comma_.back();
  needs_comma_.pop_back();
  --depth_;
  if (had_content) {
    out_ << '\n';
    indent();
  }
  out_ << '}';
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ << '[';
  needs_comma_.push_back(false);
  ++depth_;
}

void JsonWriter::end_array() {
  assert(!after_key_);
  const bool had_content = needs_comma_.back();
  needs_comma_.pop_back();
  --depth_;
  if (had_content) {
    out_ << '\n';
    indent();
  }
  out_ << ']';
}

void JsonWriter::key(const std::string& k) {
  assert(!after_key_);
  comma_if_needed();
  out_ << '"' << escape(k) << "\": ";
  after_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma_if_needed();
  out_ << '"' << escape(v) << '"';
}

void JsonWriter::value(double v) {
  comma_if_needed();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ << v;
}

void JsonWriter::value(bool v) {
  comma_if_needed();
  out_ << (v ? "true" : "false");
}

}  // namespace xmp::trace
