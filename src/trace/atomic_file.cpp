#include "trace/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace xmp::trace {
namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

/// fsync a path opened read-only (works for both files and directories).
bool fsync_path(const std::string& path, int extra_flags = 0) {
  const int fd = ::open(path.c_str(), O_RDONLY | extra_flags);  // NOLINT
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

std::string tmp_path_for(const std::string& path) { return path + ".tmp"; }

bool commit_tmp_file(const std::string& tmp, const std::string& path, std::string* error) {
  // Data must be durable *before* the rename makes it visible, otherwise a
  // crash could publish a name pointing at unwritten blocks.
  if (!fsync_path(tmp, O_WRONLY)) {
    set_error(error, "fsync " + tmp);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + " -> " + path);
    std::remove(tmp.c_str());
    return false;
  }
  // Durability of the rename itself is best-effort: the file content is
  // already safe, and a lost rename degrades to "run never finished".
  const auto slash = path.find_last_of('/');
  fsync_path(slash == std::string::npos ? "." : path.substr(0, slash));
  return true;
}

bool atomic_write_file(const std::string& path, const std::string& content, std::string* error) {
  const std::string tmp = tmp_path_for(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);  // NOLINT
  if (fd < 0) {
    set_error(error, "open " + tmp);
    return false;
  }
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "write " + tmp);
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return commit_tmp_file(tmp, path, error);
}

}  // namespace xmp::trace
