#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace xmp::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do { u = uniform01(); } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0 && lo > 0 && hi > lo);
  const double u = uniform01();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto distribution.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

Rng Rng::split() {
  return Rng{next()};
}

}  // namespace xmp::sim
