#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace xmp::sim {

/// Identifier of a scheduled event; used for cancellation.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Discrete-event scheduler with a virtual clock.
///
/// Events scheduled for the same instant fire in FIFO order, which together
/// with the deterministic Rng makes every simulation run reproducible.
/// Cancellation is lazy: a cancelled event stays in the heap and is skipped
/// when popped, which keeps schedule/cancel O(log n) / O(1).
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedule `cb` after `delay` (must be >= 0).
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a no-op.
  void cancel(EventId id);

  /// Run until no events remain or stop() is called.
  void run();

  /// Run all events with timestamp <= `t`; the clock is advanced to `t`
  /// afterwards if the queue drained early. If stop() was called, the clock
  /// stays at the stopping event's time.
  void run_until(Time t);

  /// Request the run loop to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of live (not yet fired, not cancelled) events.
  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  /// Total events dispatched so far (for micro-benchmarks and tests).
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Item {
    Time t;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  /// Pop the earliest live event, skipping cancelled ones. Returns false if empty.
  bool pop_next(Item& out);

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  Time now_ = Time::zero();
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  bool stopped_ = false;
};

}  // namespace xmp::sim
