#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/event_callback.hpp"
#include "sim/time.hpp"

namespace xmp::sim {

/// Identifier of a scheduled event; used for cancellation.
///
/// Encodes a slab slot plus a per-slot generation, so an id for an event
/// that already fired (or was cancelled) stays invalid even after its slot
/// is reused by a later event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Discrete-event scheduler with a virtual clock.
///
/// Events scheduled for the same instant fire in FIFO order, which together
/// with the deterministic Rng makes every simulation run reproducible.
///
/// The hot path is allocation-free in steady state and built from three
/// pieces:
///  - a slab of callback slots (EventCallback small-buffer storage, no
///    heap allocation per event) recycled through a free list;
///  - an indexed 4-ary min-heap of 16-byte (time, sequence|slot) keys;
///    per-slot positions live in a dense side array, so cancel() and
///    reschedule() are O(log n) in place — no tombstones, no
///    skip-on-pop hash lookups;
///  - a monotone tail: while the heap is empty, events scheduled in
///    non-decreasing time order append to a sorted vector and pop from
///    its front, making the common schedule-ahead / drain pattern O(1)
///    per event instead of O(log n).
///
/// Dispatch order is defined purely by the (time, sequence) key, so the
/// tail is invisible to results: any run dispatches identically to a
/// pure-heap engine.
class Scheduler {
 public:
  using Callback = EventCallback;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedule `cb` after `delay` (must be >= 0).
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a no-op.
  void cancel(EventId id);

  /// Move a pending event to a new deadline, keeping its callback and id.
  /// Equivalent to cancel + schedule_at (the event re-enters the FIFO order
  /// at its new timestamp as if freshly scheduled). Returns false — and
  /// does nothing — if the id is no longer pending.
  bool reschedule(EventId id, Time t);

  /// Run until no events remain or stop() is called.
  void run();

  /// Run all events with timestamp <= `t`; the clock is advanced to `t`
  /// afterwards if the queue drained early. If stop() was called, the clock
  /// stays at the stopping event's time.
  void run_until(Time t);

  /// Run all events with timestamp strictly < `bound` and leave the clock at
  /// the last dispatched event. The conservative-sync epoch loop uses this:
  /// an event landing exactly on the epoch boundary belongs to the *next*
  /// epoch (it may be affected by cross-shard arrivals at `bound`), so the
  /// boundary itself is excluded. The caller advances the clock to the
  /// barrier time afterwards via advance_clock_to().
  void run_before(Time bound);

  /// Dispatch exactly one event (the earliest pending), advancing the clock
  /// to its timestamp. Returns false if no event is pending. Serial
  /// micro-stepping across shards is built from this.
  bool step_one();

  /// Timestamp of the earliest pending event, or Time::infinity() if none.
  [[nodiscard]] Time next_time();

  /// Move the clock forward to `t` (no-op if already past). Barriers use
  /// this to align every shard's clock on the epoch boundary so that
  /// relative delays stay correct after the handoff drain.
  void advance_clock_to(Time t) {
    if (now_ < t) now_ = t;
  }

  /// Request the run loop to return after the current event.
  void stop() { stopped_ = true; }

  /// Whether the last run loop exited via stop() (as opposed to draining or
  /// reaching its horizon). run()/run_until()/run_before() clear this flag
  /// on entry. The segmented checkpoint loop uses it to distinguish "the
  /// workload stopped the run" from "the checkpoint boundary was reached".
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Install an external stop flag (e.g. set by a SIGTERM handler) checked
  /// between events; when it becomes true the run loop returns after the
  /// current event, leaving the clock at that event's time. Unlike stop(),
  /// this does NOT set stopped(), so callers can tell the two apart. The
  /// flag object must outlive the scheduler; nullptr detaches.
  void set_external_stop(const std::atomic<bool>* flag) { stop_flag_ = flag; }

  // --- checkpoint/restore support (core/checkpoint) -----------------------
  //
  // Dispatch order is a pure function of each event's (time, sequence) key,
  // so checkpointing the pending set means saving every event's key next to
  // the owning module's state and re-arming it on restore with the same key.
  // restore_at() accepts the historical sequence explicitly, which makes the
  // re-arm order during restore irrelevant.

  /// The portion of an event's identity that must survive a checkpoint.
  struct PendingKey {
    std::int64_t t_ns = 0;
    std::uint64_t seq = 0;
  };

  /// Fetch the (time, sequence) key of a pending event. Returns false if
  /// `id` no longer names a pending event.
  [[nodiscard]] bool key_of(EventId id, PendingKey& out) const;

  /// Re-arm an event from a checkpoint under its original sequence number
  /// (restore-time only; `seq` must come from key_of() on the saving side,
  /// and restore_clock() must already have advanced next_seq_ past it).
  EventId restore_at(Time t, std::uint64_t seq, Callback cb);

  /// Restore the clock, sequence counter and dispatch count saved by a
  /// checkpoint. Must be called on a virgin scheduler before any
  /// restore_at().
  void restore_clock(Time now, std::uint64_t next_seq, std::uint64_t dispatched);

  /// Checkpointed counters (paired with restore_clock on the loading side).
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Number of live (not yet fired, not cancelled) events.
  [[nodiscard]] std::size_t pending() const { return heap_.size() + tail_live_; }

  /// Total events dispatched so far (for micro-benchmarks and tests).
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  static constexpr std::uint32_t kNullPos = 0xffffffffu;
  /// pos_ values >= kTailFlag locate the event inside tail_ instead of heap_.
  static constexpr std::uint32_t kTailFlag = 0x80000000u;
  static constexpr std::size_t kArity = 4;
  /// Heap keys pack (sequence << kSlotBits) | slot into one word: the
  /// monotone sequence makes FIFO ties exact, the slot rides along for
  /// free. 2^24 concurrent events and 2^40 total schedules are orders of
  /// magnitude beyond any run we do; both are asserted.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;

  /// Slab slot: callback storage plus the generation that validates ids.
  struct Slot {
    EventCallback cb;
    std::uint32_t gen = 0;
  };

  struct HeapEntry {
    std::int64_t t_ns;
    std::uint64_t key;  ///< (seq << kSlotBits) | slot

    [[nodiscard]] std::uint32_t slot() const { return static_cast<std::uint32_t>(key & kSlotMask); }
  };

  [[nodiscard]] static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    return a.key < b.key;  // seq occupies the high bits: FIFO among equal times
  }

  /// Decode an EventId; returns the slot index if it names a pending event,
  /// kNullPos otherwise.
  [[nodiscard]] std::uint32_t pending_slot_of(EventId id) const;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void place(const HeapEntry& e, std::size_t pos) {
    heap_[pos] = e;
    pos_[e.slot()] = static_cast<std::uint32_t>(pos);
  }
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void restore(std::size_t pos);
  void heap_erase(std::size_t pos);
  void push_entry(const HeapEntry& e);

  /// Route an entry for `idx` at time `t` under sequence `seq` to the tail
  /// (O(1) monotone fast path) or the heap. schedule_at passes next_seq_++;
  /// restore_at passes the checkpointed sequence.
  void insert_entry(std::uint32_t idx, Time t, std::uint64_t seq);

  [[nodiscard]] bool external_stop() const {
    return stop_flag_ != nullptr && stop_flag_->load(std::memory_order_relaxed);
  }

  /// Drop dead (cancelled) and consumed entries from the tail front; resets
  /// the tail when it empties so indices stay small.
  void trim_tail();

  /// Remove the earliest event with time <= `bound_ns`, moving its deadline
  /// and callback out. Returns false when no such event exists.
  bool pop_next(std::int64_t bound_ns, Time& t, EventCallback& cb);

  void dispatch(Time t, EventCallback& cb);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> pos_;  ///< per-slot location (heap pos or tail index)
  std::vector<HeapEntry> heap_;
  std::vector<HeapEntry> tail_;  ///< sorted ascending; consumed from tail_head_
  std::size_t tail_head_ = 0;
  std::size_t tail_live_ = 0;  ///< tail entries not yet cancelled
  std::vector<std::uint32_t> free_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  bool stopped_ = false;
  const std::atomic<bool>* stop_flag_ = nullptr;
};

namespace detail {
/// Scheduler whose run loop is executing on this thread (nullptr outside a
/// run loop). Lets code that may run on behalf of a *remote* shard — e.g. a
/// boundary link delivering into its destination shard — read the clock of
/// the engine actually dispatching it instead of the one it was built with.
inline thread_local Scheduler* tls_scheduler = nullptr;
}  // namespace detail

/// The scheduler currently dispatching events on this thread, if any.
[[nodiscard]] inline Scheduler* current_scheduler() { return detail::tls_scheduler; }

}  // namespace xmp::sim
