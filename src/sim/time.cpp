#include "sim/time.hpp"

#include <cstdio>

namespace xmp::sim {

std::string Time::to_string() const {
  char buf[48];
  if (ns_ == INT64_MAX) return "+inf";
  if (ns_ < 10'000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  } else if (ns_ < 10'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", us());
  } else if (ns_ < 10'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.3fms", ms());
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", sec());
  }
  return buf;
}

}  // namespace xmp::sim
