#include "sim/scheduler.hpp"

#include <cassert>
#include <limits>

#include "obs/hooks.hpp"
#include "obs/timeline.hpp"

namespace xmp::sim {

namespace {

constexpr EventId encode(std::uint32_t gen, std::uint32_t idx) {
  return (static_cast<EventId>(gen) << 32) | (idx + 1);
}

/// Marks this scheduler as the one dispatching on the current thread for
/// the duration of a run loop; restores the previous value on exit so
/// nested run_until() calls (tests do this) unwind correctly.
struct TlsSchedulerScope {
  explicit TlsSchedulerScope(Scheduler* s) : prev{detail::tls_scheduler} {
    detail::tls_scheduler = s;
  }
  ~TlsSchedulerScope() { detail::tls_scheduler = prev; }
  TlsSchedulerScope(const TlsSchedulerScope&) = delete;
  TlsSchedulerScope& operator=(const TlsSchedulerScope&) = delete;
  Scheduler* prev;
};

}  // namespace

std::uint32_t Scheduler::pending_slot_of(EventId id) const {
  if (id == kInvalidEventId) return kNullPos;
  const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slots_.size()) return kNullPos;
  if (slots_[idx].gen != gen || pos_[idx] == kNullPos) return kNullPos;
  return idx;
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  assert(slots_.size() < kSlotMask && "too many concurrent events");
  slots_.emplace_back();
  pos_.push_back(kNullPos);
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.cb.reset();
  ++s.gen;  // invalidate outstanding ids for this slot
  pos_[idx] = kNullPos;
  free_.push_back(idx);
}

void Scheduler::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    place(heap_[parent], pos);
    pos = parent;
  }
  place(e, pos);
}

void Scheduler::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= n) break;
    const std::size_t end = first + kArity < n ? first + kArity : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    place(heap_[best], pos);
    pos = best;
  }
  place(e, pos);
}

void Scheduler::restore(std::size_t pos) {
  if (pos > 0 && earlier(heap_[pos], heap_[(pos - 1) / kArity])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

void Scheduler::heap_erase(std::size_t pos) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;
  place(last, pos);
  restore(pos);
}

void Scheduler::trim_tail() {
  while (tail_head_ < tail_.size() && tail_[tail_head_].slot() == kSlotMask) {
    ++tail_head_;  // skip cancelled entries
  }
  if (tail_head_ == tail_.size() && tail_head_ != 0) {
    tail_.clear();
    tail_head_ = 0;
  }
}

void Scheduler::insert_entry(std::uint32_t idx, Time t, std::uint64_t seq) {
  assert(seq < (1ull << (64 - kSlotBits)) && "sequence space exhausted");
  const HeapEntry e{t.ns(), (seq << kSlotBits) | idx};
  // Monotone fast path: while the heap is empty, in-order events form a
  // sorted run consumed from the front in O(1).
  if (heap_.empty() && (tail_head_ >= tail_.size() || !earlier(e, tail_.back()))) {
    assert(tail_.size() < kTailFlag && "tail index overflow");
    pos_[idx] = kTailFlag | static_cast<std::uint32_t>(tail_.size());
    tail_.push_back(e);
    ++tail_live_;
    return;
  }
  const std::size_t pos = heap_.size();
  heap_.push_back(e);
  pos_[idx] = static_cast<std::uint32_t>(pos);
  sift_up(pos);
}

EventId Scheduler::schedule_at(Time t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  assert(cb && "null event callback");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.cb = std::move(cb);
  insert_entry(idx, t, next_seq_++);
  return encode(s.gen, idx);
}

bool Scheduler::key_of(EventId id, PendingKey& out) const {
  const std::uint32_t idx = pending_slot_of(id);
  if (idx == kNullPos) return false;
  const std::uint32_t pos = pos_[idx];
  const HeapEntry& e = (pos & kTailFlag) != 0 ? tail_[pos & ~kTailFlag] : heap_[pos];
  out.t_ns = e.t_ns;
  out.seq = e.key >> kSlotBits;
  return true;
}

EventId Scheduler::restore_at(Time t, std::uint64_t seq, Callback cb) {
  assert(t >= now_ && "cannot restore into the past");
  assert(seq < next_seq_ && "restore_clock must run before restore_at");
  assert(cb && "null event callback");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.cb = std::move(cb);
  insert_entry(idx, t, seq);
  return encode(s.gen, idx);
}

void Scheduler::restore_clock(Time now, std::uint64_t next_seq, std::uint64_t dispatched) {
  assert(now_ == Time::zero() && dispatched_ == 0 && pending() == 0 &&
         "restore_clock needs a virgin scheduler");
  now_ = now;
  next_seq_ = next_seq;
  dispatched_ = dispatched;
}

void Scheduler::cancel(EventId id) {
  const std::uint32_t idx = pending_slot_of(id);
  if (idx == kNullPos) return;
  const std::uint32_t pos = pos_[idx];
  if ((pos & kTailFlag) != 0) {
    // Mark the tail entry dead in place; it keeps its sort key and is
    // skipped when it reaches the front.
    tail_[pos & ~kTailFlag].key |= kSlotMask;
    --tail_live_;
  } else {
    heap_erase(pos);
  }
  release_slot(idx);
}

bool Scheduler::reschedule(EventId id, Time t) {
  const std::uint32_t idx = pending_slot_of(id);
  if (idx == kNullPos) return false;
  assert(t >= now_ && "cannot reschedule into the past");
  const std::uint32_t pos = pos_[idx];
  if ((pos & kTailFlag) != 0) {
    // Leave a dead entry behind and re-insert under a fresh sequence; the
    // slot (and therefore the id) is unchanged.
    tail_[pos & ~kTailFlag].key |= kSlotMask;
    --tail_live_;
    insert_entry(idx, t, next_seq_++);
    return true;
  }
  heap_[pos].t_ns = t.ns();
  // Re-enter the FIFO order as if freshly scheduled.
  assert(next_seq_ < (1ull << (64 - kSlotBits)) && "sequence space exhausted");
  heap_[pos].key = (next_seq_++ << kSlotBits) | idx;
  restore(pos);
  return true;
}

bool Scheduler::pop_next(std::int64_t bound_ns, Time& t, EventCallback& cb) {
  trim_tail();
  const bool tail_has = tail_head_ < tail_.size();
  std::uint32_t idx;
  if (!heap_.empty() && (!tail_has || earlier(heap_.front(), tail_[tail_head_]))) {
    const HeapEntry top = heap_.front();
    if (top.t_ns > bound_ns) return false;
    idx = top.slot();
    t = Time::nanoseconds(top.t_ns);
    cb = std::move(slots_[idx].cb);
    // Refill the root from the heap's own tail and sink it (no parent
    // check needed at the root).
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      place(last, 0);
      sift_down(0);
    }
  } else if (tail_has) {
    const HeapEntry& e = tail_[tail_head_];
    if (e.t_ns > bound_ns) return false;
    idx = e.slot();
    t = Time::nanoseconds(e.t_ns);
    cb = std::move(slots_[idx].cb);
    ++tail_head_;
    if (tail_head_ == tail_.size()) {
      tail_.clear();
      tail_head_ = 0;
    }
    --tail_live_;
  } else {
    return false;
  }
  release_slot(idx);
  return true;
}

void Scheduler::dispatch(Time t, EventCallback& cb) {
  assert(t >= now_);
  now_ = t;
  ++dispatched_;
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    if ((dispatched_ & tr->sched_sample_mask()) == 0) {
      tr->sched_sample(now_, pending(), dispatched_);
    }
  }
  cb();
}

void Scheduler::run() {
  TlsSchedulerScope scope{this};
  stopped_ = false;
  Time t;
  EventCallback cb;
  while (!stopped_ && !external_stop() && pop_next(std::numeric_limits<std::int64_t>::max(), t, cb)) {
    dispatch(t, cb);
  }
}

void Scheduler::run_until(Time t) {
  TlsSchedulerScope scope{this};
  stopped_ = false;
  Time et;
  EventCallback cb;
  while (!stopped_ && !external_stop() && pop_next(t.ns(), et, cb)) {
    dispatch(et, cb);
  }
  // Advance the clock to the horizon only on a quiet completion; a stop()
  // (or an external stop request) freezes time at the last dispatched event
  // (so measurement windows stay tight, and an emergency checkpoint lands
  // at a well-defined quiescent point).
  if (!stopped_ && !external_stop() && now_ < t) now_ = t;
}

void Scheduler::run_before(Time bound) {
  TlsSchedulerScope scope{this};
  stopped_ = false;
  Time et;
  EventCallback cb;
  // pop_next's bound is inclusive; the epoch boundary itself is excluded.
  while (!stopped_ && !external_stop() && pop_next(bound.ns() - 1, et, cb)) {
    dispatch(et, cb);
  }
}

bool Scheduler::step_one() {
  TlsSchedulerScope scope{this};
  Time t;
  EventCallback cb;
  if (!pop_next(std::numeric_limits<std::int64_t>::max(), t, cb)) return false;
  dispatch(t, cb);
  return true;
}

Time Scheduler::next_time() {
  trim_tail();
  const bool tail_has = tail_head_ < tail_.size();
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  bool any = false;
  if (!heap_.empty()) {
    best = heap_.front().t_ns;
    any = true;
  }
  if (tail_has && (!any || tail_[tail_head_].t_ns < best)) {
    best = tail_[tail_head_].t_ns;
    any = true;
  }
  return any ? Time::nanoseconds(best) : Time::infinity();
}

}  // namespace xmp::sim
