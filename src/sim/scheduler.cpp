#include "sim/scheduler.hpp"

#include <cassert>

namespace xmp::sim {

EventId Scheduler::schedule_at(Time t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  assert(cb && "null event callback");
  const EventId id = next_id_++;
  heap_.push(Item{t, id, std::move(cb)});
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  cancelled_.insert(id);
}

bool Scheduler::pop_next(Item& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; we move the callback out via const_cast,
    // which is safe because we pop immediately and the heap order does not
    // depend on the callback.
    Item& top = const_cast<Item&>(heap_.top());
    const bool live = cancelled_.erase(top.id) == 0;
    if (live) {
      out.t = top.t;
      out.id = top.id;
      out.cb = std::move(top.cb);
      heap_.pop();
      return true;
    }
    heap_.pop();
  }
  return false;
}

void Scheduler::run() {
  stopped_ = false;
  Item ev;
  while (!stopped_ && pop_next(ev)) {
    assert(ev.t >= now_);
    now_ = ev.t;
    ++dispatched_;
    ev.cb();
  }
}

void Scheduler::run_until(Time t) {
  stopped_ = false;
  Item ev;
  while (!stopped_) {
    if (heap_.empty()) break;
    // Peek: skip cancelled heads without dispatching.
    while (!heap_.empty() && cancelled_.count(heap_.top().id) != 0) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().t > t) break;
    if (!pop_next(ev)) break;
    now_ = ev.t;
    ++dispatched_;
    ev.cb();
  }
  // Advance the clock to the horizon only on a quiet completion; a stop()
  // freezes time at the stopping event (so measurement windows stay tight).
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace xmp::sim
