#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace xmp::sim {

/// Virtual simulation time with nanosecond resolution.
///
/// A strong type rather than a bare integer so that durations, rates and
/// byte counts cannot be mixed up at call sites. All arithmetic is exact
/// integer arithmetic; factory helpers taking doubles round to the nearest
/// nanosecond.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t ns) { return Time{ns}; }
  [[nodiscard]] static constexpr Time microseconds(std::int64_t us) { return Time{us * 1000}; }
  [[nodiscard]] static constexpr Time milliseconds(std::int64_t ms) { return Time{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  /// Sentinel later than any schedulable event.
  [[nodiscard]] static constexpr Time infinity() { return Time{INT64_MAX}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time other) const { return Time{ns_ + other.ns_}; }
  constexpr Time operator-(Time other) const { return Time{ns_ - other.ns_}; }
  constexpr Time& operator+=(Time other) { ns_ += other.ns_; return *this; }
  constexpr Time& operator-=(Time other) { ns_ -= other.ns_; return *this; }
  constexpr Time operator*(std::int64_t k) const { return Time{ns_ * k}; }
  constexpr Time operator/(std::int64_t k) const { return Time{ns_ / k}; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// Time needed to serialize `bytes` onto a link of `bits_per_second`.
[[nodiscard]] constexpr Time transmission_time(std::int64_t bytes, std::int64_t bits_per_second) {
  // ns = bytes * 8 * 1e9 / bps, computed without overflow for realistic inputs
  // (bytes <= ~10^6, bps >= 10^6).
  return Time::nanoseconds(bytes * 8 * 1'000'000'000 / bits_per_second);
}

}  // namespace xmp::sim
