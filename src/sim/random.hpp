#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace xmp::sim {

/// Deterministic pseudo-random source for workload generation.
///
/// Implements xoshiro256++ (Blackman & Vigna). We carry our own generator
/// rather than std::mt19937 so that simulation results are reproducible
/// bit-for-bit across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Raw 64 bits.
  std::uint64_t next();

  /// Uniform in [0, bound). Requires bound > 0. Unbiased (rejection sampling).
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Bounded Pareto with shape `alpha`, minimum `lo`, maximum `hi`.
  /// Used for the paper's Random traffic pattern (alpha = 1.5).
  double bounded_pareto(double alpha, double lo, double hi);

  /// Derive an independent stream (for giving each workload its own RNG).
  Rng split();

  /// Raw generator state, for checkpoint/restore. A restored stream
  /// continues bit-identically from where the saved one stopped.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void restore_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace xmp::sim
