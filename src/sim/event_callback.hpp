#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace xmp::sim {

/// Move-only `void()` callable with small-buffer optimization.
///
/// The event hot path schedules tens of millions of callbacks per run; a
/// `std::function` would heap-allocate for anything beyond two pointers of
/// captures. Every capture the simulator actually uses (`[this]`,
/// `[this, epoch]`, RTO/timer closures, trace entries) fits in
/// `kInlineBytes`, so scheduling never allocates. Larger callables still
/// work via a heap fallback, but that path asserts in debug builds so a
/// spilling capture is caught the first time it is scheduled.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      assert(!"EventCallback capture spilled to the heap; shrink it below kInlineBytes");
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty EventCallback");
    ops_->invoke(storage_);
  }

  /// Destroy the held callable (if any) and return to the empty state.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move the callable from `src` into uninitialized `dst` and destroy
    /// the source. noexcept by construction (inline storage requires a
    /// nothrow move; the heap path only moves a pointer).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* src, void* dst) noexcept {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* src, void* dst) noexcept {
        *reinterpret_cast<Fn**>(dst) = *std::launder(reinterpret_cast<Fn**>(src));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace xmp::sim
