#include "obs/hooks.hpp"

namespace xmp::obs {

namespace detail {
thread_local TimelineTracer* tls_tracer = nullptr;
thread_local SimMetrics* tls_metrics = nullptr;
}  // namespace detail

ObservationScope::ObservationScope(TimelineTracer* tracer, SimMetrics* metrics)
    : prev_tracer_{detail::tls_tracer}, prev_metrics_{detail::tls_metrics} {
  detail::tls_tracer = tracer;
  detail::tls_metrics = metrics;
}

ObservationScope::~ObservationScope() {
  detail::tls_tracer = prev_tracer_;
  detail::tls_metrics = prev_metrics_;
}

}  // namespace xmp::obs
