#pragma once

// Thread-local observation gates — the single branch every instrumentation
// site pays when observation is disabled.
//
// The simulator is single-threaded per run but core::ParallelRunner fans
// independent runs across worker threads, so the active tracer/metrics
// bundle is a thread_local pointer: each run installs its own observers on
// its own thread via ObservationScope (RAII), and runs never see each
// other's instruments. A disabled run costs one TLS load + one predictable
// branch per site; no simulation state is ever touched by observation, so
// traced and untraced runs are bit-identical (guarded by
// tests/obs/obs_determinism_test.cpp).

namespace xmp::obs {

class TimelineTracer;
struct SimMetrics;

namespace detail {
extern thread_local TimelineTracer* tls_tracer;
extern thread_local SimMetrics* tls_metrics;
}  // namespace detail

/// Active tracer for this thread, or nullptr when tracing is disabled.
[[nodiscard]] inline TimelineTracer* tracer() { return detail::tls_tracer; }

/// Active well-known metrics bundle for this thread, or nullptr.
[[nodiscard]] inline SimMetrics* metrics() { return detail::tls_metrics; }

/// Installs a tracer and/or metrics bundle for the current thread for the
/// scope's lifetime; restores the previous observers on destruction (scopes
/// nest). Either pointer may be null.
class ObservationScope {
 public:
  ObservationScope(TimelineTracer* tracer, SimMetrics* metrics);
  ~ObservationScope();

  ObservationScope(const ObservationScope&) = delete;
  ObservationScope& operator=(const ObservationScope&) = delete;

 private:
  TimelineTracer* prev_tracer_;
  SimMetrics* prev_metrics_;
};

}  // namespace xmp::obs
