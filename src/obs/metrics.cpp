#include "obs/metrics.hpp"

#include <bit>
#include <cassert>

#include "core/checkpoint.hpp"
#include "trace/writers.hpp"

namespace xmp::obs {

void Histogram::add(std::uint64_t value) {
  // Bucket 0 holds exactly 0; bucket b holds [2^(b-1), 2^b). bit_width is a
  // single bit-scan instruction, so the whole add is a handful of relaxed
  // atomic RMWs — safe from any thread, no lock.
  int b = value == 0 ? 0 : std::bit_width(value);
  if (b >= kBuckets) b = kBuckets - 1;  // values >= 2^62 share the top bucket
  buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the p-th sample (1-based, ceil) among the sorted samples.
  auto rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank) {
      if (b == 0) return 0.0;
      // Geometric midpoint of [2^(b-1), 2^b): sqrt(lo * hi) = 2^(b-0.5).
      const double lo = static_cast<double>(1ull << (b - 1));
      return lo * 1.4142135623730951;
    }
  }
  return static_cast<double>(max_seen());
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock{mu_};
  assert(gauges_.count(name) == 0 && histograms_.count(name) == 0 &&
         "metric name already registered with a different kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, &counter_store_.emplace_back()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock{mu_};
  assert(counters_.count(name) == 0 && histograms_.count(name) == 0 &&
         "metric name already registered with a different kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, &gauge_store_.emplace_back()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock{mu_};
  assert(counters_.count(name) == 0 && gauges_.count(name) == 0 &&
         "metric name already registered with a different kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, &histogram_store_.emplace_back()).first;
  }
  return *it->second;
}

void MetricsRegistry::dump(trace::JsonWriter& json) const {
  std::lock_guard<std::mutex> lock{mu_};

  json.key("counters");
  json.begin_object();
  for (const auto& [name, c] : counters_) {
    json.kv(name, c->get());
  }
  json.end_object();

  json.key("gauges");
  json.begin_object();
  for (const auto& [name, g] : gauges_) {
    json.kv(name, g->get());
  }
  json.end_object();

  json.key("histograms");
  json.begin_object();
  for (const auto& [name, h] : histograms_) {
    json.key(name);
    json.begin_object();
    json.kv("count", h->count());
    json.kv("sum", h->sum());
    json.kv("mean", h->mean());
    json.kv("p50", h->percentile(50.0));
    json.kv("p99", h->percentile(99.0));
    json.kv("max", h->max_seen());
    json.key("buckets");
    json.begin_array();
    // Trailing empty buckets carry no information; stop at the last
    // populated one so small dumps stay small.
    int last = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h->bucket(b) != 0) last = b;
    }
    for (int b = 0; b <= last; ++b) {
      json.value(h->bucket(b));
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
}

namespace {

bool is_ckpt_meter(const std::string& name) {
  return name.rfind("harness.ckpt.", 0) == 0;
}

}  // namespace

void MetricsRegistry::save_state(core::ckpt::Saver& s) const {
  std::lock_guard<std::mutex> lock{mu_};
  std::uint64_t nc = 0;
  for (const auto& [name, c] : counters_) {
    if (!is_ckpt_meter(name)) ++nc;
  }
  s.u64(nc);
  for (const auto& [name, c] : counters_) {
    if (is_ckpt_meter(name)) continue;
    s.str(name);
    s.u64(c->get());
  }
  s.u64(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.str(name);
    s.f64(g->get());
  }
  s.u64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.str(name);
    s.u64(h->count());
    s.u64(h->sum());
    s.u64(h->max_seen());
    for (int b = 0; b < Histogram::kBuckets; ++b) s.u64(h->bucket(b));
  }
}

void MetricsRegistry::restore_state(core::ckpt::Loader& l) {
  const std::uint64_t nc = l.u64();
  for (std::uint64_t i = 0; i < nc && l.ok(); ++i) {
    const std::string name = l.str();
    const std::uint64_t v = l.u64();
    if (!l.ok()) break;
    counter(name).set(v);
  }
  const std::uint64_t ng = l.u64();
  for (std::uint64_t i = 0; i < ng && l.ok(); ++i) {
    const std::string name = l.str();
    const double v = l.f64();
    if (!l.ok()) break;
    gauge(name).set(v);
  }
  const std::uint64_t nh = l.u64();
  for (std::uint64_t i = 0; i < nh && l.ok(); ++i) {
    const std::string name = l.str();
    const std::uint64_t count = l.u64();
    const std::uint64_t sum = l.u64();
    const std::uint64_t max = l.u64();
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    for (int b = 0; b < Histogram::kBuckets; ++b) buckets[static_cast<std::size_t>(b)] = l.u64();
    if (!l.ok()) break;
    histogram(name).restore(buckets, count, sum, max);
  }
}

void MetricsRegistry::dump_to_file(const std::string& path) const {
  trace::JsonWriter json{path};
  json.begin_object();
  dump(json);
  json.end_object();
}

SimMetrics::SimMetrics(MetricsRegistry& reg)
    : registry{reg},
      packets_delivered{reg.counter("packets_delivered")},
      packets_dropped{reg.counter("packets_dropped")},
      packets_impaired{reg.counter("packets_impaired")},
      ecn_marks{reg.counter("ecn_marks")},
      retransmissions{reg.counter("retransmissions")},
      timeouts{reg.counter("timeouts")},
      reinjections{reg.counter("reinjections")},
      subflow_deaths{reg.counter("subflow_deaths")},
      fault_events{reg.counter("fault_events")},
      switch_forwarded{reg.counter("switch_forwarded")},
      switch_unroutable{reg.counter("switch_unroutable")},
      route_reroutes{reg.counter("route_reroutes")},
      route_collisions{reg.counter("route_collisions")},
      flowlet_repaths{reg.counter("flowlet_repaths")},
      path_rehomes{reg.counter("path_rehomes")},
      fct_us{reg.histogram("fct_us")},
      fct_slowdown_milli{reg.histogram("fct_slowdown_milli")},
      queue_depth{reg.histogram("queue_depth")},
      mark_runs{reg.histogram("mark_runs")} {}

}  // namespace xmp::obs
