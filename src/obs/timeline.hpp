#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace xmp::obs {

/// What one timeline event describes. Every kind belongs to exactly one
/// filter category (see cat:: below and TimelineTracer::category_of).
enum class EventKind : std::uint8_t {
  Cwnd,         ///< per-subflow congestion window update (a = segments)
  Srtt,         ///< per-subflow smoothed RTT update (a = µs)
  Gain,         ///< per-subflow δ-gain refresh at round end (a = δ)
  EcnMark,      ///< queue applied a CE mark (id = link, a = qlen seen)
  QueueSample,  ///< activity-driven queue sample (id = link, a = packets, b = bytes)
  LinkState,    ///< administrative transition (id = link, aux: 1 = down, 0 = up)
  Fault,        ///< fault-plan event applied (aux = FaultEvent::Kind, id = target)
  SubflowDead,  ///< subflow declared dead (a = surviving subflows)
  Reinjection,  ///< outstanding data refunded to the pool (a = segments)
  FlowStart,    ///< transfer created (a = size bytes, aux: 1 = large)
  FlowDone,     ///< transfer completed (a = FCT µs, b = goodput Mbps)
  FlowAbort,    ///< every subflow died with data undelivered
  Rto,          ///< retransmission timeout fired (a = backoff exponent)
  Drop,         ///< packet dropped at a link (id = link, aux = cause)
  SchedSample,  ///< scheduler sample (a = pending, b = dispatched)
  Reroute,      ///< routing table converged on a port-liveness change
                ///< (id = link, a = switch id, b = alive ports after, aux: 1 = down)
  PathRehome,   ///< MPTCP subflow re-homed onto a fresh path
                ///< (id = flow, a = new path tag, aux = rehome attempt)
  JobSpawn,     ///< sweep orchestrator forked a job child (id = job, a = attempt)
  JobOutcome,   ///< job attempt finished (id = job, aux = JobOutcomeCode,
                ///< a = attempt, b = exit code or signal number)
  JobRetry,     ///< failed job scheduled for respawn (id = job, a = attempt,
                ///< b = backoff seconds)
  JobExhausted, ///< job gave up after its last retry (id = job, a = attempts)
  ShardEpoch,   ///< sharded engine released a parallel epoch (id = epoch
                ///< index, a = epoch end µs, aux: 1 = serial/micro-stepped)
  ShardBarrier, ///< sharded engine completed a barrier (id = epoch index,
                ///< a = handoff packets drained at this barrier)
  CkptWrite,    ///< checkpoint published (id = checkpoint seq, a = bytes)
  CkptRestore,  ///< run resumed from a checkpoint (id = checkpoint seq,
                ///< a = bytes, b = checkpoint sim-time µs)
  Impair,       ///< gray-failure impairment applied (id = link, aux = ImpairKind)
};

/// Which gray-failure effect an EventKind::Impair records (aux field).
enum class ImpairKind : std::uint16_t { Delay = 0, Reorder = 1, Duplicate = 2, Overmark = 3 };

/// How one orchestrated job attempt ended (TimelineEvent::aux for
/// EventKind::JobOutcome).
enum class JobOutcomeCode : std::uint16_t {
  Ok = 0,             ///< exit 0 with a parseable result file
  Exit = 1,           ///< non-zero exit code (b = code)
  Signal = 2,         ///< killed by a signal other than the watchdog (b = signo)
  Timeout = 3,        ///< watchdog SIGKILL after --job-timeout
  MissingResult = 4,  ///< exit 0 but no/unparseable result file
};

/// Filter categories (--trace-filter). A category can cover several kinds.
namespace cat {
inline constexpr std::uint32_t kCwnd = 1u << 0;
inline constexpr std::uint32_t kSrtt = 1u << 1;
inline constexpr std::uint32_t kGain = 1u << 2;
inline constexpr std::uint32_t kEcn = 1u << 3;
inline constexpr std::uint32_t kQueue = 1u << 4;
inline constexpr std::uint32_t kFault = 1u << 5;  ///< faults + link state + deaths
inline constexpr std::uint32_t kFlow = 1u << 6;   ///< start/done/abort + reinjection
inline constexpr std::uint32_t kDrop = 1u << 7;   ///< drops + RTOs
inline constexpr std::uint32_t kSched = 1u << 8;
inline constexpr std::uint32_t kRoute = 1u << 9;    ///< reroutes + path re-homes
inline constexpr std::uint32_t kHarness = 1u << 10; ///< sweep-job lifecycle (orchestrator)
inline constexpr std::uint32_t kAll = 0xffffffffu;
}  // namespace cat

/// Drop causes carried in TimelineEvent::aux for EventKind::Drop.
enum class DropCause : std::uint16_t { Queue = 0, AdminDown = 1, Fault = 2, Corrupt = 3 };

/// One fixed-size record in the tracer ring. 32 bytes; no pointers, no
/// ownership — safe to snapshot and export after the simulation ends.
struct TimelineEvent {
  std::int64_t t_ns = 0;
  double a = 0.0;
  double b = 0.0;
  std::uint32_t id = 0;  ///< flow id, link id, or fault target (per kind)
  EventKind kind = EventKind::Cwnd;
  std::uint8_t subflow = 0;
  std::uint16_t aux = 0;
};

/// Records typed sim-time events into a preallocated ring and exports them
/// as CSV (trace::CsvWriter) or Chrome trace-event JSON loadable in
/// Perfetto / chrome://tracing, with per-flow, per-subflow and per-link
/// track naming.
///
/// The tracer is passive: it never schedules simulator events and never
/// mutates simulation state, so enabling it cannot perturb a run (the
/// queue/scheduler samples piggyback on existing activity). When the ring
/// fills, the oldest events are overwritten and counted in dropped() — a
/// trace is always the *tail* of the run.
class TimelineTracer {
 public:
  struct Config {
    std::size_t capacity = 1u << 18;           ///< events (32 B each)
    std::uint32_t categories = cat::kAll;      ///< cat:: bitmask
    /// Minimum spacing between QueueSample events of one queue. Samples are
    /// taken on enqueue/dequeue activity, so an idle queue emits nothing.
    sim::Time queue_sample_interval = sim::Time::microseconds(50);
    /// Emit a SchedSample every this many dispatches (power of two).
    std::uint64_t sched_sample_stride = 1u << 16;
  };

  explicit TimelineTracer(const Config& cfg);
  TimelineTracer() : TimelineTracer(Config{}) {}

  TimelineTracer(const TimelineTracer&) = delete;
  TimelineTracer& operator=(const TimelineTracer&) = delete;

  [[nodiscard]] bool wants(std::uint32_t category) const {
    return (cfg_.categories & category) != 0;
  }
  [[nodiscard]] const Config& config() const { return cfg_; }
  /// Mask applied to Scheduler::dispatched() to decide when to sample.
  [[nodiscard]] std::uint64_t sched_sample_mask() const { return cfg_.sched_sample_stride - 1; }

  // --- hot-path recorders (all: gate on category, then one ring write) ---
  void cwnd(sim::Time t, std::uint32_t flow, std::uint8_t sf, double segments) {
    record(EventKind::Cwnd, cat::kCwnd, t, flow, sf, 0, segments, 0.0);
  }
  void srtt(sim::Time t, std::uint32_t flow, std::uint8_t sf, double us) {
    record(EventKind::Srtt, cat::kSrtt, t, flow, sf, 0, us, 0.0);
  }
  void gain(sim::Time t, std::uint32_t flow, std::uint8_t sf, double delta) {
    record(EventKind::Gain, cat::kGain, t, flow, sf, 0, delta, 0.0);
  }
  void ecn_mark(sim::Time t, std::uint32_t link, double qlen) {
    record(EventKind::EcnMark, cat::kEcn, t, link, 0, 0, qlen, 0.0);
  }
  void queue_sample(sim::Time t, std::uint32_t link, double packets, double bytes) {
    record(EventKind::QueueSample, cat::kQueue, t, link, 0, 0, packets, bytes);
  }
  void link_state(sim::Time t, std::uint32_t link, bool down) {
    record(EventKind::LinkState, cat::kFault, t, link, 0, down ? 1 : 0, 0.0, 0.0);
  }
  void fault(sim::Time t, std::uint16_t kind, std::uint32_t target) {
    record(EventKind::Fault, cat::kFault, t, target, 0, kind, 0.0, 0.0);
  }
  void subflow_dead(sim::Time t, std::uint32_t flow, std::uint8_t sf, int survivors) {
    record(EventKind::SubflowDead, cat::kFault, t, flow, sf, 0,
           static_cast<double>(survivors), 0.0);
  }
  void reinjection(sim::Time t, std::uint32_t flow, std::uint8_t sf, std::int64_t segments) {
    record(EventKind::Reinjection, cat::kFlow, t, flow, sf, 0,
           static_cast<double>(segments), 0.0);
  }
  void flow_start(sim::Time t, std::uint32_t flow, std::int64_t bytes, bool large) {
    record(EventKind::FlowStart, cat::kFlow, t, flow, 0, large ? 1 : 0,
           static_cast<double>(bytes), 0.0);
  }
  void flow_done(sim::Time t, std::uint32_t flow, double fct_us, double goodput_mbps) {
    record(EventKind::FlowDone, cat::kFlow, t, flow, 0, 0, fct_us, goodput_mbps);
  }
  void flow_abort(sim::Time t, std::uint32_t flow) {
    record(EventKind::FlowAbort, cat::kFlow, t, flow, 0, 0, 0.0, 0.0);
  }
  void rto(sim::Time t, std::uint32_t flow, std::uint8_t sf, int backoff) {
    record(EventKind::Rto, cat::kDrop, t, flow, sf, 0, static_cast<double>(backoff), 0.0);
  }
  void drop(sim::Time t, std::uint32_t link, DropCause cause) {
    record(EventKind::Drop, cat::kDrop, t, link, 0, static_cast<std::uint16_t>(cause), 0.0,
           0.0);
  }
  void impair(sim::Time t, std::uint32_t link, ImpairKind kind) {
    record(EventKind::Impair, cat::kFault, t, link, 0, static_cast<std::uint16_t>(kind), 0.0,
           0.0);
  }
  void sched_sample(sim::Time t, std::size_t pending, std::uint64_t dispatched) {
    record(EventKind::SchedSample, cat::kSched, t, 0, 0, 0, static_cast<double>(pending),
           static_cast<double>(dispatched));
  }
  void reroute(sim::Time t, std::uint32_t link, std::uint32_t switch_id, int alive_after,
               bool down) {
    record(EventKind::Reroute, cat::kRoute, t, link, 0, down ? 1 : 0,
           static_cast<double>(switch_id), static_cast<double>(alive_after));
  }
  void path_rehome(sim::Time t, std::uint32_t flow, std::uint8_t sf, std::uint16_t new_tag,
                   int attempt) {
    record(EventKind::PathRehome, cat::kRoute, t, flow, sf,
           static_cast<std::uint16_t>(attempt), static_cast<double>(new_tag), 0.0);
  }
  // Job-lifecycle events from the sweep orchestrator. `t` is wall-clock
  // time since the campaign started (the harness has no simulation clock).
  void job_spawn(sim::Time t, std::uint32_t job, int attempt) {
    record(EventKind::JobSpawn, cat::kHarness, t, job, 0, 0, static_cast<double>(attempt), 0.0);
  }
  void job_outcome(sim::Time t, std::uint32_t job, JobOutcomeCode code, int attempt, int detail) {
    record(EventKind::JobOutcome, cat::kHarness, t, job, 0,
           static_cast<std::uint16_t>(code), static_cast<double>(attempt),
           static_cast<double>(detail));
  }
  void job_retry(sim::Time t, std::uint32_t job, int attempt, double backoff_s) {
    record(EventKind::JobRetry, cat::kHarness, t, job, 0, 0, static_cast<double>(attempt),
           backoff_s);
  }
  void job_exhausted(sim::Time t, std::uint32_t job, int attempts) {
    record(EventKind::JobExhausted, cat::kHarness, t, job, 0, 0,
           static_cast<double>(attempts), 0.0);
  }
  // Sharded-engine epoch lifecycle (t is simulated time of the boundary).
  void shard_epoch(sim::Time t, std::uint32_t epoch, double end_us, bool serial) {
    record(EventKind::ShardEpoch, cat::kHarness, t, epoch, 0, serial ? 1 : 0, end_us, 0.0);
  }
  void shard_barrier(sim::Time t, std::uint32_t epoch, std::uint64_t drained) {
    record(EventKind::ShardBarrier, cat::kHarness, t, epoch, 0, 0,
           static_cast<double>(drained), 0.0);
  }
  // Checkpoint lifecycle. ckpt_write carries sim time of the snapshot;
  // ckpt_restore is recorded by whoever resumes (orchestrator: wall clock).
  void ckpt_write(sim::Time t, std::uint64_t seq, std::uint64_t bytes) {
    record(EventKind::CkptWrite, cat::kHarness, t, static_cast<std::uint32_t>(seq), 0, 0,
           static_cast<double>(bytes), 0.0);
  }
  void ckpt_restore(sim::Time t, std::uint64_t seq, std::uint64_t bytes, double ckpt_us) {
    record(EventKind::CkptRestore, cat::kHarness, t, static_cast<std::uint32_t>(seq), 0, 0,
           static_cast<double>(bytes), ckpt_us);
  }

  // --- track naming (setup path; last call per id wins) ---
  void name_flow(std::uint32_t flow, std::string name) { flow_names_[flow] = std::move(name); }
  void name_link(std::uint32_t link, std::string name) { link_names_[link] = std::move(name); }

  // --- inspection ---
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return cfg_.capacity; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Visit the retained events oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t start = (head_ + cfg_.capacity - count_) % cfg_.capacity;
    for (std::size_t i = 0; i < count_; ++i) {
      fn(ring_[(start + i) % cfg_.capacity]);
    }
  }

  /// Replace the ring contents with a checkpointed event stream (oldest
  /// first, already filtered by the saved run's category mask). The ring is
  /// rebuilt in canonical layout — events at [0, n), head at n % capacity —
  /// so a restored tracer appends exactly where the saved one would have.
  /// Excess events beyond capacity keep only the tail, as the live ring
  /// would have.
  void restore_snapshot(const std::vector<TimelineEvent>& events, std::uint64_t dropped) {
    dropped_ = dropped;
    const std::size_t n = events.size();
    const std::size_t keep = n > cfg_.capacity ? cfg_.capacity : n;
    dropped_ += n - keep;
    for (std::size_t i = 0; i < keep; ++i) ring_[i] = events[n - keep + i];
    count_ = keep;
    head_ = keep % cfg_.capacity;
  }

  // --- export ---
  /// Flat CSV: t_ns,kind,id,subflow,aux,a,b — one row per event.
  void export_csv(const std::string& path) const;
  /// Chrome trace-event JSON (the Perfetto-compatible legacy format):
  /// counter tracks for cwnd/srtt/gain (per flow process, one series per
  /// subflow), qlen (per link process) and the scheduler; instant events
  /// for marks, drops, faults, deaths and flow lifecycle.
  void export_chrome_json(const std::string& path) const;

  /// Deterministically merge several tracers' retained events into one
  /// tracer (for export). Each input stream is time-ordered on its own;
  /// the merge orders by (t_ns, stream index, position within stream), so
  /// the result depends only on stream contents and order — never on how
  /// many threads produced them. Track-name maps are unioned (later
  /// streams win on collision). The result has capacity == total events
  /// and category mask kAll, so nothing is re-filtered or overwritten.
  [[nodiscard]] static std::unique_ptr<TimelineTracer> merged(
      const std::vector<const TimelineTracer*>& streams);

  [[nodiscard]] static const char* kind_name(EventKind k);
  /// Category of a kind (exactly one bit of cat::).
  [[nodiscard]] static std::uint32_t category_of(EventKind k);
  /// Parse a --trace-filter list ("cwnd,gain,queue"); known names are the
  /// lowercase cat:: constants plus "all". Returns false (and sets *error)
  /// on an unknown token; an empty string means kAll.
  [[nodiscard]] static bool parse_filter(const std::string& filter, std::uint32_t& mask,
                                         std::string* error);

 private:
  void record(EventKind kind, std::uint32_t category, sim::Time t, std::uint32_t id,
              std::uint8_t subflow, std::uint16_t aux, double a, double b) {
    if ((cfg_.categories & category) == 0) return;
    TimelineEvent& e = ring_[head_];
    e.t_ns = t.ns();
    e.a = a;
    e.b = b;
    e.id = id;
    e.kind = kind;
    e.subflow = subflow;
    e.aux = aux;
    head_ = head_ + 1 == cfg_.capacity ? 0 : head_ + 1;
    if (count_ < cfg_.capacity) {
      ++count_;
    } else {
      ++dropped_;  // overwrote the oldest event
    }
  }

  Config cfg_;
  std::vector<TimelineEvent> ring_;
  std::size_t head_ = 0;   ///< next write position
  std::size_t count_ = 0;  ///< live events (<= capacity)
  std::uint64_t dropped_ = 0;
  std::map<std::uint32_t, std::string> flow_names_;
  std::map<std::uint32_t, std::string> link_names_;
};

}  // namespace xmp::obs
