#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace xmp::trace {
class JsonWriter;
}

namespace xmp::core::ckpt {
class Saver;
class Loader;
}  // namespace xmp::core::ckpt

namespace xmp::obs {

/// Monotone event counter. Increment is a single relaxed atomic add — no
/// lock, no fence — so it is safe to bump from any thread and cheap enough
/// for per-packet hot paths.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  /// Overwrite the value — checkpoint restore only, never on a hot path.
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value-wins instantaneous gauge.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram of non-negative integer samples (FCT in µs,
/// queue depth in packets, mark-run lengths, ...).
///
/// Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds exactly 0. The
/// 2x resolution matches what a regression gate or a tail-latency glance
/// needs, while add() stays a bit-scan plus one relaxed atomic increment —
/// no binary search, no lock.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Approximate percentile (p in [0,100]): the geometric midpoint of the
  /// bucket containing the p-th sample. Exact for 0 and within the 2x
  /// bucket width otherwise.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] std::uint64_t max_seen() const { return max_.load(std::memory_order_relaxed); }

  /// Overwrite all state — checkpoint restore only, never on a hot path.
  void restore(const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t count,
               std::uint64_t sum, std::uint64_t max) {
    for (int i = 0; i < kBuckets; ++i) {
      buckets_[static_cast<std::size_t>(i)].store(buckets[static_cast<std::size_t>(i)],
                                                  std::memory_order_relaxed);
    }
    count_.store(count, std::memory_order_relaxed);
    sum_.store(sum, std::memory_order_relaxed);
    max_.store(max, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Name-addressed registry of counters, gauges and histograms.
///
/// Registration (name lookup) takes a mutex and is meant for setup;
/// instruments are returned by reference with stable addresses (deque
/// storage), so the hot path touches only the instrument itself —
/// lock-free by construction. Looking up an existing name returns the same
/// instrument; a name registered as one kind cannot be re-registered as
/// another (asserted).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Serialize every instrument, grouped by kind, names sorted — the
  /// stable order makes metric dumps diffable across runs.
  void dump(trace::JsonWriter& json) const;
  /// dump() to a fresh JSON file (one top-level object).
  void dump_to_file(const std::string& path) const;

  /// Checkpoint every instrument by (sorted) name. Names starting with
  /// "harness.ckpt." are excluded: those meter the checkpoint machinery
  /// itself and are reconstructed from checkpoint-file headers on restore.
  void save_state(core::ckpt::Saver& s) const;
  /// Restore by name; unknown names are (re-)registered, so restore works
  /// whether or not the instrumentation sites have run yet.
  void restore_state(core::ckpt::Loader& l);

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  std::deque<Counter> counter_store_;
  std::deque<Gauge> gauge_store_;
  std::deque<Histogram> histogram_store_;
};

/// The well-known instruments the built-in instrumentation sites feed
/// (net::Link, net::Queue, transport::TcpSender, mptcp::MptcpConnection,
/// workload::FlowManager, faults::FaultController). Pre-resolved references
/// so a hot-path site never pays a name lookup.
struct SimMetrics {
  explicit SimMetrics(MetricsRegistry& registry);

  MetricsRegistry& registry;

  Counter& packets_delivered;  ///< link-level sink handoffs
  Counter& packets_dropped;    ///< all causes (queue/admin/fault/corrupt)
  Counter& packets_impaired;   ///< gray-failure effects applied (delay/reorder/dup/overmark)
  Counter& ecn_marks;          ///< CE marks applied by queues
  Counter& retransmissions;
  Counter& timeouts;           ///< sender RTO firings
  Counter& reinjections;       ///< MPTCP opportunistic reinjection batches
  Counter& subflow_deaths;
  Counter& fault_events;       ///< fault-plan events applied
  Counter& switch_forwarded;   ///< packets forwarded by switches
  Counter& switch_unroutable;  ///< packets with no usable output port
  Counter& route_reroutes;     ///< converged routing-table liveness changes
  Counter& route_collisions;   ///< hash collisions while an idle port existed
  Counter& flowlet_repaths;    ///< flowlet idle-gap path changes
  Counter& path_rehomes;       ///< MPTCP subflows re-homed onto a new path

  Histogram& fct_us;        ///< completion time of finished flows, µs
  Histogram& fct_slowdown_milli;  ///< FCT slowdown x1000 (empirical workloads)
  Histogram& queue_depth;   ///< sampled instantaneous queue length, packets
  Histogram& mark_runs;     ///< consecutive CE marks per queue before a gap
};

}  // namespace xmp::obs
