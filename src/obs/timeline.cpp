#include "obs/timeline.hpp"

#include <cassert>
#include <map>
#include <set>

#include "trace/writers.hpp"

namespace xmp::obs {

TimelineTracer::TimelineTracer(const Config& cfg) : cfg_{cfg} {
  assert(cfg_.capacity > 0);
  assert((cfg_.sched_sample_stride & (cfg_.sched_sample_stride - 1)) == 0 &&
         "sched_sample_stride must be a power of two");
  ring_.resize(cfg_.capacity);  // preallocated: record() never allocates
}

const char* TimelineTracer::kind_name(EventKind k) {
  switch (k) {
    case EventKind::Cwnd:
      return "cwnd";
    case EventKind::Srtt:
      return "srtt";
    case EventKind::Gain:
      return "gain";
    case EventKind::EcnMark:
      return "ecn_mark";
    case EventKind::QueueSample:
      return "queue_sample";
    case EventKind::LinkState:
      return "link_state";
    case EventKind::Fault:
      return "fault";
    case EventKind::SubflowDead:
      return "subflow_dead";
    case EventKind::Reinjection:
      return "reinjection";
    case EventKind::FlowStart:
      return "flow_start";
    case EventKind::FlowDone:
      return "flow_done";
    case EventKind::FlowAbort:
      return "flow_abort";
    case EventKind::Rto:
      return "rto";
    case EventKind::Drop:
      return "drop";
    case EventKind::SchedSample:
      return "sched_sample";
    case EventKind::Reroute:
      return "reroute";
    case EventKind::PathRehome:
      return "path_rehome";
    case EventKind::JobSpawn:
      return "job_spawn";
    case EventKind::JobOutcome:
      return "job_outcome";
    case EventKind::JobRetry:
      return "job_retry";
    case EventKind::JobExhausted:
      return "job_exhausted";
    case EventKind::ShardEpoch:
      return "shard_epoch";
    case EventKind::ShardBarrier:
      return "shard_barrier";
    case EventKind::CkptWrite:
      return "ckpt_write";
    case EventKind::CkptRestore:
      return "ckpt_restore";
    case EventKind::Impair:
      return "impair";
  }
  return "?";
}

std::uint32_t TimelineTracer::category_of(EventKind k) {
  switch (k) {
    case EventKind::Cwnd:
      return cat::kCwnd;
    case EventKind::Srtt:
      return cat::kSrtt;
    case EventKind::Gain:
      return cat::kGain;
    case EventKind::EcnMark:
      return cat::kEcn;
    case EventKind::QueueSample:
      return cat::kQueue;
    case EventKind::LinkState:
    case EventKind::Fault:
    case EventKind::SubflowDead:
    case EventKind::Impair:
      return cat::kFault;
    case EventKind::Reinjection:
    case EventKind::FlowStart:
    case EventKind::FlowDone:
    case EventKind::FlowAbort:
      return cat::kFlow;
    case EventKind::Rto:
    case EventKind::Drop:
      return cat::kDrop;
    case EventKind::SchedSample:
      return cat::kSched;
    case EventKind::Reroute:
    case EventKind::PathRehome:
      return cat::kRoute;
    case EventKind::JobSpawn:
    case EventKind::JobOutcome:
    case EventKind::JobRetry:
    case EventKind::JobExhausted:
    case EventKind::ShardEpoch:
    case EventKind::ShardBarrier:
    case EventKind::CkptWrite:
    case EventKind::CkptRestore:
      return cat::kHarness;
  }
  return 0;
}

bool TimelineTracer::parse_filter(const std::string& filter, std::uint32_t& mask,
                                  std::string* error) {
  static const std::map<std::string, std::uint32_t> kNames = {
      {"cwnd", cat::kCwnd},   {"srtt", cat::kSrtt}, {"gain", cat::kGain},
      {"ecn", cat::kEcn},     {"queue", cat::kQueue}, {"fault", cat::kFault},
      {"flow", cat::kFlow},   {"drop", cat::kDrop}, {"sched", cat::kSched},
      {"route", cat::kRoute}, {"harness", cat::kHarness}, {"all", cat::kAll},
  };
  if (filter.empty()) {
    mask = cat::kAll;
    return true;
  }
  std::uint32_t out = 0;
  std::size_t start = 0;
  while (start <= filter.size()) {
    const std::size_t comma = filter.find(',', start);
    const std::size_t end = comma == std::string::npos ? filter.size() : comma;
    const std::string token = filter.substr(start, end - start);
    if (!token.empty()) {
      const auto it = kNames.find(token);
      if (it == kNames.end()) {
        if (error != nullptr) *error = "unknown trace category '" + token + "'";
        return false;
      }
      out |= it->second;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out == 0) {
    if (error != nullptr) *error = "empty trace filter";
    return false;
  }
  mask = out;
  return true;
}

void TimelineTracer::export_csv(const std::string& path) const {
  trace::CsvWriter csv{path};
  csv.header({"t_ns", "kind", "id", "subflow", "aux", "a", "b"});
  for_each([&](const TimelineEvent& e) {
    csv.field(e.t_ns)
        .field(std::string{kind_name(e.kind)})
        .field(static_cast<std::uint64_t>(e.id))
        .field(static_cast<std::int64_t>(e.subflow))
        .field(static_cast<std::int64_t>(e.aux))
        .field(e.a)
        .field(e.b);
    csv.end_row();
  });
}

namespace {

// Perfetto "process" ids: the scheduler gets pid 1, every flow an even pid,
// every link an odd pid — compact, collision-free, and stable across runs.
constexpr std::int64_t kSchedPid = 1;
std::int64_t flow_pid(std::uint32_t flow) { return 2 + 2 * static_cast<std::int64_t>(flow); }
std::int64_t link_pid(std::uint32_t link) { return 3 + 2 * static_cast<std::int64_t>(link); }

void event_common(trace::JsonWriter& json, const char* name, const char* ph, std::int64_t pid,
                  std::int64_t t_ns) {
  json.kv("name", name);
  json.kv("ph", ph);
  json.kv("pid", pid);
  // Chrome trace timestamps are microseconds; keep sub-µs precision.
  json.kv("ts", static_cast<double>(t_ns) / 1000.0);
}

}  // namespace

void TimelineTracer::export_chrome_json(const std::string& path) const {
  // Pass 1: discover the tracks so every process/thread can be named.
  std::map<std::uint32_t, std::set<std::uint8_t>> flow_subflows;
  std::set<std::uint32_t> links;
  for_each([&](const TimelineEvent& e) {
    switch (e.kind) {
      case EventKind::Cwnd:
      case EventKind::Srtt:
      case EventKind::Gain:
      case EventKind::SubflowDead:
      case EventKind::Reinjection:
      case EventKind::Rto:
      case EventKind::PathRehome:
        flow_subflows[e.id].insert(e.subflow);
        break;
      case EventKind::FlowStart:
      case EventKind::FlowDone:
      case EventKind::FlowAbort:
      // Orchestrated sweep jobs reuse the flow track space: a harness trace
      // contains only jobs, so there is no id collision in practice.
      case EventKind::JobSpawn:
      case EventKind::JobOutcome:
      case EventKind::JobRetry:
      case EventKind::JobExhausted:
        flow_subflows[e.id];  // ensure the process exists even if filtered
        break;
      case EventKind::EcnMark:
      case EventKind::QueueSample:
      case EventKind::LinkState:
      case EventKind::Drop:
      case EventKind::Reroute:
      case EventKind::Impair:
        links.insert(e.id);
        break;
      case EventKind::Fault:
      case EventKind::SchedSample:
      case EventKind::ShardEpoch:
      case EventKind::ShardBarrier:
      case EventKind::CkptWrite:
      case EventKind::CkptRestore:
        break;
    }
  });

  trace::JsonWriter json{path};
  json.begin_object();
  json.kv("displayTimeUnit", "ms");
  json.key("otherData");
  json.begin_object();
  json.kv("tool", "xmpsim TimelineTracer");
  json.kv("events", static_cast<std::uint64_t>(count_));
  json.kv("dropped_oldest", dropped_);
  json.end_object();

  json.key("traceEvents");
  json.begin_array();

  auto name_process = [&](std::int64_t pid, const std::string& name) {
    json.begin_object();
    json.kv("name", "process_name");
    json.kv("ph", "M");
    json.kv("pid", pid);
    json.key("args");
    json.begin_object();
    json.kv("name", name);
    json.end_object();
    json.end_object();
  };

  name_process(kSchedPid, "scheduler");
  for (const auto& [flow, subflows] : flow_subflows) {
    const auto it = flow_names_.find(flow);
    name_process(flow_pid(flow),
                 it != flow_names_.end() ? it->second : "flow " + std::to_string(flow));
    for (const std::uint8_t sf : subflows) {
      json.begin_object();
      json.kv("name", "thread_name");
      json.kv("ph", "M");
      json.kv("pid", flow_pid(flow));
      json.kv("tid", static_cast<std::int64_t>(sf));
      json.key("args");
      json.begin_object();
      json.kv("name", "subflow " + std::to_string(sf));
      json.end_object();
      json.end_object();
    }
  }
  for (const std::uint32_t link : links) {
    const auto it = link_names_.find(link);
    name_process(link_pid(link),
                 it != link_names_.end() ? it->second : "link " + std::to_string(link));
  }

  // Pass 2: the events themselves, oldest first.
  for_each([&](const TimelineEvent& e) {
    json.begin_object();
    switch (e.kind) {
      // Per-subflow counter tracks inside the flow's process. The subflow
      // index is baked into the counter name ("C" events aggregate per
      // (pid, name)), so each subflow draws its own track in Perfetto.
      case EventKind::Cwnd: {
        const std::string n = "cwnd[" + std::to_string(e.subflow) + "]";
        event_common(json, n.c_str(), "C", flow_pid(e.id), e.t_ns);
        json.key("args");
        json.begin_object();
        json.kv("segments", e.a);
        json.end_object();
        break;
      }
      case EventKind::Srtt: {
        const std::string n = "srtt_us[" + std::to_string(e.subflow) + "]";
        event_common(json, n.c_str(), "C", flow_pid(e.id), e.t_ns);
        json.key("args");
        json.begin_object();
        json.kv("us", e.a);
        json.end_object();
        break;
      }
      case EventKind::Gain: {
        const std::string n = "gain[" + std::to_string(e.subflow) + "]";
        event_common(json, n.c_str(), "C", flow_pid(e.id), e.t_ns);
        json.key("args");
        json.begin_object();
        json.kv("delta", e.a);
        json.end_object();
        break;
      }
      case EventKind::QueueSample:
        event_common(json, "qlen", "C", link_pid(e.id), e.t_ns);
        json.key("args");
        json.begin_object();
        json.kv("packets", e.a);
        json.end_object();
        break;
      case EventKind::SchedSample:
        event_common(json, "scheduler", "C", kSchedPid, e.t_ns);
        json.key("args");
        json.begin_object();
        json.kv("pending", e.a);
        json.kv("dispatched", e.b);
        json.end_object();
        break;

      case EventKind::EcnMark:
        event_common(json, "CE mark", "i", link_pid(e.id), e.t_ns);
        json.kv("s", "p");
        json.key("args");
        json.begin_object();
        json.kv("qlen", e.a);
        json.end_object();
        break;
      case EventKind::LinkState:
        event_common(json, e.aux != 0 ? "link down" : "link up", "i", link_pid(e.id), e.t_ns);
        json.kv("s", "p");
        break;
      case EventKind::Drop:
        event_common(json, "drop", "i", link_pid(e.id), e.t_ns);
        json.kv("s", "p");
        json.key("args");
        json.begin_object();
        json.kv("cause", static_cast<std::int64_t>(e.aux));
        json.end_object();
        break;
      case EventKind::Impair: {
        const char* name = "impair";
        switch (static_cast<ImpairKind>(e.aux)) {
          case ImpairKind::Delay: name = "impair (delay)"; break;
          case ImpairKind::Reorder: name = "impair (reorder)"; break;
          case ImpairKind::Duplicate: name = "impair (duplicate)"; break;
          case ImpairKind::Overmark: name = "impair (overmark)"; break;
        }
        event_common(json, name, "i", link_pid(e.id), e.t_ns);
        json.kv("s", "p");
        break;
      }
      case EventKind::Fault:
        event_common(json, "fault", "i", kSchedPid, e.t_ns);
        json.kv("s", "g");
        json.key("args");
        json.begin_object();
        json.kv("kind", static_cast<std::int64_t>(e.aux));
        json.kv("target", static_cast<std::int64_t>(e.id));
        json.end_object();
        break;

      case EventKind::SubflowDead:
        event_common(json, "subflow dead", "i", flow_pid(e.id), e.t_ns);
        json.kv("tid", static_cast<std::int64_t>(e.subflow));
        json.kv("s", "t");
        json.key("args");
        json.begin_object();
        json.kv("survivors", e.a);
        json.end_object();
        break;
      case EventKind::Reinjection:
        event_common(json, "reinject", "i", flow_pid(e.id), e.t_ns);
        json.kv("tid", static_cast<std::int64_t>(e.subflow));
        json.kv("s", "t");
        json.key("args");
        json.begin_object();
        json.kv("segments", e.a);
        json.end_object();
        break;
      case EventKind::Rto:
        event_common(json, "rto", "i", flow_pid(e.id), e.t_ns);
        json.kv("tid", static_cast<std::int64_t>(e.subflow));
        json.kv("s", "t");
        json.key("args");
        json.begin_object();
        json.kv("backoff", e.a);
        json.end_object();
        break;

      case EventKind::FlowStart:
        event_common(json, "flow start", "i", flow_pid(e.id), e.t_ns);
        json.kv("s", "p");
        json.key("args");
        json.begin_object();
        json.kv("bytes", e.a);
        json.kv("large", e.aux != 0);
        json.end_object();
        break;
      case EventKind::FlowDone:
        event_common(json, "flow done", "i", flow_pid(e.id), e.t_ns);
        json.kv("s", "p");
        json.key("args");
        json.begin_object();
        json.kv("fct_us", e.a);
        json.kv("goodput_mbps", e.b);
        json.end_object();
        break;
      case EventKind::FlowAbort:
        event_common(json, "flow abort", "i", flow_pid(e.id), e.t_ns);
        json.kv("s", "p");
        break;

      case EventKind::Reroute:
        event_common(json, e.aux != 0 ? "reroute (port down)" : "reroute (port up)", "i",
                     link_pid(e.id), e.t_ns);
        json.kv("s", "p");
        json.key("args");
        json.begin_object();
        json.kv("switch", e.a);
        json.kv("alive_ports", e.b);
        json.end_object();
        break;
      case EventKind::PathRehome:
        event_common(json, "path rehome", "i", flow_pid(e.id), e.t_ns);
        json.kv("tid", static_cast<std::int64_t>(e.subflow));
        json.kv("s", "t");
        json.key("args");
        json.begin_object();
        json.kv("new_tag", e.a);
        json.kv("attempt", static_cast<std::int64_t>(e.aux));
        json.end_object();
        break;

      case EventKind::JobSpawn:
        event_common(json, "job spawn", "i", flow_pid(e.id), e.t_ns);
        json.kv("s", "p");
        json.key("args");
        json.begin_object();
        json.kv("attempt", e.a);
        json.end_object();
        break;
      case EventKind::JobOutcome: {
        const char* name = "job outcome";
        switch (static_cast<JobOutcomeCode>(e.aux)) {
          case JobOutcomeCode::Ok: name = "job ok"; break;
          case JobOutcomeCode::Exit: name = "job failed (exit)"; break;
          case JobOutcomeCode::Signal: name = "job crashed (signal)"; break;
          case JobOutcomeCode::Timeout: name = "job timeout"; break;
          case JobOutcomeCode::MissingResult: name = "job missing result"; break;
        }
        event_common(json, name, "i", flow_pid(e.id), e.t_ns);
        json.kv("s", "p");
        json.key("args");
        json.begin_object();
        json.kv("attempt", e.a);
        json.kv("detail", e.b);
        json.end_object();
        break;
      }
      case EventKind::JobRetry:
        event_common(json, "job retry", "i", flow_pid(e.id), e.t_ns);
        json.kv("s", "p");
        json.key("args");
        json.begin_object();
        json.kv("attempt", e.a);
        json.kv("backoff_s", e.b);
        json.end_object();
        break;
      case EventKind::JobExhausted:
        event_common(json, "job exhausted", "i", flow_pid(e.id), e.t_ns);
        json.kv("s", "p");
        json.key("args");
        json.begin_object();
        json.kv("attempts", e.a);
        json.end_object();
        break;

      case EventKind::ShardEpoch:
        event_common(json, e.aux != 0 ? "epoch (serial)" : "epoch", "i", kSchedPid, e.t_ns);
        json.kv("s", "g");
        json.key("args");
        json.begin_object();
        json.kv("epoch", static_cast<std::int64_t>(e.id));
        json.kv("end_us", e.a);
        json.end_object();
        break;
      case EventKind::ShardBarrier:
        event_common(json, "barrier", "i", kSchedPid, e.t_ns);
        json.kv("s", "g");
        json.key("args");
        json.begin_object();
        json.kv("epoch", static_cast<std::int64_t>(e.id));
        json.kv("handoff_packets", e.a);
        json.end_object();
        break;
      case EventKind::CkptWrite:
        event_common(json, "checkpoint write", "i", kSchedPid, e.t_ns);
        json.kv("s", "g");
        json.key("args");
        json.begin_object();
        json.kv("seq", static_cast<std::int64_t>(e.id));
        json.kv("bytes", e.a);
        json.end_object();
        break;
      case EventKind::CkptRestore:
        event_common(json, "checkpoint restore", "i", kSchedPid, e.t_ns);
        json.kv("s", "g");
        json.key("args");
        json.begin_object();
        json.kv("seq", static_cast<std::int64_t>(e.id));
        json.kv("bytes", e.a);
        json.kv("ckpt_us", e.b);
        json.end_object();
        break;
    }
    json.end_object();
  });

  json.end_array();
  json.end_object();
}

std::unique_ptr<TimelineTracer> TimelineTracer::merged(
    const std::vector<const TimelineTracer*>& streams) {
  std::size_t total = 0;
  for (const TimelineTracer* s : streams) {
    if (s != nullptr) total += s->size();
  }
  Config mc;
  mc.capacity = total > 0 ? total : 1;
  mc.categories = cat::kAll;
  auto out = std::make_unique<TimelineTracer>(mc);

  // Each stream is already time-ordered, so a single stable pick of the
  // earliest head is a k-way merge keyed (t_ns, stream, position): equal
  // timestamps resolve by stream order (caller puts the control strand
  // first), then by position within the stream.
  struct Cursor {
    std::vector<TimelineEvent> events;
    std::size_t next = 0;
  };
  std::vector<Cursor> cursors(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (streams[i] == nullptr) continue;
    cursors[i].events.reserve(streams[i]->size());
    streams[i]->for_each([&](const TimelineEvent& e) { cursors[i].events.push_back(e); });
    for (const auto& [id, name] : streams[i]->flow_names_) out->flow_names_[id] = name;
    for (const auto& [id, name] : streams[i]->link_names_) out->link_names_[id] = name;
  }
  for (;;) {
    std::size_t best = streams.size();
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      const Cursor& c = cursors[i];
      if (c.next >= c.events.size()) continue;
      if (best == streams.size() ||
          c.events[c.next].t_ns < cursors[best].events[cursors[best].next].t_ns) {
        best = i;
      }
    }
    if (best == streams.size()) break;
    const TimelineEvent& e = cursors[best].events[cursors[best].next++];
    out->record(e.kind, category_of(e.kind), sim::Time::nanoseconds(e.t_ns), e.id, e.subflow,
                e.aux, e.a, e.b);
  }
  return out;
}

}  // namespace xmp::obs
