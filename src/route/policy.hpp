#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace xmp::route {

/// How a switch spreads traffic over its equal-cost upward ports.
enum class PolicyKind {
  Pinned,   ///< (dst, path_tag, switch id) hash — one deterministic path per
            ///< tag; byte-identical to the pre-routing-layer behavior
  Ecmp,     ///< 5-tuple hash ignoring path_tag — subflows of one connection
            ///< can collide on a port (the classic ECMP failure mode)
  Wcmp,     ///< weighted ECMP: hash into cumulative port weights (defaults
            ///< to link rates, so degraded uplinks attract less traffic)
  Flowlet,  ///< per-flow sticky port, repicked after an idle gap
};

[[nodiscard]] const char* policy_name(PolicyKind k);
/// Parse "pinned" / "ecmp" / "wcmp" / "flowlet"; false on unknown names.
[[nodiscard]] bool parse_policy(const std::string& name, PolicyKind& out);

struct RouteConfig {
  PolicyKind kind = PolicyKind::Pinned;
  /// Flowlet policy: a flow is repicked onto a (possibly) different port
  /// once it has been idle at the switch for this long.
  sim::Time flowlet_gap = sim::Time::microseconds(100);
  /// Failure convergence delay: how long after a port-liveness change the
  /// forwarding table keeps using the stale entry (models control-plane
  /// reaction time; during the window traffic blackholes on the dead port).
  sim::Time reroute_delay = sim::Time::milliseconds(1);
};

/// The upward forwarding table of one switch: the port group of its
/// equal-cost uplinks plus the policy that picks among the live ones.
///
/// Implements net::Switch::PortSelector, so installing a table replaces the
/// switch's built-in hash. With every member alive, the Pinned policy
/// reproduces that hash bit for bit (the golden/determinism tests pin this);
/// once members die, every policy re-spreads over the survivors, and with
/// no survivors select_up_port returns kNoPort (counted as unroutable).
class SwitchTable final : public net::Switch::PortSelector {
 public:
  struct Member {
    std::size_t port = 0;        ///< port index on the owning switch
    net::Link* link = nullptr;   ///< egress link behind the port
    double weight = 1.0;         ///< WCMP share (defaults to the link rate)
    bool alive = true;
    std::uint64_t forwarded = 0; ///< packets sent through this member
  };

  /// Builds the member group from the switch's declared up-ports. A
  /// TagModulo switch (testbed topologies) keeps tag % n pinning.
  SwitchTable(sim::Scheduler& sched, net::Switch& sw, const RouteConfig& cfg);

  SwitchTable(const SwitchTable&) = delete;
  SwitchTable& operator=(const SwitchTable&) = delete;

  [[nodiscard]] std::size_t select_up_port(const net::Packet& p) override;

  /// Flip one member's liveness (convergence has happened); returns true if
  /// the table actually changed. Dead members receive no new traffic.
  bool set_member_alive(std::size_t member, bool alive);

  [[nodiscard]] net::Switch& owner() { return sw_; }
  [[nodiscard]] const std::vector<Member>& members() const { return members_; }
  [[nodiscard]] int alive_members() const { return static_cast<int>(alive_.size()); }
  /// Member index behind `link`, or members().size() if it is not a member.
  [[nodiscard]] std::size_t member_for_link(const net::Link* link) const;

  /// New flows hashed onto a busy port while an idle one existed
  /// (Ecmp/Wcmp only — the collision metric of the AMP baseline).
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }
  /// Flowlet gap expiries that actually moved a flow to a new port.
  [[nodiscard]] std::uint64_t repaths() const { return repaths_; }

  /// Checkpoint member liveness, per-member forwarding counts and the
  /// flow-assignment maps. restore_state() expects a freshly built table
  /// over the same switch (port group and weights are build-time state).
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  [[nodiscard]] std::size_t pick_pinned(const net::Packet& p) const;
  [[nodiscard]] std::size_t pick_hash(const net::Packet& p, bool weighted);
  [[nodiscard]] std::size_t pick_flowlet(const net::Packet& p);
  void note_assignment(const net::Packet& p, std::size_t member);
  void rebuild();

  sim::Scheduler& sched_;
  net::Switch& sw_;
  RouteConfig cfg_;
  bool tag_modulo_;
  std::vector<Member> members_;
  std::vector<std::uint32_t> alive_;  ///< member indices, build order
  std::vector<double> cum_weight_;    ///< parallel to alive_ (WCMP)
  double total_weight_ = 0.0;

  struct FlowletEntry {
    std::int64_t last_ns = 0;
    std::uint32_t member = 0;
    std::uint64_t salt = 0;  ///< advanced per repick for a fresh hash
  };
  std::unordered_map<std::uint64_t, FlowletEntry> flowlets_;

  // Collision accounting (Ecmp/Wcmp): first-seen port per flow key and the
  // number of distinct flow keys assigned to each member.
  std::unordered_map<std::uint64_t, std::uint32_t> flow_port_;
  std::vector<std::uint32_t> flow_count_;
  std::uint64_t collisions_ = 0;
  std::uint64_t repaths_ = 0;
};

}  // namespace xmp::route
