#include "route/policy.hpp"

#include <algorithm>
#include <cassert>

#include "net/types.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"

namespace xmp::route {

const char* policy_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::Pinned:
      return "pinned";
    case PolicyKind::Ecmp:
      return "ecmp";
    case PolicyKind::Wcmp:
      return "wcmp";
    case PolicyKind::Flowlet:
      return "flowlet";
  }
  return "?";
}

bool parse_policy(const std::string& name, PolicyKind& out) {
  if (name == "pinned") {
    out = PolicyKind::Pinned;
  } else if (name == "ecmp") {
    out = PolicyKind::Ecmp;
  } else if (name == "wcmp") {
    out = PolicyKind::Wcmp;
  } else if (name == "flowlet") {
    out = PolicyKind::Flowlet;
  } else {
    return false;
  }
  return true;
}

SwitchTable::SwitchTable(sim::Scheduler& sched, net::Switch& sw, const RouteConfig& cfg)
    : sched_{sched},
      sw_{sw},
      cfg_{cfg},
      tag_modulo_{sw.up_port_policy() == net::Switch::UpPortPolicy::TagModulo} {
  for (const std::size_t port : sw.up_ports()) {
    Member m;
    m.port = port;
    m.link = &sw.port(port);
    m.weight = static_cast<double>(m.link->rate_bps());
    members_.push_back(m);
  }
  flow_count_.assign(members_.size(), 0);
  rebuild();
}

void SwitchTable::rebuild() {
  alive_.clear();
  cum_weight_.clear();
  total_weight_ = 0.0;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(members_.size()); ++i) {
    if (!members_[i].alive) continue;
    alive_.push_back(i);
    total_weight_ += members_[i].weight;
    cum_weight_.push_back(total_weight_);
  }
}

bool SwitchTable::set_member_alive(std::size_t member, bool alive) {
  assert(member < members_.size());
  if (members_[member].alive == alive) return false;
  members_[member].alive = alive;
  rebuild();
  return true;
}

std::size_t SwitchTable::member_for_link(const net::Link* link) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].link == link) return i;
  }
  return members_.size();
}

std::size_t SwitchTable::select_up_port(const net::Packet& p) {
  if (alive_.empty()) return kNoPort;
  std::size_t m;
  switch (cfg_.kind) {
    case PolicyKind::Pinned:
      m = pick_pinned(p);
      break;
    case PolicyKind::Ecmp:
      m = pick_hash(p, /*weighted=*/false);
      break;
    case PolicyKind::Wcmp:
      m = pick_hash(p, /*weighted=*/true);
      break;
    case PolicyKind::Flowlet:
      m = pick_flowlet(p);
      break;
  }
  ++members_[m].forwarded;
  return members_[m].port;
}

std::size_t SwitchTable::pick_pinned(const net::Packet& p) const {
  // With every member alive, alive_[i] == i and this is bit-identical to
  // the switch's built-in hash; with dead members the same hash re-spreads
  // over the survivors.
  const std::size_t n = alive_.size();
  if (tag_modulo_) return alive_[p.path_tag % n];
  const std::uint64_t h = net::mix64((static_cast<std::uint64_t>(p.dst) << 32) ^
                                     (static_cast<std::uint64_t>(p.path_tag) << 8) ^ sw_.id());
  return alive_[h % n];
}

std::size_t SwitchTable::pick_hash(const net::Packet& p, bool weighted) {
  // The 5-tuple stand-in: endpoints plus the (flow, subflow) port pair —
  // and deliberately NOT path_tag, so two subflows of one connection can
  // land on the same port. That collision is the phenomenon ECMP mode is
  // for; Pinned mode is the paper's fix.
  const std::uint64_t h =
      net::mix64((static_cast<std::uint64_t>(p.src) << 32) ^ p.dst ^
                 (static_cast<std::uint64_t>(p.flow) << 40) ^
                 (static_cast<std::uint64_t>(p.subflow) << 20) ^
                 static_cast<std::uint64_t>(sw_.id()) * 0x9e3779b97f4a7c15ULL);
  std::size_t m;
  if (!weighted) {
    m = alive_[h % alive_.size()];
  } else {
    // Map the hash to [0, total_weight) and pick by cumulative weight, so a
    // member's share of flows tracks its share of capacity.
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double target = u * total_weight_;
    std::size_t i = 0;
    while (i + 1 < cum_weight_.size() && target >= cum_weight_[i]) ++i;
    m = alive_[i];
  }
  note_assignment(p, m);
  return m;
}

void SwitchTable::note_assignment(const net::Packet& p, std::size_t member) {
  if (p.type != net::PacketType::Data) return;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(p.flow) << 16) | static_cast<std::uint64_t>(p.subflow);
  const auto [it, inserted] = flow_port_.try_emplace(key, static_cast<std::uint32_t>(member));
  if (!inserted) return;
  // A fresh flow hashed onto a port that already carries one while another
  // live port sat idle: the ECMP collision the paper's pinning avoids.
  if (flow_count_[member] > 0) {
    for (const std::uint32_t a : alive_) {
      if (a != member && flow_count_[a] == 0) {
        ++collisions_;
        if (auto* mt = obs::metrics(); mt != nullptr) [[unlikely]] mt->route_collisions.inc();
        break;
      }
    }
  }
  ++flow_count_[member];
}

std::size_t SwitchTable::pick_flowlet(const net::Packet& p) {
  const std::uint64_t key = (static_cast<std::uint64_t>(p.flow) << 17) |
                            (static_cast<std::uint64_t>(p.subflow) << 1) |
                            static_cast<std::uint64_t>(p.type == net::PacketType::Ack);
  const std::int64_t now_ns = sched_.now().ns();
  const auto [it, inserted] = flowlets_.try_emplace(key);
  FlowletEntry& e = it->second;
  const bool expired = inserted || now_ns - e.last_ns > cfg_.flowlet_gap.ns();
  const bool dead = !inserted && !members_[e.member].alive;
  if (expired || dead) {
    const std::uint64_t h = net::mix64(
        key ^ net::mix64((static_cast<std::uint64_t>(sw_.id()) << 32) ^ ++e.salt));
    const auto m = alive_[h % alive_.size()];
    if (!inserted && m != e.member) {
      ++repaths_;
      if (auto* mt = obs::metrics(); mt != nullptr) [[unlikely]] mt->flowlet_repaths.inc();
    }
    e.member = m;
  }
  e.last_ns = now_ns;
  return e.member;
}

void SwitchTable::save_state(core::ckpt::Saver& s) const {
  s.u64(members_.size());
  for (const Member& m : members_) {
    s.b(m.alive);
    s.u64(m.forwarded);
  }
  s.u64(collisions_);
  s.u64(repaths_);
  s.u64(flow_count_.size());
  for (const std::uint32_t v : flow_count_) s.u32(v);
  // The maps are unordered; serialize in key order for stable bytes.
  std::vector<std::uint64_t> keys;
  keys.reserve(flow_port_.size());
  for (const auto& [k, v] : flow_port_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  s.u64(keys.size());
  for (const std::uint64_t k : keys) {
    s.u64(k);
    s.u32(flow_port_.at(k));
  }
  keys.clear();
  keys.reserve(flowlets_.size());
  for (const auto& [k, e] : flowlets_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  s.u64(keys.size());
  for (const std::uint64_t k : keys) {
    const FlowletEntry& e = flowlets_.at(k);
    s.u64(k);
    s.i64(e.last_ns);
    s.u32(e.member);
    s.u64(e.salt);
  }
}

void SwitchTable::restore_state(core::ckpt::Loader& l) {
  const std::uint64_t n = l.u64();
  assert(!l.ok() || n == members_.size());
  for (std::uint64_t i = 0; i < n && i < members_.size() && l.ok(); ++i) {
    members_[i].alive = l.b();
    members_[i].forwarded = l.u64();
  }
  rebuild();
  collisions_ = l.u64();
  repaths_ = l.u64();
  const std::uint64_t nc = l.u64();
  for (std::uint64_t i = 0; i < nc && i < flow_count_.size() && l.ok(); ++i) {
    flow_count_[i] = l.u32();
  }
  const std::uint64_t np = l.u64();
  for (std::uint64_t i = 0; i < np && l.ok(); ++i) {
    const std::uint64_t k = l.u64();
    flow_port_[k] = l.u32();
  }
  const std::uint64_t nf = l.u64();
  for (std::uint64_t i = 0; i < nf && l.ok(); ++i) {
    const std::uint64_t k = l.u64();
    FlowletEntry e;
    e.last_ns = l.i64();
    e.member = l.u32();
    e.salt = l.u64();
    flowlets_[k] = e;
  }
}

}  // namespace xmp::route
