#include "route/route_manager.hpp"

#include <cassert>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::route {

RouteManager::RouteManager(sim::Scheduler& sched, net::Network& netw, const RouteConfig& cfg)
    : sched_{sched}, netw_{netw}, cfg_{cfg} {}

void RouteManager::install_all() {
  for (net::Switch* sw : netw_.switches()) {
    if (!sw->up_ports().empty()) install(*sw);
  }
}

void RouteManager::install(net::Switch& sw) {
  auto table = std::make_unique<SwitchTable>(sched_, sw, cfg_);
  SwitchTable* t = table.get();
  tables_.push_back(std::move(table));
  by_switch_[&sw] = t;
  sw.set_port_selector(t);
  const auto& members = t->members();
  for (std::size_t i = 0; i < members.size(); ++i) {
    net::Link* link = members[i].link;
    member_of_[link] = {t, i};
    link->add_state_listener(this);
    // A link that failed before the table was installed converges
    // immediately: there was never a fresher entry to age out.
    if (link->is_down()) t->set_member_alive(i, false);
  }
}

SwitchTable* RouteManager::table_for(const net::Switch& sw) {
  const auto it = by_switch_.find(&sw);
  return it == by_switch_.end() ? nullptr : it->second;
}

void RouteManager::on_link_state(net::Link& link, bool /*down*/) {
  if (member_of_.find(&link) == member_of_.end()) return;
  // The timer applies whatever state the link holds when it fires, so a
  // repair during the window simply converges back to "alive" — flapping
  // never leaves a table permanently stale.
  track_converge(&link, sched_.now() + cfg_.reroute_delay, 0, /*restore=*/false);
}

void RouteManager::track_converge(net::Link* link, sim::Time at, std::uint64_t seq,
                                  bool restore) {
  auto cb = [this, link] {
    // Same-delay timers for one link fire in scheduling order, so the
    // oldest tracked entry is the one firing now.
    for (auto it = converge_timers_.begin(); it != converge_timers_.end(); ++it) {
      if (it->first == link) {
        converge_timers_.erase(it);
        break;
      }
    }
    converge(link);
  };
  const sim::EventId id =
      restore ? sched_.restore_at(at, seq, std::move(cb)) : sched_.schedule_at(at, std::move(cb));
  converge_timers_.emplace_back(link, id);
}

void RouteManager::converge(net::Link* link) {
  const auto it = member_of_.find(link);
  if (it == member_of_.end()) return;
  auto [table, member] = it->second;
  const bool down = link->is_down();
  if (!table->set_member_alive(member, !down)) return;  // already converged
  ++reroutes_;
  if (auto* mt = obs::metrics(); mt != nullptr) [[unlikely]] mt->route_reroutes.inc();
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->reroute(sched_.now(), static_cast<std::uint32_t>(link->id()),
                static_cast<std::uint32_t>(table->owner().id()), table->alive_members(), down);
  }
}

void RouteManager::save_state(core::ckpt::Saver& s) const {
  s.u64(reroutes_);
  s.u64(converge_timers_.size());
  for (const auto& [link, id] : converge_timers_) {
    s.u32(static_cast<std::uint32_t>(link->id()));
    sim::Scheduler::PendingKey k;
    [[maybe_unused]] const bool live = sched_.key_of(id, k);
    assert(live && "converge timer id stale");
    s.i64(k.t_ns);
    s.u64(k.seq);
  }
  s.u64(tables_.size());
  for (const auto& t : tables_) t->save_state(s);
}

void RouteManager::restore_state(core::ckpt::Loader& l) {
  reroutes_ = l.u64();
  const std::uint64_t nt = l.u64();
  for (std::uint64_t i = 0; i < nt && l.ok(); ++i) {
    const net::LinkId link = l.u32();
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    track_converge(&netw_.link(link), sim::Time::nanoseconds(t_ns), seq, /*restore=*/true);
  }
  const std::uint64_t n = l.u64();
  assert(!l.ok() || n == tables_.size());
  for (std::uint64_t i = 0; i < n && i < tables_.size() && l.ok(); ++i) {
    tables_[i]->restore_state(l);
  }
}

std::uint64_t RouteManager::collisions() const {
  std::uint64_t n = 0;
  for (const auto& t : tables_) n += t->collisions();
  return n;
}

std::uint64_t RouteManager::repaths() const {
  std::uint64_t n = 0;
  for (const auto& t : tables_) n += t->repaths();
  return n;
}

}  // namespace xmp::route
