#include "route/route_manager.hpp"

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::route {

RouteManager::RouteManager(sim::Scheduler& sched, net::Network& netw, const RouteConfig& cfg)
    : sched_{sched}, netw_{netw}, cfg_{cfg} {}

void RouteManager::install_all() {
  for (net::Switch* sw : netw_.switches()) {
    if (!sw->up_ports().empty()) install(*sw);
  }
}

void RouteManager::install(net::Switch& sw) {
  auto table = std::make_unique<SwitchTable>(sched_, sw, cfg_);
  SwitchTable* t = table.get();
  tables_.push_back(std::move(table));
  by_switch_[&sw] = t;
  sw.set_port_selector(t);
  const auto& members = t->members();
  for (std::size_t i = 0; i < members.size(); ++i) {
    net::Link* link = members[i].link;
    member_of_[link] = {t, i};
    link->add_state_listener(this);
    // A link that failed before the table was installed converges
    // immediately: there was never a fresher entry to age out.
    if (link->is_down()) t->set_member_alive(i, false);
  }
}

SwitchTable* RouteManager::table_for(const net::Switch& sw) {
  const auto it = by_switch_.find(&sw);
  return it == by_switch_.end() ? nullptr : it->second;
}

void RouteManager::on_link_state(net::Link& link, bool /*down*/) {
  if (member_of_.find(&link) == member_of_.end()) return;
  net::Link* l = &link;
  // The timer applies whatever state the link holds when it fires, so a
  // repair during the window simply converges back to "alive" — flapping
  // never leaves a table permanently stale.
  sched_.schedule_in(cfg_.reroute_delay, [this, l] { converge(l); });
}

void RouteManager::converge(net::Link* link) {
  const auto it = member_of_.find(link);
  if (it == member_of_.end()) return;
  auto [table, member] = it->second;
  const bool down = link->is_down();
  if (!table->set_member_alive(member, !down)) return;  // already converged
  ++reroutes_;
  if (auto* mt = obs::metrics(); mt != nullptr) [[unlikely]] mt->route_reroutes.inc();
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->reroute(sched_.now(), static_cast<std::uint32_t>(link->id()),
                static_cast<std::uint32_t>(table->owner().id()), table->alive_members(), down);
  }
}

std::uint64_t RouteManager::collisions() const {
  std::uint64_t n = 0;
  for (const auto& t : tables_) n += t->collisions();
  return n;
}

std::uint64_t RouteManager::repaths() const {
  std::uint64_t n = 0;
  for (const auto& t : tables_) n += t->repaths();
  return n;
}

}  // namespace xmp::route
