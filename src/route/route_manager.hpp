#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "route/policy.hpp"

namespace xmp::route {

/// Owns one SwitchTable per multipath switch and keeps them converged with
/// link liveness — the simulator's control plane.
///
/// On a member link's administrative transition the manager starts a
/// convergence timer (RouteConfig::reroute_delay); when it fires, the table
/// entry is flipped to the link's *current* state, traffic re-spreads over
/// the survivors, and a Reroute timeline event is emitted. Repairs take the
/// same path, restoring the original spread (Pinned tables become
/// bit-identical to their pre-failure selections again). During the window
/// packets still chase the dead port and are dropped there (admin_down) —
/// the blackhole every real routing protocol shows until it converges.
///
/// Fault-free runs schedule no events and perturb nothing, so installing
/// the manager with the Pinned policy is byte-identical to no manager at
/// all (the golden determinism tests pin this).
class RouteManager final : public net::Link::StateListener {
 public:
  RouteManager(sim::Scheduler& sched, net::Network& netw, const RouteConfig& cfg);
  ~RouteManager() override = default;

  RouteManager(const RouteManager&) = delete;
  RouteManager& operator=(const RouteManager&) = delete;

  /// Build + install a table for every switch that has upward ports.
  void install_all();
  /// Build + install the table of one switch.
  void install(net::Switch& sw);

  // net::Link::StateListener
  void on_link_state(net::Link& link, bool down) override;

  [[nodiscard]] const RouteConfig& config() const { return cfg_; }
  [[nodiscard]] SwitchTable* table_for(const net::Switch& sw);

  /// Converged liveness changes applied to tables.
  [[nodiscard]] std::uint64_t reroutes() const { return reroutes_; }
  /// Sums over every installed table.
  [[nodiscard]] std::uint64_t collisions() const;
  [[nodiscard]] std::uint64_t repaths() const;

  /// Checkpoint the reroute tally, pending convergence timers and every
  /// table (in install order). restore_state() expects install_all() to
  /// have already run on the restoring world.
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 private:
  void converge(net::Link* link);
  void track_converge(net::Link* link, sim::Time at, std::uint64_t seq, bool restore);

  sim::Scheduler& sched_;
  net::Network& netw_;
  RouteConfig cfg_;
  std::vector<std::unique_ptr<SwitchTable>> tables_;
  std::unordered_map<const net::Switch*, SwitchTable*> by_switch_;
  /// Member link -> (its table, member index).
  std::unordered_map<const net::Link*, std::pair<SwitchTable*, std::size_t>> member_of_;
  std::uint64_t reroutes_ = 0;
  /// Pending convergence timers (same-delay timers for one link fire FIFO,
  /// so erase-first-match on fire is exact); tracked for checkpoints.
  std::vector<std::pair<net::Link*, sim::EventId>> converge_timers_;
};

}  // namespace xmp::route
