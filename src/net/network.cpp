#include "net/network.hpp"

namespace xmp::net {

Host& Network::add_host() {
  auto h = std::make_unique<Host>(static_cast<NodeId>(nodes_.size()));
  Host& ref = *h;
  nodes_.push_back(std::move(h));
  node_shard_.push_back(current_shard_);
  hosts_.push_back(&ref);
  return ref;
}

Switch& Network::add_switch() {
  auto s = std::make_unique<Switch>(static_cast<NodeId>(nodes_.size()));
  Switch& ref = *s;
  nodes_.push_back(std::move(s));
  node_shard_.push_back(current_shard_);
  switches_.push_back(&ref);
  return ref;
}

Link& Network::make_link(int src_shard, int dst_shard, PacketSink& to, std::int64_t rate_bps,
                         sim::Time prop_delay, const QueueConfig& qcfg) {
  auto l = std::make_unique<Link>(sched_for(src_shard), static_cast<LinkId>(links_.size()),
                                  rate_bps, prop_delay, make_queue(qcfg), to);
  Link& ref = *l;
  links_.push_back(std::move(l));
  link_shard_.push_back(src_shard);
  link_dst_shard_.push_back(dst_shard);
  ingress_[&to].push_back(&ref);
  if (fabric_ != nullptr && src_shard != dst_shard) {
    fabric_->note_cross_link(src_shard, dst_shard, prop_delay, ref.id());
    ref.set_remote_handoff(&fabric_->channel(src_shard, dst_shard));
  }
  return ref;
}

Link& Network::add_link(PacketSink& to, std::int64_t rate_bps, sim::Time prop_delay,
                        const QueueConfig& qcfg) {
  // Sender unknown at this signature: both ends are attributed to the
  // current shard (topology builders go through attach_host /
  // connect_switches, which know the sender).
  return make_link(current_shard_, current_shard_, to, rate_bps, prop_delay, qcfg);
}

void Network::attach_host(Host& h, Switch& sw, std::int64_t rate_bps, sim::Time prop_delay,
                          const QueueConfig& qcfg) {
  Link& up = make_link(shard_of(h), shard_of(sw), sw, rate_bps, prop_delay, qcfg);
  Link& down = make_link(shard_of(sw), shard_of(h), h, rate_bps, prop_delay, qcfg);
  h.attach_uplink(up);
  const std::size_t port = sw.add_port(down);
  sw.set_host_route(h.id(), port);
}

const std::vector<Link*>& Network::links_into(const PacketSink& sink) const {
  static const std::vector<Link*> kNone;
  const auto it = ingress_.find(&sink);
  return it == ingress_.end() ? kNone : it->second;
}

Network::PortPair Network::connect_switches(Switch& a, Switch& b, std::int64_t rate_bps,
                                            sim::Time prop_delay, const QueueConfig& qcfg) {
  Link& a_to_b = make_link(shard_of(a), shard_of(b), b, rate_bps, prop_delay, qcfg);
  Link& b_to_a = make_link(shard_of(b), shard_of(a), a, rate_bps, prop_delay, qcfg);
  const std::size_t pa = a.add_port(a_to_b);
  const std::size_t pb = b.add_port(b_to_a);
  return PortPair{pa, pb, &a_to_b, &b_to_a};
}

}  // namespace xmp::net
