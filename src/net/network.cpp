#include "net/network.hpp"

namespace xmp::net {

Host& Network::add_host() {
  auto h = std::make_unique<Host>(static_cast<NodeId>(nodes_.size()));
  Host& ref = *h;
  nodes_.push_back(std::move(h));
  hosts_.push_back(&ref);
  return ref;
}

Switch& Network::add_switch() {
  auto s = std::make_unique<Switch>(static_cast<NodeId>(nodes_.size()));
  Switch& ref = *s;
  nodes_.push_back(std::move(s));
  switches_.push_back(&ref);
  return ref;
}

Link& Network::add_link(PacketSink& to, std::int64_t rate_bps, sim::Time prop_delay,
                        const QueueConfig& qcfg) {
  auto l = std::make_unique<Link>(sched_, static_cast<LinkId>(links_.size()), rate_bps,
                                  prop_delay, make_queue(qcfg), to);
  Link& ref = *l;
  links_.push_back(std::move(l));
  ingress_[&to].push_back(&ref);
  return ref;
}

void Network::attach_host(Host& h, Switch& sw, std::int64_t rate_bps, sim::Time prop_delay,
                          const QueueConfig& qcfg) {
  Link& up = add_link(sw, rate_bps, prop_delay, qcfg);
  Link& down = add_link(h, rate_bps, prop_delay, qcfg);
  h.attach_uplink(up);
  const std::size_t port = sw.add_port(down);
  sw.set_host_route(h.id(), port);
}

const std::vector<Link*>& Network::links_into(const PacketSink& sink) const {
  static const std::vector<Link*> kNone;
  const auto it = ingress_.find(&sink);
  return it == ingress_.end() ? kNone : it->second;
}

Network::PortPair Network::connect_switches(Switch& a, Switch& b, std::int64_t rate_bps,
                                            sim::Time prop_delay, const QueueConfig& qcfg) {
  Link& a_to_b = add_link(b, rate_bps, prop_delay, qcfg);
  Link& b_to_a = add_link(a, rate_bps, prop_delay, qcfg);
  const std::size_t pa = a.add_port(a_to_b);
  const std::size_t pb = b.add_port(b_to_a);
  return PortPair{pa, pb, &a_to_b, &b_to_a};
}

}  // namespace xmp::net
