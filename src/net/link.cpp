#include "net/link.hpp"

#include <cassert>

#include "net/handoff.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::net {

namespace {

// One call per drop; the TLS gate keeps the disabled cost to two loads.
void note_drop(sim::Time t, LinkId link, obs::DropCause cause) {
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] tr->drop(t, link, cause);
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->packets_dropped.inc();
}

// One call per gray impairment applied (delay/reorder/duplicate/overmark).
void note_impair(sim::Time t, LinkId link, obs::ImpairKind kind) {
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] tr->impair(t, link, kind);
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->packets_impaired.inc();
}

}  // namespace

Link::Link(sim::Scheduler& sched, LinkId id, std::int64_t rate_bps, sim::Time prop_delay,
           std::unique_ptr<Queue> queue, PacketSink& sink)
    : sched_{sched},
      id_{id},
      rate_bps_{rate_bps},
      effective_rate_bps_{rate_bps},
      prop_delay_{prop_delay},
      queue_{std::move(queue)},
      sink_{sink} {
  assert(rate_bps_ > 0);
  assert(queue_ != nullptr);
  queue_->set_owner(id_);  // label this queue's trace events with the link id
}

void Link::send(Packet p) {
  ++offered_;
  if (down_) {  // administratively closed
    ++drops_.admin_down;
    note_drop(sched_.now(), id_, obs::DropCause::AdminDown);
    return;
  }
  bool dup = false;
  if (fault_hook_ != nullptr) {
    const FaultVerdict v = fault_hook_->on_send(p);
    switch (v.action) {
      case FaultAction::Pass:
        break;
      case FaultAction::Drop:
        ++drops_.fault;
        note_drop(sched_.now(), id_, obs::DropCause::Fault);
        return;
      case FaultAction::Corrupt:
        p.corrupt = true;  // rides the wire, discarded at the sink end
        break;
    }
    if (v.overmark && p.ecn == Ecn::Ect) {
      p.ecn = Ecn::Ce;  // the dual of a blackhole: CE without congestion
      ++overmarked_;
      note_impair(sched_.now(), id_, obs::ImpairKind::Overmark);
    }
    dup = v.duplicate;
    if (dup) note_impair(sched_.now(), id_, obs::ImpairKind::Duplicate);
    if (v.delay > sim::Time::zero()) {
      // Park the packet (and a pending clone) at entry; release re-enters
      // the enqueue path below, so everything downstream — egress queue,
      // in-flight FIFO, boundary handoff — sees a perfectly ordinary send.
      ++delayed_;
      note_impair(sched_.now(), id_, v.reorder ? obs::ImpairKind::Reorder : obs::ImpairKind::Delay);
      const std::uint64_t id = next_held_id_++;
      const sim::EventId ev =
          sched_.schedule_in(v.delay, [this, id] { release_held(id); });
      held_.push_back(Held{id, dup, std::move(p), ev});
      return;
    }
  }
  enqueue_for_tx(std::move(p), dup);
}

void Link::enqueue_for_tx(Packet&& p, bool dup) {
  Packet clone;
  if (dup) clone = p;  // copy before the move below
  if (!queue_->enqueue(std::move(p), sched_.now())) {  // tail drop
    ++drops_.queue;
    note_drop(sched_.now(), id_, obs::DropCause::Queue);
  }
  if (dup) {
    // The clone is an extra packet the link manufactured: it enters the
    // conservation law on the offered side (duplicated_), then lives and
    // dies exactly like any other packet.
    ++duplicated_;
    if (!queue_->enqueue(std::move(clone), sched_.now())) {
      ++drops_.queue;
      note_drop(sched_.now(), id_, obs::DropCause::Queue);
    }
  }
  if (!transmitting_) start_transmission();
}

void Link::release_held(std::uint64_t id) {
  for (auto it = held_.begin(); it != held_.end(); ++it) {
    if (it->id == id) {
      Held h = std::move(*it);
      held_.erase(it);
      enqueue_for_tx(std::move(h.pkt), h.duplicate);
      return;
    }
  }
  assert(!"release for a hold entry that no longer exists");
}

void Link::start_transmission() {
  Packet p;
  if (!queue_->dequeue(p, sched_.now())) return;
  transmitting_ = true;

  const sim::Time tx = sim::transmission_time(p.size_bytes, effective_rate_bps_);
  busy_ += tx;
  bytes_sent_ += p.size_bytes;

  if (remote_ != nullptr) {
    // Shard-boundary link: hand the packet to the cross-shard channel; the
    // barrier drain schedules its delivery on the destination shard. The
    // src-owned mirror keeps conservation accounting (set_down,
    // live_in_flight) working without touching destination-shard state.
    const std::int64_t deliver_t_ns = (sched_.now() + tx + prop_delay_).ns();
    while (!remote_in_flight_.empty() &&
           remote_in_flight_.front().deliver_t_ns + remote_->min_delay_ns() <
               sched_.now().ns()) {
      remote_in_flight_.pop_front();  // certainly delivered (see header)
    }
    remote_in_flight_.push_back(RemoteInFlight{deliver_t_ns, epoch_, p.corrupt});
    remote_->push(RemotePacket{this, std::move(p), deliver_t_ns, epoch_});
    tx_events_.push_back(
        TxDone{sched_.schedule_in(tx, [this, e = epoch_] { complete_tx(e); }), epoch_});
    return;
  }

  // Deliver to the sink after serialization + propagation. The packet rides
  // in the in-flight FIFO, so the event captures only `this`.
  in_flight_.push_back(InFlight{std::move(p), epoch_});
  delivery_events_.push_back(sched_.schedule_in(tx + prop_delay_, [this] { deliver_head(); }));
  // Transmitter frees up after serialization only; a stale completion from
  // before a set_down() must not restart the (possibly reopened) link.
  tx_events_.push_back(
      TxDone{sched_.schedule_in(tx, [this, e = epoch_] { complete_tx(e); }), epoch_});
}

void Link::complete_tx(std::uint64_t epoch) {
  // Retire the checkpoint-tracking entry for this event (unique per epoch:
  // within one epoch at most one transmit-complete is ever pending).
  for (auto it = tx_events_.begin(); it != tx_events_.end(); ++it) {
    if (it->epoch == epoch) {
      tx_events_.erase(it);
      break;
    }
  }
  if (epoch == epoch_) on_transmit_complete();
}

void Link::remote_deliver_head() {
  assert(!remote_arrivals_.empty());
  if (!remote_delivery_events_.empty()) remote_delivery_events_.pop_front();
  RemoteArrival head = std::move(remote_arrivals_.front());
  remote_arrivals_.pop_front();
  if (head.epoch != epoch_) return;  // lost to set_down; counted there
  // Running on the destination shard's engine: its clock, not sched_'s
  // (the source shard's), is the delivery time.
  const sim::Time now = sim::current_scheduler()->now();
  if (head.pkt.corrupt) {
    ++drops_.corrupt;  // failed checksum at the receiving end
    note_drop(now, id_, obs::DropCause::Corrupt);
    return;
  }
  ++delivered_;
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->packets_delivered.inc();
  sink_.receive(std::move(head.pkt));
}

void Link::deliver_head() {
  assert(!in_flight_.empty());
  assert(!delivery_events_.empty());
  delivery_events_.pop_front();  // this event; stale-epoch entries pop too
  InFlight head = std::move(in_flight_.front());
  in_flight_.pop_front();
  if (head.epoch != epoch_) return;  // lost to set_down; counted there
  if (head.pkt.corrupt) {
    ++drops_.corrupt;  // failed checksum at the receiving end
    note_drop(sched_.now(), id_, obs::DropCause::Corrupt);
    return;
  }
  ++delivered_;
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->packets_delivered.inc();
  sink_.receive(std::move(head.pkt));
}

void Link::on_transmit_complete() {
  transmitting_ = false;
  if (queue_->len_packets() > 0) start_transmission();
}

void Link::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->link_state(sched_.now(), id_, down_);
  }
  if (down_) {
    // Everything currently propagating with the live epoch is lost; count
    // it now so conservation holds at any probe instant (the stale pops in
    // deliver_head must not count again). Attribution is deterministic: a
    // packet already corrupted by a fault dies as `corrupt` wherever it is
    // when the link closes; only clean packets become admin_down.
    for (const InFlight& f : in_flight_) {
      if (f.epoch == epoch_) ++(f.pkt.corrupt ? drops_.corrupt : drops_.admin_down);
    }
    // Boundary mode: faults apply at barriers, where every event with
    // t < now has run, so mirror entries with deliver_t < now were
    // delivered and the rest are lost in flight. Their parked/scheduled
    // deliveries discard on the stale epoch without double counting.
    while (!remote_in_flight_.empty() && remote_in_flight_.front().deliver_t_ns < sched_.now().ns()) {
      remote_in_flight_.pop_front();
    }
    for (const RemoteInFlight& f : remote_in_flight_) {
      if (f.epoch == epoch_) ++(f.corrupt ? drops_.corrupt : drops_.admin_down);
    }
    ++epoch_;  // cancels in-flight deliveries and the pending tx-complete
    transmitting_ = false;
    Packet discard;
    while (queue_->dequeue(discard, sched_.now())) {
      ++(discard.corrupt ? drops_.corrupt : drops_.admin_down);  // flushed on closure
    }
    // The hold buffer drains the same way; pending clones were never
    // materialized, so they owe the conservation law nothing.
    for (const Held& h : held_) {
      sched_.cancel(h.ev);
      ++(h.pkt.corrupt ? drops_.corrupt : drops_.admin_down);
    }
    held_.clear();
  }
  for (StateListener* l : state_listeners_) l->on_link_state(*this, down_);
}

void Link::save_state(core::ckpt::Saver& s, sim::Scheduler* remote_sched) const {
  s.b(transmitting_);
  s.b(down_);
  s.u64(bytes_sent_);
  s.time(busy_);
  s.u64(epoch_);
  s.u64(offered_);
  s.u64(delivered_);
  s.u64(drops_.queue);
  s.u64(drops_.admin_down);
  s.u64(drops_.fault);
  s.u64(drops_.corrupt);
  s.u64(duplicated_);
  s.u64(delayed_);
  s.u64(overmarked_);
  s.f64(degrade_);
  queue_->save_state(s);

  // Hold buffer: each parked packet re-arms its release event on restore.
  s.u64(held_.size());
  for (const Held& h : held_) {
    sim::Scheduler::PendingKey k;
    [[maybe_unused]] const bool live = sched_.key_of(h.ev, k);
    assert(live && "hold release event lost");
    s.i64(k.t_ns);
    s.u64(k.seq);
    s.b(h.duplicate);
    save_packet(s, h.pkt);
  }

  assert(in_flight_.size() == delivery_events_.size());
  s.u64(in_flight_.size());
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    sim::Scheduler::PendingKey k;
    [[maybe_unused]] const bool live = sched_.key_of(delivery_events_[i], k);
    assert(live && "delivery event lost");
    s.i64(k.t_ns);
    s.u64(k.seq);
    s.u64(in_flight_[i].epoch);
    save_packet(s, in_flight_[i].pkt);
  }

  s.u64(tx_events_.size());
  for (const TxDone& e : tx_events_) {
    sim::Scheduler::PendingKey k;
    [[maybe_unused]] const bool live = sched_.key_of(e.id, k);
    assert(live && "tx-complete event lost");
    s.i64(k.t_ns);
    s.u64(k.seq);
    s.u64(e.epoch);
  }

  s.u64(remote_in_flight_.size());
  for (const RemoteInFlight& f : remote_in_flight_) {
    s.i64(f.deliver_t_ns);
    s.u64(f.epoch);
    s.b(f.corrupt);
  }

  assert(remote_arrivals_.size() == remote_delivery_events_.size());
  s.u64(remote_arrivals_.size());
  for (std::size_t i = 0; i < remote_arrivals_.size(); ++i) {
    assert(remote_sched != nullptr && "boundary link needs its destination scheduler");
    sim::Scheduler::PendingKey k;
    [[maybe_unused]] const bool live = remote_sched->key_of(remote_delivery_events_[i], k);
    assert(live && "remote delivery event lost");
    s.i64(k.t_ns);
    s.u64(k.seq);
    s.u64(remote_arrivals_[i].epoch);
    save_packet(s, remote_arrivals_[i].pkt);
  }
}

void Link::restore_state(core::ckpt::Loader& l, sim::Scheduler* remote_sched) {
  transmitting_ = l.b();
  down_ = l.b();  // listeners are NOT notified: their state restores separately
  bytes_sent_ = l.u64();
  busy_ = l.time();
  epoch_ = l.u64();
  offered_ = l.u64();
  delivered_ = l.u64();
  drops_.queue = l.u64();
  drops_.admin_down = l.u64();
  drops_.fault = l.u64();
  drops_.corrupt = l.u64();
  duplicated_ = l.u64();
  delayed_ = l.u64();
  overmarked_ = l.u64();
  degrade_ = l.f64();
  recompute_effective_rate();
  queue_->restore_state(l);

  const std::uint64_t n_held = l.u64();
  for (std::uint64_t i = 0; i < n_held && l.ok(); ++i) {
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    const bool dup = l.b();
    const std::uint64_t id = next_held_id_++;
    const sim::EventId ev =
        sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this, id] { release_held(id); });
    held_.push_back(Held{id, dup, load_packet(l), ev});
  }

  const std::uint64_t n_flight = l.u64();
  for (std::uint64_t i = 0; i < n_flight && l.ok(); ++i) {
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    const std::uint64_t epoch = l.u64();
    in_flight_.push_back(InFlight{load_packet(l), epoch});
    delivery_events_.push_back(
        sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this] { deliver_head(); }));
  }

  const std::uint64_t n_tx = l.u64();
  for (std::uint64_t i = 0; i < n_tx && l.ok(); ++i) {
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    const std::uint64_t epoch = l.u64();
    tx_events_.push_back(TxDone{
        sched_.restore_at(sim::Time::nanoseconds(t_ns), seq, [this, epoch] { complete_tx(epoch); }),
        epoch});
  }

  const std::uint64_t n_remote = l.u64();
  for (std::uint64_t i = 0; i < n_remote && l.ok(); ++i) {
    const std::int64_t t_ns = l.i64();
    const std::uint64_t epoch = l.u64();
    const bool corrupt = l.b();
    remote_in_flight_.push_back(RemoteInFlight{t_ns, epoch, corrupt});
  }

  const std::uint64_t n_arrivals = l.u64();
  for (std::uint64_t i = 0; i < n_arrivals && l.ok(); ++i) {
    const std::int64_t t_ns = l.i64();
    const std::uint64_t seq = l.u64();
    const std::uint64_t epoch = l.u64();
    remote_arrivals_.push_back(RemoteArrival{load_packet(l), epoch});
    assert(remote_sched != nullptr && "boundary link needs its destination scheduler");
    remote_delivery_events_.push_back(remote_sched->restore_at(
        sim::Time::nanoseconds(t_ns), seq, [this] { remote_deliver_head(); }));
  }
}

std::size_t Link::live_in_flight() const {
  std::size_t n = 0;
  for (const InFlight& f : in_flight_) {
    if (f.epoch == epoch_) ++n;
  }
  // Boundary mode (probed only at quiesced instants, where everything with
  // t <= now has been dispatched): mirror entries still ahead of the clock
  // are on the wire.
  for (const RemoteInFlight& f : remote_in_flight_) {
    if (f.epoch == epoch_ && f.deliver_t_ns > sched_.now().ns()) ++n;
  }
  return n;
}

}  // namespace xmp::net
