#include "net/link.hpp"

#include <cassert>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::net {

namespace {

// One call per drop; the TLS gate keeps the disabled cost to two loads.
void note_drop(sim::Time t, LinkId link, obs::DropCause cause) {
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] tr->drop(t, link, cause);
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->packets_dropped.inc();
}

}  // namespace

Link::Link(sim::Scheduler& sched, LinkId id, std::int64_t rate_bps, sim::Time prop_delay,
           std::unique_ptr<Queue> queue, PacketSink& sink)
    : sched_{sched},
      id_{id},
      rate_bps_{rate_bps},
      prop_delay_{prop_delay},
      queue_{std::move(queue)},
      sink_{sink} {
  assert(rate_bps_ > 0);
  assert(queue_ != nullptr);
  queue_->set_owner(id_);  // label this queue's trace events with the link id
}

void Link::send(Packet p) {
  ++offered_;
  if (down_) {  // administratively closed
    ++drops_.admin_down;
    note_drop(sched_.now(), id_, obs::DropCause::AdminDown);
    return;
  }
  if (fault_hook_ != nullptr) {
    switch (fault_hook_->on_send(p)) {
      case FaultAction::Pass:
        break;
      case FaultAction::Drop:
        ++drops_.fault;
        note_drop(sched_.now(), id_, obs::DropCause::Fault);
        return;
      case FaultAction::Corrupt:
        p.corrupt = true;  // rides the wire, discarded at the sink end
        break;
    }
  }
  if (!queue_->enqueue(std::move(p), sched_.now())) {  // tail drop
    ++drops_.queue;
    note_drop(sched_.now(), id_, obs::DropCause::Queue);
    return;
  }
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  Packet p;
  if (!queue_->dequeue(p, sched_.now())) return;
  transmitting_ = true;

  const sim::Time tx = sim::transmission_time(p.size_bytes, rate_bps_);
  busy_ += tx;
  bytes_sent_ += p.size_bytes;

  // Deliver to the sink after serialization + propagation. The packet rides
  // in the in-flight FIFO, so the event captures only `this`.
  in_flight_.push_back(InFlight{std::move(p), epoch_});
  sched_.schedule_in(tx + prop_delay_, [this] { deliver_head(); });
  // Transmitter frees up after serialization only; a stale completion from
  // before a set_down() must not restart the (possibly reopened) link.
  sched_.schedule_in(tx, [this, e = epoch_] {
    if (e == epoch_) on_transmit_complete();
  });
}

void Link::deliver_head() {
  assert(!in_flight_.empty());
  InFlight head = std::move(in_flight_.front());
  in_flight_.pop_front();
  if (head.epoch != epoch_) return;  // lost to set_down; counted there
  if (head.pkt.corrupt) {
    ++drops_.corrupt;  // failed checksum at the receiving end
    note_drop(sched_.now(), id_, obs::DropCause::Corrupt);
    return;
  }
  ++delivered_;
  if (auto* m = obs::metrics(); m != nullptr) [[unlikely]] m->packets_delivered.inc();
  sink_.receive(std::move(head.pkt));
}

void Link::on_transmit_complete() {
  transmitting_ = false;
  if (queue_->len_packets() > 0) start_transmission();
}

void Link::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (auto* tr = obs::tracer(); tr != nullptr) [[unlikely]] {
    tr->link_state(sched_.now(), id_, down_);
  }
  if (down_) {
    // Everything currently propagating with the live epoch is lost; count
    // it now so conservation holds at any probe instant (the stale pops in
    // deliver_head must not count again).
    for (const InFlight& f : in_flight_) {
      if (f.epoch == epoch_) ++drops_.admin_down;
    }
    ++epoch_;  // cancels in-flight deliveries and the pending tx-complete
    transmitting_ = false;
    Packet discard;
    while (queue_->dequeue(discard, sched_.now())) ++drops_.admin_down;  // flushed on closure
  }
  for (StateListener* l : state_listeners_) l->on_link_state(*this, down_);
}

std::size_t Link::live_in_flight() const {
  std::size_t n = 0;
  for (const InFlight& f : in_flight_) {
    if (f.epoch == epoch_) ++n;
  }
  return n;
}

}  // namespace xmp::net
