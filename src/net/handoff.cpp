#include "net/handoff.hpp"

#include <cstdio>
#include <cstdlib>

#include "net/link.hpp"

namespace xmp::net {

ShardFabric::ShardFabric(int n_shards) : n_{n_shards} {
  scheds_.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) scheds_.push_back(std::make_unique<sim::Scheduler>());
  channels_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
}

void ShardFabric::note_cross_link(int src_shard, int dst_shard, sim::Time prop_delay,
                                  LinkId id) {
  if (prop_delay <= sim::Time::zero()) {
    std::fprintf(stderr,
                 "fatal: cross-shard link %llu (shard %d -> shard %d) has zero propagation "
                 "delay; conservative sync requires lookahead > 0\n",
                 static_cast<unsigned long long>(id), src_shard, dst_shard);
    std::exit(2);
  }
  HandoffChannel& ch = channel(src_shard, dst_shard);
  if (prop_delay.ns() < ch.min_delay_ns_) ch.min_delay_ns_ = prop_delay.ns();
  if (prop_delay.ns() < min_cross_delay_ns_) min_cross_delay_ns_ = prop_delay.ns();
}

std::uint64_t ShardFabric::drain_all() {
  std::uint64_t handed_off = 0;
  for (int dst = 0; dst < n_; ++dst) {
    sim::Scheduler& ds = sched(dst);
    for (int src = 0; src < n_; ++src) {
      if (src == dst) continue;
      auto& items = channel(src, dst).items_;
      for (RemotePacket& rp : items) {
        Link* link = rp.link;
        link->accept_remote_arrival(std::move(rp.pkt), rp.link_epoch);
        // Captures a single pointer, so the callback stays inline (no
        // allocation on the handoff path). The id is tracked on the link so
        // a barrier checkpoint can save the pending delivery's key.
        link->track_remote_delivery(ds.schedule_at(
            sim::Time::nanoseconds(rp.deliver_t_ns), [link] { link->remote_deliver_head(); }));
        ++handed_off;
      }
      items.clear();
    }
  }
  return handed_off;
}

std::uint64_t ShardFabric::total_dispatched() const {
  std::uint64_t sum = 0;
  for (const auto& s : scheds_) sum += s->dispatched();
  return sum;
}

}  // namespace xmp::net
