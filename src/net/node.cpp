#include "net/node.hpp"

#include <cassert>

namespace xmp::net {

std::size_t Switch::add_port(Link& out) {
  ports_.push_back(&out);
  return ports_.size() - 1;
}

void Switch::set_host_route(NodeId host, std::size_t port) {
  assert(port < ports_.size());
  host_route_[host] = port;
}

void Switch::add_up_port(std::size_t port) {
  assert(port < ports_.size());
  up_ports_.push_back(port);
}

void Switch::receive(Packet p) {
  const auto it = host_route_.find(p.dst);
  std::size_t out;
  if (it != host_route_.end()) {
    out = it->second;
  } else if (selector_ != nullptr) {
    out = selector_->select_up_port(p);
    if (out == PortSelector::kNoPort) {
      ++unroutable_;
      return;
    }
  } else if (!up_ports_.empty()) {
    if (up_policy_ == UpPortPolicy::TagModulo) {
      out = up_ports_[p.path_tag % up_ports_.size()];
    } else {
      // Deterministic spread: a pure function of (dst, path_tag, switch id).
      const std::uint64_t h = mix64((static_cast<std::uint64_t>(p.dst) << 32) ^
                                    (static_cast<std::uint64_t>(p.path_tag) << 8) ^ id());
      out = up_ports_[h % up_ports_.size()];
    }
  } else {
    ++unroutable_;
    return;
  }
  ++forwarded_;
  ports_[out]->send(std::move(p));
}

void Host::send(Packet p) {
  assert(uplink_ != nullptr && "host has no uplink attached");
  uplink_->send(std::move(p));
}

void Host::receive(Packet p) {
  const auto it = endpoints_.find(key(p.flow, p.subflow, p.type));
  if (it == endpoints_.end()) {
    ++undeliverable_;
    return;
  }
  ++delivered_;
  it->second->handle(std::move(p));
}

void Host::register_endpoint(FlowId flow, std::uint16_t subflow, PacketType type, Endpoint& ep) {
  endpoints_[key(flow, subflow, type)] = &ep;
}

void Host::unregister_endpoint(FlowId flow, std::uint16_t subflow, PacketType type) {
  endpoints_.erase(key(flow, subflow, type));
}

}  // namespace xmp::net
