#pragma once

#include <cstdint>

namespace xmp::net {

using NodeId = std::uint32_t;
using FlowId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Maximum segment size (payload bytes carried by one data packet).
inline constexpr std::uint32_t kMssBytes = 1460;
/// Wire size of a full data packet (MSS + TCP/IP headers + framing).
inline constexpr std::uint32_t kDataPacketBytes = 1500;
/// Wire size of a pure acknowledgement.
inline constexpr std::uint32_t kAckPacketBytes = 60;

/// Convert a transfer size in bytes to a number of MSS segments (>= 1).
[[nodiscard]] constexpr std::int64_t segments_for_bytes(std::int64_t bytes) {
  return bytes <= 0 ? 1 : (bytes + kMssBytes - 1) / kMssBytes;
}

/// 64-bit mixer used for deterministic path selection (ECMP-like spreading).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace xmp::net
