#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/types.hpp"

namespace xmp::net {

/// Base class for hosts and switches.
class Node : public PacketSink {
 public:
  explicit Node(NodeId id) : id_{id} {}
  [[nodiscard]] NodeId id() const { return id_; }

 private:
  NodeId id_;
};

/// Output-queued switch with exact downward host routes and deterministic
/// hashed spreading over equal-cost upward ports.
///
/// This models the paper's Two-Level Routing Lookup (§5.2.1): the downward
/// path to a host is unique; the upward path is a pure function of
/// (destination, path_tag, switch id), so a subflow with a distinct
/// `path_tag` deterministically takes a distinct path — the simulator
/// equivalent of the paper's "multiple addresses per host" trick.
class Switch final : public Node {
 public:
  explicit Switch(NodeId id) : Node{id} {}

  /// Pluggable upward forwarding decision (src/route/). When installed, it
  /// replaces the built-in up-port hash for packets without an exact host
  /// route; returning kNoPort means "no usable port" and the packet is
  /// counted as unroutable.
  class PortSelector {
   public:
    static constexpr std::size_t kNoPort = static_cast<std::size_t>(-1);
    virtual ~PortSelector() = default;
    [[nodiscard]] virtual std::size_t select_up_port(const Packet& p) = 0;
  };

  /// Register an output port; returns its index.
  std::size_t add_port(Link& out);

  /// Install the exact downward route for `host` via `port`.
  void set_host_route(NodeId host, std::size_t port);

  /// Declare `port` as an upward (multipath) port.
  void add_up_port(std::size_t port);

  /// How packets are spread over the upward ports.
  enum class UpPortPolicy {
    Hashed,     ///< hash(dst, path_tag, switch id) — fat-tree style ECMP
    TagModulo,  ///< path_tag % n_up — explicit path pinning for testbeds
  };
  void set_up_port_policy(UpPortPolicy p) { up_policy_ = p; }
  [[nodiscard]] UpPortPolicy up_port_policy() const { return up_policy_; }

  /// Install / remove (nullptr) the forwarding-table selector. Not owned.
  void set_port_selector(PortSelector* s) { selector_ = s; }
  [[nodiscard]] PortSelector* port_selector() const { return selector_; }

  void receive(Packet p) override;

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t unroutable() const { return unroutable_; }

  void save_state(core::ckpt::Saver& s) const {
    s.u64(forwarded_);
    s.u64(unroutable_);
  }
  void restore_state(core::ckpt::Loader& l) {
    forwarded_ = l.u64();
    unroutable_ = l.u64();
  }

  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }
  [[nodiscard]] Link& port(std::size_t i) { return *ports_.at(i); }
  [[nodiscard]] const std::vector<std::size_t>& up_ports() const { return up_ports_; }

 private:
  std::vector<Link*> ports_;
  std::unordered_map<NodeId, std::size_t> host_route_;
  std::vector<std::size_t> up_ports_;
  UpPortPolicy up_policy_ = UpPortPolicy::Hashed;
  PortSelector* selector_ = nullptr;
  std::uint64_t forwarded_ = 0;
  std::uint64_t unroutable_ = 0;
};

/// End host: one uplink, and a demultiplexer that delivers Data packets to
/// the registered receiver endpoint and Ack packets to the sender endpoint
/// of the (flow, subflow) pair.
class Host final : public Node {
 public:
  /// Endpoint interface implemented by transport senders/receivers.
  class Endpoint {
   public:
    virtual ~Endpoint() = default;
    virtual void handle(Packet p) = 0;
  };

  explicit Host(NodeId id) : Node{id} {}

  void attach_uplink(Link& l) { uplink_ = &l; }
  [[nodiscard]] Link* uplink() { return uplink_; }

  /// Hand a packet to the network.
  void send(Packet p);

  void receive(Packet p) override;

  /// Register the endpoint that consumes packets of `type` for
  /// (flow, subflow). Data packets go to the receive side, Ack packets to
  /// the send side.
  void register_endpoint(FlowId flow, std::uint16_t subflow, PacketType type, Endpoint& ep);
  void unregister_endpoint(FlowId flow, std::uint16_t subflow, PacketType type);

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t undeliverable() const { return undeliverable_; }

  void save_state(core::ckpt::Saver& s) const {
    s.u64(delivered_);
    s.u64(undeliverable_);
  }
  void restore_state(core::ckpt::Loader& l) {
    delivered_ = l.u64();
    undeliverable_ = l.u64();
  }

 private:
  static std::uint64_t key(FlowId flow, std::uint16_t subflow, PacketType type) {
    return (static_cast<std::uint64_t>(flow) << 17) | (static_cast<std::uint64_t>(subflow) << 1) |
           static_cast<std::uint64_t>(type == PacketType::Ack);
  }

  Link* uplink_ = nullptr;
  std::unordered_map<std::uint64_t, Endpoint*> endpoints_;
  std::uint64_t delivered_ = 0;
  std::uint64_t undeliverable_ = 0;
};

}  // namespace xmp::net
