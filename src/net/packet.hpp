#pragma once

#include <cstdint>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace xmp::net {

/// ECN codepoint in the (modelled) IP header.
enum class Ecn : std::uint8_t {
  NotEct,  ///< sender not ECN-capable; congested queues drop instead of mark
  Ect,     ///< ECN-capable transport
  Ce,      ///< Congestion Experienced (set by a queue)
};

enum class PacketType : std::uint8_t { Data, Ack };

/// A simulated packet. Headers only — payload bytes are modelled by
/// `size_bytes` and the segment sequence number, never materialized.
///
/// One Packet is one MSS-sized TCP segment (type Data) or one pure ACK
/// (type Ack). Sequence numbers count segments, not bytes.
struct Packet {
  std::uint64_t uid = 0;   ///< globally unique, for tracing
  FlowId flow = 0;
  std::uint16_t subflow = 0;
  std::uint16_t path_tag = 0;  ///< selects among equal-cost upward paths
  PacketType type = PacketType::Data;
  Ecn ecn = Ecn::NotEct;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t size_bytes = kDataPacketBytes;

  // --- transport header ---
  std::int64_t seq = 0;   ///< Data: segment index within the subflow
  std::int64_t ack = 0;   ///< Ack: cumulative ack (next expected segment)
  std::uint8_t ce_echo = 0;  ///< XMP codec: count of CEs echoed (0..3)
  bool ece = false;          ///< classic / DCTCP echo flag
  bool cwr = false;          ///< Data: sender reduced its window (RFC 3168)
  bool retransmit = false;   ///< Data: this is a retransmission
  /// Payload corrupted by an injected fault: the packet still occupies the
  /// wire but fails its checksum at the receiving end of the link and is
  /// discarded there (counted separately from queue drops).
  bool corrupt = false;

  /// Timestamp option: Data carries send time, Ack echoes it back so the
  /// sender can take microsecond-granularity RTT samples.
  sim::Time ts = sim::Time::zero();
};

}  // namespace xmp::net
