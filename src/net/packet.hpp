#pragma once

#include <cstdint>

#include "core/checkpoint.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace xmp::net {

/// ECN codepoint in the (modelled) IP header.
enum class Ecn : std::uint8_t {
  NotEct,  ///< sender not ECN-capable; congested queues drop instead of mark
  Ect,     ///< ECN-capable transport
  Ce,      ///< Congestion Experienced (set by a queue)
};

enum class PacketType : std::uint8_t { Data, Ack };

/// A simulated packet. Headers only — payload bytes are modelled by
/// `size_bytes` and the segment sequence number, never materialized.
///
/// One Packet is one MSS-sized TCP segment (type Data) or one pure ACK
/// (type Ack). Sequence numbers count segments, not bytes.
struct Packet {
  std::uint64_t uid = 0;   ///< globally unique, for tracing
  FlowId flow = 0;
  std::uint16_t subflow = 0;
  std::uint16_t path_tag = 0;  ///< selects among equal-cost upward paths
  PacketType type = PacketType::Data;
  Ecn ecn = Ecn::NotEct;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t size_bytes = kDataPacketBytes;

  // --- transport header ---
  std::int64_t seq = 0;   ///< Data: segment index within the subflow
  std::int64_t ack = 0;   ///< Ack: cumulative ack (next expected segment)
  std::uint8_t ce_echo = 0;  ///< XMP codec: count of CEs echoed (0..3)
  bool ece = false;          ///< classic / DCTCP echo flag
  bool cwr = false;          ///< Data: sender reduced its window (RFC 3168)
  bool retransmit = false;   ///< Data: this is a retransmission
  /// Payload corrupted by an injected fault: the packet still occupies the
  /// wire but fails its checksum at the receiving end of the link and is
  /// discarded there (counted separately from queue drops).
  bool corrupt = false;

  /// Timestamp option: Data carries send time, Ack echoes it back so the
  /// sender can take microsecond-granularity RTT samples.
  sim::Time ts = sim::Time::zero();
};

/// Checkpoint serialization of one in-flight/queued packet (field by field
/// rather than memcpy, so padding bytes never leak into checkpoint files).
inline void save_packet(core::ckpt::Saver& s, const Packet& p) {
  s.u64(p.uid);
  s.u32(p.flow);
  s.u16(p.subflow);
  s.u16(p.path_tag);
  s.u8(static_cast<std::uint8_t>(p.type));
  s.u8(static_cast<std::uint8_t>(p.ecn));
  s.u32(p.src);
  s.u32(p.dst);
  s.u32(p.size_bytes);
  s.i64(p.seq);
  s.i64(p.ack);
  s.u8(p.ce_echo);
  s.b(p.ece);
  s.b(p.cwr);
  s.b(p.retransmit);
  s.b(p.corrupt);
  s.time(p.ts);
}

inline Packet load_packet(core::ckpt::Loader& l) {
  Packet p;
  p.uid = l.u64();
  p.flow = l.u32();
  p.subflow = l.u16();
  p.path_tag = l.u16();
  p.type = static_cast<PacketType>(l.u8());
  p.ecn = static_cast<Ecn>(l.u8());
  p.src = l.u32();
  p.dst = l.u32();
  p.size_bytes = l.u32();
  p.seq = l.i64();
  p.ack = l.i64();
  p.ce_echo = l.u8();
  p.ece = l.b();
  p.cwr = l.b();
  p.retransmit = l.b();
  p.corrupt = l.b();
  p.ts = l.time();
  return p;
}

}  // namespace xmp::net
