#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/handoff.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"

namespace xmp::net {

/// Owns every node and link of a simulated network and hands out stable
/// references. NodeIds are dense indices into the node table.
///
/// Sharded construction: installing a ShardFabric before building the
/// topology makes node/link creation shard-aware. Topology builders call
/// begin_shard(s) before creating a shard's nodes; every link is owned by
/// its *sender's* shard (its queue and transmitter run there), and a link
/// whose endpoints live in different shards becomes a boundary link wired
/// through the fabric's handoff channels. Without a fabric all of this is
/// inert and construction is byte-identical to the serial engine.
class Network {
 public:
  explicit Network(sim::Scheduler& sched) : sched_{sched} {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Enable shard-aware construction (call before building the topology).
  void set_shard_fabric(ShardFabric* fabric) { fabric_ = fabric; }
  [[nodiscard]] bool sharded() const { return fabric_ != nullptr; }

  /// Nodes created from here on belong to logical shard `s`.
  void begin_shard(int s) { current_shard_ = s; }

  /// Logical shard of a node (0 when construction was not sharded).
  [[nodiscard]] int shard_of(const Node& n) const {
    return node_shard_.at(static_cast<std::size_t>(n.id()));
  }
  /// Logical shard owning a link (its sender's shard).
  [[nodiscard]] int link_shard(LinkId id) const {
    return link_shard_.at(static_cast<std::size_t>(id));
  }
  /// Logical shard of a link's receiving end (== link_shard for non-boundary
  /// links). Checkpointing uses it to find the scheduler holding a boundary
  /// link's pending remote deliveries.
  [[nodiscard]] int link_dst_shard(LinkId id) const {
    return link_dst_shard_.at(static_cast<std::size_t>(id));
  }

  Host& add_host();
  Switch& add_switch();

  /// Create a unidirectional link delivering into `to`.
  Link& add_link(PacketSink& to, std::int64_t rate_bps, sim::Time prop_delay,
                 const QueueConfig& qcfg);

  /// Connect host <-> switch with a symmetric pair of links; wires the host
  /// uplink and the switch downward route.
  void attach_host(Host& h, Switch& sw, std::int64_t rate_bps, sim::Time prop_delay,
                   const QueueConfig& qcfg);

  /// Connect two switches with a symmetric pair of links; returns the port
  /// indices {on_a, on_b} so callers can mark them as up/down ports.
  struct PortPair {
    std::size_t on_a;
    std::size_t on_b;
    Link* a_to_b;
    Link* b_to_a;
  };
  PortPair connect_switches(Switch& a, Switch& b, std::int64_t rate_bps, sim::Time prop_delay,
                            const QueueConfig& qcfg);

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  [[nodiscard]] std::vector<std::unique_ptr<Link>>& links() { return links_; }
  [[nodiscard]] Link& link(LinkId id) { return *links_.at(id); }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] Host& host(std::size_t i) { return *hosts_.at(i); }
  [[nodiscard]] const std::vector<Host*>& hosts() const { return hosts_; }
  [[nodiscard]] const std::vector<Switch*>& switches() const { return switches_; }

  /// Every link whose receiving end is `sink` (a node's ingress links).
  /// Used by fault injection (failing a node downs all attached links) and
  /// routing-table construction. Served from an adjacency index maintained
  /// by add_link, so a per-fault-event lookup is O(1) instead of O(links).
  [[nodiscard]] const std::vector<Link*>& links_into(const PacketSink& sink) const;

 private:
  /// Create a link owned by `src_shard`'s scheduler delivering into `to`;
  /// cross-shard pairs are registered with the fabric and flipped into
  /// boundary mode. The serial path (`fabric_ == nullptr`) is untouched.
  Link& make_link(int src_shard, int dst_shard, PacketSink& to, std::int64_t rate_bps,
                  sim::Time prop_delay, const QueueConfig& qcfg);

  [[nodiscard]] sim::Scheduler& sched_for(int shard) {
    return fabric_ != nullptr ? fabric_->sched(shard) : sched_;
  }

  sim::Scheduler& sched_;
  ShardFabric* fabric_ = nullptr;
  int current_shard_ = 0;
  std::vector<int> node_shard_;  ///< by NodeId
  std::vector<int> link_shard_;      ///< by LinkId (sender's shard)
  std::vector<int> link_dst_shard_;  ///< by LinkId (receiver's shard)
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
  std::unordered_map<const PacketSink*, std::vector<Link*>> ingress_;
};

}  // namespace xmp::net
