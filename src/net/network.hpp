#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"

namespace xmp::net {

/// Owns every node and link of a simulated network and hands out stable
/// references. NodeIds are dense indices into the node table.
class Network {
 public:
  explicit Network(sim::Scheduler& sched) : sched_{sched} {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Host& add_host();
  Switch& add_switch();

  /// Create a unidirectional link delivering into `to`.
  Link& add_link(PacketSink& to, std::int64_t rate_bps, sim::Time prop_delay,
                 const QueueConfig& qcfg);

  /// Connect host <-> switch with a symmetric pair of links; wires the host
  /// uplink and the switch downward route.
  void attach_host(Host& h, Switch& sw, std::int64_t rate_bps, sim::Time prop_delay,
                   const QueueConfig& qcfg);

  /// Connect two switches with a symmetric pair of links; returns the port
  /// indices {on_a, on_b} so callers can mark them as up/down ports.
  struct PortPair {
    std::size_t on_a;
    std::size_t on_b;
    Link* a_to_b;
    Link* b_to_a;
  };
  PortPair connect_switches(Switch& a, Switch& b, std::int64_t rate_bps, sim::Time prop_delay,
                            const QueueConfig& qcfg);

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  [[nodiscard]] std::vector<std::unique_ptr<Link>>& links() { return links_; }
  [[nodiscard]] Link& link(LinkId id) { return *links_.at(id); }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] Host& host(std::size_t i) { return *hosts_.at(i); }
  [[nodiscard]] const std::vector<Host*>& hosts() const { return hosts_; }
  [[nodiscard]] const std::vector<Switch*>& switches() const { return switches_; }

  /// Every link whose receiving end is `sink` (a node's ingress links).
  /// Used by fault injection (failing a node downs all attached links) and
  /// routing-table construction. Served from an adjacency index maintained
  /// by add_link, so a per-fault-event lookup is O(1) instead of O(links).
  [[nodiscard]] const std::vector<Link*>& links_into(const PacketSink& sink) const;

 private:
  sim::Scheduler& sched_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
  std::unordered_map<const PacketSink*, std::vector<Link*>> ingress_;
};

}  // namespace xmp::net
