#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "obs/hooks.hpp"
#include "sim/time.hpp"

namespace xmp::net {

/// Fixed-capacity packet FIFO backed by a flat ring buffer.
///
/// Queues are bounded by construction (capacity in packets), so the ring
/// is sized once on first use and enqueue/dequeue never allocate — unlike
/// std::deque, which allocates a block every few packets on the busiest
/// links of a run.
class PacketRing {
 public:
  explicit PacketRing(std::size_t capacity) : capacity_{capacity} {}

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] Packet& front() { return buf_[head_]; }

  void push_back(Packet&& p) {
    if (buf_.empty()) buf_.resize(capacity_);  // deferred: idle queues stay small
    std::size_t tail = head_ + count_;
    if (tail >= capacity_) tail -= capacity_;
    buf_[tail] = std::move(p);
    ++count_;
  }

  void pop_front() {
    ++head_;
    if (head_ == capacity_) head_ = 0;
    --count_;
  }

  void save_state(core::ckpt::Saver& s) const {
    s.u64(count_);
    for (std::size_t i = 0; i < count_; ++i) {
      std::size_t at = head_ + i;
      if (at >= capacity_) at -= capacity_;
      save_packet(s, buf_[at]);
    }
  }

  /// Refill from a checkpoint; physical head position is canonicalized to 0
  /// (the ring's layout is invisible to FIFO behavior).
  void restore_state(core::ckpt::Loader& l) {
    buf_.clear();
    head_ = 0;
    count_ = 0;
    const std::uint64_t n = l.u64();
    for (std::uint64_t i = 0; i < n && l.ok(); ++i) push_back(load_packet(l));
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::vector<Packet> buf_;
};

/// Counters shared by every queue discipline.
struct QueueCounters {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t marked = 0;  ///< packets that received a CE mark here
};

/// Egress queue discipline attached to a link.
///
/// `enqueue` may modify the packet (ECN marking) and returns false when the
/// packet is dropped. Queues count both packets and bytes; capacity is
/// expressed in packets, matching the paper ("queue size of 100 packets").
class Queue {
 public:
  explicit Queue(std::size_t capacity_packets)
      : capacity_{capacity_packets}, fifo_{capacity_packets} {}
  virtual ~Queue() = default;

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  /// Try to accept `p`; returns false if dropped.
  [[nodiscard]] virtual bool enqueue(Packet&& p, sim::Time now) = 0;

  /// Pop the head packet; returns false when empty.
  [[nodiscard]] bool dequeue(Packet& out, sim::Time now);

  [[nodiscard]] std::size_t len_packets() const { return fifo_.size(); }
  [[nodiscard]] std::size_t len_bytes() const { return bytes_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const QueueCounters& counters() const { return counters_; }

  /// Time-weighted average occupancy (packets) over [0, now] — the paper's
  /// "level of link buffer occupancy", measured exactly rather than by
  /// polling. `now` must be monotone across calls (simulation time).
  [[nodiscard]] double mean_occupancy(sim::Time now) const;
  /// Largest instantaneous occupancy ever observed.
  [[nodiscard]] std::size_t peak_occupancy() const { return peak_; }

  /// Fault injection: an "ECN blackhole" switch keeps forwarding but stops
  /// CE-marking (non-ECN hardware). Marking disciplines must honour this.
  void set_marking_enabled(bool on) { marking_enabled_ = on; }
  [[nodiscard]] bool marking_enabled() const { return marking_enabled_; }

  /// Hybrid-engine coupling: while set, marking disciplines mark every
  /// arriving ECT packet, so packet-accurate foreground flows see the
  /// congestion the fluid-modelled background traffic would cause. The
  /// engine toggles this as a duty cycle — bursts covering a p_mark
  /// fraction of a fixed period — because the fluid equilibrium backlog
  /// sits *above* K by construction; feeding it into the threshold compare
  /// directly would mark 100% of foreground packets where the real
  /// (oscillating) queue marks only a p fraction of rounds. Not
  /// checkpointed — the hybrid engine re-applies it after a restore,
  /// exactly as it re-derives it every fluid tick.
  void set_fluid_marking(bool on) { fluid_marking_ = on; }
  [[nodiscard]] bool fluid_marking() const { return fluid_marking_; }

  /// Observability only: the link this queue drains (labels trace events).
  void set_owner(std::uint32_t link_id) { owner_ = link_id; }
  [[nodiscard]] std::uint32_t owner() const { return owner_; }

  /// Checkpoint the queued packets, counters and occupancy integral (the
  /// integral feeds results, so it must survive exactly). Disciplines with
  /// extra state (RED) extend via save_extra/restore_extra.
  void save_state(core::ckpt::Saver& s) const;
  void restore_state(core::ckpt::Loader& l);

 protected:
  /// FIFO admission used by subclasses after their drop/mark decision.
  /// `now` feeds the occupancy integral.
  bool push_tail(Packet&& p, sim::Time now);
  virtual void on_dequeue(const Packet& /*p*/, sim::Time /*now*/) {}
  virtual void save_extra(core::ckpt::Saver& /*s*/) const {}
  virtual void restore_extra(core::ckpt::Loader& /*l*/) {}

  // --- observability (single predictable branch when disabled) ---
  /// Activity-driven depth sample: piggybacks on enqueue/dequeue, rate-
  /// limited per queue, never schedules events — a traced run executes the
  /// exact same simulation as an untraced one.
  void observe(sim::Time now) {
    if (obs::tracer() != nullptr || obs::metrics() != nullptr) [[unlikely]] {
      observe_slow(now);
    }
  }
  /// Marking disciplines call note_mark when a CE mark is applied and
  /// note_gap when an ECT packet passes unmarked; consecutive-mark run
  /// lengths feed the `mark_runs` histogram.
  void note_mark(sim::Time now) {
    if (obs::tracer() != nullptr || obs::metrics() != nullptr) [[unlikely]] {
      note_mark_slow(now);
    }
  }
  void note_gap() {
    if (mark_run_ != 0) [[unlikely]] note_gap_slow();
  }

  std::size_t capacity_;
  PacketRing fifo_;
  std::size_t bytes_ = 0;
  QueueCounters counters_;
  bool marking_enabled_ = true;
  bool fluid_marking_ = false;  ///< see set_fluid_marking()

 private:
  void advance_occupancy_clock(sim::Time now);
  void observe_slow(sim::Time now);
  void note_mark_slow(sim::Time now);
  void note_gap_slow();

  // Occupancy integral: Σ len · dt, in packet·nanoseconds.
  double occupancy_area_ = 0.0;
  sim::Time last_change_ = sim::Time::zero();
  std::size_t peak_ = 0;

  // Observability state; never read by the simulation itself.
  std::uint32_t owner_ = 0xffffffffu;
  sim::Time last_sample_ = sim::Time::nanoseconds(-1);
  std::uint64_t mark_run_ = 0;  ///< consecutive CE marks since the last gap
};

/// Plain FIFO drop-tail queue (what LIA/TCP see in the paper).
class DropTailQueue final : public Queue {
 public:
  using Queue::Queue;
  bool enqueue(Packet&& p, sim::Time now) override;
};

/// Drop-tail queue with the paper's packet-marking rule (§2.1): the arriving
/// packet is marked CE iff the *instantaneous* queue length is larger than
/// K packets. Non-ECT packets are never marked (they are dropped only on
/// overflow), which is how the paper's plain-TCP small flows coexist.
class EcnThresholdQueue final : public Queue {
 public:
  EcnThresholdQueue(std::size_t capacity_packets, std::size_t mark_threshold)
      : Queue{capacity_packets}, k_{mark_threshold} {}

  bool enqueue(Packet&& p, sim::Time now) override;

  [[nodiscard]] std::size_t mark_threshold() const { return k_; }

 private:
  std::size_t k_;
};

/// Classic RED with EWMA average-queue estimation (Floyd & Jacobson).
/// Included to reproduce the paper's argument for *not* using it: with
/// ultra-low RTT and low statistical multiplexing the EWMA average is a
/// poor congestion signal. Setting `wq = 1.0` and `min_th == max_th == K`
/// degenerates RED into the paper's instantaneous-threshold rule (the
/// "configuration trick" of §3).
class RedQueue final : public Queue {
 public:
  struct Params {
    double wq = 0.002;       ///< EWMA weight
    double min_th = 5;       ///< packets
    double max_th = 15;      ///< packets
    double max_p = 0.1;      ///< marking probability at max_th
    bool ecn = true;         ///< mark ECT packets instead of dropping
  };

  RedQueue(std::size_t capacity_packets, const Params& params)
      : Queue{capacity_packets}, p_{params} {}

  bool enqueue(Packet&& p, sim::Time now) override;

  [[nodiscard]] double avg() const { return avg_; }

  /// RNG hook so runs stay deterministic; defaults to a fixed seed stream.
  void set_random01(double (*fn)(std::uint64_t), std::uint64_t seed);

 protected:
  void save_extra(core::ckpt::Saver& s) const override;
  void restore_extra(core::ckpt::Loader& l) override;

 private:
  double random01();

  Params p_;
  double avg_ = 0.0;
  std::uint64_t count_since_mark_ = 0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
};

/// Factory signature used by topology builders to instantiate one queue
/// per link egress.
using QueueFactory = std::unique_ptr<Queue> (*)(const struct QueueConfig&);

/// Declarative queue configuration used across topologies and experiments.
struct QueueConfig {
  enum class Kind { DropTail, EcnThreshold, Red } kind = Kind::EcnThreshold;
  std::size_t capacity_packets = 100;
  std::size_t mark_threshold = 10;  ///< K, for EcnThreshold
  RedQueue::Params red;             ///< for Red
};

/// Build a queue from a declarative config.
[[nodiscard]] std::unique_ptr<Queue> make_queue(const QueueConfig& cfg);

}  // namespace xmp::net
