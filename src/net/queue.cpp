#include "net/queue.hpp"

#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace xmp::net {

void Queue::observe_slow(sim::Time now) {
  auto* tr = obs::tracer();
  auto* m = obs::metrics();
  // Rate limit per queue so a busy link cannot flood the ring; the interval
  // comes from the tracer when present, else a fixed default for metrics.
  const sim::Time interval = tr != nullptr ? tr->config().queue_sample_interval
                                           : sim::Time::microseconds(50);
  if (last_sample_.ns() >= 0 && now - last_sample_ < interval) return;
  last_sample_ = now;
  if (tr != nullptr) {
    tr->queue_sample(now, owner_, static_cast<double>(fifo_.size()),
                     static_cast<double>(bytes_));
  }
  if (m != nullptr) m->queue_depth.add(fifo_.size());
}

void Queue::note_mark_slow(sim::Time now) {
  ++mark_run_;
  if (auto* tr = obs::tracer(); tr != nullptr) {
    tr->ecn_mark(now, owner_, static_cast<double>(fifo_.size()));
  }
  if (auto* m = obs::metrics(); m != nullptr) m->ecn_marks.inc();
}

void Queue::note_gap_slow() {
  if (auto* m = obs::metrics(); m != nullptr) m->mark_runs.add(mark_run_);
  mark_run_ = 0;
}

void Queue::advance_occupancy_clock(sim::Time now) {
  if (now > last_change_) {
    occupancy_area_ +=
        static_cast<double>(fifo_.size()) * static_cast<double>((now - last_change_).ns());
    last_change_ = now;
  }
}

double Queue::mean_occupancy(sim::Time now) const {
  if (now <= sim::Time::zero()) return 0.0;
  const double tail = static_cast<double>(fifo_.size()) *
                      static_cast<double>((now - last_change_).ns());
  return (occupancy_area_ + tail) / static_cast<double>(now.ns());
}

bool Queue::dequeue(Packet& out, sim::Time now) {
  if (fifo_.empty()) return false;
  advance_occupancy_clock(now);
  observe(now);
  out = std::move(fifo_.front());
  fifo_.pop_front();
  assert(bytes_ >= out.size_bytes);
  bytes_ -= out.size_bytes;
  on_dequeue(out, now);
  return true;
}

void Queue::save_state(core::ckpt::Saver& s) const {
  fifo_.save_state(s);
  s.u64(bytes_);
  s.u64(counters_.enqueued);
  s.u64(counters_.dropped);
  s.u64(counters_.marked);
  s.b(marking_enabled_);
  s.f64(occupancy_area_);
  s.time(last_change_);
  s.u64(peak_);
  s.time(last_sample_);
  s.u64(mark_run_);
  save_extra(s);
}

void Queue::restore_state(core::ckpt::Loader& l) {
  fifo_.restore_state(l);
  bytes_ = l.u64();
  counters_.enqueued = l.u64();
  counters_.dropped = l.u64();
  counters_.marked = l.u64();
  marking_enabled_ = l.b();
  occupancy_area_ = l.f64();
  last_change_ = l.time();
  peak_ = l.u64();
  last_sample_ = l.time();
  mark_run_ = l.u64();
  restore_extra(l);
}

bool Queue::push_tail(Packet&& p, sim::Time now) {
  advance_occupancy_clock(now);
  observe(now);
  if (fifo_.size() >= capacity_) {
    ++counters_.dropped;
    return false;
  }
  bytes_ += p.size_bytes;
  fifo_.push_back(std::move(p));
  if (fifo_.size() > peak_) peak_ = fifo_.size();
  ++counters_.enqueued;
  return true;
}

bool DropTailQueue::enqueue(Packet&& p, sim::Time now) {
  return push_tail(std::move(p), now);
}

bool EcnThresholdQueue::enqueue(Packet&& p, sim::Time now) {
  // Paper §2.1 rule 1: mark the *arriving* packet when the instantaneous
  // queue length is larger than K — or when a hybrid run's fluid engine
  // has this egress inside a marking burst (its duty-cycle rendering of
  // the congestion the fluid background flows would cause here).
  if ((fifo_.size() > k_ || fluid_marking_) && p.ecn == Ecn::Ect && marking_enabled_) {
    p.ecn = Ecn::Ce;
    ++counters_.marked;
    note_mark(now);
  } else if (p.ecn == Ecn::Ect) {
    note_gap();
  }
  return push_tail(std::move(p), now);
}

void RedQueue::set_random01(double (* /*fn*/)(std::uint64_t), std::uint64_t seed) {
  rng_state_ = seed | 1;
}

double RedQueue::random01() {
  // xorshift64*: deterministic, decoupled from workload RNG streams.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return static_cast<double>((rng_state_ * 0x2545f4914f6cdd1dULL) >> 11) * 0x1.0p-53;
}

bool RedQueue::enqueue(Packet&& p, sim::Time now) {
  avg_ = (1.0 - p_.wq) * avg_ + p_.wq * static_cast<double>(fifo_.size());

  bool congested = false;
  // Strict comparison so that min_th == max_th == K with wq = 1 reproduces
  // the paper's "instantaneous length larger than K" rule exactly.
  if (avg_ > p_.max_th) {
    congested = true;
  } else if (avg_ > p_.min_th) {
    const double pb = p_.max_p * (avg_ - p_.min_th) / (p_.max_th - p_.min_th);
    // Floyd's count correction spreads marks more uniformly.
    const double pa =
        pb / std::max(1e-9, 1.0 - static_cast<double>(count_since_mark_) * pb);
    ++count_since_mark_;
    if (random01() < pa) congested = true;
  } else {
    count_since_mark_ = 0;
  }

  if (congested) {
    count_since_mark_ = 0;
    // An ECN blackhole (marking disabled) degrades RED to its drop mode.
    if (p_.ecn && p.ecn == Ecn::Ect && marking_enabled_) {
      p.ecn = Ecn::Ce;
      ++counters_.marked;
      note_mark(now);
    } else {
      ++counters_.dropped;
      return false;
    }
  } else if (p.ecn == Ecn::Ect) {
    note_gap();
  }
  return push_tail(std::move(p), now);
}

void RedQueue::save_extra(core::ckpt::Saver& s) const {
  s.f64(avg_);
  s.u64(count_since_mark_);
  s.u64(rng_state_);
}

void RedQueue::restore_extra(core::ckpt::Loader& l) {
  avg_ = l.f64();
  count_since_mark_ = l.u64();
  rng_state_ = l.u64();
}

std::unique_ptr<Queue> make_queue(const QueueConfig& cfg) {
  switch (cfg.kind) {
    case QueueConfig::Kind::DropTail:
      return std::make_unique<DropTailQueue>(cfg.capacity_packets);
    case QueueConfig::Kind::EcnThreshold:
      return std::make_unique<EcnThresholdQueue>(cfg.capacity_packets, cfg.mark_threshold);
    case QueueConfig::Kind::Red:
      return std::make_unique<RedQueue>(cfg.capacity_packets, cfg.red);
  }
  return nullptr;  // unreachable
}

}  // namespace xmp::net
