#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace xmp::net {

/// Anything that can accept a packet (the receiving end of a link).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(Packet p) = 0;
};

/// Unidirectional point-to-point link: an egress queue, a serializing
/// transmitter of fixed rate, and a propagation delay to the peer sink.
///
/// Store-and-forward: a packet is handed to the sink `serialization +
/// propagation` after transmission starts. The link keeps utilization
/// statistics (busy time, bytes) used for the paper's Figure 11.
class Link final {
 public:
  Link(sim::Scheduler& sched, LinkId id, std::int64_t rate_bps, sim::Time prop_delay,
       std::unique_ptr<Queue> queue, PacketSink& sink);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Enqueue a packet for transmission (dropped if the queue rejects it,
  /// or if the link is administratively down).
  void send(Packet p);

  /// Administratively close / reopen the link (paper Fig.7: "L3 is closed").
  /// Closing flushes the queue; packets already propagating are lost too.
  void set_down(bool down);
  [[nodiscard]] bool is_down() const { return down_; }

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] std::int64_t rate_bps() const { return rate_bps_; }
  [[nodiscard]] sim::Time prop_delay() const { return prop_delay_; }
  [[nodiscard]] const Queue& queue() const { return *queue_; }
  [[nodiscard]] Queue& queue() { return *queue_; }

  /// Total bytes fully transmitted onto the wire.
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// Cumulative time the transmitter was busy.
  [[nodiscard]] sim::Time busy_time() const { return busy_; }

 private:
  void start_transmission();
  void on_transmit_complete();
  void deliver_head();

  sim::Scheduler& sched_;
  LinkId id_;
  std::int64_t rate_bps_;
  sim::Time prop_delay_;
  std::unique_ptr<Queue> queue_;
  PacketSink& sink_;

  /// Packets serialized onto the wire, awaiting delivery at the sink.
  /// Propagation delay is constant, so deliveries are FIFO; each scheduled
  /// delivery event pops exactly one entry, and entries stamped with a
  /// stale epoch (the link went down underneath them) are discarded. This
  /// keeps the per-packet event captures pointer-sized (no heap
  /// allocation in std::function).
  struct InFlight {
    Packet pkt;
    std::uint64_t epoch;
  };
  std::deque<InFlight> in_flight_;

  bool transmitting_ = false;
  bool down_ = false;
  std::uint64_t bytes_sent_ = 0;
  sim::Time busy_ = sim::Time::zero();
  std::uint64_t epoch_ = 0;  ///< invalidates in-flight deliveries on set_down
};

}  // namespace xmp::net
