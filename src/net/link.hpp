#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace xmp::net {

class HandoffChannel;

/// Anything that can accept a packet (the receiving end of a link).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(Packet p) = 0;
};

/// Per-cause drop accounting of one link. Every packet offered to the link
/// ends up in exactly one of {delivered, one of these counters, still
/// queued/in flight}, which the InvariantChecker verifies as a conservation
/// law.
struct LinkDropCounters {
  std::uint64_t queue = 0;       ///< egress queue rejected the packet
  std::uint64_t admin_down = 0;  ///< link administratively closed (incl. flushes)
  std::uint64_t fault = 0;       ///< injected loss process dropped it at entry
  std::uint64_t corrupt = 0;     ///< corrupted in flight, discarded at the sink end

  [[nodiscard]] std::uint64_t total() const { return queue + admin_down + fault + corrupt; }
};

/// Unidirectional point-to-point link: an egress queue, a serializing
/// transmitter of fixed rate, and a propagation delay to the peer sink.
///
/// Store-and-forward: a packet is handed to the sink `serialization +
/// propagation` after transmission starts. The link keeps utilization
/// statistics (busy time, bytes) used for the paper's Figure 11.
class Link final {
 public:
  /// Verdict of a fault hook on one packet offered to the link. The action
  /// is exclusive; the gray-failure effects compose with it (and with each
  /// other) on any packet that is not dropped outright.
  struct FaultVerdict {
    enum class Action : std::uint8_t {
      Pass,     ///< forward normally
      Drop,     ///< lose the packet at link entry (counted as drops().fault)
      Corrupt,  ///< transmit, but discard at the sink end (drops().corrupt)
    };

    Action action = Action::Pass;
    bool duplicate = false;  ///< enqueue a clone right behind the original
    bool overmark = false;   ///< force CE if the packet is ECN-capable
    bool reorder = false;    ///< the delay came from a reorder hold, not inflation
    sim::Time delay = sim::Time::zero();  ///< hold at entry before enqueueing

    constexpr FaultVerdict() = default;
    // NOLINTNEXTLINE(google-explicit-constructor): a bare action is a verdict
    constexpr FaultVerdict(Action a) : action{a} {}
    friend bool operator==(const FaultVerdict&, const FaultVerdict&) = default;
  };
  /// Historical name for the exclusive part of the verdict.
  using FaultAction = FaultVerdict::Action;

  /// Injected per-link loss/corruption/gray-failure process (see
  /// faults::FaultController). A null hook — the default — costs one
  /// predictable branch per send.
  class FaultHook {
   public:
    virtual ~FaultHook() = default;
    [[nodiscard]] virtual FaultVerdict on_send(const Packet& p) = 0;
  };

  /// Notified on every administrative state transition (after the link has
  /// already changed state). route::RouteManager uses this to start its
  /// convergence clock. Listeners must not destroy the link.
  class StateListener {
   public:
    virtual ~StateListener() = default;
    virtual void on_link_state(Link& link, bool down) = 0;
  };

  Link(sim::Scheduler& sched, LinkId id, std::int64_t rate_bps, sim::Time prop_delay,
       std::unique_ptr<Queue> queue, PacketSink& sink);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Enqueue a packet for transmission (dropped if the queue rejects it,
  /// if the link is administratively down, or if the fault hook says so).
  void send(Packet p);

  /// Administratively close / reopen the link (paper Fig.7: "L3 is closed").
  /// Closing flushes the queue; packets already propagating are lost too.
  void set_down(bool down);
  [[nodiscard]] bool is_down() const { return down_; }

  /// Install / remove (nullptr) the fault-injection hook. Not owned.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  [[nodiscard]] FaultHook* fault_hook() const { return fault_hook_; }

  /// Subscribe to administrative state transitions. Not owned; listeners
  /// are expected to live as long as the link (setup-time wiring only).
  void add_state_listener(StateListener* l) { state_listeners_.push_back(l); }

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] std::int64_t rate_bps() const { return rate_bps_; }

  /// Hybrid-engine coupling: fraction of the transmitter's capacity consumed
  /// by fluid-modelled background traffic. Packet serialization slows down by
  /// 1/(1-share), so packet-accurate flows experience the reduced residual
  /// bandwidth without any fluid packet existing. Clamped to [0, 0.95] by the
  /// caller; not checkpointed — the hybrid engine re-applies it after a
  /// restore, exactly as it re-derives it every fluid tick.
  void set_fluid_share(double share) {
    fluid_share_ = share;
    recompute_effective_rate();
  }
  [[nodiscard]] double fluid_share() const { return fluid_share_; }

  /// Gray failure: slow drain. Serialization runs at `factor` x the nominal
  /// rate (factor in (0, 1]; 1.0 restores full capacity). Composes with the
  /// hybrid fluid share; packets already serializing keep their old timing.
  /// Checkpointed — unlike the fluid share, nothing re-derives it on restore.
  void set_degrade(double factor) {
    degrade_ = factor;
    recompute_effective_rate();
  }
  [[nodiscard]] double degrade() const { return degrade_; }
  [[nodiscard]] sim::Time prop_delay() const { return prop_delay_; }
  [[nodiscard]] const Queue& queue() const { return *queue_; }
  [[nodiscard]] Queue& queue() { return *queue_; }
  [[nodiscard]] PacketSink& sink() { return sink_; }
  [[nodiscard]] const PacketSink& sink() const { return sink_; }

  /// Total bytes fully transmitted onto the wire.
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// Cumulative time the transmitter was busy.
  [[nodiscard]] sim::Time busy_time() const { return busy_; }

  // --- conservation accounting (stats::probes, faults::InvariantChecker) ---
  /// Packets ever offered via send().
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  /// Packets handed to the sink (excludes corrupt discards).
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] const LinkDropCounters& drops() const { return drops_; }
  /// In-flight packets that will still reach the sink (stale-epoch entries
  /// were already counted as a drop when the link went down).
  [[nodiscard]] std::size_t live_in_flight() const;
  /// Packets parked in the gray-failure hold buffer, awaiting release.
  [[nodiscard]] std::size_t held() const { return held_.size(); }

  // --- gray-failure impairment accounting ---
  /// Clones materialized by a Duplicate verdict. The conservation law is
  /// offered + duplicated == delivered + drops + queued + in_flight + held.
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  /// Packets held at entry by a Delay or Reorder verdict.
  [[nodiscard]] std::uint64_t delayed() const { return delayed_; }
  /// ECT packets force-marked CE by an EcnOvermark verdict.
  [[nodiscard]] std::uint64_t overmarked() const { return overmarked_; }

  // --- sharded (conservative-sync) boundary mode ---
  /// Make this a shard-boundary link: transmitted packets go to `ch`
  /// instead of the local in-flight FIFO and are delivered on the
  /// destination shard's scheduler after the barrier drain. Wired once at
  /// topology construction (net::Network); never in serial runs.
  void set_remote_handoff(HandoffChannel* ch) { remote_ = ch; }
  [[nodiscard]] bool is_boundary() const { return remote_ != nullptr; }

  /// Park one drained packet for delivery (ShardFabric::drain_all, shards
  /// quiesced).
  void accept_remote_arrival(Packet&& pkt, std::uint64_t epoch) {
    remote_arrivals_.push_back(RemoteArrival{std::move(pkt), epoch});
  }

  /// Deliver the oldest parked arrival; runs on the *destination* shard's
  /// scheduler, so timestamps come from sim::current_scheduler().
  void remote_deliver_head();

  /// Sharded engine: record the id of a remote_deliver_head() event just
  /// scheduled against this link (kept 1:1 FIFO with the parked arrivals
  /// for checkpointing).
  void track_remote_delivery(sim::EventId id) { remote_delivery_events_.push_back(id); }

  /// Checkpoint the link: queue contents, counters, in-flight packets and
  /// the (time, sequence) keys of the pending delivery / transmit-complete
  /// events. On restore the events are re-armed under their original keys,
  /// so dispatch order is unchanged. `remote_sched` is the destination
  /// shard's engine for boundary links (their parked deliveries live
  /// there); null for serial links.
  void save_state(core::ckpt::Saver& s, sim::Scheduler* remote_sched = nullptr) const;
  void restore_state(core::ckpt::Loader& l, sim::Scheduler* remote_sched = nullptr);

 private:
  void start_transmission();
  void on_transmit_complete();
  void complete_tx(std::uint64_t epoch);
  void deliver_head();
  /// Enqueue for transmission after the verdict's entry effects; `dup`
  /// materializes the clone right behind the original.
  void enqueue_for_tx(Packet&& p, bool dup);
  void release_held(std::uint64_t id);
  void recompute_effective_rate() {
    const double residual =
        static_cast<double>(rate_bps_) * (1.0 - fluid_share_) * degrade_;
    effective_rate_bps_ = residual >= 1.0 ? static_cast<std::int64_t>(residual) : 1;
  }

  sim::Scheduler& sched_;
  LinkId id_;
  std::int64_t rate_bps_;
  /// rate_bps_ scaled down by the fluid share and the degrade factor;
  /// equals rate_bps_ outside hybrid/faulted runs so serialization times
  /// are bit-identical to the seed.
  std::int64_t effective_rate_bps_;
  double fluid_share_ = 0.0;
  double degrade_ = 1.0;  ///< slow-drain capacity multiplier (1 = healthy)
  sim::Time prop_delay_;
  std::unique_ptr<Queue> queue_;
  PacketSink& sink_;
  FaultHook* fault_hook_ = nullptr;
  std::vector<StateListener*> state_listeners_;

  /// Packets serialized onto the wire, awaiting delivery at the sink.
  /// Propagation delay is constant, so deliveries are FIFO; each scheduled
  /// delivery event pops exactly one entry, and entries stamped with a
  /// stale epoch (the link went down underneath them) are discarded. This
  /// keeps the per-packet event captures pointer-sized (no heap
  /// allocation in std::function).
  struct InFlight {
    Packet pkt;
    std::uint64_t epoch;
  };
  std::deque<InFlight> in_flight_;

  /// Gray-failure hold buffer: packets parked at link *entry* (before the
  /// egress queue) by a Delay/Reorder verdict. Entries are id-keyed so the
  /// release event captures 16 bytes; release re-enters the normal enqueue
  /// path, which is why held packets never perturb the in-flight FIFO or
  /// the boundary-mode mirrors. set_down() cancels the release events and
  /// accounts the contents, so the deque only ever holds live packets.
  struct Held {
    std::uint64_t id;
    bool duplicate;  ///< clone on release (deferred with the original)
    Packet pkt;
    sim::EventId ev;
  };
  std::deque<Held> held_;
  std::uint64_t next_held_id_ = 0;

  // --- boundary-mode state. Thread ownership is partitioned: the source
  // shard writes offered_/queue_/busy_/bytes_sent_/drops_.{queue,fault}
  // and the two deques below marked "src"; the destination shard writes
  // delivered_ and drops_.corrupt; epoch_/down_/drops_.admin_down change
  // only at barriers with every shard quiesced. Distinct members, so no
  // two threads ever touch the same word. ---
  HandoffChannel* remote_ = nullptr;

  /// src-owned conservation mirror of packets handed to the channel; lets
  /// set_down() count still-propagating cross-shard packets as admin_down
  /// exactly like the serial in_flight_ FIFO. Pruned lazily: an entry is
  /// certainly delivered once deliver_t + pair_min_delay < now, because
  /// the destination clock can lag the source clock by at most one epoch
  /// (= at most the pair's min propagation delay).
  struct RemoteInFlight {
    std::int64_t deliver_t_ns;
    std::uint64_t epoch;
    bool corrupt;  ///< attribution on set_down: corrupt, not admin_down
  };
  std::deque<RemoteInFlight> remote_in_flight_;

  /// dst-consumed FIFO of packets scheduled for delivery at the barrier.
  struct RemoteArrival {
    Packet pkt;
    std::uint64_t epoch;
  };
  std::deque<RemoteArrival> remote_arrivals_;

  // --- checkpoint bookkeeping (never read by the simulation itself) ---
  /// Pending deliver_head events, 1:1 FIFO with in_flight_ (stale-epoch
  /// entries included: their events are still pending and pop both deques).
  std::deque<sim::EventId> delivery_events_;
  /// Pending transmit-complete events by epoch. At most one per epoch, but
  /// stale-epoch events linger until they fire, so this is a (tiny) vector.
  struct TxDone {
    sim::EventId id;
    std::uint64_t epoch;
  };
  std::vector<TxDone> tx_events_;
  /// Pending remote_deliver_head events, 1:1 FIFO with remote_arrivals_
  /// (boundary links; populated via track_remote_delivery).
  std::deque<sim::EventId> remote_delivery_events_;

  bool transmitting_ = false;
  bool down_ = false;
  std::uint64_t bytes_sent_ = 0;
  sim::Time busy_ = sim::Time::zero();
  std::uint64_t epoch_ = 0;  ///< invalidates in-flight deliveries on set_down
  std::uint64_t offered_ = 0;
  std::uint64_t delivered_ = 0;
  LinkDropCounters drops_;
  std::uint64_t duplicated_ = 0;  ///< clones materialized (extra sends)
  std::uint64_t delayed_ = 0;     ///< packets parked in the hold buffer
  std::uint64_t overmarked_ = 0;  ///< forced CE marks applied at entry
};

}  // namespace xmp::net
