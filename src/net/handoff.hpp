#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace xmp::net {

class Link;

/// One cross-shard packet parked between the moment its boundary link put
/// it on the wire (inside the source shard's epoch) and the barrier that
/// schedules its delivery on the destination shard.
struct RemotePacket {
  Link* link = nullptr;
  Packet pkt;
  std::int64_t deliver_t_ns = 0;  ///< absolute arrival time at the sink
  std::uint64_t link_epoch = 0;   ///< link admin epoch at transmission time
};

/// Handoff buffer for one ordered (src_shard, dst_shard) pair. Strictly
/// single-producer: only the source shard's thread pushes, and only the
/// barrier (all shards quiesced) consumes, so no locks or atomics are
/// needed — the epoch barrier itself is the synchronization point.
class HandoffChannel {
 public:
  void push(RemotePacket&& rp) { items_.push_back(std::move(rp)); }

  /// Minimum propagation delay over the boundary links feeding this
  /// channel; recorded once per link at topology-construction time.
  [[nodiscard]] std::int64_t min_delay_ns() const { return min_delay_ns_; }

 private:
  friend class ShardFabric;
  std::vector<RemotePacket> items_;
  std::int64_t min_delay_ns_ = std::numeric_limits<std::int64_t>::max();
};

/// The sharded substrate of one experiment: a private Scheduler per logical
/// shard, the (src, dst) handoff-channel matrix, and the lookahead bound
/// derived from the slowest-coupling pair of shards.
///
/// Logical shards are a property of the *topology* (one per Fat-Tree pod /
/// leaf), never of the worker-thread count, so results cannot depend on how
/// many threads execute the shards.
class ShardFabric {
 public:
  explicit ShardFabric(int n_shards);

  ShardFabric(const ShardFabric&) = delete;
  ShardFabric& operator=(const ShardFabric&) = delete;

  [[nodiscard]] int n_shards() const { return n_; }
  [[nodiscard]] sim::Scheduler& sched(int shard) { return *scheds_.at(static_cast<std::size_t>(shard)); }
  [[nodiscard]] HandoffChannel& channel(int src, int dst) {
    return channels_.at(static_cast<std::size_t>(src * n_ + dst));
  }

  /// Record a boundary link during topology construction: maintains the
  /// per-pair and global minimum propagation delay. A zero cross-shard
  /// delay would make the conservative lookahead zero (epochs could never
  /// advance), so it is rejected with a one-line diagnostic and exit 2.
  void note_cross_link(int src_shard, int dst_shard, sim::Time prop_delay, LinkId id);

  /// Conservative-sync lookahead: the minimum cross-shard propagation
  /// delay. Events a shard executes strictly before `epoch_start +
  /// lookahead()` cannot be affected by any packet another shard sends
  /// during the same epoch.
  [[nodiscard]] sim::Time lookahead() const { return sim::Time::nanoseconds(min_cross_delay_ns_); }
  [[nodiscard]] bool has_cross_links() const {
    return min_cross_delay_ns_ != std::numeric_limits<std::int64_t>::max();
  }

  /// Barrier-time drain: schedule every parked packet's delivery on its
  /// destination shard, in fixed (dst_shard, src_shard, post-order) merge
  /// order. Must only run while all shards are quiesced. Returns the
  /// number of packets handed off.
  std::uint64_t drain_all();

  /// Sum of events dispatched across all shard schedulers.
  [[nodiscard]] std::uint64_t total_dispatched() const;

 private:
  int n_;
  std::vector<std::unique_ptr<sim::Scheduler>> scheds_;
  std::vector<HandoffChannel> channels_;  ///< n*n, row-major [src][dst]
  std::int64_t min_cross_delay_ns_ = std::numeric_limits<std::int64_t>::max();
};

}  // namespace xmp::net
