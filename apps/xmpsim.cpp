// xmpsim — command-line front end to the library.
//
//   xmpsim run    --pattern=random --scheme=xmp --subflows=2 [--k=8]
//                 [--duration=0.5] [--queue=100] [--mark-k=10] [--beta=4]
//                 [--seed=1] [--coexist=dctcp] [--csv=flows.csv]
//                 [--json=summary.json]
//                 [--routing=pinned|ecmp|wcmp|flowlet] [--flowlet-gap=100]
//                 [--reroute-delay=0.001] [--rehome=0]
//                 [--faults="down,link=3,at=0.1; loss,link=5,at=0,p=0.01"]
//                 [--fault-seed=1] [--dead-after=3] [--invariants]
//                 [--drops-csv=drops.csv]
//                 [--trace=timeline.json] [--trace-csv=timeline.csv]
//                 [--trace-filter=cwnd,gain,queue] [--trace-capacity=262144]
//                 [--metrics=metrics.json]
//       Run one Fat-Tree evaluation and print the paper's summary metrics.
//       --routing selects how switches spread over equal-cost up-ports
//       (default pinned = the paper's per-tag deterministic paths; ecmp
//       ignores tags and exhibits collisions); --flowlet-gap is the flowlet
//       idle gap in microseconds, --reroute-delay the failure-convergence
//       delay in seconds. --rehome lets MPTCP move a dead subflow onto a
//       fresh path up to N times per connection instead of killing it.
//       With --faults, the plan's events are injected on the simulation
//       clock (see src/faults/fault_plan.hpp for the grammar); --dead-after
//       defaults to 3 when faults are given (0 = failover disabled
//       otherwise); --invariants runs the runtime invariant probe.
//       --trace writes a Chrome trace-event JSON (open it in Perfetto or
//       chrome://tracing); --metrics dumps the run's counters/histograms.
//       Observation never perturbs the simulation: a traced run produces
//       the same summary, byte for byte, as an untraced one.
//
//   xmpsim fluid  --capacity-gbps=1 --flows=3 [--beta=4] [--rtt-us=300]
//       Closed-form BOS equilibrium on a single bottleneck (paper §2.1).
//
//   xmpsim sweep  --param={mark-k|beta|subflows|queue|seed} --values=a,b,c
//                 [--jobs=N] ...
//       Re-run `run` for each value and tabulate average goodput. Points
//       run concurrently on N worker threads (default: hardware cores);
//       results are identical to a serial sweep, in the order given.
//       --trace/--trace-csv/--metrics apply per job: "trace.json" becomes
//       "trace.0.json", "trace.1.json", ... (one file per sweep point).
//
//   xmpsim topo   [--k=8]
//       Print Fat-Tree dimensions and delay budget for a given k.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "core/xmp.hpp"
#include "model/fluid.hpp"

namespace {

using namespace xmp;

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const std::string prefix = "--" + key + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return fallback;
  }

  /// Bare boolean flag (`--invariants`, no value).
  [[nodiscard]] bool has(const std::string& key) const {
    const std::string flag = "--" + key;
    for (const auto& a : args_) {
      if (a == flag) return true;
    }
    return false;
  }

  [[nodiscard]] double get_d(const std::string& key, double fallback) const {
    const auto v = get(key, "");
    return v.empty() ? fallback : std::atof(v.c_str());
  }

  [[nodiscard]] std::int64_t get_i(const std::string& key, std::int64_t fallback) const {
    const auto v = get(key, "");
    return v.empty() ? fallback : std::atoll(v.c_str());
  }

  [[nodiscard]] std::vector<double> get_list(const std::string& key) const {
    std::vector<double> out;
    std::string v = get(key, "");
    while (!v.empty()) {
      const auto comma = v.find(',');
      out.push_back(std::atof(v.substr(0, comma).c_str()));
      if (comma == std::string::npos) break;
      v = v.substr(comma + 1);
    }
    return out;
  }

 private:
  std::vector<std::string> args_;
};

bool parse_scheme(const std::string& name, int subflows, int beta, workload::SchemeSpec& out) {
  if (name == "tcp") {
    out.kind = workload::SchemeSpec::Kind::Tcp;
  } else if (name == "dctcp") {
    out.kind = workload::SchemeSpec::Kind::Dctcp;
  } else if (name == "xmp") {
    out.kind = workload::SchemeSpec::Kind::Xmp;
  } else if (name == "lia") {
    out.kind = workload::SchemeSpec::Kind::Lia;
  } else if (name == "olia") {
    out.kind = workload::SchemeSpec::Kind::Olia;
  } else {
    return false;
  }
  out.subflows = subflows;
  out.beta = beta;
  return true;
}

core::ExperimentConfig config_from(const Args& args, bool& ok) {
  core::ExperimentConfig cfg;
  ok = true;

  const std::string pattern = args.get("pattern", "random");
  if (pattern == "permutation") {
    cfg.pattern = core::Pattern::Permutation;
  } else if (pattern == "random") {
    cfg.pattern = core::Pattern::Random;
  } else if (pattern == "incast") {
    cfg.pattern = core::Pattern::Incast;
  } else {
    std::fprintf(stderr, "unknown --pattern=%s\n", pattern.c_str());
    ok = false;
  }

  const int subflows = static_cast<int>(args.get_i("subflows", 2));
  const int beta = static_cast<int>(args.get_i("beta", 4));
  if (!parse_scheme(args.get("scheme", "xmp"), subflows, beta, cfg.scheme)) {
    std::fprintf(stderr, "unknown --scheme\n");
    ok = false;
  }
  const std::string coexist = args.get("coexist", "");
  if (!coexist.empty()) {
    workload::SchemeSpec b;
    if (!parse_scheme(coexist, subflows, beta, b)) {
      std::fprintf(stderr, "unknown --coexist\n");
      ok = false;
    }
    cfg.scheme_b = b;
  }

  cfg.fat_tree_k = static_cast<int>(args.get_i("k", 8));
  cfg.duration = sim::Time::seconds(args.get_d("duration", 0.5));
  cfg.queue_capacity = static_cast<std::size_t>(args.get_i("queue", 100));
  cfg.mark_threshold = static_cast<std::size_t>(args.get_i("mark-k", 10));
  cfg.permutation_rounds = static_cast<int>(args.get_i("rounds", 2));
  cfg.seed = static_cast<std::uint64_t>(args.get_i("seed", 1));

  const std::string faults = args.get("faults", "");
  if (!faults.empty()) {
    std::string error;
    if (!faults::FaultPlan::parse(faults, cfg.fault_plan, &error)) {
      std::fprintf(stderr, "bad --faults: %s\n", error.c_str());
      ok = false;
    }
  }
  cfg.fault_seed = static_cast<std::uint64_t>(args.get_i("fault-seed", 1));
  // Subflow failover is on by default only under fault injection, so that
  // fault-free runs stay bit-identical to builds without the fault layer.
  cfg.scheme.dead_after_rtos =
      static_cast<int>(args.get_i("dead-after", cfg.fault_plan.empty() ? 0 : 3));
  if (cfg.scheme_b) cfg.scheme_b->dead_after_rtos = cfg.scheme.dead_after_rtos;
  cfg.scheme.max_rehomes = static_cast<int>(args.get_i("rehome", 0));
  if (cfg.scheme_b) cfg.scheme_b->max_rehomes = cfg.scheme.max_rehomes;

  if (!route::parse_policy(args.get("routing", "pinned"), cfg.routing.kind)) {
    std::fprintf(stderr, "unknown --routing (pinned|ecmp|wcmp|flowlet)\n");
    ok = false;
  }
  cfg.routing.flowlet_gap = sim::Time::microseconds(args.get_i("flowlet-gap", 100));
  cfg.routing.reroute_delay = sim::Time::seconds(args.get_d("reroute-delay", 0.001));
  cfg.check_invariants = args.has("invariants") || !args.get("invariants", "").empty();

  const auto scale = args.get_i("scale", 1);
  cfg.perm_min_bytes *= scale;
  cfg.perm_max_bytes *= scale;
  cfg.rand_min_bytes *= scale;
  cfg.rand_max_bytes *= scale;

  cfg.obs.trace_json = args.get("trace", "");
  cfg.obs.trace_csv = args.get("trace-csv", "");
  cfg.obs.metrics_json = args.get("metrics", "");
  cfg.obs.capacity = static_cast<std::size_t>(args.get_i("trace-capacity", 1 << 18));
  const std::string filter = args.get("trace-filter", "");
  std::string filter_error;
  if (!obs::TimelineTracer::parse_filter(filter, cfg.obs.categories, &filter_error)) {
    std::fprintf(stderr, "bad --trace-filter: %s\n", filter_error.c_str());
    ok = false;
  }
  return cfg;
}

/// Derive a per-job output path for sweeps: "dir/trace.json" -> "dir/trace.3.json".
std::string per_job_path(const std::string& path, std::size_t job) {
  if (path.empty()) return path;
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + std::to_string(job);
  }
  return path.substr(0, dot) + "." + std::to_string(job) + path.substr(dot);
}

void print_summary(const core::ExperimentConfig& cfg, const core::ExperimentResults& res) {
  std::printf("pattern=%s scheme=%s%s%s k=%d sim=%.3fs events=%llu\n",
              core::pattern_name(cfg.pattern), cfg.scheme.name().c_str(),
              cfg.scheme_b ? " vs " : "", cfg.scheme_b ? cfg.scheme_b->name().c_str() : "",
              cfg.fat_tree_k, res.sim_duration.sec(),
              static_cast<unsigned long long>(res.events_dispatched));
  std::printf("large-flow goodput: mean %.1f Mbps over %zu flows\n", res.avg_goodput_mbps(),
              res.goodput.count());
  if (cfg.scheme_b) {
    std::printf("coexisting %s:     mean %.1f Mbps over %zu flows\n",
                cfg.scheme_b->name().c_str(), res.avg_goodput_b_mbps(), res.goodput_b.count());
  }
  for (int c = 2; c >= 0; --c) {
    const auto& d = res.goodput_by_category[c];
    if (d.empty()) continue;
    std::printf("  %-11s p50 %.1f Mbps (n=%zu)\n",
                topo::FatTree::category_name(static_cast<topo::FatTree::Category>(c)),
                d.percentile(50), d.count());
  }
  if (!res.jobs.empty()) {
    std::printf("incast jobs: %zu, avg completion %.1f ms, >300ms %.2f%%\n", res.jobs.size(),
                res.avg_job_completion_ms(), res.job_completion_over_ms(300) * 100);
  }
  for (int l = 0; l < 3; ++l) {
    const auto& d = res.utilization_by_layer[l];
    std::printf("util %-12s mean %.3f  p90 %.3f\n",
                topo::FatTree::layer_name(static_cast<topo::FatTree::Layer>(l)), d.mean(),
                d.percentile(90));
  }
  if (!cfg.fault_plan.empty() || res.drops.total_drops() > 0) {
    std::printf("drops: queue %llu, admin-down %llu, fault %llu, corrupt %llu "
                "(offered %llu, delivered %llu)\n",
                static_cast<unsigned long long>(res.drops.queue),
                static_cast<unsigned long long>(res.drops.admin_down),
                static_cast<unsigned long long>(res.drops.fault),
                static_cast<unsigned long long>(res.drops.corrupt),
                static_cast<unsigned long long>(res.drops.offered),
                static_cast<unsigned long long>(res.drops.delivered));
  }
  std::printf("routing %s: forwarded %llu, unroutable %llu", route::policy_name(cfg.routing.kind),
              static_cast<unsigned long long>(res.switch_forwarded),
              static_cast<unsigned long long>(res.switch_unroutable));
  if (res.route_reroutes > 0) {
    std::printf(", reroutes %llu", static_cast<unsigned long long>(res.route_reroutes));
  }
  if (res.route_collisions > 0) {
    std::printf(", collisions %llu", static_cast<unsigned long long>(res.route_collisions));
  }
  if (res.flowlet_repaths > 0) {
    std::printf(", flowlet repaths %llu", static_cast<unsigned long long>(res.flowlet_repaths));
  }
  if (res.path_rehomes > 0) {
    std::printf(", subflow rehomes %llu", static_cast<unsigned long long>(res.path_rehomes));
  }
  std::printf("\n");
  if (res.aborted_flows > 0) {
    std::printf("aborted flows (all subflows dead): %llu\n",
                static_cast<unsigned long long>(res.aborted_flows));
  }
  if (cfg.check_invariants) {
    std::printf("invariants: %llu checks, %zu violations\n",
                static_cast<unsigned long long>(res.invariant_checks),
                res.invariant_violations.size());
    for (const auto& v : res.invariant_violations) std::printf("  VIOLATION %s\n", v.c_str());
  }
}

int cmd_run(const Args& args) {
  bool ok = true;
  const auto cfg = config_from(args, ok);
  if (!ok) return 2;
  const auto res = core::run_experiment(cfg);
  print_summary(cfg, res);
  const std::string csv = args.get("csv", "");
  if (!csv.empty()) {
    core::export_flows_csv(res, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  const std::string json = args.get("json", "");
  if (!json.empty()) {
    core::export_summary_json(cfg, res, json);
    std::printf("wrote %s\n", json.c_str());
  }
  const std::string drops_csv = args.get("drops-csv", "");
  if (!drops_csv.empty()) {
    core::export_link_drops_csv(res, drops_csv);
    std::printf("wrote %s\n", drops_csv.c_str());
  }
  // Surface invariant violations in the exit code so scripted chaos runs
  // fail loudly instead of silently shipping a broken summary.
  return res.invariant_violations.empty() ? 0 : 3;
}

int cmd_fluid(const Args& args) {
  const double cap_gbps = args.get_d("capacity-gbps", 1.0);
  const int n = static_cast<int>(args.get_i("flows", 3));
  const double beta = args.get_d("beta", 4.0);
  const double rtt_us = args.get_d("rtt-us", 300.0);
  const double cap_sps = cap_gbps * 1e9 / (net::kDataPacketBytes * 8.0);

  std::vector<model::FluidFlow> flows(static_cast<std::size_t>(n),
                                      model::FluidFlow{1.0, beta, rtt_us * 1e-6});
  const auto res = model::solve_single_bottleneck(flows, cap_sps);
  std::printf("BOS equilibrium on %.2f Gbps, %d flows, beta=%.0f, RTT=%.0fus:\n", cap_gbps, n,
              beta, rtt_us);
  std::printf("  marking probability per round p = %.4f\n", res.p);
  std::printf("  per-flow window  w = %.1f segments\n", res.windows.empty() ? 0.0 : res.windows[0]);
  std::printf("  per-flow rate    x = %.1f Mbps\n",
              res.rates.empty() ? 0.0 : res.rates[0] * net::kDataPacketBytes * 8 / 1e6);
  std::printf("  Eq.1 marking threshold K >= BDP/(beta-1) = %.1f packets\n",
              model::min_marking_threshold(cap_sps * rtt_us * 1e-6, beta));
  return 0;
}

int cmd_sweep(const Args& args) {
  const std::string param = args.get("param", "mark-k");
  const auto values = args.get_list("values");
  if (values.empty()) {
    std::fprintf(stderr, "need --values=a,b,c\n");
    return 2;
  }
  // Build the whole grid up front, then fan it across worker threads; the
  // runner returns results in submission order, bit-identical to a serial
  // sweep.
  std::vector<core::ExperimentConfig> grid;
  for (double v : values) {
    bool ok = true;
    auto cfg = config_from(args, ok);
    if (!ok) return 2;
    if (param == "mark-k") {
      cfg.mark_threshold = static_cast<std::size_t>(v);
    } else if (param == "beta") {
      cfg.scheme.beta = static_cast<int>(v);
    } else if (param == "subflows") {
      cfg.scheme.subflows = static_cast<int>(v);
    } else if (param == "queue") {
      cfg.queue_capacity = static_cast<std::size_t>(v);
    } else if (param == "seed") {
      cfg.seed = static_cast<std::uint64_t>(v);
    } else {
      std::fprintf(stderr, "unknown --param=%s\n", param.c_str());
      return 2;
    }
    // Each job writes its own trace/metrics files ("trace.json" ->
    // "trace.<i>.json"); concurrent jobs must never share an output path.
    const std::size_t job = grid.size();
    cfg.obs.trace_json = per_job_path(cfg.obs.trace_json, job);
    cfg.obs.trace_csv = per_job_path(cfg.obs.trace_csv, job);
    cfg.obs.metrics_json = per_job_path(cfg.obs.metrics_json, job);
    grid.push_back(cfg);
  }

  const std::int64_t jobs = args.get_i("jobs", 0);  // <= 0 means "hardware cores"
  const core::ParallelRunner runner{jobs > 0 ? static_cast<unsigned>(jobs) : 0U};
  std::fprintf(stderr, "sweeping %zu points on %u workers\n", grid.size(), runner.workers());
  const auto results = runner.run(grid, [](std::size_t, std::size_t done, std::size_t total) {
    std::fprintf(stderr, "  [%zu/%zu] done\n", done, total);
  });

  std::printf("%-12s %16s %16s\n", param.c_str(), "goodput (Mbps)", "events");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-12g %16.1f %16llu\n", values[i], results[i].avg_goodput_mbps(),
                static_cast<unsigned long long>(results[i].events_dispatched));
  }
  return 0;
}

int cmd_topo(const Args& args) {
  const int k = static_cast<int>(args.get_i("k", 8));
  sim::Scheduler sched;
  net::Network netw{sched};
  topo::FatTree::Config tc;
  tc.k = k;
  topo::FatTree tree{netw, tc};
  std::printf("Fat-Tree k=%d: %d hosts, %zu switches, %d equal-cost inter-pod paths\n", k,
              tree.n_hosts(), netw.switches().size(), tree.inter_pod_paths());
  std::printf("links per layer: rack %zu, aggregation %zu, core %zu (unidirectional)\n",
              tree.links(topo::FatTree::Layer::Rack).size(),
              tree.links(topo::FatTree::Layer::Aggregation).size(),
              tree.links(topo::FatTree::Layer::Core).size());
  const double inner = 4 * tc.rack_delay.us();
  const double pod = 2 * (2 * tc.rack_delay.us() + 2 * tc.agg_delay.us());
  const double inter = 2 * (2 * tc.rack_delay.us() + 2 * tc.agg_delay.us() + 2 * tc.core_delay.us());
  std::printf("base RTTs (no queueing): inner-rack %.0fus, inter-rack %.0fus, inter-pod %.0fus\n",
              inner, pod, inter);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: xmpsim <run|fluid|sweep|topo> [--key=value ...]\n"
               "see the header of apps/xmpsim.cpp for the full flag list\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  Args args{argc, argv};
  if (cmd == "run") return cmd_run(args);
  if (cmd == "fluid") return cmd_fluid(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "topo") return cmd_topo(args);
  usage();
  return 2;
}
