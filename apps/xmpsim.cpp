// xmpsim — command-line front end to the library.
//
//   xmpsim run    --pattern=random --scheme=xmp --subflows=2 [--k=8]
//                 [--workload=FILE.wl] [--load=0.3]
//                 [--duration=0.5] [--queue=100] [--mark-k=10] [--beta=4]
//                 [--seed=1] [--coexist=dctcp] [--csv=flows.csv]
//                 [--json=summary.json]
//                 [--routing=pinned|ecmp|wcmp|flowlet] [--flowlet-gap=100]
//                 [--reroute-delay=0.001] [--rehome=0]
//                 [--faults="down,link=3,at=0.1; loss,link=5,at=0,p=0.01"]
//                 [--fault-seed=1] [--dead-after=3] [--invariants]
//                 [--drops-csv=drops.csv]
//                 [--trace=timeline.json] [--trace-csv=timeline.csv]
//                 [--trace-filter=cwnd,gain,queue] [--trace-capacity=262144]
//                 [--metrics=metrics.json] [--shards=N]
//                 [--checkpoint-every=SIMTIME] [--checkpoint-dir=DIR]
//                 [--restore=FILE] [--fct-csv=FILE]
//                 [--hybrid] [--hybrid-bg=FLOWS[:BYTES]]
//                 [--hybrid-fg=FLOWS[:BYTES]] [--hybrid-promote-bytes=N]
//                 [--hybrid-tick=US]
//       Run one Fat-Tree evaluation and print the paper's summary metrics.
//       --routing selects how switches spread over equal-cost up-ports
//       (default pinned = the paper's per-tag deterministic paths; ecmp
//       ignores tags and exhibits collisions); --flowlet-gap is the flowlet
//       idle gap in microseconds, --reroute-delay the failure-convergence
//       delay in seconds. --rehome lets MPTCP move a dead subflow onto a
//       fresh path up to N times per connection instead of killing it.
//       With --faults, the plan's events are injected on the simulation
//       clock (see src/faults/fault_plan.hpp for the grammar); --dead-after
//       defaults to 3 when faults are given (0 = failover disabled
//       otherwise); --invariants runs the runtime invariant probe.
//       --trace writes a Chrome trace-event JSON (open it in Perfetto or
//       chrome://tracing); --metrics dumps the run's counters/histograms.
//       Observation never perturbs the simulation: a traced run produces
//       the same summary, byte for byte, as an untraced one.
//       --shards=N runs the sharded conservative-sync engine on N worker
//       threads (one logical shard per pod regardless of N, so every N —
//       including 1 — produces identical results). Permutation pattern
//       only; incompatible with --coexist, --routing=flowlet,
//       --invariants and --rehome.
//       --checkpoint-every=T writes a verified snapshot (ckpt_<seq>.bin in
//       --checkpoint-dir, default ".") every T *simulated* seconds at a
//       quiescent point; --restore=FILE resumes a run from a snapshot and
//       produces summary/trace/metrics byte-identical to the uninterrupted
//       run. SIGTERM halts at the next quiescent point, writes a final
//       checkpoint and a partial summary, and exits 143. Checkpointing is
//       incompatible with --coexist, --routing=flowlet and --rehome, and
//       --checkpoint-every with --invariants (see `replay` for that).
//       --workload=FILE replaces --pattern with an empirical workload file
//       (DESIGN.md §13): open-loop Poisson arrivals whose sizes come from a
//       flow-size CDF, plus optional explicit flows; --load=0.X sets the
//       offered load per sender (overriding the file's `load` directive).
//       The run then reports FCT slowdown p50/p95/p99 per flow-size bin
//       (and an "fct" block in --json). Composes with --faults, --routing
//       and checkpointing; incompatible with --coexist and --shards.
//       --fct-csv=FILE writes one row per flow of a --workload run
//       (id,bytes,start_s,finish_s,completed,slowdown; censored flows carry
//       finish_s=-1); in sweeps it becomes one file per job.
//       --hybrid runs the hybrid fluid/packet engine (DESIGN.md §14):
//       --hybrid-bg fluid background aggregates evolve as per-RTT BOS/TraSh
//       ODEs (default 1000, unbounded size unless :BYTES is given) while
//       --hybrid-fg packet-accurate foreground flows (default 4 x 8 MB,
//       restarted on completion) ride the same queues; the two couple
//       through per-queue fluid backlog (ECN marking), residual link
//       capacity, and measured packet drain. --hybrid-promote-bytes=N hands
//       a finite fluid flow to the packet domain for its last N bytes;
//       --hybrid-tick=US sets the fluid step (default 200 us, ~ one RTT).
//       Requires --scheme=xmp; replaces --pattern; composes with
//       checkpointing, --trace and --metrics; incompatible with --shards,
//       --coexist, --workload and --faults. A snapshot from a non-hybrid
//       run never restores into a hybrid one (config fingerprint).
//
//   xmpsim replay --restore=FILE [--trace=...] [--invariants] ...
//       Re-run a snapshot to completion without writing new checkpoints —
//       for replaying a crash-point capture under extra observability
//       (--trace, --trace-csv, --metrics, --invariants). The snapshot's
//       config fingerprint must match the flags given.
//
//   xmpsim verify [--faults=PLAN] [--dir=DIR] [--checkpoint-every=SIMTIME]
//                 ... any scenario flags accepted by `run` ...
//       Differential validation harness (DESIGN.md §15): runs the same
//       scenario four times — serial (--shards=1), --shards=2, a
//       checkpointed reference, and a SIGKILL-mid-run + --restore leg —
//       each in its own sub-directory of DIR (default: a fresh temp dir,
//       removed on success, kept and named on failure). It then requires
//       summary.json and drops.csv to be byte-identical across ALL legs,
//       and trace.csv/metrics.json/out.txt to be byte-identical within
//       each engine-config pair (serial vs shards=2; checkpointed vs
//       kill+restore) — checkpointing legitimately adds CkptWrite trace
//       events and harness.ckpt.* meters, so those files are only compared
//       between legs with identical checkpoint flags. Exit 0 = all legs
//       agree, 1 = divergence (the differing file and legs are named),
//       2 = bad flags. The harness owns --shards, --checkpoint-dir,
//       --restore and every output path; --checkpoint-every only sets the
//       kill leg's snapshot cadence (default 0.005). Scenario flags are
//       validated up front with the same rules as `run` under --shards.
//
//   xmpsim fluid  --capacity-gbps=1 --flows=3 [--beta=4] [--rtt-us=300]
//       Closed-form BOS equilibrium on a single bottleneck (paper §2.1).
//
//   xmpsim sweep  --param={mark-k|beta|subflows|queue|seed|load} --values=a,b,c
//                 [--schemes=xmp,dctcp,lia,olia] [--jobs=N] ...
//       Re-run `run` for each value and tabulate average goodput. Points
//       run concurrently on N worker threads (default: hardware cores);
//       results are identical to a serial sweep, in the order given.
//       --param=load sweeps the offered load of a --workload=FILE run (an
//       FCT study); --schemes crosses the value list with a scheme list
//       (grid = schemes x values) and campaigns emit a ready-to-plot
//       fct_summary.json next to sweep_summary.json.
//       --trace/--trace-csv/--metrics apply per job: "trace.json" becomes
//       "trace.0.json", "trace.1.json", ... (one file per sweep point).
//
//       With --out=DIR the sweep becomes a resilient *campaign*: every job
//       runs crash-isolated in its own process, a watchdog kills attempts
//       that exceed --job-timeout=SECONDS, and failures are retried up to
//       --retries=N times with exponential backoff (--backoff=SECONDS base,
//       deterministic per-job jitter). DIR accumulates job_<i>.json result
//       files, a sweep_manifest.json updated atomically after every state
//       change, the aggregate sweep_summary.json, and the harness's own
//       metrics/trace (harness_metrics.json, harness_trace.json).
//
//       xmpsim sweep --resume=DIR picks a campaign back up: jobs already
//       succeeded are not re-run, and the final summary is byte-identical
//       to an uninterrupted campaign. The original command line is stored
//       in the manifest, so --resume=DIR alone suffices; flags given next
//       to --resume override the stored ones (e.g. a new --job-timeout).
//       Jobs that exhaust their retries are listed under "incomplete" in
//       the summary; the campaign still salvages every survivor and exits
//       0 unless --strict is given (then exit 1).
//
//   xmpsim topo   [--k=8]
//       Print Fat-Tree dimensions and delay budget for a given k.
//
// All flag values are validated up front: a malformed or out-of-range value
// prints one line naming the flag, the offending value and the accepted
// range, then exits 2 (never an assert).

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/export.hpp"
#include "core/job_manifest.hpp"
#include "core/orchestrator.hpp"
#include "core/xmp.hpp"
#include "model/fluid.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "trace/writers.hpp"

namespace {

using namespace xmp;

/// Flipped by the SIGTERM handler; polled by the engine at quiescent
/// points. Installed only when checkpointing is configured, so plain runs
/// keep the default (terminating) disposition.
std::atomic<bool> g_stop{false};

extern "C" void on_sigterm(int) { g_stop.store(true); }

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) args_.emplace_back(argv[i]);
  }
  /// Build from a raw flag vector (used to replay a manifest's stored argv).
  explicit Args(std::vector<std::string> raw) : args_{std::move(raw)} {}

  /// The flags verbatim, in order. `get` returns the *first* match, so
  /// prepending new flags to a stored vector overrides the stored values.
  [[nodiscard]] const std::vector<std::string>& raw() const { return args_; }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const std::string prefix = "--" + key + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return fallback;
  }

  /// Bare boolean flag (`--invariants`, no value).
  [[nodiscard]] bool has(const std::string& key) const {
    const std::string flag = "--" + key;
    for (const auto& a : args_) {
      if (a == flag) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> args_;
};

/// Strict numeric parsing: the whole token must be consumed, no overflow.
bool parse_number(const std::string& v, double& out) {
  if (v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool parse_integer(const std::string& v, std::int64_t& out) {
  if (v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(v.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

/// Validated flag accessors. A missing flag yields `fallback` untouched; a
/// present-but-malformed or out-of-range value prints one line naming the
/// flag, the value and the accepted range, and clears `ok` (callers exit 2).
double flag_d(const Args& args, const char* key, double fallback, double lo, double hi, bool& ok) {
  const std::string v = args.get(key, "");
  if (v.empty()) return fallback;
  double out = 0;
  if (!parse_number(v, out) || out < lo || out > hi) {
    std::fprintf(stderr, "xmpsim: bad --%s=%s (expected a number in [%g, %g])\n", key, v.c_str(),
                 lo, hi);
    ok = false;
    return fallback;
  }
  return out;
}

std::int64_t flag_i(const Args& args, const char* key, std::int64_t fallback, std::int64_t lo,
                    std::int64_t hi, bool& ok) {
  const std::string v = args.get(key, "");
  if (v.empty()) return fallback;
  std::int64_t out = 0;
  if (!parse_integer(v, out) || out < lo || out > hi) {
    std::fprintf(stderr, "xmpsim: bad --%s=%s (expected an integer in [%lld, %lld])\n", key,
                 v.c_str(), static_cast<long long>(lo), static_cast<long long>(hi));
    ok = false;
    return fallback;
  }
  return out;
}

std::vector<double> flag_list(const Args& args, const char* key, bool& ok) {
  std::vector<double> out;
  std::string v = args.get(key, "");
  while (!v.empty()) {
    const auto comma = v.find(',');
    const std::string token = v.substr(0, comma);
    double num = 0;
    if (!parse_number(token, num)) {
      std::fprintf(stderr, "xmpsim: bad --%s entry '%s' (expected a number)\n", key,
                   token.c_str());
      ok = false;
      return {};
    }
    out.push_back(num);
    if (comma == std::string::npos) break;
    v = v.substr(comma + 1);
  }
  return out;
}

bool parse_scheme(const std::string& name, int subflows, int beta, workload::SchemeSpec& out) {
  if (name == "tcp") {
    out.kind = workload::SchemeSpec::Kind::Tcp;
  } else if (name == "dctcp") {
    out.kind = workload::SchemeSpec::Kind::Dctcp;
  } else if (name == "xmp") {
    out.kind = workload::SchemeSpec::Kind::Xmp;
  } else if (name == "lia") {
    out.kind = workload::SchemeSpec::Kind::Lia;
  } else if (name == "olia") {
    out.kind = workload::SchemeSpec::Kind::Olia;
  } else {
    return false;
  }
  out.subflows = subflows;
  out.beta = beta;
  return true;
}

core::ExperimentConfig config_from(const Args& args, bool& ok) {
  core::ExperimentConfig cfg;
  ok = true;

  const std::string pattern = args.get("pattern", "random");
  if (pattern == "permutation") {
    cfg.pattern = core::Pattern::Permutation;
  } else if (pattern == "random") {
    cfg.pattern = core::Pattern::Random;
  } else if (pattern == "incast") {
    cfg.pattern = core::Pattern::Incast;
  } else {
    std::fprintf(stderr, "xmpsim: bad --pattern=%s (expected permutation|random|incast)\n",
                 pattern.c_str());
    ok = false;
  }

  const std::string workload_file = args.get("workload", "");
  cfg.offered_load = flag_d(args, "load", 0.0, 0.0001, 1.2, ok);
  if (!workload_file.empty()) {
    if (!args.get("pattern", "").empty()) {
      std::fprintf(stderr, "xmpsim: --workload replaces --pattern (drop --pattern=%s)\n",
                   pattern.c_str());
      ok = false;
    }
    auto spec = std::make_shared<workload::WorkloadSpec>();
    std::string werr;
    if (!workload::WorkloadSpec::parse_file(workload_file, *spec, &werr)) {
      std::fprintf(stderr, "xmpsim: bad --workload: %s\n", werr.c_str());
      ok = false;
    } else {
      cfg.pattern = core::Pattern::Workload;
      cfg.workload = std::move(spec);
    }
  } else if (!args.get("load", "").empty()) {
    std::fprintf(stderr, "xmpsim: --load needs --workload=FILE\n");
    ok = false;
  }

  const int subflows = static_cast<int>(flag_i(args, "subflows", 2, 1, 64, ok));
  const int beta = static_cast<int>(flag_i(args, "beta", 4, 1, 1000, ok));
  const std::string scheme = args.get("scheme", "xmp");
  if (!parse_scheme(scheme, subflows, beta, cfg.scheme)) {
    std::fprintf(stderr, "xmpsim: bad --scheme=%s (expected tcp|dctcp|xmp|lia|olia)\n",
                 scheme.c_str());
    ok = false;
  }
  const std::string coexist = args.get("coexist", "");
  if (!coexist.empty()) {
    workload::SchemeSpec b;
    if (!parse_scheme(coexist, subflows, beta, b)) {
      std::fprintf(stderr, "xmpsim: bad --coexist=%s (expected tcp|dctcp|xmp|lia|olia)\n",
                   coexist.c_str());
      ok = false;
    }
    cfg.scheme_b = b;
  }

  cfg.fat_tree_k = static_cast<int>(flag_i(args, "k", 8, 2, 64, ok));
  if (cfg.fat_tree_k % 2 != 0) {
    std::fprintf(stderr, "xmpsim: bad --k=%d (expected an even integer in [2, 64])\n",
                 cfg.fat_tree_k);
    ok = false;
    cfg.fat_tree_k = 8;
  }
  cfg.duration = sim::Time::seconds(flag_d(args, "duration", 0.5, 1e-6, 3600, ok));
  cfg.queue_capacity = static_cast<std::size_t>(flag_i(args, "queue", 100, 1, 1000000, ok));
  cfg.mark_threshold = static_cast<std::size_t>(flag_i(args, "mark-k", 10, 1, 1000000, ok));
  cfg.permutation_rounds = static_cast<int>(flag_i(args, "rounds", 2, 1, 1000, ok));
  cfg.seed = static_cast<std::uint64_t>(flag_i(args, "seed", 1, 0, INT64_MAX, ok));

  const std::string faults = args.get("faults", "");
  if (!faults.empty()) {
    std::string error;
    if (!faults::FaultPlan::parse(faults, cfg.fault_plan, &error)) {
      std::fprintf(stderr, "xmpsim: bad --faults: %s\n", error.c_str());
      ok = false;
    }
  }
  cfg.fault_seed = static_cast<std::uint64_t>(flag_i(args, "fault-seed", 1, 0, INT64_MAX, ok));
  // Subflow failover is on by default only under fault injection, so that
  // fault-free runs stay bit-identical to builds without the fault layer.
  cfg.scheme.dead_after_rtos =
      static_cast<int>(flag_i(args, "dead-after", cfg.fault_plan.empty() ? 0 : 3, 0, 1000, ok));
  if (cfg.scheme_b) cfg.scheme_b->dead_after_rtos = cfg.scheme.dead_after_rtos;
  cfg.scheme.max_rehomes = static_cast<int>(flag_i(args, "rehome", 0, 0, 1000, ok));
  if (cfg.scheme_b) cfg.scheme_b->max_rehomes = cfg.scheme.max_rehomes;

  const std::string routing = args.get("routing", "pinned");
  if (!route::parse_policy(routing, cfg.routing.kind)) {
    std::fprintf(stderr, "xmpsim: bad --routing=%s (expected pinned|ecmp|wcmp|flowlet)\n",
                 routing.c_str());
    ok = false;
  }
  cfg.routing.flowlet_gap =
      sim::Time::microseconds(flag_i(args, "flowlet-gap", 100, 1, 1000000000, ok));
  cfg.routing.reroute_delay = sim::Time::seconds(flag_d(args, "reroute-delay", 0.001, 0, 60, ok));
  cfg.check_invariants = args.has("invariants") || !args.get("invariants", "").empty();

  const auto scale = flag_i(args, "scale", 1, 1, 1000000, ok);
  cfg.perm_min_bytes *= scale;
  cfg.perm_max_bytes *= scale;
  cfg.rand_min_bytes *= scale;
  cfg.rand_max_bytes *= scale;

  // Workload-file cross-checks (the file itself already parsed clean).
  if (cfg.workload) {
    const int hosts = cfg.fat_tree_k * cfg.fat_tree_k * cfg.fat_tree_k / 4;
    if (cfg.workload->nodes > hosts) {
      std::fprintf(stderr, "xmpsim: workload needs %d hosts but --k=%d provides %d\n",
                   cfg.workload->nodes, cfg.fat_tree_k, hosts);
      ok = false;
    }
    if (cfg.workload->span == workload::WorkloadSpan::InterRack &&
        cfg.workload->nodes <= cfg.fat_tree_k / 2) {
      std::fprintf(stderr,
                   "xmpsim: workload span inter-rack needs nodes in >= 2 racks "
                   "(%d nodes fit in one rack of %d hosts)\n",
                   cfg.workload->nodes, cfg.fat_tree_k / 2);
      ok = false;
    }
    if (cfg.workload->has_cdf && cfg.offered_load <= 0.0 && cfg.workload->default_load <= 0.0) {
      std::fprintf(stderr,
                   "xmpsim: workload has a cdf but no offered load "
                   "(give --load=0.X or a 'load' directive)\n");
      ok = false;
    }
    if (!cfg.workload->has_cdf && cfg.offered_load > 0.0) {
      std::fprintf(stderr, "xmpsim: --load has no effect on a trace-only workload\n");
      ok = false;
    }
    if (cfg.scheme_b) {
      std::fprintf(stderr, "xmpsim: --workload is incompatible with --coexist\n");
      ok = false;
    }
  }

  cfg.shards = static_cast<int>(flag_i(args, "shards", 0, 0, 4096, ok));
  if (cfg.shards > 0) {
    // The sharded engine supports a precise subset of the serial feature
    // set (DESIGN.md §11); everything else is an up-front one-line reject.
    if (cfg.pattern != core::Pattern::Permutation) {
      std::fprintf(stderr, "xmpsim: --shards requires --pattern=permutation (got %s)\n",
                   core::pattern_name(cfg.pattern));
      ok = false;
    }
    if (cfg.scheme_b) {
      std::fprintf(stderr, "xmpsim: --shards is incompatible with --coexist\n");
      ok = false;
    }
    if (cfg.routing.kind == route::PolicyKind::Flowlet) {
      std::fprintf(stderr, "xmpsim: --shards is incompatible with --routing=flowlet\n");
      ok = false;
    }
    if (cfg.check_invariants) {
      std::fprintf(stderr, "xmpsim: --shards is incompatible with --invariants\n");
      ok = false;
    }
    if (cfg.scheme.max_rehomes > 0) {
      std::fprintf(stderr, "xmpsim: --shards is incompatible with --rehome\n");
      ok = false;
    }
  }

  // --- hybrid fluid/packet engine (DESIGN.md §14) ---
  cfg.hybrid.enabled = args.has("hybrid");
  {
    // FLOWS[:BYTES] spec: "--hybrid-bg=100000" or "--hybrid-bg=1000:64000000".
    auto parse_count_spec = [&](const char* key, int& count, std::int64_t& bytes) {
      const std::string v = args.get(key, "");
      if (v.empty()) return;
      const auto colon = v.find(':');
      std::int64_t n = 0;
      std::int64_t b = bytes;
      bool good = parse_integer(v.substr(0, colon), n) && n >= 1 && n <= 2'000'000;
      if (good && colon != std::string::npos) {
        good = parse_integer(v.substr(colon + 1), b) && b >= 1;
      }
      if (!good) {
        std::fprintf(stderr,
                     "xmpsim: bad --%s=%s (expected FLOWS[:BYTES], flows in [1, 2000000], "
                     "bytes >= 1)\n",
                     key, v.c_str());
        ok = false;
        return;
      }
      count = static_cast<int>(n);
      bytes = b;
    };
    const bool sub_flags =
        !args.get("hybrid-bg", "").empty() || !args.get("hybrid-fg", "").empty() ||
        !args.get("hybrid-promote-bytes", "").empty() || !args.get("hybrid-tick", "").empty();
    if (sub_flags && !cfg.hybrid.enabled) {
      std::fprintf(stderr, "xmpsim: --hybrid-* flags need --hybrid\n");
      ok = false;
    }
    if (cfg.hybrid.enabled) {
      parse_count_spec("hybrid-bg", cfg.hybrid.bg_flows, cfg.hybrid.bg_bytes);
      parse_count_spec("hybrid-fg", cfg.hybrid.fg_flows, cfg.hybrid.fg_bytes);
      cfg.hybrid.promote_bytes =
          flag_i(args, "hybrid-promote-bytes", 0, 0, std::int64_t{1} << 40, ok);
      cfg.hybrid.tick = sim::Time::microseconds(flag_i(args, "hybrid-tick", 200, 10, 1000000, ok));
      // The fluid ODEs implement the paper's §2 XMP dynamics; everything the
      // hybrid engine can't represent is an up-front one-line reject.
      if (cfg.scheme.kind != workload::SchemeSpec::Kind::Xmp) {
        std::fprintf(stderr, "xmpsim: --hybrid requires --scheme=xmp (got %s)\n", scheme.c_str());
        ok = false;
      }
      if (!args.get("pattern", "").empty()) {
        std::fprintf(stderr, "xmpsim: --hybrid replaces --pattern (drop --pattern=%s)\n",
                     pattern.c_str());
        ok = false;
      }
      if (cfg.workload) {
        std::fprintf(stderr, "xmpsim: --hybrid is incompatible with --workload\n");
        ok = false;
      }
      if (cfg.scheme_b) {
        std::fprintf(stderr, "xmpsim: --hybrid is incompatible with --coexist\n");
        ok = false;
      }
      if (!cfg.fault_plan.empty()) {
        std::fprintf(stderr, "xmpsim: --hybrid is incompatible with --faults\n");
        ok = false;
      }
      if (cfg.shards > 0) {
        std::fprintf(stderr, "xmpsim: --hybrid is incompatible with --shards (serial engine only)\n");
        ok = false;
      }
      // In hybrid mode the pattern enum is inert (the engine replaces the
      // generators); Permutation keeps name/fingerprint output stable.
      cfg.pattern = core::Pattern::Permutation;
    }
  }

  cfg.obs.trace_json = args.get("trace", "");
  cfg.obs.trace_csv = args.get("trace-csv", "");
  cfg.obs.metrics_json = args.get("metrics", "");
  cfg.obs.fct_csv = args.get("fct-csv", "");
  if (!cfg.obs.fct_csv.empty() && cfg.pattern != core::Pattern::Workload) {
    std::fprintf(stderr, "xmpsim: --fct-csv needs --workload=FILE\n");
    ok = false;
  }
  cfg.obs.capacity =
      static_cast<std::size_t>(flag_i(args, "trace-capacity", 1 << 18, 1, 1 << 26, ok));
  const std::string filter = args.get("trace-filter", "");
  std::string filter_error;
  if (!obs::TimelineTracer::parse_filter(filter, cfg.obs.categories, &filter_error)) {
    std::fprintf(stderr, "xmpsim: bad --trace-filter: %s\n", filter_error.c_str());
    ok = false;
  }

  cfg.checkpoint.every =
      sim::Time::seconds(flag_d(args, "checkpoint-every", 0.0, 1e-6, 3600, ok));
  cfg.checkpoint.dir = args.get("checkpoint-dir", ".");
  if (cfg.checkpoint.dir.empty()) {
    std::fprintf(stderr, "xmpsim: bad --checkpoint-dir= (expected a directory path)\n");
    ok = false;
    cfg.checkpoint.dir = ".";
  }
  cfg.checkpoint.restore_path = args.get("restore", "");
  if (cfg.checkpoint.every > sim::Time::zero() || !cfg.checkpoint.restore_path.empty()) {
    // Checkpoint hooks cover a precise subset of the feature set; everything
    // outside it is an up-front one-line reject, never a corrupt snapshot.
    if (cfg.scheme_b) {
      std::fprintf(stderr, "xmpsim: checkpointing is incompatible with --coexist\n");
      ok = false;
    }
    if (cfg.routing.kind == route::PolicyKind::Flowlet) {
      std::fprintf(stderr, "xmpsim: checkpointing is incompatible with --routing=flowlet\n");
      ok = false;
    }
    if (cfg.scheme.max_rehomes > 0) {
      std::fprintf(stderr, "xmpsim: checkpointing is incompatible with --rehome\n");
      ok = false;
    }
  }
  if (cfg.check_invariants && cfg.checkpoint.every > sim::Time::zero()) {
    std::fprintf(stderr,
                 "xmpsim: --invariants is incompatible with --checkpoint-every "
                 "(use 'xmpsim replay --restore=FILE --invariants' instead)\n");
    ok = false;
  }
  return cfg;
}

/// Derive a per-job output path for sweeps: "dir/trace.json" -> "dir/trace.3.json".
std::string per_job_path(const std::string& path, std::size_t job) {
  if (path.empty()) return path;
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + std::to_string(job);
  }
  return path.substr(0, dot) + "." + std::to_string(job) + path.substr(dot);
}

void print_summary(const core::ExperimentConfig& cfg, const core::ExperimentResults& res) {
  std::printf("pattern=%s scheme=%s%s%s k=%d sim=%.3fs events=%llu\n",
              core::pattern_name(cfg.pattern), cfg.scheme.name().c_str(),
              cfg.scheme_b ? " vs " : "", cfg.scheme_b ? cfg.scheme_b->name().c_str() : "",
              cfg.fat_tree_k, res.sim_duration.sec(),
              static_cast<unsigned long long>(res.events_dispatched));
  std::printf("large-flow goodput: mean %.1f Mbps over %zu flows\n", res.avg_goodput_mbps(),
              res.goodput.count());
  if (cfg.scheme_b) {
    std::printf("coexisting %s:     mean %.1f Mbps over %zu flows\n",
                cfg.scheme_b->name().c_str(), res.avg_goodput_b_mbps(), res.goodput_b.count());
  }
  for (int c = 2; c >= 0; --c) {
    const auto& d = res.goodput_by_category[c];
    if (d.empty()) continue;
    std::printf("  %-11s p50 %.1f Mbps (n=%zu)\n",
                topo::FatTree::category_name(static_cast<topo::FatTree::Category>(c)),
                d.percentile(50), d.count());
  }
  if (!res.jobs.empty()) {
    std::printf("incast jobs: %zu, avg completion %.1f ms, >300ms %.2f%%\n", res.jobs.size(),
                res.avg_job_completion_ms(), res.job_completion_over_ms(300) * 100);
  }
  if (res.hybrid.enabled) {
    std::printf("hybrid: %d fluid bg flows (%d still fluid at horizon), %d packet fg flows\n",
                res.hybrid.bg_flows, res.hybrid.active_fluid, res.hybrid.fg_flows);
    std::printf("  fluid ticks %llu, throughput %.1f Mbps, mean mark p %.4f, "
                "promotions %llu, fluid completions %llu\n",
                static_cast<unsigned long long>(res.hybrid.ticks),
                res.hybrid.fluid_throughput_mbps, res.hybrid.mean_mark_p,
                static_cast<unsigned long long>(res.hybrid.promotions),
                static_cast<unsigned long long>(res.hybrid.fluid_completions));
  }
  if (res.fct.enabled()) {
    std::printf("fct slowdown (load %.2f, %.0f flows/s offered): %llu completed, %llu censored\n",
                res.fct.offered_load, res.fct.arrival_rate,
                static_cast<unsigned long long>(res.fct.completed),
                static_cast<unsigned long long>(res.fct.censored));
    auto fct_row = [](const char* name, const stats::Distribution& d) {
      if (d.count() == 0) return;
      std::printf("  %-9s n=%-6zu p50 %6.2f  p95 %7.2f  p99 %7.2f\n", name, d.count(),
                  d.percentile(50), d.percentile(95), d.percentile(99));
    };
    fct_row("all", res.fct.slowdown_all);
    for (int b = 0; b < core::ExperimentResults::FctStats::kBins; ++b) {
      fct_row(core::ExperimentResults::FctStats::bin_name(b), res.fct.slowdown_by_bin[b]);
    }
  }
  for (int l = 0; l < 3; ++l) {
    const auto& d = res.utilization_by_layer[l];
    std::printf("util %-12s mean %.3f  p90 %.3f\n",
                topo::FatTree::layer_name(static_cast<topo::FatTree::Layer>(l)), d.mean(),
                d.percentile(90));
  }
  if (!cfg.fault_plan.empty() || res.drops.total_drops() > 0) {
    std::printf("drops: queue %llu, admin-down %llu, fault %llu, corrupt %llu "
                "(offered %llu, delivered %llu)\n",
                static_cast<unsigned long long>(res.drops.queue),
                static_cast<unsigned long long>(res.drops.admin_down),
                static_cast<unsigned long long>(res.drops.fault),
                static_cast<unsigned long long>(res.drops.corrupt),
                static_cast<unsigned long long>(res.drops.offered),
                static_cast<unsigned long long>(res.drops.delivered));
  }
  const std::uint64_t impaired =
      res.drops.duplicated + res.drops.delayed + res.drops.overmarked;
  if (!cfg.fault_plan.empty() || impaired > 0) {
    std::printf("impairments: duplicated %llu, delayed %llu, overmarked %llu\n",
                static_cast<unsigned long long>(res.drops.duplicated),
                static_cast<unsigned long long>(res.drops.delayed),
                static_cast<unsigned long long>(res.drops.overmarked));
  }
  std::printf("routing %s: forwarded %llu, unroutable %llu", route::policy_name(cfg.routing.kind),
              static_cast<unsigned long long>(res.switch_forwarded),
              static_cast<unsigned long long>(res.switch_unroutable));
  if (res.route_reroutes > 0) {
    std::printf(", reroutes %llu", static_cast<unsigned long long>(res.route_reroutes));
  }
  if (res.route_collisions > 0) {
    std::printf(", collisions %llu", static_cast<unsigned long long>(res.route_collisions));
  }
  if (res.flowlet_repaths > 0) {
    std::printf(", flowlet repaths %llu", static_cast<unsigned long long>(res.flowlet_repaths));
  }
  if (res.path_rehomes > 0) {
    std::printf(", subflow rehomes %llu", static_cast<unsigned long long>(res.path_rehomes));
  }
  std::printf("\n");
  if (res.sharded) {
    std::printf("sharded: %d logical shards, lookahead %.1f us, %llu epochs, %llu barriers, "
                "%llu handoff pkts, %llu micro-steps, %llu replays\n",
                res.shard.logical_shards, res.shard.lookahead_us,
                static_cast<unsigned long long>(res.shard.epochs),
                static_cast<unsigned long long>(res.shard.barriers),
                static_cast<unsigned long long>(res.shard.handoff_packets),
                static_cast<unsigned long long>(res.shard.micro_steps),
                static_cast<unsigned long long>(res.shard.replays));
  }
  // Lineage-cumulative totals: a resumed run inherits its ancestors'
  // counts, so this line is byte-identical to an uninterrupted run's.
  if (res.ckpt.written > 0) {
    std::printf("checkpoints: %llu written, %llu bytes, last %s\n",
                static_cast<unsigned long long>(res.ckpt.written),
                static_cast<unsigned long long>(res.ckpt.bytes), res.ckpt.last_path.c_str());
  }
  if (res.aborted_flows > 0) {
    std::printf("aborted flows (all subflows dead): %llu\n",
                static_cast<unsigned long long>(res.aborted_flows));
  }
  if (cfg.check_invariants) {
    std::printf("invariants: %llu checks, %zu violations\n",
                static_cast<unsigned long long>(res.invariant_checks),
                res.invariant_violations.size());
    for (const auto& v : res.invariant_violations) std::printf("  VIOLATION %s\n", v.c_str());
  }
}

int cmd_run_impl(const Args& args, bool replay_mode) {
  bool ok = true;
  auto cfg = config_from(args, ok);
  if (replay_mode) {
    if (cfg.checkpoint.restore_path.empty()) {
      std::fprintf(stderr, "xmpsim: replay needs --restore=FILE\n");
      ok = false;
    }
    if (cfg.checkpoint.every > sim::Time::zero()) {
      std::fprintf(stderr,
                   "xmpsim: replay never writes checkpoints (drop --checkpoint-every)\n");
      ok = false;
    }
  }
  if (!ok) return 2;

  if (!cfg.checkpoint.restore_path.empty()) {
    // Probe before building the world: a truncated, bit-flipped or
    // mismatched snapshot is a one-line exit 2, not a deep engine error.
    core::ckpt::Header h;
    std::string err;
    if (!core::ckpt::probe_file(cfg.checkpoint.restore_path, core::ckpt::config_fingerprint(cfg),
                                h, &err)) {
      std::fprintf(stderr, "xmpsim: restore failed: %s\n", err.c_str());
      return 2;
    }
    std::fprintf(stderr, "resuming from %s (seq %llu, t=%.6fs)\n",
                 cfg.checkpoint.restore_path.c_str(), static_cast<unsigned long long>(h.seq),
                 sim::Time::nanoseconds(h.t_ns).sec());
  }
  if (!replay_mode && cfg.checkpoint.every > sim::Time::zero()) {
    struct sigaction sa = {};
    sa.sa_handler = on_sigterm;
    ::sigaction(SIGTERM, &sa, nullptr);
    cfg.checkpoint.stop_requested = &g_stop;
  }

  const auto res = core::run_experiment(cfg);
  print_summary(cfg, res);
  const std::string csv = args.get("csv", "");
  if (!csv.empty()) {
    core::export_flows_csv(res, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  const std::string json = args.get("json", "");
  if (!json.empty()) {
    core::export_summary_json(cfg, res, json);
    std::printf("wrote %s\n", json.c_str());
  }
  const std::string drops_csv = args.get("drops-csv", "");
  if (!drops_csv.empty()) {
    core::export_link_drops_csv(res, drops_csv);
    std::printf("wrote %s\n", drops_csv.c_str());
  }
  if (res.ckpt.interrupted) {
    // The partial summary above covers [0, halt); 143 = "terminated by
    // SIGTERM" so wrappers distinguish an interrupted run from a finished
    // one. The final checkpoint is the resume point.
    std::fprintf(stderr, "xmpsim: interrupted at t=%.6fs; resume with --restore=%s\n",
                 res.sim_duration.sec(), res.ckpt.last_path.c_str());
    return 143;
  }
  // Surface invariant violations in the exit code so scripted chaos runs
  // fail loudly instead of silently shipping a broken summary.
  return res.invariant_violations.empty() ? 0 : 3;
}

int cmd_run(const Args& args) { return cmd_run_impl(args, /*replay_mode=*/false); }
int cmd_replay(const Args& args) { return cmd_run_impl(args, /*replay_mode=*/true); }

// --- verify: differential validation harness (DESIGN.md §15) ---------------

/// Newest on-disk snapshot (highest seq) in `dir`, by filename only — the
/// restore path re-validates header, CRC and fingerprint. Empty if none.
std::string newest_snapshot(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::uint64_t best_seq = 0;
  std::string best;
  for (const auto& entry : fs::directory_iterator{dir, ec}) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 9 || name.compare(0, 5, "ckpt_") != 0 ||
        name.compare(name.size() - 4, 4, ".bin") != 0)
      continue;
    const std::string digits = name.substr(5, name.size() - 9);
    if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) continue;
    const std::uint64_t seq = std::stoull(digits);
    if (best.empty() || seq > best_seq) {
      best_seq = seq;
      best = name;
    }
  }
  return best;
}

/// Fork a child that runs `xmpsim run <flags>` from inside `dir`, stdout
/// to out.txt and stderr to err.txt — each leg executes with relative
/// output paths so the stdout summaries are comparable byte for byte, and
/// resume notices on stderr never pollute the compared stream.
pid_t spawn_leg(const std::string& dir, const std::vector<std::string>& flags) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (::chdir(dir.c_str()) != 0) std::_Exit(127);
  if (std::freopen("out.txt", "w", stdout) == nullptr) std::_Exit(127);
  if (std::freopen("err.txt", "w", stderr) == nullptr) std::_Exit(127);
  std::_Exit(cmd_run(Args{flags}));
}

int wait_leg(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

bool read_all(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

int cmd_verify(const Args& args) {
  namespace fs = std::filesystem;
  bool ok = true;

  // Flags the harness owns end to end: a user-supplied value would make
  // the legs diverge by construction, so each is a one-line reject.
  static constexpr const char* kOwned[] = {"shards", "checkpoint-dir", "restore",  "csv", "json",
                                           "trace",  "trace-csv",      "metrics",  "drops-csv",
                                           "fct-csv"};
  for (const char* key : kOwned) {
    if (!args.get(key, "").empty()) {
      std::fprintf(stderr, "xmpsim: verify drives --%s itself (drop it)\n", key);
      ok = false;
    }
  }
  if (args.has("invariants")) {
    std::fprintf(stderr, "xmpsim: verify legs run under --shards; --invariants is serial-only "
                         "(use `run --invariants` directly)\n");
    ok = false;
  }
  if (args.has("hybrid")) {
    std::fprintf(stderr, "xmpsim: --hybrid is serial-engine-only; verify needs --shards legs\n");
    ok = false;
  }
  const std::string every = args.get("checkpoint-every", "0.005");
  if (!ok) return 2;

  // Scenario flags (verify's own removed), shared by every leg.
  std::vector<std::string> scenario;
  for (const auto& a : args.raw()) {
    if (a.rfind("--dir=", 0) == 0 || a.rfind("--checkpoint-every=", 0) == 0) continue;
    scenario.push_back(a);
  }
  // Validate once up front so a malformed scenario is a clean exit 2 on
  // *this* process's stderr, before any leg forks (legs log to err.txt).
  {
    std::vector<std::string> probe = scenario;
    probe.emplace_back("--shards=1");
    bool cok = true;
    (void)config_from(Args{probe}, cok);
    if (!cok) return 2;
  }

  std::string root = args.get("dir", "");
  bool ephemeral = false;
  if (root.empty()) {
    std::string tmpl = "/tmp";
    if (const char* t = std::getenv("TMPDIR"); t != nullptr && *t != '\0') tmpl = t;
    tmpl += "/xmpverify.XXXXXX";
    std::vector<char> buf{tmpl.begin(), tmpl.end()};
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      std::fprintf(stderr, "xmpsim: verify: mkdtemp(%s): %s\n", tmpl.c_str(),
                   std::strerror(errno));
      return 2;
    }
    root = buf.data();
    ephemeral = true;
  } else {
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec) {
      std::fprintf(stderr, "xmpsim: verify: cannot create --dir=%s: %s\n", root.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }

  auto leg_dir = [&](const char* name) { return root + "/" + name; };
  const std::vector<std::string> outputs = {"--json=summary.json", "--trace-csv=trace.csv",
                                            "--metrics=metrics.json", "--drops-csv=drops.csv"};
  auto make_flags = [&](std::vector<std::string> extra) {
    extra.insert(extra.end(), outputs.begin(), outputs.end());
    extra.insert(extra.end(), scenario.begin(), scenario.end());
    return extra;
  };
  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "xmpsim: verify FAIL: %s (legs kept in %s)\n", msg.c_str(), root.c_str());
    return 1;
  };

  const std::string ckpt_every = "--checkpoint-every=" + every;
  const struct {
    const char* name;
    std::vector<std::string> extra;
  } straight[] = {
      {"serial", {"--shards=1"}},
      {"shards2", {"--shards=2"}},
      {"ckpt", {"--shards=1", ckpt_every, "--checkpoint-dir=."}},
  };
  for (const auto& leg : straight) {
    const std::string dir = leg_dir(leg.name);
    std::error_code ec;
    fs::create_directories(dir, ec);
    std::printf("verify: leg %-7s %s\n", leg.name, leg.extra.front().c_str());
    const pid_t pid = spawn_leg(dir, make_flags(leg.extra));
    if (pid < 0) return fail("fork failed");
    const int rc = wait_leg(pid);
    if (rc != 0) {
      return fail("leg " + std::string{leg.name} + " exited " + std::to_string(rc) + " (see " +
                  dir + "/err.txt)");
    }
  }

  // Kill leg: same flags as the checkpointed reference, SIGKILLed as soon
  // as the first snapshot is visible (atomic rename: any ckpt_*.bin on
  // disk is complete), then resumed from the newest one.
  {
    const std::string dir = leg_dir("kill");
    std::error_code ec;
    fs::create_directories(dir, ec);
    std::printf("verify: leg kill    --shards=1 + SIGKILL mid-run + --restore\n");
    const std::vector<std::string> base = {"--shards=1", ckpt_every, "--checkpoint-dir=."};
    const pid_t pid = spawn_leg(dir, make_flags(base));
    if (pid < 0) return fail("fork failed");
    for (int i = 0; i < 400; ++i) {
      if (!newest_snapshot(dir).empty()) break;
      if (::kill(pid, 0) != 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ::kill(pid, SIGKILL);
    const int rc = wait_leg(pid);
    const std::string snap = newest_snapshot(dir);
    if (snap.empty()) {
      return fail("kill leg wrote no snapshot — raise --duration or lower --checkpoint-every");
    }
    // rc == 0 means the run beat the signal; the resume below still
    // re-runs the tail from the last snapshot, which must reproduce the
    // reference bytes either way.
    if (rc != 0 && rc != 137) {
      return fail("kill leg exited " + std::to_string(rc) + " before the signal (see " + dir +
                  "/err.txt)");
    }
    std::vector<std::string> resume = base;
    resume.push_back("--restore=" + snap);
    const pid_t rpid = spawn_leg(dir, make_flags(resume));
    if (rpid < 0) return fail("fork failed");
    const int rrc = wait_leg(rpid);
    if (rrc != 0) {
      return fail("restore leg exited " + std::to_string(rrc) + " (see " + dir + "/err.txt)");
    }
  }

  // Byte-compare. summary.json and drops.csv must agree across ALL legs;
  // trace.csv/metrics.json/out.txt only within engine-config pairs,
  // because checkpointing legitimately adds CkptWrite timeline events,
  // harness.ckpt.* meters and a "checkpoints:" stdout line.
  auto compare = [&](const char* a, const char* b, const char* file) -> std::string {
    std::string ca;
    std::string cb;
    if (!read_all(leg_dir(a) + "/" + file, ca)) return std::string{a} + "/" + file + " unreadable";
    if (!read_all(leg_dir(b) + "/" + file, cb)) return std::string{b} + "/" + file + " unreadable";
    if (ca != cb) return std::string{file} + " differs between legs " + a + " and " + b;
    return {};
  };
  const struct {
    const char* a;
    const char* b;
    const char* file;
  } checks[] = {
      // Worker-count invariance: --shards=2 never changes one byte.
      {"serial", "shards2", "summary.json"},
      {"serial", "shards2", "drops.csv"},
      {"serial", "shards2", "trace.csv"},
      {"serial", "shards2", "metrics.json"},
      {"serial", "shards2", "out.txt"},
      // Checkpointing observes without perturbing.
      {"serial", "ckpt", "summary.json"},
      {"serial", "ckpt", "drops.csv"},
      // Crash + restore replays the exact trajectory.
      {"ckpt", "kill", "summary.json"},
      {"ckpt", "kill", "drops.csv"},
      {"ckpt", "kill", "trace.csv"},
      {"ckpt", "kill", "metrics.json"},
      {"ckpt", "kill", "out.txt"},
  };
  for (const auto& c : checks) {
    const std::string err = compare(c.a, c.b, c.file);
    if (!err.empty()) return fail(err);
  }

  std::printf("verify: PASS — serial, shards=2, checkpointed and kill+restore legs agree "
              "byte for byte\n");
  if (ephemeral) {
    std::error_code ec;
    fs::remove_all(root, ec);
  } else {
    std::printf("verify: legs kept in %s\n", root.c_str());
  }
  return 0;
}

int cmd_fluid(const Args& args) {
  bool ok = true;
  const double cap_gbps = flag_d(args, "capacity-gbps", 1.0, 0.001, 10000, ok);
  const int n = static_cast<int>(flag_i(args, "flows", 3, 1, 1000000, ok));
  const double beta = flag_d(args, "beta", 4.0, 1, 1000, ok);
  const double rtt_us = flag_d(args, "rtt-us", 300.0, 0.1, 10000000, ok);
  if (!ok) return 2;
  const double cap_sps = cap_gbps * 1e9 / (net::kDataPacketBytes * 8.0);

  std::vector<model::FluidFlow> flows(static_cast<std::size_t>(n),
                                      model::FluidFlow{1.0, beta, rtt_us * 1e-6});
  const auto res = model::solve_single_bottleneck(flows, cap_sps);
  std::printf("BOS equilibrium on %.2f Gbps, %d flows, beta=%.0f, RTT=%.0fus:\n", cap_gbps, n,
              beta, rtt_us);
  std::printf("  marking probability per round p = %.4f\n", res.p);
  std::printf("  per-flow window  w = %.1f segments\n", res.windows.empty() ? 0.0 : res.windows[0]);
  std::printf("  per-flow rate    x = %.1f Mbps\n",
              res.rates.empty() ? 0.0 : res.rates[0] * net::kDataPacketBytes * 8 / 1e6);
  std::printf("  Eq.1 marking threshold K >= BDP/(beta-1) = %.1f packets\n",
              model::min_marking_threshold(cap_sps * rtt_us * 1e-6, beta));
  return 0;
}

/// One parsed sweep request: the grid plus the metadata the manifest and
/// summary need. With --schemes the grid is schemes x values (scheme-major)
/// and `values`/`labels` are expanded to one entry per grid point.
struct SweepSpec {
  std::string param;
  std::vector<double> values;        ///< swept value per grid point
  std::vector<std::string> labels;   ///< scheme per grid point ("" = --scheme)
  std::vector<core::ExperimentConfig> grid;
  bool schemes_swept = false;
};

bool build_sweep_grid(const Args& args, SweepSpec& spec) {
  bool ok = true;
  spec.param = args.get("param", "mark-k");
  const std::vector<double> base_values = flag_list(args, "values", ok);
  if (!ok) return false;
  if (!args.get("restore", "").empty()) {
    // Per-job restore decisions belong to the campaign orchestrator (it
    // probes each job's checkpoint directory on retry).
    std::fprintf(stderr, "xmpsim: --restore applies to 'run'/'replay', not 'sweep'\n");
    return false;
  }
  if (base_values.empty()) {
    std::fprintf(stderr, "xmpsim: sweep needs --values=a,b,c\n");
    return false;
  }

  // Optional scheme cross product: --schemes=xmp,dctcp,lia,olia multiplies
  // the grid (scheme-major order), which is how a full load-vs-FCT study
  // becomes one resumable campaign.
  std::vector<std::string> schemes;
  {
    std::string v = args.get("schemes", "");
    while (!v.empty()) {
      const auto comma = v.find(',');
      const std::string token = v.substr(0, comma);
      workload::SchemeSpec probe;
      if (!parse_scheme(token, 1, 1, probe)) {
        std::fprintf(stderr,
                     "xmpsim: bad --schemes entry '%s' (expected tcp|dctcp|xmp|lia|olia)\n",
                     token.c_str());
        return false;
      }
      schemes.push_back(token);
      if (comma == std::string::npos) break;
      v = v.substr(comma + 1);
    }
  }
  spec.schemes_swept = !schemes.empty();
  if (schemes.empty()) schemes.emplace_back();  // sentinel: keep --scheme as given

  // Build the whole grid up front, then fan it across workers; results come
  // back in submission order, bit-identical to a serial sweep.
  for (const std::string& sch : schemes) {
    for (double v : base_values) {
      auto cfg = config_from(args, ok);
      if (!ok) return false;
      if (spec.param == "mark-k" || spec.param == "queue" || spec.param == "subflows" ||
          spec.param == "beta") {
        if (v < 1) {
          std::fprintf(stderr, "xmpsim: bad --values entry %g for --param=%s (expected >= 1)\n",
                       v, spec.param.c_str());
          return false;
        }
      } else if (spec.param == "seed") {
        if (v < 0) {
          std::fprintf(stderr, "xmpsim: bad --values entry %g for --param=seed (expected >= 0)\n",
                       v);
          return false;
        }
      } else if (spec.param == "load") {
        if (!cfg.workload) {
          std::fprintf(stderr, "xmpsim: --param=load needs --workload=FILE\n");
          return false;
        }
        if (!cfg.workload->has_cdf) {
          std::fprintf(stderr, "xmpsim: --param=load needs a workload with a 'cdf' directive\n");
          return false;
        }
        if (v <= 0 || v > 1.2) {
          std::fprintf(stderr,
                       "xmpsim: bad --values entry %g for --param=load (expected in (0, 1.2])\n",
                       v);
          return false;
        }
      } else {
        std::fprintf(stderr,
                     "xmpsim: bad --param=%s (expected mark-k|beta|subflows|queue|seed|load)\n",
                     spec.param.c_str());
        return false;
      }
      if (spec.param == "mark-k") {
        cfg.mark_threshold = static_cast<std::size_t>(v);
      } else if (spec.param == "beta") {
        cfg.scheme.beta = static_cast<int>(v);
      } else if (spec.param == "subflows") {
        cfg.scheme.subflows = static_cast<int>(v);
      } else if (spec.param == "queue") {
        cfg.queue_capacity = static_cast<std::size_t>(v);
      } else if (spec.param == "load") {
        cfg.offered_load = v;
      } else {
        cfg.seed = static_cast<std::uint64_t>(v);
      }
      if (!sch.empty()) {
        // Swap the scheme kind, keeping every other knob (--subflows,
        // --beta, --dead-after, --rehome) exactly as config_from set it.
        workload::SchemeSpec s2 = cfg.scheme;
        parse_scheme(sch, s2.subflows, s2.beta, s2);
        cfg.scheme = s2;
      }
      // Each job writes its own trace/metrics files ("trace.json" ->
      // "trace.<i>.json"); concurrent jobs must never share an output path.
      const std::size_t job = spec.grid.size();
      cfg.obs.trace_json = per_job_path(cfg.obs.trace_json, job);
      cfg.obs.trace_csv = per_job_path(cfg.obs.trace_csv, job);
      cfg.obs.metrics_json = per_job_path(cfg.obs.metrics_json, job);
      cfg.obs.fct_csv = per_job_path(cfg.obs.fct_csv, job);
      spec.values.push_back(v);
      spec.labels.push_back(sch);
      spec.grid.push_back(cfg);
    }
  }
  return true;
}

/// Aggregate campaign summary. Built ONLY from the salvaged per-job result
/// files (via CampaignOutcome), never from in-memory run state, and carries
/// no timing/attempt data — so an interrupted-and-resumed campaign writes a
/// summary byte-identical to an uninterrupted one.
void write_sweep_summary(const std::string& dir, const SweepSpec& spec,
                         const core::CampaignOutcome& outcome) {
  trace::JsonWriter json{dir + "/sweep_summary.json"};
  json.begin_object();
  json.kv("param", spec.param);
  json.kv("jobs", static_cast<std::uint64_t>(spec.grid.size()));
  json.kv("completed",
          static_cast<std::uint64_t>(spec.grid.size() - outcome.incomplete.size()));
  json.key("incomplete");
  json.begin_array();
  for (const std::size_t i : outcome.incomplete) json.value(static_cast<std::uint64_t>(i));
  json.end_array();
  json.key("table");
  json.begin_array();
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    if (!outcome.results[i]) continue;
    const core::JobResult& r = *outcome.results[i];
    json.begin_object();
    json.kv("index", static_cast<std::uint64_t>(i));
    json.kv("value", spec.values[i]);
    json.kv("goodput_mbps", r.goodput_mbps);
    json.kv("events", r.events);
    json.kv("flows", r.flows);
    json.kv("completed_flows", r.completed_flows);
    json.kv("aborted_flows", r.aborted_flows);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

/// Ready-to-plot load-vs-FCT table (`fct_summary.json`). Same discipline as
/// write_sweep_summary: built ONLY from the salvaged job_<i>.json files, so
/// a SIGKILLed-and-resumed campaign emits a byte-identical file.
void write_fct_summary(const std::string& dir, const SweepSpec& spec,
                       const core::CampaignOutcome& outcome) {
  trace::JsonWriter json{dir + "/fct_summary.json"};
  json.begin_object();
  json.kv("param", spec.param);
  json.key("table");
  json.begin_array();
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    if (!outcome.results[i] || !outcome.results[i]->has_fct) continue;
    const core::JobResult& r = *outcome.results[i];
    json.begin_object();
    json.kv("index", static_cast<std::uint64_t>(i));
    json.kv("value", spec.values[i]);
    json.kv("scheme", spec.labels[i].empty() ? spec.grid[i].scheme.name() : spec.labels[i]);
    json.kv("offered_load", r.fct_load);
    json.kv("completed", r.fct_completed);
    json.kv("censored", r.fct_censored);
    auto quantiles = [&](const char* name, const core::JobResult::FctQuantiles& q) {
      json.key(name);
      json.begin_object();
      json.kv("count", q.count);
      json.kv("mean", q.mean);
      json.kv("p50", q.p50);
      json.kv("p95", q.p95);
      json.kv("p99", q.p99);
      json.end_object();
    };
    quantiles("all", r.fct_all);
    json.key("bins");
    json.begin_object();
    for (int b = 0; b < core::ExperimentResults::FctStats::kBins; ++b) {
      quantiles(core::ExperimentResults::FctStats::bin_name(b), r.fct_bins[b]);
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

/// Crash-isolated, resumable sweep (`--out=DIR` / `--resume=DIR`).
int cmd_sweep_campaign(const Args& cli, const std::string& dir, bool resume) {
  core::JobManifest manifest;
  Args args = cli;
  if (resume) {
    std::string err;
    if (!core::JobManifest::load(dir, manifest, &err)) {
      std::fprintf(stderr, "xmpsim: cannot resume --resume=%s: %s\n", dir.c_str(), err.c_str());
      return 2;
    }
    // Effective flags = today's command line first (overrides win, because
    // Args::get returns the first match), then the campaign's stored argv.
    std::vector<std::string> merged = cli.raw();
    merged.insert(merged.end(), manifest.argv.begin(), manifest.argv.end());
    args = Args{merged};
  }

  SweepSpec spec;
  if (!build_sweep_grid(args, spec)) return 2;

  if (resume) {
    // The grid rebuilt from the merged flags must be the campaign's grid;
    // anything else would silently mix results from different experiments.
    bool same = manifest.param == spec.param && manifest.jobs.size() == spec.grid.size();
    for (std::size_t i = 0; same && i < manifest.jobs.size(); ++i) {
      same = manifest.jobs[i].value == spec.values[i];
    }
    if (!same) {
      std::fprintf(stderr,
                   "xmpsim: --resume=%s grid mismatch (manifest sweeps %s over %zu values); "
                   "re-run without conflicting --param/--values\n",
                   dir.c_str(), manifest.param.c_str(), manifest.jobs.size());
      return 2;
    }
  } else {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "xmpsim: cannot create --out=%s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
    manifest.param = spec.param;
    manifest.argv = cli.raw();
    manifest.jobs.resize(spec.grid.size());
    for (std::size_t i = 0; i < spec.grid.size(); ++i) {
      manifest.jobs[i].index = i;
      manifest.jobs[i].value = spec.values[i];
    }
  }

  bool ok = true;
  core::OrchestratorConfig ocfg;
  ocfg.campaign_dir = dir;
  ocfg.workers = static_cast<unsigned>(flag_i(args, "jobs", 0, 1, 4096, ok));
  ocfg.job_timeout_s = flag_d(args, "job-timeout", 0.0, 0, 86400, ok);
  ocfg.retries = static_cast<int>(flag_i(args, "retries", 2, 0, 100, ok));
  ocfg.backoff_base_s = flag_d(args, "backoff", 0.5, 0, 3600, ok);
  ocfg.strict = args.has("strict");
  if (!ok) return 2;

  obs::MetricsRegistry metrics;
  obs::TimelineTracer::Config tcfg;
  tcfg.capacity = 1u << 16;
  tcfg.categories = obs::cat::kHarness;
  obs::TimelineTracer tracer{tcfg};
  ocfg.metrics = &metrics;
  ocfg.tracer = &tracer;

  core::Orchestrator orch{ocfg};
  std::fprintf(stderr, "%s campaign in %s: %zu points, timeout=%gs, retries=%d\n",
               resume ? "resuming" : "starting", dir.c_str(), spec.grid.size(),
               ocfg.job_timeout_s, ocfg.retries);
  const core::CampaignOutcome outcome = orch.run(spec.grid, manifest);

  bool any_fct = false;
  for (const auto& r : outcome.results) {
    if (r && r->has_fct) any_fct = true;
  }
  // Extra columns only when the feature that produces them is in play, so
  // classic sweeps keep their exact historical stdout format.
  std::printf("%-12s", spec.param.c_str());
  if (spec.schemes_swept) std::printf(" %-8s", "scheme");
  std::printf(" %16s %16s", "goodput (Mbps)", "events");
  if (any_fct) std::printf(" %10s %10s", "fct p50", "fct p99");
  std::printf("\n");
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    std::printf("%-12g", spec.values[i]);
    if (spec.schemes_swept) std::printf(" %-8s", spec.labels[i].c_str());
    if (outcome.results[i]) {
      const core::JobResult& r = *outcome.results[i];
      std::printf(" %16.1f %16llu", r.goodput_mbps, static_cast<unsigned long long>(r.events));
      if (any_fct) {
        if (r.has_fct && r.fct_all.count > 0) {
          std::printf(" %10.2f %10.2f", r.fct_all.p50, r.fct_all.p99);
        } else {
          std::printf(" %10s %10s", "-", "-");
        }
      }
      std::printf("\n");
    } else {
      std::printf(" %16s %16s", "-", "-");
      if (any_fct) std::printf(" %10s %10s", "-", "-");
      std::printf("  (%s after %d attempts)\n", outcome.jobs[i].last_error.c_str(),
                  outcome.jobs[i].attempts);
    }
  }

  write_sweep_summary(dir, spec, outcome);
  if (any_fct) write_fct_summary(dir, spec, outcome);
  metrics.dump_to_file(dir + "/harness_metrics.json");
  tracer.export_chrome_json(dir + "/harness_trace.json");

  if (!outcome.complete()) {
    std::fprintf(stderr, "xmpsim: %zu of %zu jobs incomplete after retries%s\n",
                 outcome.incomplete.size(), spec.grid.size(),
                 ocfg.strict ? "" : " (salvaged the rest; --strict to fail)");
    if (ocfg.strict) return 1;
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  const std::string resume_dir = args.get("resume", "");
  if (!resume_dir.empty()) return cmd_sweep_campaign(args, resume_dir, true);
  const std::string out_dir = args.get("out", "");
  if (!out_dir.empty()) return cmd_sweep_campaign(args, out_dir, false);

  // Fast path: trusted in-process sweep on a thread pool.
  SweepSpec spec;
  if (!build_sweep_grid(args, spec)) return 2;
  if (!spec.grid.empty() && spec.grid[0].checkpoint.every > sim::Time::zero()) {
    std::fprintf(stderr,
                 "xmpsim: --checkpoint-every in a sweep needs --out=DIR (per-job checkpoint "
                 "directories live in the campaign dir)\n");
    return 2;
  }

  bool ok = true;
  const std::int64_t jobs = flag_i(args, "jobs", 0, 1, 4096, ok);  // absent = hardware cores
  if (!ok) return 2;
  const core::ParallelRunner runner{jobs > 0 ? static_cast<unsigned>(jobs) : 0U};
  std::fprintf(stderr, "sweeping %zu points on %u workers\n", spec.grid.size(), runner.workers());
  const auto results =
      runner.run(spec.grid, [](std::size_t, std::size_t done, std::size_t total) {
        std::fprintf(stderr, "  [%zu/%zu] done\n", done, total);
      });

  bool any_fct = false;
  for (const auto& r : results) {
    if (r.fct.enabled()) any_fct = true;
  }
  std::printf("%-12s", spec.param.c_str());
  if (spec.schemes_swept) std::printf(" %-8s", "scheme");
  std::printf(" %16s %16s", "goodput (Mbps)", "events");
  if (any_fct) std::printf(" %10s %10s", "fct p50", "fct p99");
  std::printf("\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-12g", spec.values[i]);
    if (spec.schemes_swept) std::printf(" %-8s", spec.labels[i].c_str());
    std::printf(" %16.1f %16llu", results[i].avg_goodput_mbps(),
                static_cast<unsigned long long>(results[i].events_dispatched));
    if (any_fct) {
      if (results[i].fct.slowdown_all.count() > 0) {
        std::printf(" %10.2f %10.2f", results[i].fct.slowdown_all.percentile(50),
                    results[i].fct.slowdown_all.percentile(99));
      } else {
        std::printf(" %10s %10s", "-", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_topo(const Args& args) {
  bool ok = true;
  const int k = static_cast<int>(flag_i(args, "k", 8, 2, 64, ok));
  if (ok && k % 2 != 0) {
    std::fprintf(stderr, "xmpsim: bad --k=%d (expected an even integer in [2, 64])\n", k);
    ok = false;
  }
  if (!ok) return 2;
  sim::Scheduler sched;
  net::Network netw{sched};
  topo::FatTree::Config tc;
  tc.k = k;
  topo::FatTree tree{netw, tc};
  std::printf("Fat-Tree k=%d: %d hosts, %zu switches, %d equal-cost inter-pod paths\n", k,
              tree.n_hosts(), netw.switches().size(), tree.inter_pod_paths());
  std::printf("links per layer: rack %zu, aggregation %zu, core %zu (unidirectional)\n",
              tree.links(topo::FatTree::Layer::Rack).size(),
              tree.links(topo::FatTree::Layer::Aggregation).size(),
              tree.links(topo::FatTree::Layer::Core).size());
  const double inner = 4 * tc.rack_delay.us();
  const double pod = 2 * (2 * tc.rack_delay.us() + 2 * tc.agg_delay.us());
  const double inter = 2 * (2 * tc.rack_delay.us() + 2 * tc.agg_delay.us() + 2 * tc.core_delay.us());
  std::printf("base RTTs (no queueing): inner-rack %.0fus, inter-rack %.0fus, inter-pod %.0fus\n",
              inner, pod, inter);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: xmpsim <run|replay|verify|fluid|sweep|topo> [--key=value ...]\n"
               "see the header of apps/xmpsim.cpp for the full flag list\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  Args args{argc, argv};
  if (cmd == "run") return cmd_run(args);
  if (cmd == "replay") return cmd_replay(args);
  if (cmd == "verify") return cmd_verify(args);
  if (cmd == "fluid") return cmd_fluid(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "topo") return cmd_topo(args);
  usage();
  return 2;
}
