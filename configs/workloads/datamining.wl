# Open-loop datamining workload for a k=4 fat-tree (16 hosts): heavier
# elephant tail than websearch, inter-rack destinations only (the mice
# that matter for slowdown are the ones crossing the fabric).
nodes 16
cdf ../cdfs/datamining.cdf
load 0.2
span inter-rack
mice-threshold 100000
