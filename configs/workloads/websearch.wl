# Open-loop websearch workload for a k=4 fat-tree (16 hosts).
# Poisson arrivals at the CLI-supplied --load (or the default below),
# flow sizes from the websearch CDF, any-to-any destinations.
nodes 16
cdf ../cdfs/websearch.cdf
load 0.3
span any
mice-threshold 100000
