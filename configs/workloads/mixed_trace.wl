# Scenario-as-data example: background websearch Poisson traffic plus a
# deterministic burst of four cross-pod elephants at t=10ms — the kind of
# reproducible contention scenario that used to require code changes.
nodes 16
cdf ../cdfs/websearch.cdf
load 0.1
span any
mice-threshold 100000
# flow SRC DST BYTES START_S
flow 0 12 8000000 0.010
flow 1 13 8000000 0.010
flow 2 14 8000000 0.010
flow 3 15 8000000 0.010
