# Datamining-style flow-size CDF (after the VL2 data-mining workload).
# ~80% of flows under 10 KB but >95% of bytes in multi-MB elephants;
# much heavier tail than websearch. Format: <size_bytes> <cum_prob>.
100       0
300       0.20
500       0.30
1000      0.50
2000      0.60
10000     0.70
100000    0.80
1000000   0.90
10000000  0.96
100000000 0.99
1000000000 1
