# Websearch-style flow-size CDF (after the DCTCP web-search workload).
# Format: <size_bytes> <cumulative_probability>, non-decreasing in both
# columns, last probability exactly 1. Mostly mice under 100 KB with a
# heavy elephant tail to 30 MB; mean ~= 1.6 MB.
1000     0
6000     0.15
13000    0.20
19000    0.30
33000    0.40
53000    0.53
133000   0.60
667000   0.70
1333000  0.80
4000000  0.90
10000000 0.97
30000000 1
