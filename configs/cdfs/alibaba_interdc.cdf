# Alibaba-style inter-datacenter mix: bulk replication and batched RPC
# fan-out between sites — few mice, most mass in 1-100 MB transfers.
# Format: <size_bytes> <cum_prob>.
10000     0
50000     0.05
200000    0.15
1000000   0.35
5000000   0.55
20000000  0.75
100000000 0.92
500000000 1
