file(REMOVE_RECURSE
  "libxmp_topo.a"
)
