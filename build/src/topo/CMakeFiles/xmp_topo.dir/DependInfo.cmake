
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/fattree.cpp" "src/topo/CMakeFiles/xmp_topo.dir/fattree.cpp.o" "gcc" "src/topo/CMakeFiles/xmp_topo.dir/fattree.cpp.o.d"
  "/root/repo/src/topo/leafspine.cpp" "src/topo/CMakeFiles/xmp_topo.dir/leafspine.cpp.o" "gcc" "src/topo/CMakeFiles/xmp_topo.dir/leafspine.cpp.o.d"
  "/root/repo/src/topo/pinned.cpp" "src/topo/CMakeFiles/xmp_topo.dir/pinned.cpp.o" "gcc" "src/topo/CMakeFiles/xmp_topo.dir/pinned.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/xmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
