file(REMOVE_RECURSE
  "CMakeFiles/xmp_topo.dir/fattree.cpp.o"
  "CMakeFiles/xmp_topo.dir/fattree.cpp.o.d"
  "CMakeFiles/xmp_topo.dir/leafspine.cpp.o"
  "CMakeFiles/xmp_topo.dir/leafspine.cpp.o.d"
  "CMakeFiles/xmp_topo.dir/pinned.cpp.o"
  "CMakeFiles/xmp_topo.dir/pinned.cpp.o.d"
  "libxmp_topo.a"
  "libxmp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
