# Empty compiler generated dependencies file for xmp_topo.
# This may be replaced when dependencies are built.
