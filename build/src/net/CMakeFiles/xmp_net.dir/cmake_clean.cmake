file(REMOVE_RECURSE
  "CMakeFiles/xmp_net.dir/link.cpp.o"
  "CMakeFiles/xmp_net.dir/link.cpp.o.d"
  "CMakeFiles/xmp_net.dir/network.cpp.o"
  "CMakeFiles/xmp_net.dir/network.cpp.o.d"
  "CMakeFiles/xmp_net.dir/node.cpp.o"
  "CMakeFiles/xmp_net.dir/node.cpp.o.d"
  "CMakeFiles/xmp_net.dir/queue.cpp.o"
  "CMakeFiles/xmp_net.dir/queue.cpp.o.d"
  "libxmp_net.a"
  "libxmp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
