file(REMOVE_RECURSE
  "libxmp_net.a"
)
