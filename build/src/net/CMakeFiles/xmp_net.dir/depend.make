# Empty dependencies file for xmp_net.
# This may be replaced when dependencies are built.
