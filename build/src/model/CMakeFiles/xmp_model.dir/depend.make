# Empty dependencies file for xmp_model.
# This may be replaced when dependencies are built.
