# Empty compiler generated dependencies file for xmp_model.
# This may be replaced when dependencies are built.
