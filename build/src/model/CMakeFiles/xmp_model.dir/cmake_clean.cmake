file(REMOVE_RECURSE
  "CMakeFiles/xmp_model.dir/fluid.cpp.o"
  "CMakeFiles/xmp_model.dir/fluid.cpp.o.d"
  "libxmp_model.a"
  "libxmp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
