file(REMOVE_RECURSE
  "libxmp_model.a"
)
