file(REMOVE_RECURSE
  "CMakeFiles/xmp_transport.dir/cc/bos.cpp.o"
  "CMakeFiles/xmp_transport.dir/cc/bos.cpp.o.d"
  "CMakeFiles/xmp_transport.dir/cc/d2tcp.cpp.o"
  "CMakeFiles/xmp_transport.dir/cc/d2tcp.cpp.o.d"
  "CMakeFiles/xmp_transport.dir/cc/dctcp.cpp.o"
  "CMakeFiles/xmp_transport.dir/cc/dctcp.cpp.o.d"
  "CMakeFiles/xmp_transport.dir/cc/reno.cpp.o"
  "CMakeFiles/xmp_transport.dir/cc/reno.cpp.o.d"
  "CMakeFiles/xmp_transport.dir/flow.cpp.o"
  "CMakeFiles/xmp_transport.dir/flow.cpp.o.d"
  "CMakeFiles/xmp_transport.dir/receiver.cpp.o"
  "CMakeFiles/xmp_transport.dir/receiver.cpp.o.d"
  "CMakeFiles/xmp_transport.dir/sender.cpp.o"
  "CMakeFiles/xmp_transport.dir/sender.cpp.o.d"
  "libxmp_transport.a"
  "libxmp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
