file(REMOVE_RECURSE
  "libxmp_transport.a"
)
