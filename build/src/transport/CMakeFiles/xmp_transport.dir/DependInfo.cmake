
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/cc/bos.cpp" "src/transport/CMakeFiles/xmp_transport.dir/cc/bos.cpp.o" "gcc" "src/transport/CMakeFiles/xmp_transport.dir/cc/bos.cpp.o.d"
  "/root/repo/src/transport/cc/d2tcp.cpp" "src/transport/CMakeFiles/xmp_transport.dir/cc/d2tcp.cpp.o" "gcc" "src/transport/CMakeFiles/xmp_transport.dir/cc/d2tcp.cpp.o.d"
  "/root/repo/src/transport/cc/dctcp.cpp" "src/transport/CMakeFiles/xmp_transport.dir/cc/dctcp.cpp.o" "gcc" "src/transport/CMakeFiles/xmp_transport.dir/cc/dctcp.cpp.o.d"
  "/root/repo/src/transport/cc/reno.cpp" "src/transport/CMakeFiles/xmp_transport.dir/cc/reno.cpp.o" "gcc" "src/transport/CMakeFiles/xmp_transport.dir/cc/reno.cpp.o.d"
  "/root/repo/src/transport/flow.cpp" "src/transport/CMakeFiles/xmp_transport.dir/flow.cpp.o" "gcc" "src/transport/CMakeFiles/xmp_transport.dir/flow.cpp.o.d"
  "/root/repo/src/transport/receiver.cpp" "src/transport/CMakeFiles/xmp_transport.dir/receiver.cpp.o" "gcc" "src/transport/CMakeFiles/xmp_transport.dir/receiver.cpp.o.d"
  "/root/repo/src/transport/sender.cpp" "src/transport/CMakeFiles/xmp_transport.dir/sender.cpp.o" "gcc" "src/transport/CMakeFiles/xmp_transport.dir/sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/xmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
