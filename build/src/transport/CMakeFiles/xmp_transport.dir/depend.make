# Empty dependencies file for xmp_transport.
# This may be replaced when dependencies are built.
