# Empty dependencies file for xmp_mptcp.
# This may be replaced when dependencies are built.
