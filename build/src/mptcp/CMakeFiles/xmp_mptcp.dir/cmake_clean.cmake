file(REMOVE_RECURSE
  "CMakeFiles/xmp_mptcp.dir/connection.cpp.o"
  "CMakeFiles/xmp_mptcp.dir/connection.cpp.o.d"
  "CMakeFiles/xmp_mptcp.dir/lia_cc.cpp.o"
  "CMakeFiles/xmp_mptcp.dir/lia_cc.cpp.o.d"
  "CMakeFiles/xmp_mptcp.dir/olia_cc.cpp.o"
  "CMakeFiles/xmp_mptcp.dir/olia_cc.cpp.o.d"
  "CMakeFiles/xmp_mptcp.dir/xmp_cc.cpp.o"
  "CMakeFiles/xmp_mptcp.dir/xmp_cc.cpp.o.d"
  "libxmp_mptcp.a"
  "libxmp_mptcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
