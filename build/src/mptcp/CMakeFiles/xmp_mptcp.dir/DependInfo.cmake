
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mptcp/connection.cpp" "src/mptcp/CMakeFiles/xmp_mptcp.dir/connection.cpp.o" "gcc" "src/mptcp/CMakeFiles/xmp_mptcp.dir/connection.cpp.o.d"
  "/root/repo/src/mptcp/lia_cc.cpp" "src/mptcp/CMakeFiles/xmp_mptcp.dir/lia_cc.cpp.o" "gcc" "src/mptcp/CMakeFiles/xmp_mptcp.dir/lia_cc.cpp.o.d"
  "/root/repo/src/mptcp/olia_cc.cpp" "src/mptcp/CMakeFiles/xmp_mptcp.dir/olia_cc.cpp.o" "gcc" "src/mptcp/CMakeFiles/xmp_mptcp.dir/olia_cc.cpp.o.d"
  "/root/repo/src/mptcp/xmp_cc.cpp" "src/mptcp/CMakeFiles/xmp_mptcp.dir/xmp_cc.cpp.o" "gcc" "src/mptcp/CMakeFiles/xmp_mptcp.dir/xmp_cc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/xmp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
