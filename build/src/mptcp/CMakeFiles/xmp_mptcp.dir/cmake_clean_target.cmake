file(REMOVE_RECURSE
  "libxmp_mptcp.a"
)
