file(REMOVE_RECURSE
  "CMakeFiles/xmp_workload.dir/flow_manager.cpp.o"
  "CMakeFiles/xmp_workload.dir/flow_manager.cpp.o.d"
  "CMakeFiles/xmp_workload.dir/incast.cpp.o"
  "CMakeFiles/xmp_workload.dir/incast.cpp.o.d"
  "CMakeFiles/xmp_workload.dir/permutation.cpp.o"
  "CMakeFiles/xmp_workload.dir/permutation.cpp.o.d"
  "CMakeFiles/xmp_workload.dir/random_traffic.cpp.o"
  "CMakeFiles/xmp_workload.dir/random_traffic.cpp.o.d"
  "CMakeFiles/xmp_workload.dir/trace_replay.cpp.o"
  "CMakeFiles/xmp_workload.dir/trace_replay.cpp.o.d"
  "libxmp_workload.a"
  "libxmp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
