file(REMOVE_RECURSE
  "libxmp_workload.a"
)
