# Empty compiler generated dependencies file for xmp_workload.
# This may be replaced when dependencies are built.
