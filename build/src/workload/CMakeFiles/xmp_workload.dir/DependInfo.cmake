
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flow_manager.cpp" "src/workload/CMakeFiles/xmp_workload.dir/flow_manager.cpp.o" "gcc" "src/workload/CMakeFiles/xmp_workload.dir/flow_manager.cpp.o.d"
  "/root/repo/src/workload/incast.cpp" "src/workload/CMakeFiles/xmp_workload.dir/incast.cpp.o" "gcc" "src/workload/CMakeFiles/xmp_workload.dir/incast.cpp.o.d"
  "/root/repo/src/workload/permutation.cpp" "src/workload/CMakeFiles/xmp_workload.dir/permutation.cpp.o" "gcc" "src/workload/CMakeFiles/xmp_workload.dir/permutation.cpp.o.d"
  "/root/repo/src/workload/random_traffic.cpp" "src/workload/CMakeFiles/xmp_workload.dir/random_traffic.cpp.o" "gcc" "src/workload/CMakeFiles/xmp_workload.dir/random_traffic.cpp.o.d"
  "/root/repo/src/workload/trace_replay.cpp" "src/workload/CMakeFiles/xmp_workload.dir/trace_replay.cpp.o" "gcc" "src/workload/CMakeFiles/xmp_workload.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mptcp/CMakeFiles/xmp_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/xmp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/xmp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
