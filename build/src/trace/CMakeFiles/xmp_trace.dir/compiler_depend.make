# Empty compiler generated dependencies file for xmp_trace.
# This may be replaced when dependencies are built.
