file(REMOVE_RECURSE
  "libxmp_trace.a"
)
