file(REMOVE_RECURSE
  "CMakeFiles/xmp_trace.dir/writers.cpp.o"
  "CMakeFiles/xmp_trace.dir/writers.cpp.o.d"
  "libxmp_trace.a"
  "libxmp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
