file(REMOVE_RECURSE
  "CMakeFiles/xmp_core.dir/experiment.cpp.o"
  "CMakeFiles/xmp_core.dir/experiment.cpp.o.d"
  "CMakeFiles/xmp_core.dir/export.cpp.o"
  "CMakeFiles/xmp_core.dir/export.cpp.o.d"
  "libxmp_core.a"
  "libxmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
