file(REMOVE_RECURSE
  "libxmp_core.a"
)
