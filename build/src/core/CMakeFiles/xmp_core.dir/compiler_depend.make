# Empty compiler generated dependencies file for xmp_core.
# This may be replaced when dependencies are built.
