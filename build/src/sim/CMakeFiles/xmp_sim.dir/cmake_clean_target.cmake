file(REMOVE_RECURSE
  "libxmp_sim.a"
)
