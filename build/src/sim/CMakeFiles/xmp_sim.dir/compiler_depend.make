# Empty compiler generated dependencies file for xmp_sim.
# This may be replaced when dependencies are built.
