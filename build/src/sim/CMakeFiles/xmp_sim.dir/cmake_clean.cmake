file(REMOVE_RECURSE
  "CMakeFiles/xmp_sim.dir/random.cpp.o"
  "CMakeFiles/xmp_sim.dir/random.cpp.o.d"
  "CMakeFiles/xmp_sim.dir/scheduler.cpp.o"
  "CMakeFiles/xmp_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/xmp_sim.dir/time.cpp.o"
  "CMakeFiles/xmp_sim.dir/time.cpp.o.d"
  "libxmp_sim.a"
  "libxmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
