file(REMOVE_RECURSE
  "libxmp_stats.a"
)
