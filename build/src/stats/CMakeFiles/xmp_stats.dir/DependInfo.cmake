
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ascii_chart.cpp" "src/stats/CMakeFiles/xmp_stats.dir/ascii_chart.cpp.o" "gcc" "src/stats/CMakeFiles/xmp_stats.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/stats/distribution.cpp" "src/stats/CMakeFiles/xmp_stats.dir/distribution.cpp.o" "gcc" "src/stats/CMakeFiles/xmp_stats.dir/distribution.cpp.o.d"
  "/root/repo/src/stats/probes.cpp" "src/stats/CMakeFiles/xmp_stats.dir/probes.cpp.o" "gcc" "src/stats/CMakeFiles/xmp_stats.dir/probes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/xmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
