file(REMOVE_RECURSE
  "CMakeFiles/xmp_stats.dir/ascii_chart.cpp.o"
  "CMakeFiles/xmp_stats.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/xmp_stats.dir/distribution.cpp.o"
  "CMakeFiles/xmp_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/xmp_stats.dir/probes.cpp.o"
  "CMakeFiles/xmp_stats.dir/probes.cpp.o.d"
  "libxmp_stats.a"
  "libxmp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
