# Empty dependencies file for xmp_stats.
# This may be replaced when dependencies are built.
