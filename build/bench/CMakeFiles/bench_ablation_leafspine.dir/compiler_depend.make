# Empty compiler generated dependencies file for bench_ablation_leafspine.
# This may be replaced when dependencies are built.
