file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_leafspine.dir/bench_ablation_leafspine.cpp.o"
  "CMakeFiles/bench_ablation_leafspine.dir/bench_ablation_leafspine.cpp.o.d"
  "bench_ablation_leafspine"
  "bench_ablation_leafspine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_leafspine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
