# Empty compiler generated dependencies file for bench_ablation_bos_params.
# This may be replaced when dependencies are built.
