# Empty compiler generated dependencies file for bench_fig7_rate_compensation.
# This may be replaced when dependencies are built.
