file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_rate_compensation.dir/bench_fig7_rate_compensation.cpp.o"
  "CMakeFiles/bench_fig7_rate_compensation.dir/bench_fig7_rate_compensation.cpp.o.d"
  "bench_fig7_rate_compensation"
  "bench_fig7_rate_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rate_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
