# Empty compiler generated dependencies file for bench_fig4_traffic_shifting.
# This may be replaced when dependencies are built.
