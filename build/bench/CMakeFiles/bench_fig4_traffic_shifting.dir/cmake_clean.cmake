file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_traffic_shifting.dir/bench_fig4_traffic_shifting.cpp.o"
  "CMakeFiles/bench_fig4_traffic_shifting.dir/bench_fig4_traffic_shifting.cpp.o.d"
  "bench_fig4_traffic_shifting"
  "bench_fig4_traffic_shifting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_traffic_shifting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
