# Empty dependencies file for bench_ablation_d2tcp.
# This may be replaced when dependencies are built.
