file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_d2tcp.dir/bench_ablation_d2tcp.cpp.o"
  "CMakeFiles/bench_ablation_d2tcp.dir/bench_ablation_d2tcp.cpp.o.d"
  "bench_ablation_d2tcp"
  "bench_ablation_d2tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_d2tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
