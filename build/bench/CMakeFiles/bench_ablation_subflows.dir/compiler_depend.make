# Empty compiler generated dependencies file for bench_ablation_subflows.
# This may be replaced when dependencies are built.
