file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subflows.dir/bench_ablation_subflows.cpp.o"
  "CMakeFiles/bench_ablation_subflows.dir/bench_ablation_subflows.cpp.o.d"
  "bench_ablation_subflows"
  "bench_ablation_subflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
