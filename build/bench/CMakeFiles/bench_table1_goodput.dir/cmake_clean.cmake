file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_goodput.dir/bench_table1_goodput.cpp.o"
  "CMakeFiles/bench_table1_goodput.dir/bench_table1_goodput.cpp.o.d"
  "bench_table1_goodput"
  "bench_table1_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
