# Empty dependencies file for bench_fluid_validation.
# This may be replaced when dependencies are built.
