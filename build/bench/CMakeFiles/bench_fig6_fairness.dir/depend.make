# Empty dependencies file for bench_fig6_fairness.
# This may be replaced when dependencies are built.
