file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fairness.dir/bench_fig6_fairness.cpp.o"
  "CMakeFiles/bench_fig6_fairness.dir/bench_fig6_fairness.cpp.o.d"
  "bench_fig6_fairness"
  "bench_fig6_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
