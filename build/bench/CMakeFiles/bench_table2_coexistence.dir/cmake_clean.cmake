file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_coexistence.dir/bench_table2_coexistence.cpp.o"
  "CMakeFiles/bench_table2_coexistence.dir/bench_table2_coexistence.cpp.o.d"
  "bench_table2_coexistence"
  "bench_table2_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
