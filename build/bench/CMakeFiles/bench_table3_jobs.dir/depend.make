# Empty dependencies file for bench_table3_jobs.
# This may be replaced when dependencies are built.
