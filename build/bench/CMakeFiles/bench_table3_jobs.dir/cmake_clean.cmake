file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_jobs.dir/bench_table3_jobs.cpp.o"
  "CMakeFiles/bench_table3_jobs.dir/bench_table3_jobs.cpp.o.d"
  "bench_table3_jobs"
  "bench_table3_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
