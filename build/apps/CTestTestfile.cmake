# CMake generated Testfile for 
# Source directory: /root/repo/apps
# Build directory: /root/repo/build/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(xmpsim_topo "/root/repo/build/apps/xmpsim" "topo" "--k=4")
set_tests_properties(xmpsim_topo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;5;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(xmpsim_fluid "/root/repo/build/apps/xmpsim" "fluid" "--flows=2" "--beta=4")
set_tests_properties(xmpsim_fluid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;6;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(xmpsim_run "/root/repo/build/apps/xmpsim" "run" "--pattern=random" "--scheme=dctcp" "--k=4" "--duration=0.05")
set_tests_properties(xmpsim_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;7;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(xmpsim_sweep "/root/repo/build/apps/xmpsim" "sweep" "--param=beta" "--values=3,5" "--pattern=random" "--scheme=xmp" "--k=4" "--duration=0.03")
set_tests_properties(xmpsim_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;8;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(xmpsim_bad_args "/root/repo/build/apps/xmpsim" "run" "--pattern=bogus")
set_tests_properties(xmpsim_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;9;add_test;/root/repo/apps/CMakeLists.txt;0;")
