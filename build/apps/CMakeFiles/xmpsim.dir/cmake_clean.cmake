file(REMOVE_RECURSE
  "CMakeFiles/xmpsim.dir/xmpsim.cpp.o"
  "CMakeFiles/xmpsim.dir/xmpsim.cpp.o.d"
  "xmpsim"
  "xmpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
