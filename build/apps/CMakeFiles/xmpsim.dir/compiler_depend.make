# Empty compiler generated dependencies file for xmpsim.
# This may be replaced when dependencies are built.
