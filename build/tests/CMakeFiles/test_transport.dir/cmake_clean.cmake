file(REMOVE_RECURSE
  "CMakeFiles/test_transport.dir/transport/cc_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/cc_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/d2tcp_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/d2tcp_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/ecn_codec_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/ecn_codec_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/edge_cases_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/edge_cases_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/flow_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/flow_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/receiver_config_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/receiver_config_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/receiver_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/receiver_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/sender_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/sender_test.cpp.o.d"
  "test_transport"
  "test_transport.pdb"
  "test_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
