
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topo/category_matrix_test.cpp" "tests/CMakeFiles/test_topo.dir/topo/category_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/category_matrix_test.cpp.o.d"
  "/root/repo/tests/topo/fattree_test.cpp" "tests/CMakeFiles/test_topo.dir/topo/fattree_test.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/fattree_test.cpp.o.d"
  "/root/repo/tests/topo/leafspine_test.cpp" "tests/CMakeFiles/test_topo.dir/topo/leafspine_test.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/leafspine_test.cpp.o.d"
  "/root/repo/tests/topo/pinned_test.cpp" "tests/CMakeFiles/test_topo.dir/topo/pinned_test.cpp.o" "gcc" "tests/CMakeFiles/test_topo.dir/topo/pinned_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xmp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mptcp/CMakeFiles/xmp_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/xmp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/xmp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xmp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/xmp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/xmp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
