file(REMOVE_RECURSE
  "CMakeFiles/test_mptcp.dir/mptcp/connection_test.cpp.o"
  "CMakeFiles/test_mptcp.dir/mptcp/connection_test.cpp.o.d"
  "CMakeFiles/test_mptcp.dir/mptcp/coupling_test.cpp.o"
  "CMakeFiles/test_mptcp.dir/mptcp/coupling_test.cpp.o.d"
  "CMakeFiles/test_mptcp.dir/mptcp/olia_quality_test.cpp.o"
  "CMakeFiles/test_mptcp.dir/mptcp/olia_quality_test.cpp.o.d"
  "CMakeFiles/test_mptcp.dir/mptcp/oversubscribed_subflows_test.cpp.o"
  "CMakeFiles/test_mptcp.dir/mptcp/oversubscribed_subflows_test.cpp.o.d"
  "CMakeFiles/test_mptcp.dir/mptcp/reinjection_test.cpp.o"
  "CMakeFiles/test_mptcp.dir/mptcp/reinjection_test.cpp.o.d"
  "test_mptcp"
  "test_mptcp.pdb"
  "test_mptcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
