# Empty compiler generated dependencies file for subflow_trace.
# This may be replaced when dependencies are built.
