file(REMOVE_RECURSE
  "CMakeFiles/subflow_trace.dir/subflow_trace.cpp.o"
  "CMakeFiles/subflow_trace.dir/subflow_trace.cpp.o.d"
  "subflow_trace"
  "subflow_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subflow_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
