// The paper's motivating scenario (§1): throughput-sensitive large flows
// and latency-sensitive small flows sharing a k=8 Fat-Tree. Runs the
// Incast pattern (8 concurrent jobs + one background large flow per host)
// under DCTCP, LIA-2 and XMP-2 and prints the throughput/latency tradeoff
// each scheme strikes.
//
//   $ ./datacenter_mix [--duration=0.3]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/xmp.hpp"

int main(int argc, char** argv) {
  using namespace xmp;

  double duration = 0.3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--duration=", 11) == 0) duration = std::atof(argv[i] + 11);
  }

  struct SchemeRow {
    const char* label;
    workload::SchemeSpec::Kind kind;
    int subflows;
  };
  const SchemeRow schemes[] = {
      {"DCTCP", workload::SchemeSpec::Kind::Dctcp, 1},
      {"LIA-2", workload::SchemeSpec::Kind::Lia, 2},
      {"XMP-2", workload::SchemeSpec::Kind::Xmp, 2},
  };

  std::printf("Incast pattern on a k=8 Fat-Tree (128 hosts, 1 Gbps, K=10)\n");
  std::printf("large flows use the scheme under test; small flows always use TCP\n\n");
  std::printf("%-8s %16s %16s %14s %12s\n", "scheme", "goodput (Mbps)", "job avg (ms)",
              "jobs >300ms", "p90 RTT(ms)");

  for (const auto& s : schemes) {
    core::ExperimentConfig cfg;
    cfg.scheme.kind = s.kind;
    cfg.scheme.subflows = s.subflows;
    cfg.pattern = core::Pattern::Incast;
    cfg.duration = sim::Time::seconds(duration);
    const auto res = core::run_experiment(cfg);

    // Worst-case large-flow RTT across categories ~ buffer occupancy.
    double p90_rtt = 0.0;
    for (const auto& d : res.rtt_by_category) {
      if (!d.empty()) p90_rtt = std::max(p90_rtt, d.percentile(90));
    }
    std::printf("%-8s %16.1f %16.1f %13.1f%% %12.2f\n", s.label, res.avg_goodput_mbps(),
                res.avg_job_completion_ms(), res.job_completion_over_ms(300.0) * 100, p90_rtt);
  }

  std::printf("\nreading: DCTCP minimizes job latency but leaves throughput on the\n"
              "table; LIA maximizes neither (drop-tail queues + 200 ms RTOmin hurt\n"
              "both sides); XMP takes most of the multipath throughput while keeping\n"
              "jobs fast — the tradeoff the paper targets.\n");
  return 0;
}
