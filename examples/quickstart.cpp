// Quickstart: the library in ~80 lines.
//
// Builds a two-path testbed (two 1 Gbps bottlenecks), runs one XMP
// connection with a subflow on each path plus a competing DCTCP flow on
// path 0, and shows XMP shifting traffic to the uncongested path while BOS
// keeps the bottleneck queues near the marking threshold K.
//
//   $ ./quickstart

#include <cstdio>

#include "core/xmp.hpp"

int main() {
  using namespace xmp;

  sim::Scheduler sched;
  net::Network network{sched};

  // --- topology: two pinned 1 Gbps bottlenecks, ECN marking at K = 10 ---
  topo::PinnedPaths::Config tc;
  tc.bottlenecks = {{1'000'000'000, sim::Time::microseconds(50)},
                    {1'000'000'000, sim::Time::microseconds(50)}};
  tc.bottleneck_queue.kind = net::QueueConfig::Kind::EcnThreshold;
  tc.bottleneck_queue.capacity_packets = 100;
  tc.bottleneck_queue.mark_threshold = 10;
  topo::PinnedPaths testbed{network, tc};  // access links are over-provisioned

  // --- an XMP flow with one subflow per path ---
  auto mp_pair = testbed.add_pair({0, 1});
  mptcp::MptcpConnection::Config mc;
  mc.id = 1;
  mc.size_bytes = 60'000'000;
  mc.n_subflows = 2;
  mc.coupling = mptcp::Coupling::Xmp;
  mc.bos.beta = 4;
  mc.path_tag_fn = [](int subflow) { return static_cast<std::uint16_t>(subflow); };
  mptcp::MptcpConnection xmp_flow{sched, *mp_pair.src, *mp_pair.dst, mc};

  // --- a DCTCP competitor pinned to path 0, starting at t = 100 ms ---
  auto bg_pair = testbed.add_pair({0});
  transport::Flow::Config fc;
  fc.id = 2;
  fc.size_bytes = 25'000'000;
  fc.cc.kind = transport::CcConfig::Kind::Dctcp;
  fc.path_tag = 0;
  fc.path_tag_explicit = true;
  transport::Flow dctcp_flow{sched, *bg_pair.src, *bg_pair.dst, fc};

  // --- probes: per-subflow rate (50 ms bins) and queue occupancy ---
  stats::RateProbe rate0{sched, sim::Time::milliseconds(50), [&] {
    return static_cast<double>(xmp_flow.subflow_sender(0).delivered_segments());
  }};
  stats::RateProbe rate1{sched, sim::Time::milliseconds(50), [&] {
    return static_cast<double>(xmp_flow.subflow_sender(1).delivered_segments());
  }};
  stats::GaugeProbe queue0{sched, sim::Time::milliseconds(1), [&] {
    return static_cast<double>(testbed.bottleneck(0).queue().len_packets());
  }};

  xmp_flow.start();
  sched.schedule_at(sim::Time::milliseconds(100), [&] { dctcp_flow.start(); });
  rate0.start();
  rate1.start();
  queue0.start();

  sched.run_until(sim::Time::milliseconds(500));

  std::printf("time(ms)  subflow0(Mbps)  subflow1(Mbps)\n");
  for (std::size_t i = 0; i < rate0.rates().size(); ++i) {
    std::printf("%7.0f %15.1f %15.1f\n", rate0.timestamps()[i].ms(),
                rate0.rates()[i] * net::kMssBytes * 8 / 1e6,
                rate1.rates()[i] * net::kMssBytes * 8 / 1e6);
  }

  stats::Distribution q;
  for (double v : queue0.samples()) q.add(v);
  std::printf("\nbottleneck-0 queue occupancy: mean %.1f pkts, p95 %.0f (K = 10, cap 100)\n",
              q.mean(), q.percentile(95));
  std::printf("XMP delivered %.1f MB in %.0f ms%s\n",
              xmp_flow.complete() ? xmp_flow.size_bytes() / 1e6 : 0.0,
              xmp_flow.complete() ? (xmp_flow.finish_time() - xmp_flow.start_time()).ms() : 0.0,
              xmp_flow.complete() ? "" : " (still running at cutoff)");
  return 0;
}
