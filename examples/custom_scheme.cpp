// Extending the library with your own congestion controller.
//
// The transport layer accepts any CongestionControl implementation. Here we
// write "BOS-AD", a toy variant of the paper's BOS that adapts the
// reduction factor beta to the observed marking intensity (many CEs per
// ack -> cut harder), and race it against stock BOS(beta=4) on a shared
// 1 Gbps ECN bottleneck.
//
//   $ ./custom_scheme

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/xmp.hpp"

namespace {

using namespace xmp;

/// BOS with an adaptive reduction factor: beta floats in [3, 8] following
/// an EWMA of the echoed CE count (the XMP codec reports 0..3 per ack).
class AdaptiveBos final : public transport::CongestionControl {
 public:
  void on_round_end(transport::TcpSender& s) override {
    if (!reduced_ && !s.in_slow_start()) {
      adder_ += 1.0;
      const double whole = std::floor(adder_);
      s.set_cwnd(s.cwnd() + whole);
      adder_ -= whole;
    }
  }

  void on_ack(transport::TcpSender& s, const transport::AckEvent& ev) override {
    if (ev.dupack) return;
    ce_ewma_ = 0.9 * ce_ewma_ + 0.1 * ev.ce_count;
    if (!reduced_ && s.in_slow_start()) s.set_cwnd(s.cwnd() + 1.0);
    if (reduced_ && s.snd_una() >= cwr_seq_) reduced_ = false;
  }

  void on_congestion_signal(transport::TcpSender& s, const transport::AckEvent&) override {
    if (reduced_) return;
    reduced_ = true;
    cwr_seq_ = s.snd_nxt();
    // Busier marking -> closer to halving; sparse marking -> gentle cut.
    const double beta = std::clamp(8.0 - 2.5 * ce_ewma_, 3.0, 8.0);
    if (s.cwnd() > s.ssthresh()) {
      const double cut = std::max(std::floor(s.cwnd() / beta), 1.0);
      s.set_cwnd(std::max(s.cwnd() - cut, 2.0));
    }
    s.set_ssthresh(s.cwnd() - 1.0);
  }

  void on_loss(transport::TcpSender& s, bool timeout) override {
    s.set_ssthresh(std::max(s.cwnd() / 2.0, 2.0));
    s.set_cwnd(timeout ? s.config().min_cwnd : s.ssthresh());
    reduced_ = false;
  }

  const char* name() const override { return "bos-adaptive"; }

 private:
  double ce_ewma_ = 0.0;
  double adder_ = 0.0;
  bool reduced_ = false;
  std::int64_t cwr_seq_ = 0;
};

}  // namespace

int main() {
  using namespace xmp;

  sim::Scheduler sched;
  net::Network network{sched};
  topo::PinnedPaths::Config tc;
  tc.bottlenecks = {{1'000'000'000, sim::Time::microseconds(100)}};
  tc.bottleneck_queue.kind = net::QueueConfig::Kind::EcnThreshold;
  tc.bottleneck_queue.capacity_packets = 100;
  tc.bottleneck_queue.mark_threshold = 10;
  topo::PinnedPaths testbed{network, tc};

  // Stock BOS flow (via the Flow facade).
  auto p1 = testbed.add_pair({0});
  transport::Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 500'000'000;
  fc.cc.kind = transport::CcConfig::Kind::Bos;
  fc.path_tag = 0;
  fc.path_tag_explicit = true;
  transport::Flow stock{sched, *p1.src, *p1.dst, fc};

  // Custom controller, assembled from the raw transport pieces.
  auto p2 = testbed.add_pair({0});
  transport::FixedSource source{net::segments_for_bytes(500'000'000)};
  transport::SenderConfig sc;
  sc.ecn_capable = true;
  sc.min_cwnd = 2.0;
  transport::ReceiverConfig rc;
  rc.codec = transport::EcnCodec::XmpCounter;
  transport::TcpReceiver receiver{sched, *p2.dst, p2.src->id(), 2, 0, 0, rc};
  transport::TcpSender sender{sched, *p2.src,  p2.dst->id(), 2, 0, 0,
                              source, std::make_unique<AdaptiveBos>(), sc};

  stock.start();
  sender.start();

  stats::GaugeProbe queue{sched, sim::Time::milliseconds(1), [&] {
    return static_cast<double>(testbed.bottleneck(0).queue().len_packets());
  }};
  queue.start();

  sched.run_until(sim::Time::seconds(2.0));

  const double t = sched.now().sec();
  const double stock_mbps =
      static_cast<double>(stock.delivered_bytes()) * 8 / t / 1e6;
  const double custom_mbps =
      static_cast<double>(sender.delivered_segments()) * net::kMssBytes * 8 / t / 1e6;
  stats::Distribution q;
  for (double v : queue.samples()) q.add(v);

  std::printf("shared 1 Gbps bottleneck, ECN K=10, 2.0 s:\n");
  std::printf("  stock BOS(beta=4): %7.1f Mbps\n", stock_mbps);
  std::printf("  custom AdaptiveBos: %6.1f Mbps (cc name: %s)\n", custom_mbps,
              sender.cc().name());
  std::printf("  queue occupancy: mean %.1f pkts, p95 %.0f pkts\n", q.mean(), q.percentile(95));
  std::printf("  fairness (Jain): %.3f\n", stats::jain_index({stock_mbps, custom_mbps}));
  std::printf("\nnote: the adaptive variant cuts gently while marking is sparse, so it\n"
              "out-competes stock BOS — a live demonstration of why heterogeneous\n"
              "reduction factors break fairness (paper §2.1's argument for one beta).\n");
  return 0;
}
