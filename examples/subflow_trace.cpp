// Produce a gnuplot/matplotlib-ready CSV trace of the Figure 4 scenario:
// per-subflow rates and bottleneck queue occupancy of an XMP connection
// while background load moves from one path to the other.
//
//   $ ./subflow_trace > trace.csv
//   $ gnuplot -e "set datafile separator ','; \
//       plot 'trace.csv' using 1:2 with lines title 'subflow 0', \
//            '' using 1:3 with lines title 'subflow 1'"

#include <cstdio>

#include "core/xmp.hpp"

int main() {
  using namespace xmp;

  sim::Scheduler sched;
  net::Network network{sched};

  topo::PinnedPaths::Config tc;
  tc.bottlenecks = {{300'000'000, sim::Time::microseconds(500)},
                    {300'000'000, sim::Time::microseconds(500)}};
  tc.bottleneck_queue.kind = net::QueueConfig::Kind::EcnThreshold;
  tc.bottleneck_queue.capacity_packets = 100;
  tc.bottleneck_queue.mark_threshold = 15;
  tc.access_delay = sim::Time::microseconds(100);
  tc.inner_delay = sim::Time::microseconds(100);
  topo::PinnedPaths testbed{network, tc};

  auto pair = testbed.add_pair({0, 1});
  mptcp::MptcpConnection::Config mc;
  mc.id = 1;
  mc.size_bytes = 1'000'000'000'000LL;
  mc.n_subflows = 2;
  mc.coupling = mptcp::Coupling::Xmp;
  mc.bos.beta = 4;
  mc.path_tag_fn = [](int i) { return static_cast<std::uint16_t>(i); };
  mptcp::MptcpConnection conn{sched, *pair.src, *pair.dst, mc};

  // Background BOS flow hopping between paths every second.
  auto bg0 = testbed.add_pair({0});
  auto bg1 = testbed.add_pair({1});
  auto make_bg = [&](net::FlowId id, topo::PinnedPaths::Pair& p) {
    transport::Flow::Config fc;
    fc.id = id;
    fc.size_bytes = 1'000'000'000'000LL;
    fc.cc.kind = transport::CcConfig::Kind::Bos;
    fc.path_tag = 0;
    fc.path_tag_explicit = true;
    return std::make_unique<transport::Flow>(sched, *p.src, *p.dst, fc);
  };
  auto bg_on_0 = make_bg(2, bg0);
  auto bg_on_1 = make_bg(3, bg1);

  conn.start();
  sched.schedule_at(sim::Time::seconds(1.0), [&] { bg_on_0->start(); });
  sched.schedule_at(sim::Time::seconds(2.0), [&] { bg0.src->uplink()->set_down(true); });
  sched.schedule_at(sim::Time::seconds(2.0), [&] { bg_on_1->start(); });
  sched.schedule_at(sim::Time::seconds(3.0), [&] { bg1.src->uplink()->set_down(true); });

  // CSV sampling at 20 ms.
  std::printf("t_s,subflow0_mbps,subflow1_mbps,queue0_pkts,queue1_pkts,cwnd0,cwnd1\n");
  std::int64_t last0 = 0;
  std::int64_t last1 = 0;
  const sim::Time dt = sim::Time::milliseconds(20);
  std::function<void()> sample = [&] {
    const auto d0 = conn.subflow_sender(0).delivered_segments();
    const auto d1 = conn.subflow_sender(1).delivered_segments();
    std::printf("%.3f,%.1f,%.1f,%zu,%zu,%.1f,%.1f\n", sched.now().sec(),
                static_cast<double>(d0 - last0) * net::kMssBytes * 8 / dt.sec() / 1e6,
                static_cast<double>(d1 - last1) * net::kMssBytes * 8 / dt.sec() / 1e6,
                testbed.bottleneck(0).queue().len_packets(),
                testbed.bottleneck(1).queue().len_packets(), conn.subflow_sender(0).cwnd(),
                conn.subflow_sender(1).cwnd());
    last0 = d0;
    last1 = d1;
    sched.schedule_in(dt, sample);
  };
  sched.schedule_in(dt, sample);

  sched.run_until(sim::Time::seconds(4.0));
  return 0;
}
