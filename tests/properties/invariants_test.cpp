// Property-style parameterized sweeps over the paper's design space.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "sim/random.hpp"
#include "topo/fattree.hpp"
#include "transport/ecn_codec.hpp"
#include "transport/flow.hpp"
#include "util/fixtures.hpp"

namespace xmp {
namespace {

// ------------------------------------------------------ Eq. 1 sweep ----

struct BosParams {
  int beta;
  int k_over_bound;  // K as a multiple (x100) of BDP/(beta-1)
};

class BosUtilizationSweep : public ::testing::TestWithParam<BosParams> {};

TEST_P(BosUtilizationSweep, UtilizationFollowsEquationOne) {
  const auto [beta, mult100] = GetParam();
  // 1 Gbps, base RTT ~ 310 us (150 us bottleneck + access/inner hops)
  // -> BDP ~ 26 packets.
  const int bdp = 26;
  const int k = std::max(1, bdp * mult100 / (100 * (beta - 1)));

  testutil::TwoHosts t{1'000'000'000, sim::Time::microseconds(150),
                       testutil::ecn_queue(250, static_cast<std::size_t>(k))};
  transport::Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 1'000'000'000'000LL;
  fc.cc.kind = transport::CcConfig::Kind::Bos;
  fc.cc.bos.beta = beta;
  transport::Flow f{t.sched, *t.a, *t.b, fc};
  f.start();

  // Measure past slow start.
  sim::Time busy0 = sim::Time::zero();
  t.sched.schedule_at(sim::Time::milliseconds(200), [&] { busy0 = t.ab->busy_time(); });
  t.sched.run_until(sim::Time::milliseconds(700));
  const double util = (t.ab->busy_time() - busy0).sec() / 0.5;

  if (mult100 >= 100) {
    // K >= BDP/(beta-1): Eq. 1 promises (near-)full utilization. Exactly
    // at the bound, integer cwnd and delayed acks cost a whisker, so allow
    // a small margin below the ~96% header-overhead ceiling.
    EXPECT_GT(util, 0.92) << "beta=" << beta << " K=" << k;
  } else {
    // Well below the bound the link must drain periodically; some loss of
    // utilization is partially compensated by the shorter RTT (§2.1), so
    // only require that it is not pathological.
    EXPECT_GT(util, 0.5) << "beta=" << beta << " K=" << k;
  }
  // The queue never grows beyond K + one BDP worth of overshoot.
  EXPECT_EQ(t.ab->queue().counters().dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Eq1, BosUtilizationSweep,
    ::testing::Values(BosParams{2, 100}, BosParams{2, 200}, BosParams{3, 100},
                      BosParams{4, 100}, BosParams{4, 200}, BosParams{4, 50},
                      BosParams{5, 100}, BosParams{6, 100}, BosParams{6, 50}),
    [](const auto& info) {
      return "beta" + std::to_string(info.param.beta) + "_K" +
             std::to_string(info.param.k_over_bound) + "pct";
    });

// --------------------------------------------- XMP codec conservation ----

TEST(XmpCodecProperty, EchoedCountEqualsMarkedCount) {
  // Whatever the arrival pattern, the sum of ce_echo over all acks equals
  // the number of CE-marked segments (no congestion signal ever lost).
  sim::Rng rng{2024};
  for (int trial = 0; trial < 50; ++trial) {
    transport::EcnEchoState state{transport::EcnCodec::XmpCounter};
    std::uint64_t marked = 0;
    std::uint64_t echoed = 0;
    const int packets = static_cast<int>(rng.uniform_int(1, 200));
    for (int i = 0; i < packets; ++i) {
      net::Packet p;
      p.ecn = rng.uniform01() < 0.3 ? net::Ecn::Ce : net::Ecn::Ect;
      if (p.ecn == net::Ecn::Ce) ++marked;
      state.on_data(p);
      if (rng.uniform01() < 0.5) {  // ack every ~2 packets
        net::Packet ack;
        state.fill_ack(ack);
        echoed += ack.ce_echo;
      }
    }
    // Drain the codec.
    for (int i = 0; i < 100; ++i) {
      net::Packet ack;
      state.fill_ack(ack);
      echoed += ack.ce_echo;
    }
    EXPECT_EQ(echoed, marked);
  }
}

// ------------------------------------------------ queue conservation ----

TEST(QueueProperty, PacketAndByteAccountingConsistent) {
  sim::Rng rng{7};
  net::EcnThresholdQueue q{50, 10};
  std::uint64_t accepted = 0;
  std::uint64_t dequeued = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.uniform01() < 0.55) {
      net::Packet p;
      p.ecn = net::Ecn::Ect;
      p.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(60, 1500));
      if (q.enqueue(std::move(p), sim::Time::zero())) ++accepted;
    } else {
      net::Packet out;
      if (q.dequeue(out, sim::Time::zero())) ++dequeued;
    }
    ASSERT_LE(q.len_packets(), 50u);
    if (q.len_packets() == 0) {
      ASSERT_EQ(q.len_bytes(), 0u);
    }
  }
  EXPECT_EQ(accepted - dequeued, q.len_packets());
  EXPECT_EQ(q.counters().enqueued, accepted);
}

// ------------------------------------------- scheme-wide determinism ----

class SchemeDeterminism
    : public ::testing::TestWithParam<workload::SchemeSpec::Kind> {};

TEST_P(SchemeDeterminism, IdenticalSeedsIdenticalRuns) {
  auto run = [&] {
    core::ExperimentConfig cfg;
    cfg.fat_tree_k = 4;
    cfg.scheme.kind = GetParam();
    cfg.scheme.subflows = 2;
    cfg.pattern = core::Pattern::Random;
    cfg.rand_min_bytes = 50'000;
    cfg.rand_max_bytes = 200'000;
    cfg.duration = sim::Time::milliseconds(80);
    cfg.seed = 42;
    return core::run_experiment(cfg);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].start, b.flows[i].start);
    EXPECT_EQ(a.flows[i].finish, b.flows[i].finish);
    EXPECT_EQ(a.flows[i].bytes, b.flows[i].bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeDeterminism,
                         ::testing::Values(workload::SchemeSpec::Kind::Tcp,
                                           workload::SchemeSpec::Kind::Dctcp,
                                           workload::SchemeSpec::Kind::Xmp,
                                           workload::SchemeSpec::Kind::Lia,
                                           workload::SchemeSpec::Kind::Olia),
                         [](const auto& info) {
                           workload::SchemeSpec s;
                           s.kind = info.param;
                           s.subflows = 2;
                           auto n = s.name();
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ----------------------------------------- Fat-Tree structural sweep ----

class FatTreeStructure : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeStructure, DimensionsMatchFormulae) {
  const int k = GetParam();
  sim::Scheduler sched;
  net::Network net{sched};
  topo::FatTree::Config tc;
  tc.k = k;
  topo::FatTree tree{net, tc};
  EXPECT_EQ(tree.n_hosts(), k * k * k / 4);
  EXPECT_EQ(static_cast<int>(net.switches().size()), 5 * k * k / 4);
  EXPECT_EQ(tree.inter_pod_paths(), k * k / 4);
  // Every layer has k^3/2 unidirectional links... rack: 2*k^3/4; the
  // aggregation and core layers have k * (k/2) * (k/2) * 2 each.
  EXPECT_EQ(tree.links(topo::FatTree::Layer::Rack).size(),
            static_cast<std::size_t>(2 * k * k * k / 4));
  EXPECT_EQ(tree.links(topo::FatTree::Layer::Aggregation).size(),
            static_cast<std::size_t>(k * (k / 2) * (k / 2) * 2));
  EXPECT_EQ(tree.links(topo::FatTree::Layer::Core).size(),
            static_cast<std::size_t>(k * (k / 2) * (k / 2) * 2));
}

TEST_P(FatTreeStructure, RandomPairsAreMutuallyReachable) {
  const int k = GetParam();
  sim::Scheduler sched;
  net::Network net{sched};
  topo::FatTree::Config tc;
  tc.k = k;
  tc.queue = testutil::ecn_queue(100, 10);
  topo::FatTree tree{net, tc};
  sim::Rng rng{static_cast<std::uint64_t>(k)};
  std::vector<std::unique_ptr<transport::Flow>> flows;
  for (int i = 0; i < 12; ++i) {
    const int s = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(tree.n_hosts())));
    int d = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(tree.n_hosts())));
    if (d == s) d = (d + 1) % tree.n_hosts();
    transport::Flow::Config fc;
    fc.id = static_cast<net::FlowId>(i + 1);
    fc.size_bytes = 30'000;
    fc.cc.kind = transport::CcConfig::Kind::Dctcp;
    flows.push_back(std::make_unique<transport::Flow>(sched, tree.host(s), tree.host(d), fc));
    flows.back()->start();
  }
  sched.run_until(sim::Time::seconds(1.0));
  for (const auto& f : flows) EXPECT_TRUE(f->complete());
}

INSTANTIATE_TEST_SUITE_P(K, FatTreeStructure, ::testing::Values(2, 4, 6, 8),
                         [](const auto& info) { return "k" + std::to_string(info.param); });

// -------------------------------------------- transfer conservation ----

class TransferConservation
    : public ::testing::TestWithParam<std::tuple<transport::CcConfig::Kind, int>> {};

TEST_P(TransferConservation, DeliveredNeverExceedsSentAndCompletes) {
  const auto [kind, size_kb] = GetParam();
  testutil::TwoHosts t{1'000'000'000, sim::Time::microseconds(50),
                       testutil::ecn_queue(100, 10)};
  transport::Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = static_cast<std::int64_t>(size_kb) * 1000;
  fc.cc.kind = kind;
  transport::Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.run_until(sim::Time::seconds(5.0));
  ASSERT_TRUE(f.complete());
  EXPECT_EQ(f.sender().delivered_segments(), net::segments_for_bytes(fc.size_bytes));
  EXPECT_GE(f.sender().segments_sent(),
            static_cast<std::uint64_t>(f.sender().delivered_segments()));
  EXPECT_EQ(f.receiver().delivered_segments(), f.sender().delivered_segments());
}

std::string conservation_name(
    const ::testing::TestParamInfo<std::tuple<transport::CcConfig::Kind, int>>& info) {
  const char* name = "Reno";
  switch (std::get<0>(info.param)) {
    case transport::CcConfig::Kind::Reno:
      name = "Reno";
      break;
    case transport::CcConfig::Kind::Dctcp:
      name = "Dctcp";
      break;
    case transport::CcConfig::Kind::Bos:
      name = "Bos";
      break;
  }
  return std::string(name) + "_" + std::to_string(std::get<1>(info.param)) + "kb";
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TransferConservation,
    ::testing::Combine(::testing::Values(transport::CcConfig::Kind::Reno,
                                         transport::CcConfig::Kind::Dctcp,
                                         transport::CcConfig::Kind::Bos),
                       ::testing::Values(1, 2, 64, 1000, 10000)),
    conservation_name);

}  // namespace
}  // namespace xmp
