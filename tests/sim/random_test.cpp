#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace xmp::sim {
namespace {

TEST(Rng, Deterministic) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformU64InBounds) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversRange) {
  Rng r{7};
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[r.uniform_u64(8)];
  for (int h : hits) {
    EXPECT_GT(h, 700);  // each bucket near 1000
    EXPECT_LT(h, 1300);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r{3};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng r{11};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r{13};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BoundedParetoRange) {
  Rng r{17};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.bounded_pareto(1.5, 2.0, 24.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 24.0);
  }
}

TEST(Rng, BoundedParetoMeanMatchesClosedForm) {
  // E[X] for bounded Pareto(alpha, L, H):
  //   L^a/(1-(L/H)^a) * a/(a-1) * (1/L^(a-1) - 1/H^(a-1))
  const double a = 1.5;
  const double L = 2.0;
  const double H = 24.0;
  const double la = std::pow(L, a);
  const double expected = la / (1 - std::pow(L / H, a)) * (a / (a - 1)) *
                          (1 / std::pow(L, a - 1) - 1 / std::pow(H, a - 1));
  Rng r{19};
  double sum = 0.0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) sum += r.bounded_pareto(a, L, H);
  EXPECT_NEAR(sum / n, expected, expected * 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{99};
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace xmp::sim
