#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace xmp::sim {
namespace {

TEST(Time, FactoriesAndAccessors) {
  EXPECT_EQ(Time::nanoseconds(5).ns(), 5);
  EXPECT_EQ(Time::microseconds(3).ns(), 3'000);
  EXPECT_EQ(Time::milliseconds(7).ns(), 7'000'000);
  EXPECT_EQ(Time::seconds(2.0).ns(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(Time::milliseconds(1).us(), 1000.0);
  EXPECT_DOUBLE_EQ(Time::seconds(0.5).sec(), 0.5);
}

TEST(Time, SecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Time::seconds(1e-9).ns(), 1);
  EXPECT_EQ(Time::seconds(1.5e-9).ns(), 2);
  EXPECT_EQ(Time::seconds(0.4e-9).ns(), 0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::microseconds(10);
  const Time b = Time::microseconds(4);
  EXPECT_EQ((a + b).ns(), 14'000);
  EXPECT_EQ((a - b).ns(), 6'000);
  EXPECT_EQ((a * 3).ns(), 30'000);
  EXPECT_EQ((a / 2).ns(), 5'000);
  Time c = a;
  c += b;
  EXPECT_EQ(c.ns(), 14'000);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::microseconds(1), Time::microseconds(2));
  EXPECT_LE(Time::zero(), Time::zero());
  EXPECT_GT(Time::infinity(), Time::seconds(1e6));
  EXPECT_EQ(Time::zero(), Time{});
}

TEST(Time, TransmissionTime) {
  // 1500 B at 1 Gbps = 12 us.
  EXPECT_EQ(transmission_time(1500, 1'000'000'000).ns(), 12'000);
  // 60 B at 1 Gbps = 480 ns.
  EXPECT_EQ(transmission_time(60, 1'000'000'000).ns(), 480);
  // 1500 B at 300 Mbps = 40 us.
  EXPECT_EQ(transmission_time(1500, 300'000'000).ns(), 40'000);
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(Time::nanoseconds(500).to_string(), "500ns");
  EXPECT_EQ(Time::microseconds(225).to_string(), "225.000us");
  EXPECT_EQ(Time::milliseconds(200).to_string(), "200.000ms");
  EXPECT_EQ(Time::seconds(12.0).to_string(), "12.000s");
  EXPECT_EQ(Time::infinity().to_string(), "+inf");
}

}  // namespace
}  // namespace xmp::sim
