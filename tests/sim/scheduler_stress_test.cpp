// Randomized stress tests for the event scheduler: ordering, cancellation
// and clock invariants under adversarial schedule/cancel interleavings.

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace xmp::sim {
namespace {

TEST(SchedulerStress, TimestampsNeverRegress) {
  Scheduler s;
  Rng rng{101};
  Time last = Time::zero();
  int fired = 0;
  for (int i = 0; i < 20'000; ++i) {
    s.schedule_at(Time::nanoseconds(rng.uniform_int(0, 1'000'000)), [&] {
      EXPECT_GE(s.now(), last);
      last = s.now();
      ++fired;
    });
  }
  s.run();
  EXPECT_EQ(fired, 20'000);
}

TEST(SchedulerStress, RandomCancellationsNeverFire) {
  Scheduler s;
  Rng rng{202};
  std::vector<EventId> ids;
  std::vector<bool> cancelled;
  int fired = 0;
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(s.schedule_at(Time::nanoseconds(rng.uniform_int(0, 500'000)),
                                [&fired] { ++fired; }));
    cancelled.push_back(false);
  }
  int n_cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (rng.uniform01() < 0.37) {
      s.cancel(ids[i]);
      cancelled[i] = true;
      ++n_cancelled;
    }
  }
  s.run();
  EXPECT_EQ(fired, 10'000 - n_cancelled);
}

TEST(SchedulerStress, CancelFromInsideEvent) {
  Scheduler s;
  bool victim_fired = false;
  EventId victim = kInvalidEventId;
  s.schedule_at(Time::nanoseconds(10), [&] { s.cancel(victim); });
  victim = s.schedule_at(Time::nanoseconds(20), [&] { victim_fired = true; });
  s.run();
  EXPECT_FALSE(victim_fired);
}

TEST(SchedulerStress, SelfRescheduleChainUnderCancellationNoise) {
  Scheduler s;
  Rng rng{303};
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 1000) s.schedule_in(Time::nanoseconds(100), tick);
  };
  s.schedule_at(Time::zero(), tick);
  // Interleave noise events, half of them cancelled.
  for (int i = 0; i < 5000; ++i) {
    const EventId id =
        s.schedule_at(Time::nanoseconds(rng.uniform_int(0, 100'000)), [] {});
    if (i % 2 == 0) s.cancel(id);
  }
  s.run();
  EXPECT_EQ(ticks, 1000);
}

TEST(SchedulerStress, RunUntilBoundaryExact) {
  Scheduler s;
  int fired = 0;
  for (int i = 1; i <= 100; ++i) {
    s.schedule_at(Time::nanoseconds(i * 10), [&] { ++fired; });
  }
  s.run_until(Time::nanoseconds(500));  // events at 10..500 inclusive
  EXPECT_EQ(fired, 50);
  s.run_until(Time::nanoseconds(505));
  EXPECT_EQ(fired, 50);
  s.run_until(Time::nanoseconds(1000));
  EXPECT_EQ(fired, 100);
}

TEST(SchedulerStress, InterleavedRunUntilWindows) {
  Scheduler s;
  Rng rng{404};
  std::vector<Time> fire_times;
  for (int i = 0; i < 5000; ++i) {
    s.schedule_at(Time::nanoseconds(rng.uniform_int(0, 1'000'000)),
                  [&] { fire_times.push_back(s.now()); });
  }
  for (int w = 1; w <= 10; ++w) {
    s.run_until(Time::nanoseconds(w * 100'000));
    EXPECT_EQ(s.now(), Time::nanoseconds(w * 100'000));
  }
  EXPECT_EQ(fire_times.size(), 5000u);
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_LE(fire_times[i - 1], fire_times[i]);
  }
}

}  // namespace
}  // namespace xmp::sim
