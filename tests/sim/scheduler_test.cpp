#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xmp::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::microseconds(30), [&] { order.push_back(3); });
  s.schedule_at(Time::microseconds(10), [&] { order.push_back(1); });
  s.schedule_at(Time::microseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::microseconds(30));
}

TEST(Scheduler, FifoAmongEqualTimestamps) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(Time::microseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  Time fired = Time::zero();
  s.schedule_at(Time::microseconds(100), [&] {
    s.schedule_in(Time::microseconds(50), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, Time::microseconds(150));
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(Time::microseconds(10), [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.dispatched(), 0u);
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler s;
  s.cancel(kInvalidEventId);
  s.cancel(12345);
  bool ran = false;
  s.schedule_at(Time::microseconds(1), [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, StopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(Time::microseconds(i), [&] {
      if (++count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, RunUntilAdvancesClockEvenWhenIdle) {
  Scheduler s;
  s.run_until(Time::milliseconds(5));
  EXPECT_EQ(s.now(), Time::milliseconds(5));
}

TEST(Scheduler, RunUntilProcessesOnlyDueEvents) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(Time::microseconds(10), [&] { ++fired; });
  s.schedule_at(Time::microseconds(20), [&] { ++fired; });
  s.schedule_at(Time::microseconds(30), [&] { ++fired; });
  s.run_until(Time::microseconds(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), Time::microseconds(20));
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule_in(Time::nanoseconds(1), chain);
  };
  s.schedule_at(Time::zero(), chain);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.dispatched(), 100u);
}

TEST(Scheduler, PendingCountsLiveEventsOnly) {
  Scheduler s;
  const EventId a = s.schedule_at(Time::microseconds(1), [] {});
  s.schedule_at(Time::microseconds(2), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, CancelThenRescheduleReusesSlotSafely) {
  Scheduler s;
  bool stale_ran = false;
  bool fresh_ran = false;
  const EventId stale = s.schedule_at(Time::microseconds(10), [&] { stale_ran = true; });
  s.cancel(stale);
  // The freed slot is recycled for the next schedule; the stale id must not
  // alias it.
  const EventId fresh = s.schedule_at(Time::microseconds(20), [&] { fresh_ran = true; });
  s.cancel(stale);  // stale id, possibly same slot: must be a no-op
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_FALSE(stale_ran);
  EXPECT_TRUE(fresh_ran);
  EXPECT_NE(stale, fresh);
}

TEST(Scheduler, StaleIdAfterDispatchIsNoop) {
  Scheduler s;
  int fired = 0;
  const EventId a = s.schedule_at(Time::microseconds(1), [&] { ++fired; });
  s.run();
  // `a` was dispatched; its slot may now host a new event.
  bool ran = false;
  s.schedule_at(Time::microseconds(2), [&] { ran = true; });
  s.cancel(a);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RescheduleMovesEventAndKeepsId) {
  Scheduler s;
  std::vector<int> order;
  const EventId a = s.schedule_at(Time::microseconds(10), [&] { order.push_back(1); });
  s.schedule_at(Time::microseconds(20), [&] { order.push_back(2); });
  EXPECT_TRUE(s.reschedule(a, Time::microseconds(30)));  // push later
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_FALSE(s.reschedule(a, Time::microseconds(40)));  // already dispatched
}

TEST(Scheduler, RescheduleToEqualTimestampGoesLast) {
  // A rescheduled event re-enters the FIFO of its new timestamp at the
  // back, exactly as if it had been cancelled and scheduled afresh.
  Scheduler s;
  std::vector<int> order;
  const EventId a = s.schedule_at(Time::microseconds(5), [&] { order.push_back(0); });
  for (int i = 1; i <= 3; ++i) {
    s.schedule_at(Time::microseconds(10), [&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(s.reschedule(a, Time::microseconds(10)));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));
}

TEST(Scheduler, RescheduleEarlierDispatchesFirst) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::microseconds(10), [&] { order.push_back(1); });
  const EventId b = s.schedule_at(Time::microseconds(20), [&] { order.push_back(2); });
  EXPECT_TRUE(s.reschedule(b, Time::microseconds(5)));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Scheduler, StopAtHorizonFreezesClock) {
  Scheduler s;
  s.schedule_at(Time::microseconds(10), [&] { s.stop(); });
  s.schedule_at(Time::microseconds(20), [] {});
  s.run_until(Time::microseconds(50));
  // stop() freezes the clock at the stopping event, not the horizon.
  EXPECT_EQ(s.now(), Time::microseconds(10));
  EXPECT_EQ(s.pending(), 1u);
  // Resuming is allowed and picks up the remaining event.
  s.run_until(Time::microseconds(50));
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.now(), Time::microseconds(50));
}

TEST(Scheduler, CancelledHeadDoesNotBlockRunUntil) {
  Scheduler s;
  bool ran = false;
  const EventId a = s.schedule_at(Time::microseconds(1), [&] { ran = true; });
  s.cancel(a);
  s.schedule_at(Time::microseconds(2), [&] { ran = true; });
  s.run_until(Time::microseconds(3));
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace xmp::sim
