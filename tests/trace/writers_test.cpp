#include "trace/writers.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"
#include "core/export.hpp"

namespace xmp::trace {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path{std::string{"/tmp/xmp_test_"} + name} {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(CsvWriter, WritesHeaderAndRows) {
  TempFile f{"basic.csv"};
  {
    CsvWriter csv{f.path};
    csv.header({"a", "b", "c"});
    csv.field(std::int64_t{1}).field(2.5).field(std::string{"x"});
    csv.end_row();
  }
  EXPECT_EQ(slurp(f.path), "a,b,c\n1,2.5,x\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  TempFile f{"quotes.csv"};
  {
    CsvWriter csv{f.path};
    csv.field(std::string{"hello, world"}).field(std::string{"say \"hi\""});
    csv.end_row();
  }
  EXPECT_EQ(slurp(f.path), "\"hello, world\",\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, UnterminatedRowFlushedOnDestruction) {
  TempFile f{"flush.csv"};
  {
    CsvWriter csv{f.path};
    csv.field(std::int64_t{7});
  }
  EXPECT_EQ(slurp(f.path), "7\n");
}

TEST(JsonWriter, NestedStructure) {
  TempFile f{"nested.json"};
  {
    JsonWriter json{f.path};
    json.begin_object();
    json.kv("name", "xmp");
    json.kv("beta", std::int64_t{4});
    json.kv("ratio", 0.25);
    json.kv("enabled", true);
    json.key("subflows");
    json.begin_array();
    json.value(std::int64_t{1});
    json.value(std::int64_t{2});
    json.end_array();
    json.key("nested");
    json.begin_object();
    json.kv("k", std::int64_t{10});
    json.end_object();
    json.end_object();
  }
  const std::string s = slurp(f.path);
  EXPECT_NE(s.find("\"name\": \"xmp\""), std::string::npos);
  EXPECT_NE(s.find("\"subflows\": ["), std::string::npos);
  EXPECT_NE(s.find("\"k\": 10"), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST(JsonWriter, EscapesStrings) {
  TempFile f{"escape.json"};
  {
    JsonWriter json{f.path};
    json.begin_object();
    json.kv("text", "line\nbreak \"quoted\" back\\slash");
    json.end_object();
  }
  const std::string s = slurp(f.path);
  EXPECT_NE(s.find("\\n"), std::string::npos);
  EXPECT_NE(s.find("\\\""), std::string::npos);
  EXPECT_NE(s.find("\\\\"), std::string::npos);
}

TEST(JsonWriter, EmptyContainers) {
  TempFile f{"empty.json"};
  {
    JsonWriter json{f.path};
    json.begin_object();
    json.key("arr");
    json.begin_array();
    json.end_array();
    json.key("obj");
    json.begin_object();
    json.end_object();
    json.end_object();
  }
  const std::string s = slurp(f.path);
  EXPECT_NE(s.find("[]"), std::string::npos);
  EXPECT_NE(s.find("{}"), std::string::npos);
}

TEST(Export, FlowsCsvAndSummaryJsonRoundTrip) {
  core::ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.scheme.kind = workload::SchemeSpec::Kind::Xmp;
  cfg.pattern = core::Pattern::Random;
  cfg.rand_min_bytes = 50'000;
  cfg.rand_max_bytes = 100'000;
  cfg.duration = sim::Time::milliseconds(50);
  const auto res = core::run_experiment(cfg);

  TempFile csv{"flows.csv"};
  TempFile json{"summary.json"};
  core::export_flows_csv(res, csv.path);
  core::export_summary_json(cfg, res, json.path);

  const std::string csv_text = slurp(csv.path);
  // One header plus one line per flow.
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv_text.begin(), csv_text.end(), '\n')),
            res.flows.size() + 1);
  const std::string json_text = slurp(json.path);
  EXPECT_NE(json_text.find("\"pattern\": \"Random\""), std::string::npos);
  EXPECT_NE(json_text.find("\"avg_goodput_mbps\""), std::string::npos);
  EXPECT_EQ(std::count(json_text.begin(), json_text.end(), '{'),
            std::count(json_text.begin(), json_text.end(), '}'));
}

}  // namespace
}  // namespace xmp::trace
