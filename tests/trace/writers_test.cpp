#include "trace/writers.hpp"

#include <gtest/gtest.h>

#include "trace/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"
#include "core/export.hpp"
#include "util/mini_json.hpp"

namespace xmp::trace {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path{std::string{"/tmp/xmp_test_"} + name} {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(CsvWriter, WritesHeaderAndRows) {
  TempFile f{"basic.csv"};
  {
    CsvWriter csv{f.path};
    csv.header({"a", "b", "c"});
    csv.field(std::int64_t{1}).field(2.5).field(std::string{"x"});
    csv.end_row();
  }
  EXPECT_EQ(slurp(f.path), "a,b,c\n1,2.5,x\n");
}

TEST(CsvWriter, PublishesAtomicallyOnDestruction) {
  TempFile f{"atomic.csv"};
  std::remove(f.path.c_str());
  {
    CsvWriter csv{f.path};
    csv.header({"a"});
    csv.field(std::int64_t{1}).end_row();
    // Mid-write, only the staging file exists: a crash here leaves the
    // final path untouched instead of truncated.
    EXPECT_FALSE(std::ifstream{f.path}.good());
    EXPECT_TRUE(std::ifstream{f.path + ".tmp"}.good());
  }
  EXPECT_EQ(slurp(f.path), "a\n1\n");
  EXPECT_FALSE(std::ifstream{f.path + ".tmp"}.good());
}

TEST(JsonWriter, PublishesAtomicallyOnDestruction) {
  TempFile f{"atomic.json"};
  std::remove(f.path.c_str());
  {
    JsonWriter json{f.path};
    json.begin_object();
    json.kv("x", std::int64_t{1});
    json.end_object();
    EXPECT_FALSE(std::ifstream{f.path}.good());
    EXPECT_TRUE(std::ifstream{f.path + ".tmp"}.good());
  }
  EXPECT_NE(slurp(f.path).find("\"x\": 1"), std::string::npos);
  EXPECT_FALSE(std::ifstream{f.path + ".tmp"}.good());
}

TEST(AtomicFile, WriteFilePublishesContentAndCleansUp) {
  TempFile f{"atomic_write.txt"};
  std::string error;
  ASSERT_TRUE(atomic_write_file(f.path, "payload\n", &error)) << error;
  EXPECT_EQ(slurp(f.path), "payload\n");
  EXPECT_FALSE(std::ifstream{f.path + ".tmp"}.good());

  // Overwrite is atomic too: the old content is replaced wholesale.
  ASSERT_TRUE(atomic_write_file(f.path, "v2\n", &error)) << error;
  EXPECT_EQ(slurp(f.path), "v2\n");
}

TEST(AtomicFile, WriteFileFailsCleanlyOnBadDirectory) {
  std::string error;
  EXPECT_FALSE(atomic_write_file("/tmp/no_such_dir_xmp_test/out.txt", "x", &error));
  EXPECT_FALSE(error.empty());
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  TempFile f{"quotes.csv"};
  {
    CsvWriter csv{f.path};
    csv.field(std::string{"hello, world"}).field(std::string{"say \"hi\""});
    csv.end_row();
  }
  EXPECT_EQ(slurp(f.path), "\"hello, world\",\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesEmbeddedNewlinesPerRfc4180) {
  TempFile f{"newline.csv"};
  {
    CsvWriter csv{f.path};
    csv.field(std::string{"line1\nline2"}).field(std::string{"plain"});
    csv.end_row();
  }
  // The newline stays inside one quoted field — the record still ends with
  // exactly one terminating \n.
  EXPECT_EQ(slurp(f.path), "\"line1\nline2\",plain\n");
}

TEST(CsvWriter, QuoteOnlyAndEmptyFields) {
  TempFile f{"edge.csv"};
  {
    CsvWriter csv{f.path};
    csv.field(std::string{"\""}).field(std::string{}).field(std::string{","});
    csv.end_row();
  }
  EXPECT_EQ(slurp(f.path), "\"\"\"\",,\",\"\n");
}

TEST(CsvWriter, PlainFieldsAreNeverQuoted) {
  TempFile f{"plain.csv"};
  {
    CsvWriter csv{f.path};
    csv.field(std::string{"has space"}).field(std::string{"semi;colon"});
    csv.end_row();
  }
  // RFC 4180 only requires quoting for commas, quotes and line breaks;
  // gratuitous quoting would bloat large event dumps.
  EXPECT_EQ(slurp(f.path), "has space,semi;colon\n");
}

TEST(CsvWriter, UnterminatedRowFlushedOnDestruction) {
  TempFile f{"flush.csv"};
  {
    CsvWriter csv{f.path};
    csv.field(std::int64_t{7});
  }
  EXPECT_EQ(slurp(f.path), "7\n");
}

TEST(JsonWriter, NestedStructure) {
  TempFile f{"nested.json"};
  {
    JsonWriter json{f.path};
    json.begin_object();
    json.kv("name", "xmp");
    json.kv("beta", std::int64_t{4});
    json.kv("ratio", 0.25);
    json.kv("enabled", true);
    json.key("subflows");
    json.begin_array();
    json.value(std::int64_t{1});
    json.value(std::int64_t{2});
    json.end_array();
    json.key("nested");
    json.begin_object();
    json.kv("k", std::int64_t{10});
    json.end_object();
    json.end_object();
  }
  const std::string s = slurp(f.path);
  EXPECT_NE(s.find("\"name\": \"xmp\""), std::string::npos);
  EXPECT_NE(s.find("\"subflows\": ["), std::string::npos);
  EXPECT_NE(s.find("\"k\": 10"), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST(JsonWriter, EscapesStrings) {
  TempFile f{"escape.json"};
  {
    JsonWriter json{f.path};
    json.begin_object();
    json.kv("text", "line\nbreak \"quoted\" back\\slash");
    json.end_object();
  }
  const std::string s = slurp(f.path);
  EXPECT_NE(s.find("\\n"), std::string::npos);
  EXPECT_NE(s.find("\\\""), std::string::npos);
  EXPECT_NE(s.find("\\\\"), std::string::npos);
}

TEST(JsonWriter, ControlCharactersRoundTripViaUnicodeEscapes) {
  // RFC 8259: control characters below 0x20 without a short escape must be
  // \u-escaped; the mini parser decodes them back to the original bytes.
  const std::string raw{"bell\x07 esc\x1b unit\x1f tab\t"};
  TempFile f{"ctrl.json"};
  {
    JsonWriter json{f.path};
    json.begin_object();
    json.kv("text", raw);
    json.end_object();
  }
  const std::string s = slurp(f.path);
  EXPECT_NE(s.find("\\u0007"), std::string::npos);
  EXPECT_NE(s.find("\\u001b"), std::string::npos);
  EXPECT_NE(s.find("\\u001f"), std::string::npos);
  EXPECT_NE(s.find("\\t"), std::string::npos);
  const auto root = test::MiniJsonParser::parse(s);
  EXPECT_EQ(root.at("text").str, raw);
}

TEST(MiniJson, DecodesUnicodeEscapesIncludingSurrogatePairs) {
  const auto root = test::MiniJsonParser::parse(
      R"({"s": "\u0041\u00e9\u20ac\ud83d\ude00", "slash": "\/"})");
  // A (1 byte), é (2 bytes), € (3 bytes), 😀 (4 bytes via surrogate pair).
  EXPECT_EQ(root.at("s").str, "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
  EXPECT_EQ(root.at("slash").str, "/");
}

TEST(MiniJson, RejectsMalformedUnicodeEscapes) {
  EXPECT_THROW(test::MiniJsonParser::parse(R"({"s": "\u12"})"), std::runtime_error);
  EXPECT_THROW(test::MiniJsonParser::parse(R"({"s": "\uZZZZ"})"), std::runtime_error);
  // Unpaired / wrongly-paired surrogates are invalid JSON text.
  EXPECT_THROW(test::MiniJsonParser::parse(R"({"s": "\ud83d"})"), std::runtime_error);
  EXPECT_THROW(test::MiniJsonParser::parse(R"({"s": "\ud83dA"})"), std::runtime_error);
  EXPECT_THROW(test::MiniJsonParser::parse(R"({"s": "\ude00"})"), std::runtime_error);
}

TEST(JsonWriter, EmptyContainers) {
  TempFile f{"empty.json"};
  {
    JsonWriter json{f.path};
    json.begin_object();
    json.key("arr");
    json.begin_array();
    json.end_array();
    json.key("obj");
    json.begin_object();
    json.end_object();
    json.end_object();
  }
  const std::string s = slurp(f.path);
  EXPECT_NE(s.find("[]"), std::string::npos);
  EXPECT_NE(s.find("{}"), std::string::npos);
}

TEST(JsonWriter, OutputParsesBackStructurally) {
  TempFile f{"roundtrip.json"};
  {
    JsonWriter json{f.path};
    json.begin_object();
    json.kv("label", "a \"quoted\"\nvalue");
    json.kv("count", std::uint64_t{18446744073709551615ull});
    json.key("points");
    json.begin_array();
    json.value(0.125);
    json.value(std::int64_t{-3});
    json.value(false);
    json.end_array();
    json.end_object();
  }
  const auto root = test::MiniJsonParser::parse(slurp(f.path));
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("label").str, "a \"quoted\"\nvalue");
  ASSERT_EQ(root.at("points").array.size(), 3u);
  EXPECT_EQ(root.at("points").array[0].number, 0.125);
  EXPECT_EQ(root.at("points").array[1].number, -3.0);
  EXPECT_EQ(root.at("points").array[2].boolean, false);
}

#if !defined(NDEBUG) && GTEST_HAS_DEATH_TEST
// The nesting assertions only exist in debug builds (RelWithDebInfo defines
// NDEBUG); the asan/tsan lanes exercise these.
TEST(JsonWriterDeathTest, DanglingKeyBeforeEndObjectAsserts) {
  EXPECT_DEATH(
      {
        JsonWriter json{"/tmp/xmp_test_death1.json"};
        json.begin_object();
        json.key("orphan");
        json.end_object();  // a key must be followed by a value
      },
      "after_key_");
}

TEST(JsonWriterDeathTest, DoubleKeyAsserts) {
  EXPECT_DEATH(
      {
        JsonWriter json{"/tmp/xmp_test_death2.json"};
        json.begin_object();
        json.key("first");
        json.key("second");  // key after key, no value in between
      },
      "after_key_");
}
#endif

TEST(Export, FlowsCsvAndSummaryJsonRoundTrip) {
  core::ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.scheme.kind = workload::SchemeSpec::Kind::Xmp;
  cfg.pattern = core::Pattern::Random;
  cfg.rand_min_bytes = 50'000;
  cfg.rand_max_bytes = 100'000;
  cfg.duration = sim::Time::milliseconds(50);
  const auto res = core::run_experiment(cfg);

  TempFile csv{"flows.csv"};
  TempFile json{"summary.json"};
  core::export_flows_csv(res, csv.path);
  core::export_summary_json(cfg, res, json.path);

  const std::string csv_text = slurp(csv.path);
  // One header plus one line per flow.
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv_text.begin(), csv_text.end(), '\n')),
            res.flows.size() + 1);
  const std::string json_text = slurp(json.path);
  EXPECT_NE(json_text.find("\"pattern\": \"Random\""), std::string::npos);
  EXPECT_NE(json_text.find("\"avg_goodput_mbps\""), std::string::npos);
  EXPECT_EQ(std::count(json_text.begin(), json_text.end(), '{'),
            std::count(json_text.begin(), json_text.end(), '}'));
}

}  // namespace
}  // namespace xmp::trace
