#include "core/job_manifest.hpp"

#include <gtest/gtest.h>

#include "core/orchestrator.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace xmp::core {
namespace {

/// Fresh campaign directory under /tmp, removed on destruction.
struct TempDir {
  explicit TempDir(const char* name)
      : path{std::string{"/tmp/xmp_manifest_test_"} + name + "_" + std::to_string(::getpid())} {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

JobManifest sample_manifest() {
  JobManifest m;
  m.param = "mark-k";
  m.argv = {"--param=mark-k", "--values=5,10", "--out=ignored"};
  for (std::size_t i = 0; i < 2; ++i) {
    JobEntry j;
    j.index = i;
    j.value = 5.0 * static_cast<double>(i + 1);
    j.state = i == 0 ? JobState::Succeeded : JobState::Failed;
    j.attempts = static_cast<int>(i + 1);
    j.result_file = job_result_file(i);
    j.last_error = i == 0 ? "" : "signal 11";
    m.jobs.push_back(j);
  }
  return m;
}

TEST(JobManifest, RoundTripsThroughDisk) {
  const TempDir dir{"roundtrip"};
  const JobManifest in = sample_manifest();
  ASSERT_TRUE(in.save(dir.path));

  JobManifest out;
  std::string error;
  ASSERT_TRUE(JobManifest::load(dir.path, out, &error)) << error;
  EXPECT_EQ(out.param, in.param);
  EXPECT_EQ(out.argv, in.argv);
  ASSERT_EQ(out.jobs.size(), in.jobs.size());
  for (std::size_t i = 0; i < in.jobs.size(); ++i) {
    EXPECT_EQ(out.jobs[i].index, in.jobs[i].index);
    EXPECT_EQ(out.jobs[i].value, in.jobs[i].value);
    EXPECT_EQ(out.jobs[i].state, in.jobs[i].state);
    EXPECT_EQ(out.jobs[i].attempts, in.jobs[i].attempts);
    EXPECT_EQ(out.jobs[i].result_file, in.jobs[i].result_file);
    EXPECT_EQ(out.jobs[i].last_error, in.jobs[i].last_error);
  }
}

TEST(JobManifest, SaveLeavesNoTempFileBehind) {
  const TempDir dir{"notmp"};
  ASSERT_TRUE(sample_manifest().save(dir.path));
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/" + JobManifest::kFileName));
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/" + std::string{JobManifest::kFileName} +
                                       ".tmp"));
}

TEST(JobManifest, LoadRejectsMissingDirectory) {
  JobManifest out;
  std::string error;
  EXPECT_FALSE(JobManifest::load("/tmp/definitely_not_a_campaign_dir_321", out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JobManifest, LoadRejectsMalformedDocuments) {
  const TempDir dir{"malformed"};
  const auto write = [&](const std::string& text) {
    std::ofstream f{dir.path + "/" + JobManifest::kFileName};
    f << text;
  };
  JobManifest out;
  std::string error;

  write("this is not json");
  EXPECT_FALSE(JobManifest::load(dir.path, out, &error));

  write("[1, 2, 3]");
  EXPECT_FALSE(JobManifest::load(dir.path, out, &error));
  EXPECT_NE(error.find("object"), std::string::npos);

  write(R"({"version": 99, "param": "seed", "argv": [], "jobs": []})");
  EXPECT_FALSE(JobManifest::load(dir.path, out, &error));
  EXPECT_NE(error.find("version"), std::string::npos);

  // Sparse / out-of-order indices would desynchronise the grid.
  write(R"({"version": 1, "param": "seed", "argv": [],
            "jobs": [{"index": 1, "value": 2, "state": "pending"}]})");
  EXPECT_FALSE(JobManifest::load(dir.path, out, &error));
  EXPECT_NE(error.find("dense"), std::string::npos);

  write(R"({"version": 1, "param": "seed", "argv": [],
            "jobs": [{"index": 0, "value": 2, "state": "meditating"}]})");
  EXPECT_FALSE(JobManifest::load(dir.path, out, &error));
  EXPECT_NE(error.find("state"), std::string::npos);
}

TEST(JobManifest, StateNamesRoundTrip) {
  for (const JobState s : {JobState::Pending, JobState::Running, JobState::Succeeded,
                           JobState::Failed, JobState::Exhausted}) {
    JobState parsed;
    ASSERT_TRUE(parse_job_state(job_state_name(s), parsed));
    EXPECT_EQ(parsed, s);
  }
  JobState parsed;
  EXPECT_FALSE(parse_job_state("bogus", parsed));
}

TEST(RetryBackoff, DeterministicAndExponential) {
  // Same (job, attempt) always yields the same delay — resumable campaigns
  // must not depend on rand() state.
  EXPECT_EQ(retry_backoff_s(0.5, 0, 7), retry_backoff_s(0.5, 0, 7));
  EXPECT_EQ(retry_backoff_s(0.5, 3, 1), retry_backoff_s(0.5, 3, 1));

  for (std::size_t job = 0; job < 20; ++job) {
    for (int attempt = 0; attempt < 6; ++attempt) {
      const double d = retry_backoff_s(0.5, attempt, job);
      const double base = 0.5 * std::ldexp(1.0, attempt);
      // Jitter multiplies by [1.0, 1.5).
      EXPECT_GE(d, base) << "job " << job << " attempt " << attempt;
      EXPECT_LT(d, base * 1.5) << "job " << job << " attempt " << attempt;
    }
  }
}

TEST(RetryBackoff, JitterDecorrelatesJobs) {
  // Jobs failing simultaneously must not thunder-herd their retries: the
  // per-job jitter should spread them out.
  bool any_differ = false;
  for (std::size_t job = 1; job < 8; ++job) {
    if (retry_backoff_s(1.0, 0, job) != retry_backoff_s(1.0, 0, 0)) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

}  // namespace
}  // namespace xmp::core
