// The sharded conservative-sync engine (run_experiment_sharded).
//
// The load-bearing property is *worker-count invariance*: logical shards
// are fixed by the topology, so --shards=1, 2 and 4 must produce identical
// results, bit for bit — the golden fingerprint below pins the trajectory
// the same way determinism_test.cpp pins the serial engine's.
//
// The sharded trajectory is NOT byte-identical to the serial engine's:
// conservative synchronisation preserves every packet timestamp but not
// the serial engine's insertion-order tie-break among equal-timestamp
// events (cross-shard deliveries are enqueued at the barrier, giving them
// a different heap sequence number than an in-epoch schedule would). The
// two engines therefore follow statistically equivalent but distinct
// sample paths; MatchesSerialAggregates bounds the distance.

#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/handoff.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace xmp::core {
namespace {

ExperimentConfig sharded_cfg(int shards) {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.pattern = Pattern::Permutation;
  cfg.scheme.kind = workload::SchemeSpec::Kind::Xmp;
  cfg.scheme.subflows = 2;
  cfg.permutation_rounds = 1;
  cfg.perm_min_bytes = 250'000;
  cfg.perm_max_bytes = 500'000;
  cfg.duration = sim::Time::seconds(0.08);
  cfg.seed = 42;
  cfg.shards = shards;
  return cfg;
}

void expect_identical(const ExperimentResults& a, const ExperimentResults& b) {
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.goodput.count(), b.goodput.count());
  EXPECT_EQ(a.goodput.mean(), b.goodput.mean());
  EXPECT_EQ(a.goodput.percentile(50), b.goodput.percentile(50));
  EXPECT_EQ(a.sim_duration.ns(), b.sim_duration.ns());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.rtt_by_category[i].count(), b.rtt_by_category[i].count());
    EXPECT_EQ(a.rtt_by_category[i].mean(), b.rtt_by_category[i].mean());
    EXPECT_EQ(a.utilization_by_layer[i].mean(), b.utilization_by_layer[i].mean());
    EXPECT_EQ(a.queue_occupancy_by_layer[i].mean(), b.queue_occupancy_by_layer[i].mean());
  }
  EXPECT_EQ(a.drops.offered, b.drops.offered);
  EXPECT_EQ(a.drops.delivered, b.drops.delivered);
  EXPECT_EQ(a.switch_forwarded, b.switch_forwarded);
  // The shard accounting itself is worker-count independent.
  EXPECT_EQ(a.shard.logical_shards, b.shard.logical_shards);
  EXPECT_EQ(a.shard.epochs, b.shard.epochs);
  EXPECT_EQ(a.shard.barriers, b.shard.barriers);
  EXPECT_EQ(a.shard.handoff_packets, b.shard.handoff_packets);
  EXPECT_EQ(a.shard.micro_steps, b.shard.micro_steps);
  EXPECT_EQ(a.shard.replays, b.shard.replays);
}

TEST(ShardedEngine, WorkerCountInvariance) {
  const auto r1 = run_experiment(sharded_cfg(1));
  const auto r2 = run_experiment(sharded_cfg(2));
  const auto r4 = run_experiment(sharded_cfg(4));
  expect_identical(r1, r2);
  expect_identical(r1, r4);
}

TEST(ShardedEngine, GoldenShardedFingerprint) {
  const auto r = run_experiment(sharded_cfg(2));
  EXPECT_TRUE(r.sharded);
  EXPECT_EQ(r.shard.logical_shards, 4);
  EXPECT_DOUBLE_EQ(r.shard.lookahead_us, 40.0);
  EXPECT_EQ(r.events_dispatched, 63859u);
  EXPECT_EQ(r.flows.size(), 16u);
  EXPECT_EQ(r.goodput.count(), 16u);
  EXPECT_DOUBLE_EQ(r.goodput.mean(), 483.20222212422357);
  EXPECT_DOUBLE_EQ(r.goodput.percentile(50), 491.68590638081946);
  EXPECT_DOUBLE_EQ(r.sim_duration.sec(), 0.0083177600000000004);
  EXPECT_EQ(r.shard.epochs, 205u);
  EXPECT_EQ(r.shard.barriers, 206u);
  EXPECT_EQ(r.shard.handoff_packets, 6562u);
  EXPECT_EQ(r.shard.micro_steps, 7u);
  EXPECT_EQ(r.shard.replays, 0u);
  EXPECT_EQ(r.rtt_by_category[1].count(), 2u);
  EXPECT_DOUBLE_EQ(r.rtt_by_category[1].mean(), 0.37936899999999996);
  EXPECT_EQ(r.rtt_by_category[2].count(), 22u);
  EXPECT_DOUBLE_EQ(r.rtt_by_category[2].mean(), 0.62665386363636355);
  EXPECT_DOUBLE_EQ(r.utilization_by_layer[0].mean(), 0.3728936636786826);
  EXPECT_DOUBLE_EQ(r.queue_occupancy_by_layer[0].mean(), 0.84078766398645788);
  EXPECT_DOUBLE_EQ(r.queue_occupancy_by_layer[1].mean(), 0.95095674797060759);
}

// The serial engine's golden constants (determinism_test.cpp) pin its
// trajectory; the sharded engine must land on the same physics even though
// its equal-timestamp tie-breaks differ. Flow population and byte totals
// are exact; rate statistics agree to a few percent.
TEST(ShardedEngine, MatchesSerialAggregates) {
  auto serial_cfg = sharded_cfg(0);
  serial_cfg.shards = 0;
  const auto s = run_experiment(serial_cfg);
  const auto p = run_experiment(sharded_cfg(2));
  ASSERT_EQ(s.flows.size(), p.flows.size());
  ASSERT_EQ(s.goodput.count(), p.goodput.count());
  for (std::size_t i = 0; i < s.flows.size(); ++i) {
    EXPECT_EQ(s.flows[i].bytes, p.flows[i].bytes);
    EXPECT_EQ(s.flows[i].src_host, p.flows[i].src_host);
    EXPECT_EQ(s.flows[i].dst_host, p.flows[i].dst_host);
    EXPECT_EQ(s.flows[i].completed, p.flows[i].completed);
  }
  EXPECT_NEAR(p.goodput.mean() / s.goodput.mean(), 1.0, 0.05);
  EXPECT_NEAR(p.sim_duration.sec() / s.sim_duration.sec(), 1.0, 0.05);
  EXPECT_EQ(s.drops.queue, 0u);
  EXPECT_EQ(p.drops.queue, 0u);
}

// Control events landing exactly on epoch boundaries: with the RTT probe
// interval equal to the 40 us lookahead, every epoch ends exactly at a
// control event and the follow-on epoch starts with one due at its very
// first instant (the b == start empty-epoch path). The horizon is chosen
// off the 40 us grid so the final epoch is truncated mid-window.
TEST(ShardedEngine, ControlEventExactlyAtEpochEnd) {
  auto mk = [](int shards) {
    auto cfg = sharded_cfg(shards);
    cfg.rtt_sample_interval = sim::Time::microseconds(40);
    cfg.duration = sim::Time::microseconds(2'375);  // not a lookahead multiple
    return cfg;
  };
  const auto r1 = run_experiment(mk(1));
  const auto r2 = run_experiment(mk(2));
  expect_identical(r1, r2);
  EXPECT_EQ(r1.sim_duration.ns(), 2'375'000);
}

// A transient core-link failure mid-run: the kill lands mid-epoch (the
// control strand forces an epoch boundary at the fault instant, so the
// link flips state with the fabric quiesced), RTO timers scheduled many
// epochs ahead fire or are cancelled/rescheduled across epoch horizons,
// and the in-flight mirror of the downed boundary link drops its payload
// exactly like the serial engine's in-flight accounting does.
TEST(ShardedEngine, BoundaryLinkKillMidEpoch) {
  // Find a core (cross-shard) link id from a scratch build of the same tree.
  net::LinkId core_link = 0;
  {
    sim::Scheduler sched;
    net::Network netw{sched};
    topo::FatTree::Config tc;
    tc.k = 4;
    topo::FatTree tree{netw, tc};
    core_link = tree.links(topo::FatTree::Layer::Core)[0]->id();
  }
  auto mk = [core_link](int shards) {
    auto cfg = sharded_cfg(shards);
    faults::FaultEvent down;
    down.kind = faults::FaultEvent::Kind::LinkDown;
    down.at = sim::Time::microseconds(2'030);  // mid-epoch: off the 40 us grid
    down.target = static_cast<int>(core_link);
    faults::FaultEvent up = down;
    up.kind = faults::FaultEvent::Kind::LinkUp;
    up.at = sim::Time::microseconds(4'810);
    cfg.fault_plan.events = {down, up};
    cfg.scheme.dead_after_rtos = 0;  // keep subflows alive through the outage
    return cfg;
  };
  const auto r1 = run_experiment(mk(1));
  const auto r2 = run_experiment(mk(2));
  const auto r4 = run_experiment(mk(4));
  expect_identical(r1, r2);
  expect_identical(r1, r4);
  // The outage must actually have bitten: packets died on the wire.
  EXPECT_GT(r1.drops.fault + r1.drops.admin_down, 0u);
}

// Construction-time rejection: a zero-delay cross-shard link would make the
// conservative lookahead zero (no parallel window at all), so the fabric
// refuses to build, with exit code 2 and a one-line diagnostic.
TEST(ShardedEngineDeath, ZeroCrossShardDelayExits2) {
  EXPECT_EXIT(
      {
        net::ShardFabric fabric{4};
        fabric.note_cross_link(0, 1, sim::Time::zero(), 7);
      },
      ::testing::ExitedWithCode(2), "zero propagation delay");
}

}  // namespace
}  // namespace xmp::core
