#include "core/orchestrator.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/job_manifest.hpp"
#include "obs/metrics.hpp"
#include "trace/writers.hpp"

namespace xmp::core {
namespace {

struct TempDir {
  explicit TempDir(const char* name)
      : path{std::string{"/tmp/xmp_orch_test_"} + name + "_" + std::to_string(::getpid())} {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

/// The orchestrator never looks inside the configs — the injected child
/// body does all the work — so empty configs keep these tests fast and
/// independent of simulator timing.
std::vector<ExperimentConfig> dummy_grid(std::size_t n) {
  return std::vector<ExperimentConfig>(n);
}

JobManifest fresh_manifest(std::size_t n) {
  JobManifest m;
  m.param = "seed";
  for (std::size_t i = 0; i < n; ++i) {
    JobEntry j;
    j.index = i;
    j.value = static_cast<double>(i);
    m.jobs.push_back(j);
  }
  return m;
}

/// Child body that writes a well-formed result file and exits 0.
int write_result_and_succeed(std::size_t index, const std::string& result_path) {
  trace::JsonWriter json{result_path};
  json.begin_object();
  json.kv("index", static_cast<std::uint64_t>(index));
  json.kv("goodput_mbps", 100.0 + static_cast<double>(index));
  json.kv("events", static_cast<std::uint64_t>(1000 + index));
  json.end_object();
  return 0;
}

OrchestratorConfig fast_cfg(const std::string& dir) {
  OrchestratorConfig cfg;
  cfg.campaign_dir = dir;
  cfg.workers = 2;
  cfg.retries = 2;
  cfg.backoff_base_s = 0.01;  // keep retry waits test-sized
  cfg.poll_interval_s = 0.001;
  return cfg;
}

TEST(Orchestrator, AllJobsSucceedFirstAttempt) {
  const TempDir dir{"ok"};
  obs::MetricsRegistry metrics;
  auto cfg = fast_cfg(dir.path);
  cfg.metrics = &metrics;
  Orchestrator orch{cfg};

  auto manifest = fresh_manifest(4);
  const auto outcome = orch.run(
      dummy_grid(4), manifest,
      [](std::size_t i, const ExperimentConfig&, const std::string& path, int) {
        return write_result_and_succeed(i, path);
      });

  EXPECT_TRUE(outcome.complete());
  ASSERT_EQ(outcome.results.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(outcome.results[i].has_value()) << "job " << i;
    EXPECT_DOUBLE_EQ(outcome.results[i]->goodput_mbps, 100.0 + static_cast<double>(i));
    EXPECT_EQ(outcome.results[i]->value, static_cast<double>(i));
    EXPECT_EQ(outcome.jobs[i].state, JobState::Succeeded);
    EXPECT_EQ(outcome.jobs[i].attempts, 1);
  }
  EXPECT_EQ(metrics.counter("harness.spawns").get(), 4u);
  EXPECT_EQ(metrics.counter("harness.jobs_succeeded").get(), 4u);
  EXPECT_EQ(metrics.counter("harness.retries").get(), 0u);

  // The on-disk manifest reflects the final state.
  JobManifest reloaded;
  ASSERT_TRUE(JobManifest::load(dir.path, reloaded));
  for (const auto& j : reloaded.jobs) EXPECT_EQ(j.state, JobState::Succeeded);
}

TEST(Orchestrator, TransientFailureIsRetriedWithBackoff) {
  const TempDir dir{"retry"};
  obs::MetricsRegistry metrics;
  auto cfg = fast_cfg(dir.path);
  cfg.metrics = &metrics;
  Orchestrator orch{cfg};

  auto manifest = fresh_manifest(2);
  // Job 0 fails its first attempt (exit 7) and succeeds on the second;
  // `attempt` is passed into the child so no shared state is needed.
  const auto outcome = orch.run(
      dummy_grid(2), manifest,
      [](std::size_t i, const ExperimentConfig&, const std::string& path, int attempt) {
        if (i == 0 && attempt == 0) return 7;
        return write_result_and_succeed(i, path);
      });

  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.jobs[0].attempts, 2);
  EXPECT_EQ(outcome.jobs[0].state, JobState::Succeeded);
  EXPECT_EQ(outcome.jobs[1].attempts, 1);
  EXPECT_EQ(metrics.counter("harness.retries").get(), 1u);
  EXPECT_EQ(metrics.counter("harness.exits_nonzero").get(), 1u);
  EXPECT_EQ(metrics.counter("harness.spawns").get(), 3u);
}

TEST(Orchestrator, CrashingJobIsIsolatedAndReported) {
  const TempDir dir{"crash"};
  obs::MetricsRegistry metrics;
  auto cfg = fast_cfg(dir.path);
  cfg.retries = 1;
  cfg.metrics = &metrics;
  Orchestrator orch{cfg};

  auto manifest = fresh_manifest(3);
  const auto outcome = orch.run(
      dummy_grid(3), manifest,
      [](std::size_t i, const ExperimentConfig&, const std::string& path, int) {
        if (i == 1) std::abort();  // SIGABRT in the child, never the parent
        return write_result_and_succeed(i, path);
      });

  // The crash burns every attempt but the survivors are salvaged.
  EXPECT_FALSE(outcome.complete());
  ASSERT_EQ(outcome.incomplete.size(), 1u);
  EXPECT_EQ(outcome.incomplete[0], 1u);
  EXPECT_EQ(outcome.jobs[1].state, JobState::Exhausted);
  EXPECT_EQ(outcome.jobs[1].attempts, 2);  // 1 + retries
  EXPECT_NE(outcome.jobs[1].last_error.find("signal"), std::string::npos);
  EXPECT_TRUE(outcome.results[0].has_value());
  EXPECT_TRUE(outcome.results[2].has_value());
  EXPECT_EQ(metrics.counter("harness.crashes").get(), 2u);
  EXPECT_EQ(metrics.counter("harness.jobs_exhausted").get(), 1u);
}

TEST(Orchestrator, WatchdogKillsHungJobs) {
  const TempDir dir{"hang"};
  obs::MetricsRegistry metrics;
  auto cfg = fast_cfg(dir.path);
  cfg.workers = 2;
  cfg.retries = 1;
  cfg.job_timeout_s = 0.3;
  cfg.metrics = &metrics;
  Orchestrator orch{cfg};

  auto manifest = fresh_manifest(2);
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcome = orch.run(
      dummy_grid(2), manifest,
      [](std::size_t i, const ExperimentConfig&, const std::string& path, int) {
        if (i == 0) {
          std::this_thread::sleep_for(std::chrono::seconds{3600});  // hang forever
          return 0;
        }
        return write_result_and_succeed(i, path);
      });
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  // 2 attempts * 0.3 s timeout + backoff << 3600 s: the watchdog, not the
  // sleep, bounded the campaign.
  EXPECT_LT(elapsed, std::chrono::seconds{30});
  EXPECT_FALSE(outcome.complete());
  EXPECT_EQ(outcome.jobs[0].state, JobState::Exhausted);
  EXPECT_EQ(outcome.jobs[0].last_error, "timeout");
  EXPECT_TRUE(outcome.results[1].has_value());
  EXPECT_EQ(metrics.counter("harness.timeouts").get(), 2u);
}

TEST(Orchestrator, ExitZeroWithoutResultFileIsAFailure) {
  const TempDir dir{"noresult"};
  auto cfg = fast_cfg(dir.path);
  cfg.retries = 0;
  Orchestrator orch{cfg};

  auto manifest = fresh_manifest(1);
  const auto outcome = orch.run(dummy_grid(1), manifest,
                                [](std::size_t, const ExperimentConfig&, const std::string&,
                                   int) { return 0; /* "succeeds" but writes nothing */ });

  EXPECT_FALSE(outcome.complete());
  EXPECT_EQ(outcome.jobs[0].state, JobState::Exhausted);
  EXPECT_EQ(outcome.jobs[0].last_error, "missing result");
}

TEST(Orchestrator, ResumeSkipsSucceededJobs) {
  const TempDir dir{"resume"};

  // First campaign: job 1 exhausts (exit 9 every attempt), jobs 0/2 succeed.
  {
    auto cfg = fast_cfg(dir.path);
    cfg.retries = 0;
    Orchestrator orch{cfg};
    auto manifest = fresh_manifest(3);
    const auto outcome = orch.run(
        dummy_grid(3), manifest,
        [](std::size_t i, const ExperimentConfig&, const std::string& path, int) {
          if (i == 1) return 9;
          return write_result_and_succeed(i, path);
        });
    ASSERT_EQ(outcome.incomplete.size(), 1u);
  }

  // Resume with a healed job body: only job 1 may spawn again.
  JobManifest manifest;
  ASSERT_TRUE(JobManifest::load(dir.path, manifest));
  obs::MetricsRegistry metrics;
  auto cfg = fast_cfg(dir.path);
  cfg.metrics = &metrics;
  Orchestrator orch{cfg};
  const auto outcome = orch.run(
      dummy_grid(3), manifest,
      [](std::size_t i, const ExperimentConfig&, const std::string& path, int) {
        // gtest failures in the forked child are invisible to the parent;
        // a poisoned exit code makes an unexpected re-run fail the campaign.
        if (i != 1) return 77;
        return write_result_and_succeed(i, path);
      });

  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(metrics.counter("harness.jobs_resumed").get(), 2u);
  EXPECT_EQ(metrics.counter("harness.spawns").get(), 1u);
  // Salvaged results keep their original first-campaign payloads.
  EXPECT_DOUBLE_EQ(outcome.results[0]->goodput_mbps, 100.0);
  EXPECT_DOUBLE_EQ(outcome.results[2]->goodput_mbps, 102.0);
}

TEST(Orchestrator, ManifestGridSizeMismatchThrows) {
  const TempDir dir{"mismatch"};
  Orchestrator orch{fast_cfg(dir.path)};
  auto manifest = fresh_manifest(2);
  EXPECT_THROW((void)orch.run(dummy_grid(3), manifest), std::invalid_argument);
}

TEST(LoadJobResult, RejectsMissingAndMalformedFiles) {
  const TempDir dir{"loadresult"};
  JobResult r;
  std::string error;
  EXPECT_FALSE(load_job_result(dir.path + "/nope.json", r, &error));

  const std::string bad = dir.path + "/bad.json";
  {
    trace::JsonWriter json{bad};
    json.begin_object();
    json.kv("unrelated", 1.0);
    json.end_object();
  }
  EXPECT_FALSE(load_job_result(bad, r, &error));
  EXPECT_NE(error.find("not a job result"), std::string::npos);
}

}  // namespace
}  // namespace xmp::core
