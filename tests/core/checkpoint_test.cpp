// In-run checkpoint/restore (DESIGN.md §12).
//
// The contract under test: a run resumed from a snapshot produces results
// identical to the uninterrupted run — including the *bytes* of the next
// checkpoint it writes — and a damaged snapshot (truncated, bit-flipped,
// version- or config-mismatched) is rejected with a clean diagnostic, with
// newest_valid() falling back to the previous good file.

#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/scheduler.hpp"

namespace xmp::core {
namespace {

ExperimentConfig small_cfg(int shards = 0) {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.pattern = Pattern::Permutation;
  cfg.scheme.kind = workload::SchemeSpec::Kind::Xmp;
  cfg.scheme.subflows = 2;
  cfg.permutation_rounds = 1;
  cfg.perm_min_bytes = 250'000;
  cfg.perm_max_bytes = 500'000;
  cfg.duration = sim::Time::seconds(0.08);
  cfg.seed = 42;
  cfg.shards = shards;
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  const std::string d = ::testing::TempDir() + "xmp_" + name;
  std::filesystem::remove_all(d);
  std::filesystem::create_directories(d);
  return d;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

/// Every deterministic summary field the paper reports.
void expect_same_results(const ExperimentResults& a, const ExperimentResults& b) {
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.sim_duration.ns(), b.sim_duration.ns());
  EXPECT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.goodput.count(), b.goodput.count());
  EXPECT_EQ(a.goodput.mean(), b.goodput.mean());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.rtt_by_category[i].count(), b.rtt_by_category[i].count());
    EXPECT_EQ(a.rtt_by_category[i].mean(), b.rtt_by_category[i].mean());
    EXPECT_EQ(a.utilization_by_layer[i].mean(), b.utilization_by_layer[i].mean());
    EXPECT_EQ(a.queue_occupancy_by_layer[i].mean(), b.queue_occupancy_by_layer[i].mean());
  }
  EXPECT_EQ(a.drops.offered, b.drops.offered);
  EXPECT_EQ(a.drops.delivered, b.drops.delivered);
  EXPECT_EQ(a.switch_forwarded, b.switch_forwarded);
}

TEST(Checkpoint, SerialResumeMatchesUninterrupted) {
  const std::string dir_a = fresh_dir("serial_a");
  const std::string dir_b = fresh_dir("serial_b");

  auto cfg = small_cfg();
  cfg.checkpoint.every = sim::Time::seconds(0.002);
  cfg.checkpoint.dir = dir_a;
  const auto full = run_experiment(cfg);
  ASSERT_GE(full.ckpt.written, 2u);
  ASSERT_FALSE(full.ckpt.last_path.empty());

  // Resume from the FIRST snapshot into a second directory; the resumed run
  // must re-write every later checkpoint with identical bytes and finish
  // with identical results and lineage totals.
  auto cfg2 = small_cfg();
  cfg2.checkpoint.every = cfg.checkpoint.every;
  cfg2.checkpoint.dir = dir_b;
  cfg2.checkpoint.restore_path = dir_a + "/" + ckpt::file_name(1);
  const auto resumed = run_experiment(cfg2);

  EXPECT_TRUE(resumed.ckpt.restored);
  EXPECT_EQ(resumed.ckpt.restored_seq, 1u);
  expect_same_results(full, resumed);
  EXPECT_EQ(full.ckpt.written, resumed.ckpt.written);
  EXPECT_EQ(full.ckpt.bytes, resumed.ckpt.bytes);
  for (std::uint64_t s = 2; s <= full.ckpt.written; ++s) {
    const std::string a = slurp(dir_a + "/" + ckpt::file_name(s));
    const std::string b = slurp(dir_b + "/" + ckpt::file_name(s));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "checkpoint " << s << " diverged after restore";
  }
}

TEST(Checkpoint, ShardedResumeMatchesUninterrupted) {
  const std::string dir_a = fresh_dir("shard_a");
  const std::string dir_b = fresh_dir("shard_b");

  auto cfg = small_cfg(/*shards=*/2);
  cfg.checkpoint.every = sim::Time::seconds(0.002);
  cfg.checkpoint.dir = dir_a;
  const auto full = run_experiment(cfg);
  ASSERT_GE(full.ckpt.written, 2u);

  auto cfg2 = small_cfg(/*shards=*/2);
  cfg2.checkpoint.every = cfg.checkpoint.every;
  cfg2.checkpoint.dir = dir_b;
  cfg2.checkpoint.restore_path = dir_a + "/" + ckpt::file_name(1);
  const auto resumed = run_experiment(cfg2);

  EXPECT_TRUE(resumed.ckpt.restored);
  expect_same_results(full, resumed);
  EXPECT_EQ(full.shard.epochs, resumed.shard.epochs);
  EXPECT_EQ(full.shard.barriers, resumed.shard.barriers);
  EXPECT_EQ(full.shard.micro_steps, resumed.shard.micro_steps);
  EXPECT_EQ(full.ckpt.written, resumed.ckpt.written);
  for (std::uint64_t s = 2; s <= full.ckpt.written; ++s) {
    const std::string a = slurp(dir_a + "/" + ckpt::file_name(s));
    const std::string b = slurp(dir_b + "/" + ckpt::file_name(s));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "sharded checkpoint " << s << " diverged after restore";
  }
}

TEST(Checkpoint, ExternalStopWritesResumableSnapshot) {
  const std::string dir = fresh_dir("stop");

  // A stop flag raised before the first event: the engine halts at its
  // first quiescent point, writes a final checkpoint, and reports the
  // interruption instead of a completed run.
  std::atomic<bool> stop{true};
  auto cfg = small_cfg();
  cfg.checkpoint.dir = dir;
  cfg.checkpoint.stop_requested = &stop;
  const auto halted = run_experiment(cfg);
  EXPECT_TRUE(halted.ckpt.interrupted);
  ASSERT_EQ(halted.ckpt.written, 1u);

  // Resuming that snapshot runs to completion with the results of a plain
  // uninterrupted run.
  auto cfg2 = small_cfg();
  cfg2.checkpoint.restore_path = halted.ckpt.last_path;
  const auto resumed = run_experiment(cfg2);
  const auto plain = run_experiment(small_cfg());
  EXPECT_FALSE(resumed.ckpt.interrupted);
  expect_same_results(plain, resumed);
}

TEST(Checkpoint, CorruptionRejectedWithFallback) {
  const std::string dir = fresh_dir("corrupt");
  auto cfg = small_cfg();
  cfg.checkpoint.every = sim::Time::seconds(0.002);
  cfg.checkpoint.dir = dir;
  const auto full = run_experiment(cfg);
  ASSERT_GE(full.ckpt.written, 2u);
  const std::uint64_t fp = ckpt::config_fingerprint(cfg);
  const std::string newest = dir + "/" + ckpt::file_name(full.ckpt.written);
  const std::string prev = dir + "/" + ckpt::file_name(full.ckpt.written - 1);

  // Pristine: both probe clean, newest_valid picks the highest seq.
  ckpt::Header h;
  std::string err;
  ASSERT_TRUE(ckpt::probe_file(newest, fp, h, &err)) << err;
  EXPECT_EQ(ckpt::newest_valid(dir, fp), newest);

  // Bit-flip one payload byte: CRC mismatch, one-line diagnostic, and
  // newest_valid falls back to the previous good snapshot.
  const std::string pristine = slurp(newest);
  ASSERT_GT(pristine.size(), ckpt::kHeaderBytes + 8);
  {
    std::string bad = pristine;
    bad[ckpt::kHeaderBytes + 7] = static_cast<char>(bad[ckpt::kHeaderBytes + 7] ^ 0x20);
    std::ofstream{newest, std::ios::binary} << bad;
  }
  err.clear();
  EXPECT_FALSE(ckpt::probe_file(newest, fp, h, &err));
  EXPECT_NE(err.find("CRC"), std::string::npos) << err;
  EXPECT_EQ(ckpt::newest_valid(dir, fp), prev);

  // Truncation: rejected, same fallback.
  std::ofstream{newest, std::ios::binary} << pristine.substr(0, pristine.size() / 2);
  EXPECT_FALSE(ckpt::probe_file(newest, fp, h, &err));
  EXPECT_EQ(ckpt::newest_valid(dir, fp), prev);

  // Future format version: rejected before any payload is touched.
  {
    std::string bad = pristine;
    bad[4] = static_cast<char>(bad[4] + 1);  // version u32 LE at offset 4
    std::ofstream{newest, std::ios::binary} << bad;
  }
  err.clear();
  EXPECT_FALSE(ckpt::probe_file(newest, fp, h, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;

  // Config-fingerprint mismatch (e.g. a different seed): rejected.
  std::ofstream{newest, std::ios::binary} << pristine;
  EXPECT_FALSE(ckpt::probe_file(newest, fp + 1, h, &err));

  // Every candidate damaged: newest_valid reports "nothing usable".
  std::ofstream{prev, std::ios::binary} << std::string{"garbage"};
  std::ofstream{newest, std::ios::binary} << std::string{"garbage"};
  for (std::uint64_t s = 1; s <= full.ckpt.written; ++s) {
    std::ofstream{dir + "/" + ckpt::file_name(s), std::ios::binary} << std::string{"x"};
  }
  EXPECT_EQ(ckpt::newest_valid(dir, fp), "");
}

TEST(Checkpoint, SchedulerPendingKeyRoundTrip) {
  using sim::Time;
  sim::Scheduler a;
  std::vector<int> order;
  a.schedule_at(Time::microseconds(10), [&] { order.push_back(1); });
  const sim::EventId e2 = a.schedule_at(Time::microseconds(30), [&] { order.push_back(2); });
  const sim::EventId e3 = a.schedule_at(Time::microseconds(30), [&] { order.push_back(3); });
  a.run_until(Time::microseconds(20));  // fires event 1; 2 and 3 stay pending

  sim::Scheduler::PendingKey k2;
  sim::Scheduler::PendingKey k3;
  ASSERT_TRUE(a.key_of(e2, k2));
  ASSERT_TRUE(a.key_of(e3, k3));

  // Restore into a virgin scheduler — deliberately re-arming in the
  // *opposite* order; the saved (t, seq) keys must still reproduce the
  // original equal-timestamp FIFO order.
  sim::Scheduler b;
  b.restore_clock(a.now(), a.next_seq(), a.dispatched());
  std::vector<int> replay;
  b.restore_at(Time::nanoseconds(k3.t_ns), k3.seq, [&] { replay.push_back(3); });
  b.restore_at(Time::nanoseconds(k2.t_ns), k2.seq, [&] { replay.push_back(2); });
  b.run_until(Time::microseconds(50));
  EXPECT_EQ(replay, (std::vector<int>{2, 3}));
  EXPECT_EQ(b.now().ns(), Time::microseconds(50).ns());
  EXPECT_EQ(b.dispatched(), a.dispatched() + 2);
}

}  // namespace
}  // namespace xmp::core
