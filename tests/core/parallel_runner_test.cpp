#include "core/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace xmp::core {
namespace {

ExperimentConfig small_cfg(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.pattern = Pattern::Permutation;
  cfg.scheme.kind = workload::SchemeSpec::Kind::Xmp;
  cfg.scheme.subflows = 2;
  cfg.permutation_rounds = 1;
  cfg.perm_min_bytes = 50'000;
  cfg.perm_max_bytes = 100'000;
  cfg.duration = sim::Time::seconds(0.05);
  cfg.seed = seed;
  return cfg;
}

TEST(ParallelRunner, MatchesSerialLoopInSubmissionOrder) {
  const auto configs = seed_sweep(small_cfg(0), {7, 11, 13, 17, 19});

  std::vector<ExperimentResults> serial;
  serial.reserve(configs.size());
  for (const auto& cfg : configs) serial.push_back(run_experiment(cfg));

  const ParallelRunner runner{4};
  const auto parallel = runner.run(configs);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].events_dispatched, serial[i].events_dispatched) << "config " << i;
    EXPECT_EQ(parallel[i].goodput.count(), serial[i].goodput.count()) << "config " << i;
    EXPECT_EQ(parallel[i].goodput.mean(), serial[i].goodput.mean()) << "config " << i;
    EXPECT_EQ(parallel[i].sim_duration, serial[i].sim_duration) << "config " << i;
  }
}

TEST(ParallelRunner, MoreWorkersThanConfigs) {
  const auto configs = seed_sweep(small_cfg(0), {3, 5});
  const ParallelRunner runner{8};
  const auto results = runner.run(configs);
  ASSERT_EQ(results.size(), 2u);
  // Different seeds must give different trajectories (sanity that the
  // per-config seed actually landed).
  EXPECT_NE(results[0].events_dispatched, results[1].events_dispatched);
}

TEST(ParallelRunner, EmptyInputAndDefaults) {
  const ParallelRunner runner;  // hardware_concurrency
  EXPECT_GE(runner.workers(), 1u);
  EXPECT_TRUE(runner.run({}).empty());
}

TEST(ParallelRunner, ProgressReportsEveryConfigOnce) {
  const auto configs = seed_sweep(small_cfg(0), {1, 2, 3});
  const ParallelRunner runner{2};
  std::vector<int> seen(configs.size(), 0);
  std::atomic<std::size_t> calls{0};
  (void)runner.run(configs, [&](std::size_t index, std::size_t done, std::size_t total) {
    ASSERT_LT(index, seen.size());
    ++seen[index];
    EXPECT_GE(done, 1u);
    EXPECT_LE(done, total);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), configs.size());
  for (const int n : seen) EXPECT_EQ(n, 1);
}

TEST(ParallelRunner, SeedSweepExpandsSeeds) {
  const auto configs = seed_sweep(small_cfg(0), {100, 200});
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0].seed, 100u);
  EXPECT_EQ(configs[1].seed, 200u);
  EXPECT_EQ(configs[0].fat_tree_k, 4);
}

TEST(ParallelRunnerForEach, ZeroTasksIsANoOp) {
  const ParallelRunner runner{4};
  std::atomic<int> ran{0};
  std::atomic<int> progressed{0};
  runner.for_each(
      0, [&](std::size_t) { ran.fetch_add(1); },
      [&](std::size_t, std::size_t, std::size_t) { progressed.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(progressed.load(), 0);
}

TEST(ParallelRunnerForEach, FewerTasksThanWorkersRunsEachOnce) {
  const ParallelRunner runner{16};
  std::vector<std::atomic<int>> hits(3);
  runner.for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunnerForEach, ThrowingTaskSurfacesAfterOthersComplete) {
  const ParallelRunner runner{4};
  std::atomic<int> completed{0};
  EXPECT_THROW(
      runner.for_each(8,
                      [&](std::size_t i) {
                        if (i == 3) throw std::runtime_error("task 3 boom");
                        completed.fetch_add(1);
                      }),
      std::runtime_error);
  // The failure must not abandon the remaining tasks: everything except the
  // throwing index still ran.
  EXPECT_EQ(completed.load(), 7);
}

TEST(ParallelRunnerForEach, FirstExceptionWinsWhenSeveralThrow) {
  const ParallelRunner runner{1};  // serial fallback: deterministic order
  try {
    runner.for_each(4, [&](std::size_t i) { throw std::runtime_error("boom " + std::to_string(i)); });
    FAIL() << "expected for_each to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 0");
  }
}

TEST(ParallelRunnerForEach, ReentrantSubmissionFromInsideATask) {
  // A task may spin up its own runner (e.g. a sweep job that fans out
  // sub-analyses). The pools must not share state that deadlocks.
  const ParallelRunner outer{3};
  std::atomic<int> inner_runs{0};
  outer.for_each(3, [&](std::size_t) {
    const ParallelRunner inner{2};
    inner.for_each(4, [&](std::size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 12);
}

TEST(ParallelRunnerForEach, ProgressCountsReachTotal) {
  const ParallelRunner runner{4};
  std::atomic<std::size_t> max_done{0};
  runner.for_each(
      10, [](std::size_t) {},
      [&](std::size_t, std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 10u);
        if (done > max_done.load()) max_done.store(done);
      });
  EXPECT_EQ(max_done.load(), 10u);
}

}  // namespace
}  // namespace xmp::core
