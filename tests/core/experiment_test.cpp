#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace xmp::core {
namespace {

ExperimentConfig small_config(Pattern p, workload::SchemeSpec::Kind kind, int subflows = 2) {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.scheme.kind = kind;
  cfg.scheme.subflows = subflows;
  cfg.pattern = p;
  cfg.permutation_rounds = 1;
  cfg.perm_min_bytes = 100'000;
  cfg.perm_max_bytes = 300'000;
  cfg.rand_min_bytes = 100'000;
  cfg.rand_max_bytes = 400'000;
  cfg.duration = sim::Time::milliseconds(150);
  cfg.incast.n_jobs = 2;
  cfg.incast.servers_per_job = 4;
  return cfg;
}

TEST(Experiment, PermutationRunCollectsGoodput) {
  const auto res = run_experiment(small_config(Pattern::Permutation,
                                               workload::SchemeSpec::Kind::Xmp));
  EXPECT_EQ(res.goodput.count(), 16u);  // k=4: 16 hosts, 1 flow each
  EXPECT_GT(res.avg_goodput_mbps(), 50.0);
  EXPECT_GT(res.utilization_by_layer[0].count(), 0u);
  EXPECT_EQ(res.flows.size(), res.flow_category.size());
  EXPECT_EQ(res.flows.size(), res.flow_scheme.size());
}

TEST(Experiment, RandomRunKeepsIssuingFlows) {
  const auto res = run_experiment(small_config(Pattern::Random,
                                               workload::SchemeSpec::Kind::Dctcp));
  EXPECT_GT(res.flows.size(), 16u);  // re-issue on completion
  EXPECT_GT(res.goodput.count(), 0u);
}

TEST(Experiment, IncastRunProducesJobs) {
  const auto res = run_experiment(small_config(Pattern::Incast,
                                               workload::SchemeSpec::Kind::Xmp));
  EXPECT_GT(res.jobs.size(), 0u);
  EXPECT_GT(res.avg_job_completion_ms(), 0.0);
  EXPECT_LE(res.job_completion_over_ms(300.0), 1.0);
  bool saw_small = false;
  for (const auto& rec : res.flows) saw_small |= !rec.large;
  EXPECT_TRUE(saw_small);
}

TEST(Experiment, DeterministicForFixedSeed) {
  const auto a = run_experiment(small_config(Pattern::Random, workload::SchemeSpec::Kind::Xmp));
  const auto b = run_experiment(small_config(Pattern::Random, workload::SchemeSpec::Kind::Xmp));
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  EXPECT_DOUBLE_EQ(a.avg_goodput_mbps(), b.avg_goodput_mbps());
}

TEST(Experiment, SeedChangesOutcome) {
  auto cfg = small_config(Pattern::Random, workload::SchemeSpec::Kind::Xmp);
  const auto a = run_experiment(cfg);
  cfg.seed = 999;
  const auto b = run_experiment(cfg);
  EXPECT_NE(a.events_dispatched, b.events_dispatched);
}

TEST(Experiment, CoexistenceSplitsSenders) {
  auto cfg = small_config(Pattern::Random, workload::SchemeSpec::Kind::Xmp);
  workload::SchemeSpec lia;
  lia.kind = workload::SchemeSpec::Kind::Lia;
  lia.subflows = 2;
  cfg.scheme_b = lia;
  const auto res = run_experiment(cfg);
  EXPECT_GT(res.goodput.count(), 0u);
  EXPECT_GT(res.goodput_b.count(), 0u);
  // Even hosts run scheme A, odd hosts scheme B.
  for (std::size_t i = 0; i < res.flows.size(); ++i) {
    if (!res.flows[i].large) continue;
    EXPECT_EQ(res.flows[i].src_host % 2, res.flow_scheme[i]);
  }
}

TEST(Experiment, RttSamplesLandInCategories) {
  const auto res = run_experiment(small_config(Pattern::Permutation,
                                               workload::SchemeSpec::Kind::Dctcp));
  std::size_t total = 0;
  for (const auto& d : res.rtt_by_category) total += d.count();
  EXPECT_GT(total, 0u);
}

TEST(Experiment, PatternNames) {
  EXPECT_STREQ(pattern_name(Pattern::Permutation), "Permutation");
  EXPECT_STREQ(pattern_name(Pattern::Random), "Random");
  EXPECT_STREQ(pattern_name(Pattern::Incast), "Incast");
}

}  // namespace
}  // namespace xmp::core
