// Hostile-input hardening of core/mini_json.hpp: nesting bombs, NUL bytes,
// truncations and broken \u escapes must all fail with a clean
// std::runtime_error — never a crash, stack overflow or out-of-bounds read.

#include "core/mini_json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace xmp::core::json {
namespace {

std::string error_of(const std::string& doc) {
  try {
    (void)MiniJsonParser::parse(doc);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

std::string nested_array(std::size_t depth) {
  std::string doc;
  doc.reserve(2 * depth + 1);
  doc.append(depth, '[');
  doc += '1';
  doc.append(depth, ']');
  return doc;
}

TEST(MiniJson, NestingBombRejected) {
  // A "[[[[..." bomb past the cap must fail, not overflow the stack. An
  // unclosed bomb (no payload, no closers) must fail the same way.
  EXPECT_NE(error_of(nested_array(MiniJsonParser::kMaxDepth + 1)).find("nesting too deep"),
            std::string::npos);
  EXPECT_NE(error_of(std::string(100'000, '[')).find("nesting too deep"), std::string::npos);
  std::string obj_bomb;
  for (int i = 0; i < 100'000; ++i) obj_bomb += "{\"k\":";
  EXPECT_NE(error_of(obj_bomb).find("nesting too deep"), std::string::npos);
}

TEST(MiniJson, DeepButLegalNestingAccepted) {
  const JsonValue v = MiniJsonParser::parse(nested_array(MiniJsonParser::kMaxDepth - 1));
  EXPECT_TRUE(v.is_array());
  // Mixed object/array nesting shares the one depth budget.
  const std::string mixed = R"({"a":[{"b":[{"c":1}]}]})";
  EXPECT_TRUE(MiniJsonParser::parse(mixed).is_object());
}

TEST(MiniJson, ControlCharactersInStringsRejected) {
  std::string with_nul = "\"ab";
  with_nul += '\0';
  with_nul += "cd\"";
  EXPECT_NE(error_of(with_nul).find("unescaped control character"), std::string::npos);
  EXPECT_NE(error_of("\"line\nbreak\"").find("unescaped control character"), std::string::npos);
  EXPECT_NE(error_of("\"tab\there\"").find("unescaped control character"), std::string::npos);
  // The escaped forms remain fine.
  EXPECT_EQ(MiniJsonParser::parse(R"("a\nb\tc\u0000d")").str, std::string("a\nb\tc\0d", 7));
}

TEST(MiniJson, TruncatedDocumentsRejected) {
  for (const char* doc : {"", "{", "[", "[1,", "{\"a\":", "{\"a\":1,", "\"abc", "\"esc\\",
                          "tru", "nul", "-"}) {
    EXPECT_FALSE(error_of(doc).empty()) << "accepted truncated doc: " << doc;
  }
}

TEST(MiniJson, BrokenUnicodeEscapesRejected) {
  EXPECT_NE(error_of("\"\\u12").find("truncated \\u escape"), std::string::npos);
  EXPECT_NE(error_of("\"\\u12G4\"").find("bad hex digit"), std::string::npos);
  EXPECT_NE(error_of("\"\\uD800\"").find("high surrogate"), std::string::npos);
  EXPECT_NE(error_of("\"\\uD800\\n\"").find("high surrogate"), std::string::npos);
  EXPECT_NE(error_of("\"\\uDC00\"").find("unpaired low surrogate"), std::string::npos);
  EXPECT_NE(error_of("\"\\uD800\\uD801\"").find("invalid low surrogate"), std::string::npos);
  // A well-formed pair still decodes (U+1F600, 4-byte UTF-8).
  EXPECT_EQ(MiniJsonParser::parse("\"\\uD83D\\uDE00\"").str, "\xF0\x9F\x98\x80");
}

TEST(MiniJson, TrailingGarbageRejected) {
  EXPECT_NE(error_of("{} x").find("trailing characters"), std::string::npos);
  EXPECT_NE(error_of("1 2").find("trailing characters"), std::string::npos);
}

TEST(MiniJson, ErrorsCarryAnOffset) {
  EXPECT_NE(error_of("[1, ]").find("at offset"), std::string::npos);
  EXPECT_NE(error_of("{\"k\" 1}").find("at offset"), std::string::npos);
}

}  // namespace
}  // namespace xmp::core::json
