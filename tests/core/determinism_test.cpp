// Bit-reproducibility of run_experiment.
//
// The scheduler guarantees FIFO among equal timestamps and the RNG is a
// seeded instance, so the same config must produce the same trajectory —
// event for event — on every run. The golden constants below were recorded
// from the seed implementation (plain priority_queue scheduler, deque
// queues); the rewritten event engine must reproduce them exactly, which
// pins the dispatch order across the whole stack, not just mean goodput.

#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace xmp::core {
namespace {

ExperimentConfig golden_cfg(Pattern p, bool coexist) {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.pattern = p;
  cfg.scheme.kind = workload::SchemeSpec::Kind::Xmp;
  cfg.scheme.subflows = 2;
  if (coexist) {
    workload::SchemeSpec b;
    b.kind = workload::SchemeSpec::Kind::Dctcp;
    cfg.scheme_b = b;
  }
  cfg.permutation_rounds = 1;
  cfg.perm_min_bytes = 250'000;
  cfg.perm_max_bytes = 500'000;
  cfg.rand_min_bytes = 250'000;
  cfg.rand_max_bytes = 750'000;
  cfg.duration = sim::Time::seconds(0.08);
  cfg.seed = 42;
  return cfg;
}

TEST(Determinism, SameSeedSameTrajectory) {
  const auto cfg = golden_cfg(Pattern::Permutation, false);
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.goodput.count(), b.goodput.count());
  EXPECT_EQ(a.goodput.mean(), b.goodput.mean());
  EXPECT_EQ(a.goodput.percentile(50), b.goodput.percentile(50));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.rtt_by_category[i].count(), b.rtt_by_category[i].count());
    EXPECT_EQ(a.rtt_by_category[i].mean(), b.rtt_by_category[i].mean());
    EXPECT_EQ(a.utilization_by_layer[i].mean(), b.utilization_by_layer[i].mean());
    EXPECT_EQ(a.queue_occupancy_by_layer[i].mean(), b.queue_occupancy_by_layer[i].mean());
  }
}

TEST(Determinism, GoldenPermutationFingerprint) {
  const auto r = run_experiment(golden_cfg(Pattern::Permutation, false));
  EXPECT_EQ(r.events_dispatched, 63883u);
  EXPECT_EQ(r.flows.size(), 16u);
  EXPECT_EQ(r.goodput.count(), 16u);
  EXPECT_DOUBLE_EQ(r.goodput.mean(), 470.51053371378657);
  EXPECT_DOUBLE_EQ(r.goodput.percentile(50), 450.96301798694753);
  EXPECT_EQ(r.rtt_by_category[1].count(), 4u);
  EXPECT_DOUBLE_EQ(r.rtt_by_category[1].mean(), 0.36338550000000003);
  EXPECT_EQ(r.rtt_by_category[2].count(), 22u);
  EXPECT_DOUBLE_EQ(r.rtt_by_category[2].mean(), 0.61462127272727285);
  EXPECT_DOUBLE_EQ(r.utilization_by_layer[0].mean(), 0.36892674989532981);
  EXPECT_DOUBLE_EQ(r.queue_occupancy_by_layer[0].mean(), 0.828602557758916);
  EXPECT_DOUBLE_EQ(r.queue_occupancy_by_layer[1].mean(), 0.92202427396947428);
  EXPECT_DOUBLE_EQ(r.sim_duration.sec(), 0.0084073599999999991);
}

TEST(Determinism, GoldenRandomCoexistFingerprint) {
  const auto r = run_experiment(golden_cfg(Pattern::Random, true));
  EXPECT_EQ(r.events_dispatched, 613185u);
  EXPECT_EQ(r.flows.size(), 146u);
  EXPECT_EQ(r.goodput.count(), 72u);
  EXPECT_DOUBLE_EQ(r.goodput.mean(), 415.91802734746858);
  EXPECT_DOUBLE_EQ(r.goodput.percentile(50), 374.32499354060803);
  EXPECT_EQ(r.goodput_b.count(), 58u);
  EXPECT_DOUBLE_EQ(r.goodput_b.mean(), 339.70831575294449);
  EXPECT_EQ(r.rtt_by_category[0].count(), 3u);
  EXPECT_EQ(r.rtt_by_category[1].count(), 34u);
  EXPECT_EQ(r.rtt_by_category[2].count(), 328u);
  EXPECT_DOUBLE_EQ(r.rtt_by_category[2].mean(), 0.67494507926829295);
  EXPECT_DOUBLE_EQ(r.utilization_by_layer[1].mean(), 0.33621168750000002);
  EXPECT_DOUBLE_EQ(r.queue_occupancy_by_layer[2].mean(), 0.46782806249999992);
  EXPECT_DOUBLE_EQ(r.sim_duration.sec(), 0.080000000000000002);
}

}  // namespace
}  // namespace xmp::core
