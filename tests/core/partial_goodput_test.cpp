// Tests for partial-flow goodput accounting (survivorship-bias control)
// and the experiment facade's lesser-used paths.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/flow_manager.hpp"

namespace xmp::core {
namespace {

TEST(PartialGoodput, UnfinishedFlowsAreCounted) {
  // A Random run cut off early has many unfinished flows; their partial
  // rates must appear in the goodput distribution (subject to the minimum
  // progress filter).
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.scheme.kind = workload::SchemeSpec::Kind::Dctcp;
  cfg.pattern = Pattern::Random;
  cfg.rand_min_bytes = 5'000'000;  // big enough that none finish in 60 ms
  cfg.rand_max_bytes = 8'000'000;
  cfg.duration = sim::Time::milliseconds(60);
  const auto res = run_experiment(cfg);

  std::size_t completed = 0;
  for (const auto& rec : res.flows) completed += rec.completed ? 1 : 0;
  EXPECT_EQ(completed, 0u);
  // Yet goodput has samples: the partial rates of the running flows.
  EXPECT_GT(res.goodput.count(), 0u);
  EXPECT_GT(res.avg_goodput_mbps(), 0.0);
}

TEST(PartialGoodput, BarelyStartedFlowsAreFiltered) {
  // With a tiny horizon nothing passes the >= 20 ms / >= 128 segments
  // progress filter, so the distribution stays empty rather than noisy.
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.scheme.kind = workload::SchemeSpec::Kind::Dctcp;
  cfg.pattern = Pattern::Random;
  cfg.rand_min_bytes = 5'000'000;
  cfg.rand_max_bytes = 8'000'000;
  cfg.duration = sim::Time::milliseconds(5);
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.goodput.count(), 0u);
}

TEST(PartialGoodput, MixOfCompleteAndPartial) {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.scheme.kind = workload::SchemeSpec::Kind::Xmp;
  cfg.pattern = Pattern::Random;
  cfg.rand_min_bytes = 400'000;
  cfg.rand_max_bytes = 6'000'000;  // some finish within the horizon, some not
  cfg.duration = sim::Time::milliseconds(120);
  const auto res = run_experiment(cfg);
  std::size_t completed = 0;
  for (const auto& rec : res.flows) completed += (rec.large && rec.completed) ? 1 : 0;
  EXPECT_GT(completed, 0u);
  EXPECT_GT(res.goodput.count(), completed);  // partials included on top
}

TEST(Experiment, QueueCapacityIsHonoured) {
  // Same scenario, queue 20 vs queue 200: the small queue must show drops
  // for the non-ECT (TCP) traffic.
  auto run = [](std::size_t cap) {
    ExperimentConfig cfg;
    cfg.fat_tree_k = 4;
    cfg.scheme.kind = workload::SchemeSpec::Kind::Tcp;
    cfg.pattern = Pattern::Random;
    cfg.rand_min_bytes = 500'000;
    cfg.rand_max_bytes = 2'000'000;
    cfg.queue_capacity = cap;
    cfg.duration = sim::Time::milliseconds(100);
    return run_experiment(cfg);
  };
  const auto small = run(20);
  const auto large = run(200);
  // A bigger buffer lets loss-driven TCP run faster (paper Table 2's
  // queue-size effect).
  EXPECT_GT(large.avg_goodput_mbps(), small.avg_goodput_mbps());
}

TEST(Experiment, MarkThresholdShiftsRtt) {
  auto run = [](std::size_t k) {
    ExperimentConfig cfg;
    cfg.fat_tree_k = 4;
    cfg.scheme.kind = workload::SchemeSpec::Kind::Xmp;
    cfg.pattern = Pattern::Random;
    cfg.rand_min_bytes = 500'000;
    cfg.rand_max_bytes = 2'000'000;
    cfg.mark_threshold = k;
    cfg.duration = sim::Time::milliseconds(100);
    const auto res = run_experiment(cfg);
    double worst = 0.0;
    for (const auto& d : res.rtt_by_category) {
      if (!d.empty()) worst = std::max(worst, d.percentile(50));
    }
    return worst;
  };
  // K = 40 allows ~4x the standing queue of K = 10: median RTT must rise.
  EXPECT_GT(run(40), run(10));
}

}  // namespace
}  // namespace xmp::core
