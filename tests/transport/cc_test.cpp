#include <gtest/gtest.h>

#include <memory>

#include "transport/cc/bos.hpp"
#include "transport/cc/dctcp.hpp"
#include "transport/cc/reno.hpp"
#include "transport/flow.hpp"
#include "transport/sender.hpp"
#include "util/fixtures.hpp"

namespace xmp::transport {
namespace {

using testutil::TwoHosts;

/// Real sender + real CC, driven by crafted acks. Data packets vanish into
/// an unregistered endpoint on host b (we only care about window state).
template <typename Cc>
struct CcHarness {
  TwoHosts t{10'000'000'000, sim::Time::microseconds(1), testutil::droptail_queue(100'000)};
  FixedSource source{10'000'000};
  Cc* cc = nullptr;
  std::unique_ptr<TcpSender> sender;

  explicit CcHarness(std::unique_ptr<Cc> policy, SenderConfig cfg = {}) {
    cc = policy.get();
    sender = std::make_unique<TcpSender>(t.sched, *t.a, t.b->id(), 1, 0, 0, source,
                                         std::move(policy), cfg);
    sender->start();
    drain();
  }

  void ack(std::int64_t ackno, bool ece = false, std::uint8_t ce = 0) {
    net::Packet p;
    p.flow = 1;
    p.type = net::PacketType::Ack;
    p.ack = ackno;
    p.ece = ece;
    p.ce_echo = ce;
    sender->handle(std::move(p));
    drain();
  }

  /// Ack everything outstanding (ends the current round) with no marks.
  void ack_round() { ack(sender->snd_nxt()); }

  void drain() { t.sched.run_until(t.sched.now() + sim::Time::microseconds(200)); }
};

// ---------------------------------------------------------------- Reno ---

TEST(RenoCc, SlowStartGrowsOnePerAck) {
  CcHarness<RenoCc> h{std::make_unique<RenoCc>()};
  const double w0 = h.sender->cwnd();
  h.ack(1);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), w0 + 1);
  h.ack(3);  // two segments, still +1 per *ack*
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), w0 + 2);
}

TEST(RenoCc, CongestionAvoidanceGrowsReciprocal) {
  CcHarness<RenoCc> h{std::make_unique<RenoCc>()};
  h.sender->set_ssthresh(5.0);  // force CA (cwnd 10 > ssthresh)
  const double w0 = h.sender->cwnd();
  h.ack(2);  // 2 segments acked
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), w0 + 2.0 / w0);
}

TEST(RenoCc, FastRetransmitHalves) {
  CcHarness<RenoCc> h{std::make_unique<RenoCc>()};
  h.sender->set_cwnd(20.0);
  h.cc->on_loss(*h.sender, /*timeout=*/false);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 10.0);
  EXPECT_DOUBLE_EQ(h.sender->ssthresh(), 10.0);
}

TEST(RenoCc, TimeoutDropsToMinCwnd) {
  CcHarness<RenoCc> h{std::make_unique<RenoCc>()};
  h.sender->set_cwnd(20.0);
  h.cc->on_loss(*h.sender, /*timeout=*/true);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(h.sender->ssthresh(), 10.0);
}

TEST(RenoCc, EcnHalvesAtMostOncePerWindow) {
  CcHarness<RenoCc> h{std::make_unique<RenoCc>()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(16.0);
  // The CA increase of the carrying ack lands before the ECE cut, so the
  // result is (16 + 1/16)/2 ~ 8.03.
  h.ack(1, /*ece=*/true);
  EXPECT_NEAR(h.sender->cwnd(), 8.0, 0.1);
  const double w = h.sender->cwnd();
  h.ack(2, /*ece=*/true);  // same window: no second multiplicative cut
  EXPECT_NEAR(h.sender->cwnd(), w, 0.2);
  EXPECT_GE(h.sender->cwnd(), w);
}

// --------------------------------------------------------------- DCTCP ---

TEST(DctcpCc, AlphaDecaysWithoutMarks) {
  auto policy = std::make_unique<DctcpCc>();
  CcHarness<DctcpCc> h{std::move(policy)};
  EXPECT_DOUBLE_EQ(h.cc->alpha(), 1.0);
  h.ack_round();  // round with zero marks
  EXPECT_NEAR(h.cc->alpha(), 1.0 - 1.0 / 16.0, 1e-12);
  h.ack_round();
  EXPECT_NEAR(h.cc->alpha(), (1.0 - 1.0 / 16.0) * (1.0 - 1.0 / 16.0), 1e-12);
}

TEST(DctcpCc, AlphaRisesWithFullMarking) {
  CcHarness<DctcpCc> h{std::make_unique<DctcpCc>()};
  // Decay alpha first so a rise is observable.
  for (int i = 0; i < 20; ++i) h.ack_round();
  const double low = h.cc->alpha();
  ASSERT_LT(low, 0.3);
  // One fully-marked window: F = 1 -> alpha moves toward 1 by g.
  h.sender->set_ssthresh(1.0);  // CA so no slow-start noise
  h.ack(h.sender->snd_nxt(), /*ece=*/true);
  const double expected = (1.0 - 1.0 / 16.0) * low + 1.0 / 16.0;
  EXPECT_NEAR(h.cc->alpha(), expected, 1e-9);
}

TEST(DctcpCc, ReductionProportionalToAlpha) {
  CcHarness<DctcpCc> h{std::make_unique<DctcpCc>()};
  for (int i = 0; i < 30; ++i) h.ack_round();  // alpha ~ 0.14
  const double alpha = h.cc->alpha();
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(100.0);
  // Drive the hook directly so the cut is isolated from ack bookkeeping.
  AckEvent ev;
  ev.ece = true;
  h.cc->on_congestion_signal(*h.sender, ev);
  EXPECT_NEAR(h.sender->cwnd(), 100.0 * (1.0 - alpha / 2.0), 1e-9);
}

TEST(DctcpCc, AtMostOneReductionPerWindow) {
  CcHarness<DctcpCc> h{std::make_unique<DctcpCc>()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(100.0);
  h.ack(1, /*ece=*/true);
  const double after_first = h.sender->cwnd();
  h.ack(2, /*ece=*/true);  // same window
  // Growth (+2/cwnd at most) aside, no second multiplicative cut.
  EXPECT_GT(h.sender->cwnd(), after_first - 1.0);
}

TEST(DctcpCc, FirstSignalEndsSlowStart) {
  CcHarness<DctcpCc> h{std::make_unique<DctcpCc>()};
  ASSERT_TRUE(h.sender->in_slow_start());
  h.ack(1, /*ece=*/true);
  EXPECT_FALSE(h.sender->in_slow_start());
}

// ----------------------------------------------------------------- BOS ---

SenderConfig bos_sender_cfg() {
  SenderConfig cfg;
  cfg.ecn_capable = true;
  cfg.min_cwnd = 2.0;
  return cfg;
}

TEST(BosCc, SlowStartGrowsOnePerAck) {
  CcHarness<BosCc> h{std::make_unique<BosCc>(), bos_sender_cfg()};
  const double w0 = h.sender->cwnd();
  h.ack(1);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), w0 + 1);
}

TEST(BosCc, FirstEchoInSlowStartExitsWithoutReduction) {
  // Algorithm 1: the reduction applies only when cwnd > ssthresh; in slow
  // start the echo just pins ssthresh = cwnd - 1. The carrying ack's own
  // slow-start +1 lands before the echo is processed (per-ack ops precede
  // the ECE handler), hence 17/16.
  CcHarness<BosCc> h{std::make_unique<BosCc>(), bos_sender_cfg()};
  h.sender->set_cwnd(16.0);
  h.ack(1, false, /*ce=*/1);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 17.0);
  EXPECT_DOUBLE_EQ(h.sender->ssthresh(), 16.0);
  EXPECT_FALSE(h.sender->in_slow_start());
  EXPECT_TRUE(h.cc->reduced_state());
}

TEST(BosCc, CongestionAvoidanceCutsByBeta) {
  BosCc::Params p;
  p.beta = 4;
  p.delta = 0.0;  // suppress the per-round increase to isolate the cut
  CcHarness<BosCc> h{std::make_unique<BosCc>(p), bos_sender_cfg()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(20.0);
  h.ack(1, false, /*ce=*/1);
  // cwnd -= max(floor(20/4), 1) = 15; ssthresh = 14.
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 15.0);
  EXPECT_DOUBLE_EQ(h.sender->ssthresh(), 14.0);
}

TEST(BosCc, CutIsAtLeastOneSegment) {
  BosCc::Params p;
  p.beta = 8;
  p.delta = 0.0;
  CcHarness<BosCc> h{std::make_unique<BosCc>(p), bos_sender_cfg()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(5.0);  // floor(5/8) = 0 -> cut max(0,1) = 1
  h.ack(1, false, 1);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 4.0);
}

TEST(BosCc, CwndFloorIsTwoSegments) {
  CcHarness<BosCc> h{std::make_unique<BosCc>(), bos_sender_cfg()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(2.0);
  h.ack(1, false, 1);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 2.0);  // paper footnote 5
}

TEST(BosCc, AtMostOneReductionPerRound) {
  BosCc::Params p;
  p.delta = 0.0;
  CcHarness<BosCc> h{std::make_unique<BosCc>(p), bos_sender_cfg()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(40.0);
  h.ack(1, false, 1);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 30.0);
  h.ack(2, false, 1);  // still REDUCED (cwr_seq not passed)
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 30.0);
  // Pass cwr_seq (everything sent before the cut is acked): NORMAL again.
  h.ack(h.sender->snd_nxt(), false, 0);
  h.drain();
  h.ack(h.sender->snd_nxt(), false, 1);
  EXPECT_LT(h.sender->cwnd(), 30.0);
}

TEST(BosCc, PerRoundIncreaseAccumulatesFractionalGain) {
  BosCc::Params p;
  p.delta = 0.4;
  CcHarness<BosCc> h{std::make_unique<BosCc>(p), bos_sender_cfg()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(10.0);
  h.ack_round();  // adder 0.4
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 10.0);
  h.ack_round();  // adder 0.8
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 10.0);
  h.ack_round();  // adder 1.2 -> +1, adder 0.2
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 11.0);
}

TEST(BosCc, IntegerGainGrowsOnePerRound) {
  CcHarness<BosCc> h{std::make_unique<BosCc>(), bos_sender_cfg()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(10.0);
  h.ack_round();
  h.ack_round();
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 12.0);
}

TEST(BosCc, NoIncreaseWhileReduced) {
  CcHarness<BosCc> h{std::make_unique<BosCc>(), bos_sender_cfg()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(20.0);
  h.ack(1, false, 1);  // cut to 15, REDUCED
  const double w = h.sender->cwnd();
  // Next round boundary arrives while still REDUCED (cwr_seq ahead).
  h.ack(2, false, 0);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), w);
}

TEST(BosCc, TimeoutRestartsSlowStartFromFloor) {
  CcHarness<BosCc> h{std::make_unique<BosCc>(), bos_sender_cfg()};
  h.sender->set_ssthresh(1.0);
  h.sender->set_cwnd(20.0);
  h.cc->on_loss(*h.sender, /*timeout=*/true);
  EXPECT_DOUBLE_EQ(h.sender->cwnd(), 2.0);
  EXPECT_DOUBLE_EQ(h.sender->ssthresh(), 10.0);
  EXPECT_TRUE(h.sender->in_slow_start());
}

TEST(BosCc, UtilizationBoundHolds) {
  // Property from Eq. 1: with K >= BDP/(beta-1) the post-cut window still
  // covers the BDP, so the link never drains. Verified end-to-end: a single
  // BOS flow on a 1 Gbps / 300 us path with K = BDP/(beta-1) keeps goodput
  // near line rate.
  const int beta = 4;
  TwoHosts t{1'000'000'000, sim::Time::microseconds(150),
             testutil::ecn_queue(100, /*K=*/9)};  // BDP ~ 26 pkts, K >= 26/3
  Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 20'000'000;
  fc.cc.kind = CcConfig::Kind::Bos;
  fc.cc.bos.beta = beta;
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.run_until(sim::Time::seconds(2.0));
  ASSERT_TRUE(f.complete());
  EXPECT_GT(f.goodput_bps(), 0.85e9);
}

}  // namespace
}  // namespace xmp::transport
