#include "transport/ecn_codec.hpp"

#include <gtest/gtest.h>

namespace xmp::transport {
namespace {

net::Packet data(net::Ecn ecn) {
  net::Packet p;
  p.type = net::PacketType::Data;
  p.ecn = ecn;
  return p;
}

TEST(EcnCodecNone, NeverSignals) {
  EcnEchoState s{EcnCodec::None};
  EXPECT_FALSE(s.on_data(data(net::Ecn::Ce)));
  net::Packet ack;
  s.fill_ack(ack);
  EXPECT_FALSE(ack.ece);
  EXPECT_EQ(ack.ce_echo, 0);
}

TEST(EcnCodecXmp, CountsCesUpToThree) {
  EcnEchoState s{EcnCodec::XmpCounter};
  EXPECT_FALSE(s.on_data(data(net::Ecn::Ce)));
  EXPECT_FALSE(s.on_data(data(net::Ecn::Ce)));
  net::Packet ack;
  s.fill_ack(ack);
  EXPECT_EQ(ack.ce_echo, 2);
  // Counter resets after echoing.
  net::Packet ack2;
  s.fill_ack(ack2);
  EXPECT_EQ(ack2.ce_echo, 0);
}

TEST(EcnCodecXmp, SaturatesAtThreeAndCarriesRemainder) {
  EcnEchoState s{EcnCodec::XmpCounter};
  for (int i = 0; i < 5; ++i) s.on_data(data(net::Ecn::Ce));
  net::Packet ack;
  s.fill_ack(ack);
  EXPECT_EQ(ack.ce_echo, 3);  // two bits encode at most 3 CEs (paper §2.1)
  net::Packet ack2;
  s.fill_ack(ack2);
  EXPECT_EQ(ack2.ce_echo, 2);  // remainder is not lost
}

TEST(EcnCodecXmp, LongBurstDrainsAcrossManyAcksWithoutLosingMarks) {
  // A CE burst far beyond the 2-bit echo range must drain 3-at-a-time over
  // successive acks until the counter is empty — no mark is ever dropped,
  // no ack ever claims more than 3 (paper §2.1, the BOS echo contract).
  EcnEchoState s{EcnCodec::XmpCounter};
  for (int i = 0; i < 11; ++i) s.on_data(data(net::Ecn::Ce));
  int total = 0;
  const int expected[] = {3, 3, 3, 2, 0};
  for (int i = 0; i < 5; ++i) {
    net::Packet ack;
    s.fill_ack(ack);
    EXPECT_EQ(ack.ce_echo, expected[i]) << "ack " << i;
    total += ack.ce_echo;
  }
  EXPECT_EQ(total, 11);
}

TEST(EcnCodecXmp, CarryOverSurvivesInterleavedUnmarkedData) {
  // Saturated counter, then unmarked packets arrive before the next ack:
  // the backlog must still drain; the clean packets add nothing.
  EcnEchoState s{EcnCodec::XmpCounter};
  for (int i = 0; i < 7; ++i) s.on_data(data(net::Ecn::Ce));
  net::Packet ack;
  s.fill_ack(ack);
  EXPECT_EQ(ack.ce_echo, 3);
  s.on_data(data(net::Ecn::Ect));
  s.on_data(data(net::Ecn::Ect));
  net::Packet ack2;
  s.fill_ack(ack2);
  EXPECT_EQ(ack2.ce_echo, 3);
  net::Packet ack3;
  s.fill_ack(ack3);
  EXPECT_EQ(ack3.ce_echo, 1);
}

TEST(EcnCodecXmp, UnmarkedPacketsEchoZero) {
  EcnEchoState s{EcnCodec::XmpCounter};
  s.on_data(data(net::Ecn::Ect));
  s.on_data(data(net::Ecn::Ect));
  net::Packet ack;
  s.fill_ack(ack);
  EXPECT_EQ(ack.ce_echo, 0);
}

TEST(EcnCodecClassic, EceSticksUntilCwr) {
  EcnEchoState s{EcnCodec::Classic};
  s.on_data(data(net::Ecn::Ce));
  for (int i = 0; i < 3; ++i) {
    s.on_data(data(net::Ecn::Ect));  // no further marks
    net::Packet ack;
    s.fill_ack(ack);
    EXPECT_TRUE(ack.ece);  // sticky
  }
  net::Packet cwr_pkt = data(net::Ecn::Ect);
  cwr_pkt.cwr = true;
  s.on_data(cwr_pkt);
  net::Packet ack;
  s.fill_ack(ack);
  EXPECT_FALSE(ack.ece);
}

TEST(EcnCodecClassic, ReLatchesAfterCwr) {
  EcnEchoState s{EcnCodec::Classic};
  s.on_data(data(net::Ecn::Ce));
  net::Packet cwr_pkt = data(net::Ecn::Ect);
  cwr_pkt.cwr = true;
  s.on_data(cwr_pkt);
  s.on_data(data(net::Ecn::Ce));  // new congestion episode
  net::Packet ack;
  s.fill_ack(ack);
  EXPECT_TRUE(ack.ece);
}

TEST(EcnCodecDctcp, StateChangeForcesImmediateAck) {
  EcnEchoState s{EcnCodec::Dctcp};
  EXPECT_FALSE(s.on_data(data(net::Ecn::Ect)));   // state stays 0
  EXPECT_TRUE(s.on_data(data(net::Ecn::Ce)));     // 0 -> 1: flush
  EXPECT_FALSE(s.on_data(data(net::Ecn::Ce)));    // stays 1
  EXPECT_TRUE(s.on_data(data(net::Ecn::Ect)));    // 1 -> 0: flush
}

TEST(EcnCodecDctcp, FlushedAckCarriesOldState) {
  EcnEchoState s{EcnCodec::Dctcp};
  s.on_data(data(net::Ecn::Ect));
  ASSERT_TRUE(s.on_data(data(net::Ecn::Ce)));  // state change 0 -> 1
  net::Packet flushed;
  s.fill_ack(flushed);
  EXPECT_FALSE(flushed.ece);  // covers the pre-change segments
  net::Packet next;
  s.fill_ack(next);
  EXPECT_TRUE(next.ece);  // subsequent acks carry the new state
}

TEST(EcnCodecDctcp, DropPendingChangeWhenNothingToFlush) {
  EcnEchoState s{EcnCodec::Dctcp};
  ASSERT_TRUE(s.on_data(data(net::Ecn::Ce)));
  s.drop_pending_state_change();  // receiver had no pending ack to flush
  net::Packet ack;
  s.fill_ack(ack);
  EXPECT_TRUE(ack.ece);  // must reflect the *current* CE state
}

TEST(EcnCodecDctcp, SteadyMarkingKeepsEceSet) {
  EcnEchoState s{EcnCodec::Dctcp};
  s.on_data(data(net::Ecn::Ce));
  s.drop_pending_state_change();
  for (int i = 0; i < 4; ++i) {
    s.on_data(data(net::Ecn::Ce));
    net::Packet ack;
    s.fill_ack(ack);
    EXPECT_TRUE(ack.ece);
  }
}

}  // namespace
}  // namespace xmp::transport
