// Delayed-ack configuration variants and their visible effects.

#include <gtest/gtest.h>

#include "transport/flow.hpp"
#include "util/fixtures.hpp"

namespace xmp::transport {
namespace {

using testutil::TwoHosts;

TEST(DelackConfig, FactorOneAcksEverySegment) {
  TwoHosts t{1'000'000'000, sim::Time::microseconds(50), testutil::ecn_queue(1000, 900)};
  Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 100 * net::kMssBytes;
  fc.cc.kind = CcConfig::Kind::Bos;
  fc.tune_receiver = [](ReceiverConfig& rc) { rc.delack_segments = 1; };
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.run_until(sim::Time::seconds(1.0));
  ASSERT_TRUE(f.complete());
  // One ack per segment (plus possibly a timer-flushed tail).
  EXPECT_GE(f.receiver().acks_sent(), 100u);
}

TEST(DelackConfig, FactorTwoHalvesAckCount) {
  TwoHosts t{1'000'000'000, sim::Time::microseconds(50), testutil::ecn_queue(1000, 900)};
  Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 100 * net::kMssBytes;
  fc.cc.kind = CcConfig::Kind::Bos;
  Flow f{t.sched, *t.a, *t.b, fc};  // default delack_segments = 2
  f.start();
  t.sched.run_until(sim::Time::seconds(1.0));
  ASSERT_TRUE(f.complete());
  EXPECT_LT(f.receiver().acks_sent(), 80u);
  EXPECT_GE(f.receiver().acks_sent(), 50u);
}

TEST(DelackConfig, LargeFactorStillDrainsViaTimer) {
  TwoHosts t{1'000'000'000, sim::Time::microseconds(50), testutil::ecn_queue(1000, 900)};
  Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 31 * net::kMssBytes;  // not a multiple of the factor
  fc.cc.kind = CcConfig::Kind::Bos;
  fc.tune_receiver = [](ReceiverConfig& rc) {
    rc.delack_segments = 8;
    rc.delack_timeout = sim::Time::microseconds(300);
  };
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.run_until(sim::Time::seconds(2.0));
  EXPECT_TRUE(f.complete());
}

TEST(SenderConfig, InitialCwndControlsFirstBurst) {
  TwoHosts t{1'000'000'000, sim::Time::milliseconds(5), testutil::ecn_queue(1000, 900)};
  Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 1'000'000;
  fc.cc.kind = CcConfig::Kind::Bos;
  fc.tune_sender = [](SenderConfig& sc) { sc.initial_cwnd = 4.0; };
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  // Before the first ack returns (RTT = 10 ms), exactly IW segments leave.
  t.sched.run_until(sim::Time::milliseconds(2));
  EXPECT_EQ(f.sender().segments_sent(), 4u);
}

TEST(SenderConfig, InitialRtoGovernsFirstTimeout) {
  TwoHosts t{1'000'000'000, sim::Time::microseconds(50), testutil::ecn_queue(100, 10)};
  Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 1'000'000;
  fc.cc.kind = CcConfig::Kind::Bos;
  fc.tune_sender = [](SenderConfig& sc) {
    sc.initial_rto = sim::Time::milliseconds(50);
    sc.rto_min = sim::Time::milliseconds(50);
  };
  Flow f{t.sched, *t.a, *t.b, fc};
  t.ab->set_down(true);  // nothing ever arrives
  f.start();
  t.sched.run_until(sim::Time::milliseconds(49));
  EXPECT_EQ(f.sender().timeouts(), 0u);
  t.sched.run_until(sim::Time::milliseconds(60));
  EXPECT_EQ(f.sender().timeouts(), 1u);
}

}  // namespace
}  // namespace xmp::transport
