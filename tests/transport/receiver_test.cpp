#include "transport/receiver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/fixtures.hpp"

namespace xmp::transport {
namespace {

using testutil::TwoHosts;

/// Captures acks arriving back at the sender-side host.
class AckCapture final : public net::Host::Endpoint {
 public:
  void handle(net::Packet p) override { acks.push_back(std::move(p)); }
  std::vector<net::Packet> acks;
};

struct ReceiverHarness {
  TwoHosts t{1'000'000'000, sim::Time::microseconds(10), testutil::droptail_queue(1000)};
  AckCapture acks;
  ReceiverConfig cfg;

  explicit ReceiverHarness(EcnCodec codec = EcnCodec::None) {
    cfg.codec = codec;
    t.a->register_endpoint(1, 0, net::PacketType::Ack, acks);
  }

  TcpReceiver make() { return TcpReceiver{t.sched, *t.b, t.a->id(), 1, 0, 0, cfg}; }

  /// Inject a data packet directly at the receiving host.
  static net::Packet data(std::int64_t seq, net::Ecn ecn = net::Ecn::Ect) {
    net::Packet p;
    p.flow = 1;
    p.type = net::PacketType::Data;
    p.seq = seq;
    p.ecn = ecn;
    p.ts = sim::Time::microseconds(1);  // non-zero so RTT echo is visible
    return p;
  }
};

TEST(Receiver, DelayedAckCoalescesTwoSegments) {
  ReceiverHarness h;
  TcpReceiver r = h.make();
  r.handle(ReceiverHarness::data(0));
  r.handle(ReceiverHarness::data(1));
  h.t.sched.run_until(sim::Time::microseconds(100));
  ASSERT_EQ(h.acks.acks.size(), 1u);
  EXPECT_EQ(h.acks.acks[0].ack, 2);
}

TEST(Receiver, DelackTimerFlushesOddSegment) {
  ReceiverHarness h;
  TcpReceiver r = h.make();
  r.handle(ReceiverHarness::data(0));
  h.t.sched.run_until(sim::Time::microseconds(100));
  EXPECT_TRUE(h.acks.acks.empty());  // still waiting for a second segment
  h.t.sched.run_until(sim::Time::milliseconds(2));
  ASSERT_EQ(h.acks.acks.size(), 1u);  // delack timeout fired
  EXPECT_EQ(h.acks.acks[0].ack, 1);
}

TEST(Receiver, OutOfOrderTriggersImmediateDupack) {
  ReceiverHarness h;
  TcpReceiver r = h.make();
  r.handle(ReceiverHarness::data(0));
  r.handle(ReceiverHarness::data(1));  // ack 2 sent
  r.handle(ReceiverHarness::data(3));  // hole at 2 -> immediate dupack
  r.handle(ReceiverHarness::data(4));  // still a hole -> another dupack
  h.t.sched.run_until(sim::Time::microseconds(200));
  ASSERT_EQ(h.acks.acks.size(), 3u);
  EXPECT_EQ(h.acks.acks[1].ack, 2);
  EXPECT_EQ(h.acks.acks[2].ack, 2);
}

TEST(Receiver, FillingHoleAcksImmediatelyPastBuffered) {
  ReceiverHarness h;
  TcpReceiver r = h.make();
  r.handle(ReceiverHarness::data(1));  // dupack(0)
  r.handle(ReceiverHarness::data(2));  // dupack(0)
  r.handle(ReceiverHarness::data(0));  // fills the hole -> ack 3 immediately
  h.t.sched.run_until(sim::Time::microseconds(200));
  ASSERT_EQ(h.acks.acks.size(), 3u);
  EXPECT_EQ(h.acks.acks.back().ack, 3);
  EXPECT_EQ(r.rcv_nxt(), 3);
}

TEST(Receiver, OldDuplicateReacked) {
  ReceiverHarness h;
  TcpReceiver r = h.make();
  r.handle(ReceiverHarness::data(0));
  r.handle(ReceiverHarness::data(1));
  r.handle(ReceiverHarness::data(0));  // spurious retransmission
  h.t.sched.run_until(sim::Time::microseconds(200));
  ASSERT_EQ(h.acks.acks.size(), 2u);
  EXPECT_EQ(h.acks.acks[1].ack, 2);
  EXPECT_EQ(r.duplicates_seen(), 1u);
}

TEST(Receiver, XmpCodecEchoesCeCountOnAck) {
  ReceiverHarness h{EcnCodec::XmpCounter};
  TcpReceiver r = h.make();
  r.handle(ReceiverHarness::data(0, net::Ecn::Ce));
  r.handle(ReceiverHarness::data(1, net::Ecn::Ce));
  h.t.sched.run_until(sim::Time::microseconds(200));
  ASSERT_EQ(h.acks.acks.size(), 1u);
  EXPECT_EQ(h.acks.acks[0].ce_echo, 2);
  EXPECT_EQ(h.acks.acks[0].ack, 2);
}

TEST(Receiver, DctcpStateChangeFlushesPendingAck) {
  ReceiverHarness h{EcnCodec::Dctcp};
  TcpReceiver r = h.make();
  r.handle(ReceiverHarness::data(0, net::Ecn::Ect));  // pending (delack)
  r.handle(ReceiverHarness::data(1, net::Ecn::Ce));   // state change
  h.t.sched.run_until(sim::Time::microseconds(200));
  // The state change flushed segment 0 with ece=0, then segment 1 went
  // pending; the delack timer eventually acks it with ece=1.
  ASSERT_GE(h.acks.acks.size(), 1u);
  EXPECT_EQ(h.acks.acks[0].ack, 1);
  EXPECT_FALSE(h.acks.acks[0].ece);
  h.t.sched.run_until(sim::Time::milliseconds(3));
  ASSERT_EQ(h.acks.acks.size(), 2u);
  EXPECT_EQ(h.acks.acks[1].ack, 2);
  EXPECT_TRUE(h.acks.acks[1].ece);
}

TEST(Receiver, AcksEchoTimestampOfEarliestPendingSegment) {
  ReceiverHarness h;
  TcpReceiver r = h.make();
  net::Packet p0 = ReceiverHarness::data(0);
  p0.ts = sim::Time::microseconds(111);
  net::Packet p1 = ReceiverHarness::data(1);
  p1.ts = sim::Time::microseconds(222);
  r.handle(std::move(p0));
  r.handle(std::move(p1));
  h.t.sched.run_until(sim::Time::microseconds(200));
  ASSERT_EQ(h.acks.acks.size(), 1u);
  EXPECT_EQ(h.acks.acks[0].ts, sim::Time::microseconds(111));
}

TEST(Receiver, DeliveredSegmentsCountsInOrderOnly) {
  ReceiverHarness h;
  TcpReceiver r = h.make();
  r.handle(ReceiverHarness::data(0));
  r.handle(ReceiverHarness::data(5));
  EXPECT_EQ(r.delivered_segments(), 1);
}

}  // namespace
}  // namespace xmp::transport
