// Retransmission-timer backoff regression tests: the exponential backoff
// must clamp at rto_max and must reset on the first new ack (RFC 6298 §5).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "transport/segment_source.hpp"
#include "transport/sender.hpp"
#include "util/fixtures.hpp"

namespace xmp::transport {
namespace {

class NullCc final : public CongestionControl {
 public:
  void on_ack(TcpSender&, const AckEvent&) override {}
  void on_round_end(TcpSender&) override {}
  void on_congestion_signal(TcpSender&, const AckEvent&) override {}
  void on_loss(TcpSender&, bool) override {}
  const char* name() const override { return "null"; }
};

class TimeoutLog final : public SenderObserver {
 public:
  explicit TimeoutLog(sim::Scheduler& sched) : sched_{sched} {}
  void on_sender_delivered(const TcpSender&, std::int64_t) override {}
  void on_sender_timeout(const TcpSender&) override { at.push_back(sched_.now()); }
  std::vector<sim::Time> at;

 private:
  sim::Scheduler& sched_;
};

/// Sender into a black hole: the data link is admin-down from the start, so
/// every transmission is lost and the RTO chain runs undisturbed.
struct BackoffHarness {
  testutil::TwoHosts t{1'000'000'000, sim::Time::microseconds(10),
                       testutil::droptail_queue(100)};
  FixedSource source{1'000'000};
  TimeoutLog log{t.sched};
  std::unique_ptr<TcpSender> sender;

  explicit BackoffHarness(SenderConfig cfg) {
    t.ab->set_down(true);
    sender = std::make_unique<TcpSender>(t.sched, *t.a, t.b->id(), 1, 0, 0, source,
                                         std::make_unique<NullCc>(), cfg);
    sender->set_observer(&log);
    sender->start();
  }

  void ack(std::int64_t ackno) {
    net::Packet p;
    p.flow = 1;
    p.type = net::PacketType::Ack;
    p.ack = ackno;
    sender->handle(std::move(p));
  }
};

SenderConfig fast_rto_config() {
  SenderConfig cfg;
  cfg.initial_rto = sim::Time::milliseconds(200);
  cfg.rto_min = sim::Time::milliseconds(200);
  cfg.rto_max = sim::Time::seconds(1.0);  // small cap so the clamp is reachable
  return cfg;
}

TEST(RtoBackoff, DoublesUntilClampedAtRtoMax) {
  BackoffHarness h{fast_rto_config()};
  h.t.sched.run_until(sim::Time::seconds(6));

  // Without an RTT sample the base RTO is initial_rto = 200 ms; each
  // consecutive timeout doubles it until the 1 s cap:
  //   200, +400, +800, +1000, +1000, ...
  ASSERT_GE(h.log.at.size(), 6u);
  EXPECT_DOUBLE_EQ(h.log.at[0].ms(), 200.0);
  EXPECT_DOUBLE_EQ(h.log.at[1].ms(), 600.0);
  EXPECT_DOUBLE_EQ(h.log.at[2].ms(), 1400.0);
  for (std::size_t i = 3; i < h.log.at.size(); ++i) {
    EXPECT_DOUBLE_EQ((h.log.at[i] - h.log.at[i - 1]).ms(), 1000.0)
        << "gap " << i << " escaped the rto_max clamp";
  }
  EXPECT_EQ(h.sender->rto_backoff(), static_cast<int>(h.log.at.size()));
}

TEST(RtoBackoff, SixtySecondDefaultCapHolds) {
  // With the default config the backoff must never push one gap beyond the
  // RFC's 60 s ceiling (and must reach it: 200ms << 9 > 60s).
  SenderConfig cfg;  // defaults: initial 200 ms, max 60 s
  BackoffHarness h{cfg};
  h.t.sched.run_until(sim::Time::seconds(400));

  ASSERT_GE(h.log.at.size(), 10u);
  sim::Time prev = sim::Time::zero();
  sim::Time max_gap = sim::Time::zero();
  for (const sim::Time at : h.log.at) {
    const sim::Time gap = at - prev;
    EXPECT_LE(gap.sec(), 60.0);
    if (gap > max_gap) max_gap = gap;
    prev = at;
  }
  EXPECT_DOUBLE_EQ(max_gap.sec(), 60.0);  // the clamp is actually reached
}

TEST(RtoBackoff, FirstNewAckResetsTheBackoff) {
  BackoffHarness h{fast_rto_config()};
  h.t.sched.run_until(sim::Time::milliseconds(700));  // two timeouts in
  ASSERT_EQ(h.log.at.size(), 2u);
  ASSERT_EQ(h.sender->rto_backoff(), 2);

  h.ack(1);  // first new ack after the stall
  EXPECT_EQ(h.sender->rto_backoff(), 0);

  // The backoff sequence restarts from the base RTO. The timer event
  // pending from before the ack still fires at its old 1400 ms deadline
  // (lazy timers never move earlier), but the *following* gap must be one
  // doubling of the base (400 ms), not the continued chain (1000 ms cap).
  h.t.sched.run_until(sim::Time::seconds(2));
  ASSERT_GE(h.log.at.size(), 4u);
  EXPECT_DOUBLE_EQ(h.log.at[2].ms(), 1400.0);
  EXPECT_DOUBLE_EQ(h.log.at[3].ms(), 1800.0);
}

}  // namespace
}  // namespace xmp::transport
