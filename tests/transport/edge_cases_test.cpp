// Edge-case and failure-injection tests for the transport layer.

#include <gtest/gtest.h>

#include "transport/flow.hpp"
#include "util/fixtures.hpp"

namespace xmp::transport {
namespace {

using testutil::TwoHosts;

constexpr std::int64_t kGbps = 1'000'000'000;

Flow::Config bos_flow(net::FlowId id, std::int64_t bytes) {
  Flow::Config fc;
  fc.id = id;
  fc.size_bytes = bytes;
  fc.cc.kind = CcConfig::Kind::Bos;
  return fc;
}

TEST(TransportLoss, FastRetransmitRecoversFromSingleDrop) {
  // A queue of 1 packet beyond the in-service slot forces early drops
  // during slow start; the flow must still complete without timeouts
  // dominating (fast retransmit + limited transmit does the work).
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::droptail_queue(20)};
  Flow::Config fc = bos_flow(1, 5'000'000);
  fc.cc.kind = CcConfig::Kind::Reno;
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.run_until(sim::Time::seconds(5.0));
  ASSERT_TRUE(f.complete());
  EXPECT_GT(f.sender().fast_retransmits(), 0u);
}

TEST(TransportLoss, CompletesThroughTransientLinkOutage) {
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(100, 10)};
  Flow f{t.sched, *t.a, *t.b, bos_flow(1, 2'000'000)};
  f.start();
  // 100 ms blackout in the middle of the transfer.
  t.sched.schedule_at(sim::Time::milliseconds(3), [&] { t.ab->set_down(true); });
  t.sched.schedule_at(sim::Time::milliseconds(103), [&] { t.ab->set_down(false); });
  t.sched.run_until(sim::Time::seconds(5.0));
  ASSERT_TRUE(f.complete());
  EXPECT_GT(f.sender().timeouts(), 0u);
}

TEST(TransportLoss, CompletesWhenAckPathBlacksOut) {
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(100, 10)};
  Flow f{t.sched, *t.a, *t.b, bos_flow(1, 2'000'000)};
  f.start();
  t.sched.schedule_at(sim::Time::milliseconds(3), [&] { t.ba->set_down(true); });
  t.sched.schedule_at(sim::Time::milliseconds(103), [&] { t.ba->set_down(false); });
  t.sched.run_until(sim::Time::seconds(5.0));
  ASSERT_TRUE(f.complete());
}

TEST(TransportLoss, SurvivesRepeatedOutages) {
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(100, 10)};
  Flow f{t.sched, *t.a, *t.b, bos_flow(1, 1'000'000)};
  f.start();
  for (int i = 0; i < 5; ++i) {
    t.sched.schedule_at(sim::Time::milliseconds(2 + i * 400), [&] { t.ab->set_down(true); });
    t.sched.schedule_at(sim::Time::milliseconds(52 + i * 400), [&] { t.ab->set_down(false); });
  }
  t.sched.run_until(sim::Time::seconds(10.0));
  EXPECT_TRUE(f.complete());
}

TEST(TransportLoss, RtoBackoffBoundedByRtoMax) {
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(100, 10)};
  Flow::Config fc = bos_flow(1, 1'000'000);
  fc.tune_sender = [](SenderConfig& sc) {
    sc.rto_min = sim::Time::milliseconds(10);
    sc.rto_max = sim::Time::milliseconds(50);
  };
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.schedule_at(sim::Time::milliseconds(1), [&] { t.ab->set_down(true); });
  t.sched.run_until(sim::Time::seconds(2.0));
  // With RTO capped at 50 ms, a 2 s blackout yields >= 2000/50 - slack
  // timer fires; exponential growth would have produced only ~8.
  EXPECT_GT(f.sender().timeouts(), 20u);
}

TEST(TransportSmallFlows, DelackTimeoutBoundsSingleSegmentLatency) {
  TwoHosts t{kGbps, sim::Time::microseconds(10), testutil::ecn_queue(100, 10)};
  Flow::Config fc = bos_flow(1, 100);  // single segment
  fc.tune_receiver = [](ReceiverConfig& rc) {
    rc.delack_timeout = sim::Time::microseconds(400);
  };
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.run_until(sim::Time::seconds(1.0));
  ASSERT_TRUE(f.complete());
  // Completion = RTT (~50 us) + delack timeout (400 us) + slack.
  EXPECT_LT((f.finish_time() - f.start_time()).us(), 600.0);
}

TEST(TransportSmallFlows, EvenSegmentCountAvoidsDelackTimeout) {
  TwoHosts t{kGbps, sim::Time::microseconds(10), testutil::ecn_queue(100, 10)};
  Flow f{t.sched, *t.a, *t.b, bos_flow(1, 2 * net::kMssBytes)};
  f.start();
  t.sched.run_until(sim::Time::seconds(1.0));
  ASSERT_TRUE(f.complete());
  EXPECT_LT((f.finish_time() - f.start_time()).us(), 200.0);
}

TEST(TransportEcn, RenoWithEcnReactsWithoutLoss) {
  // Reno-ECN (RFC 3168 mode) is supported even though the paper's TCP is
  // not ECN-capable: enable it explicitly and verify no drops occur on an
  // ECN queue with ample capacity.
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(200, 10)};
  Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 10'000'000;
  fc.cc.kind = CcConfig::Kind::Reno;
  fc.tune_sender = [](SenderConfig& sc) { sc.ecn_capable = true; };
  fc.tune_receiver = [](ReceiverConfig& rc) { rc.codec = EcnCodec::Classic; };
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.run_until(sim::Time::seconds(2.0));
  ASSERT_TRUE(f.complete());
  EXPECT_EQ(t.ab->queue().counters().dropped, 0u);
  EXPECT_GT(f.sender().ce_echoes(), 0u);
}

TEST(TransportEcn, NonEctFlowIsDroppedNotMarked) {
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(30, 5)};
  Flow::Config fc;
  fc.id = 1;
  fc.size_bytes = 10'000'000;
  fc.cc.kind = CcConfig::Kind::Reno;  // non-ECT
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.run_until(sim::Time::seconds(2.0));
  ASSERT_TRUE(f.complete());
  EXPECT_GT(t.ab->queue().counters().dropped, 0u);
  EXPECT_EQ(t.ab->queue().counters().marked, 0u);
  EXPECT_EQ(f.sender().ce_echoes(), 0u);
}

TEST(TransportTiming, SrttConvergesUnderStableRtt) {
  TwoHosts t{kGbps, sim::Time::microseconds(200), testutil::ecn_queue(1000, 900)};
  Flow::Config fc = bos_flow(1, 5'000'000);
  Flow f{t.sched, *t.a, *t.b, fc};
  f.start();
  t.sched.run_until(sim::Time::seconds(2.0));
  ASSERT_TRUE(f.complete());
  // Base RTT 400 us + serialization + self-queueing (K=900 never marks,
  // but cwnd is bounded by flow completion); srtt must sit in a sane band.
  EXPECT_GT(f.sender().srtt().us(), 400.0);
  EXPECT_LT(f.sender().srtt().ms(), 20.0);
}

TEST(TransportConcurrency, ManyFlowsOnOneBottleneckAllComplete) {
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(100, 10)};
  std::vector<std::unique_ptr<Flow>> flows;
  for (int i = 0; i < 30; ++i) {
    flows.push_back(
        std::make_unique<Flow>(t.sched, *t.a, *t.b, bos_flow(static_cast<net::FlowId>(i + 1),
                                                             500'000)));
    flows.back()->start();
  }
  t.sched.run_until(sim::Time::seconds(10.0));
  for (const auto& f : flows) EXPECT_TRUE(f->complete()) << f->id();
}

TEST(TransportConcurrency, BidirectionalFlowsShareBothDirections) {
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(100, 10)};
  Flow ab{t.sched, *t.a, *t.b, bos_flow(1, 5'000'000)};
  Flow ba{t.sched, *t.b, *t.a, bos_flow(2, 5'000'000)};
  ab.start();
  ba.start();
  t.sched.run_until(sim::Time::seconds(2.0));
  ASSERT_TRUE(ab.complete());
  ASSERT_TRUE(ba.complete());
  // Each direction has its own capacity, but the reverse acks share the
  // packet-counting ECN queue with the other flow's data, lowering the
  // effective marking threshold — both directions still get well past a
  // half-duplex share, and symmetrically.
  EXPECT_GT(ab.goodput_bps(), 0.55e9);
  EXPECT_GT(ba.goodput_bps(), 0.55e9);
  EXPECT_NEAR(ab.goodput_bps() / ba.goodput_bps(), 1.0, 0.1);
}

TEST(TransportZombie, SenderDestructionCancelsTimers) {
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(100, 10)};
  {
    Flow f{t.sched, *t.a, *t.b, bos_flow(1, 10'000'000)};
    f.start();
    t.sched.run_until(sim::Time::milliseconds(1));
    // Flow destroyed mid-transfer here.
  }
  // No use-after-free: pending events (acks in flight, timers) must be
  // safely absorbed.
  t.sched.run_until(sim::Time::seconds(1.0));
  SUCCEED();
}

}  // namespace
}  // namespace xmp::transport
