#include "transport/flow.hpp"

#include <gtest/gtest.h>

#include "util/fixtures.hpp"

namespace xmp::transport {
namespace {

using testutil::TwoHosts;

constexpr std::int64_t kGbps = 1'000'000'000;

transport::Flow::Config flow_cfg(net::FlowId id, std::int64_t bytes, CcConfig::Kind kind) {
  Flow::Config fc;
  fc.id = id;
  fc.size_bytes = bytes;
  fc.cc.kind = kind;
  return fc;
}

class FlowEndToEnd : public ::testing::TestWithParam<CcConfig::Kind> {};

TEST_P(FlowEndToEnd, TransferCompletes) {
  TwoHosts t{kGbps, sim::Time::microseconds(50), testutil::ecn_queue(100, 10)};
  Flow f{t.sched, *t.a, *t.b, flow_cfg(1, 1'000'000, GetParam())};
  f.start();
  t.sched.run_until(sim::Time::seconds(2.0));
  ASSERT_TRUE(f.complete());
  EXPECT_GT(f.goodput_bps(), 0.0);
}

TEST_P(FlowEndToEnd, GoodputApproachesLineRate) {
  TwoHosts t{kGbps, sim::Time::microseconds(50), testutil::ecn_queue(100, 10)};
  Flow f{t.sched, *t.a, *t.b, flow_cfg(1, 20'000'000, GetParam())};
  f.start();
  t.sched.run_until(sim::Time::seconds(2.0));
  ASSERT_TRUE(f.complete());
  // A single unconstrained flow should reach most of 1 Gbps (header
  // overhead alone costs ~2.7%).
  EXPECT_GT(f.goodput_bps(), 0.75e9);
  EXPECT_LT(f.goodput_bps(), 1.0e9);
}

TEST_P(FlowEndToEnd, SmallFlowCompletesQuickly) {
  TwoHosts t{kGbps, sim::Time::microseconds(50), testutil::ecn_queue(100, 10)};
  Flow f{t.sched, *t.a, *t.b, flow_cfg(1, 2'000, GetParam())};
  f.start();
  t.sched.run_until(sim::Time::seconds(1.0));
  ASSERT_TRUE(f.complete());
  // 2 segments, one RTT plus serialization; allow the delayed-ack timeout.
  EXPECT_LT((f.finish_time() - f.start_time()).ms(), 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FlowEndToEnd,
                         ::testing::Values(CcConfig::Kind::Reno, CcConfig::Kind::Dctcp,
                                           CcConfig::Kind::Bos),
                         [](const auto& info) {
                           switch (info.param) {
                             case CcConfig::Kind::Reno:
                               return "Reno";
                             case CcConfig::Kind::Dctcp:
                               return "Dctcp";
                             case CcConfig::Kind::Bos:
                               return "Bos";
                           }
                           return "?";
                         });

TEST(Flow, CompletionCallbackFires) {
  TwoHosts t{kGbps, sim::Time::microseconds(50), testutil::ecn_queue(100, 10)};
  Flow f{t.sched, *t.a, *t.b, flow_cfg(1, 100'000, CcConfig::Kind::Reno)};
  bool fired = false;
  f.set_on_complete([&] { fired = true; });
  f.start();
  t.sched.run_until(sim::Time::seconds(1.0));
  EXPECT_TRUE(fired);
  EXPECT_EQ(f.finish_time(), f.sender().idle() ? f.finish_time() : sim::Time::zero());
}

TEST(Flow, SingleSegmentFlow) {
  TwoHosts t{kGbps, sim::Time::microseconds(50), testutil::ecn_queue(100, 10)};
  Flow f{t.sched, *t.a, *t.b, flow_cfg(1, 1, CcConfig::Kind::Reno)};
  f.start();
  t.sched.run_until(sim::Time::seconds(1.0));
  ASSERT_TRUE(f.complete());
  // One segment: delivery is gated by the receiver's delayed-ack timeout.
  EXPECT_LT((f.finish_time() - f.start_time()).ms(), 1.5);
}

TEST(Flow, TwoConcurrentFlowsShareBottleneckRoughlyFairly) {
  TwoHosts t{kGbps, sim::Time::microseconds(50), testutil::ecn_queue(100, 10)};
  Flow f1{t.sched, *t.a, *t.b, flow_cfg(1, 10'000'000, CcConfig::Kind::Bos)};
  Flow f2{t.sched, *t.a, *t.b, flow_cfg(2, 10'000'000, CcConfig::Kind::Bos)};
  f1.start();
  f2.start();
  t.sched.run_until(sim::Time::seconds(2.0));
  ASSERT_TRUE(f1.complete());
  ASSERT_TRUE(f2.complete());
  const double ratio = f1.goodput_bps() / f2.goodput_bps();
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Flow, RttMeasuredMatchesPathDelay) {
  TwoHosts t{kGbps, sim::Time::microseconds(100), testutil::ecn_queue(1000, 999)};
  Flow f{t.sched, *t.a, *t.b, flow_cfg(1, 400'000, CcConfig::Kind::Reno)};
  f.start();
  t.sched.run_until(sim::Time::seconds(1.0));
  ASSERT_TRUE(f.complete());
  ASSERT_TRUE(f.sender().has_rtt_sample());
  // Base RTT = 200 us propagation + serialization; queueing and delack push
  // the smoothed value up but it must stay in the right regime.
  EXPECT_GT(f.sender().srtt().us(), 200.0);
  EXPECT_LT(f.sender().srtt().us(), 3000.0);
}

}  // namespace
}  // namespace xmp::transport
